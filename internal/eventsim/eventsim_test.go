package eventsim

import (
	"math/rand"
	"sort"
	"testing"
)

func drain(q *Queue) []Event {
	var out []Event
	for {
		e, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		q.Push(Event{Time: tm})
	}
	got := drain(&q)
	for i, e := range got {
		//pollux:floateq-ok times are exact small integers pushed in; the pop must return them verbatim
		if e.Time != float64(i+1) {
			t.Fatalf("pop %d: time = %v, want %v", i, e.Time, i+1)
		}
	}
}

func TestClusterEventsBeforeJobEventsAtEqualTime(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 60, Class: ClassJob, Job: 1})
	q.Push(Event{Time: 60, Class: ClassCluster, Kind: 2})
	q.Push(Event{Time: 60, Class: ClassJob, Job: 0})
	q.Push(Event{Time: 60, Class: ClassCluster, Kind: 1})
	got := drain(&q)
	want := []Event{
		{Time: 60, Class: ClassCluster, Kind: 1},
		{Time: 60, Class: ClassCluster, Kind: 2},
		{Time: 60, Class: ClassJob, Job: 0},
		{Time: 60, Class: ClassJob, Job: 1},
	}
	for i := range want {
		if got[i].Class != want[i].Class || got[i].Kind != want[i].Kind || got[i].Job != want[i].Job {
			t.Errorf("pop %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJobEventsOrderByLowestID(t *testing.T) {
	var q Queue
	for _, id := range []int{7, 2, 9, 4} {
		q.Push(Event{Time: 10, Class: ClassJob, Job: id})
	}
	got := drain(&q)
	want := []int{2, 4, 7, 9}
	for i, e := range got {
		if e.Job != want[i] {
			t.Errorf("pop %d: job = %d, want %d", i, e.Job, want[i])
		}
	}
}

func TestKindBreaksTiesWithinJob(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 10, Class: ClassJob, Job: 3, Kind: 5})
	q.Push(Event{Time: 10, Class: ClassJob, Job: 3, Kind: 1})
	got := drain(&q)
	if got[0].Kind != 1 || got[1].Kind != 5 {
		t.Errorf("kinds popped as %d, %d; want 1, 5", got[0].Kind, got[1].Kind)
	}
}

func TestInsertionOrderIsFinalTieBreak(t *testing.T) {
	var q Queue
	for v := uint64(0); v < 5; v++ {
		q.Push(Event{Time: 1, Class: ClassJob, Job: 1, Version: v})
	}
	got := drain(&q)
	for i, e := range got {
		if e.Version != uint64(i) {
			t.Errorf("pop %d: version = %d, want %d (FIFO among identical events)", i, e.Version, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported an event")
	}
	q.Push(Event{Time: 2})
	q.Push(Event{Time: 1})
	e, ok := q.Peek()
	if !ok || e.Time != 1 {
		t.Fatalf("Peek = %+v, %v; want time 1", e, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len after Peek = %d, want 2", q.Len())
	}
}

// TestQueueMatchesReferenceSort fuzzes the heap against a stable sort of
// the same events under the documented ordering.
func TestQueueMatchesReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		n := 1 + rng.Intn(200)
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{
				Time:    float64(rng.Intn(10)),
				Class:   Class(rng.Intn(2)),
				Job:     rng.Intn(4),
				Kind:    rng.Intn(3),
				Version: uint64(i), // identifies insertion order
			}
			q.Push(events[i])
		}
		want := append([]Event(nil), events...)
		sort.SliceStable(want, func(a, b int) bool {
			ea, eb := want[a], want[b]
			//pollux:floateq-ok reference comparator mirrors Event.before; exactly equal times are genuine ties
			if ea.Time != eb.Time {
				return ea.Time < eb.Time
			}
			if ea.Class != eb.Class {
				return ea.Class < eb.Class
			}
			if ea.Job != eb.Job {
				return ea.Job < eb.Job
			}
			return ea.Kind < eb.Kind
		})
		got := drain(&q)
		if len(got) != n {
			t.Fatalf("trial %d: drained %d events, want %d", trial, len(got), n)
		}
		for i := range got {
			if got[i].Version != want[i].Version {
				t.Fatalf("trial %d pop %d: event %d, want %d", trial, i, got[i].Version, want[i].Version)
			}
		}
	}
}
