// Package eventsim is the discrete-event simulation kernel underlying the
// cluster simulator's event engine. Instead of stepping a fixed wall-clock
// tick, a simulation pushes timestamped events onto a priority queue and
// repeatedly pops the earliest one, jumping the clock directly between the
// moments at which something actually happens (job arrivals, scheduling
// rounds, agent reports, restart expiries, provisioning completions,
// decay-boundary crossings, job finishes).
//
// Determinism is part of the kernel contract. Events that share a
// timestamp are ordered by
//
//  1. class: cluster events before job events,
//  2. job ID: lowest first (job events only; cluster events carry job 0),
//  3. kind: lowest first, so e.g. the agent-report round of a scheduling
//     instant runs before the scheduling round itself,
//  4. insertion order (a monotone sequence number), as the final
//     tie-break.
//
// The kernel also supports O(1) lazy invalidation: predicted events (a
// job's closed-form finish time, say) carry the job's Version at
// prediction time; when the job's state changes, the simulation bumps the
// version and simply abandons the stale event when it surfaces, instead
// of deleting it from the middle of the heap.
package eventsim

// Class partitions events for deterministic tie-breaking at equal
// timestamps: all cluster-level events (scheduling rounds, agent reports,
// provisioning completions) run before any per-job event (arrivals,
// restart expiries, progress milestones) scheduled for the same instant.
type Class uint8

const (
	// ClassCluster marks cluster-level events.
	ClassCluster Class = iota
	// ClassJob marks per-job events.
	ClassJob
)

// Event is one timestamped entry in the queue. Kind, Job, and Version are
// opaque to the kernel except where they participate in ordering; the
// simulation layer defines its own kind enumeration and checks Version
// against per-job state to discard stale predictions.
type Event struct {
	Time  float64
	Class Class
	// Job is the owning job's ID for ClassJob events; ClassCluster events
	// leave it zero. Among job events at one instant, lower IDs run first.
	Job int
	// Kind orders events of the same class, job, and time: lower kinds
	// first.
	Kind int
	// Version tags predicted events for lazy invalidation; the kernel
	// ignores it when ordering.
	Version uint64

	seq uint64
}

// before is the kernel's strict ordering relation.
func (e Event) before(o Event) bool {
	//pollux:floateq-ok strict event ordering: exactly equal times fall through to the deterministic tie-breakers
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Class != o.Class {
		return e.Class < o.Class
	}
	if e.Job != o.Job {
		return e.Job < o.Job
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	return e.seq < o.seq
}

// Queue is a binary min-heap of events under the deterministic ordering
// above. The zero value is ready to use.
type Queue struct {
	items []Event
	seq   uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.items) }

// Push inserts an event, stamping it with the next sequence number so
// otherwise-identical events pop in insertion order.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest event. The second return is false
// when the queue is empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.items) == 0 {
		return Event{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.items) == 0 {
		return Event{}, false
	}
	return q.items[0], true
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].before(q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		c := l
		if r < n && q.items[r].before(q.items[l]) {
			c = r
		}
		if !q.items[c].before(q.items[i]) {
			return
		}
		q.items[i], q.items[c] = q.items[c], q.items[i]
		i = c
	}
}
