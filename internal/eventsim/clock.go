package eventsim

import "time"

// Clock paces a simulation between events. The kernel itself only orders
// events; a Clock decides how much wall time, if any, must elapse before
// the simulation may jump from one event's timestamp to the next. This is
// the only difference between a pure simulation run and a wall-clock
// "live" run of the same event loop: swap the clock, keep the events.
type Clock interface {
	// Wait blocks until the simulation may advance from simulated time
	// now to simulated time next (next >= now).
	Wait(now, next float64)
}

// Virtual is the virtual-time clock: events are dispatched as fast as the
// host allows, which makes runs deterministic and replayable.
type Virtual struct{}

// Wait returns immediately: virtual time is free.
func (Virtual) Wait(now, next float64) {}

// Wall paces simulated time against the wall clock, scaled by a
// compression factor: Compression simulated seconds pass per wall-clock
// second. The first Wait anchors simulated-to-wall correspondence; later
// waits sleep until the target instant rather than sleeping per-gap, so
// time spent handling events is absorbed instead of accumulating as
// drift (the old Trainer sleep loop drifted by its per-tick work).
type Wall struct {
	// Compression is simulated seconds per wall-clock second; it must be
	// positive (use Virtual for unpaced runs).
	Compression float64

	// SleepFn and NowFn are test hooks; nil means time.Sleep / time.Now.
	SleepFn func(time.Duration)
	NowFn   func() time.Time

	anchorWall time.Time
	anchorSim  float64
	anchored   bool
}

// Wait sleeps until the wall-clock instant corresponding to simulated
// time next.
func (w *Wall) Wait(now, next float64) {
	if w.Compression <= 0 {
		panic("eventsim: Wall clock requires positive Compression")
	}
	wallNow := time.Now
	if w.NowFn != nil {
		wallNow = w.NowFn
	}
	if !w.anchored {
		w.anchored = true
		w.anchorWall = wallNow()
		w.anchorSim = now
	}
	target := w.anchorWall.Add(time.Duration(float64(time.Second) * (next - w.anchorSim) / w.Compression))
	d := target.Sub(wallNow())
	if d <= 0 {
		return // already behind schedule: catch up without sleeping
	}
	if w.SleepFn != nil {
		w.SleepFn(d)
		return
	}
	time.Sleep(d)
}

// Drive runs an event loop on the queue: it pops events in the kernel's
// deterministic order, paces each advance with the clock, and hands every
// event to handle. It stops when the queue drains or handle returns
// false, and returns the timestamp of the last event dispatched (start if
// none was). Handlers may push further events onto the queue.
func Drive(q *Queue, c Clock, start float64, handle func(Event) bool) float64 {
	now := start
	for {
		e, ok := q.Pop()
		if !ok {
			return now
		}
		c.Wait(now, e.Time)
		now = e.Time
		if !handle(e) {
			return now
		}
	}
}
