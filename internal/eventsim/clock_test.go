package eventsim

import (
	"testing"
	"time"
)

// TestDriveDispatchesInOrder: Drive must pop in kernel order and let
// handlers push follow-up events that are interleaved correctly.
func TestDriveDispatchesInOrder(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 10, Class: ClassJob, Job: 2, Kind: 1})
	q.Push(Event{Time: 5, Class: ClassCluster, Kind: 0})

	var got []float64
	end := Drive(&q, Virtual{}, 0, func(e Event) bool {
		got = append(got, e.Time)
		if e.Time == 5 {
			// A handler may extend the schedule.
			q.Push(Event{Time: 7, Class: ClassJob, Job: 1, Kind: 0})
		}
		return true
	})
	want := []float64{5, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		//pollux:floateq-ok dispatch hands back the exact times pushed; any difference is a kernel bug
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
	if end != 10 {
		t.Errorf("Drive returned %v, want 10", end)
	}
}

// TestDriveStopsOnFalse: returning false must stop the loop immediately,
// leaving later events unpopped.
func TestDriveStopsOnFalse(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 1})
	q.Push(Event{Time: 2})
	q.Push(Event{Time: 3})
	n := 0
	end := Drive(&q, Virtual{}, 0, func(e Event) bool {
		n++
		return e.Time < 2
	})
	if n != 2 {
		t.Errorf("handled %d events, want 2", n)
	}
	if end != 2 {
		t.Errorf("Drive returned %v, want 2", end)
	}
	if q.Len() != 1 {
		t.Errorf("queue has %d events left, want 1", q.Len())
	}
}

// TestDriveEmptyQueue: an empty queue returns the start time untouched.
func TestDriveEmptyQueue(t *testing.T) {
	var q Queue
	end := Drive(&q, Virtual{}, 42, func(Event) bool { t.Fatal("handler called"); return false })
	if end != 42 {
		t.Errorf("Drive returned %v, want 42", end)
	}
}

// TestWallClockSleepsScaledGaps: the wall clock must sleep each gap
// scaled by 1/Compression, anchored to the first Wait.
func TestWallClockSleepsScaledGaps(t *testing.T) {
	var slept []time.Duration
	now := time.Unix(0, 0)
	w := &Wall{
		Compression: 100,
		NowFn:       func() time.Time { return now },
		SleepFn: func(d time.Duration) {
			slept = append(slept, d)
			now = now.Add(d) // the sleep is the only wall time that passes
		},
	}
	w.Wait(0, 50)  // 50 sim-s at 100x -> 500 ms
	w.Wait(50, 60) // +10 sim-s -> 100 ms
	want := []time.Duration{500 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("slept %v, want %v", slept, want)
	}
}

// TestWallClockAbsorbsHandlerTime: when event handling already consumed
// the gap's wall budget, Wait must not sleep (anchored pacing catches up
// instead of accumulating drift).
func TestWallClockAbsorbsHandlerTime(t *testing.T) {
	now := time.Unix(0, 0)
	slept := time.Duration(0)
	w := &Wall{
		Compression: 10,
		NowFn:       func() time.Time { return now },
		SleepFn: func(d time.Duration) {
			slept += d
			now = now.Add(d)
		},
	}
	w.Wait(0, 0)                   // anchor
	now = now.Add(3 * time.Second) // a slow handler burned 3 s of wall time
	w.Wait(0, 10)                  // 10 sim-s = 1 s wall budget, already spent
	if slept != 0 {
		t.Errorf("slept %v while behind schedule, want 0", slept)
	}
	w.Wait(10, 50) // target wall t=5s, now at 3s -> sleep 2s
	if slept != 2*time.Second {
		t.Errorf("slept %v, want 2s (catch-up against the anchor)", slept)
	}
}

// TestWallClockRejectsNonPositiveCompression: misconfiguration must fail
// loudly rather than busy-loop or divide by zero.
func TestWallClockRejectsNonPositiveCompression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wall{Compression: 0}.Wait did not panic")
		}
	}()
	(&Wall{}).Wait(0, 1)
}
