package cluster

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/checkpoint"
	"repro/internal/sched"
	"repro/internal/workload"
)

func checkpointPolicy(seed int64) *sched.Pollux {
	return sched.NewPollux(sched.PolluxOptions{Population: 15, Generations: 8}, seed)
}

// TestReplayCheckpointResumeBitIdentical is the acceptance bar for the
// checkpoint machinery, held to the same standard as
// TestReplayDeterminism: freezing a replay at a mid-trace scheduling
// round, serializing the whole deployment through the on-disk envelope,
// and resuming it in a fresh process state must produce a Result
// bit-identical to the uninterrupted run. Several cut times exercise
// different mixes of not-yet-arrived, running, and finished jobs; the
// front-end and RPC variants pin the admission log and the net/rpc
// transport through the same save/load/resume cycle.
func TestReplayCheckpointResumeBitIdentical(t *testing.T) {
	runCase := func(t *testing.T, tr workload.Trace, cfg ReplayConfig, cuts []float64) {
		straight, err := Replay(tr, checkpointPolicy(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if straight.Summary.Completed == 0 {
			t.Fatal("straight-through run completed no jobs; cuts would not exercise running trainers")
		}
		for _, cut := range cuts {
			ck, err := ReplayToCheckpoint(tr, checkpointPolicy(3), cfg, cut)
			if err != nil {
				t.Fatalf("checkpoint at %.0fs: %v", cut, err)
			}
			// Round-trip through the real on-disk envelope so atomic write,
			// checksum, and canonical JSON encoding are all on the path.
			path := filepath.Join(t.TempDir(), "replay.ckpt")
			if err := checkpoint.Write(path, "replay", 1, ck); err != nil {
				t.Fatalf("write at %.0fs: %v", cut, err)
			}
			var loaded ReplayCheckpoint
			if _, err := checkpoint.Read(path, "replay", 1, &loaded); err != nil {
				t.Fatalf("read at %.0fs: %v", cut, err)
			}
			resumed, err := ResumeReplay(tr, checkpointPolicy(3), cfg, &loaded)
			if err != nil {
				t.Fatalf("resume from %.0fs: %v", cut, err)
			}
			if !reflect.DeepEqual(straight, resumed) {
				t.Errorf("resume from checkpoint at %.0fs diverged from straight-through run:\n%+v\nvs\n%+v",
					cut, straight.Summary, resumed.Summary)
			}
		}
	}

	t.Run("plain", func(t *testing.T) {
		tr := smallTrace(3, 10)
		if len(tr.Jobs) < 3 {
			t.Skip("trace too small after filtering")
		}
		runCase(t, tr, smallReplayCfg(3), []float64{300, 900, 2400})
	})
	t.Run("frontend", func(t *testing.T) {
		tr := tenantTrace(11)
		if len(tr.Jobs) < 8 {
			t.Skip("trace too small after filtering")
		}
		cfg := smallReplayCfg(11)
		cfg.FrontEnd = &admit.Options{
			Admission: admit.AdmitQuota,
			Quotas:    map[string]int{"batch": 4, "burst": 2},
			Priority:  admit.PrioritySLO,
		}
		runCase(t, tr, cfg, []float64{600})
	})
	t.Run("rpc", func(t *testing.T) {
		tr := smallTrace(3, 10)
		if len(tr.Jobs) < 3 {
			t.Skip("trace too small after filtering")
		}
		cfg := smallReplayCfg(3)
		cfg.OverRPC = true
		runCase(t, tr, cfg, []float64{900})
	})
}

// TestReplayCheckpointMismatchFailsLoudly: resuming under the wrong
// config, the wrong trace, or an unsupported policy must error, never
// silently start fresh.
func TestReplayCheckpointMismatchFailsLoudly(t *testing.T) {
	tr := smallTrace(3, 10)
	if len(tr.Jobs) < 3 {
		t.Skip("trace too small after filtering")
	}
	cfg := smallReplayCfg(3)
	ck, err := ReplayToCheckpoint(tr, checkpointPolicy(3), cfg, 900)
	if err != nil {
		t.Fatal(err)
	}

	wrongShape := cfg
	wrongShape.Nodes = 8
	if _, err := ResumeReplay(tr, checkpointPolicy(3), wrongShape, ck); err == nil {
		t.Error("resume into a different cluster shape accepted, want loud error")
	}

	short := tr
	short.Jobs = short.Jobs[:len(short.Jobs)-1]
	if _, err := ResumeReplay(short, checkpointPolicy(3), cfg, ck); err == nil {
		t.Error("resume with a truncated trace accepted, want loud error")
	}

	if _, err := ResumeReplay(tr, sched.NewTiresias(), cfg, ck); err == nil {
		t.Error("resume with a non-checkpointable policy accepted, want loud error")
	}
	if _, err := ReplayToCheckpoint(tr, sched.NewTiresias(), cfg, 900); err == nil {
		t.Error("checkpointing a non-checkpointable policy accepted, want loud error")
	}

	if _, err := ReplayToCheckpoint(tr, checkpointPolicy(3), cfg, 1e12); err == nil {
		t.Error("checkpoint time past the end of the trace accepted, want loud error")
	}
}

// TestServiceSnapshotShapeMismatchFailsLoudly: restoring a service
// snapshot into a service whose cluster has a different shape fails
// loudly — the direct restore-into-mismatched-cluster check under the
// replay-level guard.
func TestServiceSnapshotShapeMismatchFailsLoudly(t *testing.T) {
	svc := NewService(NewState([]int{4, 4, 4, 4}))
	svc.SetFrontEnd(nil)
	if err := svc.SubmitReport(Report{Job: "job-0", GPUCap: 4}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	snap := svc.Snapshot()

	fewer := NewService(NewState([]int{4, 4}))
	if err := fewer.RestoreSnapshot(snap); err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("restore into fewer nodes: got %v, want node-count error", err)
	}
	smaller := NewService(NewState([]int{4, 4, 2, 4}))
	if err := smaller.RestoreSnapshot(snap); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("restore into smaller nodes: got %v, want capacity error", err)
	}
	ok := NewService(NewState([]int{4, 4, 4, 4}))
	if err := ok.RestoreSnapshot(snap); err != nil {
		t.Errorf("restore into matching shape failed: %v", err)
	}
}
