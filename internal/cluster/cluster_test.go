package cluster

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/ga"
	"repro/internal/models"
	"repro/internal/sched"
)

func TestStateBindAndEvict(t *testing.T) {
	s := NewState([]int{4, 4})
	if err := s.Bind("a", []int{2, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", []int{2, 2}); err != nil {
		t.Fatal(err)
	}
	u := s.Usage()
	if u[0] != 4 || u[1] != 2 {
		t.Errorf("usage = %v, want [4 2]", u)
	}
	// Over capacity on node 0.
	if err := s.Bind("c", []int{1, 0}); err == nil {
		t.Error("oversubscription not rejected")
	}
	// Rebinding a replaces the old placement, not adds to it.
	if err := s.Bind("a", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	u = s.Usage()
	if u[0] != 2 || u[1] != 3 {
		t.Errorf("usage after rebind = %v, want [2 3]", u)
	}
	s.Evict("a")
	if _, ok := s.Placement("a"); ok {
		t.Error("evicted job still placed")
	}
	if len(s.Jobs()) != 1 {
		t.Errorf("jobs = %v, want just b", s.Jobs())
	}
}

func TestStateBindWrongShape(t *testing.T) {
	s := NewState([]int{4})
	if err := s.Bind("a", []int{1, 1}); err == nil {
		t.Error("wrong-shape allocation accepted")
	}
}

func TestStatePlacementIsCopy(t *testing.T) {
	s := NewState([]int{4})
	s.Bind("a", []int{2})
	row, _ := s.Placement("a")
	row[0] = 99
	again, _ := s.Placement("a")
	if again[0] != 2 {
		t.Error("Placement leaked internal state")
	}
}

func TestApplyMatrixValidatesWholeMatrix(t *testing.T) {
	s := NewState([]int{4, 4})
	m := ga.Matrix{{3, 0}, {3, 0}} // node 0 oversubscribed in aggregate
	if err := s.ApplyMatrix([]string{"a", "b"}, m); err == nil {
		t.Error("aggregate oversubscription accepted")
	}
	ok := ga.Matrix{{3, 0}, {1, 4}}
	if err := s.ApplyMatrix([]string{"a", "b"}, ok); err != nil {
		t.Fatal(err)
	}
	if u := s.Usage(); u[0] != 4 || u[1] != 4 {
		t.Errorf("usage = %v", u)
	}
}

func TestServiceReportAllocateRoundTrip(t *testing.T) {
	state := NewState([]int{4, 4})
	svc := NewService(state)

	spec := models.ByName("resnet18")
	var vec [7]float64
	copy(vec[:], spec.Truth.Vector())
	rep := Report{
		Job: "job-0", Params: vec, Phi: spec.Phi(0.5),
		M0: spec.M0, MaxBatchPerGPU: spec.MaxBatchPerGPU,
		MaxBatchGlobal: spec.MaxBatchGlobal, GPUCap: 8,
	}
	if err := svc.SubmitReport(rep, &struct{}{}); err != nil {
		t.Fatal(err)
	}

	p := sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, 1)
	n, err := svc.ScheduleOnce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scheduled %d jobs, want 1", n)
	}
	var alloc Allocation
	if err := svc.GetAllocation("job-0", &alloc); err != nil {
		t.Fatal(err)
	}
	pl := sched.PlacementOf(alloc.Row)
	if pl.GPUs == 0 {
		t.Error("job not allocated any GPUs")
	}
	if pl.GPUs > 8 {
		t.Errorf("allocation %d exceeds reported GPU cap 8", pl.GPUs)
	}
	if alloc.Generation == 0 {
		t.Error("generation not bumped on allocation")
	}

	// Done report evicts.
	rep.Done = true
	if err := svc.SubmitReport(rep, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Placement("job-0"); ok {
		t.Error("done job still placed")
	}
}

func TestServiceRejectsAnonymousReport(t *testing.T) {
	svc := NewService(NewState([]int{4}))
	if err := svc.SubmitReport(Report{}, &struct{}{}); err == nil {
		t.Error("empty job name accepted")
	}
}

func TestRPCOverRealSocket(t *testing.T) {
	state := NewState([]int{4, 4})
	svc := NewService(state)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(svc, ln)

	client, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	spec := models.ByName("neumf")
	var vec [7]float64
	copy(vec[:], spec.Truth.Vector())
	err = client.SubmitReport(Report{
		Job: "rpc-job", Params: vec, Phi: spec.Phi(0.2),
		M0: spec.M0, MaxBatchPerGPU: spec.MaxBatchPerGPU, GPUCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := sched.NewPollux(sched.PolluxOptions{Population: 10, Generations: 5}, 2)
	if _, err := svc.ScheduleOnce(p, 0); err != nil {
		t.Fatal(err)
	}
	alloc, err := client.GetAllocation("rpc-job")
	if err != nil {
		t.Fatal(err)
	}
	if sched.PlacementOf(alloc.Row).GPUs == 0 {
		t.Error("no GPUs allocated over RPC")
	}
}

func TestTrainerRunsToCompletionOverRPC(t *testing.T) {
	state := NewState([]int{4, 4})
	svc := NewService(state)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(svc, ln)

	// Tiny job: neumf with shrunken work so the test runs in seconds.
	// The trainer runs unpaced on virtual time — the old version of this
	// test burned wall clock under a compression factor and its duration
	// varied with host load.
	spec := *models.ByName("neumf")
	spec.Epochs = 0.5
	tr := &Trainer{
		Job: "live-0", Spec: &spec,
		DisableCompression: true, Seed: 3,
	}

	// Scheduler loop: rounds back to back on the virtual clock.
	stop := make(chan struct{})
	go svc.RunRounds(
		sched.NewPollux(sched.PolluxOptions{Population: 10, Generations: 5}, 3),
		60, eventsim.Virtual{}, 0, stop, nil)
	defer close(stop)

	simSecs, err := tr.Run("tcp", ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Error("trainer not done")
	}
	if simSecs <= 0 {
		t.Errorf("simulated duration = %v", simSecs)
	}
	if tr.Progress() < 1 {
		t.Errorf("progress = %v, want >= 1", tr.Progress())
	}
}

func TestTrainerCompressionValidation(t *testing.T) {
	spec := models.ByName("neumf")
	// An explicit (or forgotten) zero is an error, not a silent default.
	tr := &Trainer{Job: "z", Spec: spec}
	if _, err := tr.Run("tcp", "127.0.0.1:1", 0); err == nil {
		t.Error("zero Compression accepted")
	}
	tr = &Trainer{Job: "n", Spec: spec, Compression: -5}
	if _, err := tr.Run("tcp", "127.0.0.1:1", 0); err == nil {
		t.Error("negative Compression accepted")
	}
	// Setting both knobs is contradictory.
	tr = &Trainer{Job: "b", Spec: spec, Compression: 100, DisableCompression: true}
	if _, err := tr.Run("tcp", "127.0.0.1:1", 0); err == nil {
		t.Error("Compression together with DisableCompression accepted")
	}
}

func TestStateSnapshotConsistentAndCopied(t *testing.T) {
	s := NewState([]int{4, 4})
	s.Bind("a", []int{2, 0})
	s.Bind("b", []int{0, 3})
	capacity, placed := s.Snapshot()
	if capacity[0] != 4 || capacity[1] != 4 {
		t.Errorf("capacity = %v", capacity)
	}
	if len(placed) != 2 || placed["a"][0] != 2 || placed["b"][1] != 3 {
		t.Errorf("placed = %v", placed)
	}
	// Mutating the snapshot must not touch the state.
	capacity[0] = 99
	placed["a"][0] = 99
	again, _ := s.Placement("a")
	if again[0] != 2 {
		t.Error("Snapshot leaked internal placement state")
	}
	if s.Capacity()[0] != 4 {
		t.Error("Snapshot leaked internal capacity state")
	}
}

func TestPlacementOfReExport(t *testing.T) {
	if PlacementOf([]int{2, 2}) != (core.Placement{GPUs: 4, Nodes: 2}) {
		t.Error("PlacementOf wrong")
	}
}
