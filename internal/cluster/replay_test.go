package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/admit"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// smallTrace keeps only resnet18/neumf jobs of a generated trace so
// replay tests finish fast, mirroring the sim package's test helper.
func smallTrace(seed int64, n int) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := workload.Generate(rng, workload.Options{Jobs: n, Hours: 0.5})
	out := workload.Trace{Duration: tr.Duration}
	for _, j := range tr.Jobs {
		if j.Model == "resnet18" || j.Model == "neumf" {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

func smallReplayCfg(seed int64) ReplayConfig {
	return ReplayConfig{
		Nodes: 4, GPUsPerNode: 4, UseTunedConfig: true,
		MaxTime: 12 * 3600, Seed: seed,
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a - b)
	}
	return math.Abs(a/b - 1)
}

// TestReplayDeterminism: replay runs entirely on virtual time, so two
// runs with the same seed must produce bit-identical results — the
// property the old wall-clock trainer loop could never offer.
func TestReplayDeterminism(t *testing.T) {
	tr := smallTrace(3, 10)
	if len(tr.Jobs) < 3 {
		t.Skip("trace too small after filtering")
	}
	run := func() ReplayResult {
		p := sched.NewPollux(sched.PolluxOptions{Population: 15, Generations: 8}, 3)
		res, err := Replay(tr, p, smallReplayCfg(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay not reproducible:\n%+v\nvs\n%+v", a, b)
	}
	if a.Summary.Completed == 0 {
		t.Error("no jobs completed")
	}
}

// TestReplayTransportParity: the in-process transport and the real
// net/rpc loopback socket must produce bit-identical replays — the RPC
// layer is marshaling, not semantics.
func TestReplayTransportParity(t *testing.T) {
	tr := smallTrace(5, 8)
	if len(tr.Jobs) < 2 {
		t.Skip("trace too small after filtering")
	}
	run := func(overRPC bool) ReplayResult {
		cfg := smallReplayCfg(5)
		cfg.OverRPC = overRPC
		res, err := Replay(tr, sched.NewTiresias(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local, rpc := run(false), run(true)
	if !reflect.DeepEqual(local, rpc) {
		t.Errorf("transports diverge:\nlocal %+v\nrpc   %+v", local, rpc)
	}
}

// TestReplayVsSimParitySmallShort is the -short replay parity smoke: a
// small trace through the replay engine vs the sim event engine.
func TestReplayVsSimParitySmallShort(t *testing.T) {
	tr := smallTrace(9, 10)
	if len(tr.Jobs) < 3 {
		t.Skip("trace too small after filtering")
	}
	simRes := sim.NewCluster(tr, sched.NewTiresias(), sim.Config{
		Nodes: 4, GPUsPerNode: 4, Tick: 2, UseTunedConfig: true,
		MaxTime: 12 * 3600, Seed: 9,
	}).Run()
	repRes, err := Replay(tr, sched.NewTiresias(), smallReplayCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Summary.Completed != repRes.Summary.Completed {
		t.Fatalf("completed: sim %d vs replay %d",
			simRes.Summary.Completed, repRes.Summary.Completed)
	}
	if d := relDiff(repRes.Summary.AvgJCT, simRes.Summary.AvgJCT); d > 0.05 {
		t.Errorf("avg JCT diverges %.1f%%: sim %v vs replay %v",
			100*d, simRes.Summary.AvgJCT, repRes.Summary.AvgJCT)
	}
}

// TestReplayVsSimParity: the replay engine must reproduce the simulator
// on the standard 16-node trace — same semantics reached through the
// live control path (Service, reports, runtime.Step) instead of the
// simulator's in-memory jobs. Like the tick-vs-event check, the engines
// draw different rng sequences (per-trainer rngs, 5 s profiling steps),
// so metrics agree statistically; the bar is 5% on JCT and goodput.
func TestReplayVsSimParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-engine comparison")
	}
	rng := rand.New(rand.NewSource(1))
	tr := workload.Generate(rng, workload.Options{
		Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
	})
	policies := map[string]func(seed int64) sched.Policy{
		"pollux": func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, seed)
		},
		"optimus":  func(seed int64) sched.Policy { return sched.NewOptimus(4) },
		"tiresias": func(seed int64) sched.Policy { return sched.NewTiresias() },
	}
	const tol = 0.05
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			simRes := sim.NewCluster(tr, mk(1), sim.Config{
				Nodes: 16, GPUsPerNode: 4, Tick: 1,
				UseTunedConfig: true, Seed: 1,
			}).Run()
			repRes, err := Replay(tr, mk(1), ReplayConfig{
				Nodes: 16, GPUsPerNode: 4, UseTunedConfig: true, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if simRes.Summary.Completed != repRes.Summary.Completed {
				t.Errorf("completed: sim %d vs replay %d",
					simRes.Summary.Completed, repRes.Summary.Completed)
			}
			if d := relDiff(repRes.Summary.AvgJCT, simRes.Summary.AvgJCT); d > tol {
				t.Errorf("avg JCT diverges %.1f%%: sim %v vs replay %v",
					100*d, simRes.Summary.AvgJCT, repRes.Summary.AvgJCT)
			}
			if d := relDiff(repRes.AvgGoodput, simRes.AvgGoodput); d > tol {
				t.Errorf("avg goodput diverges %.1f%%: sim %v vs replay %v",
					100*d, simRes.AvgGoodput, repRes.AvgGoodput)
			}
		})
	}
}

// tenantTrace generates a small multi-tenant trace (fast models only) for
// the admission parity tests.
func tenantTrace(seed int64) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := workload.Generate(rng, workload.Options{
		Hours: 0.5,
		Tenants: []workload.TenantSpec{
			{Name: "prod", Jobs: 8, SLOHours: 2},
			{Name: "batch", Jobs: 10},
			{Name: "burst", Jobs: 6, SLOHours: 1},
		},
	})
	out := workload.Trace{Duration: tr.Duration}
	for _, j := range tr.Jobs {
		if j.Model == "resnet18" || j.Model == "neumf" {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// TestAdmissionParitySimVsReplay is the cross-deployment admission
// parity gate: the same tenant trace, run through the simulator's event
// engine, its tick engine, and the live-testbed replay path, must produce
// IDENTICAL admission decision logs (job, tenant, time, verdict, reason,
// in arrival order) and per-tenant admit/reject counts. Admission is a
// pure function of the trace, never of the engine's clock.
func TestAdmissionParitySimVsReplay(t *testing.T) {
	tr := tenantTrace(11)
	if len(tr.Jobs) < 8 {
		t.Skip("trace too small after filtering")
	}
	feOpts := func() *admit.Options {
		return &admit.Options{
			Admission: admit.AdmitQuota,
			Quotas:    map[string]int{"batch": 4, "burst": 2},
			Priority:  admit.PrioritySLO,
		}
	}

	simCfg := sim.Config{
		Nodes: 4, GPUsPerNode: 4, Tick: 2, UseTunedConfig: true,
		MaxTime: 12 * 3600, Seed: 11, FrontEnd: feOpts(),
	}
	eventRes := sim.NewCluster(tr, sched.NewTiresias(), simCfg).Run()
	tickCfg := simCfg
	tickCfg.Engine = sim.EngineTick
	tickCfg.FrontEnd = feOpts()
	tickRes := sim.NewCluster(tr, sched.NewTiresias(), tickCfg).Run()

	repCfg := smallReplayCfg(11)
	repCfg.FrontEnd = feOpts()
	repRes, err := Replay(tr, sched.NewTiresias(), repCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(eventRes.Admissions) != len(tr.Jobs) {
		t.Fatalf("event engine logged %d decisions for %d jobs", len(eventRes.Admissions), len(tr.Jobs))
	}
	if !reflect.DeepEqual(eventRes.Admissions, tickRes.Admissions) {
		t.Errorf("event vs tick admission logs differ:\n%v\nvs\n%v",
			eventRes.Admissions, tickRes.Admissions)
	}
	if !reflect.DeepEqual(eventRes.Admissions, repRes.Admissions) {
		t.Errorf("sim vs replay admission logs differ:\n%v\nvs\n%v",
			eventRes.Admissions, repRes.Admissions)
	}

	rejected := 0
	for _, d := range eventRes.Admissions {
		if !d.Admitted {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("parity trace triggered no rejections; quota too loose to exercise admission")
	}
	for tenant, sts := range eventRes.PerTenant {
		rts, ok := repRes.PerTenant[tenant]
		if !ok {
			t.Errorf("tenant %s missing from replay results", tenant)
			continue
		}
		if sts.Submitted != rts.Submitted || sts.Admitted != rts.Admitted || sts.Rejected != rts.Rejected {
			t.Errorf("tenant %s counters diverge: sim %d/%d/%d vs replay %d/%d/%d",
				tenant, sts.Submitted, sts.Admitted, sts.Rejected,
				rts.Submitted, rts.Admitted, rts.Rejected)
		}
	}
}
