// Package cluster is the in-memory testbed runtime standing in for the
// paper's Kubernetes deployment (Sec. 4.3): nodes with GPUs, pod-like
// replica placements with bind/evict lifecycle and checkpoint-restart, a
// PolluxSched control loop, and a net/rpc boundary over which PolluxAgents
// report goodput functions and receive allocations — the same
// agent/scheduler split as the real system, at laptop scale.
//
// Training itself is simulated: each job's Trainer advances a model-zoo
// spec's ground truth under a configurable time compression, profiling
// noisy iteration times and gradient statistics exactly as the simulator
// does, but across real goroutines and a real network socket.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/sched"
)

// State tracks node capacity and live job placements. It is the
// "API server" of the toy cluster: all placement changes go through it,
// and it enforces GPU capacity invariants.
type State struct {
	mu       sync.Mutex
	capacity []int
	placed   map[string][]int // job -> per-node GPUs
}

// NewState creates a cluster with the given per-node GPU capacities.
func NewState(capacity []int) *State {
	c := make([]int, len(capacity))
	copy(c, capacity)
	return &State{capacity: c, placed: make(map[string][]int)}
}

// Capacity returns a copy of per-node GPU capacities.
func (s *State) Capacity() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.capacity))
	copy(out, s.capacity)
	return out
}

// Snapshot returns the per-node capacities and every job's placement
// under a single lock acquisition. The scheduling round snapshots the
// whole cluster at once instead of taking one lock round-trip per job
// (Capacity plus a Placement call each), so the view it hands the policy
// is consistent: no placement can change between two reads.
func (s *State) Snapshot() (capacity []int, placed map[string][]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	capacity = make([]int, len(s.capacity))
	copy(capacity, s.capacity)
	placed = make(map[string][]int, len(s.placed))
	for job, row := range s.placed {
		placed[job] = append([]int(nil), row...)
	}
	return capacity, placed
}

// Placement returns the job's current allocation (copy) and whether the
// job is known.
func (s *State) Placement(job string) ([]int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	row, ok := s.placed[job]
	if !ok {
		return nil, false
	}
	out := make([]int, len(row))
	copy(out, row)
	return out, true
}

// Bind applies a new allocation for a job, replacing any previous one.
// It fails if the allocation would oversubscribe any node.
func (s *State) Bind(job string, row []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(row) != len(s.capacity) {
		return fmt.Errorf("cluster: allocation has %d nodes, cluster has %d", len(row), len(s.capacity))
	}
	for n := range s.capacity {
		used := 0
		for j, r := range s.placed {
			if j != job {
				used += r[n]
			}
		}
		if used+row[n] > s.capacity[n] {
			return fmt.Errorf("cluster: node %d oversubscribed: %d + %d > %d", n, used, row[n], s.capacity[n])
		}
	}
	cp := make([]int, len(row))
	copy(cp, row)
	s.placed[job] = cp
	return nil
}

// Evict removes a job's placement entirely.
func (s *State) Evict(job string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.placed, job)
}

// Jobs lists currently placed job names, sorted: callers iterate the
// result, and handing them map order would leak nondeterminism.
func (s *State) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.placed))
	for j := range s.placed {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// Usage returns per-node GPU usage.
func (s *State) Usage() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.capacity))
	for _, row := range s.placed {
		for n, g := range row {
			out[n] += g
		}
	}
	return out
}

// ApplyMatrix binds an allocation matrix for the named jobs atomically
// with respect to capacity checking: it validates the whole matrix first.
func (s *State) ApplyMatrix(jobs []string, m ga.Matrix) error {
	if len(jobs) != len(m) {
		return fmt.Errorf("cluster: %d jobs but %d rows", len(jobs), len(m))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := range s.capacity {
		total := 0
		for j := range m {
			total += m[j][n]
		}
		if total > s.capacity[n] {
			return fmt.Errorf("cluster: matrix oversubscribes node %d", n)
		}
	}
	for i, job := range jobs {
		cp := make([]int, len(m[i]))
		copy(cp, m[i])
		s.placed[job] = cp
	}
	return nil
}

// PlacementOf converts a row to the core placement summary.
func PlacementOf(row []int) core.Placement { return sched.PlacementOf(row) }
