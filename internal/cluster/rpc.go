package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/ga"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// Report is what a PolluxAgent sends the scheduler at each reporting
// interval (Sec. 4.1: the fitted θsys and latest gradient statistics,
// plus the accounting the scheduler needs for weights and exploration).
// The fixed-configuration fields are consumed only by the baseline
// policies (Tiresias wants UserGPUs, Optimus+Oracle wants UserBatch and
// the RemainingIters oracle); Pollux ignores them.
type Report struct {
	Job            string
	Params         [7]float64 // θsys vector
	Phi            float64
	M0             int
	MaxBatchPerGPU int
	MaxBatchGlobal int
	GPUCap         int
	GPUTime        float64
	Submit         float64
	// UserGPUs and UserBatch are the job's fixed submission-time
	// configuration; RemainingIters is the oracle
	// iterations-to-completion at UserBatch (Sec. 5.2).
	UserGPUs       int
	UserBatch      int
	RemainingIters float64
	// Tenant and Deadline carry the job's multi-tenant identity and
	// absolute SLO deadline (0 = none) for the admit front end's priority
	// stage and per-tenant accounting.
	Tenant   string
	Deadline float64
	Done     bool
}

// Allocation is the scheduler's reply to a poll: the job's current
// per-node GPU assignment and a generation counter that increments on
// every change (so trainers can detect reallocation and checkpoint).
type Allocation struct {
	Row        []int
	Generation int
}

// Service is the net/rpc-exposed scheduler endpoint.
type Service struct {
	mu      sync.Mutex
	state   *State
	reports map[string]Report
	allocs  map[string]Allocation
	order   []string       // registration order for stable scheduling
	ids     map[string]int // stable scheduler-visible job IDs

	// schedMu serializes scheduling rounds: Round and Commit communicate
	// through roundJobs, so overlapping ScheduleOnce calls must not
	// interleave (reports keep flowing under mu while a round runs).
	schedMu sync.Mutex
	// roundJobs is the job snapshot of the scheduling round in flight,
	// set by Round and consumed by Commit (see runtime.Step).
	roundJobs []string

	// fe is the admit front end (nil = admit everything, snapshot order).
	// It is guarded by schedMu: admission decisions and scheduling rounds
	// serialize, so the decision log is a deterministic function of the
	// arrival order.
	fe *admit.FrontEnd
}

// NewService wraps cluster state in an RPC service.
func NewService(state *State) *Service {
	return &Service{
		state:   state,
		reports: make(map[string]Report),
		allocs:  make(map[string]Allocation),
		ids:     make(map[string]int),
	}
}

// SetFrontEnd installs the admit front end ahead of any traffic. The
// service shares one FrontEnd with its deployment (replay loop or live
// daemon) so admission decisions and scheduling both see it.
func (s *Service) SetFrontEnd(fe *admit.FrontEnd) {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	s.fe = fe
}

// FrontEnd returns the installed admit front end (nil when none).
func (s *Service) FrontEnd() *admit.FrontEnd {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	//pollux:aliasret-ok the FrontEnd handle is shared by design: SetFrontEnd installs it once before traffic and FrontEnd carries its own internal synchronization
	return s.fe
}

// AdmitJob runs one arrival through the admission stage. It holds the
// scheduling lock, so a decision never interleaves with a round in
// flight. Callers must present each job exactly once, in nondecreasing
// submit-time order, before the job's first report.
func (s *Service) AdmitJob(r admit.Request) bool {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	return s.fe.Arrive(r)
}

// SubmitReport receives an agent report. Reply is unused.
func (s *Service) SubmitReport(r Report, _ *struct{}) error {
	if r.Job == "" {
		return fmt.Errorf("cluster: report without job name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.reports[r.Job]; !seen {
		s.order = append(s.order, r.Job)
		// The ID is assigned once and never reused: Pollux carries GA
		// population rows and speedup tables across rounds keyed by job
		// ID, so IDs must not shift when earlier jobs finish.
		s.ids[r.Job] = len(s.order) - 1
	}
	s.reports[r.Job] = r
	if r.Done {
		s.state.Evict(r.Job)
		cur := s.allocs[r.Job]
		s.allocs[r.Job] = Allocation{Row: make([]int, len(s.state.Capacity())), Generation: cur.Generation + 1}
	}
	return nil
}

// GetAllocation returns the job's current allocation.
func (s *Service) GetAllocation(job string, reply *Allocation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.allocs[job]
	if !ok {
		a = Allocation{Row: make([]int, len(s.state.Capacity()))}
	}
	*reply = Allocation{Row: append([]int(nil), a.Row...), Generation: a.Generation}
	return nil
}

// ScheduleOnce runs one scheduling round — snapshot the reported jobs,
// run the policy, validate, diff, commit — through the shared
// runtime.Step core, the same round the simulator executes. It returns
// the number of jobs scheduled.
func (s *Service) ScheduleOnce(policy sched.Policy, now float64) (int, error) {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	return runtime.Step(s, s.fe, policy, now)
}

// Round snapshots the scheduler inputs for runtime.Step: every reported,
// unfinished job's goodput function and accounting in registration
// order, plus the placements currently in effect (one State.Snapshot,
// not a lock round-trip per job).
func (s *Service) Round(now float64) *sched.ClusterView {
	capacity, placed := s.state.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	var jobs []string
	view := &sched.ClusterView{Now: now, Capacity: capacity}
	for _, name := range s.order {
		r := s.reports[name]
		if r.Done {
			continue
		}
		jobs = append(jobs, name)
		minGPUs := 0
		if r.UserBatch > 0 && r.MaxBatchPerGPU > 0 {
			minGPUs = (r.UserBatch + r.MaxBatchPerGPU - 1) / r.MaxBatchPerGPU
		}
		view.Jobs = append(view.Jobs, sched.JobView{
			ID:       s.ids[name],
			Submit:   r.Submit,
			Tenant:   r.Tenant,
			Deadline: r.Deadline,
			Model: core.Model{
				Params:         core.ParamsFromVector(r.Params[:]),
				Phi:            r.Phi,
				M0:             r.M0,
				MaxBatchPerGPU: r.MaxBatchPerGPU,
				MaxBatchGlobal: r.MaxBatchGlobal,
			},
			GPUCap:         r.GPUCap,
			GPUTime:        r.GPUTime,
			UserGPUs:       r.UserGPUs,
			UserBatch:      r.UserBatch,
			MinGPUs:        minGPUs,
			RemainingIters: r.RemainingIters,
		})
	}
	view.Current = ga.NewMatrix(len(jobs), len(capacity))
	for i, name := range jobs {
		if row, ok := placed[name]; ok {
			copy(view.Current[i], row)
		}
	}
	s.roundJobs = jobs
	return view
}

// Commit atomically installs the validated allocation matrix for the
// last Round's jobs and bumps the allocation generation of every row
// that changed, so trainers detect the re-allocation and checkpoint. A
// job that reported Done while the policy was optimizing was already
// evicted by SubmitReport; its row is dropped here rather than rebound,
// which would leak a placement for a job that will never report again.
// The Done filter, the matrix application, and the generation bumps all
// happen under one hold of s.mu (SubmitReport takes the same lock), so
// no Done report can slip in between the filter and the bind.
func (s *Service) Commit(m ga.Matrix, changed []bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]string, 0, len(s.roundJobs))
	rows := make(ga.Matrix, 0, len(m))
	live := make([]int, 0, len(m)) // indices into the round's ordering
	for i, name := range s.roundJobs {
		if s.reports[name].Done {
			continue
		}
		jobs = append(jobs, name)
		rows = append(rows, m[i])
		live = append(live, i)
	}

	if err := s.state.ApplyMatrix(jobs, rows); err != nil {
		return err
	}

	for k, name := range jobs {
		if !changed[live[k]] {
			continue
		}
		cur := s.allocs[name]
		s.allocs[name] = Allocation{Row: append([]int(nil), rows[k]...), Generation: cur.Generation + 1}
	}
	return nil
}

// RunRounds drives scheduling rounds every interval simulated seconds on
// the eventsim kernel until stop is closed. The first round fires at
// start (zero for a fresh daemon; a restored daemon passes the next
// round time its checkpoint recorded, so the cadence survives a
// restart). The clock paces the rounds: a Wall clock with a compression
// factor yields the live scheduler loop (pollux-sched, the live-cluster
// example), a Virtual clock runs rounds back to back. Round failures (a
// malformed policy result, say) are reported through onRound and the
// loop keeps serving, matching the resilience of the old hand-rolled
// daemon loops; onRound may be nil.
func (s *Service) RunRounds(policy sched.Policy, interval float64, clock eventsim.Clock, start float64, stop <-chan struct{}, onRound func(now float64, scheduled int, err error)) {
	var q eventsim.Queue
	q.Push(eventsim.Event{Time: start, Class: eventsim.ClassCluster})
	eventsim.Drive(&q, clock, start, func(e eventsim.Event) bool {
		select {
		case <-stop:
			return false
		default:
		}
		n, err := s.ScheduleOnce(policy, e.Time)
		if onRound != nil {
			onRound(e.Time, n, err)
		}
		q.Push(eventsim.Event{Time: e.Time + interval, Class: eventsim.ClassCluster})
		return true
	})
}

// Serve registers the service under the name "PolluxSched" and accepts
// RPC connections on the listener until it is closed.
func Serve(svc *Service, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("PolluxSched", svc); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Client is a typed RPC client for agents.
type Client struct {
	c *rpc.Client
}

// Dial connects to a scheduler endpoint.
func Dial(network, addr string) (*Client, error) {
	c, err := rpc.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// SubmitReport sends an agent report.
func (c *Client) SubmitReport(r Report) error {
	return c.c.Call("PolluxSched.SubmitReport", r, &struct{}{})
}

// GetAllocation polls the job's allocation.
func (c *Client) GetAllocation(job string) (Allocation, error) {
	var a Allocation
	err := c.c.Call("PolluxSched.GetAllocation", job, &a)
	return a, err
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.c.Close() }
