package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/sched"
)

// Report is what a PolluxAgent sends the scheduler at each reporting
// interval (Sec. 4.1: the fitted θsys and latest gradient statistics,
// plus the accounting the scheduler needs for weights and exploration).
type Report struct {
	Job            string
	Params         [7]float64 // θsys vector
	Phi            float64
	M0             int
	MaxBatchPerGPU int
	MaxBatchGlobal int
	GPUCap         int
	GPUTime        float64
	Submit         float64
	Done           bool
}

// Allocation is the scheduler's reply to a poll: the job's current
// per-node GPU assignment and a generation counter that increments on
// every change (so trainers can detect reallocation and checkpoint).
type Allocation struct {
	Row        []int
	Generation int
}

// Service is the net/rpc-exposed scheduler endpoint.
type Service struct {
	mu      sync.Mutex
	state   *State
	reports map[string]Report
	allocs  map[string]Allocation
	order   []string // registration order for stable scheduling
}

// NewService wraps cluster state in an RPC service.
func NewService(state *State) *Service {
	return &Service{
		state:   state,
		reports: make(map[string]Report),
		allocs:  make(map[string]Allocation),
	}
}

// SubmitReport receives an agent report. Reply is unused.
func (s *Service) SubmitReport(r Report, _ *struct{}) error {
	if r.Job == "" {
		return fmt.Errorf("cluster: report without job name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.reports[r.Job]; !seen {
		s.order = append(s.order, r.Job)
	}
	s.reports[r.Job] = r
	if r.Done {
		s.state.Evict(r.Job)
		cur := s.allocs[r.Job]
		s.allocs[r.Job] = Allocation{Row: make([]int, len(s.state.Capacity())), Generation: cur.Generation + 1}
	}
	return nil
}

// GetAllocation returns the job's current allocation.
func (s *Service) GetAllocation(job string, reply *Allocation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.allocs[job]
	if !ok {
		a = Allocation{Row: make([]int, len(s.state.Capacity()))}
	}
	*reply = Allocation{Row: append([]int(nil), a.Row...), Generation: a.Generation}
	return nil
}

// ScheduleOnce runs one PolluxSched pass over all reported, unfinished
// jobs and applies the best allocation matrix to the cluster state. It
// returns the number of jobs scheduled.
func (s *Service) ScheduleOnce(policy sched.Policy, now float64) (int, error) {
	s.mu.Lock()
	var jobs []string
	view := &sched.ClusterView{Now: now, Capacity: s.state.Capacity()}
	for _, name := range s.order {
		r := s.reports[name]
		if r.Done {
			continue
		}
		jobs = append(jobs, name)
		params := core.ParamsFromVector(r.Params[:])
		view.Jobs = append(view.Jobs, sched.JobView{
			ID:     len(jobs) - 1,
			Submit: r.Submit,
			Model: core.Model{
				Params:         params,
				Phi:            r.Phi,
				M0:             r.M0,
				MaxBatchPerGPU: r.MaxBatchPerGPU,
				MaxBatchGlobal: r.MaxBatchGlobal,
			},
			GPUCap:  r.GPUCap,
			GPUTime: r.GPUTime,
		})
	}
	view.Current = ga.NewMatrix(len(jobs), len(view.Capacity))
	for i, name := range jobs {
		if row, ok := s.state.Placement(name); ok {
			copy(view.Current[i], row)
		}
	}
	s.mu.Unlock()

	if len(jobs) == 0 {
		return 0, nil
	}
	m := policy.Schedule(view)
	if len(m) != len(jobs) {
		return 0, fmt.Errorf("cluster: policy returned %d rows for %d jobs", len(m), len(jobs))
	}
	if err := s.state.ApplyMatrix(jobs, m); err != nil {
		return 0, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range jobs {
		cur := s.allocs[name]
		if !sameRow(cur.Row, m[i]) {
			s.allocs[name] = Allocation{Row: append([]int(nil), m[i]...), Generation: cur.Generation + 1}
		}
	}
	return len(jobs), nil
}

func sameRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Serve registers the service under the name "PolluxSched" and accepts
// RPC connections on the listener until it is closed.
func Serve(svc *Service, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("PolluxSched", svc); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Client is a typed RPC client for agents.
type Client struct {
	c *rpc.Client
}

// Dial connects to a scheduler endpoint.
func Dial(network, addr string) (*Client, error) {
	c, err := rpc.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// SubmitReport sends an agent report.
func (c *Client) SubmitReport(r Report) error {
	return c.c.Call("PolluxSched.SubmitReport", r, &struct{}{})
}

// GetAllocation polls the job's allocation.
func (c *Client) GetAllocation(job string) (Allocation, error) {
	var a Allocation
	err := c.c.Call("PolluxSched.GetAllocation", job, &a)
	return a, err
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.c.Close() }
