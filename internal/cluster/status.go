package cluster

import "sort"

// TenantStatus is one tenant's admission counters for the status
// endpoint, with the queue-depth sum already averaged over rounds.
type TenantStatus struct {
	Name          string
	Submitted     int
	Admitted      int
	Rejected      int
	AvgQueueDepth float64
}

// ServiceStatus is a read-only point-in-time view of the service for the
// HTTP status endpoint: cluster occupancy, job-queue depths, and the
// front end's per-tenant admission counters. It is assembled under the
// report lock only — never the scheduling lock — so serving it cannot
// delay or reorder scheduling rounds.
type ServiceStatus struct {
	Nodes     int
	GPUsTotal int
	GPUsUsed  int
	Usage     []int

	// Jobs counts every registered job; Running those holding GPUs,
	// Pending those admitted but currently allocated none (the queue
	// depth), Done those that reported completion.
	Jobs    int
	Running int
	Pending int
	Done    int

	// Admission and Priority name the front end's policies ("always" /
	// "constant" without one); Tenants is sorted by name.
	Admission string
	Priority  string
	Tenants   []TenantStatus
}

// Status assembles the service's current status view.
func (s *Service) Status() ServiceStatus {
	capacity := s.state.Capacity()
	usage := s.state.Usage()
	st := ServiceStatus{
		Nodes: len(capacity),
		Usage: usage,
	}
	for _, c := range capacity {
		st.GPUsTotal += c
	}
	for _, u := range usage {
		st.GPUsUsed += u
	}

	s.mu.Lock()
	for _, name := range s.order {
		st.Jobs++
		switch {
		case s.reports[name].Done:
			st.Done++
		case gpusOf(s.allocs[name].Row) > 0:
			st.Running++
		default:
			st.Pending++
		}
	}
	fe := s.fe
	s.mu.Unlock()

	st.Admission = fe.AdmissionName()
	st.Priority = fe.PriorityName()
	rounds := fe.Rounds()
	stats := fe.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := stats[name]
		t := TenantStatus{
			Name:      name,
			Submitted: ts.Submitted,
			Admitted:  ts.Admitted,
			Rejected:  ts.Rejected,
		}
		if rounds > 0 {
			t.AvgQueueDepth = ts.QueueDepthSum / float64(rounds)
		}
		st.Tenants = append(st.Tenants, t)
	}
	return st
}

// gpusOf sums an allocation row.
func gpusOf(row []int) int {
	total := 0
	for _, g := range row {
		total += g
	}
	return total
}
