package cluster

// Snapshot/restore for the cluster service and its trainers: the state a
// long-lived pollux-sched (or a mid-trace replay) needs to resume exactly
// where it stopped — the job registry in registration order, the pending
// reports, the committed allocation rows with their generations, the
// placements bound in cluster State, the admit front end, and each live
// trainer's full control-loop state.
//
// As everywhere in the checkpoint machinery, keyed collections are
// flattened to slices in a deterministic order (here: the service's own
// registration order, which is itself part of the state — Pollux job IDs
// are positions in it) so the canonical JSON encoding is byte-stable.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/admit"
	"repro/internal/agent"
	"repro/internal/detrand"
)

// JobSnapshot is one registered job's service-side state: its latest
// report and, when an allocation row has been committed for it, that row
// and its generation counter. Jobs appear in registration order, which
// defines their stable scheduler-visible IDs.
type JobSnapshot struct {
	Report     Report
	HasAlloc   bool  `json:",omitempty"`
	Row        []int `json:",omitempty"`
	Generation int   `json:",omitempty"`
}

// PlacedJob is one bound placement in cluster State, sorted by job name.
type PlacedJob struct {
	Job string
	Row []int
}

// ServiceSnapshot is the full serializable state of a Service and its
// cluster State.
type ServiceSnapshot struct {
	Capacity []int
	Placed   []PlacedJob   `json:",omitempty"`
	Jobs     []JobSnapshot `json:",omitempty"` // registration order
	Order    []string      `json:",omitempty"`
	FrontEnd *admit.FrontEndState
}

// Snapshot captures the service's complete restorable state. It takes
// the scheduling lock, so it never observes a round in flight.
func (s *Service) Snapshot() *ServiceSnapshot {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	capacity, placed := s.state.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()

	snap := &ServiceSnapshot{
		Capacity: capacity,
		Order:    append([]string(nil), s.order...),
		FrontEnd: s.fe.State(),
	}
	names := make([]string, 0, len(placed))
	for job := range placed {
		names = append(names, job)
	}
	sort.Strings(names)
	for _, job := range names {
		snap.Placed = append(snap.Placed, PlacedJob{Job: job, Row: placed[job]})
	}
	for _, name := range s.order {
		js := JobSnapshot{Report: s.reports[name]}
		if a, ok := s.allocs[name]; ok {
			js.HasAlloc = true
			js.Row = append([]int(nil), a.Row...)
			js.Generation = a.Generation
		}
		snap.Jobs = append(snap.Jobs, js)
	}
	return snap
}

// RestoreSnapshot applies a saved state to a freshly constructed Service
// whose State was built with the same capacity and whose front end was
// rebuilt from the same admit.Options. A cluster-shape or front-end
// mismatch fails loudly and leaves the service unusable rather than
// silently starting fresh.
func (s *Service) RestoreSnapshot(snap *ServiceSnapshot) error {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	cur := s.state.Capacity()
	if len(cur) != len(snap.Capacity) {
		return fmt.Errorf("cluster: snapshot has %d nodes, service has %d", len(snap.Capacity), len(cur))
	}
	for n := range cur {
		if cur[n] != snap.Capacity[n] {
			return fmt.Errorf("cluster: snapshot capacity %v does not match service capacity %v", snap.Capacity, cur)
		}
	}
	if len(snap.Jobs) != len(snap.Order) {
		return fmt.Errorf("cluster: snapshot misaligned: %d jobs for %d order entries", len(snap.Jobs), len(snap.Order))
	}
	if err := s.fe.RestoreState(snap.FrontEnd); err != nil {
		return err
	}
	for _, p := range snap.Placed {
		if err := s.state.Bind(p.Job, p.Row); err != nil {
			return fmt.Errorf("cluster: snapshot placement for %q does not fit: %w", p.Job, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order = append([]string(nil), snap.Order...)
	s.reports = make(map[string]Report, len(snap.Jobs))
	s.allocs = make(map[string]Allocation, len(snap.Jobs))
	s.ids = make(map[string]int, len(snap.Order))
	for i, name := range snap.Order {
		s.ids[name] = i
		js := snap.Jobs[i]
		if js.Report.Job != name {
			return fmt.Errorf("cluster: snapshot job %d reports as %q but is registered as %q", i, js.Report.Job, name)
		}
		s.reports[name] = js.Report
		if js.HasAlloc {
			s.allocs[name] = Allocation{Row: append([]int(nil), js.Row...), Generation: js.Generation}
		}
	}
	return nil
}

// TrainerSnapshot is the full serializable state of a running Trainer:
// training progress, the agent with its fitted model and profile, the
// counting-RNG state, and the control-loop clocks.
type TrainerSnapshot struct {
	Job      string
	Submit   float64
	Progress float64
	GPUTime  float64
	Batch    int
	Done     bool

	RNG   detrand.State
	Agent *agent.Snapshot

	SimNow       float64
	RestartUntil float64
	NextReport   float64
	LastGen      int

	TputSum float64
	GoodSum float64
	RunTime float64
}

// Snapshot captures the trainer's complete restorable state. It must run
// on the driving goroutine (or with the trainer's event loop idle), the
// same discipline as tick.
func (t *Trainer) Snapshot() *TrainerSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TrainerSnapshot{
		Job:          t.Job,
		Submit:       t.submit,
		Progress:     t.progress,
		GPUTime:      t.gpuTime,
		Batch:        t.batch,
		Done:         t.done,
		RNG:          t.src.State(),
		Agent:        t.ag.Snapshot(),
		SimNow:       t.simNow,
		RestartUntil: t.restartUntil,
		NextReport:   t.nextReport,
		LastGen:      t.lastGen,
		TputSum:      t.tputSum,
		GoodSum:      t.goodSum,
		RunTime:      t.runTime,
	}
}

// restore rebuilds the control-loop state from a snapshot against a
// transport. Unlike begin it sends no initial report — the service
// snapshot already holds the job's latest report — and the next tick
// continues exactly where the saved trainer stopped.
func (t *Trainer) restore(tr Transport, snap *TrainerSnapshot) error {
	if snap.Job != t.Job {
		return fmt.Errorf("cluster: trainer %q given snapshot for %q", t.Job, snap.Job)
	}
	ag, err := agent.FromSnapshot(snap.Agent)
	if err != nil {
		return fmt.Errorf("cluster: trainer %q: %w", t.Job, err)
	}
	if t.ReportEvery <= 0 {
		t.ReportEvery = 30
	}
	if t.RestartDelay == 0 {
		t.RestartDelay = 30
	}
	t.transport = tr
	t.submit = snap.Submit
	t.src = detrand.Restore(snap.RNG)
	t.rng = rand.New(t.src)
	t.ag = ag
	t.simNow = snap.SimNow
	t.restartUntil = snap.RestartUntil
	t.nextReport = snap.NextReport
	t.lastGen = snap.LastGen
	t.tputSum = snap.TputSum
	t.goodSum = snap.GoodSum
	t.runTime = snap.RunTime
	t.mu.Lock()
	t.progress = snap.Progress
	t.gpuTime = snap.GPUTime
	t.batch = snap.Batch
	t.done = snap.Done
	t.mu.Unlock()
	return nil
}
