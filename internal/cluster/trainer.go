package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/eventsim"
	"repro/internal/models"
	"repro/internal/sched"
)

// trainerTick is the simulated seconds per control-loop step: the cadence
// at which a trainer polls its allocation and advances training.
const trainerTick = 5.0

// Transport is the agent's side of the Sec. 4.3 boundary: the two calls
// a trainer makes against the scheduler. *Client implements it over
// net/rpc; Local implements it with direct Service calls so a replay run
// can drive the identical control path in process.
type Transport interface {
	SubmitReport(r Report) error
	GetAllocation(job string) (Allocation, error)
}

// Local is the in-process Transport: direct method calls on the Service,
// bypassing only the gob marshaling of the RPC layer. Results are
// bit-identical to the net/rpc path (see TestReplayTransportParity).
type Local struct{ Svc *Service }

// SubmitReport delivers an agent report.
func (l Local) SubmitReport(r Report) error { return l.Svc.SubmitReport(r, &struct{}{}) }

// GetAllocation polls the job's allocation.
func (l Local) GetAllocation(job string) (Allocation, error) {
	var a Allocation
	err := l.Svc.GetAllocation(job, &a)
	return a, err
}

// Trainer simulates one training job's agent loop: it polls its
// allocation, advances ground-truth training, profiles noisy
// observations into its PolluxAgent, and reports the fitted goodput
// function back to the scheduler — the full Sec. 4.3 agent loop. The
// loop runs on the eventsim kernel: Run paces it against the wall clock
// under a compression factor (the live deployment), while the replay
// engine drives many trainers' events through one shared queue on
// virtual time (see Replay).
type Trainer struct {
	Job  string
	Spec *models.Spec

	// Compression maps wall-clock to simulated seconds (e.g. 1000 means
	// one real millisecond simulates one second of training). Run
	// requires it to be positive; set DisableCompression to run unpaced
	// on virtual time instead (an explicit zero alone is an error, so a
	// forgotten field can no longer silently pick a pace).
	Compression float64
	// DisableCompression runs the loop on virtual time: no sleeping at
	// all, as fast as the host allows. Mutually exclusive with a
	// nonzero Compression.
	DisableCompression bool
	// ReportEvery is the simulated-seconds interval between reports
	// (default 30, as in the paper).
	ReportEvery float64
	// RestartDelay is the simulated checkpoint-restart pause. The zero
	// value takes the 30 s default; a negative value means an explicit
	// zero pause (the sim.Config.RestartDelay convention).
	RestartDelay float64
	Seed         int64

	// FixedBatch pins the training batch size for jobs scheduled by the
	// non-batch-adaptive baselines; 0 (the default) lets the agent
	// re-tune the batch every report, the Pollux behaviour.
	FixedBatch int
	// UserGPUs and UserBatch are the job's fixed submission-time
	// configuration, forwarded in reports for the baseline schedulers
	// (Tiresias wants the GPU count, Optimus+Oracle the batch size and
	// its remaining-iterations oracle). Zero values are fine under
	// Pollux, which ignores them.
	UserGPUs  int
	UserBatch int
	// Tenant and Deadline carry the job's multi-tenant identity and
	// absolute SLO deadline into every report (zero values for
	// single-tenant jobs).
	Tenant   string
	Deadline float64

	mu       sync.Mutex
	progress float64
	gpuTime  float64
	batch    int
	done     bool

	// Control-loop state, touched only by the driving goroutine. The rng
	// is backed by src, a counting source whose (seed, draws) state makes
	// the trainer checkpointable without changing a single draw.
	transport    Transport
	submit       float64
	src          *detrand.Source
	rng          *rand.Rand
	ag           *agent.Agent
	simNow       float64
	restartUntil float64
	nextReport   float64
	lastGen      int

	// Accumulated run metrics for replay summaries.
	tputSum, goodSum, runTime float64
}

// Progress returns the fraction of total work completed, in [0, 1].
func (t *Trainer) Progress() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.progress / t.Spec.TotalWork()
	if p > 1 {
		p = 1
	}
	return p
}

// Batch returns the current batch size.
func (t *Trainer) Batch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.batch
}

// Done reports completion.
func (t *Trainer) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// clock validates the pacing options and returns the kernel clock the
// trainer's event loop runs under.
func (t *Trainer) clock() (eventsim.Clock, error) {
	if t.DisableCompression {
		if t.Compression != 0 {
			return nil, fmt.Errorf("cluster: Trainer %q sets both Compression and DisableCompression", t.Job)
		}
		return eventsim.Virtual{}, nil
	}
	if t.Compression <= 0 {
		return nil, fmt.Errorf("cluster: Trainer %q needs a positive Compression (or DisableCompression for unpaced virtual time)", t.Job)
	}
	return &eventsim.Wall{Compression: t.Compression}, nil
}

// begin initializes the control loop against a transport and sends the
// initial report.
func (t *Trainer) begin(tr Transport, submit float64) error {
	if t.ReportEvery <= 0 {
		t.ReportEvery = 30
	}
	if t.RestartDelay == 0 {
		t.RestartDelay = 30
	}
	t.transport = tr
	t.submit = submit
	t.src = detrand.NewSource(t.Seed)
	t.rng = rand.New(t.src)
	t.ag = agent.New(t.Spec.M0, t.Spec.Eta0, t.Spec.MaxBatchPerGPU, t.Spec.MaxBatchGlobal)
	t.mu.Lock()
	t.batch = t.Spec.M0
	if t.FixedBatch > 0 {
		t.batch = t.FixedBatch
	}
	t.mu.Unlock()
	t.lastGen = -1
	t.simNow = 0
	t.restartUntil = 0
	t.nextReport = 0
	return t.report(false)
}

// report sends the agent's current goodput function and accounting.
func (t *Trainer) report(done bool) error {
	model := t.ag.Report()
	var vec [7]float64
	copy(vec[:], model.Params.Vector())
	t.mu.Lock()
	gpuTime := t.gpuTime
	progress := t.progress
	t.mu.Unlock()
	remIters := 0.0
	if t.UserBatch > 0 {
		frac := progress / t.Spec.TotalWork()
		if frac > 1 {
			frac = 1
		}
		eff := core.Efficiency(t.Spec.Phi(frac), t.Spec.M0, t.UserBatch)
		remIters = (t.Spec.TotalWork() - progress) / (eff * float64(t.UserBatch))
	}
	return t.transport.SubmitReport(Report{
		Job: t.Job, Params: vec, Phi: model.Phi,
		M0: model.M0, MaxBatchPerGPU: model.MaxBatchPerGPU,
		MaxBatchGlobal: model.MaxBatchGlobal,
		GPUCap:         t.ag.GPUCap(), GPUTime: gpuTime,
		UserGPUs: t.UserGPUs, UserBatch: t.UserBatch, RemainingIters: remIters,
		Tenant: t.Tenant, Deadline: t.Deadline,
		Submit: t.submit, Done: done,
	})
}

// tick runs one control-loop step: poll the allocation, detect
// re-allocation and charge the checkpoint-restart pause, advance one
// trainerTick of training, and report/re-tune on the reporting cadence.
// It returns whether the job completed (the final Done report included).
func (t *Trainer) tick() (bool, error) {
	alloc, err := t.transport.GetAllocation(t.Job)
	if err != nil {
		return false, err
	}
	pl := sched.PlacementOf(alloc.Row)
	if alloc.Generation != t.lastGen {
		t.lastGen = alloc.Generation
		if pl.GPUs > 0 {
			t.restartUntil = t.simNow + t.RestartDelay
		}
	}

	if pl.GPUs > 0 && t.simNow >= t.restartUntil {
		t.step(pl, trainerTick)
	}
	t.simNow += trainerTick

	if t.simNow >= t.nextReport {
		phi := t.Spec.Phi(t.Progress()) * (1 + 0.05*(t.rng.Float64()*2-1))
		t.ag.SetPhi(phi)
		// Shared batched-refit helper; a single agent runs inline.
		agent.RefitAll([]*agent.Agent{t.ag}, 1)
		if t.FixedBatch == 0 && pl.GPUs > 0 {
			b, _ := t.ag.TuneBatch(pl)
			t.mu.Lock()
			t.batch = b
			t.mu.Unlock()
		}
		if err := t.report(false); err != nil {
			return false, err
		}
		t.nextReport += t.ReportEvery
	}

	if t.Done() {
		return true, t.report(true)
	}
	return false, nil
}

// Run drives the job to completion against the scheduler at addr, pacing
// the event loop with the trainer's clock. It returns the total
// simulated seconds the job took.
func (t *Trainer) Run(network, addr string, submit float64) (float64, error) {
	clock, err := t.clock()
	if err != nil {
		return 0, err
	}
	client, err := Dial(network, addr)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	if err := t.begin(client, submit); err != nil {
		return 0, err
	}

	var q eventsim.Queue
	q.Push(eventsim.Event{Time: 0, Class: eventsim.ClassJob, Kind: kindStep})
	var runErr error
	eventsim.Drive(&q, clock, 0, func(e eventsim.Event) bool {
		done, err := t.tick()
		if err != nil {
			runErr = err
			return false
		}
		if done {
			return false
		}
		q.Push(eventsim.Event{Time: e.Time + trainerTick, Class: eventsim.ClassJob, Kind: kindStep})
		return true
	})
	return t.simNow, runErr
}

// step advances one tick of simulated training.
func (t *Trainer) step(pl core.Placement, dt float64) {
	t.mu.Lock()
	m := t.batch
	t.mu.Unlock()
	if maxFit := pl.GPUs * t.Spec.MaxBatchPerGPU; m > maxFit {
		m = maxFit
	}
	if m < t.Spec.M0 {
		return
	}
	tIter := t.Spec.Truth.TIter(pl, float64(m))
	tput := float64(m) / tIter
	eff := core.Efficiency(t.Spec.Phi(t.Progress()), t.Spec.M0, m)
	t.ag.RecordSample(pl, m, tIter*(1+0.05*(t.rng.Float64()*2-1)))

	t.tputSum += tput * dt
	t.goodSum += tput * eff * dt
	t.runTime += dt

	t.mu.Lock()
	t.progress += tput * eff * dt
	t.gpuTime += float64(pl.GPUs) * dt
	if t.progress >= t.Spec.TotalWork() {
		t.done = true
	}
	t.mu.Unlock()
}
