package cluster

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sched"
)

// Trainer simulates one training job as a live goroutine: it polls its
// allocation over RPC, advances ground-truth training under a wall-clock
// compression factor, profiles noisy observations into its PolluxAgent,
// and reports the fitted goodput function back to the scheduler — the
// full Sec. 4.3 agent loop against a real socket.
type Trainer struct {
	Job  string
	Spec *models.Spec

	// Compression maps wall-clock to simulated seconds (e.g. 1000 means
	// one real millisecond simulates one second of training).
	Compression float64
	// ReportEvery is the simulated-seconds interval between reports
	// (default 30, as in the paper).
	ReportEvery float64
	// RestartDelay is the simulated checkpoint-restart pause (default 30).
	RestartDelay float64
	Seed         int64

	mu       sync.Mutex
	progress float64
	gpuTime  float64
	batch    int
	done     bool
}

// Progress returns the fraction of total work completed, in [0, 1].
func (t *Trainer) Progress() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.progress / t.Spec.TotalWork()
	if p > 1 {
		p = 1
	}
	return p
}

// Batch returns the current batch size.
func (t *Trainer) Batch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.batch
}

// Done reports completion.
func (t *Trainer) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Run drives the job to completion against the scheduler at addr. It
// returns the total simulated seconds the job took.
func (t *Trainer) Run(network, addr string, submit float64) (float64, error) {
	if t.Compression <= 0 {
		t.Compression = 1000
	}
	if t.ReportEvery <= 0 {
		t.ReportEvery = 30
	}
	if t.RestartDelay == 0 {
		t.RestartDelay = 30
	}
	client, err := Dial(network, addr)
	if err != nil {
		return 0, err
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(t.Seed))
	ag := agent.New(t.Spec.M0, t.Spec.Eta0, t.Spec.MaxBatchPerGPU, t.Spec.MaxBatchGlobal)
	t.mu.Lock()
	t.batch = t.Spec.M0
	t.mu.Unlock()

	const tick = 5.0 // simulated seconds per step
	simNow := 0.0
	restartUntil := 0.0
	lastGen := -1
	nextReport := 0.0

	report := func(done bool) error {
		model := ag.Report()
		var vec [7]float64
		copy(vec[:], model.Params.Vector())
		t.mu.Lock()
		gpuTime := t.gpuTime
		t.mu.Unlock()
		return client.SubmitReport(Report{
			Job: t.Job, Params: vec, Phi: model.Phi,
			M0: model.M0, MaxBatchPerGPU: model.MaxBatchPerGPU,
			MaxBatchGlobal: model.MaxBatchGlobal,
			GPUCap:         ag.GPUCap(), GPUTime: gpuTime,
			Submit: submit, Done: done,
		})
	}
	if err := report(false); err != nil {
		return 0, err
	}

	for {
		alloc, err := client.GetAllocation(t.Job)
		if err != nil {
			return simNow, err
		}
		pl := sched.PlacementOf(alloc.Row)
		if alloc.Generation != lastGen {
			lastGen = alloc.Generation
			if pl.GPUs > 0 {
				restartUntil = simNow + t.RestartDelay
			}
		}

		if pl.GPUs > 0 && simNow >= restartUntil {
			t.step(ag, rng, pl, tick)
		}
		simNow += tick

		if simNow >= nextReport {
			phi := t.Spec.Phi(t.Progress()) * (1 + 0.05*(rng.Float64()*2-1))
			ag.SetPhi(phi)
			// Shared batched-refit helper; a single agent runs inline.
			agent.RefitAll([]*agent.Agent{ag}, 1)
			if pl.GPUs > 0 {
				b, _ := ag.TuneBatch(pl)
				t.mu.Lock()
				t.batch = b
				t.mu.Unlock()
			}
			if err := report(false); err != nil {
				return simNow, err
			}
			nextReport += t.ReportEvery
		}

		if t.Done() {
			return simNow, report(true)
		}
		time.Sleep(time.Duration(float64(time.Second) * tick / t.Compression))
	}
}

// step advances one tick of simulated training.
func (t *Trainer) step(ag *agent.Agent, rng *rand.Rand, pl core.Placement, dt float64) {
	t.mu.Lock()
	m := t.batch
	t.mu.Unlock()
	if maxFit := pl.GPUs * t.Spec.MaxBatchPerGPU; m > maxFit {
		m = maxFit
	}
	if m < t.Spec.M0 {
		return
	}
	tIter := t.Spec.Truth.TIter(pl, float64(m))
	tput := float64(m) / tIter
	eff := core.Efficiency(t.Spec.Phi(t.Progress()), t.Spec.M0, m)
	ag.RecordSample(pl, m, tIter*(1+0.05*(rng.Float64()*2-1)))

	t.mu.Lock()
	t.progress += tput * eff * dt
	t.gpuTime += float64(pl.GPUs) * dt
	if t.progress >= t.Spec.TotalWork() {
		t.done = true
	}
	t.mu.Unlock()
}
