// Replay mode: the live-testbed control path on virtual time.
//
// Replay feeds a workload trace through the exact components a live run
// uses — Trainers with their own rngs and PolluxAgents, the Service's
// report/allocation bookkeeping, the shared runtime.Step scheduling
// round — but drives every trainer's control loop and every scheduling
// round through one eventsim queue on a virtual clock. Nothing sleeps
// and nothing races: events fire in the kernel's deterministic order, so
// a replay is bit-reproducible for a fixed seed and directly comparable
// to the trace-driven simulator's output on the same trace.
package cluster

import (
	"fmt"
	"net"

	"repro/internal/admit"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Event kinds of the testbed event loop. At one instant the scheduling
// round (cluster class) runs before any trainer event; among trainer
// events, arrivals precede steps.
const (
	kindSched  = iota // cluster class: scheduling round
	kindArrive        // job class: trace arrival, the trainer comes up
	kindStep          // job class: one trainer control-loop step
)

// ReplayConfig controls one replay run. The zero value takes the
// simulator's defaults: a 16x4 cluster, 60 s scheduling rounds, 30 s
// reports and restart pauses, a 14-day horizon.
type ReplayConfig struct {
	Nodes       int // default 16
	GPUsPerNode int // default 4
	// SchedInterval is the scheduling period (default 60 s);
	// ReportEvery the trainer report/tune period (default 30 s).
	SchedInterval float64
	ReportEvery   float64
	// RestartDelay is the checkpoint-restart pause charged when a
	// trainer's allocation changes. The zero value takes the 30 s
	// default and a negative value means an explicit zero pause,
	// matching sim.Config.RestartDelay so parity configs line up.
	RestartDelay float64
	// MaxTime caps the replay (default 14 days).
	MaxTime float64
	Seed    int64
	// UseTunedConfig selects each job's tuned rather than user
	// configuration for the baseline schedulers, as sim.Config does.
	UseTunedConfig bool
	// FrontEnd configures the multi-tenant serving front end (admission +
	// priority, internal/admit) installed on the Service; nil disables
	// it. The same options given to sim.Config.FrontEnd produce
	// bit-identical admission decisions here (see the parity test).
	FrontEnd *admit.Options
	// OverRPC drives every trainer's reports and allocation polls
	// through a real net/rpc connection on a loopback socket instead of
	// in-process Service calls. Calls are synchronous round trips from
	// the single event-loop goroutine, so the run stays deterministic;
	// results are bit-identical to the in-process transport.
	OverRPC bool
}

func (c *ReplayConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 60
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 30
	}
	if c.RestartDelay < 0 {
		c.RestartDelay = 0
	} else if c.RestartDelay == 0 {
		c.RestartDelay = 30
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 14 * 24 * 3600
	}
}

// ReplayResult aggregates one replay run, shaped like the simulator's
// Result so the two engines' outputs diff directly.
type ReplayResult struct {
	Summary metrics.Summary
	// Records are per-job completion records aligned with the trace.
	Records []metrics.JobRecord
	// AvgThroughput and AvgGoodput are example-rate means over all
	// job-running time.
	AvgThroughput float64
	AvgGoodput    float64
	// PerTenant breaks the run down by tenant for multi-tenant traces
	// (nil for single-tenant runs); Admissions is the front end's
	// decision log in arrival order (nil without a front end) — shaped
	// like the simulator's fields so parity asserts compare directly.
	PerTenant  map[string]metrics.TenantSummary
	Admissions []admit.Decision
}

// replayTask pairs a trace job with its live trainer.
type replayTask struct {
	wj       workload.Job
	tr       *Trainer
	finish   float64
	rejected bool
}

// Replay runs the trace through the live-testbed control path on virtual
// time and returns its completion statistics.
func Replay(trace workload.Trace, policy sched.Policy, cfg ReplayConfig) (ReplayResult, error) {
	cfg.defaults()
	capacity := make([]int, cfg.Nodes)
	for i := range capacity {
		capacity[i] = cfg.GPUsPerNode
	}
	state := NewState(capacity)
	svc := NewService(state)
	fe, err := admit.New(cfg.FrontEnd)
	if err != nil {
		return ReplayResult{}, err
	}
	svc.SetFrontEnd(fe)

	var transport Transport = Local{Svc: svc}
	if cfg.OverRPC {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ReplayResult{}, err
		}
		defer ln.Close()
		go Serve(svc, ln)
		client, err := Dial("tcp", ln.Addr().String())
		if err != nil {
			return ReplayResult{}, err
		}
		defer client.Close()
		transport = client
	}

	adaptive := policy.AdaptsBatchSize()
	var tasks []*replayTask
	byID := make(map[int]*replayTask)
	var q eventsim.Queue
	for _, wj := range trace.Jobs {
		spec := models.ByName(wj.Model)
		if spec == nil {
			continue
		}
		gpus, batch := wj.UserGPUs, wj.UserBatch
		if cfg.UseTunedConfig {
			gpus, batch = wj.TunedGPUs, wj.TunedBatch
		}
		t := &replayTask{wj: wj, tr: &Trainer{
			Job:  fmt.Sprintf("job-%d", wj.ID),
			Spec: spec,
			// Each trainer owns its rng, exactly as a live agent
			// process would; draws happen only inside its own events,
			// so the global draw order is fixed by the kernel.
			Seed:        cfg.Seed + int64(wj.ID),
			ReportEvery: cfg.ReportEvery, RestartDelay: cfg.RestartDelay,
			UserGPUs: gpus, UserBatch: batch,
			Tenant: wj.Tenant, Deadline: wj.Deadline,
		}}
		if !adaptive {
			t.tr.FixedBatch = batch
		}
		tasks = append(tasks, t)
		byID[wj.ID] = t
		q.Push(eventsim.Event{
			Time: wj.Submit, Class: eventsim.ClassJob, Job: wj.ID, Kind: kindArrive,
		})
	}
	q.Push(eventsim.Event{Time: 0, Class: eventsim.ClassCluster, Kind: kindSched})

	done := 0
	var runErr error
	eventsim.Drive(&q, eventsim.Virtual{}, 0, func(e eventsim.Event) bool {
		if e.Time > cfg.MaxTime {
			return false
		}
		switch e.Kind {
		case kindSched:
			if _, err := svc.ScheduleOnce(policy, e.Time); err != nil {
				runErr = err
				return false
			}
			q.Push(eventsim.Event{
				Time: e.Time + cfg.SchedInterval, Class: eventsim.ClassCluster, Kind: kindSched,
			})

		case kindArrive:
			t := byID[e.Job]
			// Arrivals pop in submit-time order with ties in ascending
			// job-ID order — the same sequence the simulator presents —
			// and the request carries the trace's submit time, so
			// admission decisions are bit-identical across deployments.
			// A rejected job's trainer never comes up.
			gpus := t.tr.UserGPUs
			if !svc.AdmitJob(admit.Request{Job: e.Job, Tenant: t.wj.Tenant, Time: t.wj.Submit, GPUs: gpus}) {
				t.rejected = true
				done++
				return done < len(tasks)
			}
			if err := t.tr.begin(transport, e.Time); err != nil {
				runErr = err
				return false
			}
			q.Push(eventsim.Event{
				Time: e.Time, Class: eventsim.ClassJob, Job: e.Job, Kind: kindStep,
			})

		case kindStep:
			t := byID[e.Job]
			finished, err := t.tr.tick()
			if err != nil {
				runErr = err
				return false
			}
			if finished {
				t.finish = t.wj.Submit + t.tr.simNow
				done++
				return done < len(tasks)
			}
			q.Push(eventsim.Event{
				Time: e.Time + trainerTick, Class: eventsim.ClassJob, Job: e.Job, Kind: kindStep,
			})
		}
		return true
	})
	if runErr != nil {
		return ReplayResult{}, runErr
	}

	var res ReplayResult
	var tputSum, goodSum, runSum float64
	type tenantAccum struct{ goodSum, runTime float64 }
	tenantRates := make(map[string]*tenantAccum)
	for _, t := range tasks {
		res.Records = append(res.Records, metrics.JobRecord{
			Submit:   t.wj.Submit,
			Finish:   t.finish,
			Tenant:   t.wj.Tenant,
			Deadline: t.wj.Deadline,
			Rejected: t.rejected,
		})
		tputSum += t.tr.tputSum
		goodSum += t.tr.goodSum
		runSum += t.tr.runTime
		if t.wj.Tenant != "" {
			ta := tenantRates[t.wj.Tenant]
			if ta == nil {
				ta = &tenantAccum{}
				tenantRates[t.wj.Tenant] = ta
			}
			ta.goodSum += t.tr.goodSum
			ta.runTime += t.tr.runTime
		}
	}
	res.Summary = metrics.Summarize(res.Records)
	res.PerTenant = metrics.SummarizeTenants(res.Records)
	feStats := fe.Stats()
	//pollux:order-ok each iteration fills only its own tenant's summary; Rounds is a pure accessor
	for tenant, ts := range res.PerTenant {
		if st, ok := feStats[tenant]; ok {
			ts.Submitted = st.Submitted
			ts.Admitted = st.Admitted
			ts.Rejected = st.Rejected
			if rounds := fe.Rounds(); rounds > 0 {
				ts.AvgQueueDepth = st.QueueDepthSum / float64(rounds)
			}
		} else {
			ts.Submitted = ts.Summary.Total
			ts.Admitted = ts.Summary.Total
		}
		if ta := tenantRates[tenant]; ta != nil && ta.runTime > 0 {
			ts.AvgGoodput = ta.goodSum / ta.runTime
		}
		res.PerTenant[tenant] = ts
	}
	res.Admissions = fe.Decisions()
	if runSum > 0 {
		res.AvgThroughput = tputSum / runSum
		res.AvgGoodput = goodSum / runSum
	}
	return res, nil
}
