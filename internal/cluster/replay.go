// Replay mode: the live-testbed control path on virtual time.
//
// Replay feeds a workload trace through the exact components a live run
// uses — Trainers with their own rngs and PolluxAgents, the Service's
// report/allocation bookkeeping, the shared runtime.Step scheduling
// round — but drives every trainer's control loop and every scheduling
// round through one eventsim queue on a virtual clock. Nothing sleeps
// and nothing races: events fire in the kernel's deterministic order, so
// a replay is bit-reproducible for a fixed seed and directly comparable
// to the trace-driven simulator's output on the same trace.
//
// Replay is also the checkpoint verifier: ReplayToCheckpoint stops at the
// first scheduling round at or after a cut time and serializes the whole
// deployment (service, policy, live trainers), and ResumeReplay continues
// from that snapshot. The resumed run's Result is bit-identical to the
// straight-through run — the bar TestReplayCheckpointResume pins at the
// same level as TestReplayDeterminism.
package cluster

import (
	"fmt"
	"net"
	"reflect"

	"repro/internal/admit"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Event kinds of the testbed event loop. At one instant the scheduling
// round (cluster class) runs before any trainer event; among trainer
// events, arrivals precede steps.
const (
	kindSched  = iota // cluster class: scheduling round
	kindArrive        // job class: trace arrival, the trainer comes up
	kindStep          // job class: one trainer control-loop step
)

// ReplayConfig controls one replay run. The zero value takes the
// simulator's defaults: a 16x4 cluster, 60 s scheduling rounds, 30 s
// reports and restart pauses, a 14-day horizon.
type ReplayConfig struct {
	Nodes       int // default 16
	GPUsPerNode int // default 4
	// SchedInterval is the scheduling period (default 60 s);
	// ReportEvery the trainer report/tune period (default 30 s).
	SchedInterval float64
	ReportEvery   float64
	// RestartDelay is the checkpoint-restart pause charged when a
	// trainer's allocation changes. The zero value takes the 30 s
	// default and a negative value means an explicit zero pause,
	// matching sim.Config.RestartDelay so parity configs line up.
	RestartDelay float64
	// MaxTime caps the replay (default 14 days).
	MaxTime float64
	Seed    int64
	// UseTunedConfig selects each job's tuned rather than user
	// configuration for the baseline schedulers, as sim.Config does.
	UseTunedConfig bool
	// FrontEnd configures the multi-tenant serving front end (admission +
	// priority, internal/admit) installed on the Service; nil disables
	// it. The same options given to sim.Config.FrontEnd produce
	// bit-identical admission decisions here (see the parity test).
	FrontEnd *admit.Options
	// OverRPC drives every trainer's reports and allocation polls
	// through a real net/rpc connection on a loopback socket instead of
	// in-process Service calls. Calls are synchronous round trips from
	// the single event-loop goroutine, so the run stays deterministic;
	// results are bit-identical to the in-process transport.
	OverRPC bool
}

func (c *ReplayConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 60
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 30
	}
	if c.RestartDelay < 0 {
		c.RestartDelay = 0
	} else if c.RestartDelay == 0 {
		c.RestartDelay = 30
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 14 * 24 * 3600
	}
}

// ReplayResult aggregates one replay run, shaped like the simulator's
// Result so the two engines' outputs diff directly.
type ReplayResult struct {
	Summary metrics.Summary
	// Records are per-job completion records aligned with the trace.
	Records []metrics.JobRecord
	// AvgThroughput and AvgGoodput are example-rate means over all
	// job-running time.
	AvgThroughput float64
	AvgGoodput    float64
	// PerTenant breaks the run down by tenant for multi-tenant traces
	// (nil for single-tenant runs); Admissions is the front end's
	// decision log in arrival order (nil without a front end) — shaped
	// like the simulator's fields so parity asserts compare directly.
	PerTenant  map[string]metrics.TenantSummary
	Admissions []admit.Decision
}

// replayTask pairs a trace job with its live trainer.
type replayTask struct {
	wj       workload.Job
	tr       *Trainer
	finish   float64
	rejected bool
}

// PolicyCheckpointer is the scheduling policy side of the checkpoint
// contract: sched.Pollux implements it. ReplayToCheckpoint (and the
// pollux-sched daemon) require it, since resuming a stateful policy
// without its state would silently diverge from the uninterrupted run.
type PolicyCheckpointer interface {
	sched.Policy
	Snapshot() *sched.PolluxSnapshot
	Restore(*sched.PolluxSnapshot) error
}

// TaskSnapshot is one trace job's progress through a replay: whether it
// arrived, whether admission rejected it, whether it finished (and when),
// and — for a job whose trainer is up — the trainer state. Trainer is nil
// exactly when the job has not arrived or was rejected.
type TaskSnapshot struct {
	Job      int
	Arrived  bool             `json:",omitempty"`
	Rejected bool             `json:",omitempty"`
	Finished bool             `json:",omitempty"`
	Finish   float64          `json:",omitempty"`
	Trainer  *TrainerSnapshot `json:",omitempty"`
}

// ReplayCheckpoint is a whole replay deployment frozen between two
// scheduling rounds: the config and trace shape it was taken under (echoed
// for loud mismatch detection), the service and policy state, every
// task's progress, and the time of the scheduling round that was due
// next. The pending event queue is deliberately absent — it is derivable:
// un-arrived jobs re-enter at their trace submit times, each live
// trainer's next step is Submit+SimNow, and the next round is NextSched.
type ReplayCheckpoint struct {
	Config    ReplayConfig
	Jobs      int // len(trace.Jobs) echo
	NextSched float64
	Service   *ServiceSnapshot
	Policy    *sched.PolluxSnapshot
	Tasks     []TaskSnapshot
}

// replayRun is one replay deployment: the service, transport, tasks, and
// event queue shared by the fresh-start and resume-from-checkpoint paths.
type replayRun struct {
	cfg    ReplayConfig
	policy sched.Policy
	svc    *Service
	fe     *admit.FrontEnd
	trans  Transport
	tasks  []*replayTask
	byID   map[int]*replayTask
	q      eventsim.Queue
	done   int
	closer func()
}

// newReplayRun builds the deployment for a trace: state, service, front
// end, transport, and one trainer per known-model trace job. It pushes no
// events; the caller seeds the queue for a fresh start or a resume.
func newReplayRun(trace workload.Trace, policy sched.Policy, cfg ReplayConfig) (*replayRun, error) {
	capacity := make([]int, cfg.Nodes)
	for i := range capacity {
		capacity[i] = cfg.GPUsPerNode
	}
	svc := NewService(NewState(capacity))
	fe, err := admit.New(cfg.FrontEnd)
	if err != nil {
		return nil, err
	}
	svc.SetFrontEnd(fe)
	r := &replayRun{cfg: cfg, policy: policy, svc: svc, fe: fe, byID: make(map[int]*replayTask)}

	r.trans = Local{Svc: svc}
	if cfg.OverRPC {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go Serve(svc, ln)
		client, err := Dial("tcp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, err
		}
		r.trans = client
		r.closer = func() {
			client.Close()
			ln.Close()
		}
	}

	adaptive := policy.AdaptsBatchSize()
	for _, wj := range trace.Jobs {
		spec := models.ByName(wj.Model)
		if spec == nil {
			continue
		}
		gpus, batch := wj.UserGPUs, wj.UserBatch
		if cfg.UseTunedConfig {
			gpus, batch = wj.TunedGPUs, wj.TunedBatch
		}
		t := &replayTask{wj: wj, tr: &Trainer{
			Job:  fmt.Sprintf("job-%d", wj.ID),
			Spec: spec,
			// Each trainer owns its rng, exactly as a live agent
			// process would; draws happen only inside its own events,
			// so the global draw order is fixed by the kernel.
			Seed:        cfg.Seed + int64(wj.ID),
			ReportEvery: cfg.ReportEvery, RestartDelay: cfg.RestartDelay,
			UserGPUs: gpus, UserBatch: batch,
			Tenant: wj.Tenant, Deadline: wj.Deadline,
		}}
		if !adaptive {
			t.tr.FixedBatch = batch
		}
		r.tasks = append(r.tasks, t)
		r.byID[wj.ID] = t
	}
	return r, nil
}

func (r *replayRun) close() {
	if r.closer != nil {
		r.closer()
	}
}

// drive runs the event loop. When checkpointAt is non-nil, the loop stops
// at the first scheduling event with Time >= *checkpointAt — before
// executing that round — and returns its time; otherwise it runs to
// completion (all tasks done or MaxTime) and returns a negative time.
func (r *replayRun) drive(checkpointAt *float64) (cutSched float64, err error) {
	cfg := r.cfg
	cutSched = -1
	var runErr error
	eventsim.Drive(&r.q, eventsim.Virtual{}, 0, func(e eventsim.Event) bool {
		if e.Time > cfg.MaxTime {
			return false
		}
		if r.done >= len(r.tasks) {
			// Only reachable on a resume whose snapshot already held every
			// task complete; a fresh run stops at the completing event.
			return false
		}
		switch e.Kind {
		case kindSched:
			if checkpointAt != nil && e.Time >= *checkpointAt {
				cutSched = e.Time
				return false
			}
			if _, err := r.svc.ScheduleOnce(r.policy, e.Time); err != nil {
				runErr = err
				return false
			}
			r.q.Push(eventsim.Event{
				Time: e.Time + cfg.SchedInterval, Class: eventsim.ClassCluster, Kind: kindSched,
			})

		case kindArrive:
			t := r.byID[e.Job]
			// Arrivals pop in submit-time order with ties in ascending
			// job-ID order — the same sequence the simulator presents —
			// and the request carries the trace's submit time, so
			// admission decisions are bit-identical across deployments.
			// A rejected job's trainer never comes up.
			gpus := t.tr.UserGPUs
			if !r.svc.AdmitJob(admit.Request{Job: e.Job, Tenant: t.wj.Tenant, Time: t.wj.Submit, GPUs: gpus}) {
				t.rejected = true
				r.done++
				return r.done < len(r.tasks)
			}
			if err := t.tr.begin(r.trans, e.Time); err != nil {
				runErr = err
				return false
			}
			r.q.Push(eventsim.Event{
				Time: e.Time, Class: eventsim.ClassJob, Job: e.Job, Kind: kindStep,
			})

		case kindStep:
			t := r.byID[e.Job]
			finished, err := t.tr.tick()
			if err != nil {
				runErr = err
				return false
			}
			if finished {
				t.finish = t.wj.Submit + t.tr.simNow
				r.done++
				return r.done < len(r.tasks)
			}
			r.q.Push(eventsim.Event{
				Time: e.Time + trainerTick, Class: eventsim.ClassJob, Job: e.Job, Kind: kindStep,
			})
		}
		return true
	})
	return cutSched, runErr
}

// result aggregates the run into a ReplayResult.
func (r *replayRun) result() ReplayResult {
	var res ReplayResult
	var tputSum, goodSum, runSum float64
	type tenantAccum struct{ goodSum, runTime float64 }
	tenantRates := make(map[string]*tenantAccum)
	for _, t := range r.tasks {
		res.Records = append(res.Records, metrics.JobRecord{
			Submit:   t.wj.Submit,
			Finish:   t.finish,
			Tenant:   t.wj.Tenant,
			Deadline: t.wj.Deadline,
			Rejected: t.rejected,
		})
		tputSum += t.tr.tputSum
		goodSum += t.tr.goodSum
		runSum += t.tr.runTime
		if t.wj.Tenant != "" {
			ta := tenantRates[t.wj.Tenant]
			if ta == nil {
				ta = &tenantAccum{}
				tenantRates[t.wj.Tenant] = ta
			}
			ta.goodSum += t.tr.goodSum
			ta.runTime += t.tr.runTime
		}
	}
	res.Summary = metrics.Summarize(res.Records)
	res.PerTenant = metrics.SummarizeTenants(res.Records)
	feStats := r.fe.Stats()
	//pollux:order-ok each iteration fills only its own tenant's summary; Rounds is a pure accessor
	for tenant, ts := range res.PerTenant {
		if st, ok := feStats[tenant]; ok {
			ts.Submitted = st.Submitted
			ts.Admitted = st.Admitted
			ts.Rejected = st.Rejected
			if rounds := r.fe.Rounds(); rounds > 0 {
				ts.AvgQueueDepth = st.QueueDepthSum / float64(rounds)
			}
		} else {
			ts.Submitted = ts.Summary.Total
			ts.Admitted = ts.Summary.Total
		}
		if ta := tenantRates[tenant]; ta != nil && ta.runTime > 0 {
			ts.AvgGoodput = ta.goodSum / ta.runTime
		}
		res.PerTenant[tenant] = ts
	}
	res.Admissions = r.fe.Decisions()
	if runSum > 0 {
		res.AvgThroughput = tputSum / runSum
		res.AvgGoodput = goodSum / runSum
	}
	return res
}

// seedFresh pushes the trace's arrival events and the first scheduling
// round at time zero.
func (r *replayRun) seedFresh() {
	for _, t := range r.tasks {
		r.q.Push(eventsim.Event{
			Time: t.wj.Submit, Class: eventsim.ClassJob, Job: t.wj.ID, Kind: kindArrive,
		})
	}
	r.q.Push(eventsim.Event{Time: 0, Class: eventsim.ClassCluster, Kind: kindSched})
}

// Replay runs the trace through the live-testbed control path on virtual
// time and returns its completion statistics.
func Replay(trace workload.Trace, policy sched.Policy, cfg ReplayConfig) (ReplayResult, error) {
	cfg.defaults()
	r, err := newReplayRun(trace, policy, cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	defer r.close()
	r.seedFresh()
	if _, err := r.drive(nil); err != nil {
		return ReplayResult{}, err
	}
	return r.result(), nil
}

// ReplayToCheckpoint runs the trace like Replay but stops at the first
// scheduling round due at or after checkpointAt — before executing it —
// and returns the frozen deployment. The policy must implement
// PolicyCheckpointer (sched.Pollux does). A trace that completes before
// checkpointAt is an error: there is no mid-trace state left to save.
func ReplayToCheckpoint(trace workload.Trace, policy sched.Policy, cfg ReplayConfig, checkpointAt float64) (*ReplayCheckpoint, error) {
	cp, ok := policy.(PolicyCheckpointer)
	if !ok {
		return nil, fmt.Errorf("cluster: policy %q does not support checkpointing", policy.Name())
	}
	cfg.defaults()
	r, err := newReplayRun(trace, policy, cfg)
	if err != nil {
		return nil, err
	}
	defer r.close()
	r.seedFresh()
	cut, err := r.drive(&checkpointAt)
	if err != nil {
		return nil, err
	}
	if cut < 0 {
		return nil, fmt.Errorf("cluster: replay finished before checkpoint time %.0fs", checkpointAt)
	}

	ck := &ReplayCheckpoint{
		Config:    cfg,
		Jobs:      len(trace.Jobs),
		NextSched: cut,
		Service:   r.svc.Snapshot(),
		Policy:    cp.Snapshot(),
	}
	for _, t := range r.tasks {
		ts := TaskSnapshot{Job: t.wj.ID}
		switch {
		case t.rejected:
			ts.Arrived, ts.Rejected = true, true
		case t.tr.transport != nil: // begin ran: the trainer is (or was) live
			ts.Arrived = true
			ts.Trainer = t.tr.Snapshot()
			if t.tr.Done() {
				ts.Finished = true
				ts.Finish = t.finish
			}
		}
		ck.Tasks = append(ck.Tasks, ts)
	}
	return ck, nil
}

// ResumeReplay continues a checkpointed replay to completion. It must be
// given the same trace, policy configuration, and ReplayConfig the
// checkpoint was taken under; any mismatch — a different cluster shape, a
// different trace, a policy without checkpoint support — fails loudly
// instead of silently starting fresh. The returned Result covers the
// whole run, pre- and post-checkpoint, and is bit-identical to the
// straight-through Replay of the same trace.
func ResumeReplay(trace workload.Trace, policy sched.Policy, cfg ReplayConfig, ck *ReplayCheckpoint) (ReplayResult, error) {
	cp, ok := policy.(PolicyCheckpointer)
	if !ok {
		return ReplayResult{}, fmt.Errorf("cluster: policy %q does not support checkpointing", policy.Name())
	}
	cfg.defaults()
	if !reflect.DeepEqual(cfg, ck.Config) {
		return ReplayResult{}, fmt.Errorf("cluster: replay config %+v does not match checkpoint config %+v", cfg, ck.Config)
	}
	if len(trace.Jobs) != ck.Jobs {
		return ReplayResult{}, fmt.Errorf("cluster: trace has %d jobs, checkpoint was taken with %d", len(trace.Jobs), ck.Jobs)
	}
	r, err := newReplayRun(trace, policy, cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	defer r.close()
	if len(ck.Tasks) != len(r.tasks) {
		return ReplayResult{}, fmt.Errorf("cluster: checkpoint has %d tasks, trace builds %d", len(ck.Tasks), len(r.tasks))
	}
	if err := r.svc.RestoreSnapshot(ck.Service); err != nil {
		return ReplayResult{}, err
	}
	if err := cp.Restore(ck.Policy); err != nil {
		return ReplayResult{}, err
	}
	for i, ts := range ck.Tasks {
		t := r.tasks[i]
		if ts.Job != t.wj.ID {
			return ReplayResult{}, fmt.Errorf("cluster: checkpoint task %d is job %d, trace has job %d", i, ts.Job, t.wj.ID)
		}
		switch {
		case !ts.Arrived:
			r.q.Push(eventsim.Event{
				Time: t.wj.Submit, Class: eventsim.ClassJob, Job: t.wj.ID, Kind: kindArrive,
			})
		case ts.Rejected:
			t.rejected = true
			r.done++
		default:
			if ts.Trainer == nil {
				return ReplayResult{}, fmt.Errorf("cluster: checkpoint task %d arrived but has no trainer state", i)
			}
			if err := t.tr.restore(r.trans, ts.Trainer); err != nil {
				return ReplayResult{}, err
			}
			if ts.Finished {
				t.finish = ts.Finish
				r.done++
				continue
			}
			// The trainer's pending step event is derivable: steps fire
			// every trainerTick from its arrival, so the next one is due
			// at Submit+SimNow.
			r.q.Push(eventsim.Event{
				Time: ts.Trainer.Submit + ts.Trainer.SimNow, Class: eventsim.ClassJob, Job: t.wj.ID, Kind: kindStep,
			})
		}
	}
	r.q.Push(eventsim.Event{Time: ck.NextSched, Class: eventsim.ClassCluster, Kind: kindSched})
	if _, err := r.drive(nil); err != nil {
		return ReplayResult{}, err
	}
	return r.result(), nil
}
