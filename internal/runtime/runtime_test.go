package runtime

import (
	"strings"
	"testing"

	"repro/internal/admit"

	"repro/internal/ga"
	"repro/internal/sched"
)

// fakeBackend is a minimal two-node deployment for exercising Step.
type fakeBackend struct {
	view      *sched.ClusterView
	committed ga.Matrix
	changed   []bool
}

func (f *fakeBackend) Round(now float64) *sched.ClusterView { return f.view }

func (f *fakeBackend) Commit(m ga.Matrix, changed []bool) error {
	f.committed = m
	f.changed = changed
	return nil
}

// fixedPolicy returns a canned matrix regardless of the view.
type fixedPolicy struct{ m ga.Matrix }

func (p fixedPolicy) Name() string                          { return "fixed" }
func (p fixedPolicy) AdaptsBatchSize() bool                 { return false }
func (p fixedPolicy) Schedule(*sched.ClusterView) ga.Matrix { return p.m }

func view(jobs int, current ga.Matrix) *sched.ClusterView {
	v := &sched.ClusterView{Capacity: []int{4, 4}, Current: current}
	for i := 0; i < jobs; i++ {
		v.Jobs = append(v.Jobs, sched.JobView{ID: i})
	}
	return v
}

func TestStepCommitsDiffedRows(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{2, 0}, {0, 2}})}
	n, err := Step(b, nil, fixedPolicy{ga.Matrix{{2, 0}, {2, 0}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("scheduled %d, want 2", n)
	}
	if b.committed == nil {
		t.Fatal("Commit not called")
	}
	if b.changed[0] || !b.changed[1] {
		t.Errorf("changed = %v, want [false true]", b.changed)
	}
}

func TestStepEmptyRoundSkipsPolicy(t *testing.T) {
	b := &fakeBackend{view: view(0, nil)}
	n, err := Step(b, nil, fixedPolicy{nil}, 0)
	if err != nil || n != 0 {
		t.Errorf("Step = (%d, %v), want (0, nil)", n, err)
	}
	if b.committed != nil {
		t.Error("Commit called on an empty round")
	}
}

func TestStepRejectsWrongRowCount(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{0, 0}, {0, 0}})}
	_, err := Step(b, nil, fixedPolicy{ga.Matrix{{1, 0}}}, 0)
	if err == nil {
		t.Fatal("short matrix accepted")
	}
	if b.committed != nil {
		t.Error("Commit called despite malformed matrix")
	}
}

func TestStepRejectsOversubscription(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{0, 0}, {0, 0}})}
	_, err := Step(b, nil, fixedPolicy{ga.Matrix{{3, 0}, {3, 0}}}, 0)
	if err == nil || !strings.Contains(err.Error(), "oversubscribed") {
		t.Fatalf("err = %v, want oversubscription error", err)
	}
	if b.committed != nil {
		t.Error("Commit called despite oversubscription")
	}
}

func TestCheckCapacityShape(t *testing.T) {
	if err := CheckCapacity([]int{4, 4}, ga.Matrix{{1, 1, 1}}); err == nil {
		t.Error("wrong-shaped row accepted")
	}
	if err := CheckCapacity([]int{4, 4}, ga.Matrix{{4, 0}, {0, 4}}); err != nil {
		t.Errorf("exact-fit matrix rejected: %v", err)
	}
}

func TestEqualRow(t *testing.T) {
	if !EqualRow([]int{1, 2}, []int{1, 2}) {
		t.Error("equal rows reported unequal")
	}
	if EqualRow([]int{1, 2}, []int{2, 1}) || EqualRow([]int{1}, []int{1, 0}) {
		t.Error("unequal rows reported equal")
	}
}

// firstWins allocates every GPU of node 0 to the first snapshot row —
// order-sensitive on purpose, to observe the front end's permutation.
type firstWins struct{}

func (firstWins) Name() string          { return "first-wins" }
func (firstWins) AdaptsBatchSize() bool { return false }
func (firstWins) Schedule(v *sched.ClusterView) ga.Matrix {
	m := ga.NewMatrix(len(v.Jobs), len(v.Capacity))
	if len(m) > 0 {
		m[0][0] = v.Capacity[0]
	}
	return m
}

// TestStepFrontEndPermutation pins the permutation round trip: the SLO
// priority stage reorders the snapshot the policy sees, but the matrix
// and changed flags committed to the backend are back in Round order.
func TestStepFrontEndPermutation(t *testing.T) {
	fe, err := admit.New(&admit.Options{Priority: admit.PrioritySLO})
	if err != nil {
		t.Fatal(err)
	}
	v := view(3, ga.Matrix{{4, 0}, {0, 0}, {0, 0}})
	v.Jobs[0].Deadline = 900 // currently running, latest deadline
	v.Jobs[1].Deadline = 600
	v.Jobs[2].Deadline = 100 // earliest deadline, snapshot row 2
	b := &fakeBackend{view: v}
	n, err := Step(b, fe, firstWins{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scheduled %d, want 3", n)
	}
	// The policy gave node 0 to its first row = job 2 after the SLO sort;
	// the commit must land on backend row 2, with rows 0 and 2 changed.
	want := ga.Matrix{{0, 0}, {0, 0}, {4, 0}}
	for i := range want {
		if !EqualRow(b.committed[i], want[i]) {
			t.Fatalf("committed = %v, want %v", b.committed, want)
		}
	}
	wantChanged := []bool{true, false, true}
	for i := range wantChanged {
		if b.changed[i] != wantChanged[i] {
			t.Fatalf("changed = %v, want %v", b.changed, wantChanged)
		}
	}
	// The round was observed: job 1 (tenant "") had no allocation.
	if fe.Rounds() != 1 {
		t.Errorf("front end observed %d rounds, want 1", fe.Rounds())
	}
	if got := fe.Stats()[""].QueueDepthSum; got != 2 {
		t.Errorf("queue depth sum = %v, want 2 (jobs 0 and 1 unallocated)", got)
	}
}
