package runtime

import (
	"strings"
	"testing"

	"repro/internal/ga"
	"repro/internal/sched"
)

// fakeBackend is a minimal two-node deployment for exercising Step.
type fakeBackend struct {
	view      *sched.ClusterView
	committed ga.Matrix
	changed   []bool
}

func (f *fakeBackend) Round(now float64) *sched.ClusterView { return f.view }

func (f *fakeBackend) Commit(m ga.Matrix, changed []bool) error {
	f.committed = m
	f.changed = changed
	return nil
}

// fixedPolicy returns a canned matrix regardless of the view.
type fixedPolicy struct{ m ga.Matrix }

func (p fixedPolicy) Name() string                          { return "fixed" }
func (p fixedPolicy) AdaptsBatchSize() bool                 { return false }
func (p fixedPolicy) Schedule(*sched.ClusterView) ga.Matrix { return p.m }

func view(jobs int, current ga.Matrix) *sched.ClusterView {
	v := &sched.ClusterView{Capacity: []int{4, 4}, Current: current}
	for i := 0; i < jobs; i++ {
		v.Jobs = append(v.Jobs, sched.JobView{ID: i})
	}
	return v
}

func TestStepCommitsDiffedRows(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{2, 0}, {0, 2}})}
	n, err := Step(b, fixedPolicy{ga.Matrix{{2, 0}, {2, 0}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("scheduled %d, want 2", n)
	}
	if b.committed == nil {
		t.Fatal("Commit not called")
	}
	if b.changed[0] || !b.changed[1] {
		t.Errorf("changed = %v, want [false true]", b.changed)
	}
}

func TestStepEmptyRoundSkipsPolicy(t *testing.T) {
	b := &fakeBackend{view: view(0, nil)}
	n, err := Step(b, fixedPolicy{nil}, 0)
	if err != nil || n != 0 {
		t.Errorf("Step = (%d, %v), want (0, nil)", n, err)
	}
	if b.committed != nil {
		t.Error("Commit called on an empty round")
	}
}

func TestStepRejectsWrongRowCount(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{0, 0}, {0, 0}})}
	_, err := Step(b, fixedPolicy{ga.Matrix{{1, 0}}}, 0)
	if err == nil {
		t.Fatal("short matrix accepted")
	}
	if b.committed != nil {
		t.Error("Commit called despite malformed matrix")
	}
}

func TestStepRejectsOversubscription(t *testing.T) {
	b := &fakeBackend{view: view(2, ga.Matrix{{0, 0}, {0, 0}})}
	_, err := Step(b, fixedPolicy{ga.Matrix{{3, 0}, {3, 0}}}, 0)
	if err == nil || !strings.Contains(err.Error(), "oversubscribed") {
		t.Fatalf("err = %v, want oversubscription error", err)
	}
	if b.committed != nil {
		t.Error("Commit called despite oversubscription")
	}
}

func TestCheckCapacityShape(t *testing.T) {
	if err := CheckCapacity([]int{4, 4}, ga.Matrix{{1, 1, 1}}); err == nil {
		t.Error("wrong-shaped row accepted")
	}
	if err := CheckCapacity([]int{4, 4}, ga.Matrix{{4, 0}, {0, 4}}); err != nil {
		t.Errorf("exact-fit matrix rejected: %v", err)
	}
}

func TestEqualRow(t *testing.T) {
	if !EqualRow([]int{1, 2}, []int{1, 2}) {
		t.Error("equal rows reported unequal")
	}
	if EqualRow([]int{1, 2}, []int{2, 1}) || EqualRow([]int{1}, []int{1, 0}) {
		t.Error("unequal rows reported equal")
	}
}
