// Package runtime is the shared core of the scheduling round that both
// deployments of the control loop execute: the trace-driven simulator
// (internal/sim) and the live-cluster testbed (internal/cluster). The
// paper's system is one loop deployed two ways — a simulator (Sec. 5) and
// a Kubernetes testbed (Sec. 4.3) — and the round itself is identical in
// both: snapshot the goodput reports into scheduler inputs, run the
// GA/heuristic policy, validate the returned matrix, diff it against the
// placements in effect, and commit the changed rows with
// checkpoint-restart accounting. Only the snapshot and commit ends differ
// per deployment, so they are the Backend interface; everything between
// them lives here, once.
package runtime

import (
	"fmt"

	"repro/internal/admit"
	"repro/internal/ga"
	"repro/internal/sched"
)

// Backend exposes one deployment's job population to the shared
// scheduling round: the simulator's in-memory job states, or the
// testbed's RPC-attached agents.
type Backend interface {
	// Round snapshots the scheduler inputs at simulated time now:
	// per-node capacity, the active jobs in a deterministic order, and
	// the allocation matrix currently in effect (rows aligned with
	// Jobs, never nil for an active job).
	Round(now float64) *sched.ClusterView
	// Commit installs an allocation matrix that Step has already
	// validated against the round's capacity, rows aligned with the
	// last Round's jobs; changed[i] reports whether row i differs from
	// the snapshot's Current row (so backends can skip no-op rebinds
	// and charge checkpoint-restart only on real moves).
	Commit(m ga.Matrix, changed []bool) error
}

// Step runs one scheduling round over the backend: snapshot, front-end
// priority ordering, policy optimization, matrix validation, placement
// diff, commit. fe is the deployment's admit front end; nil means no
// front end (the snapshot order reaches the policy untouched). It
// returns the number of jobs scheduled. A malformed or oversubscribing
// policy result aborts the round with an error before any row is
// applied, so a failed round never leaves the backend half-committed.
func Step(b Backend, fe *admit.FrontEnd, policy sched.Policy, now float64) (int, error) {
	view := b.Round(now)
	if len(view.Jobs) == 0 {
		return 0, nil
	}
	// The priority stage permutes the snapshot the policy sees; the
	// matrix is un-permuted before commit so backends always receive rows
	// in their own Round order.
	perm := fe.Order(view)
	m := policy.Schedule(view)
	if len(m) != len(view.Jobs) {
		return 0, fmt.Errorf("runtime: policy %s returned %d rows for %d jobs",
			policy.Name(), len(m), len(view.Jobs))
	}
	if err := CheckCapacity(view.Capacity, m); err != nil {
		return 0, fmt.Errorf("runtime: policy %s: %w", policy.Name(), err)
	}
	if perm != nil {
		orig := make(ga.Matrix, len(m))
		for i, p := range perm {
			orig[p] = m[i]
		}
		m = orig
		// view.Current rows were permuted alongside view.Jobs; restore
		// the backend's row order for the placement diff below.
		current := make(ga.Matrix, len(view.Current))
		jobs := make([]sched.JobView, len(view.Jobs))
		for i, p := range perm {
			current[p] = view.Current[i]
			jobs[p] = view.Jobs[i]
		}
		view.Current = current
		view.Jobs = jobs
	}
	changed := make([]bool, len(m))
	for i := range m {
		changed[i] = !EqualRow(view.Current[i], m[i])
	}
	if err := b.Commit(m, changed); err != nil {
		return 0, err
	}
	fe.ObserveRound(view, m)
	return len(view.Jobs), nil
}

// EqualRow reports whether two allocation rows are identical.
func EqualRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckCapacity verifies that the matrix does not oversubscribe any node
// in aggregate. Rows must all have one entry per capacity node.
func CheckCapacity(capacity []int, m ga.Matrix) error {
	for i, row := range m {
		if len(row) != len(capacity) {
			return fmt.Errorf("row %d has %d nodes, cluster has %d", i, len(row), len(capacity))
		}
	}
	for n, c := range capacity {
		total := 0
		for _, row := range m {
			total += row[n]
		}
		if total > c {
			return fmt.Errorf("node %d oversubscribed: %d > %d", n, total, c)
		}
	}
	return nil
}
