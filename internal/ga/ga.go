// Package ga implements the genetic algorithm PolluxSched uses to optimize
// cluster-wide resource allocations (Sec. 4.2.1 and Fig. 5 of the paper):
// mutation of allocation-matrix elements, tournament-selection crossover
// that mixes rows (job allocations) between parents, a repair step that
// restores per-node GPU capacity and the interference-avoidance
// constraint, and elitist survivor selection with the population carried
// over between scheduling intervals.
//
// The GA is generic over the fitness function; PolluxSched supplies
// Eqn. 14 (the weighted mean of per-job speedups with restart penalties).
package ga

import (
	"math"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/par"
)

// Matrix is an allocation matrix A: Matrix[j][n] is the number of GPUs on
// node n allocated to job j.
type Matrix [][]int

// NewMatrix allocates a zero matrix for jobs × nodes.
func NewMatrix(jobs, nodes int) Matrix {
	m := make(Matrix, jobs)
	backing := make([]int, jobs*nodes)
	for j := range m {
		m[j], backing = backing[:nodes:nodes], backing[nodes:]
	}
	return m
}

// CopyFrom overwrites m's entries with o's. The shapes must match; it is
// the allocation-free counterpart of Clone for reused buffers.
func (m Matrix) CopyFrom(o Matrix) {
	for j := range m {
		copy(m[j], o[j])
	}
}

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix {
	if len(m) == 0 {
		return Matrix{}
	}
	c := NewMatrix(len(m), len(m[0]))
	for j := range m {
		copy(c[j], m[j])
	}
	return c
}

// JobGPUs returns the total GPUs allocated to job j.
func (m Matrix) JobGPUs(j int) int {
	sum := 0
	for _, g := range m[j] {
		sum += g
	}
	return sum
}

// JobNodes returns the number of nodes on which job j has at least one GPU.
func (m Matrix) JobNodes(j int) int {
	n := 0
	for _, g := range m[j] {
		if g > 0 {
			n++
		}
	}
	return n
}

// NodeUsage returns the total GPUs allocated on node n across all jobs.
func (m Matrix) NodeUsage(n int) int {
	sum := 0
	for j := range m {
		sum += m[j][n]
	}
	return sum
}

// Equal reports whether two matrices have identical entries.
func (m Matrix) Equal(o Matrix) bool {
	if len(m) != len(o) {
		return false
	}
	for j := range m {
		if len(m[j]) != len(o[j]) {
			return false
		}
		for n := range m[j] {
			if m[j][n] != o[j][n] {
				return false
			}
		}
	}
	return true
}

// Problem describes one cluster-wide allocation optimization.
type Problem struct {
	// Capacity[n] is the number of GPUs on node n.
	Capacity []int
	// Jobs is the number of rows in each allocation matrix.
	Jobs int
	// Fitness scores an allocation matrix; higher is better. It is
	// called only on repaired (feasible) matrices. It must be a pure
	// function of the matrix and, when Options.Workers > 1, safe to call
	// from multiple goroutines concurrently.
	Fitness func(Matrix) float64
	// InterferenceAvoidance enforces that at most one distributed job
	// (a job spanning more than one node) occupies each node (Sec. 4.2.1).
	InterferenceAvoidance bool
	// DistBlocked, when non-nil, marks nodes that must not host any
	// distributed job at all. Hierarchical sub-problems set it for nodes
	// that already host a distributed job outside the sub-problem: the
	// Sec. 4.2.1 constraint then forbids a second one there. Ignored
	// unless InterferenceAvoidance is set.
	DistBlocked []bool
	// ExtraSpan, when non-nil, gives per job the number of nodes it
	// occupies outside this problem's columns; the interference
	// constraint sees span = JobNodes + ExtraSpan, so a job with GPUs in
	// another rack counts as distributed even when it sits on one local
	// node. Ignored unless InterferenceAvoidance is set.
	ExtraSpan []int
}

// Options tunes the GA. The paper's defaults are population 100 and 100
// generations per 60 s scheduling interval.
type Options struct {
	Population int // default 100
	Tournament int // tournament size for parent selection, default 3
	// Workers bounds the goroutines evaluating Fitness concurrently;
	// default GOMAXPROCS. Only fitness evaluation fans out — mutation,
	// crossover, and repair stay on the caller's goroutine so the single
	// *rand.Rand is never shared — and every offspring is scored into a
	// fixed slot, so results are bit-identical to Workers: 1.
	Workers int
	// SparseMutation samples the gaps between mutated cells geometrically
	// instead of flipping one Bernoulli(1/N) coin per cell, turning the
	// O(jobs × nodes) rng scan per offspring into O(expected mutations) —
	// the scan is the measured mutation hotspot at 512+ nodes. The
	// per-cell mutation distribution is identical, but the rng draw
	// SEQUENCE is not, so it is opt-in: the incremental/hierarchical
	// scheduler paths enable it, while the default dense scan keeps every
	// fixed-seed baseline trace bit-stable.
	SparseMutation bool
}

func (o *Options) defaults() {
	if o.Population <= 0 {
		o.Population = 100
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// GA is the evolving population for one Problem. A GA is not safe for
// concurrent use, but it internally fans fitness evaluation out over
// Options.Workers goroutines (see Options); all stochastic operators run
// on the caller's goroutine.
type GA struct {
	prob Problem
	opts Options
	rng  *rand.Rand

	pop    []Matrix
	scores []float64

	// Reused generation buffers (see Step): matrices cycle between the
	// population, the offspring slice, and the free pool instead of being
	// reallocated every generation — offspring churn was the dominant
	// allocation source in scheduling-round profiles.
	free       []Matrix
	off        []Matrix
	offScores  []float64
	idx        []int
	next       []Matrix
	nextScores []float64

	stats Stats
}

// Stats counts fitness work done since the GA was created, including the
// initial population evaluation. CellsScored weights each call by the
// matrix area it scored (jobs × nodes): sub-problem evaluations in the
// hierarchical scheduler are cheap in proportion to their area, so cells —
// not raw calls — is the unit per-round speedups are measured in.
type Stats struct {
	FitnessCalls int64
	CellsScored  int64
}

// Stats returns the cumulative fitness-work counters.
func (g *GA) Stats() Stats { return g.stats }

// New creates a GA for the problem, seeded from the given matrices (the
// population carried over from the previous scheduling interval; may be
// nil or partial). Seeds with the wrong shape are ignored; the rest of
// the population is filled with repaired random matrices and the zero
// matrix (all jobs paused), which is always feasible. One slot is
// reserved for the zero matrix even when the seeds alone would fill the
// population, so "pause everything" is always representable — except at
// Population 1, where the only slot goes to the first valid seed (a
// carried-over current allocation beats an all-paused search there).
func New(prob Problem, opts Options, rng *rand.Rand, seeds []Matrix) *GA {
	opts.defaults()
	g := &GA{prob: prob, opts: opts, rng: rng}
	g.pop = make([]Matrix, 0, opts.Population)
	seedSlots := opts.Population - 1
	if opts.Population == 1 {
		seedSlots = 1
	}
	for _, s := range seeds {
		if len(g.pop) >= seedSlots {
			break
		}
		if len(s) != prob.Jobs || (prob.Jobs > 0 && len(s[0]) != len(prob.Capacity)) {
			continue
		}
		c := s.Clone()
		g.repair(c)
		g.pop = append(g.pop, c)
	}
	if len(g.pop) < opts.Population {
		g.pop = append(g.pop, NewMatrix(prob.Jobs, len(prob.Capacity)))
	}
	for len(g.pop) < opts.Population {
		m := NewMatrix(prob.Jobs, len(prob.Capacity))
		for j := 0; j < prob.Jobs; j++ {
			n := rng.Intn(len(prob.Capacity))
			if cap := prob.Capacity[n]; cap > 0 {
				m[j][n] = 1 + rng.Intn(cap)
			}
		}
		g.repair(m)
		g.pop = append(g.pop, m)
	}
	g.scores = make([]float64, len(g.pop))
	g.evalScores(g.pop, g.scores)
	return g
}

// evalScores fills out[i] = Fitness(ms[i]) for every matrix, fanning the
// calls out over at most Options.Workers goroutines. Each matrix is scored
// into its own slot and Fitness is required to be pure, so the result is
// independent of worker count and interleaving.
func (g *GA) evalScores(ms []Matrix, out []float64) {
	g.stats.FitnessCalls += int64(len(ms))
	g.stats.CellsScored += int64(len(ms)) * int64(g.prob.Jobs) * int64(len(g.prob.Capacity))
	par.For(g.opts.Workers, len(ms), func(i int) {
		out[i] = g.prob.Fitness(ms[i])
	})
}

// buf returns a matrix buffer of the problem's shape, reusing an evicted
// one when available.
func (g *GA) buf() Matrix {
	if n := len(g.free); n > 0 {
		m := g.free[n-1]
		g.free = g.free[:n-1]
		return m
	}
	return NewMatrix(g.prob.Jobs, len(g.prob.Capacity))
}

// Step runs one generation: mutate, crossover, repair, and survivor
// selection back down to the configured population size. Offspring
// buffers come from the free pool and evicted members return to it, so a
// steady-state generation allocates nothing; every reused buffer is fully
// overwritten (mutation copies the parent first, crossover copies every
// row), and the rng draw sequence is identical to the historical
// clone-per-offspring implementation, so fixed-seed traces are unchanged.
func (g *GA) Step() {
	pop := g.pop
	g.off = g.off[:0]
	// Mutation: each current member yields one mutated offspring.
	for _, m := range pop {
		c := g.buf()
		c.CopyFrom(m)
		g.mutate(c)
		g.repair(c)
		g.off = append(g.off, c)
	}
	// Crossover: pair tournament winners to produce the same number of
	// offspring again.
	for i := 0; i < len(pop); i++ {
		a := pop[g.tournament()]
		b := pop[g.tournament()]
		c := g.buf()
		g.crossoverInto(c, a, b)
		g.repair(c)
		g.off = append(g.off, c)
	}

	// Survivor selection: keep the best Population among old + new. The
	// candidate order (population, then offspring) and the stable sort
	// reproduce the historical tie-breaking exactly.
	if cap(g.offScores) < len(g.off) {
		g.offScores = make([]float64, len(g.off))
	}
	g.offScores = g.offScores[:len(g.off)]
	g.evalScores(g.off, g.offScores)

	total := len(pop) + len(g.off)
	g.idx = g.idx[:0]
	for i := 0; i < total; i++ {
		g.idx = append(g.idx, i)
	}
	score := func(i int) float64 {
		if i < len(pop) {
			return g.scores[i]
		}
		return g.offScores[i-len(pop)]
	}
	member := func(i int) Matrix {
		if i < len(pop) {
			return pop[i]
		}
		return g.off[i-len(pop)]
	}
	sort.SliceStable(g.idx, func(a, b int) bool { return score(g.idx[a]) > score(g.idx[b]) })

	keep := min(g.opts.Population, total)
	g.next = g.next[:0]
	g.nextScores = g.nextScores[:0]
	for _, i := range g.idx[:keep] {
		g.next = append(g.next, member(i))
		g.nextScores = append(g.nextScores, score(i))
	}
	for _, i := range g.idx[keep:] {
		g.free = append(g.free, member(i))
	}
	g.pop, g.next = g.next, g.pop[:0]
	g.scores, g.nextScores = g.nextScores, g.scores[:0]
}

// Run executes the given number of generations and returns the best
// matrix found together with its fitness.
func (g *GA) Run(generations int) (Matrix, float64) {
	for i := 0; i < generations; i++ {
		g.Step()
	}
	return g.Best()
}

// Best returns the highest-fitness member of the current population. The
// matrix is borrowed: it is valid until the next Step call, which may
// recycle evicted members' storage; clone to keep it longer.
func (g *GA) Best() (Matrix, float64) {
	bi := 0
	for i := range g.scores {
		if g.scores[i] > g.scores[bi] {
			bi = i
		}
	}
	return g.pop[bi], g.scores[bi]
}

// Population returns the current population (borrowed; callers must clone
// before mutating or holding across a Step call — evicted members'
// storage is recycled into later offspring). PolluxSched clones it to
// bootstrap the next interval.
func (g *GA) Population() []Matrix {
	return g.pop
}

// mutate applies the paper's mutation: each element with probability 1/N
// (N = number of nodes) is set to a uniform random integer in [0, cap_n].
func (g *GA) mutate(m Matrix) {
	nodes := len(g.prob.Capacity)
	if nodes == 0 {
		return
	}
	if g.opts.SparseMutation {
		g.mutateSparse(m)
		return
	}
	p := 1.0 / float64(nodes)
	for j := range m {
		for n := range m[j] {
			if g.rng.Float64() < p {
				m[j][n] = g.rng.Intn(g.prob.Capacity[n] + 1)
			}
		}
	}
}

// mutateSparse realizes the same per-cell Bernoulli(1/N) mutation by
// drawing the gaps between hits from the matching geometric distribution
// (floor(ln U / ln(1-p)) with U uniform in (0,1]), visiting only the
// mutated cells. With jobs×nodes cells and hit rate 1/nodes that is
// O(jobs) expected draws per offspring instead of O(jobs × nodes).
func (g *GA) mutateSparse(m Matrix) {
	nodes := len(g.prob.Capacity)
	total := len(m) * nodes
	if total == 0 {
		return
	}
	if nodes == 1 {
		// p = 1: every cell mutates, no gaps to sample.
		for j := range m {
			m[j][0] = g.rng.Intn(g.prob.Capacity[0] + 1)
		}
		return
	}
	ln1p := math.Log(1 - 1.0/float64(nodes))
	for i := 0; ; i++ {
		u := 1 - g.rng.Float64() // (0,1], so Log is finite
		i += int(math.Log(u) / ln1p)
		if i >= total {
			return
		}
		n := i % nodes
		m[i/nodes][n] = g.rng.Intn(g.prob.Capacity[n] + 1)
	}
}

// crossoverInto fills c by mixing rows of two parents uniformly at
// random; every row is overwritten, so c may be a recycled buffer.
func (g *GA) crossoverInto(c, a, b Matrix) {
	for j := range c {
		src := a
		if g.rng.Intn(2) == 1 {
			src = b
		}
		copy(c[j], src[j])
	}
}

// tournament returns the index of the fittest among Tournament randomly
// chosen population members.
func (g *GA) tournament() int {
	best := g.rng.Intn(len(g.pop))
	for i := 1; i < g.opts.Tournament; i++ {
		c := g.rng.Intn(len(g.pop))
		if g.scores[c] > g.scores[best] {
			best = c
		}
	}
	return best
}

// repair restores feasibility: per-node GPU capacity first, then (if
// enabled) the interference-avoidance constraint.
func (g *GA) repair(m Matrix) {
	RepairCapacity(m, g.prob.Capacity, g.rng)
	if g.prob.InterferenceAvoidance {
		RepairInterferenceSub(m, g.rng, g.prob.DistBlocked, g.prob.ExtraSpan)
	}
}

// RepairCapacity decrements random positive elements within over-capacity
// columns until every node's allocation fits its GPU capacity, as in the
// paper's repair operation. The candidate set (jobs with GPUs on the
// node) is computed once per node and maintained in place as jobs hit
// zero, so repair is linear in jobs + excess rather than quadratic.
func RepairCapacity(m Matrix, capacity []int, rng *rand.Rand) {
	var cand []int
	for n := range capacity {
		over := m.NodeUsage(n) - capacity[n]
		if over <= 0 {
			continue
		}
		cand = cand[:0]
		for j := range m {
			if m[j][n] > 0 {
				cand = append(cand, j)
			}
		}
		for ; over > 0; over-- {
			// Shed one GPU from a random job still on this node.
			i := rng.Intn(len(cand))
			j := cand[i]
			m[j][n]--
			if m[j][n] == 0 {
				cand[i] = cand[len(cand)-1]
				cand = cand[:len(cand)-1]
			}
		}
	}
}

// RepairInterference removes distributed jobs (spanning > 1 node) from
// nodes shared with other distributed jobs, until each node hosts at most
// one distributed job (Sec. 4.2.1, interference avoidance). Per-job node
// counts are maintained incrementally, so the repair is a single pass
// over the nodes instead of the former rescan-until-stable loop whose
// every sweep recomputed JobNodes per (node, job) pair — O(nodes × jobs ×
// nodes) per sweep, a measured hotspot on 64-node traces.
//
// Correctness hinges on the span recheck being live at every eviction:
// zeroing job i's allocation on node n shrinks i's span, and a job whose
// span has dropped to a single node no longer interferes (Sec. 4.2.1 —
// only distributed jobs sharing a node interfere), so it must never be
// evicted. Each node's candidate list is therefore built from the live
// span counts at the moment the node is processed, never carried over,
// and an eviction updates the count in place. One pass suffices: later
// evictions only shrink spans, which cannot re-create a violation on an
// already-processed node. For inputs where no eviction occurs the rng is
// never touched, and in general the draw sequence is identical to the
// old stable-scan's first sweep (its later sweeps never drew), so fixed-
// seed GA traces are unchanged.
func RepairInterference(m Matrix, rng *rand.Rand) {
	RepairInterferenceSub(m, rng, nil, nil)
}

// RepairInterferenceSub is RepairInterference for a sub-problem embedded
// in a larger cluster (see Problem.DistBlocked and Problem.ExtraSpan):
// blocked[n] marks columns where a distributed job outside the
// sub-problem already resides — no distributed GPUs of the sub-problem's
// jobs may remain there — and extraSpan[j] counts the nodes job j
// occupies outside these columns, which add to its effective span.
// Either may be nil; with both nil this is exactly RepairInterference,
// rng draw sequence included.
func RepairInterferenceSub(m Matrix, rng *rand.Rand, blocked []bool, extraSpan []int) {
	if len(m) == 0 {
		return
	}
	nodes := len(m[0])
	span := make([]int, len(m))
	for j := range m {
		span[j] = m.JobNodes(j)
		if extraSpan != nil {
			span[j] += extraSpan[j]
		}
	}
	var dist []int
	for n := 0; n < nodes; n++ {
		if blocked != nil && blocked[n] {
			// The outside distributed job keeps the node; every
			// distributed sub-problem job leaves it. There is no choice
			// to randomize (all must go), so eviction runs in row order
			// and the rng is untouched. Evicting j changes only j's own
			// span, so one pass with live span checks suffices.
			for j := range m {
				if m[j][n] > 0 && span[j] > 1 {
					m[j][n] = 0
					span[j]--
				}
			}
			continue
		}
		dist = dist[:0]
		for j := range m {
			if m[j][n] > 0 && span[j] > 1 {
				dist = append(dist, j)
			}
		}
		for len(dist) > 1 {
			// Evict a random distributed job from this node, keeping the
			// others. Everything still listed spans > 1 node right now:
			// the list was built from the live counts and an eviction
			// shrinks only the evicted job's own span.
			i := rng.Intn(len(dist))
			j := dist[i]
			m[j][n] = 0
			span[j]--
			dist = append(dist[:i], dist[i+1:]...)
		}
	}
}

// Feasible reports whether m satisfies node capacities and, optionally,
// the interference-avoidance constraint. It is used by tests and by
// defensive checks in the scheduler.
func Feasible(m Matrix, capacity []int, avoidance bool) bool {
	return FeasibleSub(m, capacity, avoidance, nil, nil)
}

// FeasibleSub is Feasible under the sub-problem constraints of
// RepairInterferenceSub: no distributed GPUs on blocked nodes, and spans
// widened by extraSpan. Either may be nil.
func FeasibleSub(m Matrix, capacity []int, avoidance bool, blocked []bool, extraSpan []int) bool {
	for n := range capacity {
		if m.NodeUsage(n) > capacity[n] {
			return false
		}
	}
	if avoidance {
		span := make([]int, len(m))
		for j := range m {
			span[j] = m.JobNodes(j)
			if extraSpan != nil {
				span[j] += extraSpan[j]
			}
		}
		for n := range capacity {
			dist := 0
			for j := range m {
				if m[j][n] > 0 && span[j] > 1 {
					dist++
				}
			}
			if dist > 1 || (dist > 0 && blocked != nil && blocked[n]) {
				return false
			}
		}
	}
	return true
}
