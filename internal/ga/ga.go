// Package ga implements the genetic algorithm PolluxSched uses to optimize
// cluster-wide resource allocations (Sec. 4.2.1 and Fig. 5 of the paper):
// mutation of allocation-matrix elements, tournament-selection crossover
// that mixes rows (job allocations) between parents, a repair step that
// restores per-node GPU capacity and the interference-avoidance
// constraint, and elitist survivor selection with the population carried
// over between scheduling intervals.
//
// The GA is generic over the fitness function; PolluxSched supplies
// Eqn. 14 (the weighted mean of per-job speedups with restart penalties).
package ga

import (
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/par"
)

// Matrix is an allocation matrix A: Matrix[j][n] is the number of GPUs on
// node n allocated to job j.
type Matrix [][]int

// NewMatrix allocates a zero matrix for jobs × nodes.
func NewMatrix(jobs, nodes int) Matrix {
	m := make(Matrix, jobs)
	backing := make([]int, jobs*nodes)
	for j := range m {
		m[j], backing = backing[:nodes:nodes], backing[nodes:]
	}
	return m
}

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix {
	if len(m) == 0 {
		return Matrix{}
	}
	c := NewMatrix(len(m), len(m[0]))
	for j := range m {
		copy(c[j], m[j])
	}
	return c
}

// JobGPUs returns the total GPUs allocated to job j.
func (m Matrix) JobGPUs(j int) int {
	sum := 0
	for _, g := range m[j] {
		sum += g
	}
	return sum
}

// JobNodes returns the number of nodes on which job j has at least one GPU.
func (m Matrix) JobNodes(j int) int {
	n := 0
	for _, g := range m[j] {
		if g > 0 {
			n++
		}
	}
	return n
}

// NodeUsage returns the total GPUs allocated on node n across all jobs.
func (m Matrix) NodeUsage(n int) int {
	sum := 0
	for j := range m {
		sum += m[j][n]
	}
	return sum
}

// Equal reports whether two matrices have identical entries.
func (m Matrix) Equal(o Matrix) bool {
	if len(m) != len(o) {
		return false
	}
	for j := range m {
		if len(m[j]) != len(o[j]) {
			return false
		}
		for n := range m[j] {
			if m[j][n] != o[j][n] {
				return false
			}
		}
	}
	return true
}

// Problem describes one cluster-wide allocation optimization.
type Problem struct {
	// Capacity[n] is the number of GPUs on node n.
	Capacity []int
	// Jobs is the number of rows in each allocation matrix.
	Jobs int
	// Fitness scores an allocation matrix; higher is better. It is
	// called only on repaired (feasible) matrices. It must be a pure
	// function of the matrix and, when Options.Workers > 1, safe to call
	// from multiple goroutines concurrently.
	Fitness func(Matrix) float64
	// InterferenceAvoidance enforces that at most one distributed job
	// (a job spanning more than one node) occupies each node (Sec. 4.2.1).
	InterferenceAvoidance bool
}

// Options tunes the GA. The paper's defaults are population 100 and 100
// generations per 60 s scheduling interval.
type Options struct {
	Population int // default 100
	Tournament int // tournament size for parent selection, default 3
	// Workers bounds the goroutines evaluating Fitness concurrently;
	// default GOMAXPROCS. Only fitness evaluation fans out — mutation,
	// crossover, and repair stay on the caller's goroutine so the single
	// *rand.Rand is never shared — and every offspring is scored into a
	// fixed slot, so results are bit-identical to Workers: 1.
	Workers int
}

func (o *Options) defaults() {
	if o.Population <= 0 {
		o.Population = 100
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// GA is the evolving population for one Problem. A GA is not safe for
// concurrent use, but it internally fans fitness evaluation out over
// Options.Workers goroutines (see Options); all stochastic operators run
// on the caller's goroutine.
type GA struct {
	prob Problem
	opts Options
	rng  *rand.Rand

	pop    []Matrix
	scores []float64
}

// New creates a GA for the problem, seeded from the given matrices (the
// population carried over from the previous scheduling interval; may be
// nil or partial). Seeds with the wrong shape are ignored; the rest of
// the population is filled with repaired random matrices and the zero
// matrix (all jobs paused), which is always feasible. One slot is
// reserved for the zero matrix even when the seeds alone would fill the
// population, so "pause everything" is always representable — except at
// Population 1, where the only slot goes to the first valid seed (a
// carried-over current allocation beats an all-paused search there).
func New(prob Problem, opts Options, rng *rand.Rand, seeds []Matrix) *GA {
	opts.defaults()
	g := &GA{prob: prob, opts: opts, rng: rng}
	g.pop = make([]Matrix, 0, opts.Population)
	seedSlots := opts.Population - 1
	if opts.Population == 1 {
		seedSlots = 1
	}
	for _, s := range seeds {
		if len(g.pop) >= seedSlots {
			break
		}
		if len(s) != prob.Jobs || (prob.Jobs > 0 && len(s[0]) != len(prob.Capacity)) {
			continue
		}
		c := s.Clone()
		g.repair(c)
		g.pop = append(g.pop, c)
	}
	if len(g.pop) < opts.Population {
		g.pop = append(g.pop, NewMatrix(prob.Jobs, len(prob.Capacity)))
	}
	for len(g.pop) < opts.Population {
		m := NewMatrix(prob.Jobs, len(prob.Capacity))
		for j := 0; j < prob.Jobs; j++ {
			n := rng.Intn(len(prob.Capacity))
			if cap := prob.Capacity[n]; cap > 0 {
				m[j][n] = 1 + rng.Intn(cap)
			}
		}
		g.repair(m)
		g.pop = append(g.pop, m)
	}
	g.scores = make([]float64, len(g.pop))
	g.evalScores(g.pop, g.scores)
	return g
}

// evalScores fills out[i] = Fitness(ms[i]) for every matrix, fanning the
// calls out over at most Options.Workers goroutines. Each matrix is scored
// into its own slot and Fitness is required to be pure, so the result is
// independent of worker count and interleaving.
func (g *GA) evalScores(ms []Matrix, out []float64) {
	par.For(g.opts.Workers, len(ms), func(i int) {
		out[i] = g.prob.Fitness(ms[i])
	})
}

// Step runs one generation: mutate, crossover, repair, and survivor
// selection back down to the configured population size.
func (g *GA) Step() {
	offspring := make([]Matrix, 0, 2*len(g.pop))
	// Mutation: each current member yields one mutated offspring.
	for _, m := range g.pop {
		c := m.Clone()
		g.mutate(c)
		g.repair(c)
		offspring = append(offspring, c)
	}
	// Crossover: pair tournament winners to produce the same number of
	// offspring again.
	for i := 0; i < len(g.pop); i++ {
		a := g.pop[g.tournament()]
		b := g.pop[g.tournament()]
		c := g.crossover(a, b)
		g.repair(c)
		offspring = append(offspring, c)
	}

	// Survivor selection: keep the best Population among old + new.
	offScores := make([]float64, len(offspring))
	g.evalScores(offspring, offScores)
	type scored struct {
		m Matrix
		f float64
	}
	all := make([]scored, 0, len(g.pop)+len(offspring))
	for i, m := range g.pop {
		all = append(all, scored{m, g.scores[i]})
	}
	for i, m := range offspring {
		all = append(all, scored{m, offScores[i]})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].f > all[j].f })
	g.pop = g.pop[:0]
	g.scores = g.scores[:0]
	for i := 0; i < g.opts.Population && i < len(all); i++ {
		g.pop = append(g.pop, all[i].m)
		g.scores = append(g.scores, all[i].f)
	}
}

// Run executes the given number of generations and returns the best
// matrix found together with its fitness.
func (g *GA) Run(generations int) (Matrix, float64) {
	for i := 0; i < generations; i++ {
		g.Step()
	}
	return g.Best()
}

// Best returns the highest-fitness member of the current population.
func (g *GA) Best() (Matrix, float64) {
	bi := 0
	for i := range g.scores {
		if g.scores[i] > g.scores[bi] {
			bi = i
		}
	}
	return g.pop[bi], g.scores[bi]
}

// Population returns the current population (borrowed; callers must clone
// before mutating). PolluxSched saves it to bootstrap the next interval.
func (g *GA) Population() []Matrix {
	return g.pop
}

// mutate applies the paper's mutation: each element with probability 1/N
// (N = number of nodes) is set to a uniform random integer in [0, cap_n].
func (g *GA) mutate(m Matrix) {
	nodes := len(g.prob.Capacity)
	if nodes == 0 {
		return
	}
	p := 1.0 / float64(nodes)
	for j := range m {
		for n := range m[j] {
			if g.rng.Float64() < p {
				m[j][n] = g.rng.Intn(g.prob.Capacity[n] + 1)
			}
		}
	}
}

// crossover mixes rows of two parents uniformly at random.
func (g *GA) crossover(a, b Matrix) Matrix {
	c := NewMatrix(g.prob.Jobs, len(g.prob.Capacity))
	for j := range c {
		src := a
		if g.rng.Intn(2) == 1 {
			src = b
		}
		copy(c[j], src[j])
	}
	return c
}

// tournament returns the index of the fittest among Tournament randomly
// chosen population members.
func (g *GA) tournament() int {
	best := g.rng.Intn(len(g.pop))
	for i := 1; i < g.opts.Tournament; i++ {
		c := g.rng.Intn(len(g.pop))
		if g.scores[c] > g.scores[best] {
			best = c
		}
	}
	return best
}

// repair restores feasibility: per-node GPU capacity first, then (if
// enabled) the interference-avoidance constraint.
func (g *GA) repair(m Matrix) {
	RepairCapacity(m, g.prob.Capacity, g.rng)
	if g.prob.InterferenceAvoidance {
		RepairInterference(m, g.rng)
	}
}

// RepairCapacity decrements random positive elements within over-capacity
// columns until every node's allocation fits its GPU capacity, as in the
// paper's repair operation. The candidate set (jobs with GPUs on the
// node) is computed once per node and maintained in place as jobs hit
// zero, so repair is linear in jobs + excess rather than quadratic.
func RepairCapacity(m Matrix, capacity []int, rng *rand.Rand) {
	var cand []int
	for n := range capacity {
		over := m.NodeUsage(n) - capacity[n]
		if over <= 0 {
			continue
		}
		cand = cand[:0]
		for j := range m {
			if m[j][n] > 0 {
				cand = append(cand, j)
			}
		}
		for ; over > 0; over-- {
			// Shed one GPU from a random job still on this node.
			i := rng.Intn(len(cand))
			j := cand[i]
			m[j][n]--
			if m[j][n] == 0 {
				cand[i] = cand[len(cand)-1]
				cand = cand[:len(cand)-1]
			}
		}
	}
}

// RepairInterference removes distributed jobs (spanning > 1 node) from
// nodes shared with other distributed jobs, until each node hosts at most
// one distributed job (Sec. 4.2.1, interference avoidance). Per-job node
// counts are maintained incrementally, so the repair is a single pass
// over the nodes instead of the former rescan-until-stable loop whose
// every sweep recomputed JobNodes per (node, job) pair — O(nodes × jobs ×
// nodes) per sweep, a measured hotspot on 64-node traces.
//
// Correctness hinges on the span recheck being live at every eviction:
// zeroing job i's allocation on node n shrinks i's span, and a job whose
// span has dropped to a single node no longer interferes (Sec. 4.2.1 —
// only distributed jobs sharing a node interfere), so it must never be
// evicted. Each node's candidate list is therefore built from the live
// span counts at the moment the node is processed, never carried over,
// and an eviction updates the count in place. One pass suffices: later
// evictions only shrink spans, which cannot re-create a violation on an
// already-processed node. For inputs where no eviction occurs the rng is
// never touched, and in general the draw sequence is identical to the
// old stable-scan's first sweep (its later sweeps never drew), so fixed-
// seed GA traces are unchanged.
func RepairInterference(m Matrix, rng *rand.Rand) {
	if len(m) == 0 {
		return
	}
	nodes := len(m[0])
	span := make([]int, len(m))
	for j := range m {
		span[j] = m.JobNodes(j)
	}
	var dist []int
	for n := 0; n < nodes; n++ {
		dist = dist[:0]
		for j := range m {
			if m[j][n] > 0 && span[j] > 1 {
				dist = append(dist, j)
			}
		}
		for len(dist) > 1 {
			// Evict a random distributed job from this node, keeping the
			// others. Everything still listed spans > 1 node right now:
			// the list was built from the live counts and an eviction
			// shrinks only the evicted job's own span.
			i := rng.Intn(len(dist))
			j := dist[i]
			m[j][n] = 0
			span[j]--
			dist = append(dist[:i], dist[i+1:]...)
		}
	}
}

// Feasible reports whether m satisfies node capacities and, optionally,
// the interference-avoidance constraint. It is used by tests and by
// defensive checks in the scheduler.
func Feasible(m Matrix, capacity []int, avoidance bool) bool {
	for n := range capacity {
		if m.NodeUsage(n) > capacity[n] {
			return false
		}
	}
	if avoidance {
		for n := range capacity {
			dist := 0
			for j := range m {
				if m[j][n] > 0 && m.JobNodes(j) > 1 {
					dist++
				}
			}
			if dist > 1 {
				return false
			}
		}
	}
	return true
}
