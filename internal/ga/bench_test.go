package ga

import (
	"math/rand"
	"strconv"
	"testing"
)

func BenchmarkGAStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prob := Problem{
		Capacity:              []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
		Jobs:                  30,
		Fitness:               simpleFitness,
		InterferenceAvoidance: true,
	}
	g := New(prob, Options{Population: 50}, rng, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

// BenchmarkGAStepWorkers isolates the fitness fan-out: the same generation
// under 1, 2, 4, and 8 workers with an artificially expensive fitness (the
// real one runs golden-section searches on cache misses). The ns/op ratio
// between workers/1 and workers/N is the scheduler-interval speedup on an
// N-core host.
func BenchmarkGAStepWorkers(b *testing.B) {
	expensive := func(m Matrix) float64 {
		f := simpleFitness(m)
		for i := 0; i < 2000; i++ {
			f += 1e-12 * float64(i%7)
		}
		return f
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers/"+strconv.Itoa(workers), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			prob := Problem{
				Capacity:              []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
				Jobs:                  30,
				Fitness:               expensive,
				InterferenceAvoidance: true,
			}
			g := New(prob, Options{Population: 50, Workers: workers}, rng, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Step()
			}
		})
	}
}

// BenchmarkRepairCapacityOverloaded is the worst case for repair: every
// node far over capacity with many candidate jobs, which the old
// re-scan-per-GPU implementation made quadratic.
func BenchmarkRepairCapacityOverloaded(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	capacity := make([]int, 16)
	for i := range capacity {
		capacity[i] = 4
	}
	src := NewMatrix(100, 16)
	for j := range src {
		for n := range src[j] {
			src[j][n] = 1 + rng.Intn(4)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		RepairCapacity(m, capacity, rng)
	}
}

func BenchmarkRepairCapacity(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	capacity := make([]int, 16)
	for i := range capacity {
		capacity[i] = 4
	}
	src := NewMatrix(30, 16)
	for j := range src {
		for n := range src[j] {
			src[j][n] = rng.Intn(5)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		RepairCapacity(m, capacity, rng)
	}
}

// BenchmarkRepairInterference measures the interference repair on a
// diurnal64-shaped matrix (80 jobs x 64 nodes, every job distributed
// over 2-4 nodes — the ~7% hotspot from the diurnal64 profile). The
// onepass case is the live implementation with incrementally maintained
// per-job node counts; stable is the former rescan-until-stable
// implementation (kept in ga_test.go as the behaviour oracle). Both
// sub-benchmarks include one matrix Clone per iteration.
func BenchmarkRepairInterference(b *testing.B) {
	const jobs, nodes = 80, 64
	rng := rand.New(rand.NewSource(3))
	src := NewMatrix(jobs, nodes)
	for j := range src {
		for k, span := 0, 2+rng.Intn(3); k < span; k++ {
			src[j][rng.Intn(nodes)] = 1 + rng.Intn(4)
		}
	}
	impls := []struct {
		name   string
		repair func(Matrix, *rand.Rand)
	}{
		{"onepass", RepairInterference},
		{"stable", repairInterferenceStable},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < b.N; i++ {
				m := src.Clone()
				impl.repair(m, rng)
			}
		})
	}
}
