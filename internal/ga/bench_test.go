package ga

import (
	"math/rand"
	"testing"
)

func BenchmarkGAStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prob := Problem{
		Capacity:              []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
		Jobs:                  30,
		Fitness:               simpleFitness,
		InterferenceAvoidance: true,
	}
	g := New(prob, Options{Population: 50}, rng, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func BenchmarkRepairCapacity(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	capacity := make([]int, 16)
	for i := range capacity {
		capacity[i] = 4
	}
	src := NewMatrix(30, 16)
	for j := range src {
		for n := range src[j] {
			src[j][n] = rng.Intn(5)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		RepairCapacity(m, capacity, rng)
	}
}
