package ga

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", len(m), len(m[0]))
	}
	for j := range m {
		for n := range m[j] {
			if m[j][n] != 0 {
				t.Errorf("m[%d][%d] = %d, want 0", j, n, m[j][n])
			}
		}
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m[0][0] = 5
	c := m.Clone()
	c[0][0] = 9
	if m[0][0] != 5 {
		t.Error("clone shares backing storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := Matrix{{2, 0, 1}, {0, 3, 0}}
	if g := m.JobGPUs(0); g != 3 {
		t.Errorf("JobGPUs(0) = %d, want 3", g)
	}
	if n := m.JobNodes(0); n != 2 {
		t.Errorf("JobNodes(0) = %d, want 2", n)
	}
	if n := m.JobNodes(1); n != 1 {
		t.Errorf("JobNodes(1) = %d, want 1", n)
	}
	if u := m.NodeUsage(1); u != 3 {
		t.Errorf("NodeUsage(1) = %d, want 3", u)
	}
	if u := m.NodeUsage(0); u != 2 {
		t.Errorf("NodeUsage(0) = %d, want 2", u)
	}
}

func TestMatrixEqual(t *testing.T) {
	a := Matrix{{1, 2}, {3, 4}}
	b := Matrix{{1, 2}, {3, 4}}
	c := Matrix{{1, 2}, {3, 5}}
	if !a.Equal(b) {
		t.Error("equal matrices reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal matrices reported equal")
	}
	if a.Equal(Matrix{{1, 2}}) {
		t.Error("different shapes reported equal")
	}
}

func TestRepairCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Matrix{{4, 0}, {4, 0}, {0, 2}}
	capacity := []int{4, 4}
	RepairCapacity(m, capacity, rng)
	if m.NodeUsage(0) > 4 {
		t.Errorf("node 0 still over capacity: %d", m.NodeUsage(0))
	}
	if m.NodeUsage(1) != 2 {
		t.Errorf("node 1 usage changed: %d, want 2", m.NodeUsage(1))
	}
	// Total GPUs on node 0 must have been reduced by exactly the excess.
	if got := m.NodeUsage(0); got != 4 {
		t.Errorf("node 0 usage = %d, want exactly 4", got)
	}
}

func TestRepairInterference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Jobs 0 and 1 are both distributed and share node 1.
	m := Matrix{
		{2, 2, 0},
		{0, 2, 2},
		{0, 1, 0}, // single-node job, allowed to share
	}
	RepairInterference(m, rng)
	if !Feasible(m, []int{8, 8, 8}, true) {
		t.Errorf("interference constraint not repaired: %v", m)
	}
	// Single-node job must be untouched.
	if m[2][1] != 1 {
		t.Errorf("single-node job modified: %v", m[2])
	}
}

func TestFeasible(t *testing.T) {
	capacity := []int{4, 4}
	if !Feasible(Matrix{{4, 0}, {0, 4}}, capacity, true) {
		t.Error("feasible matrix reported infeasible")
	}
	if Feasible(Matrix{{5, 0}}, capacity, false) {
		t.Error("over-capacity matrix reported feasible")
	}
	// Two distributed jobs sharing node 0.
	shared := Matrix{{2, 2}, {1, 1}}
	if Feasible(shared, []int{4, 4}, true) {
		t.Error("interference violation reported feasible")
	}
	if !Feasible(shared, []int{4, 4}, false) {
		t.Error("same matrix should be feasible without avoidance")
	}
}

// Property: after repair, any random matrix satisfies capacity and the
// interference constraint.
func TestRepairProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := 1 + rng.Intn(8)
		nodes := 1 + rng.Intn(6)
		capacity := make([]int, nodes)
		for n := range capacity {
			capacity[n] = 1 + rng.Intn(4)
		}
		m := NewMatrix(jobs, nodes)
		for j := 0; j < jobs; j++ {
			for n := 0; n < nodes; n++ {
				m[j][n] = rng.Intn(6)
			}
		}
		RepairCapacity(m, capacity, rng)
		RepairInterference(m, rng)
		return Feasible(m, capacity, true)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRepairCapacityHeavyOverload(t *testing.T) {
	// A node overloaded by many jobs at once (the worst case for the old
	// per-GPU re-scan) must still be repaired to exactly its capacity,
	// only ever by decrementing, and without touching other columns.
	rng := rand.New(rand.NewSource(21))
	jobs, nodes := 40, 8
	capacity := make([]int, nodes)
	for n := range capacity {
		capacity[n] = 4
	}
	m := NewMatrix(jobs, nodes)
	for j := range m {
		for n := range m[j] {
			m[j][n] = rng.Intn(4)
		}
	}
	orig := m.Clone()
	RepairCapacity(m, capacity, rng)
	for n := range capacity {
		if m.NodeUsage(n) > capacity[n] {
			t.Errorf("node %d still over capacity: %d", n, m.NodeUsage(n))
		}
		if orig.NodeUsage(n) >= capacity[n] && m.NodeUsage(n) != min(orig.NodeUsage(n), capacity[n]) {
			t.Errorf("node %d: usage %d, want exactly %d (shed only the excess)",
				n, m.NodeUsage(n), capacity[n])
		}
	}
	for j := range m {
		for n := range m[j] {
			if m[j][n] > orig[j][n] {
				t.Errorf("repair increased m[%d][%d]: %d -> %d", j, n, orig[j][n], m[j][n])
			}
			if m[j][n] < 0 {
				t.Errorf("negative allocation m[%d][%d] = %d", j, n, m[j][n])
			}
		}
	}
}

// simpleFitness rewards total allocated GPUs with diminishing returns and
// a mild spread penalty — shaped like the real speedup objective.
func simpleFitness(m Matrix) float64 {
	f := 0.0
	for j := range m {
		k := float64(m.JobGPUs(j))
		n := float64(m.JobNodes(j))
		if k > 0 {
			f += k / (1 + 0.05*k) * (1 - 0.02*(n-1))
		}
	}
	return f
}

func TestGAImprovesFitness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prob := Problem{
		Capacity:              []int{4, 4, 4, 4},
		Jobs:                  6,
		Fitness:               simpleFitness,
		InterferenceAvoidance: true,
	}
	g := New(prob, Options{Population: 40}, rng, nil)
	_, before := g.Best()
	best, after := g.Run(50)
	if after < before {
		t.Errorf("fitness decreased: %v -> %v", before, after)
	}
	if !Feasible(best, prob.Capacity, true) {
		t.Errorf("best matrix infeasible: %v", best)
	}
	// With 16 GPUs and 6 jobs the optimum allocates every GPU.
	total := 0
	for j := range best {
		total += best.JobGPUs(j)
	}
	if total < 14 {
		t.Errorf("GA left too many GPUs idle: allocated %d of 16", total)
	}
}

func TestGAPopulationFeasibleEveryGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prob := Problem{
		Capacity:              []int{2, 3, 4},
		Jobs:                  5,
		Fitness:               simpleFitness,
		InterferenceAvoidance: true,
	}
	g := New(prob, Options{Population: 20}, rng, nil)
	for gen := 0; gen < 10; gen++ {
		g.Step()
		for i, m := range g.Population() {
			if !Feasible(m, prob.Capacity, true) {
				t.Fatalf("gen %d member %d infeasible: %v", gen, i, m)
			}
		}
	}
}

func TestGASeedsCarryOver(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prob := Problem{
		Capacity: []int{4, 4},
		Jobs:     2,
		Fitness:  simpleFitness,
	}
	seed := Matrix{{4, 0}, {0, 4}} // the optimum for this fitness shape
	g := New(prob, Options{Population: 10}, rng, []Matrix{seed})
	best, _ := g.Best()
	if !best.Equal(seed) {
		t.Errorf("seeded optimum not retained as best: %v", best)
	}
}

func TestGASeedsWrongShapeIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	prob := Problem{Capacity: []int{4, 4}, Jobs: 2, Fitness: simpleFitness}
	bad := Matrix{{1, 1, 1}} // wrong shape
	g := New(prob, Options{Population: 5}, rng, []Matrix{bad})
	for _, m := range g.Population() {
		if len(m) != 2 || len(m[0]) != 2 {
			t.Fatalf("population contains wrong-shape matrix: %v", m)
		}
	}
}

func TestGAZeroMatrixAlwaysInInitialPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prob := Problem{Capacity: []int{1}, Jobs: 3, Fitness: simpleFitness}
	g := New(prob, Options{Population: 8}, rng, nil)
	found := false
	zero := NewMatrix(3, 1)
	for _, m := range g.Population() {
		if m.Equal(zero) {
			found = true
		}
	}
	if !found {
		t.Error("zero matrix missing from initial population")
	}
}

func TestGAZeroMatrixReservedWithFullSeeds(t *testing.T) {
	// Even when carried-over seeds alone would fill the population (the
	// common case: Pollux prepends the current allocation to the previous
	// interval's population), one slot stays reserved for the zero matrix.
	rng := rand.New(rand.NewSource(12))
	prob := Problem{Capacity: []int{4, 4}, Jobs: 2, Fitness: simpleFitness}
	seeds := make([]Matrix, 10)
	for i := range seeds {
		seeds[i] = Matrix{{2, 0}, {0, 2}}
	}
	g := New(prob, Options{Population: 8}, rng, seeds)
	zero := NewMatrix(2, 2)
	found := false
	for _, m := range g.Population() {
		if m.Equal(zero) {
			found = true
		}
	}
	if !found {
		t.Error("zero matrix dropped when seeds fill the population")
	}
	if len(g.Population()) != 8 {
		t.Errorf("population size = %d, want 8", len(g.Population()))
	}
}

func TestGAPopulationOneKeepsSeed(t *testing.T) {
	// With a single-member population the one slot must go to the seed
	// (the scheduler's current allocation), not the zero matrix.
	rng := rand.New(rand.NewSource(14))
	prob := Problem{Capacity: []int{4, 4}, Jobs: 2, Fitness: simpleFitness}
	seed := Matrix{{4, 0}, {0, 4}}
	g := New(prob, Options{Population: 1}, rng, []Matrix{seed})
	pop := g.Population()
	if len(pop) != 1 {
		t.Fatalf("population size = %d, want 1", len(pop))
	}
	if !pop[0].Equal(seed) {
		t.Errorf("population = %v, want the seed %v", pop[0], seed)
	}
	// Without seeds, the single member is the zero matrix.
	g = New(prob, Options{Population: 1}, rng, nil)
	if !g.Population()[0].Equal(NewMatrix(2, 2)) {
		t.Errorf("unseeded single member = %v, want zero matrix", g.Population()[0])
	}
}

func TestGAWorkersBitIdentical(t *testing.T) {
	// Concurrent fitness evaluation must not change results: offspring are
	// scored into fixed slots and the rng never leaves the caller's
	// goroutine, so any worker count reproduces the serial run exactly.
	run := func(workers int) (Matrix, float64) {
		rng := rand.New(rand.NewSource(77))
		prob := Problem{
			Capacity:              []int{4, 4, 4, 4},
			Jobs:                  6,
			Fitness:               simpleFitness,
			InterferenceAvoidance: true,
		}
		g := New(prob, Options{Population: 30, Workers: workers}, rng, nil)
		return g.Run(25)
	}
	m1, f1 := run(1)
	m8, f8 := run(8)
	if !m1.Equal(m8) {
		t.Errorf("Workers 1 vs 8 best matrices differ:\n%v\n%v", m1, m8)
	}
	//pollux:floateq-ok bit-identical determinism gate: the worker count must not change the result at all
	if f1 != f8 {
		t.Errorf("Workers 1 vs 8 fitness differ: %v vs %v", f1, f8)
	}
}

func TestGADeterministicGivenSeed(t *testing.T) {
	run := func() Matrix {
		rng := rand.New(rand.NewSource(99))
		prob := Problem{
			Capacity: []int{4, 4, 4},
			Jobs:     4,
			Fitness:  simpleFitness,
		}
		g := New(prob, Options{Population: 20}, rng, nil)
		best, _ := g.Run(20)
		return best
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Errorf("GA not deterministic for fixed seed:\n%v\n%v", a, b)
	}
}

func TestGARespectsScarcity(t *testing.T) {
	// More jobs than GPUs: repaired allocations never exceed capacity and
	// fitness still improves by giving GPUs to someone.
	rng := rand.New(rand.NewSource(13))
	prob := Problem{
		Capacity: []int{2},
		Jobs:     5,
		Fitness:  simpleFitness,
	}
	g := New(prob, Options{Population: 16}, rng, nil)
	best, f := g.Run(30)
	if !Feasible(best, prob.Capacity, false) {
		t.Fatalf("infeasible best: %v", best)
	}
	if f <= 0 {
		t.Errorf("fitness = %v, want > 0 (GPUs should be used)", f)
	}
}

// repairInterferenceStable is the pre-incremental RepairInterference
// (rescan-until-stable, JobNodes recomputed fresh at every node visit),
// kept as the oracle for the one-pass implementation: same rng seed must
// yield the bit-identical repaired matrix, which pins both the eviction
// decisions and the rng draw order that fixed-seed GA traces depend on.
func repairInterferenceStable(m Matrix, rng *rand.Rand) {
	if len(m) == 0 {
		return
	}
	nodes := len(m[0])
	for changed := true; changed; {
		changed = false
		for n := 0; n < nodes; n++ {
			var dist []int
			for j := range m {
				if m[j][n] > 0 && m.JobNodes(j) > 1 {
					dist = append(dist, j)
				}
			}
			for len(dist) > 1 {
				i := rng.Intn(len(dist))
				m[dist[i]][n] = 0
				dist = append(dist[:i], dist[i+1:]...)
				changed = true
			}
		}
	}
}

// checkNoOverEviction verifies the Sec. 4.2.1 eviction invariants between
// an input matrix and its repaired result: only distributed jobs
// interfere, so a job spanning a single node must never be touched, no
// job may lose its entire allocation (the final eviction of a fully
// cleared row would necessarily have hit a job whose span had already
// dropped to one node), and repair only zeroes whole per-node entries.
func checkNoOverEviction(t *testing.T, before, after Matrix) {
	t.Helper()
	for j := range before {
		if before.JobNodes(j) > 0 && after.JobNodes(j) == 0 {
			t.Fatalf("job %d over-evicted to zero allocation:\nbefore %v\nafter  %v",
				j, before[j], after[j])
		}
		if before.JobNodes(j) <= 1 {
			for n := range before[j] {
				if after[j][n] != before[j][n] {
					t.Fatalf("single-node job %d modified at node %d: %d -> %d",
						j, n, before[j][n], after[j][n])
				}
			}
		}
		for n := range before[j] {
			if after[j][n] != 0 && after[j][n] != before[j][n] {
				t.Fatalf("job %d node %d partially modified: %d -> %d (evictions must zero whole entries)",
					j, n, before[j][n], after[j][n])
			}
		}
	}
}

// TestRepairInterferenceNoOverEviction is the regression test for the
// stale-span over-eviction hazard: span bookkeeping must stay live while
// evictions proceed, because evicting job i from node n can drop i's span
// to a single node, after which i no longer interferes anywhere and must
// not be evicted again. It also locks the one-pass rewrite to the old
// stable-scan behaviour bit for bit.
func TestRepairInterferenceNoOverEviction(t *testing.T) {
	// Crafted stale-span scenario: a and b share nodes 0 and 1, c spans
	// nodes 1 and 2. Whichever eviction order the rng picks, a job whose
	// span drops to one node must keep that last allocation.
	for seed := int64(0); seed < 200; seed++ {
		m := Matrix{
			{2, 1, 0},
			{1, 2, 0},
			{0, 1, 2},
		}
		before := m.Clone()
		RepairInterference(m, rand.New(rand.NewSource(seed)))
		checkNoOverEviction(t, before, m)
	}

	// Fuzz random occupancies: invariants hold, the interference
	// constraint is restored in one pass, and the result matches the
	// stable-scan oracle under the same rng seed.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		jobs, nodes := 1+rng.Intn(8), 1+rng.Intn(6)
		m := NewMatrix(jobs, nodes)
		for j := range m {
			for n := range m[j] {
				if rng.Float64() < 0.45 {
					m[j][n] = 1 + rng.Intn(3)
				}
			}
		}
		before := m.Clone()
		ref := m.Clone()
		seed := rng.Int63()
		RepairInterference(m, rand.New(rand.NewSource(seed)))
		repairInterferenceStable(ref, rand.New(rand.NewSource(seed)))
		if !m.Equal(ref) {
			t.Fatalf("iter %d: one-pass result diverges from stable-scan oracle\nin   %v\ngot  %v\nwant %v",
				iter, before, m, ref)
		}
		checkNoOverEviction(t, before, m)
		for n := 0; n < nodes; n++ {
			dist := 0
			for j := range m {
				if m[j][n] > 0 && m.JobNodes(j) > 1 {
					dist++
				}
			}
			if dist > 1 {
				t.Fatalf("iter %d: node %d still hosts %d distributed jobs after repair:\n%v",
					iter, n, dist, m)
			}
		}
	}
}

// stepOracle is the pre-reuse Step (clone-per-offspring, scored structs,
// fresh slices every generation), kept as the oracle for the
// buffer-recycling implementation: same seed must yield bit-identical
// populations, scores, and rng draw order across generations.
func stepOracle(g *GA) {
	offspring := make([]Matrix, 0, 2*len(g.pop))
	for _, m := range g.pop {
		c := m.Clone()
		g.mutate(c)
		g.repair(c)
		offspring = append(offspring, c)
	}
	for i := 0; i < len(g.pop); i++ {
		a := g.pop[g.tournament()]
		b := g.pop[g.tournament()]
		c := NewMatrix(g.prob.Jobs, len(g.prob.Capacity))
		g.crossoverInto(c, a, b)
		g.repair(c)
		offspring = append(offspring, c)
	}
	offScores := make([]float64, len(offspring))
	g.evalScores(offspring, offScores)
	type scored struct {
		m Matrix
		f float64
	}
	all := make([]scored, 0, len(g.pop)+len(offspring))
	for i, m := range g.pop {
		all = append(all, scored{m, g.scores[i]})
	}
	for i, m := range offspring {
		all = append(all, scored{m, offScores[i]})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].f > all[j].f })
	g.pop = make([]Matrix, 0, g.opts.Population)
	g.scores = make([]float64, 0, g.opts.Population)
	for i := 0; i < g.opts.Population && i < len(all); i++ {
		g.pop = append(g.pop, all[i].m)
		g.scores = append(g.scores, all[i].f)
	}
}

func TestStepBufferReuseBitIdentical(t *testing.T) {
	// Every fixed-seed sim baseline depends on the GA trace staying
	// byte-stable, so the allocation-reuse Step must match the historical
	// clone-per-offspring implementation generation by generation.
	newGA := func() *GA {
		rng := rand.New(rand.NewSource(123))
		prob := Problem{
			Capacity:              []int{4, 4, 4, 2},
			Jobs:                  7,
			Fitness:               simpleFitness,
			InterferenceAvoidance: true,
		}
		return New(prob, Options{Population: 24}, rng, []Matrix{NewMatrix(7, 4)})
	}
	got, want := newGA(), newGA()
	for gen := 0; gen < 15; gen++ {
		got.Step()
		stepOracle(want)
		if len(got.pop) != len(want.pop) {
			t.Fatalf("gen %d: population size %d, want %d", gen, len(got.pop), len(want.pop))
		}
		for i := range got.pop {
			if !got.pop[i].Equal(want.pop[i]) {
				t.Fatalf("gen %d member %d diverges from clone-path oracle:\ngot  %v\nwant %v",
					gen, i, got.pop[i], want.pop[i])
			}
			//pollux:floateq-ok bit-identity gate against the historical implementation
			if got.scores[i] != want.scores[i] {
				t.Fatalf("gen %d member %d score %v, want %v", gen, i, got.scores[i], want.scores[i])
			}
		}
	}
}

func TestRepairInterferenceSubBlocked(t *testing.T) {
	// Node 1 is blocked (a distributed job outside the sub-problem lives
	// there): distributed sub-problem jobs must vacate it; the single-node
	// job may stay.
	m := Matrix{
		{2, 2, 0}, // distributed: must leave node 1
		{0, 1, 0}, // single-node: allowed to share with the outside job
		{0, 2, 2}, // distributed: must leave node 1
	}
	rng := rand.New(rand.NewSource(3))
	RepairInterferenceSub(m, rng, []bool{false, true, false}, nil)
	if m[0][1] != 0 || m[2][1] != 0 {
		t.Errorf("distributed jobs remain on blocked node: %v", m)
	}
	if m[1][1] != 1 {
		t.Errorf("single-node job evicted from blocked node: %v", m[1])
	}
	if !FeasibleSub(m, []int{8, 8, 8}, true, []bool{false, true, false}, nil) {
		t.Errorf("result infeasible: %v", m)
	}
}

func TestRepairInterferenceSubExtraSpan(t *testing.T) {
	// Job 0 sits on one local node but holds GPUs in another rack
	// (ExtraSpan 1), so it is distributed; sharing node 0 with the locally
	// distributed job 1 violates Sec. 4.2.1 and one of them must go.
	m := Matrix{
		{2, 0},
		{1, 1},
	}
	extra := []int{1, 0}
	rng := rand.New(rand.NewSource(4))
	before := m.Clone()
	RepairInterferenceSub(m, rng, nil, extra)
	if !FeasibleSub(m, []int{4, 4}, true, nil, extra) {
		t.Errorf("extra-span conflict not repaired: %v", m)
	}
	if m.Equal(before) {
		t.Errorf("repair left conflicting matrix unchanged: %v", m)
	}
	// Without the extra span the same matrix is fine and must be untouched.
	m2 := before.Clone()
	RepairInterferenceSub(m2, rand.New(rand.NewSource(4)), nil, nil)
	if !m2.Equal(before) {
		t.Errorf("span-1 job evicted without extra span: %v", m2)
	}
}

func TestRepairInterferenceSubNilMatchesBase(t *testing.T) {
	// nil blocked/extraSpan must reproduce RepairInterference exactly,
	// including the rng draw order.
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		jobs, nodes := 1+rng.Intn(8), 1+rng.Intn(6)
		m := NewMatrix(jobs, nodes)
		for j := range m {
			for n := range m[j] {
				if rng.Float64() < 0.45 {
					m[j][n] = 1 + rng.Intn(3)
				}
			}
		}
		ref := m.Clone()
		seed := rng.Int63()
		RepairInterferenceSub(m, rand.New(rand.NewSource(seed)), nil, nil)
		repairInterferenceStable(ref, rand.New(rand.NewSource(seed)))
		if !m.Equal(ref) {
			t.Fatalf("iter %d: nil-constraint sub repair diverges from oracle\ngot  %v\nwant %v", iter, m, ref)
		}
	}
}

func TestSparseMutationSameDistribution(t *testing.T) {
	// The geometric-gap sampler must realize the same per-cell mutation
	// rate (1/N) as the dense Bernoulli scan. Count mutated cells over
	// many offspring for both modes and compare against the binomial
	// expectation. Capacities are large so a mutation draw almost never
	// reproduces the old value.
	count := func(sparse bool) int {
		rng := rand.New(rand.NewSource(55))
		prob := Problem{Capacity: []int{100, 100, 100, 100, 100, 100, 100, 100}, Jobs: 8, Fitness: simpleFitness}
		g := &GA{prob: prob, opts: Options{SparseMutation: sparse}, rng: rng}
		mut := 0
		for trial := 0; trial < 2000; trial++ {
			m := NewMatrix(prob.Jobs, len(prob.Capacity))
			for j := range m {
				for n := range m[j] {
					m[j][n] = -1 // sentinel no rng draw can produce
				}
			}
			g.mutate(m)
			for j := range m {
				for n := range m[j] {
					if m[j][n] != -1 {
						mut++
					}
				}
			}
		}
		return mut
	}
	dense, sparse := count(false), count(true)
	// 2000 trials × 64 cells × 1/8 = 16000 expected mutations; σ ≈ 118.
	// Accept ±5σ ≈ ±600 for each mode.
	for _, c := range []struct {
		name string
		n    int
	}{{"dense", dense}, {"sparse", sparse}} {
		if c.n < 15400 || c.n > 16600 {
			t.Errorf("%s mutation count = %d, want ≈16000 (rate 1/N violated)", c.name, c.n)
		}
	}
}

func TestSparseMutationSingleNode(t *testing.T) {
	// p = 1/N = 1 at a single node: every cell must mutate, as in the
	// dense scan.
	rng := rand.New(rand.NewSource(56))
	prob := Problem{Capacity: []int{50}, Jobs: 5, Fitness: simpleFitness}
	g := &GA{prob: prob, opts: Options{SparseMutation: true}, rng: rng}
	m := NewMatrix(5, 1)
	for j := range m {
		m[j][0] = -1
	}
	g.mutate(m)
	for j := range m {
		if m[j][0] == -1 {
			t.Errorf("job %d cell not mutated at nodes=1", j)
		}
	}
}

func TestSparseMutationGAFeasibleAndImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	prob := Problem{
		Capacity:              []int{4, 4, 4, 4},
		Jobs:                  6,
		Fitness:               simpleFitness,
		InterferenceAvoidance: true,
	}
	g := New(prob, Options{Population: 30, SparseMutation: true}, rng, nil)
	_, before := g.Best()
	best, after := g.Run(40)
	if after < before {
		t.Errorf("fitness decreased under sparse mutation: %v -> %v", before, after)
	}
	if !Feasible(best, prob.Capacity, true) {
		t.Errorf("best matrix infeasible: %v", best)
	}
}

func TestStatsCountFitnessWork(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	prob := Problem{Capacity: []int{4, 4, 4}, Jobs: 5, Fitness: simpleFitness}
	g := New(prob, Options{Population: 10}, rng, nil)
	s := g.Stats()
	if s.FitnessCalls != 10 {
		t.Errorf("initial FitnessCalls = %d, want 10", s.FitnessCalls)
	}
	if want := int64(10 * 5 * 3); s.CellsScored != want {
		t.Errorf("initial CellsScored = %d, want %d", s.CellsScored, want)
	}
	g.Step()
	s = g.Stats()
	if want := int64(10 + 20); s.FitnessCalls != want {
		t.Errorf("FitnessCalls after one generation = %d, want %d", s.FitnessCalls, want)
	}
	if want := int64(30 * 5 * 3); s.CellsScored != want {
		t.Errorf("CellsScored after one generation = %d, want %d", s.CellsScored, want)
	}
}
