package status

import (
	"sync"
	"time"

	"repro/internal/ga"
	"repro/internal/sched"
)

// TimedPolicy wraps a Pollux policy so every Schedule call's wall-clock
// duration — the daemon's per-round scheduling latency — can be fed to a
// Registry. Embedding the concrete *sched.Pollux keeps every optional
// capability visible: the wrapper still satisfies the checkpoint
// interface (Snapshot/Restore promote through), so a timed daemon
// checkpoints exactly like an untimed one. The wrapper lives here, not
// in the deterministic core: this is the one layer allowed to look at
// the wall clock.
type TimedPolicy struct {
	*sched.Pollux
	mu   sync.Mutex
	last float64
}

// Timed wraps a Pollux policy for latency measurement.
func Timed(p *sched.Pollux) *TimedPolicy {
	return &TimedPolicy{Pollux: p}
}

// Schedule delegates to the wrapped policy, recording the call's
// duration.
func (t *TimedPolicy) Schedule(v *sched.ClusterView) ga.Matrix {
	start := time.Now()
	m := t.Pollux.Schedule(v)
	elapsed := time.Since(start).Seconds()
	t.mu.Lock()
	t.last = elapsed
	t.mu.Unlock()
	return m
}

// LastLatencySeconds returns the duration of the most recent Schedule
// call.
func (t *TimedPolicy) LastLatencySeconds() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}
