package status

import (
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestStatusEndpointDoesNotPerturbRun: a fixed-seed simulation whose
// rounds feed a registry that is being scraped concurrently over HTTP
// must produce results bit-identical to the same run with no
// observability at all — the endpoint is read-only by construction, and
// this pins it.
func TestStatusEndpointDoesNotPerturbRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := workload.Generate(rng, workload.Options{Jobs: 12, Hours: 0.5})
	trace := workload.Trace{Duration: full.Duration}
	for _, j := range full.Jobs {
		if j.Model == "resnet18" || j.Model == "neumf" {
			trace.Jobs = append(trace.Jobs, j)
		}
	}
	if len(trace.Jobs) < 3 {
		t.Skip("trace too small after filtering")
	}
	mkPolicy := func() *sched.Pollux {
		return sched.NewPollux(sched.PolluxOptions{Population: 15, Generations: 8}, 7)
	}
	cfg := sim.Config{
		Nodes: 4, GPUsPerNode: 4, Tick: 2, UseTunedConfig: true,
		MaxTime: 12 * 3600, Seed: 7,
	}

	plain := sim.NewCluster(trace, mkPolicy(), cfg).Run()

	reg := New("pollux")
	p := mkPolicy()
	observed := cfg
	prev := time.Now()
	observed.OnRound = func(now float64) {
		stats := p.LastRoundStats()
		reg.ObserveRound(now, stats.Sub, time.Since(prev).Seconds(), stats, nil)
		prev = time.Now()
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/status", "/metrics"} {
				resp, err := srv.Client().Get(srv.URL + path)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()
	withStatus := sim.NewCluster(trace, p, observed).Run()
	close(stop)
	wg.Wait()

	if !reflect.DeepEqual(plain, withStatus) {
		t.Fatalf("serving the status endpoint changed the run:\n%+v\nvs\n%+v",
			plain.Summary, withStatus.Summary)
	}
	if reg.Snapshot().Rounds == 0 {
		t.Fatal("registry observed no rounds")
	}
}
