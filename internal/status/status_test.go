package status

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sched"
)

func observeSome(r *Registry) {
	r.ObserveRound(60, 3, 0.010, sched.RoundStats{Jobs: 4, Sub: 4, Full: true, FitnessCells: 1000}, nil)
	r.ObserveRound(120, 0, 0.002, sched.RoundStats{}, errors.New("boom"))
	r.ObserveRound(180, 5, 0.030, sched.RoundStats{Jobs: 5, Sub: 2, Racks: 1, FitnessCells: 400}, nil)
}

func TestRegistryAccumulates(t *testing.T) {
	r := New("pollux")
	observeSome(r)
	s := r.Snapshot()
	if s.Policy != "pollux" || s.Rounds != 3 {
		t.Fatalf("policy/rounds: %+v", s)
	}
	if s.LastRoundTime != 180 || s.LastScheduled != 5 || s.LastError != "" {
		t.Fatalf("last round fields: %+v", s)
	}
	//pollux:floateq-ok Max is copied verbatim from the observed value, so exact identity is the contract
	if s.RoundLatency.Count != 3 || s.RoundLatency.Max != 0.030 {
		t.Fatalf("latency: %+v", s.RoundLatency)
	}
	if s.RoundLatency.Avg <= 0.013 || s.RoundLatency.Avg >= 0.015 {
		t.Fatalf("latency avg out of range: %+v", s.RoundLatency)
	}
	if s.RoundStats.Sub != 2 || s.RoundStats.Racks != 1 {
		t.Fatalf("round stats: %+v", s.RoundStats)
	}
	if s.Cluster != nil {
		t.Fatalf("cluster present without a source: %+v", s.Cluster)
	}

	r.ObserveRound(240, 0, 0.001, sched.RoundStats{}, errors.New("transient"))
	if got := r.Snapshot().LastError; got != "transient" {
		t.Fatalf("last error = %q, want transient", got)
	}
}

func testSource() Cluster {
	return Cluster{
		Nodes: 4, GPUsTotal: 16, GPUsUsed: 10, Usage: []int{4, 4, 2, 0},
		Jobs: 6, Running: 3, Pending: 2, Done: 1,
		Admission: "quota", Priority: "slo",
		Tenants: []Tenant{
			{Name: "acme", Submitted: 4, Admitted: 3, Rejected: 1, AvgQueueDepth: 0.5},
			{Name: "beta", Submitted: 2, Admitted: 2},
		},
	}
}

func TestStatusEndpointJSON(t *testing.T) {
	r := New("pollux")
	observeSome(r)
	r.SetSource(testSource)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 3 || s.Cluster == nil || s.Cluster.GPUsUsed != 10 {
		t.Fatalf("served snapshot: %+v", s)
	}
	if len(s.Cluster.Tenants) != 2 || s.Cluster.Tenants[0].Name != "acme" {
		t.Fatalf("served tenants: %+v", s.Cluster.Tenants)
	}
}

func TestStatusEndpointMetrics(t *testing.T) {
	r := New("pollux")
	observeSome(r)
	r.SetSource(testSource)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`pollux_build_info{policy="pollux"} 1`,
		"pollux_rounds_total 3",
		"pollux_last_round_sim_seconds 180",
		"pollux_round_latency_seconds_count 3",
		"pollux_round_latency_seconds_max 0.03",
		"pollux_round_fitness_cells 400",
		"pollux_cluster_gpus_used 10",
		`pollux_jobs{state="pending"} 2`,
		`pollux_admission_info{admission="quota",priority="slo"} 1`,
		`pollux_tenant_rejected_total{tenant="acme"} 1`,
		`pollux_tenant_avg_queue_depth{tenant="acme"} 0.5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	// Exactly one HELP/TYPE header per metric name, however many series.
	if n := strings.Count(body, "# TYPE pollux_jobs "); n != 1 {
		t.Errorf("pollux_jobs declared %d times, want 1", n)
	}
}
