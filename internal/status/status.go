// Package status is the read-only observability surface of the scheduler
// daemons: a Registry that the scheduling loop feeds one ObserveRound
// call per round, served over HTTP as JSON (/status) and Prometheus-style
// text (/metrics).
//
// The registry is strictly an observer. Handlers read a lock-snapshot of
// the counters and the optional cluster source; they never touch the
// scheduling path, so enabling the endpoint cannot change a fixed-seed
// run's results (pinned by TestStatusEndpointDoesNotPerturbRun). The
// package is deliberately outside the deterministic core — it is the one
// place wall-clock latency measurements belong.
package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/sched"
)

// Tenant is one tenant's admission counters as served by the endpoint.
type Tenant struct {
	Name          string
	Submitted     int
	Admitted      int
	Rejected      int
	AvgQueueDepth float64
}

// Cluster is the cluster-occupancy half of a status snapshot, assembled
// on demand by the daemon's source callback (cluster.Service.Status
// adapts directly). Queue depths live here: Pending is the number of
// admitted jobs the last committed allocation left without GPUs.
type Cluster struct {
	Nodes     int
	GPUsTotal int
	GPUsUsed  int
	Usage     []int
	Jobs      int
	Running   int
	Pending   int
	Done      int
	Admission string
	Priority  string
	Tenants   []Tenant
}

// Latency aggregates per-round wall-clock scheduling latency in seconds.
type Latency struct {
	Count int64
	Sum   float64
	Max   float64
	Avg   float64
}

// Snapshot is the JSON document served at /status.
type Snapshot struct {
	Policy        string
	Rounds        int64
	LastRoundTime float64 // simulated seconds of the latest round
	LastScheduled int     // jobs placed by the latest round
	LastError     string  `json:",omitempty"`
	RoundLatency  Latency
	// RoundStats is the Pollux scheduler's per-round work breakdown
	// (zero-valued for policies that do not report one).
	RoundStats sched.RoundStats
	Cluster    *Cluster `json:",omitempty"`
}

// Registry accumulates round observations and serves them. All methods
// are safe for concurrent use; the HTTP handlers never block the loop
// feeding ObserveRound for longer than the snapshot copy.
type Registry struct {
	mu            sync.Mutex
	policy        string
	rounds        int64
	lastTime      float64
	lastScheduled int
	lastErr       string
	latCount      int64
	latSum        float64
	latMax        float64
	stats         sched.RoundStats
	source        func() Cluster
}

// New creates a registry for a daemon running the named policy.
func New(policy string) *Registry {
	return &Registry{policy: policy}
}

// SetSource installs the callback that assembles the cluster half of the
// snapshot at request time; nil (the default) omits it.
func (r *Registry) SetSource(source func() Cluster) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.source = source
}

// ObserveRound records one scheduling round: its simulated time, the
// number of jobs placed, its wall-clock latency in seconds, the policy's
// per-round stats, and its error if it failed.
func (r *Registry) ObserveRound(now float64, scheduled int, latencySeconds float64, stats sched.RoundStats, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds++
	r.lastTime = now
	r.lastScheduled = scheduled
	r.lastErr = ""
	if err != nil {
		r.lastErr = err.Error()
	}
	r.latCount++
	r.latSum += latencySeconds
	if latencySeconds > r.latMax {
		r.latMax = latencySeconds
	}
	r.stats = stats
}

// Snapshot copies the current state, evaluating the cluster source.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Policy:        r.policy,
		Rounds:        r.rounds,
		LastRoundTime: r.lastTime,
		LastScheduled: r.lastScheduled,
		LastError:     r.lastErr,
		RoundLatency: Latency{
			Count: r.latCount,
			Sum:   r.latSum,
			Max:   r.latMax,
		},
		RoundStats: r.stats,
	}
	source := r.source
	r.mu.Unlock()
	if s.RoundLatency.Count > 0 {
		s.RoundLatency.Avg = s.RoundLatency.Sum / float64(s.RoundLatency.Count)
	}
	// The source takes the daemon's own report lock; call it outside ours
	// so the two can never entangle.
	if source != nil {
		c := source()
		s.Cluster = &c
	}
	return s
}

// Handler returns a mux serving /status (JSON) and /metrics
// (Prometheus-style text).
func (r *Registry) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", r.serveJSON)
	mux.HandleFunc("/metrics", r.serveMetrics)
	return mux
}

func (r *Registry) serveJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot())
}

func (r *Registry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	s := r.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder

	// One HELP/TYPE header per metric name, then its series — the text
	// exposition format Prometheus scrapers expect.
	metric := func(name, typ, help string, series ...string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, line := range series {
			fmt.Fprintf(&b, "%s%s\n", name, line)
		}
	}
	metric("pollux_build_info", "gauge", "Scheduler policy in use.",
		fmt.Sprintf(`{policy=%q} 1`, s.Policy))
	metric("pollux_rounds_total", "counter", "Scheduling rounds executed.",
		fmt.Sprintf(" %d", s.Rounds))
	metric("pollux_last_round_sim_seconds", "gauge", "Simulated time of the latest round.",
		fmt.Sprintf(" %g", s.LastRoundTime))
	metric("pollux_last_round_scheduled_jobs", "gauge", "Jobs placed by the latest round.",
		fmt.Sprintf(" %d", s.LastScheduled))
	metric("pollux_round_latency_seconds_sum", "counter", "Total wall-clock scheduling latency.",
		fmt.Sprintf(" %g", s.RoundLatency.Sum))
	metric("pollux_round_latency_seconds_count", "counter", "Rounds measured for latency.",
		fmt.Sprintf(" %d", s.RoundLatency.Count))
	metric("pollux_round_latency_seconds_max", "gauge", "Largest single-round latency observed.",
		fmt.Sprintf(" %g", s.RoundLatency.Max))

	metric("pollux_round_jobs", "gauge", "Jobs in the latest round's view.",
		fmt.Sprintf(" %d", s.RoundStats.Jobs))
	metric("pollux_round_replaced_jobs", "gauge", "Jobs re-placed by the latest round.",
		fmt.Sprintf(" %d", s.RoundStats.Sub))
	metric("pollux_round_racks_refined", "gauge", "Racks refined by the latest hierarchical round.",
		fmt.Sprintf(" %d", s.RoundStats.Racks))
	metric("pollux_round_full", "gauge", "Whether the latest round fully re-optimized (1) or ran incrementally (0).",
		fmt.Sprintf(" %d", b2i(s.RoundStats.Full)))
	metric("pollux_round_skipped", "gauge", "Whether the latest round skipped GA work on an empty dirty set.",
		fmt.Sprintf(" %d", b2i(s.RoundStats.Skipped)))
	metric("pollux_round_fitness_calls", "gauge", "GA fitness calls in the latest round.",
		fmt.Sprintf(" %d", s.RoundStats.FitnessCalls))
	metric("pollux_round_fitness_cells", "gauge", "GA fitness cells scored in the latest round.",
		fmt.Sprintf(" %d", s.RoundStats.FitnessCells))

	if c := s.Cluster; c != nil {
		metric("pollux_cluster_nodes", "gauge", "Nodes in the managed cluster.",
			fmt.Sprintf(" %d", c.Nodes))
		metric("pollux_cluster_gpus_total", "gauge", "GPUs in the managed cluster.",
			fmt.Sprintf(" %d", c.GPUsTotal))
		metric("pollux_cluster_gpus_used", "gauge", "GPUs currently allocated.",
			fmt.Sprintf(" %d", c.GPUsUsed))
		metric("pollux_jobs", "gauge", "Registered jobs by state.",
			fmt.Sprintf(`{state="running"} %d`, c.Running),
			fmt.Sprintf(`{state="pending"} %d`, c.Pending),
			fmt.Sprintf(`{state="done"} %d`, c.Done))
		metric("pollux_admission_info", "gauge", "Admission and priority policies in use.",
			fmt.Sprintf(`{admission=%q,priority=%q} 1`, c.Admission, c.Priority))
		tenants := append([]Tenant(nil), c.Tenants...)
		sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
		var sub, adm, rej, depth []string
		for _, t := range tenants {
			l := fmt.Sprintf(`{tenant=%q}`, t.Name)
			sub = append(sub, fmt.Sprintf("%s %d", l, t.Submitted))
			adm = append(adm, fmt.Sprintf("%s %d", l, t.Admitted))
			rej = append(rej, fmt.Sprintf("%s %d", l, t.Rejected))
			depth = append(depth, fmt.Sprintf("%s %g", l, t.AvgQueueDepth))
		}
		if len(tenants) > 0 {
			metric("pollux_tenant_submitted_total", "counter", "Jobs presented to admission, by tenant.", sub...)
			metric("pollux_tenant_admitted_total", "counter", "Jobs admitted, by tenant.", adm...)
			metric("pollux_tenant_rejected_total", "counter", "Jobs rejected, by tenant.", rej...)
			metric("pollux_tenant_avg_queue_depth", "gauge", "Mean jobs queued without GPUs per round, by tenant.", depth...)
		}
	}
	w.Write([]byte(b.String()))
}

// b2i renders a bool as a 0/1 metric value.
func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
