// Package detrand wraps math/rand sources so deterministic components can
// be checkpointed and restored bit-identically.
//
// The stock math/rand generator (rand.NewSource) does not expose its
// internal state, so a long-lived scheduler holding a *rand.Rand cannot
// snapshot it to disk. detrand.Source delegates every draw to the stock
// generator unchanged — a *rand.Rand built over it produces exactly the
// same values as one built over rand.NewSource directly, so every
// fixed-seed baseline trace is preserved bit for bit — while counting the
// underlying state steps. A Source's State is therefore just (seed, draw
// count), and Restore replays the count against a fresh stock generator to
// reach the identical internal state.
//
// The replay works because every rngSource method consumes exactly one
// state step per call (Int63 is Uint64 with the sign bit masked), so the
// mix of Int63/Uint64 calls does not matter, only their total. Restore
// cost is O(draws) at a few nanoseconds per step: about a second per
// 100 M draws, paid once per restore, never per draw.
package detrand

import "math/rand"

// State is the serializable state of a Source: the seed it was created
// with and the number of generator steps consumed since.
type State struct {
	Seed  int64
	Draws uint64
}

// Source is a counting rand.Source64. Use it as
//
//	src := detrand.NewSource(seed)
//	rng := rand.New(src)
//
// and snapshot with src.State(). It is not safe for concurrent use, the
// same contract as the stock source.
type Source struct {
	src   rand.Source64
	state State
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{
		src:   rand.NewSource(seed).(rand.Source64),
		state: State{Seed: seed},
	}
}

// Restore rebuilds a source at the given state by replaying st.Draws
// generator steps from st.Seed. The returned source continues the
// original draw sequence exactly.
func Restore(st State) *Source {
	s := NewSource(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Uint64()
	}
	s.state = st
	return s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.state.Draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state.Draws++
	return s.src.Uint64()
}

// Seed implements rand.Source: it re-seeds the underlying generator and
// resets the draw count, exactly as a fresh NewSource would.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.state = State{Seed: seed}
}

// State returns the current snapshot state.
func (s *Source) State() State { return s.state }
