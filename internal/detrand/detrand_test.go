package detrand

import (
	"math/rand"
	"testing"
)

// TestDrawsMatchStockSource: a *rand.Rand over a counting Source must
// produce exactly the sequence of the stock generator — the property every
// fixed-seed baseline in the repo depends on.
func TestDrawsMatchStockSource(t *testing.T) {
	stock := rand.New(rand.NewSource(42))
	counted := rand.New(NewSource(42))
	for i := 0; i < 5000; i++ {
		switch i % 4 {
		case 0:
			if a, b := stock.Int63(), counted.Int63(); a != b {
				t.Fatalf("Int63 draw %d: stock %d vs counted %d", i, a, b)
			}
		case 1:
			//pollux:floateq-ok bit-identity gate: the counting source must reproduce the stock draws exactly
			if a, b := stock.Float64(), counted.Float64(); a != b {
				t.Fatalf("Float64 draw %d: stock %v vs counted %v", i, a, b)
			}
		case 2:
			if a, b := stock.Intn(97), counted.Intn(97); a != b {
				t.Fatalf("Intn draw %d: stock %d vs counted %d", i, a, b)
			}
		case 3:
			if a, b := stock.Uint64(), counted.Uint64(); a != b {
				t.Fatalf("Uint64 draw %d: stock %d vs counted %d", i, a, b)
			}
		}
	}
}

// TestRestoreContinuesSequence: Restore at any cut point must continue the
// original sequence exactly, regardless of the Int63/Uint64/rejection mix
// that preceded the cut.
func TestRestoreContinuesSequence(t *testing.T) {
	for _, cut := range []int{0, 1, 7, 500} {
		src := NewSource(7)
		rng := rand.New(src)
		for i := 0; i < cut; i++ {
			switch i % 3 {
			case 0:
				rng.Float64()
			case 1:
				rng.Intn(1000) // may consume several steps via rejection
			case 2:
				rng.NormFloat64() // may consume several steps
			}
		}
		restored := rand.New(Restore(src.State()))
		for i := 0; i < 200; i++ {
			if a, b := rng.Int63(), restored.Int63(); a != b {
				t.Fatalf("cut %d: draw %d after restore diverges: %d vs %d", cut, i, a, b)
			}
		}
	}
}

// TestSeedResets: Seed re-seeds and zeroes the draw count.
func TestSeedResets(t *testing.T) {
	src := NewSource(1)
	rng := rand.New(src)
	rng.Int63()
	rng.Int63()
	src.Seed(9)
	if st := src.State(); st.Seed != 9 || st.Draws != 0 {
		t.Fatalf("state after Seed = %+v, want {9 0}", st)
	}
	if a, b := rng.Int63(), rand.New(rand.NewSource(9)).Int63(); a != b {
		t.Fatalf("draw after Seed: %d vs fresh source %d", a, b)
	}
}
