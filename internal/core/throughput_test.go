package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refParams is a plausible θsys used across tests: ~50ms constant grad
// time, 0.4ms/example, small local sync, larger cross-node sync.
var refParams = Params{
	AlphaGrad:      0.05,
	BetaGrad:       0.0004,
	AlphaSyncLocal: 0.02,
	BetaSyncLocal:  0.002,
	AlphaSyncNode:  0.08,
	BetaSyncNode:   0.005,
	Gamma:          2.5,
}

func TestPlacementValid(t *testing.T) {
	cases := []struct {
		pl   Placement
		want bool
	}{
		{Placement{1, 1}, true},
		{Placement{4, 1}, true},
		{Placement{4, 4}, true},
		{Placement{4, 5}, false}, // more nodes than GPUs
		{Placement{0, 1}, false},
		{Placement{1, 0}, false},
		{Placement{-1, -1}, false},
	}
	for _, c := range cases {
		if got := c.pl.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.pl, got, c.want)
		}
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	v := refParams.Vector()
	if len(v) != 7 {
		t.Fatalf("vector length = %d, want 7", len(v))
	}
	back := ParamsFromVector(v)
	if back != refParams {
		t.Errorf("round trip mismatch: %+v != %+v", back, refParams)
	}
}

func TestParamsFromVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParamsFromVector(short) did not panic")
		}
	}()
	ParamsFromVector([]float64{1, 2, 3})
}

func TestTGradScalesWithLocalBatch(t *testing.T) {
	// Doubling GPUs at fixed m halves the per-GPU batch: Tgrad shrinks
	// toward AlphaGrad.
	t1 := refParams.TGrad(1024, 1)
	t2 := refParams.TGrad(1024, 2)
	t4 := refParams.TGrad(1024, 4)
	if !(t1 > t2 && t2 > t4 && t4 > refParams.AlphaGrad) {
		t.Errorf("TGrad not decreasing in K: %v %v %v", t1, t2, t4)
	}
	want := refParams.AlphaGrad + refParams.BetaGrad*1024/4
	if math.Abs(t4-want) > 1e-12 {
		t.Errorf("TGrad(1024, 4) = %v, want %v", t4, want)
	}
}

func TestTSyncCases(t *testing.T) {
	if ts := refParams.TSync(Placement{1, 1}); ts != 0 {
		t.Errorf("TSync single GPU = %v, want 0", ts)
	}
	// 2 GPUs on one node: exactly αl (K-2 = 0).
	if ts := refParams.TSync(Placement{2, 1}); math.Abs(ts-refParams.AlphaSyncLocal) > 1e-12 {
		t.Errorf("TSync(2,1) = %v, want αl = %v", ts, refParams.AlphaSyncLocal)
	}
	// 4 GPUs on one node: αl + 2βl.
	want := refParams.AlphaSyncLocal + 2*refParams.BetaSyncLocal
	if ts := refParams.TSync(Placement{4, 1}); math.Abs(ts-want) > 1e-12 {
		t.Errorf("TSync(4,1) = %v, want %v", ts, want)
	}
	// Cross-node placement uses node params and costs more here.
	local := refParams.TSync(Placement{4, 1})
	multi := refParams.TSync(Placement{4, 2})
	if multi <= local {
		t.Errorf("cross-node sync %v should exceed local %v for these params", multi, local)
	}
	wantMulti := refParams.AlphaSyncNode + 2*refParams.BetaSyncNode
	if math.Abs(multi-wantMulti) > 1e-12 {
		t.Errorf("TSync(4,2) = %v, want %v", multi, wantMulti)
	}
}

func TestTIterGammaLimits(t *testing.T) {
	pl := Placement{8, 2}
	m := 2048.0
	pSum := refParams
	pSum.Gamma = 1
	tg := pSum.TGrad(m, pl.GPUs)
	ts := pSum.TSync(pl)
	if got := pSum.TIter(pl, m); math.Abs(got-(tg+ts)) > 1e-9 {
		t.Errorf("γ=1: TIter = %v, want Tgrad+Tsync = %v", got, tg+ts)
	}
	pMax := refParams
	pMax.Gamma = 1000
	if got := pMax.TIter(pl, m); math.Abs(got-math.Max(tg, ts)) > 1e-6 {
		t.Errorf("γ→∞: TIter = %v, want max = %v", got, math.Max(tg, ts))
	}
}

func TestTIterBetweenMaxAndSum(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randParams(rng)
		pl := randPlacement(rng, 16, 4)
		m := float64(32 + rng.Intn(8192))
		tg := p.TGrad(m, pl.GPUs)
		ts := p.TSync(pl)
		ti := p.TIter(pl, m)
		lo := math.Max(tg, ts)
		hi := tg + ts
		return ti >= lo-1e-9 && ti <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTIterMonotoneInGamma(t *testing.T) {
	// Larger γ means more overlap, so TIter must not increase.
	pl := Placement{8, 2}
	m := 2048.0
	prev := math.Inf(1)
	for g := 1.0; g <= 10; g += 0.5 {
		p := refParams
		p.Gamma = g
		ti := p.TIter(pl, m)
		if ti > prev+1e-12 {
			t.Errorf("TIter increased with γ: γ=%v ti=%v prev=%v", g, ti, prev)
		}
		prev = ti
	}
}

func TestTIterGammaBelowOneClamped(t *testing.T) {
	p := refParams
	p.Gamma = 0.2
	q := refParams
	q.Gamma = 1
	pl := Placement{4, 2}
	if a, b := p.TIter(pl, 512), q.TIter(pl, 512); math.Abs(a-b) > 1e-12 {
		t.Errorf("γ<1 not clamped to 1: %v vs %v", a, b)
	}
}

func TestThroughputBatchLimitsScaling(t *testing.T) {
	// Paper Sec. 2.1/Fig. 1a: at a small batch size, adding GPUs stops
	// helping sooner than at a large batch size, because Tsync bounds
	// the iteration time.
	small, large := 512, 2048
	gain := func(m int) float64 {
		pl1 := Placement{4, 1}
		pl2 := Placement{16, 4}
		return refParams.Throughput(pl2, float64(m)) / refParams.Throughput(pl1, float64(m))
	}
	if gain(large) <= gain(small) {
		t.Errorf("larger batch should scale better: gain(2048)=%v <= gain(512)=%v",
			gain(large), gain(small))
	}
}

func TestThroughputZeroIterTime(t *testing.T) {
	var zero Params
	if tp := zero.Throughput(SingleGPU, 128); tp != 0 {
		t.Errorf("zero params throughput = %v, want 0 (guard)", tp)
	}
}

// Property: throughput is non-decreasing in batch size for a fixed
// placement (more work per fixed overhead).
func TestThroughputMonotoneInBatch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randParams(rng)
		pl := randPlacement(rng, 16, 4)
		m := 32 + rng.Intn(4096)
		return p.Throughput(pl, float64(m+64)) >= p.Throughput(pl, float64(m))-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: at fixed batch size and node count 1, throughput never
// decreases when co-located GPUs are added without retrogression terms.
func TestThroughputMonotoneInGPUsNoRetrogression(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randParams(rng)
		p.BetaSyncLocal = 0
		m := float64(256 + rng.Intn(4096))
		k := 2 + rng.Intn(3)
		a := p.Throughput(Placement{k, 1}, m)
		b := p.Throughput(Placement{k + 1, 1}, m)
		return b >= a-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randParams(rng *rand.Rand) Params {
	return Params{
		AlphaGrad:      0.001 + rng.Float64()*0.2,
		BetaGrad:       1e-5 + rng.Float64()*0.001,
		AlphaSyncLocal: rng.Float64() * 0.1,
		BetaSyncLocal:  rng.Float64() * 0.01,
		AlphaSyncNode:  rng.Float64() * 0.3,
		BetaSyncNode:   rng.Float64() * 0.02,
		Gamma:          1 + rng.Float64()*9,
	}
}

func randPlacement(rng *rand.Rand, maxGPUs, maxPerNode int) Placement {
	k := 1 + rng.Intn(maxGPUs)
	minNodes := (k + maxPerNode - 1) / maxPerNode
	n := minNodes
	if k > minNodes {
		n = minNodes + rng.Intn(k-minNodes+1)
	}
	if n > k {
		n = k
	}
	return Placement{GPUs: k, Nodes: n}
}
