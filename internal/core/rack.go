package core

import (
	"math"

	"repro/internal/opt"
)

// This file implements the rack-locality extension the paper sketches in
// Sec. 3.2: "our model for Tsync can be extended to account for rack-level
// locality by adding a third pair of parameters." RackParams adds that
// third (alpha, beta) pair, and RackPlacement adds the rack span, giving a
// three-tier synchronization cost: co-located on one node, within one
// rack, or across racks.

// RackPlacement extends Placement with the number of racks the allocation
// spans.
type RackPlacement struct {
	GPUs  int
	Nodes int
	Racks int
}

// Valid reports whether the placement is physically meaningful.
func (p RackPlacement) Valid() bool {
	return p.GPUs >= 1 && p.Nodes >= 1 && p.Nodes <= p.GPUs &&
		p.Racks >= 1 && p.Racks <= p.Nodes
}

// Flat drops rack information, mapping onto the paper's two-tier model.
func (p RackPlacement) Flat() Placement {
	return Placement{GPUs: p.GPUs, Nodes: p.Nodes}
}

// RackParams is θsys extended with cross-rack synchronization parameters.
type RackParams struct {
	Params
	AlphaSyncRack float64 // constant sync time when spanning racks (s)
	BetaSyncRack  float64 // per-extra-replica retrogression across racks (s)
}

// Vector flattens the 9 parameters in canonical order (the 7 base
// parameters followed by the rack pair).
func (p RackParams) Vector() []float64 {
	return append(p.Params.Vector(), p.AlphaSyncRack, p.BetaSyncRack)
}

// RackParamsFromVector is the inverse of RackParams.Vector.
func RackParamsFromVector(v []float64) RackParams {
	if len(v) != 9 {
		panic("core: rack θsys vector must have 9 elements")
	}
	return RackParams{
		Params:        ParamsFromVector(v[:7]),
		AlphaSyncRack: v[7],
		BetaSyncRack:  v[8],
	}
}

// TSync returns the three-tier synchronization time: zero for one GPU,
// the local pair on one node, the node pair within one rack, and the rack
// pair across racks (Eqn. 10 plus the paper's suggested third case).
func (p RackParams) TSync(pl RackPlacement) float64 {
	switch {
	case pl.GPUs <= 1:
		return 0
	case pl.Nodes == 1:
		return p.AlphaSyncLocal + p.BetaSyncLocal*float64(pl.GPUs-2)
	case pl.Racks <= 1:
		return p.AlphaSyncNode + p.BetaSyncNode*float64(pl.GPUs-2)
	default:
		return p.AlphaSyncRack + p.BetaSyncRack*float64(pl.GPUs-2)
	}
}

// TIter combines TGrad and the three-tier TSync with the γ overlap model
// (Eqn. 11).
func (p RackParams) TIter(pl RackPlacement, m float64) float64 {
	tg := p.TGrad(m, pl.GPUs)
	ts := p.TSync(pl)
	if ts == 0 {
		return tg
	}
	if tg == 0 {
		return ts
	}
	g := p.Gamma
	if g < 1 {
		g = 1
	}
	hi, lo := tg, ts
	if lo > hi {
		hi, lo = lo, hi
	}
	return hi * math.Pow(1+math.Pow(lo/hi, g), 1/g)
}

// Throughput returns examples/second under the rack-aware model.
func (p RackParams) Throughput(pl RackPlacement, m float64) float64 {
	ti := p.TIter(pl, m)
	if ti <= 0 {
		return 0
	}
	return m / ti
}

// DeriveRackParams builds a rack-aware θsys from a fitted two-tier θsys
// by scaling the node-tier synchronization pair: cross-rack all-reduce
// hops are factor× the intra-rack cost. Agents fit only the paper's
// 7-parameter model, so the hierarchical scheduler uses this derivation
// to price rack spans without changing the profiling protocol; factor 1
// makes racks free and reduces TSync to the two-tier model.
func DeriveRackParams(p Params, factor float64) RackParams {
	return RackParams{
		Params:        p,
		AlphaSyncRack: p.AlphaSyncNode * factor,
		BetaSyncRack:  p.BetaSyncNode * factor,
	}
}

// OptimalBatchRack is OptimalBatch under the three-tier rack model: the
// total batch maximizing THROUGHPUT(rp, pl, m) × EFFICIENCY_t(m) over the
// feasible range, by the same golden-section search. rp supplies the
// throughput model (its embedded Params supersede g.Params); g supplies
// φt, m0, and the memory caps. ok is false when the placement cannot fit
// even the initial batch size.
func (g Model) OptimalBatchRack(rp RackParams, pl RackPlacement) (m int, goodput float64, ok bool) {
	lo, hi, ok := g.batchRange(pl.Flat())
	if !ok {
		return 0, 0, false
	}
	m, goodput = opt.GoldenSectionMaxInt(func(b int) float64 {
		return rp.Throughput(pl, float64(b)) * Efficiency(g.Phi, g.M0, b)
	}, lo, hi)
	return m, goodput, true
}

// RackSample is one observed (placement, batch, iteration time) triple
// with rack information.
type RackSample struct {
	Placement RackPlacement
	Batch     int
	TIter     float64
}

// RackExploration extends Exploration with the rack span, freezing the
// rack parameters at zero until a multi-rack placement has been observed.
type RackExploration struct {
	Exploration
	MaxRacks int
}

// Observe widens the exploration extent.
func (e *RackExploration) Observe(pl RackPlacement) {
	e.Exploration.Observe(pl.Flat())
	if pl.Racks > e.MaxRacks {
		e.MaxRacks = pl.Racks
	}
}

func (e RackExploration) fitBounds() opt.Bounds {
	base := e.Exploration.fitBounds()
	lo := append(base.Lower, 0, 0)
	hi := append(base.Upper, 100, 10)
	if e.MaxRacks <= 1 {
		lo[7], hi[7] = 0, 0
		lo[8], hi[8] = 0, 0
	}
	if e.MaxGPUs <= 2 {
		lo[8], hi[8] = 0, 0
	}
	return opt.Bounds{Lower: lo, Upper: hi}
}

// RackRMSLE is the fitting loss for the rack-aware model.
func RackRMSLE(p RackParams, samples []RackSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		pred := p.TIter(s.Placement, float64(s.Batch))
		d := math.Log(math.Max(pred, 1e-12)) - math.Log(math.Max(s.TIter, 1e-12))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}

// FitRack estimates the 9-parameter rack-aware θsys by RMSLE minimization
// under the exploration priors, mirroring Fit.
func FitRack(samples []RackSample, prev RackParams, explored RackExploration) RackParams {
	bounds := explored.fitBounds()
	if len(samples) == 0 {
		flat := make([]Sample, 0)
		def := defaultParams(flat)
		v := append(def.Vector(), 0, 0)
		bounds.Clamp(v)
		return RackParamsFromVector(v)
	}

	loss := func(v []float64) float64 {
		return RackRMSLE(RackParamsFromVector(v), samples)
	}

	flat := make([]Sample, len(samples))
	for i, s := range samples {
		flat[i] = Sample{Placement: s.Placement.Flat(), Batch: s.Batch, TIter: s.TIter}
	}
	starts := make([][]float64, 0, 2)
	if prev != (RackParams{}) {
		pv := prev.Vector()
		bounds.Clamp(pv)
		starts = append(starts, pv)
	}
	dv := append(defaultParams(flat).Vector(), 0.01, 0.001)
	bounds.Clamp(dv)
	starts = append(starts, dv)

	res := opt.MultiStart(loss, starts, bounds, opt.LBFGSBOptions{MaxIter: 200})
	return RackParamsFromVector(res.X)
}
