package core

import (
	"math/rand"
	"testing"
)

func benchModel() Model {
	return Model{
		Params:         refParams,
		Phi:            5000,
		M0:             128,
		MaxBatchPerGPU: 1024,
	}
}

func BenchmarkGoodputEval(b *testing.B) {
	m := benchModel()
	pl := Placement{GPUs: 16, Nodes: 4}
	for i := 0; i < b.N; i++ {
		m.Goodput(pl, 2048)
	}
}

func BenchmarkOptimalBatch(b *testing.B) {
	m := benchModel()
	pl := Placement{GPUs: 16, Nodes: 4}
	for i := 0; i < b.N; i++ {
		m.OptimalBatch(pl)
	}
}

func BenchmarkSpeedup(b *testing.B) {
	m := benchModel()
	pl := Placement{GPUs: 16, Nodes: 4}
	for i := 0; i < b.N; i++ {
		m.Speedup(pl)
	}
}

func BenchmarkFitThroughputModel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := genSamples(rng, refParams, 0.05, 4, allPlacements)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(samples, Params{}, Exploration{MaxGPUs: 16, MaxNodes: 4})
	}
}
