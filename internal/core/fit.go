package core

import (
	"math"

	"repro/internal/opt"
)

// Sample is one observed (allocation, batch size, iteration time) triple
// recorded by the PolluxAgent during training (Sec. 4.1).
type Sample struct {
	Placement Placement
	Batch     int
	TIter     float64 // observed seconds per iteration
}

// Exploration records the extent of the allocation space a job has
// visited. Pollux biases θsys towards perfect scaling for unexplored
// configurations (prior-driven exploration, Sec. 4.1) by freezing the
// corresponding parameters at zero until data exists to fit them:
//
//   - the local sync constant is frozen at 0 until the job has used more
//     than one GPU (no synchronization ever observed);
//   - the node sync parameters are frozen at 0 until the job has used
//     more than one node;
//   - the retrogression slopes are frozen at 0 until the job has used
//     more than two GPUs (a slope is unidentifiable from K ≤ 2).
//
// This makes unexplored configurations look perfectly scalable, so
// PolluxSched is encouraged to try them as part of its normal goodput
// optimization.
type Exploration struct {
	MaxGPUs  int // most GPUs the job has ever been allocated
	MaxNodes int // most nodes the job has ever spanned
}

// Observe widens the exploration extent with a placement the job ran on.
func (e *Exploration) Observe(pl Placement) {
	if pl.GPUs > e.MaxGPUs {
		e.MaxGPUs = pl.GPUs
	}
	if pl.Nodes > e.MaxNodes {
		e.MaxNodes = pl.Nodes
	}
}

// GPUCap returns the exploration cap on allocations: at most twice the
// maximum number of GPUs the job has held in its lifetime (Sec. 4.1),
// preventing a brand-new job from being scaled out arbitrarily on the
// strength of its optimistic priors alone.
func (e Exploration) GPUCap() int {
	if e.MaxGPUs < 1 {
		return 2
	}
	return 2 * e.MaxGPUs
}

// fitBounds returns the box constraints for θsys fitting, applying the
// prior freezes for unexplored configurations.
func (e Exploration) fitBounds() opt.Bounds {
	// Vector order: αg, βg, αl, βl, αn, βn, γ.
	lo := []float64{1e-6, 1e-8, 0, 0, 0, 0, 1}
	hi := []float64{100, 10, 100, 10, 100, 10, 10}
	freeze := func(i int) { lo[i], hi[i] = 0, 0 }
	if e.MaxGPUs <= 1 {
		freeze(2) // αl: no sync ever observed
	}
	if e.MaxNodes <= 1 {
		freeze(4) // αn
		freeze(5) // βn
	}
	if e.MaxGPUs <= 2 {
		freeze(3) // βl: retrogression unidentifiable
		freeze(5) // βn
	}
	return opt.Bounds{Lower: lo, Upper: hi}
}

// RMSLE returns the root mean squared logarithmic error between the
// model's predicted iteration times and the observed samples — the fitting
// loss from Sec. 4.1.
func RMSLE(p Params, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		pred := p.TIter(s.Placement, float64(s.Batch))
		d := math.Log(math.Max(pred, 1e-12)) - math.Log(math.Max(s.TIter, 1e-12))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}

// RMSLEGrad returns the analytic gradient of RMSLE with respect to the
// θsys vector (Params.Vector order). Supplying it to the optimizer avoids
// the 14 objective evaluations a central-difference numerical gradient
// costs per iteration; fitting is the simulator's dominant expense, so
// this matters. At the (measure-zero) kinks of TIter the subgradient 0 is
// used for the sync parameters, matching the frozen-bounds behaviour.
func RMSLEGrad(p Params, samples []Sample) []float64 {
	grad := make([]float64, 7)
	if len(samples) == 0 {
		return grad
	}
	g := p.Gamma
	if g < 1 {
		g = 1
	}
	sumSq := 0.0
	for _, s := range samples {
		k := s.Placement.GPUs
		m := float64(s.Batch)
		tg := p.TGrad(m, k)
		ts := p.TSync(s.Placement)
		pred := p.TIter(s.Placement, m)
		d := math.Log(math.Max(pred, 1e-12)) - math.Log(math.Max(s.TIter, 1e-12))
		sumSq += d * d
		if pred <= 1e-12 {
			continue
		}

		// Partials of ln(pred) wrt tg, ts, and γ, via the factored form
		// pred = hi·A^(1/γ) with r = lo/hi, A = 1 + r^γ. On the ts = 0
		// face the γ-mean is genuinely flat in ts for γ > 1 (the partial
		// vanishes), but at γ = 1 the sum's slope is 1 — losing it would
		// pin sync parameters at zero forever.
		var dTg, dTs, dG float64
		switch {
		case ts == 0:
			dTg = 1 / tg
			if g == 1 {
				dTs = 1 / tg
			}
		case tg == 0:
			dTs = 1 / ts
			if g == 1 {
				dTg = 1 / ts
			}
		default:
			hi, lo := tg, ts
			if lo > hi {
				hi, lo = lo, hi
			}
			r := lo / hi
			rg := math.Pow(r, g)
			a := 1 + rg
			// ∂pred/∂tg = (tg/pred)^(γ-1), likewise for ts.
			scale := math.Pow(a, -(g-1)/g) / pred
			dHi := scale
			dLo := math.Pow(r, g-1) * scale
			if tg >= ts {
				dTg, dTs = dHi, dLo
			} else {
				dTg, dTs = dLo, dHi
			}
			lnHi, lnLo := math.Log(hi), math.Log(lo)
			dG = -(g*lnHi+math.Log1p(rg))/(g*g) + (lnHi+rg*lnLo)/(g*a)
		}

		grad[0] += d * dTg
		grad[1] += d * dTg * m / float64(k)
		if k > 1 {
			extra := float64(k - 2)
			if s.Placement.Nodes == 1 {
				grad[2] += d * dTs
				grad[3] += d * dTs * extra
			} else {
				grad[4] += d * dTs
				grad[5] += d * dTs * extra
			}
		}
		if p.Gamma >= 1 {
			grad[6] += d * dG
		}
	}
	n := float64(len(samples))
	rmsle := math.Sqrt(sumSq / n)
	if rmsle == 0 {
		return make([]float64, 7)
	}
	inv := 1 / (rmsle * n)
	for i := range grad {
		grad[i] *= inv
	}
	return grad
}

// Fit estimates θsys from observed samples by minimizing RMSLE with
// box-constrained L-BFGS (the paper uses L-BFGS-B), honoring the
// exploration priors. prev, if non-zero, seeds one of the multi-start
// points so fits are stable across refits. With no samples, Fit returns an
// optimistic default consistent with the priors.
func Fit(samples []Sample, prev Params, explored Exploration) Params {
	bounds := explored.fitBounds()
	if len(samples) == 0 {
		def := defaultParams(samples)
		v := def.Vector()
		bounds.Clamp(v)
		return ParamsFromVector(v)
	}
	loss, lossGrad := rmsleLoss(samples)

	// Fits run every agent interval for every job in the cluster, so the
	// start list is kept short: a warm start from the previous fit plus a
	// data-derived default, with a sync-heavy start only for cold fits.
	starts := make([][]float64, 0, 3)
	if prev != (Params{}) {
		pv := prev.Vector()
		if explored.MaxGPUs > 1 && prev.AlphaSyncLocal == 0 && prev.AlphaSyncNode == 0 &&
			RMSLE(prev, samples) > 0.08 {
			// The RMSLE surface is flat in the sync directions on the
			// sync = 0 face (for γ > 1), so a warm start sitting on it
			// could never learn real sync costs by gradient steps. If
			// the incumbent also fails to explain the data (its error
			// is well above the ~0.03 measurement-noise floor), the
			// missing sync term is the usual culprit: nudge the start
			// off the face and let the bounds pull it back if zero
			// really is optimal. A zero-sync fit that fits the data
			// well is left alone — re-walking from the nudge every
			// refit would be pure overhead.
			pv[2], pv[4] = 0.05, 0.1
		}
		bounds.Clamp(pv)
		starts = append(starts, pv)
	}
	dv := defaultParams(samples).Vector()
	bounds.Clamp(dv)
	starts = append(starts, dv)
	if prev == (Params{}) {
		// A sync-heavy start helps when the data is dominated by
		// multi-node placements.
		hv := defaultParams(samples)
		hv.AlphaSyncLocal, hv.AlphaSyncNode = 0.05, 0.1
		hv.Gamma = 3
		h := hv.Vector()
		bounds.Clamp(h)
		starts = append(starts, h)
	}

	res := opt.MultiStartGrad(loss, lossGrad, starts, bounds, opt.LBFGSBOptions{MaxIter: 150})
	return ParamsFromVector(res.X)
}

// FitWarm refines an existing fit against an unchanged configuration set:
// a single L-BFGS descent warm-started from prev, with no multi-start
// sweep. It is the cheap path the agent uses when repeated observations of
// already-profiled configurations have tightened their averages — the
// incumbent is near the optimum of the barely-moved loss surface, so one
// short descent absorbs the change at a fraction of Fit's cost. A zero
// prev (or no data) falls back to the full Fit. Note the zero-sync-face
// nudge of Fit is deliberately absent here: a warm start that already
// explains its own data does not need it, and an incumbent stuck on the
// flat face is re-examined at the next full fit when a new configuration
// arrives.
func FitWarm(samples []Sample, prev Params, explored Exploration) Params {
	if prev == (Params{}) || len(samples) == 0 {
		return Fit(samples, prev, explored)
	}
	bounds := explored.fitBounds()
	loss, lossGrad := rmsleLoss(samples)
	pv := prev.Vector()
	bounds.Clamp(pv)
	res := opt.MultiStartGrad(loss, lossGrad, [][]float64{pv}, bounds, opt.LBFGSBOptions{MaxIter: 60})
	return ParamsFromVector(res.X)
}

// rmsleLoss builds the RMSLE objective and its analytic gradient over a
// fixed sample set. The observation logs are constant across the thousands
// of loss evaluations of one fit; precomputing them halves the log calls
// in the hot loop while producing bitwise-identical values to RMSLE.
func rmsleLoss(samples []Sample) (loss func([]float64) float64, grad func([]float64) []float64) {
	logObs := make([]float64, len(samples))
	for i, s := range samples {
		logObs[i] = math.Log(math.Max(s.TIter, 1e-12))
	}
	n := float64(len(samples))
	loss = func(v []float64) float64 {
		p := ParamsFromVector(v)
		sum := 0.0
		for i, s := range samples {
			pred := p.TIter(s.Placement, float64(s.Batch))
			d := math.Log(math.Max(pred, 1e-12)) - logObs[i]
			sum += d * d
		}
		return math.Sqrt(sum / n)
	}
	grad = func(v []float64) []float64 {
		return RMSLEGrad(ParamsFromVector(v), samples)
	}
	return loss, grad
}

// defaultParams derives a heuristic starting point from the samples: the
// smallest single-GPU iteration time is split evenly between the constant
// and the per-example term.
func defaultParams(samples []Sample) Params {
	base := 0.1 // arbitrary but harmless default scale (seconds)
	batch := 128.0
	found := false
	for _, s := range samples {
		if s.Placement.GPUs == 1 && (!found || s.TIter < base) {
			base = s.TIter
			batch = float64(s.Batch)
			found = true
		}
	}
	return Params{
		AlphaGrad: base / 2,
		BetaGrad:  base / 2 / batch,
		Gamma:     1.5,
	}
}
