package core

import (
	"math"

	"repro/internal/opt"
)

// Sample is one observed (allocation, batch size, iteration time) triple
// recorded by the PolluxAgent during training (Sec. 4.1).
type Sample struct {
	Placement Placement
	Batch     int
	TIter     float64 // observed seconds per iteration
}

// Exploration records the extent of the allocation space a job has
// visited. Pollux biases θsys towards perfect scaling for unexplored
// configurations (prior-driven exploration, Sec. 4.1) by freezing the
// corresponding parameters at zero until data exists to fit them:
//
//   - the local sync constant is frozen at 0 until the job has used more
//     than one GPU (no synchronization ever observed);
//   - the node sync parameters are frozen at 0 until the job has used
//     more than one node;
//   - the retrogression slopes are frozen at 0 until the job has used
//     more than two GPUs (a slope is unidentifiable from K ≤ 2).
//
// This makes unexplored configurations look perfectly scalable, so
// PolluxSched is encouraged to try them as part of its normal goodput
// optimization.
type Exploration struct {
	MaxGPUs  int // most GPUs the job has ever been allocated
	MaxNodes int // most nodes the job has ever spanned
}

// Observe widens the exploration extent with a placement the job ran on.
func (e *Exploration) Observe(pl Placement) {
	if pl.GPUs > e.MaxGPUs {
		e.MaxGPUs = pl.GPUs
	}
	if pl.Nodes > e.MaxNodes {
		e.MaxNodes = pl.Nodes
	}
}

// GPUCap returns the exploration cap on allocations: at most twice the
// maximum number of GPUs the job has held in its lifetime (Sec. 4.1),
// preventing a brand-new job from being scaled out arbitrarily on the
// strength of its optimistic priors alone.
func (e Exploration) GPUCap() int {
	if e.MaxGPUs < 1 {
		return 2
	}
	return 2 * e.MaxGPUs
}

// fitBounds returns the box constraints for θsys fitting, applying the
// prior freezes for unexplored configurations.
func (e Exploration) fitBounds() opt.Bounds {
	// Vector order: αg, βg, αl, βl, αn, βn, γ.
	lo := []float64{1e-6, 1e-8, 0, 0, 0, 0, 1}
	hi := []float64{100, 10, 100, 10, 100, 10, 10}
	freeze := func(i int) { lo[i], hi[i] = 0, 0 }
	if e.MaxGPUs <= 1 {
		freeze(2) // αl: no sync ever observed
	}
	if e.MaxNodes <= 1 {
		freeze(4) // αn
		freeze(5) // βn
	}
	if e.MaxGPUs <= 2 {
		freeze(3) // βl: retrogression unidentifiable
		freeze(5) // βn
	}
	return opt.Bounds{Lower: lo, Upper: hi}
}

// RMSLE returns the root mean squared logarithmic error between the
// model's predicted iteration times and the observed samples — the fitting
// loss from Sec. 4.1.
func RMSLE(p Params, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		pred := p.TIter(s.Placement, float64(s.Batch))
		d := math.Log(math.Max(pred, 1e-12)) - math.Log(math.Max(s.TIter, 1e-12))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}

// Fit estimates θsys from observed samples by minimizing RMSLE with
// box-constrained L-BFGS (the paper uses L-BFGS-B), honoring the
// exploration priors. prev, if non-zero, seeds one of the multi-start
// points so fits are stable across refits. With no samples, Fit returns an
// optimistic default consistent with the priors.
func Fit(samples []Sample, prev Params, explored Exploration) Params {
	bounds := explored.fitBounds()
	if len(samples) == 0 {
		def := defaultParams(samples)
		v := def.Vector()
		bounds.Clamp(v)
		return ParamsFromVector(v)
	}

	loss := func(v []float64) float64 {
		return RMSLE(ParamsFromVector(v), samples)
	}

	// Fits run every agent interval for every job in the cluster, so the
	// start list is kept short: a warm start from the previous fit plus a
	// data-derived default, with a sync-heavy start only for cold fits.
	starts := make([][]float64, 0, 3)
	if prev != (Params{}) {
		pv := prev.Vector()
		bounds.Clamp(pv)
		starts = append(starts, pv)
	}
	dv := defaultParams(samples).Vector()
	bounds.Clamp(dv)
	starts = append(starts, dv)
	if prev == (Params{}) {
		// A sync-heavy start helps when the data is dominated by
		// multi-node placements.
		hv := defaultParams(samples)
		hv.AlphaSyncLocal, hv.AlphaSyncNode = 0.05, 0.1
		hv.Gamma = 3
		h := hv.Vector()
		bounds.Clamp(h)
		starts = append(starts, h)
	}

	res := opt.MultiStart(loss, starts, bounds, opt.LBFGSBOptions{MaxIter: 150})
	return ParamsFromVector(res.X)
}

// defaultParams derives a heuristic starting point from the samples: the
// smallest single-GPU iteration time is split evenly between the constant
// and the per-example term.
func defaultParams(samples []Sample) Params {
	base := 0.1 // arbitrary but harmless default scale (seconds)
	batch := 128.0
	found := false
	for _, s := range samples {
		if s.Placement.GPUs == 1 && (!found || s.TIter < base) {
			base = s.TIter
			batch = float64(s.Batch)
			found = true
		}
	}
	return Params{
		AlphaGrad: base / 2,
		BetaGrad:  base / 2 / batch,
		Gamma:     1.5,
	}
}
