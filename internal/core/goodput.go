package core

import (
	"fmt"
	"math"

	"repro/internal/adascale"
	"repro/internal/opt"
)

// Efficiency returns EFFICIENCY_t(m) = (phi + m0)/(phi + m) (Eqn. 7): the
// training progress per example at batch size m relative to the initial
// batch size m0. For m >= m0 the result is in (0, 1]; training at m must
// process 1/E times as many examples as at m0 for equal progress.
func Efficiency(phi float64, m0, m int) float64 {
	if m0 <= 0 || m <= 0 {
		panic(fmt.Sprintf("core: non-positive batch size m0=%d m=%d", m0, m))
	}
	if math.IsInf(phi, 1) {
		return 1
	}
	if phi < 0 {
		phi = 0
	}
	return (phi + float64(m0)) / (phi + float64(m))
}

// Model is a fully specified GOODPUT function for one job at its current
// training progress: the fitted θsys, the current gradient noise scale,
// and the job's batch-size limits. It is the (θsys, φt, m0) triple of
// Sec. 4.1 plus the memory constraints needed to bound the batch size.
type Model struct {
	Params Params  // fitted θsys
	Phi    float64 // current gradient noise scale φt
	M0     int     // user-provided initial batch size

	// MaxBatchPerGPU is the largest per-GPU batch that fits in GPU
	// memory; the total batch at placement K is capped at K·MaxBatchPerGPU.
	MaxBatchPerGPU int
	// MaxBatchGlobal optionally caps the total batch size regardless of
	// GPU count (0 means no global cap). The paper's workloads sweep
	// batch sizes up to a per-model limit.
	MaxBatchGlobal int
}

// batchRange returns the feasible total batch range [lo, hi] for the
// placement, or ok=false when even m0 does not fit.
func (g Model) batchRange(pl Placement) (lo, hi int, ok bool) {
	if !pl.Valid() || g.M0 <= 0 || g.MaxBatchPerGPU <= 0 {
		return 0, 0, false
	}
	hi = pl.GPUs * g.MaxBatchPerGPU
	if g.MaxBatchGlobal > 0 && hi > g.MaxBatchGlobal {
		hi = g.MaxBatchGlobal
	}
	if hi < g.M0 {
		return 0, 0, false
	}
	return g.M0, hi, true
}

// Goodput returns GOODPUT_t(a, m) = THROUGHPUT(a, m) × EFFICIENCY_t(m)
// (Eqn. 6) for the placement and total batch size. It returns 0 for
// infeasible combinations (m below m0 or above the memory limit).
func (g Model) Goodput(pl Placement, m int) float64 {
	lo, hi, ok := g.batchRange(pl)
	if !ok || m < lo || m > hi {
		return 0
	}
	return g.Params.Throughput(pl, float64(m)) * Efficiency(g.Phi, g.M0, m)
}

// Throughput exposes the modeled throughput for the placement and batch.
func (g Model) Throughput(pl Placement, m int) float64 {
	return g.Params.Throughput(pl, float64(m))
}

// Efficiency exposes the modeled statistical efficiency at batch size m.
func (g Model) Efficiency(m int) float64 {
	return Efficiency(g.Phi, g.M0, m)
}

// OptimalBatch returns the batch size m* maximizing goodput for the
// placement (Eqn. 13) and the goodput achieved, using golden-section
// search over the feasible range — GOODPUT(a, m) is unimodal in m. ok is
// false when the placement cannot fit even the initial batch size.
func (g Model) OptimalBatch(pl Placement) (m int, goodput float64, ok bool) {
	lo, hi, ok := g.batchRange(pl)
	if !ok {
		return 0, 0, false
	}
	m, goodput = opt.GoldenSectionMaxInt(func(b int) float64 {
		return g.Params.Throughput(pl, float64(b)) * Efficiency(g.Phi, g.M0, b)
	}, lo, hi)
	return m, goodput, true
}

// Speedup returns SPEEDUP(a) = max_m GOODPUT(a, m) / max_m GOODPUT(1, m)
// (Eqn. 15): the goodput improvement of the placement over a single GPU,
// each at its own optimal batch size. An infeasible placement yields 0.
// Allocating a single GPU always yields exactly 1.
func (g Model) Speedup(pl Placement) float64 {
	_, num, ok := g.OptimalBatch(pl)
	if !ok {
		return 0
	}
	_, den, ok := g.OptimalBatch(SingleGPU)
	if !ok || den <= 0 {
		return 0
	}
	return num / den
}

// OptimalLR returns the AdaScale learning rate for training at batch size
// m given the base rate eta0 the job was submitted with.
func (g Model) OptimalLR(eta0 float64, m int) float64 {
	return adascale.LearningRate(eta0, adascale.Gain(g.Phi, g.M0, m))
}
