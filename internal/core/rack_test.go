package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var refRack = RackParams{
	Params:        refParams,
	AlphaSyncRack: 0.20,
	BetaSyncRack:  0.010,
}

func TestRackPlacementValid(t *testing.T) {
	cases := []struct {
		pl   RackPlacement
		want bool
	}{
		{RackPlacement{GPUs: 1, Nodes: 1, Racks: 1}, true},
		{RackPlacement{GPUs: 8, Nodes: 2, Racks: 2}, true},
		{RackPlacement{GPUs: 8, Nodes: 2, Racks: 3}, false}, // more racks than nodes
		{RackPlacement{GPUs: 8, Nodes: 2, Racks: 0}, false},
		{RackPlacement{GPUs: 1, Nodes: 2, Racks: 1}, false},
	}
	for _, c := range cases {
		if got := c.pl.Valid(); got != c.want {
			t.Errorf("%+v.Valid() = %v, want %v", c.pl, got, c.want)
		}
	}
}

func TestRackVectorRoundTrip(t *testing.T) {
	v := refRack.Vector()
	if len(v) != 9 {
		t.Fatalf("vector len = %d, want 9", len(v))
	}
	if RackParamsFromVector(v) != refRack {
		t.Error("round trip mismatch")
	}
}

func TestRackTSyncTiers(t *testing.T) {
	// Single GPU: no sync.
	if ts := refRack.TSync(RackPlacement{GPUs: 1, Nodes: 1, Racks: 1}); ts != 0 {
		t.Errorf("single GPU sync = %v", ts)
	}
	// One node: local params, identical to the flat model.
	pl := RackPlacement{GPUs: 4, Nodes: 1, Racks: 1}
	//pollux:floateq-ok degenerate topology must reduce to the flat model bit-for-bit, not approximately
	if got, want := refRack.TSync(pl), refParams.TSync(pl.Flat()); got != want {
		t.Errorf("one-node sync = %v, want %v", got, want)
	}
	// Multi-node one rack: node params, identical to the flat model.
	pl = RackPlacement{GPUs: 8, Nodes: 2, Racks: 1}
	//pollux:floateq-ok degenerate topology must reduce to the flat model bit-for-bit, not approximately
	if got, want := refRack.TSync(pl), refParams.TSync(pl.Flat()); got != want {
		t.Errorf("one-rack sync = %v, want %v", got, want)
	}
	// Cross-rack: the rack pair, more expensive than within-rack here.
	cross := refRack.TSync(RackPlacement{GPUs: 8, Nodes: 2, Racks: 2})
	within := refRack.TSync(RackPlacement{GPUs: 8, Nodes: 2, Racks: 1})
	if cross <= within {
		t.Errorf("cross-rack sync %v not above within-rack %v", cross, within)
	}
	want := refRack.AlphaSyncRack + 6*refRack.BetaSyncRack
	if math.Abs(cross-want) > 1e-12 {
		t.Errorf("cross-rack sync = %v, want %v", cross, want)
	}
}

func TestRackThroughputDropsAcrossRacks(t *testing.T) {
	m := 2048.0
	within := refRack.Throughput(RackPlacement{GPUs: 16, Nodes: 4, Racks: 1}, m)
	across := refRack.Throughput(RackPlacement{GPUs: 16, Nodes: 4, Racks: 4}, m)
	if across >= within {
		t.Errorf("cross-rack throughput %v not below within-rack %v", across, within)
	}
}

func TestRackTIterBetweenMaxAndSum(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RackParams{
			Params:        randParams(rng),
			AlphaSyncRack: rng.Float64() * 0.5,
			BetaSyncRack:  rng.Float64() * 0.05,
		}
		nodes := 2 + rng.Intn(6)
		pl := RackPlacement{
			GPUs:  nodes * (1 + rng.Intn(4)),
			Nodes: nodes,
			Racks: 1 + rng.Intn(nodes),
		}
		m := float64(64 + rng.Intn(4096))
		tg := p.TGrad(m, pl.GPUs)
		ts := p.TSync(pl)
		ti := p.TIter(pl, m)
		return ti >= math.Max(tg, ts)-1e-9 && ti <= tg+ts+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func genRackSamples(rng *rand.Rand, truth RackParams, noise float64) []RackSample {
	var out []RackSample
	pls := []RackPlacement{
		{GPUs: 1, Nodes: 1, Racks: 1},
		{GPUs: 2, Nodes: 1, Racks: 1},
		{GPUs: 4, Nodes: 1, Racks: 1},
		{GPUs: 8, Nodes: 2, Racks: 1},
		{GPUs: 16, Nodes: 4, Racks: 1},
		{GPUs: 16, Nodes: 4, Racks: 2},
		{GPUs: 32, Nodes: 8, Racks: 2},
		{GPUs: 32, Nodes: 8, Racks: 4},
	}
	for _, pl := range pls {
		for _, m := range []int{128, 256, 512, 1024, 2048} {
			ti := truth.TIter(pl, float64(m))
			if noise > 0 {
				ti *= 1 + noise*(rng.Float64()*2-1)
			}
			out = append(out, RackSample{Placement: pl, Batch: m, TIter: ti})
		}
	}
	return out
}

func TestFitRackRecoversCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	samples := genRackSamples(rng, refRack, 0)
	explored := RackExploration{
		Exploration: Exploration{MaxGPUs: 32, MaxNodes: 8},
		MaxRacks:    4,
	}
	got := FitRack(samples, RackParams{}, explored)
	if r := RackRMSLE(got, samples); r > 0.03 {
		t.Errorf("RMSLE = %v, want < 0.03", r)
	}
	// Held-out cross-rack prediction.
	pl := RackPlacement{GPUs: 24, Nodes: 6, Racks: 3}
	want := refRack.TIter(pl, 1536)
	pred := got.TIter(pl, 1536)
	if math.Abs(pred-want)/want > 0.2 {
		t.Errorf("held-out TIter: pred %v vs truth %v", pred, want)
	}
}

func TestFitRackFreezesRackParamsUntilExplored(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	truth := refRack
	// Only single-rack samples observed.
	var samples []RackSample
	for _, s := range genRackSamples(rng, truth, 0) {
		if s.Placement.Racks == 1 {
			samples = append(samples, s)
		}
	}
	explored := RackExploration{
		Exploration: Exploration{MaxGPUs: 16, MaxNodes: 4},
		MaxRacks:    1,
	}
	got := FitRack(samples, RackParams{}, explored)
	if got.AlphaSyncRack != 0 || got.BetaSyncRack != 0 {
		t.Errorf("rack params not frozen: %+v", got)
	}
}

func TestFitRackEmptySamples(t *testing.T) {
	got := FitRack(nil, RackParams{}, RackExploration{})
	if got.AlphaSyncRack != 0 || got.AlphaSyncNode != 0 {
		t.Errorf("empty fit should honor priors: %+v", got)
	}
}

func TestRackExplorationObserve(t *testing.T) {
	var e RackExploration
	e.Observe(RackPlacement{GPUs: 8, Nodes: 4, Racks: 2})
	if e.MaxGPUs != 8 || e.MaxNodes != 4 || e.MaxRacks != 2 {
		t.Errorf("explored = %+v", e)
	}
}

func TestRackParamsFromVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on short vector")
		}
	}()
	RackParamsFromVector(make([]float64, 7))
}

func TestDeriveRackParams(t *testing.T) {
	rp := DeriveRackParams(refParams, 3)
	if rp.Params != refParams {
		t.Error("base θsys not preserved")
	}
	if math.Abs(rp.AlphaSyncRack-3*refParams.AlphaSyncNode) > 1e-15 ||
		math.Abs(rp.BetaSyncRack-3*refParams.BetaSyncNode) > 1e-15 {
		t.Errorf("rack pair = (%v, %v), want 3× the node pair", rp.AlphaSyncRack, rp.BetaSyncRack)
	}
	// factor 1 prices rack hops like node hops: TSync reduces to the
	// two-tier model for any span.
	free := DeriveRackParams(refParams, 1)
	pl := RackPlacement{GPUs: 16, Nodes: 4, Racks: 3}
	//pollux:floateq-ok factor-1 derivation must reduce to the flat model bit-for-bit
	if got, want := free.TSync(pl), refParams.TSync(pl.Flat()); got != want {
		t.Errorf("factor-1 cross-rack sync = %v, want flat %v", got, want)
	}
}

func TestOptimalBatchRack(t *testing.T) {
	g := Model{Params: refParams, Phi: 100, M0: 512, MaxBatchPerGPU: 256}
	rp := DeriveRackParams(refParams, 4)

	// One rack: identical to the flat search (TSync tiers coincide).
	flatM, flatG, ok1 := g.OptimalBatch(Placement{GPUs: 16, Nodes: 4})
	rackM, rackG, ok2 := g.OptimalBatchRack(rp, RackPlacement{GPUs: 16, Nodes: 4, Racks: 1})
	if !ok1 || !ok2 {
		t.Fatal("feasible placement reported infeasible")
	}
	//pollux:floateq-ok single-rack search must reduce to the flat search bit-for-bit
	if rackM != flatM || rackG != flatG {
		t.Errorf("one-rack optimum (%d, %v), want flat (%d, %v)", rackM, rackG, flatM, flatG)
	}

	// Spanning racks costs goodput at the optimum.
	_, crossG, ok := g.OptimalBatchRack(rp, RackPlacement{GPUs: 16, Nodes: 4, Racks: 4})
	if !ok {
		t.Fatal("cross-rack placement reported infeasible")
	}
	if crossG >= rackG {
		t.Errorf("cross-rack goodput %v not below within-rack %v", crossG, rackG)
	}

	// Infeasible: even m0 does not fit.
	if _, _, ok := g.OptimalBatchRack(rp, RackPlacement{GPUs: 1, Nodes: 1, Racks: 1}); ok {
		t.Error("m0=512 on one 256-batch GPU reported feasible")
	}
}
