package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func refModel(phi float64) Model {
	return Model{
		Params:         refParams,
		Phi:            phi,
		M0:             128,
		MaxBatchPerGPU: 256,
	}
}

func TestEfficiencyAtM0IsOne(t *testing.T) {
	for _, phi := range []float64{0, 10, 1e4} {
		if e := Efficiency(phi, 128, 128); math.Abs(e-1) > 1e-12 {
			t.Errorf("Efficiency(phi=%v, m=m0) = %v, want 1", phi, e)
		}
	}
}

func TestEfficiencyKnownValues(t *testing.T) {
	// phi = 128, m0 = 128, m = 256: (128+128)/(128+256) = 2/3.
	if e := Efficiency(128, 128, 256); math.Abs(e-2.0/3.0) > 1e-12 {
		t.Errorf("Efficiency = %v, want 2/3", e)
	}
	// Infinite noise: always 1.
	if e := Efficiency(math.Inf(1), 128, 4096); e != 1 {
		t.Errorf("Efficiency(inf) = %v, want 1", e)
	}
	// Negative phi clamps to 0: pure signal, efficiency m0/m.
	if e := Efficiency(-3, 128, 256); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("Efficiency(phi<0) = %v, want 0.5", e)
	}
}

func TestEfficiencyPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Efficiency(m0=0) did not panic")
		}
	}()
	Efficiency(1, 0, 128)
}

// Property: for m >= m0, efficiency ∈ (0, 1], decreasing in m, increasing
// in phi — the Sec. 3 invariants.
func TestEfficiencyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m0 := 1 + rng.Intn(512)
		m := m0 + rng.Intn(8192)
		phi := rng.Float64() * 1e5
		e := Efficiency(phi, m0, m)
		if e <= 0 || e > 1+1e-12 {
			return false
		}
		if Efficiency(phi, m0, m+16) > e+1e-12 {
			return false
		}
		if Efficiency(phi*2+1, m0, m) < e-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGoodputInfeasible(t *testing.T) {
	g := refModel(1000)
	if v := g.Goodput(SingleGPU, 64); v != 0 { // below m0
		t.Errorf("goodput below m0 = %v, want 0", v)
	}
	if v := g.Goodput(SingleGPU, 512); v != 0 { // above 1×256 memory cap
		t.Errorf("goodput above memory = %v, want 0", v)
	}
	if v := g.Goodput(Placement{0, 0}, 128); v != 0 {
		t.Errorf("goodput invalid placement = %v, want 0", v)
	}
}

func TestGoodputNeverExceedsThroughput(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Model{
			Params:         randParams(rng),
			Phi:            rng.Float64() * 1e4,
			M0:             32 + rng.Intn(256),
			MaxBatchPerGPU: 512,
		}
		pl := randPlacement(rng, 16, 4)
		lo, hi, ok := g.batchRange(pl)
		if !ok {
			return true
		}
		m := lo + rng.Intn(hi-lo+1)
		return g.Goodput(pl, m) <= g.Throughput(pl, m)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGoodputEqualsThroughputAtM0(t *testing.T) {
	g := refModel(700)
	if gp, tp := g.Goodput(SingleGPU, 128), g.Throughput(SingleGPU, 128); math.Abs(gp-tp) > 1e-9 {
		t.Errorf("goodput at m0 = %v, want throughput %v", gp, tp)
	}
}

func TestOptimalBatchUnimodalInterior(t *testing.T) {
	g := Model{
		Params:         refParams,
		Phi:            2000,
		M0:             128,
		MaxBatchPerGPU: 1 << 14,
	}
	pl := Placement{8, 2}
	m, gp, ok := g.OptimalBatch(pl)
	if !ok {
		t.Fatal("OptimalBatch infeasible")
	}
	if m <= g.M0 || m >= pl.GPUs*g.MaxBatchPerGPU {
		t.Errorf("expected interior optimum, got m = %d", m)
	}
	// Local maximality.
	if g.Goodput(pl, m-1) > gp || g.Goodput(pl, m+1) > gp {
		t.Errorf("m=%d not locally optimal: %v vs (%v, %v)",
			m, gp, g.Goodput(pl, m-1), g.Goodput(pl, m+1))
	}
}

func TestOptimalBatchRespectsGlobalCap(t *testing.T) {
	g := Model{
		Params:         refParams,
		Phi:            1e6, // huge noise: bigger is always better
		M0:             128,
		MaxBatchPerGPU: 4096,
		MaxBatchGlobal: 1000,
	}
	m, _, ok := g.OptimalBatch(Placement{8, 2})
	if !ok {
		t.Fatal("infeasible")
	}
	if m != 1000 {
		t.Errorf("optimal batch = %d, want pinned at global cap 1000", m)
	}
}

func TestOptimalBatchInfeasiblePlacement(t *testing.T) {
	g := Model{Params: refParams, Phi: 100, M0: 512, MaxBatchPerGPU: 256}
	// One GPU fits only 256 < m0 = 512.
	if _, _, ok := g.OptimalBatch(SingleGPU); ok {
		t.Error("expected infeasible when m0 exceeds single-GPU memory")
	}
	// Two GPUs fit exactly 512.
	if m, _, ok := g.OptimalBatch(Placement{2, 1}); !ok || m != 512 {
		t.Errorf("2-GPU optimum = %d ok=%v, want 512 true", m, ok)
	}
}

func TestSpeedupSingleGPUIsOne(t *testing.T) {
	for _, phi := range []float64{0, 100, 1e5} {
		g := refModel(phi)
		if s := g.Speedup(SingleGPU); math.Abs(s-1) > 1e-9 {
			t.Errorf("Speedup(1 GPU, phi=%v) = %v, want 1", phi, s)
		}
	}
}

func TestSpeedupInfeasibleZero(t *testing.T) {
	g := Model{Params: refParams, Phi: 100, M0: 1024, MaxBatchPerGPU: 256}
	// 2 GPUs fit only 512 < m0.
	if s := g.Speedup(Placement{2, 1}); s != 0 {
		t.Errorf("Speedup infeasible = %v, want 0", s)
	}
}

// Property: speedup is sublinear in GPUs (paper Sec. 4.2) and higher phi
// yields (weakly) better speedup at scale — noisier gradients tolerate
// larger batches, which utilize more GPUs.
func TestSpeedupSublinearProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Model{
			Params:         randParams(rng),
			Phi:            rng.Float64() * 1e4,
			M0:             32 + rng.Intn(128),
			MaxBatchPerGPU: 512,
		}
		k := 2 + rng.Intn(15)
		nodes := 1 + rng.Intn(k)
		s := g.Speedup(Placement{k, nodes})
		return s <= float64(k)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupHigherPhiScalesBetter(t *testing.T) {
	pl := Placement{16, 4}
	low := refModel(50)
	low.MaxBatchPerGPU = 1 << 13
	high := refModel(50000)
	high.MaxBatchPerGPU = 1 << 13
	if sl, sh := low.Speedup(pl), high.Speedup(pl); sh <= sl {
		t.Errorf("speedup with high phi %v <= low phi %v", sh, sl)
	}
}

func TestOptimalBatchGrowsWithPhi(t *testing.T) {
	// Paper Fig. 1b: later in training (higher phi) the most efficient
	// batch size grows.
	pl := Placement{8, 2}
	mk := func(phi float64) int {
		g := refModel(phi)
		g.MaxBatchPerGPU = 1 << 13
		m, _, _ := g.OptimalBatch(pl)
		return m
	}
	early, late := mk(200), mk(20000)
	if late <= early {
		t.Errorf("optimal batch should grow with phi: early=%d late=%d", early, late)
	}
}

func TestOptimalLRUsesAdaScaleGain(t *testing.T) {
	g := refModel(128)
	// At m = m0, gain 1: lr = eta0.
	if lr := g.OptimalLR(0.1, 128); math.Abs(lr-0.1) > 1e-12 {
		t.Errorf("lr at m0 = %v, want 0.1", lr)
	}
	// phi=128=m0, m=256: gain 4/3.
	if lr := g.OptimalLR(0.1, 256); math.Abs(lr-0.1*4/3) > 1e-12 {
		t.Errorf("lr = %v, want %v", lr, 0.1*4/3)
	}
}
