package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/opt"
)

// numGradRMSLE computes a finite-difference reference gradient. The
// bounds are wide except γ ≥ 1: TIter clamps γ there, so the reference
// must use the same one-sided difference the optimizer sees at the bound.
func numGradRMSLE(p Params, samples []Sample) []float64 {
	x := p.Vector()
	wide := opt.Bounds{
		Lower: []float64{-100, -100, -100, -100, -100, -100, 1},
		Upper: []float64{100, 100, 100, 100, 100, 100, 100},
	}
	g, _ := opt.NumGrad(func(v []float64) float64 {
		return RMSLE(ParamsFromVector(v), samples)
	}, x, wide, 1e-7)
	return g
}

func TestRMSLEGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := genSamples(rng, refParams, 0.1, 4, allPlacements)
	points := []Params{
		refParams,
		{AlphaGrad: 0.3, BetaGrad: 0.002, AlphaSyncLocal: 0.2, BetaSyncLocal: 0.01,
			AlphaSyncNode: 0.4, BetaSyncNode: 0.02, Gamma: 1.7},
		{AlphaGrad: 0.05, BetaGrad: 0.01, AlphaSyncLocal: 0.01, BetaSyncLocal: 0.001,
			AlphaSyncNode: 0.02, BetaSyncNode: 0.002, Gamma: 4.2},
		// Gamma at its lower bound of 1 (the no-overlap sum).
		{AlphaGrad: 0.1, BetaGrad: 0.001, AlphaSyncLocal: 0.1, BetaSyncLocal: 0.005,
			AlphaSyncNode: 0.2, BetaSyncNode: 0.01, Gamma: 1},
	}
	for pi, p := range points {
		got := RMSLEGrad(p, samples)
		want := numGradRMSLE(p, samples)
		for i := range want {
			diff := math.Abs(got[i] - want[i])
			scale := math.Max(1, math.Abs(want[i]))
			if diff/scale > 1e-4 {
				t.Errorf("point %d coord %d: analytic %v vs numerical %v", pi, i, got[i], want[i])
			}
		}
	}
}

// TestRMSLEGradSumFaces: at γ = 1 the γ-mean degenerates to tg + ts,
// whose slope is 1 in both arguments even on the tg = 0 and ts = 0
// faces — neither family of parameters may lose its gradient there.
func TestRMSLEGradSumFaces(t *testing.T) {
	samples := []Sample{
		{Placement: Placement{GPUs: 4, Nodes: 2}, Batch: 512, TIter: 0.5},
		{Placement: Placement{GPUs: 8, Nodes: 2}, Batch: 512, TIter: 0.4},
	}
	onTg := Params{AlphaGrad: 0, BetaGrad: 0, AlphaSyncNode: 0.2, Gamma: 1}
	if g := RMSLEGrad(onTg, samples); g[0] == 0 || g[1] == 0 {
		t.Errorf("tg=0 face at γ=1: grad-time gradient = (%v, %v), want nonzero", g[0], g[1])
	}
	onTs := Params{AlphaGrad: 0.2, BetaGrad: 0.001, Gamma: 1}
	if g := RMSLEGrad(onTs, samples); g[4] == 0 {
		t.Errorf("ts=0 face at γ=1: sync gradient = %v, want nonzero", g[4])
	}
}

func TestRMSLEGradZeroCases(t *testing.T) {
	if g := RMSLEGrad(refParams, nil); len(g) != 7 {
		t.Fatalf("gradient length = %d, want 7", len(g))
	}
	// Exact fit: RMSLE is 0, gradient must be the zero vector, not NaN.
	samples := genSamples(rand.New(rand.NewSource(2)), refParams, 0, 4, allPlacements)
	for i, gi := range RMSLEGrad(refParams, samples) {
		if gi != 0 || math.IsNaN(gi) {
			t.Errorf("coord %d of exact-fit gradient = %v, want 0", i, gi)
		}
	}
}

// TestRMSLEGradSingleGPU checks that sync-parameter partials vanish when
// no sample ever synchronized (K = 1), so frozen coordinates stay frozen.
func TestRMSLEGradSingleGPU(t *testing.T) {
	samples := []Sample{
		{Placement: SingleGPU, Batch: 128, TIter: 0.2},
		{Placement: SingleGPU, Batch: 256, TIter: 0.35},
	}
	g := RMSLEGrad(refParams, samples)
	for _, i := range []int{2, 3, 4, 5} {
		if g[i] != 0 {
			t.Errorf("sync coord %d gradient = %v, want 0 for single-GPU samples", i, g[i])
		}
	}
}

// TestFitEscapesZeroSyncFace: for γ > 1 the RMSLE surface is genuinely
// flat in the sync directions at sync = 0, so a warm-started fit whose
// incumbent has zero sync parameters could never learn real sync costs
// by gradient steps alone. Fit must recover them anyway (via the
// sync-heavy extra start) once synchronization has been observed.
func TestFitEscapesZeroSyncFace(t *testing.T) {
	truth := Params{
		AlphaGrad: 0.05, BetaGrad: 0.001,
		AlphaSyncLocal: 0.08, BetaSyncLocal: 0.004,
		AlphaSyncNode: 0.2, BetaSyncNode: 0.01,
		Gamma: 2,
	}
	samples := genSamples(rand.New(rand.NewSource(3)), truth, 0, 4, allPlacements)
	// The incumbent fit is what a job has after training on one GPU:
	// gradient terms learned, sync parameters still frozen at zero.
	prev := Params{AlphaGrad: 0.06, BetaGrad: 0.0012, Gamma: 1.5}
	got := Fit(samples, prev, Exploration{MaxGPUs: 16, MaxNodes: 4})
	if got.AlphaSyncLocal == 0 && got.AlphaSyncNode == 0 {
		t.Fatalf("fit stuck on the zero-sync face: %+v", got)
	}
	if r := RMSLE(got, samples); r > 0.05 {
		t.Errorf("warm-started fit RMSLE = %v, want < 0.05 on clean data", r)
	}
}

// TestFitWithAnalyticGradMatchesNumeric ensures the analytic-gradient fit
// lands on (essentially) the same optimum as the numerical-gradient path
// it replaced.
func TestFitWithAnalyticGradMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	samples := genSamples(rng, refParams, 0.05, 4, allPlacements)
	explored := Exploration{MaxGPUs: 16, MaxNodes: 4}

	analytic := Fit(samples, Params{}, explored)

	bounds := explored.fitBounds()
	loss := func(v []float64) float64 { return RMSLE(ParamsFromVector(v), samples) }
	dv := defaultParams(samples).Vector()
	bounds.Clamp(dv)
	hv := defaultParams(samples)
	hv.AlphaSyncLocal, hv.AlphaSyncNode = 0.05, 0.1
	hv.Gamma = 3
	h := hv.Vector()
	bounds.Clamp(h)
	numeric := opt.MultiStart(loss, [][]float64{dv, h}, bounds, opt.LBFGSBOptions{MaxIter: 150})

	ra, rn := RMSLE(analytic, samples), numeric.F
	if ra > rn*1.05+1e-6 {
		t.Errorf("analytic-gradient fit RMSLE %v noticeably worse than numeric %v", ra, rn)
	}
}
