// Package core implements the Pollux paper's primary contribution: the
// goodput of distributed deep-learning training (Sec. 3) — a performance
// metric combining system throughput with statistical efficiency — along
// with the throughput model (Eqns. 8–11), the efficiency model (Eqn. 7),
// online fitting of the throughput parameters θsys with prior-driven
// exploration (Sec. 4.1), goodput-optimal batch-size selection (Eqn. 13),
// and the SPEEDUP function used by the cluster-wide optimizer (Eqn. 15).
package core

import (
	"fmt"
	"math"
)

// Placement summarizes a resource allocation as seen by the throughput
// model: the total number of allocated GPUs K and the number of distinct
// physical nodes N those GPUs span. The full per-node allocation vector
// lives in the scheduler; only (K, N) affect iteration time (Eqn. 10).
type Placement struct {
	GPUs  int // K: total GPUs allocated
	Nodes int // N: number of nodes occupied by at least one replica
}

// SingleGPU is the placement every job starts with.
var SingleGPU = Placement{GPUs: 1, Nodes: 1}

// Valid reports whether the placement is physically meaningful.
func (p Placement) Valid() bool {
	return p.GPUs >= 1 && p.Nodes >= 1 && p.Nodes <= p.GPUs
}

func (p Placement) String() string {
	return fmt.Sprintf("%dxGPU/%dnode", p.GPUs, p.Nodes)
}

// Params is θsys, the 7-tuple of learnable system-throughput parameters
// (Eqn. 12): Tgrad = AlphaGrad + BetaGrad·(m/K), and Tsync per Eqn. 10
// with distinct constants for co-located vs multi-node placements. Gamma
// in [1, 10] interpolates between no overlap (γ=1, Titer = Tgrad+Tsync)
// and perfect overlap (γ→∞, Titer = max) per Eqn. 11.
type Params struct {
	AlphaGrad      float64 // constant per-iteration gradient-computation time (s)
	BetaGrad       float64 // per-example gradient-computation time (s)
	AlphaSyncLocal float64 // constant sync time, all replicas on one node (s)
	BetaSyncLocal  float64 // per-extra-replica sync retrogression, one node (s)
	AlphaSyncNode  float64 // constant sync time, replicas across nodes (s)
	BetaSyncNode   float64 // per-extra-replica sync retrogression, across nodes (s)
	Gamma          float64 // overlap exponent in [1, 10]
}

// Vector flattens θsys in the canonical order used by fitting.
func (p Params) Vector() []float64 {
	return []float64{
		p.AlphaGrad, p.BetaGrad,
		p.AlphaSyncLocal, p.BetaSyncLocal,
		p.AlphaSyncNode, p.BetaSyncNode,
		p.Gamma,
	}
}

// ParamsFromVector is the inverse of Params.Vector.
func ParamsFromVector(v []float64) Params {
	if len(v) != 7 {
		panic("core: θsys vector must have 7 elements")
	}
	return Params{
		AlphaGrad: v[0], BetaGrad: v[1],
		AlphaSyncLocal: v[2], BetaSyncLocal: v[3],
		AlphaSyncNode: v[4], BetaSyncNode: v[5],
		Gamma: v[6],
	}
}

// TGrad returns the modeled time per iteration spent computing local
// gradients for overall batch size m on K GPUs (Eqn. 9).
func (p Params) TGrad(m float64, k int) float64 {
	return p.AlphaGrad + p.BetaGrad*m/float64(k)
}

// TSync returns the modeled gradient-synchronization time for a placement
// (Eqn. 10). It is zero for a single GPU, uses the local parameters when
// all replicas share one node, and the node parameters otherwise.
func (p Params) TSync(pl Placement) float64 {
	switch {
	case pl.GPUs <= 1:
		return 0
	case pl.Nodes == 1:
		return p.AlphaSyncLocal + p.BetaSyncLocal*float64(pl.GPUs-2)
	default:
		return p.AlphaSyncNode + p.BetaSyncNode*float64(pl.GPUs-2)
	}
}

// TIter returns the modeled total time per training iteration (Eqn. 11),
// the γ-generalized mean that smoothly interpolates between the no-overlap
// sum (γ=1) and the perfect-overlap max (γ→∞) of TGrad and TSync.
func (p Params) TIter(pl Placement, m float64) float64 {
	tg := p.TGrad(m, pl.GPUs)
	ts := p.TSync(pl)
	if ts == 0 {
		return tg
	}
	if tg == 0 {
		return ts
	}
	g := p.Gamma
	if g < 1 {
		g = 1
	}
	// Compute (tg^γ + ts^γ)^(1/γ) in a numerically stable way by
	// factoring out the larger term.
	hi, lo := tg, ts
	if lo > hi {
		hi, lo = lo, hi
	}
	return hi * math.Pow(1+math.Pow(lo/hi, g), 1/g)
}

// Throughput returns the modeled system throughput in examples per second
// for a placement and batch size (Eqn. 8).
func (p Params) Throughput(pl Placement, m float64) float64 {
	ti := p.TIter(pl, m)
	if ti <= 0 {
		return 0
	}
	return m / ti
}
