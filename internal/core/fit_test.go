package core

import (
	"math"
	"math/rand"
	"testing"
)

// genSamples produces observed samples from ground-truth params across a
// range of placements and batch sizes, with multiplicative noise.
func genSamples(rng *rand.Rand, truth Params, noise float64, maxPerNode int, placements []Placement) []Sample {
	var out []Sample
	for _, pl := range placements {
		for _, m := range []int{128, 256, 512, 1024, 2048} {
			if m/pl.GPUs < 1 {
				continue
			}
			ti := truth.TIter(pl, float64(m))
			if noise > 0 {
				ti *= 1 + noise*(rng.Float64()*2-1)
			}
			out = append(out, Sample{Placement: pl, Batch: m, TIter: ti})
		}
	}
	return out
}

var allPlacements = []Placement{
	{1, 1}, {2, 1}, {3, 1}, {4, 1},
	{4, 2}, {6, 2}, {8, 2}, {8, 4}, {12, 4}, {16, 4},
}

func TestFitRecoversCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := refParams
	samples := genSamples(rng, truth, 0, 4, allPlacements)
	got := Fit(samples, Params{}, Exploration{MaxGPUs: 16, MaxNodes: 4})
	if r := RMSLE(got, samples); r > 0.02 {
		t.Errorf("RMSLE on clean data = %v, want < 0.02", r)
	}
	// Predictions at held-out configurations should be close.
	for _, pl := range []Placement{{5, 2}, {10, 3}, {16, 4}} {
		for _, m := range []int{384, 768, 1536} {
			want := truth.TIter(pl, float64(m))
			pred := got.TIter(pl, float64(m))
			if math.Abs(pred-want)/want > 0.15 {
				t.Errorf("TIter(%v, %d): pred %v vs truth %v (>15%%)", pl, m, pred, want)
			}
		}
	}
}

func TestFitToleratesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := refParams
	samples := genSamples(rng, truth, 0.1, 4, allPlacements)
	got := Fit(samples, Params{}, Exploration{MaxGPUs: 16, MaxNodes: 4})
	for _, pl := range []Placement{{4, 1}, {8, 2}, {16, 4}} {
		m := 1024
		want := truth.TIter(pl, float64(m))
		pred := got.TIter(pl, float64(m))
		if math.Abs(pred-want)/want > 0.25 {
			t.Errorf("TIter(%v, %d): pred %v vs truth %v (>25%% with 10%% noise)", pl, m, pred, want)
		}
	}
}

func TestFitEmptySamplesUsesPriors(t *testing.T) {
	got := Fit(nil, Params{}, Exploration{MaxGPUs: 1, MaxNodes: 1})
	if got.AlphaSyncLocal != 0 || got.AlphaSyncNode != 0 ||
		got.BetaSyncLocal != 0 || got.BetaSyncNode != 0 {
		t.Errorf("unexplored job should have zero sync params: %+v", got)
	}
	if got.Gamma < 1 {
		t.Errorf("gamma = %v, want >= 1", got.Gamma)
	}
}

func TestFitPriorFreezesSyncUntilExplored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := refParams
	// Only single-GPU data seen so far.
	samples := genSamples(rng, truth, 0, 4, []Placement{{1, 1}})
	got := Fit(samples, Params{}, Exploration{MaxGPUs: 1, MaxNodes: 1})
	if got.AlphaSyncLocal != 0 || got.BetaSyncLocal != 0 ||
		got.AlphaSyncNode != 0 || got.BetaSyncNode != 0 {
		t.Errorf("sync params not frozen at 0: %+v", got)
	}
	// The frozen model predicts perfect scaling: throughput at 8 GPUs
	// ~8x the single-GPU throughput at 8x batch.
	tp1 := got.Throughput(SingleGPU, 128)
	tp8 := got.Throughput(Placement{8, 2}, 1024)
	if math.Abs(tp8-8*tp1)/(8*tp1) > 0.01 {
		t.Errorf("optimistic prior violated: tp8 = %v, want ~%v", tp8, 8*tp1)
	}
}

func TestFitPriorRetrogressionFrozenAtTwoGPUs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := refParams
	samples := genSamples(rng, truth, 0, 4, []Placement{{1, 1}, {2, 1}})
	got := Fit(samples, Params{}, Exploration{MaxGPUs: 2, MaxNodes: 1})
	if got.BetaSyncLocal != 0 || got.BetaSyncNode != 0 {
		t.Errorf("retrogression slopes not frozen with ≤2 GPUs: %+v", got)
	}
	if got.AlphaSyncLocal <= 0 {
		t.Errorf("αl should now be fit (> 0), got %v", got.AlphaSyncLocal)
	}
	if got.AlphaSyncNode != 0 {
		t.Errorf("αn should remain frozen with 1 node, got %v", got.AlphaSyncNode)
	}
}

func TestFitWithPrevSeedIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	truth := refParams
	samples := genSamples(rng, truth, 0.05, 4, allPlacements)
	first := Fit(samples, Params{}, Exploration{MaxGPUs: 16, MaxNodes: 4})
	second := Fit(samples, first, Exploration{MaxGPUs: 16, MaxNodes: 4})
	// Refitting with the previous fit as a seed must not be worse.
	if RMSLE(second, samples) > RMSLE(first, samples)+1e-9 {
		t.Errorf("refit got worse: %v > %v", RMSLE(second, samples), RMSLE(first, samples))
	}
}

func TestRMSLEZeroForExactModel(t *testing.T) {
	samples := genSamples(rand.New(rand.NewSource(1)), refParams, 0, 4, allPlacements)
	if r := RMSLE(refParams, samples); r > 1e-12 {
		t.Errorf("RMSLE of truth on clean data = %v, want 0", r)
	}
	if r := RMSLE(refParams, nil); r != 0 {
		t.Errorf("RMSLE with no samples = %v, want 0", r)
	}
}

func TestExplorationObserve(t *testing.T) {
	var e Exploration
	e.Observe(Placement{4, 2})
	e.Observe(Placement{2, 1})
	if e.MaxGPUs != 4 || e.MaxNodes != 2 {
		t.Errorf("exploration = %+v, want {4 2}", e)
	}
}

func TestExplorationGPUCap(t *testing.T) {
	cases := []struct {
		max  int
		want int
	}{
		{0, 2}, {1, 2}, {2, 4}, {8, 16},
	}
	for _, c := range cases {
		e := Exploration{MaxGPUs: c.max}
		if got := e.GPUCap(); got != c.want {
			t.Errorf("GPUCap(max=%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestFitBoundsRespectGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	samples := genSamples(rng, refParams, 0.2, 4, allPlacements)
	got := Fit(samples, Params{}, Exploration{MaxGPUs: 16, MaxNodes: 4})
	if got.Gamma < 1 || got.Gamma > 10 {
		t.Errorf("fitted gamma = %v, want in [1, 10]", got.Gamma)
	}
	if got.AlphaGrad < 0 || got.BetaGrad < 0 || got.AlphaSyncLocal < 0 ||
		got.BetaSyncLocal < 0 || got.AlphaSyncNode < 0 || got.BetaSyncNode < 0 {
		t.Errorf("fitted params negative: %+v", got)
	}
}
