package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unbounded(n int) Bounds {
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	return Bounds{Lower: lo, Upper: hi}
}

func TestLBFGSBQuadratic(t *testing.T) {
	// f(x) = sum (x_i - i)^2, minimum at x_i = i.
	f := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	res := LBFGSB(f, nil, make([]float64, 5), unbounded(5), LBFGSBOptions{})
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-4 {
			t.Errorf("x[%d] = %v, want %v", i, v, float64(i))
		}
	}
	if res.F > 1e-7 {
		t.Errorf("f = %v, want ~0", res.F)
	}
}

func TestLBFGSBRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a, b := x[0], x[1]
		return (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	}
	res := LBFGSB(f, nil, []float64{-1.2, 1}, unbounded(2), LBFGSBOptions{MaxIter: 2000})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1,1); f = %v", res.X, res.F)
	}
}

func TestLBFGSBActiveBound(t *testing.T) {
	// Unconstrained min at (-2, 3); box forces x0 >= 0.
	f := func(x []float64) float64 {
		return (x[0]+2)*(x[0]+2) + (x[1]-3)*(x[1]-3)
	}
	b := Bounds{Lower: []float64{0, -10}, Upper: []float64{10, 10}}
	res := LBFGSB(f, nil, []float64{5, 5}, b, LBFGSBOptions{})
	if math.Abs(res.X[0]) > 1e-5 {
		t.Errorf("x[0] = %v, want 0 (active bound)", res.X[0])
	}
	if math.Abs(res.X[1]-3) > 1e-4 {
		t.Errorf("x[1] = %v, want 3", res.X[1])
	}
}

func TestLBFGSBFrozenCoordinate(t *testing.T) {
	// Coordinate 1 frozen at 7 (lower == upper): the Pollux prior trick.
	f := func(x []float64) float64 {
		return x[0]*x[0] + (x[1]-1)*(x[1]-1)
	}
	b := Bounds{Lower: []float64{-10, 7}, Upper: []float64{10, 7}}
	res := LBFGSB(f, nil, []float64{3, 0}, b, LBFGSBOptions{})
	if res.X[1] != 7 {
		t.Errorf("frozen coordinate moved: x[1] = %v, want 7", res.X[1])
	}
	if math.Abs(res.X[0]) > 1e-5 {
		t.Errorf("x[0] = %v, want 0", res.X[0])
	}
}

func TestLBFGSBStartOutsideBox(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	b := Bounds{Lower: []float64{1}, Upper: []float64{5}}
	res := LBFGSB(f, nil, []float64{-100}, b, LBFGSBOptions{})
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Errorf("x = %v, want clamped optimum 1", res.X[0])
	}
}

func TestLBFGSBWithAnalyticGradient(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-4)*(x[0]-4) + 2*(x[1]+1)*(x[1]+1)
	}
	grad := func(x []float64) []float64 {
		return []float64{2 * (x[0] - 4), 4 * (x[1] + 1)}
	}
	res := LBFGSB(f, grad, []float64{0, 0}, unbounded(2), LBFGSBOptions{})
	if math.Abs(res.X[0]-4) > 1e-6 || math.Abs(res.X[1]+1) > 1e-6 {
		t.Errorf("x = %v, want (4,-1)", res.X)
	}
}

func TestLBFGSBDoesNotModifyStart(t *testing.T) {
	x0 := []float64{9, 9}
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	LBFGSB(f, nil, x0, unbounded(2), LBFGSBOptions{})
	if x0[0] != 9 || x0[1] != 9 {
		t.Errorf("x0 was modified: %v", x0)
	}
}

// Property: the returned minimizer always lies inside the box, and the
// objective value never exceeds the (clamped) starting value.
func TestLBFGSBPropertyInBoxAndImproves(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		lo := make([]float64, n)
		hi := make([]float64, n)
		target := make([]float64, n)
		start := make([]float64, n)
		for i := 0; i < n; i++ {
			lo[i] = rng.Float64()*10 - 5
			hi[i] = lo[i] + rng.Float64()*10
			target[i] = rng.Float64()*20 - 10
			start[i] = rng.Float64()*20 - 10
		}
		b := Bounds{Lower: lo, Upper: hi}
		f := func(x []float64) float64 {
			s := 0.0
			for i, v := range x {
				d := v - target[i]
				s += d * d
			}
			return s
		}
		res := LBFGSB(f, nil, start, b, LBFGSBOptions{})
		if !b.contains(res.X) {
			return false
		}
		clamped := make([]float64, n)
		copy(clamped, start)
		b.Clamp(clamped)
		return res.F <= f(clamped)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for box-constrained quadratics the solution matches the
// coordinate-wise clamped analytic optimum (valid because the quadratic is
// separable).
func TestLBFGSBPropertySeparableQuadraticExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		lo := make([]float64, n)
		hi := make([]float64, n)
		target := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			lo[i] = rng.Float64()*4 - 2
			hi[i] = lo[i] + 0.5 + rng.Float64()*4
			target[i] = rng.Float64()*8 - 4
			w[i] = 0.5 + rng.Float64()*4
		}
		b := Bounds{Lower: lo, Upper: hi}
		f := func(x []float64) float64 {
			s := 0.0
			for i, v := range x {
				d := v - target[i]
				s += w[i] * d * d
			}
			return s
		}
		start := make([]float64, n)
		for i := range start {
			start[i] = (lo[i] + hi[i]) / 2
		}
		res := LBFGSB(f, nil, start, b, LBFGSBOptions{MaxIter: 500})
		for i := range res.X {
			want := math.Max(lo[i], math.Min(hi[i], target[i]))
			if math.Abs(res.X[i]-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNumGradMatchesAnalytic(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Sin(x[0]) + x[1]*x[1]*x[1]
	}
	x := []float64{0.7, 1.3}
	g, _ := NumGrad(f, x, unbounded(2), 1e-6)
	want0 := math.Cos(0.7)
	want1 := 3 * 1.3 * 1.3
	if math.Abs(g[0]-want0) > 1e-5 || math.Abs(g[1]-want1) > 1e-5 {
		t.Errorf("grad = %v, want [%v %v]", g, want0, want1)
	}
}

func TestNumGradAtBoundOneSided(t *testing.T) {
	f := func(x []float64) float64 { return 2 * x[0] }
	b := Bounds{Lower: []float64{0}, Upper: []float64{10}}
	g, _ := NumGrad(f, []float64{0}, b, 1e-6)
	if math.Abs(g[0]-2) > 1e-4 {
		t.Errorf("one-sided grad at bound = %v, want 2", g[0])
	}
}

func TestNumGradFrozenCoordinateZero(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * 100 }
	b := Bounds{Lower: []float64{3}, Upper: []float64{3}}
	g, _ := NumGrad(f, []float64{3}, b, 1e-6)
	if g[0] != 0 {
		t.Errorf("grad of frozen coordinate = %v, want 0", g[0])
	}
}

func TestMultiStartPicksBest(t *testing.T) {
	// Double-well: minima near -2 (f=-1) and +2 (f=-3, global).
	f := func(x []float64) float64 {
		v := x[0]
		return 0.1*(v*v-4)*(v*v-4) - v
	}
	b := Bounds{Lower: []float64{-5}, Upper: []float64{5}}
	res := MultiStart(f, [][]float64{{-3}, {3}}, b, LBFGSBOptions{})
	if res.X[0] < 0 {
		t.Errorf("multistart picked the wrong well: x = %v", res.X[0])
	}
}
