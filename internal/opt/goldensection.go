// Package opt provides the numerical optimization routines used by Pollux:
// golden-section search for unimodal one-dimensional objectives (used to
// find the goodput-maximizing batch size, Eqn. 13 of the paper) and a
// box-constrained L-BFGS minimizer (a from-scratch stand-in for L-BFGS-B,
// used to fit the throughput model parameters, Sec. 4.1).
//
// All routines are deterministic and allocation-light; they are called on
// every scheduling interval for every job in the cluster, so they are kept
// simple and fast rather than maximally general.
package opt

import (
	"math"
)

// invPhi is 1/phi where phi is the golden ratio.
const invPhi = 0.6180339887498949

// GoldenSectionMax finds the maximizer of a unimodal function f on the
// closed interval [lo, hi] to within tol. It returns the argmax and the
// maximum value. If lo > hi the arguments are swapped. The function f is
// assumed unimodal on the interval; if it is not, a local maximum is
// returned.
func GoldenSectionMax(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-8
	}
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// GoldenSectionMin finds the minimizer of a unimodal function f on [lo, hi].
func GoldenSectionMin(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	x, neg := GoldenSectionMax(func(v float64) float64 { return -f(v) }, lo, hi, tol)
	return x, -neg
}

// GoldenSectionMaxInt finds the maximizer of a unimodal function f over the
// integers in [lo, hi]. It runs a golden-section-style bracketing on the
// integer lattice and finishes with a local scan, which is exact for
// unimodal f. It returns the integer argmax and the maximum value.
func GoldenSectionMaxInt(f func(int) float64, lo, hi int) (x int, fx float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo <= 8 {
		return scanMaxInt(f, lo, hi)
	}
	a, b := lo, hi
	c := b - int(math.Round(float64(b-a)*invPhi))
	d := a + int(math.Round(float64(b-a)*invPhi))
	if c <= a {
		c = a + 1
	}
	if d >= b {
		d = b - 1
	}
	if c >= d {
		return scanMaxInt(f, lo, hi)
	}
	fc, fd := f(c), f(d)
	for b-a > 8 {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - int(math.Round(float64(b-a)*invPhi))
			if c <= a {
				c = a + 1
			}
			if c >= d {
				break
			}
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + int(math.Round(float64(b-a)*invPhi))
			if d >= b {
				d = b - 1
			}
			if c >= d {
				break
			}
			fd = f(d)
		}
	}
	return scanMaxInt(f, a, b)
}

func scanMaxInt(f func(int) float64, lo, hi int) (x int, fx float64) {
	x, fx = lo, f(lo)
	for v := lo + 1; v <= hi; v++ {
		if fv := f(v); fv > fx {
			x, fx = v, fv
		}
	}
	return x, fx
}
