package opt

import "testing"

func BenchmarkGoldenSectionMax(b *testing.B) {
	f := func(x float64) float64 { return -(x - 1234.5) * (x - 1234.5) }
	for i := 0; i < b.N; i++ {
		GoldenSectionMax(f, 0, 1e6, 1e-6)
	}
}

func BenchmarkGoldenSectionMaxInt(b *testing.B) {
	f := func(m int) float64 {
		d := float64(m - 51234)
		return -d * d
	}
	for i := 0; i < b.N; i++ {
		GoldenSectionMaxInt(f, 1, 100000)
	}
}

func BenchmarkLBFGSBQuadratic(b *testing.B) {
	f := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	x0 := make([]float64, 7)
	bounds := Bounds{Lower: make([]float64, 7), Upper: make([]float64, 7)}
	for i := range bounds.Upper {
		bounds.Lower[i] = -100
		bounds.Upper[i] = 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LBFGSB(f, nil, x0, bounds, LBFGSBOptions{MaxIter: 100})
	}
}
