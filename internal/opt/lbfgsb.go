package opt

import (
	"math"
)

// Bounds describes per-coordinate box constraints for LBFGSB. A coordinate
// with Lower[i] == Upper[i] is frozen at that value, which is how the
// Pollux agent imposes its prior-driven exploration constraints (Sec. 4.1:
// e.g. alpha_sync is pinned to zero until multi-GPU placements have been
// observed).
type Bounds struct {
	Lower []float64
	Upper []float64
}

// Clamp projects x onto the box in place.
func (b Bounds) Clamp(x []float64) {
	for i := range x {
		if x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		}
		if x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
}

// contains reports whether x is inside (or on) the box.
func (b Bounds) contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lower[i] || x[i] > b.Upper[i] {
			return false
		}
	}
	return true
}

// LBFGSBOptions configures the box-constrained L-BFGS minimizer.
type LBFGSBOptions struct {
	// MaxIter bounds the number of outer iterations. Default 200.
	MaxIter int
	// History is the number of (s, y) correction pairs kept. Default 8.
	History int
	// GradTol terminates when the infinity-norm of the projected gradient
	// falls below it. Default 1e-8.
	GradTol float64
	// FuncTol terminates when the relative improvement in f falls below
	// it. Default 1e-12.
	FuncTol float64
	// GradEps is the step used for numerical gradients when no analytic
	// gradient is supplied. Default 1e-6.
	GradEps float64
}

func (o *LBFGSBOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.History <= 0 {
		o.History = 8
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	if o.FuncTol <= 0 {
		o.FuncTol = 1e-12
	}
	if o.GradEps <= 0 {
		o.GradEps = 1e-6
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X     []float64 // minimizer found
	F     float64   // objective value at X
	Iters int       // outer iterations performed
	Evals int       // objective evaluations performed
}

// NumGrad computes a central-difference numerical gradient of f at x,
// respecting the box: coordinates at a bound use a one-sided difference.
// The returned eval count is the number of calls made to f.
func NumGrad(f func([]float64) float64, x []float64, b Bounds, eps float64) (grad []float64, evals int) {
	n := len(x)
	grad = make([]float64, n)
	xw := make([]float64, n)
	copy(xw, x)
	for i := 0; i < n; i++ {
		h := eps * math.Max(1, math.Abs(x[i]))
		lo, hi := x[i]-h, x[i]+h
		if lo < b.Lower[i] {
			lo = b.Lower[i]
		}
		if hi > b.Upper[i] {
			hi = b.Upper[i]
		}
		//pollux:floateq-ok guards the zero-width clamped interval before dividing by hi-lo
		if hi == lo {
			grad[i] = 0
			continue
		}
		xw[i] = hi
		fhi := f(xw)
		xw[i] = lo
		flo := f(xw)
		xw[i] = x[i]
		grad[i] = (fhi - flo) / (hi - lo)
		evals += 2
	}
	return grad, evals
}

// LBFGSB minimizes f subject to box constraints using a projected L-BFGS
// iteration with Armijo backtracking along the projected path. If grad is
// nil, central-difference numerical gradients are used. x0 is not modified.
//
// This is a deliberately compact reimplementation of the behaviour Pollux
// relies on from L-BFGS-B: minimize a smooth loss over a box, with some
// coordinates possibly frozen (lower == upper).
func LBFGSB(f func([]float64) float64, grad func([]float64) []float64, x0 []float64, b Bounds, opts LBFGSBOptions) Result {
	opts.defaults()
	n := len(x0)
	if len(b.Lower) != n || len(b.Upper) != n {
		panic("opt: bounds dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, x0)
	b.Clamp(x)

	evals := 0
	eval := func(v []float64) float64 {
		evals++
		return f(v)
	}
	gradient := func(v []float64) []float64 {
		if grad != nil {
			return grad(v)
		}
		g, e := NumGrad(f, v, b, opts.GradEps)
		evals += e
		return g
	}

	fx := eval(x)
	g := gradient(x)

	// L-BFGS history ring buffers.
	type pair struct{ s, y []float64 }
	hist := make([]pair, 0, opts.History)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)

	iter := 0
	for ; iter < opts.MaxIter; iter++ {
		if projGradNorm(x, g, b) < opts.GradTol {
			break
		}

		// Two-loop recursion for dir = -H*g.
		copy(dir, g)
		alphas := make([]float64, len(hist))
		for i := len(hist) - 1; i >= 0; i-- {
			p := hist[i]
			rho := 1 / dot(p.y, p.s)
			alphas[i] = rho * dot(p.s, dir)
			axpy(dir, p.y, -alphas[i])
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			scale := dot(last.s, last.y) / dot(last.y, last.y)
			for i := range dir {
				dir[i] *= scale
			}
		}
		for i := 0; i < len(hist); i++ {
			p := hist[i]
			rho := 1 / dot(p.y, p.s)
			beta := rho * dot(p.y, dir)
			axpy(dir, p.s, alphas[i]-beta)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Project out direction components that point outside the box at
		// active bounds; otherwise they dominate the step, get clipped by
		// the projection, and stall the line search.
		projectDirection(dir, x, b)
		// Ensure descent; fall back to projected steepest descent.
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
			projectDirection(dir, x, b)
		}

		// Backtracking line search along the projected path
		// P(x + t*dir). If the quasi-Newton direction stalls, retry
		// once with projected steepest descent.
		fNew, improved := lineSearch(eval, x, dir, g, fx, xNew, b)
		if !improved {
			for i := range dir {
				dir[i] = -g[i]
			}
			projectDirection(dir, x, b)
			fNew, improved = lineSearch(eval, x, dir, g, fx, xNew, b)
			if improved {
				hist = hist[:0] // quasi-Newton model was bad; reset
			}
		}
		if !improved {
			break
		}

		gn := gradient(xNew)
		copy(gNew, gn)

		// Update history with s = xNew - x, y = gNew - g.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			if len(hist) == opts.History {
				copy(hist, hist[1:])
				hist = hist[:opts.History-1]
			}
			hist = append(hist, pair{s, y})
		}

		rel := math.Abs(fx-fNew) / math.Max(1, math.Abs(fx))
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		if rel < opts.FuncTol {
			// A vanishing step with a large projected gradient means the
			// quasi-Newton direction was degenerate (its useful component
			// got projected away at an active bound), not that we have
			// converged. Reset to steepest descent and keep going.
			if projGradNorm(x, g, b) > math.Sqrt(opts.GradTol) && len(hist) > 0 {
				hist = hist[:0]
				continue
			}
			iter++
			break
		}
	}
	return Result{X: x, F: fx, Iters: iter, Evals: evals}
}

// lineSearch backtracks along the projected path P(x + t*dir) until the
// Armijo condition holds, measured against the actual projected
// displacement. On success the accepted point is left in xNew.
func lineSearch(eval func([]float64) float64, x, dir, g []float64, fx float64, xNew []float64, b Bounds) (fNew float64, ok bool) {
	const c1 = 1e-4
	t := 1.0
	for ls := 0; ls < 40; ls++ {
		moved := false
		for i := range xNew {
			xNew[i] = x[i] + t*dir[i]
		}
		b.Clamp(xNew)
		for i := range xNew {
			//pollux:floateq-ok exact fixed-point check: Clamp hands back x[i] verbatim when the step leaves the box
			if xNew[i] != x[i] {
				moved = true
				break
			}
		}
		if !moved {
			return fx, false
		}
		fNew = eval(xNew)
		dec := 0.0
		for i := range xNew {
			dec += g[i] * (xNew[i] - x[i])
		}
		if fNew <= fx+c1*dec && fNew < fx {
			return fNew, true
		}
		t *= 0.5
	}
	return fx, false
}

// projectDirection zeroes components of dir that point outside the box at
// coordinates sitting on an active bound.
func projectDirection(dir, x []float64, b Bounds) {
	for i := range dir {
		if x[i] <= b.Lower[i] && dir[i] < 0 {
			dir[i] = 0
		}
		if x[i] >= b.Upper[i] && dir[i] > 0 {
			dir[i] = 0
		}
	}
}

// projGradNorm returns the infinity norm of the projected gradient: the
// gradient with components pointing out of the box at active bounds zeroed.
func projGradNorm(x, g []float64, b Bounds) float64 {
	norm := 0.0
	for i := range x {
		gi := g[i]
		if x[i] <= b.Lower[i] && gi > 0 {
			gi = 0
		}
		if x[i] >= b.Upper[i] && gi < 0 {
			gi = 0
		}
		if a := math.Abs(gi); a > norm {
			norm = a
		}
	}
	return norm
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes dst += a*scale element-wise.
func axpy(dst, a []float64, scale float64) {
	for i := range dst {
		dst[i] += a[i] * scale
	}
}

// MultiStart runs LBFGSB from each starting point and returns the best
// result. Throughput-model fitting uses a handful of heuristic starts to
// avoid poor local minima in the RMSLE landscape.
func MultiStart(f func([]float64) float64, starts [][]float64, b Bounds, opts LBFGSBOptions) Result {
	return MultiStartGrad(f, nil, starts, b, opts)
}

// MultiStartGrad is MultiStart with an analytic gradient. A nil grad
// falls back to central-difference numerical gradients. The returned
// Evals is the total across all starts.
func MultiStartGrad(f func([]float64) float64, grad func([]float64) []float64, starts [][]float64, b Bounds, opts LBFGSBOptions) Result {
	best := Result{F: math.Inf(1)}
	evals := 0
	for _, s := range starts {
		r := LBFGSB(f, grad, s, b, opts)
		evals += r.Evals
		if r.F < best.F {
			best = r
		}
	}
	best.Evals = evals
	return best
}
