package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoldenSectionMaxQuadratic(t *testing.T) {
	cases := []struct {
		name     string
		peak     float64
		lo, hi   float64
		wantTol  float64
		scale    float64
		offsetup float64
	}{
		{"centered", 3.0, 0, 10, 1e-5, 1, 0},
		{"left-edge", 0.0, 0, 10, 1e-5, 2, 5},
		{"right-edge", 10.0, 0, 10, 1e-5, 0.5, -2},
		{"tiny-interval", 1.5, 1, 2, 1e-6, 1, 0},
		{"negative-domain", -4.0, -10, -1, 1e-5, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := func(x float64) float64 {
				return tc.offsetup - tc.scale*(x-tc.peak)*(x-tc.peak)
			}
			x, fx := GoldenSectionMax(f, tc.lo, tc.hi, 1e-9)
			if math.Abs(x-tc.peak) > tc.wantTol {
				t.Errorf("argmax = %v, want %v", x, tc.peak)
			}
			if fx < f(tc.peak)-1e-9 {
				t.Errorf("max = %v, want >= %v", fx, f(tc.peak))
			}
		})
	}
}

func TestGoldenSectionMaxSwappedBounds(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2) * (x - 2) }
	x, _ := GoldenSectionMax(f, 10, 0, 1e-9)
	if math.Abs(x-2) > 1e-5 {
		t.Errorf("argmax with swapped bounds = %v, want 2", x)
	}
}

func TestGoldenSectionMaxNonSmooth(t *testing.T) {
	// Unimodal but non-differentiable at the peak.
	f := func(x float64) float64 { return -math.Abs(x - 1.25) }
	x, _ := GoldenSectionMax(f, 0, 4, 1e-9)
	if math.Abs(x-1.25) > 1e-5 {
		t.Errorf("argmax = %v, want 1.25", x)
	}
}

func TestGoldenSectionMin(t *testing.T) {
	f := func(x float64) float64 { return (x - 7) * (x - 7) }
	x, fx := GoldenSectionMin(f, 0, 20, 1e-9)
	if math.Abs(x-7) > 1e-5 {
		t.Errorf("argmin = %v, want 7", x)
	}
	if fx > 1e-8 {
		t.Errorf("min value = %v, want ~0", fx)
	}
}

// Property: for random unimodal quadratics, golden-section recovers the
// peak (clamped to the interval) within tolerance.
func TestGoldenSectionMaxProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		peak := rng.Float64()*20 - 10
		lo := peak - 1 - rng.Float64()*10
		hi := peak + 1 + rng.Float64()*10
		f := func(x float64) float64 { return -(x - peak) * (x - peak) }
		x, _ := GoldenSectionMax(f, lo, hi, 1e-10)
		return math.Abs(x-peak) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSectionMaxInt(t *testing.T) {
	cases := []struct {
		name   string
		peak   int
		lo, hi int
	}{
		{"mid", 37, 0, 100},
		{"lo-edge", 0, 0, 100},
		{"hi-edge", 100, 0, 100},
		{"small-range", 3, 1, 5},
		{"single-point", 4, 4, 4},
		{"two-points", 9, 8, 9},
		{"large-range", 51234, 1, 100000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := func(m int) float64 {
				d := float64(m - tc.peak)
				return -d * d
			}
			x, fx := GoldenSectionMaxInt(f, tc.lo, tc.hi)
			if x != tc.peak {
				t.Errorf("argmax = %d, want %d", x, tc.peak)
			}
			if fx != 0 {
				t.Errorf("max = %v, want 0", fx)
			}
		})
	}
}

func TestGoldenSectionMaxIntSwapped(t *testing.T) {
	f := func(m int) float64 { return -math.Abs(float64(m - 12)) }
	x, _ := GoldenSectionMaxInt(f, 50, 0)
	if x != 12 {
		t.Errorf("argmax with swapped bounds = %d, want 12", x)
	}
}

// Property: integer golden-section is exact against brute force on random
// unimodal functions with plateaus.
func TestGoldenSectionMaxIntProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Intn(50)
		hi := lo + 1 + rng.Intn(2000)
		peak := lo + rng.Intn(hi-lo+1)
		scale := 0.5 + rng.Float64()*3
		f := func(m int) float64 {
			return -scale * math.Abs(float64(m-peak))
		}
		x, fx := GoldenSectionMaxInt(f, lo, hi)
		bx, bfx := scanMaxInt(f, lo, hi)
		//pollux:floateq-ok both sides evaluate f at the same integer argument, so equality is exact
		return x == bx && fx == bfx
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// A goodput-shaped objective: increasing throughput saturating in m times a
// decreasing efficiency term. Verifies the search handles the actual curve
// family it is used on.
func TestGoldenSectionGoodputShape(t *testing.T) {
	phi := 1200.0
	m0 := 128.0
	f := func(m float64) float64 {
		throughput := m / (0.01 + 0.0001*m) // saturating
		eff := (phi + m0) / (phi + m)
		return throughput * eff
	}
	x, _ := GoldenSectionMax(f, m0, 32768, 1e-6)
	// Check it is a true local max vs neighbours.
	if f(x) < f(x-1) || f(x) < f(x+1) {
		t.Errorf("x=%v is not a local max: f(x)=%v f(x-1)=%v f(x+1)=%v", x, f(x), f(x-1), f(x+1))
	}
	if x <= m0 || x >= 32768 {
		t.Errorf("expected interior maximum, got %v", x)
	}
}
