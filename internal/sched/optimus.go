package sched

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ga"
)

// Optimus implements the only-resource-adaptive baseline (Sec. 2.3,
// Sec. 5.2 "Optimus+Oracle"): it predicts each job's remaining time from a
// throughput model and greedily assigns GPUs by marginal gain, but never
// changes a job's batch size. Per the paper's methodology it uses the
// same throughput model as Pollux (Sec. 3.2) — fitted online by the job's
// agent — rather than the original parameter-server model, and is given an
// oracle for the exact number of remaining iterations.
type Optimus struct {
	gpusPerNode int
}

// NewOptimus creates the baseline. gpusPerNode is used to predict the
// node span of candidate GPU counts before placement.
func NewOptimus(gpusPerNode int) *Optimus {
	if gpusPerNode <= 0 {
		gpusPerNode = 4
	}
	return &Optimus{gpusPerNode: gpusPerNode}
}

func (o *Optimus) Name() string          { return "optimus" }
func (o *Optimus) AdaptsBatchSize() bool { return false }

// remaining predicts a job's remaining run time with g GPUs at its fixed
// batch size: oracle iterations times modeled iteration time.
func (o *Optimus) remaining(j JobView, g int) float64 {
	if g <= 0 {
		return inf
	}
	nodes := (g + o.gpusPerNode - 1) / o.gpusPerNode
	ti := j.Model.Params.TIter(core.Placement{GPUs: g, Nodes: nodes}, float64(j.UserBatch))
	return j.RemainingIters * ti
}

const inf = 1e18

// Schedule greedily allocates: every job first gets its minimum feasible
// GPU count (in submission order), then single GPUs go to whichever job's
// predicted remaining time improves the most, until GPUs run out or no
// job benefits.
func (o *Optimus) Schedule(v *ClusterView) ga.Matrix {
	n := len(v.Jobs)
	demands := make([]int, n)
	freeGPUs := v.TotalGPUs()

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return v.Jobs[order[a]].Submit < v.Jobs[order[b]].Submit
	})

	// Stage 1: minimum allocations so each job's fixed batch fits.
	for _, i := range order {
		min := v.Jobs[i].MinGPUs
		if min < 1 {
			min = 1
		}
		if freeGPUs >= min {
			demands[i] = min
			freeGPUs -= min
		}
	}

	// Stage 2: marginal-gain greedy.
	for freeGPUs > 0 {
		best, bestGain := -1, 0.0
		for i := range v.Jobs {
			if demands[i] == 0 {
				continue // could not even fit its minimum
			}
			gain := o.remaining(v.Jobs[i], demands[i]) - o.remaining(v.Jobs[i], demands[i]+1)
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		demands[best]++
		freeGPUs--
	}

	return packAll(v.Capacity, demands)
}
