package sched

import (
	"testing"
)

func TestClusterUtilityBounds(t *testing.T) {
	v := viewWith(4, 8, 4)
	p := NewPollux(PolluxOptions{Population: 20, Generations: 10}, 41)
	for _, nodes := range []int{1, 2, 4, 8} {
		u := p.ClusterUtility(v, nodes, 8)
		if u < 0 || u > 1+1e-9 {
			t.Errorf("utility(%d nodes) = %v, want in [0, 1]", nodes, u)
		}
	}
}

func TestClusterUtilityZeroCases(t *testing.T) {
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 42)
	empty := &ClusterView{Capacity: []int{4, 4}}
	if u := p.ClusterUtility(empty, 2, 5); u != 0 {
		t.Errorf("utility with no jobs = %v, want 0", u)
	}
	v := viewWith(2, 4, 4)
	if u := p.ClusterUtility(v, 0, 5); u != 0 {
		t.Errorf("utility with zero nodes = %v, want 0", u)
	}
}

func TestClusterUtilityDecreasesWithSize(t *testing.T) {
	// With few jobs, adding nodes dilutes utility: speedups saturate but
	// the GPU denominator keeps growing.
	v := viewWith(2, 8, 4)
	p := NewPollux(PolluxOptions{Population: 30, Generations: 15}, 43)
	small := p.ClusterUtility(v, 1, 15)
	large := p.ClusterUtility(v, 8, 15)
	if large >= small {
		t.Errorf("utility should dilute with size: 1 node %v vs 8 nodes %v", small, large)
	}
}

func TestClusterUtilityClampsToCapacity(t *testing.T) {
	v := viewWith(2, 4, 4)
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 44)
	// Asking for more nodes than the view has must not panic and must
	// behave like the full cluster.
	full := p.ClusterUtility(v, 4, 8)
	over := p.ClusterUtility(v, 100, 8)
	if over <= 0 || full <= 0 {
		t.Errorf("utilities = %v, %v, want > 0", full, over)
	}
}

func TestDesiredClusterNodesEmptyViewReturnsMin(t *testing.T) {
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 45)
	v := &ClusterView{Capacity: []int{4, 4, 4, 4}}
	if n := p.DesiredClusterNodes(v, 2, 4, 0.55, 0.75); n != 2 {
		t.Errorf("empty cluster desired nodes = %d, want min 2", n)
	}
}

func TestDesiredClusterNodesWithinBounds(t *testing.T) {
	v := viewWith(6, 8, 4)
	p := NewPollux(PolluxOptions{Population: 20, Generations: 10}, 46)
	n := p.DesiredClusterNodes(v, 2, 6, 0.55, 0.75)
	if n < 2 || n > 6 {
		t.Errorf("desired nodes = %d, want in [2, 6]", n)
	}
}
