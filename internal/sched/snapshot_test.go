package sched

import (
	"encoding/json"
	"reflect"
	"testing"
)

// runRounds runs n rounds against v, feeding each committed matrix back
// as the next round's current allocation, and returns the JSON-encoded
// matrices plus the per-round stats for bit-level comparison.
func runRounds(p *Pollux, v *ClusterView, n int) (mats []string, stats []RoundStats) {
	for r := 0; r < n; r++ {
		m := p.Schedule(v)
		v.Current = m
		b, _ := json.Marshal(m)
		mats = append(mats, string(b))
		stats = append(stats, p.LastRoundStats())
	}
	return mats, stats
}

// cloneView deep-copies a view so two schedulers can run the same rounds
// independently.
func cloneView(v *ClusterView) *ClusterView {
	out := &ClusterView{
		Now:      v.Now,
		Capacity: append([]int(nil), v.Capacity...),
		Jobs:     append([]JobView(nil), v.Jobs...),
		Current:  v.Current.Clone(),
	}
	return out
}

// snapshotModes are the option sets the round-trip is pinned under: the
// default full re-optimization, incremental dirty-set rounds, and the
// rack-hierarchical path, each at serial and parallel fitness workers.
var snapshotModes = []struct {
	name string
	opts PolluxOptions
}{
	{"flat", PolluxOptions{Population: 20, Generations: 10}},
	{"incremental", PolluxOptions{Population: 20, Generations: 10, Incremental: true, FullEvery: 3}},
	{"incremental-rack", PolluxOptions{Population: 20, Generations: 10, Incremental: true, FullEvery: 3, RackSize: 2}},
	{"flat-parallel", PolluxOptions{Population: 20, Generations: 10, Workers: 4}},
	{"incremental-rack-parallel", PolluxOptions{Population: 20, Generations: 10, Incremental: true, FullEvery: 3, RackSize: 2, Workers: 4}},
}

// TestSnapshotRoundTripBitIdentical is the scheduler-level checkpoint
// verifier: after any number of rounds, Snapshot → JSON → Restore into a
// fresh Pollux must leave the restored instance producing bit-identical
// matrices and round stats to the uninterrupted one, under every round
// mode and worker count.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, mode := range snapshotModes {
		t.Run(mode.name, func(t *testing.T) {
			const warm, tail = 4, 4
			v := viewWith(6, 8, 4)
			p := NewPollux(mode.opts, 17)
			runRounds(p, v, warm)

			// Serialize through actual JSON bytes, as the checkpoint file
			// does, so float and uint64 round-tripping is part of the test.
			raw, err := json.Marshal(p.Snapshot())
			if err != nil {
				t.Fatalf("marshal snapshot: %v", err)
			}
			var snap PolluxSnapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatalf("unmarshal snapshot: %v", err)
			}
			restored := NewPollux(mode.opts, 999) // seed overwritten by Restore
			if err := restored.Restore(&snap); err != nil {
				t.Fatalf("restore: %v", err)
			}

			vCont := cloneView(v)
			wantM, wantS := runRounds(p, v, tail)
			gotM, gotS := runRounds(restored, vCont, tail)
			if !reflect.DeepEqual(wantM, gotM) {
				t.Fatalf("restored scheduler diverged from uninterrupted run:\nwant %v\ngot  %v", wantM, gotM)
			}
			if !reflect.DeepEqual(wantS, gotS) {
				t.Fatalf("restored round stats diverged:\nwant %+v\ngot  %+v", wantS, gotS)
			}
		})
	}
}

// TestSnapshotShapeMismatchFailsLoudly pins the loud-failure contract for
// snapshots that do not match the receiving configuration.
func TestSnapshotShapeMismatchFailsLoudly(t *testing.T) {
	v := viewWith(4, 4, 4)
	p := NewPollux(PolluxOptions{Population: 15, Generations: 5}, 3)
	p.Schedule(v)
	s := p.Snapshot()

	corrupt := *s
	corrupt.Tables = append([]TableSnapshot(nil), s.Tables...)
	corrupt.Tables[0].Cells = corrupt.Tables[0].Cells[:1]
	if err := NewPollux(PolluxOptions{Population: 15, Generations: 5}, 3).Restore(&corrupt); err == nil {
		t.Fatal("restore with truncated table cells succeeded, want loud error")
	}

	corrupt2 := *s
	corrupt2.PrevJobs = s.PrevJobs[:1]
	if err := NewPollux(PolluxOptions{Population: 15, Generations: 5}, 3).Restore(&corrupt2); err == nil {
		t.Fatal("restore with misaligned population succeeded, want loud error")
	}
}
