package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/models"
)

// incOpts are the incremental-mode GA settings shared by these tests:
// big enough that the GA reliably finds good allocations on the small
// clusters used here, small enough to keep the suite fast. FullEvery -1
// keeps the cadence out of tests that exercise the incremental path
// itself.
func incOpts() PolluxOptions {
	return PolluxOptions{Population: 30, Generations: 30, Incremental: true, FullEvery: -1}
}

func TestIncrementalSkipsUnchangedRound(t *testing.T) {
	v := viewWith(6, 4, 4)
	p := NewPollux(incOpts(), 8)
	first := p.Schedule(v)
	if !p.LastRoundStats().Full {
		t.Fatal("first round must be a full re-optimization")
	}
	// Apply the allocation and re-schedule with nothing changed: the round
	// must carry the matrix forward without running any GA.
	v.Current = first
	second := p.Schedule(v)
	st := p.LastRoundStats()
	if !st.Skipped || st.Full {
		t.Fatalf("unchanged round not skipped: %+v", st)
	}
	if st.Sub != 0 || st.FitnessCalls != 0 {
		t.Errorf("skipped round did work: %+v", st)
	}
	if !second.Equal(first) {
		t.Errorf("skipped round changed the allocation:\n%v\nvs\n%v", first, second)
	}
}

func TestIncrementalDirtyOnModelChange(t *testing.T) {
	// Four single-node jobs on eight nodes: after the full round each job
	// sits alone, so refitting one model dirties only that job (plus at
	// most a co-located neighbor), never the whole cluster.
	v := viewWith(4, 8, 4)
	for i := range v.Jobs {
		v.Jobs[i].GPUCap = 4
	}
	p := NewPollux(incOpts(), 7)
	first := p.Schedule(v)
	v.Current = first

	v.Jobs[2].Model.Phi *= 2 // agent refit: the noise scale moved
	out := p.Schedule(v)
	st := p.LastRoundStats()
	if st.Full || st.Skipped {
		t.Fatalf("model change should give a partial round: %+v", st)
	}
	if st.Sub < 1 || st.Sub >= st.Jobs {
		t.Errorf("dirty set = %d of %d jobs, want a proper subset containing job 2", st.Sub, st.Jobs)
	}
	if !ga.Feasible(out, v.Capacity, true) {
		t.Fatalf("infeasible incremental allocation: %v", out)
	}
	// Clean rows carry forward verbatim: at most Sub rows may differ from
	// the applied allocation.
	changed := 0
	for j := range out {
		if !samePlacementRow(out[j], first[j]) {
			changed++
		}
	}
	if changed > st.Sub {
		t.Errorf("%d rows changed but only %d jobs were re-placed", changed, st.Sub)
	}
}

func TestIncrementalFullEveryCadence(t *testing.T) {
	v := viewWith(4, 4, 4)
	opts := incOpts()
	opts.FullEvery = 2
	p := NewPollux(opts, 9)
	var full []bool
	for r := 0; r < 6; r++ {
		v.Current = p.Schedule(v)
		full = append(full, p.LastRoundStats().Full)
	}
	// Round 0 is full (no committed state); every third round after two
	// incremental ones is forced full by the cadence.
	want := []bool{true, false, false, true, false, false}
	for r := range want {
		if full[r] != want[r] {
			t.Fatalf("round %d full=%v, want %v (cadence %v)", r, full[r], want[r], full)
		}
	}
}

func TestIncrementalChurnArrivalsAndDepartures(t *testing.T) {
	v := viewWith(6, 4, 4)
	p := NewPollux(incOpts(), 11)
	out := p.Schedule(v)

	// Job 2 finishes: drop its view row and allocation row.
	jobs := append(append([]JobView(nil), v.Jobs[:2]...), v.Jobs[3:]...)
	cur := append(append(ga.Matrix(nil), out[:2]...), out[3:]...)
	v2 := &ClusterView{Capacity: v.Capacity, Jobs: jobs, Current: cur}
	out2 := p.Schedule(v2)
	if len(out2) != 5 {
		t.Fatalf("allocation has %d rows, want 5", len(out2))
	}
	if !ga.Feasible(out2, v.Capacity, true) {
		t.Fatalf("infeasible allocation after departure: %v", out2)
	}

	// A new job arrives with free GPUs available: it must be part of the
	// round's dirty set and the result must stay feasible.
	arrival := v.Jobs[0]
	arrival.ID = 100
	jobs = append(append([]JobView(nil), jobs...), arrival)
	cur = append(append(ga.Matrix(nil), out2...), make([]int, len(v.Capacity)))
	v3 := &ClusterView{Capacity: v.Capacity, Jobs: jobs, Current: cur}
	out3 := p.Schedule(v3)
	st := p.LastRoundStats()
	if !ga.Feasible(out3, v.Capacity, true) {
		t.Fatalf("infeasible allocation after arrival: %v", out3)
	}
	if !st.Full && st.Sub < 1 {
		t.Errorf("arrival round re-placed no jobs: %+v", st)
	}
}

// TestIncrementalDeterministicAcrossWorkers pins the repo-wide
// determinism contract on the new paths: the same seed produces
// bit-identical allocation trajectories regardless of the fitness worker
// count, through full, incremental, and hierarchical rounds with churn.
func TestIncrementalDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []ga.Matrix {
		opts := incOpts()
		opts.Workers = workers
		opts.RackSize = 2 // 4 nodes = 2 racks: hierarchy on
		p := NewPollux(opts, 13)
		v := viewWith(5, 4, 4)
		var outs []ga.Matrix
		for r := 0; r < 4; r++ {
			out := p.Schedule(v)
			outs = append(outs, out)
			v.Current = out
			if r == 1 {
				v.Jobs[1].Model.Phi *= 1.5
			}
			if r == 2 {
				v.Jobs = v.Jobs[:4]
				v.Current = v.Current[:4]
			}
		}
		return outs
	}
	a, b := run(1), run(3)
	for r := range a {
		if !a[r].Equal(b[r]) {
			t.Fatalf("round %d diverges across worker counts:\n%v\nvs\n%v", r, a[r], b[r])
		}
	}
}

// objective scores an allocation with fresh speedup tables (no shared
// state with either scheduler under test): the mean per-job SPEEDUP, the
// Eqn. 14 objective with unit weights and no restart penalty.
func objective(v *ClusterView, m ga.Matrix) float64 {
	maxK := v.TotalGPUs()
	total := 0.0
	for i, j := range v.Jobs {
		tab := newSpeedupTable(j.Model, j.GPUCap, maxK, len(v.Capacity))
		pl := PlacementOf(m[i])
		total += tab.Speedup(pl.GPUs, pl.Nodes)
	}
	return total / float64(len(v.Jobs))
}

// TestIncrementalObjectiveParity is the sched-level half of the parity
// acceptance criterion: over a multi-round trajectory on the standard
// 16-node cluster shape with refits, a departure, and an arrival, the
// incremental+hierarchical scheduler's achieved objective stays within
// exhibit tolerance of independent full re-optimization.
func TestIncrementalObjectiveParity(t *testing.T) {
	capacity := make([]int, 16)
	for i := range capacity {
		capacity[i] = 4
	}
	baseJobs := func() []JobView { return viewWith(24, 16, 4).Jobs }

	type traj struct {
		p    *Pollux
		cur  map[int][]int
		objs []float64
	}
	incOptsH := incOpts()
	incOptsH.RackSize = 4
	trajs := []*traj{
		{p: NewPollux(PolluxOptions{Population: 30, Generations: 30}, 17), cur: map[int][]int{}},
		{p: NewPollux(incOptsH, 17), cur: map[int][]int{}},
	}

	jobs := baseJobs()
	sawPartial := false
	for r := 0; r < 6; r++ {
		for _, tr := range trajs {
			v := &ClusterView{Capacity: capacity, Jobs: jobs, Current: ga.NewMatrix(len(jobs), 16)}
			for i, j := range jobs {
				if row, ok := tr.cur[j.ID]; ok {
					copy(v.Current[i], row)
				}
			}
			out := tr.p.Schedule(v)
			if !ga.Feasible(out, capacity, true) {
				t.Fatalf("%s round %d infeasible: %v", tr.p.Name(), r, out)
			}
			tr.cur = map[int][]int{}
			for i, j := range jobs {
				tr.cur[j.ID] = append([]int(nil), out[i]...)
			}
			tr.objs = append(tr.objs, objective(v, out))
		}
		st := trajs[1].p.LastRoundStats()
		if !st.Full && !st.Skipped {
			sawPartial = true
		}
		// Deterministic churn between rounds, shared by both trajectories.
		jobs[(3*r)%len(jobs)].Model.Phi *= 1.25
		if r == 2 {
			jobs = append(append([]JobView(nil), jobs[:5]...), jobs[6:]...)
		}
		if r == 3 {
			nj := viewWith(1, 16, 4).Jobs[0]
			nj.ID = 200
			jobs = append(jobs, nj)
		}
	}
	if !sawPartial {
		t.Fatal("incremental trajectory never took a partial round; parity check is vacuous")
	}
	sumFull, sumInc := 0.0, 0.0
	for r := range trajs[0].objs {
		full, inc := trajs[0].objs[r], trajs[1].objs[r]
		sumFull += full
		sumInc += inc
		if inc < 0.8*full {
			t.Errorf("round %d: incremental objective %.4f below 80%% of full %.4f", r, inc, full)
		}
	}
	if sumInc < 0.9*sumFull {
		t.Errorf("trajectory objective: incremental %.4f < 90%% of full %.4f", sumInc, sumFull)
	}
}

func TestHierarchicalScheduleFeasible(t *testing.T) {
	v := viewWith(12, 16, 4)
	opts := incOpts()
	opts.RackSize = 4
	p := NewPollux(opts, 19)
	m := p.Schedule(v)
	if !ga.Feasible(m, v.Capacity, true) {
		t.Fatalf("infeasible hierarchical allocation: %v", m)
	}
	st := p.LastRoundStats()
	if st.Racks == 0 {
		t.Error("hierarchical round refined no racks")
	}
	total, allocated := 0, 0
	for j := range m {
		k := m.JobGPUs(j)
		total += k
		if k > 0 {
			allocated++
		}
	}
	if total < 48 {
		t.Errorf("only %d of 64 GPUs allocated", total)
	}
	if allocated < 8 {
		t.Errorf("only %d of 12 jobs running", allocated)
	}
}

// TestHierarchicalCutsFitnessWork checks the mechanism behind the mega
// exhibit's headline: rack decomposition scores far fewer matrix cells
// per round than the flat GA at the same settings. (The >= 5x acceptance
// bar is measured at 512 nodes by the mega exhibit; at 32 nodes the gap
// is smaller but must already be visible.)
func TestHierarchicalCutsFitnessWork(t *testing.T) {
	v := viewWith(24, 32, 4)
	flat := NewPollux(PolluxOptions{Population: 30, Generations: 30}, 23)
	flat.Schedule(v)
	flatCells := flat.LastRoundStats().FitnessCells

	opts := incOpts()
	opts.RackSize = 8
	hier := NewPollux(opts, 23)
	hier.Schedule(viewWith(24, 32, 4))
	hierCells := hier.LastRoundStats().FitnessCells

	if flatCells == 0 || hierCells == 0 {
		t.Fatalf("fitness work not counted: flat %d, hier %d", flatCells, hierCells)
	}
	if hierCells*2 > flatCells {
		t.Errorf("hierarchical round scored %d cells, flat %d; want at least 2x fewer", hierCells, flatCells)
	}
}

func TestPruneTablesLargeNSparseIDs(t *testing.T) {
	p := NewPollux(PolluxOptions{}, 1)
	model := models.ByName("resnet18").GoodputModel(0.5)
	const n = 5000
	for i := 0; i < n; i++ {
		p.tables[i*97+13] = newSpeedupTable(model, 4, 4, 2)
	}
	// Every 7th job is still in the view; the rest finished.
	var live []JobView
	for i := 0; i < n; i += 7 {
		live = append(live, JobView{ID: i*97 + 13})
	}
	p.pruneTables(live)
	if len(p.tables) != len(live) {
		t.Fatalf("%d tables survive, want %d", len(p.tables), len(live))
	}
	for _, j := range live {
		if _, ok := p.tables[j.ID]; !ok {
			t.Fatalf("table for live job %d evicted", j.ID)
		}
	}
}

func TestRemapSeedsSparseIDsBitStable(t *testing.T) {
	p := NewPollux(PolluxOptions{}, 1)
	nodes := 6
	// Carried population rows are tagged with ID-derived patterns so any
	// misalignment is visible.
	prevIDs := []int{907, 13, 500000, 42}
	rowFor := func(id int) []int {
		row := make([]int, nodes)
		for n := range row {
			row[n] = (id + n) % 3
		}
		return row
	}
	p.prevJobs = prevIDs
	for pi := 0; pi < 2; pi++ {
		m := make(ga.Matrix, len(prevIDs))
		for i, id := range prevIDs {
			m[i] = rowFor(id + pi)
		}
		p.prevPop = append(p.prevPop, m)
	}

	// New view: shuffled order, one departure (907), one arrival (999999).
	jobs := []JobView{{ID: 500000}, {ID: 42}, {ID: 999999}, {ID: 13}}
	seeds := p.remapSeeds(jobs, nodes)
	if len(seeds) != 2 {
		t.Fatalf("%d seeds, want 2", len(seeds))
	}
	zero := make([]int, nodes)
	for pi, seed := range seeds {
		for i, j := range jobs {
			want := zero
			if j.ID != 999999 {
				want = rowFor(j.ID + pi)
			}
			if !samePlacementRow(seed[i], want) {
				t.Errorf("seed %d job %d row = %v, want %v", pi, j.ID, seed[i], want)
			}
		}
	}

	// subSeeds must project the same rows onto a sub-problem.
	v := &ClusterView{Capacity: make([]int, nodes), Jobs: jobs}
	sub := []int{0, 3} // IDs 500000 and 13
	subSeeds := p.subSeeds(v, sub)
	for pi, seed := range subSeeds {
		for si, i := range sub {
			if want := rowFor(jobs[i].ID + pi); !samePlacementRow(seed[si], want) {
				t.Errorf("subSeed %d job %d row = %v, want %v", pi, jobs[i].ID, seed[si], want)
			}
		}
	}
}

func TestSpeedupTableTriangular(t *testing.T) {
	model := models.ByName("resnet18").GoodputModel(0.5)
	tab := newSpeedupTable(model, 10, 16, 4)
	if tab.kCap != 10 {
		t.Fatalf("kCap = %d, want 10 (min of maxK and gpuCap)", tab.kCap)
	}
	for _, c := range []struct{ k, n int }{
		{11, 1}, // beyond the exploration cap
		{2, 3},  // more nodes than GPUs
		{3, 5},  // more nodes than the cluster has
	} {
		if s := tab.Speedup(c.k, c.n); s != 0 {
			t.Errorf("Speedup(%d, %d) = %v, want 0", c.k, c.n, s)
		}
	}
	// Stored values match the direct model computation bit for bit.
	_, denom, ok := model.OptimalBatch(core.SingleGPU)
	if !ok {
		t.Fatal("single-GPU batch infeasible")
	}
	_, num, ok := model.OptimalBatch(core.Placement{GPUs: 4, Nodes: 2})
	if !ok {
		t.Fatal("(4, 2) batch infeasible")
	}
	//pollux:floateq-ok the triangular layout must store the exact same value the dense one did
	if got, want := tab.Speedup(4, 2), num/denom; got != want {
		t.Errorf("Speedup(4, 2) = %v, want %v", got, want)
	}
}

func TestSpeedupRack(t *testing.T) {
	model := models.ByName("resnet18").GoodputModel(0.5)
	tab := newSpeedupTable(model, 16, 16, 8)
	tab.ensureRack(2)
	tab.ensureRack(2) // idempotent

	//pollux:floateq-ok a single-rack span must reduce to the identical two-tier cell
	if got, want := tab.SpeedupRack(8, 2, 1), tab.Speedup(8, 2); got != want {
		t.Errorf("SpeedupRack(8, 2, 1) = %v, want flat %v", got, want)
	}
	flat := tab.Speedup(8, 4)
	cross := tab.SpeedupRack(8, 4, 2)
	if cross <= 0 {
		t.Fatalf("cross-rack speedup = %v, want > 0", cross)
	}
	if cross >= flat {
		t.Errorf("cross-rack speedup %v not below intra-rack %v despite 2x sync penalty", cross, flat)
	}
	if s := tab.SpeedupRack(8, 4, 5); s != 0 {
		t.Errorf("more racks than nodes should score 0, got %v", s)
	}
}
