package sched

// Incremental and rack-hierarchical scheduling rounds for PolluxSched.
//
// The paper's scheduler re-optimizes every job's placement with a fresh
// cluster-wide GA each interval; at the 16–64 node exhibit scale that is
// fine, but each round costs O(population × generations × jobs × nodes)
// fitness cells and the same order of rng draws, which dominates wall
// clock at the 512–1024 node scale. Two observations make rounds cheap:
//
//  1. Incremental rounds. Between rounds most jobs are unchanged: the
//     committed row, the fitted model, and the demand of a queued or
//     steadily-running job are all the same as last interval, and a row
//     that does not move contributes a constant to the Eqn. 14 objective.
//     So each round computes a dirty set — jobs whose model, phase, or
//     demand changed since the last committed matrix, their placement
//     neighbors, and a bounded batch of queued jobs competing for freed
//     capacity — and re-places only those against the residual capacity,
//     carrying every clean row forward verbatim. A FullEvery cadence
//     forces periodic full re-optimizations so incremental never drifts
//     far from the global optimum.
//
//  2. Hierarchical decomposition. With racks of RackSize nodes, a coarse
//     GA assigns each re-placed job GPU counts per rack (racks as
//     super-nodes, priced by the Sec. 3.2 rack-locality extension via
//     speedupTable.SpeedupRack), then an independent small GA per rack
//     refines node placements. The search space drops from O(nodes) to
//     O(racks) + O(nodes/rack) per matrix row.
//
// Both paths are opt-in (PolluxOptions.Incremental / RackSize): the
// default full re-optimization stays bit-identical to the historical
// scheduler, which every fixed-seed baseline trace depends on.

import (
	"repro/internal/core"
	"repro/internal/ga"
)

// jobSig is the per-job change signature for dirty detection: a refit
// (Params or φt move), an exploration-cap change, or a demand change all
// alter it.
type jobSig struct {
	model   core.Model
	gpuCap  int
	minGPUs int
}

// incState is the cross-round dirty-set state: the committed matrix and
// job signatures as of the last Schedule call, keyed by stable job ID.
type incState struct {
	ids   []int
	sigs  []jobSig
	rows  ga.Matrix   // committed rows aligned with ids
	index map[int]int // job ID → position in ids (lookups only)
	cap   []int
}

// seedCellBudget bounds the matrix cells carried over as GA seeds after
// an incremental round: at mega scale a full population of job × node
// matrices is hundreds of MB, so carryover degrades gracefully toward
// champion-only as matrices grow.
const seedCellBudget = 16 << 20

// scheduleIncremental is Schedule for Incremental/RackSize mode: decide
// full vs. incremental, solve, compose, and commit the dirty-set state.
func (p *Pollux) scheduleIncremental(v *ClusterView) ga.Matrix {
	nJobs := len(v.Jobs)
	nodes := len(v.Capacity)

	full := p.inc == nil || !sameCapacity(p.inc.cap, v.Capacity) ||
		v.Current == nil || len(v.Current) != nJobs ||
		(p.opts.FullEvery > 0 && p.sinceFull >= p.opts.FullEvery)

	if !full {
		sub := p.dirtySet(v)
		switch {
		case sub == nil:
			full = true // dirty majority: a full round does less redundant work
		case len(sub) == 0:
			// Nothing changed anywhere: carry the allocation forward
			// without running any GA.
			p.lastStats.Full = false
			p.lastStats.Skipped = true
			p.lastStats.Sub = 0
			out := v.Current.Clone()
			p.commitState(v, out)
			p.sinceFull++
			return out
		default:
			p.lastStats.Full = false
			p.lastStats.Sub = len(sub)
			if out := p.solveSub(v, sub); out != nil {
				p.commitState(v, out)
				p.sinceFull++
				return out
			}
			// The composed matrix failed the defensive feasibility
			// check; fall through to a full round.
			full = true
		}
	}

	p.sinceFull = 0
	p.lastStats.Full = true
	p.lastStats.Skipped = false
	p.lastStats.Sub = nJobs
	var out ga.Matrix
	if p.hierarchical(nodes) {
		all := make([]int, nJobs)
		for i := range all {
			all[i] = i
		}
		out = p.solveSub(v, all)
	}
	if out == nil {
		out = p.scheduleFlat(v)
	}
	p.commitState(v, out)
	return out
}

// hierarchical reports whether rack decomposition applies: it needs at
// least two racks to decompose.
func (p *Pollux) hierarchical(nodes int) bool {
	return p.opts.RackSize > 0 && nodes >= 2*p.opts.RackSize
}

func sameCapacity(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// commitState records the committed matrix and job signatures for the
// next round's dirty-set computation. The matrix is cloned: the caller
// owns the returned allocation.
func (p *Pollux) commitState(v *ClusterView, out ga.Matrix) {
	jobs := v.Jobs
	st := &incState{
		ids:   make([]int, len(jobs)),
		sigs:  make([]jobSig, len(jobs)),
		rows:  out.Clone(),
		index: make(map[int]int, len(jobs)),
		cap:   append([]int(nil), v.Capacity...),
	}
	for i, j := range jobs {
		st.ids[i] = j.ID
		st.sigs[i] = jobSig{model: j.Model, gpuCap: j.GPUCap, minGPUs: j.MinGPUs}
		st.index[j.ID] = i
	}
	p.inc = st
}

// dirtySet returns the view indices to re-place this round, in view
// order: jobs whose signature changed (agent refit, demand change), jobs
// whose live allocation no longer matches the committed row (restart or
// external change), new jobs, clean jobs with GPUs on affected nodes
// (placement neighbors of changes and departures, one hop), and up to
// QueuedPerRound clean queued jobs competing for freed capacity. An
// empty set means nothing changed at all. A nil return means the dirty
// jobs are the majority, so the caller should run a full round instead.
func (p *Pollux) dirtySet(v *ClusterView) []int {
	st := p.inc
	jobs := v.Jobs
	dirty := make([]bool, len(jobs))
	affected := make([]bool, len(v.Capacity))
	anyChange := false
	markRow := func(row []int) {
		for n, g := range row {
			if g > 0 {
				affected[n] = true
			}
		}
	}
	live := make(map[int]bool, len(jobs))
	for i, j := range jobs {
		live[j.ID] = true
		pi, ok := st.index[j.ID]
		switch {
		case !ok:
			dirty[i] = true // arrival
		case st.sigs[pi] != (jobSig{model: j.Model, gpuCap: j.GPUCap, minGPUs: j.MinGPUs}):
			dirty[i] = true // refit or demand change
			markRow(st.rows[pi])
		case !samePlacementRow(v.Current[i], st.rows[pi]):
			dirty[i] = true // restarted or moved outside the scheduler
			markRow(st.rows[pi])
		}
		if dirty[i] {
			anyChange = true
			markRow(v.Current[i])
		}
	}
	// Departed jobs free their nodes for neighbors to claim.
	for pi, id := range st.ids {
		if !live[id] {
			anyChange = true
			markRow(st.rows[pi])
		}
	}
	if !anyChange {
		return []int{}
	}
	sub := make([]int, 0, len(jobs))
	queued := 0
	for i := range jobs {
		if !dirty[i] {
			if PlacementOf(v.Current[i]).GPUs == 0 {
				// Clean queued job: a bounded batch per round may compete
				// for the capacity this round frees.
				if p.opts.QueuedPerRound < 0 || queued < p.opts.QueuedPerRound {
					queued++
					dirty[i] = true
				}
			} else {
				for n, g := range v.Current[i] {
					if g > 0 && affected[n] {
						dirty[i] = true // placement neighbor
						break
					}
				}
			}
		}
		if dirty[i] {
			sub = append(sub, i)
		}
	}
	if 4*len(sub) > 3*len(jobs) {
		return nil
	}
	return sub
}

// solveSub re-places the sub jobs (view indices, ascending) against the
// residual capacity left by the clean rows, which carry forward
// verbatim; a full round passes every index. Clean rows contribute a
// constant to Eqn. 14, so optimizing the sub rows alone optimizes the
// full objective over this round's allowed moves. Returns the composed
// full matrix, or nil if it fails the defensive feasibility check.
func (p *Pollux) solveSub(v *ClusterView, sub []int) ga.Matrix {
	jobs := v.Jobs
	nodes := len(v.Capacity)
	inSub := make([]bool, len(jobs))
	for _, i := range sub {
		inSub[i] = true
	}

	// Residual capacity and interference context from the clean rows.
	residual := append([]int(nil), v.Capacity...)
	distBlocked := make([]bool, nodes)
	for i := range jobs {
		if inSub[i] || v.Current == nil || i >= len(v.Current) {
			continue
		}
		row := v.Current[i]
		span := 0
		for _, g := range row {
			if g > 0 {
				span++
			}
		}
		for n, g := range row {
			if g > 0 {
				residual[n] -= g
				if span > 1 {
					distBlocked[n] = true
				}
			}
		}
	}
	for n := range residual {
		if residual[n] < 0 {
			residual[n] = 0 // defensive: live matrix over capacity
		}
	}

	tables, weights, sumW := p.roundTables(v)

	// Current rows and placements of the sub jobs, for restart penalties
	// and seeding.
	cur := make(ga.Matrix, len(sub))
	curPl := make([]core.Placement, len(sub))
	zero := make([]int, nodes)
	for si, i := range sub {
		if v.Current != nil && i < len(v.Current) {
			cur[si] = v.Current[i]
		} else {
			cur[si] = zero
		}
		curPl[si] = PlacementOf(cur[si])
	}

	var rows ga.Matrix
	var pop []ga.Matrix
	if p.hierarchical(nodes) {
		rows = p.solveHier(v, sub, residual, distBlocked, tables, weights, sumW, cur, curPl)
	} else {
		rows, pop = p.solveFlatSub(v, sub, residual, distBlocked, tables, weights, sumW, cur, curPl)
	}

	// Compose: clean rows verbatim, sub rows from the solver.
	compose := func(subRows ga.Matrix) ga.Matrix {
		out := ga.NewMatrix(len(jobs), nodes)
		for i := range jobs {
			if !inSub[i] && v.Current != nil && i < len(v.Current) {
				copy(out[i], v.Current[i])
			}
		}
		for si, i := range sub {
			copy(out[i], subRows[si])
		}
		return out
	}
	out := compose(rows)
	if !feasibleComposed(out, v.Capacity, !p.opts.DisableInterferenceAvoidance) {
		return nil
	}

	// Seed carryover: compose the leading sub-population members (best
	// first) into full matrices for the next round, within the cell
	// budget — at least the champion always carries.
	keep := 1
	if cells := len(jobs) * nodes; cells > 0 {
		keep = max(1, seedCellBudget/cells)
	}
	carried := []ga.Matrix{out.Clone()}
	for _, m := range pop {
		if len(carried) >= keep {
			break
		}
		if m.Equal(rows) {
			continue // the champion is already carried
		}
		carried = append(carried, compose(m))
	}
	p.prevPop = carried
	p.prevJobs = make([]int, len(jobs))
	for i, j := range jobs {
		p.prevJobs[i] = j.ID
	}
	return out
}

// solveFlatSub runs one GA over the sub rows × all nodes. Used when rack
// decomposition is off (or the cluster is below two racks); the win over
// a full round is the smaller row count. Returns the best sub-row matrix
// and the GA's final population (borrowed, sorted best-first).
func (p *Pollux) solveFlatSub(v *ClusterView, sub []int, residual []int, distBlocked []bool,
	tables []*speedupTable, weights []float64, sumW float64, cur ga.Matrix, curPl []core.Placement) (ga.Matrix, []ga.Matrix) {
	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for si, i := range sub {
			pl := PlacementOf(m[si])
			s := tables[i].Speedup(pl.GPUs, pl.Nodes)
			if curPl[si].GPUs > 0 && !samePlacementRow(m[si], cur[si]) {
				s -= p.opts.RestartPenalty
			}
			total += weights[i] * s
		}
		return total / sumW
	}
	prob := ga.Problem{
		Capacity:              residual,
		Jobs:                  len(sub),
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
		DistBlocked:           distBlocked,
	}
	seeds := append([]ga.Matrix{cur}, p.subSeeds(v, sub)...)
	g := ga.New(prob, ga.Options{
		Population:     p.opts.Population,
		Workers:        p.opts.Workers,
		SparseMutation: true,
	}, p.rng, seeds)
	best, _ := g.Run(p.opts.Generations)
	p.addStats(g.Stats())
	return best.Clone(), g.Population()
}

// subSeeds projects the carried population onto the sub jobs' rows, by
// job ID as in remapSeeds, so seeds survive arrivals, departures, and
// sparse or reordered IDs.
func (p *Pollux) subSeeds(v *ClusterView, sub []int) []ga.Matrix {
	if p.prevPop == nil {
		return nil
	}
	nodes := len(v.Capacity)
	prevIndex := make(map[int]int, len(p.prevJobs))
	for i, id := range p.prevJobs {
		prevIndex[id] = i
	}
	seeds := make([]ga.Matrix, 0, len(p.prevPop))
	for _, prev := range p.prevPop {
		m := ga.NewMatrix(len(sub), nodes)
		for si, i := range sub {
			if pi, ok := prevIndex[v.Jobs[i].ID]; ok && pi < len(prev) && len(prev[pi]) == nodes {
				copy(m[si], prev[pi])
			}
		}
		seeds = append(seeds, m)
	}
	return seeds
}

// feasibleComposed is ga.Feasible with per-job spans precomputed once:
// the generic check recomputes JobNodes per (node, job) pair, which is
// O(jobs × nodes²) — minutes at 512 nodes × 10k jobs, where this pass
// is O(jobs × nodes).
func feasibleComposed(m ga.Matrix, capacity []int, avoidance bool) bool {
	usage := make([]int, len(capacity))
	span := make([]int, len(m))
	for j := range m {
		for n, g := range m[j] {
			if g > 0 {
				usage[n] += g
				span[j]++
			}
		}
	}
	for n := range capacity {
		if usage[n] > capacity[n] {
			return false
		}
	}
	if avoidance {
		distOn := make([]int, len(capacity))
		for j := range m {
			if span[j] <= 1 {
				continue
			}
			for n, g := range m[j] {
				if g > 0 {
					distOn[n]++
					if distOn[n] > 1 {
						return false
					}
				}
			}
		}
	}
	return true
}

// solveHier is the two-level solve: a coarse GA assigns each sub job GPU
// counts per rack, then an independent small GA per rack refines node
// placements within the coarse assignment. Returns the sub-row matrix
// (len(sub) × nodes).
func (p *Pollux) solveHier(v *ClusterView, sub []int, residual []int, distBlocked []bool,
	tables []*speedupTable, weights []float64, sumW float64, cur ga.Matrix, curPl []core.Placement) ga.Matrix {
	nodes := len(v.Capacity)
	size := p.opts.RackSize
	racks := (nodes + size - 1) / size

	rackCap := make([]int, racks)   // residual GPUs per rack
	rackNodes := make([]int, racks) // nodes per rack
	rackMaxPer := make([]int, racks)
	for n := 0; n < nodes; n++ {
		r := n / size
		rackCap[r] += residual[n]
		rackNodes[r]++
		if v.Capacity[n] > rackMaxPer[r] {
			rackMaxPer[r] = v.Capacity[n]
		}
	}

	// The coarse fitness fans out over workers; allocate the cross-rack
	// table layers serially first.
	for _, i := range sub {
		tables[i].ensureRack(p.opts.RackPenalty)
	}

	// estNodes estimates the nodes g GPUs occupy in rack r when packed
	// densely (the refinement pass prefers dense packings, so this is
	// the span the coarse pass should price).
	estNodes := func(r, g int) int {
		if g <= 0 {
			return 0
		}
		per := rackMaxPer[r]
		if per <= 0 {
			return rackNodes[r]
		}
		return min((g+per-1)/per, rackNodes[r])
	}

	// Current coarse assignment: sub jobs' rows aggregated by rack.
	curCoarse := ga.NewMatrix(len(sub), racks)
	for si := range sub {
		for n, g := range cur[si] {
			if g > 0 {
				curCoarse[si][n/size] += g
			}
		}
	}

	coarseFitness := func(m ga.Matrix) float64 {
		total := 0.0
		for si, i := range sub {
			k, nd, spanned := 0, 0, 0
			for r, g := range m[si] {
				if g > 0 {
					k += g
					nd += estNodes(r, g)
					spanned++
				}
			}
			s := tables[i].SpeedupRack(k, nd, spanned)
			if curPl[si].GPUs > 0 && !samePlacementRow(m[si], curCoarse[si]) {
				s -= p.opts.RestartPenalty
			}
			total += weights[i] * s
		}
		return total / sumW
	}
	// Interference is a node-granularity constraint; at rack granularity
	// it would forbid valid placements, so the coarse pass skips it and
	// the refinement passes enforce it.
	cg := ga.New(ga.Problem{
		Capacity: rackCap,
		Jobs:     len(sub),
		Fitness:  coarseFitness,
	}, ga.Options{
		Population:     p.opts.Population,
		Workers:        p.opts.Workers,
		SparseMutation: true,
	}, p.rng, []ga.Matrix{curCoarse})
	coarse, _ := cg.Run(p.opts.Generations)
	p.addStats(cg.Stats())

	// Per-job cross-rack aggregates fixed by the coarse assignment.
	totalK := make([]int, len(sub))
	spannedRacks := make([]int, len(sub))
	estSpan := make([]int, len(sub)) // estimated nodes across all racks
	for si := range sub {
		for r, g := range coarse[si] {
			if g > 0 {
				totalK[si] += g
				spannedRacks[si]++
				estSpan[si] += estNodes(r, g)
			}
		}
	}

	rows := ga.NewMatrix(len(sub), nodes)
	refined := 0
	for r := 0; r < racks; r++ {
		if p.refineRack(v, sub, r, coarse, cur, curPl, curCoarse, residual, distBlocked,
			tables, weights, sumW, totalK, spannedRacks, estSpan, estNodes, rows) {
			refined++
		}
	}
	p.lastStats.Racks = refined
	return rows
}

// refineRack runs the within-rack GA for rack r over the jobs the coarse
// pass assigned GPUs there, writing their node placements into rows.
// Reports whether the rack had any members to refine.
func (p *Pollux) refineRack(v *ClusterView, sub []int, r int, coarse, cur ga.Matrix,
	curPl []core.Placement, curCoarse ga.Matrix, residual []int, distBlocked []bool,
	tables []*speedupTable, weights []float64, sumW float64,
	totalK, spannedRacks, estSpan []int, estNodes func(int, int) int, rows ga.Matrix) bool {
	size := p.opts.RackSize
	nodes := len(v.Capacity)
	n0 := r * size
	n1 := min(n0+size, nodes)
	width := n1 - n0

	var members []int // indices into sub
	for si := range sub {
		if coarse[si][r] > 0 {
			members = append(members, si)
		}
	}
	if len(members) == 0 {
		return false
	}

	localCap := residual[n0:n1]
	blocked := distBlocked[n0:n1]

	// Fixed cross-rack context per member: GPUs and estimated nodes the
	// coarse assignment places in other racks, and whether those other-
	// rack shares differ from the current allocation (which forces a
	// restart regardless of the local outcome).
	otherK := make([]int, len(members))
	extraNodes := make([]int, len(members))
	otherRacks := make([]int, len(members))
	otherChanged := make([]bool, len(members))
	curLocal := make(ga.Matrix, len(members))
	for mi, si := range members {
		local := coarse[si][r]
		otherK[mi] = totalK[si] - local
		extraNodes[mi] = estSpan[si] - estNodes(r, local)
		otherRacks[mi] = spannedRacks[si] - 1
		for rr := range coarse[si] {
			if rr != r && coarse[si][rr] != curCoarse[si][rr] {
				otherChanged[mi] = true
				break
			}
		}
		curLocal[mi] = cur[si][n0:n1]
	}

	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for mi, si := range members {
			localK, localN := 0, 0
			for _, g := range m[mi] {
				if g > 0 {
					localK += g
					localN++
				}
			}
			k := localK + otherK[mi]
			span := localN + extraNodes[mi]
			rk := otherRacks[mi]
			if localK > 0 {
				rk++
			}
			s := tables[sub[si]].SpeedupRack(k, span, rk)
			if curPl[si].GPUs > 0 && (otherChanged[mi] || !samePlacementRow(m[mi], curLocal[mi])) {
				s -= p.opts.RestartPenalty
			}
			total += weights[sub[si]] * s
		}
		return total / sumW
	}

	// Seeds: the current local segments, and the coarse shares packed
	// densely onto the rack's freest nodes.
	seedCur := make(ga.Matrix, len(members))
	for mi := range members {
		seedCur[mi] = curLocal[mi]
	}
	seedPack := ga.NewMatrix(len(members), width)
	free := append([]int(nil), localCap...)
	for mi, si := range members {
		if row := packJob(free, coarse[si][r]); row != nil {
			copy(seedPack[mi], row)
		}
	}

	rg := ga.New(ga.Problem{
		Capacity:              localCap,
		Jobs:                  len(members),
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
		DistBlocked:           blocked,
		ExtraSpan:             extraNodes,
	}, ga.Options{
		Population:     p.opts.RefinePop,
		Workers:        p.opts.Workers,
		SparseMutation: true,
	}, p.rng, []ga.Matrix{seedCur, seedPack})
	best, _ := rg.Run(p.opts.RefineGens)
	p.addStats(rg.Stats())

	for mi, si := range members {
		copy(rows[si][n0:n1], best[mi])
	}
	return true
}
