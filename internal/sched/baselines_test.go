package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/models"
)

func TestTiresiasQueueOf(t *testing.T) {
	tr := NewTiresias()
	if q := tr.queueOf(0); q != 0 {
		t.Errorf("queue of new job = %d, want 0", q)
	}
	if q := tr.queueOf(2 * 3600); q != 1 {
		t.Errorf("queue of 2 GPU-h job = %d, want 1", q)
	}
	if q := tr.queueOf(100 * 3600); q != 2 {
		t.Errorf("queue of 100 GPU-h job = %d, want 2", q)
	}
}

func TestTiresiasAllocatesRequestedGPUs(t *testing.T) {
	v := viewWith(3, 4, 4)
	v.Jobs[0].UserGPUs = 4
	v.Jobs[1].UserGPUs = 8
	v.Jobs[2].UserGPUs = 2
	tr := NewTiresias()
	m := tr.Schedule(v)
	for j, want := range []int{4, 8, 2} {
		if got := m.JobGPUs(j); got != want {
			t.Errorf("job %d got %d GPUs, want exactly %d", j, got, want)
		}
	}
	if !ga.Feasible(m, v.Capacity, false) {
		t.Error("infeasible")
	}
}

func TestTiresiasPrioritizesLowAttainedService(t *testing.T) {
	// 5 jobs each wanting 4 GPUs; only 16 GPUs. Jobs with less attained
	// service must win.
	v := viewWith(5, 4, 4)
	for i := range v.Jobs {
		v.Jobs[i].UserGPUs = 4
	}
	v.Jobs[0].GPUTime = 20 * 3600 // bottom queue
	v.Jobs[1].GPUTime = 5 * 3600  // middle queue
	// Jobs 2..4 are fresh (top queue).
	tr := NewTiresias()
	m := tr.Schedule(v)
	for _, j := range []int{2, 3, 4} {
		if m.JobGPUs(j) != 4 {
			t.Errorf("fresh job %d not scheduled", j)
		}
	}
	if m.JobGPUs(1) != 4 {
		t.Error("middle-queue job should take the last slot")
	}
	if m.JobGPUs(0) != 0 {
		t.Error("bottom-queue job should be preempted")
	}
}

func TestTiresiasSnapshotOrderWithinQueue(t *testing.T) {
	// Within a queue the snapshot order decides. Deployments present
	// snapshots in submission order (so this is FIFO by default), and an
	// admit front end can reorder the snapshot to impose its own priority.
	v := viewWith(2, 1, 4) // only 4 GPUs
	v.Jobs[0].UserGPUs = 4
	v.Jobs[0].Submit = 50
	v.Jobs[1].UserGPUs = 4
	v.Jobs[1].Submit = 100
	tr := NewTiresias()
	m := tr.Schedule(v)
	if m.JobGPUs(0) != 4 || m.JobGPUs(1) != 0 {
		t.Errorf("first snapshot row should win: %v", m)
	}

	// Reorder the snapshot (as the SLO priority stage would): the new
	// first row wins even though it submitted later.
	v.Jobs[0], v.Jobs[1] = v.Jobs[1], v.Jobs[0]
	m = tr.Schedule(v)
	if m.JobGPUs(0) != 4 || m.JobGPUs(1) != 0 {
		t.Errorf("reordered snapshot should put the new first row ahead: %v", m)
	}
}

func TestTiresiasBackfills(t *testing.T) {
	v := viewWith(2, 1, 4)
	v.Jobs[0].UserGPUs = 8 // can never fit on 4 GPUs
	v.Jobs[1].UserGPUs = 2
	tr := NewTiresias()
	m := tr.Schedule(v)
	if m.JobGPUs(0) != 0 {
		t.Error("oversized job should be skipped")
	}
	if m.JobGPUs(1) != 2 {
		t.Error("small job should backfill")
	}
}

func TestOptimusGivesEveryoneMinimumFirst(t *testing.T) {
	v := viewWith(4, 4, 4)
	for i := range v.Jobs {
		v.Jobs[i].MinGPUs = 2
	}
	o := NewOptimus(4)
	m := o.Schedule(v)
	for j := range m {
		if m.JobGPUs(j) < 2 {
			t.Errorf("job %d got %d GPUs, want >= its minimum 2", j, m.JobGPUs(j))
		}
	}
	if !ga.Feasible(m, v.Capacity, false) {
		t.Error("infeasible")
	}
}

func TestOptimusUsesWholeClusterWhenBeneficial(t *testing.T) {
	// At a large fixed batch, resnet18 keeps gaining throughput from
	// more GPUs, so the greedy loop hands out the whole cluster.
	v := viewWith(2, 4, 4)
	for i := range v.Jobs {
		v.Jobs[i].UserBatch = 4096
	}
	o := NewOptimus(4)
	m := o.Schedule(v)
	total := 0
	for j := range m {
		total += m.JobGPUs(j)
	}
	if total < 14 {
		t.Errorf("allocated %d of 16 GPUs", total)
	}
}

func TestOptimusStopsWhenMoreGPUsHurt(t *testing.T) {
	// At a small fixed batch, cross-node sync makes extra GPUs a net
	// loss — the paper's motivating observation about non-batch-adaptive
	// schedulers. Optimus must leave GPUs idle rather than slow jobs.
	v := viewWith(2, 4, 4)
	for i := range v.Jobs {
		v.Jobs[i].UserBatch = 512
	}
	o := NewOptimus(4)
	m := o.Schedule(v)
	for j := range m {
		k := m.JobGPUs(j)
		if k == 0 || k > 8 {
			t.Errorf("job %d allocated %d GPUs; expected a moderate positive count", j, k)
		}
	}
}

func TestOptimusFavorsScalableJob(t *testing.T) {
	// Job 0 scales well (large batch); job 1 is sync-bound (tiny batch).
	v := viewWith(2, 4, 4)
	v.Jobs[0].UserBatch = 2048
	v.Jobs[1].UserBatch = 128
	o := NewOptimus(4)
	m := o.Schedule(v)
	if m.JobGPUs(0) <= m.JobGPUs(1) {
		t.Errorf("scalable job got %d GPUs, sync-bound job got %d",
			m.JobGPUs(0), m.JobGPUs(1))
	}
}

func TestOptimusRemainingDecreasesWithGPUs(t *testing.T) {
	spec := models.ByName("resnet18")
	j := JobView{
		Model:          spec.GoodputModel(0.5),
		UserBatch:      1024,
		RemainingIters: 1e4,
	}
	o := NewOptimus(4)
	// Within a single node, adding GPUs always reduces remaining time.
	prev := o.remaining(j, 1)
	for g := 2; g <= 4; g++ {
		cur := o.remaining(j, g)
		if cur > prev {
			t.Errorf("remaining time increased at %d GPUs: %v > %v", g, cur, prev)
		}
		prev = cur
	}
	if o.remaining(j, 0) != inf {
		t.Error("zero GPUs should have infinite remaining time")
	}
}

func TestGoodputAutoscalerGrowsWithPhi(t *testing.T) {
	spec := models.ByName("resnet50")
	a := NewGoodputAutoscaler(1, 16, 0.55, 0.75)
	early := a.DesiredNodes(spec.GoodputModel(0.05), 4)
	late := a.DesiredNodes(spec.GoodputModel(0.95), 4)
	if late <= early {
		t.Errorf("desired nodes did not grow with phi: early=%d late=%d", early, late)
	}
	if early < 1 || late > 16 {
		t.Errorf("bounds violated: early=%d late=%d", early, late)
	}
}

func TestGoodputAutoscalerRespectsBounds(t *testing.T) {
	spec := models.ByName("resnet50")
	a := NewGoodputAutoscaler(3, 5, 0.55, 0.75)
	for _, p := range []float64{0, 0.5, 1} {
		n := a.DesiredNodes(spec.GoodputModel(p), 4)
		if n < 3 || n > 5 {
			t.Errorf("nodes = %d at p=%v, want within [3, 5]", n, p)
		}
	}
}

func TestThroughputAutoscalerConstantOverTraining(t *testing.T) {
	spec := models.ByName("resnet50")
	a := NewThroughputAutoscaler(1, 16, 0.9)
	early := a.DesiredNodes(spec.GoodputModel(0.05), 4)
	late := a.DesiredNodes(spec.GoodputModel(0.95), 4)
	if early != late {
		t.Errorf("throughput-based scaler changed size: %d -> %d", early, late)
	}
	// And it scales out aggressively from the start (Fig. 10a).
	goodput := NewGoodputAutoscaler(1, 16, 0.55, 0.75)
	if early <= goodput.DesiredNodes(spec.GoodputModel(0.05), 4) {
		t.Errorf("throughput scaler (%d nodes) should exceed goodput scaler early", early)
	}
}

func TestThroughputOptimalBatch(t *testing.T) {
	spec := models.ByName("resnet50")
	model := spec.GoodputModel(0.5)
	pl := core.Placement{GPUs: 8, Nodes: 2}
	m := ThroughputOptimalBatch(model, pl)
	want := 8 * spec.MaxBatchPerGPU
	if want > spec.MaxBatchGlobal {
		want = spec.MaxBatchGlobal
	}
	if m != want {
		t.Errorf("throughput-optimal batch = %d, want %d (memory-max)", m, want)
	}
}
