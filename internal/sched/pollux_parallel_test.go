package sched

import (
	"testing"

	"repro/internal/ga"
)

// TestPolluxWorkersDeterminism is the contract the parallel GA must keep:
// for a fixed seed, Workers: 1 and Workers: 8 produce identical Schedule
// output, including across intervals with population carry-over and warm
// speedup caches.
func TestPolluxWorkersDeterminism(t *testing.T) {
	run := func(workers int) []ga.Matrix {
		p := NewPollux(PolluxOptions{Population: 20, Generations: 10, Workers: workers}, 7)
		var out []ga.Matrix
		v := viewWith(6, 4, 4)
		for round := 0; round < 3; round++ {
			m := p.Schedule(v)
			out = append(out, m)
			v.Current = m // apply, so restart penalties and seeds engage
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Errorf("round %d: Workers 1 vs 8 schedules differ:\n%v\n%v",
				i, serial[i], parallel[i])
		}
	}
}

func TestPolluxZeroRestartPenaltyStaysZero(t *testing.T) {
	p := NewPollux(PolluxOptions{DisableRestartPenalty: true}, 1)
	if p.opts.RestartPenalty != 0 {
		t.Errorf("DisableRestartPenalty: penalty = %v, want 0", p.opts.RestartPenalty)
	}
	// The zero value still takes the paper default.
	p = NewPollux(PolluxOptions{}, 1)
	if p.opts.RestartPenalty != 0.25 {
		t.Errorf("default penalty = %v, want 0.25", p.opts.RestartPenalty)
	}
	// An explicit nonzero penalty is preserved.
	p = NewPollux(PolluxOptions{RestartPenalty: 0.5}, 1)
	if p.opts.RestartPenalty != 0.5 {
		t.Errorf("explicit penalty = %v, want 0.5", p.opts.RestartPenalty)
	}
}

func TestPolluxZeroGPUTimeThres(t *testing.T) {
	// A negative threshold means an explicit zero: with λ > 0 every job
	// with nonzero GPU time decays, which was previously inexpressible.
	p := NewPollux(PolluxOptions{GPUTimeThres: -1, Lambda: 0.5}, 1)
	if p.opts.GPUTimeThres != 0 {
		t.Errorf("explicit zero threshold = %v, want 0", p.opts.GPUTimeThres)
	}
	if w := p.weight(0); w != 1 {
		t.Errorf("weight at zero GPU time = %v, want 1", w)
	}
	if w := p.weight(3600); w != 0 {
		t.Errorf("weight beyond zero threshold = %v, want 0", w)
	}
	// The zero value still takes the 4-GPU-hour default.
	p = NewPollux(PolluxOptions{}, 1)
	if p.opts.GPUTimeThres != 4*3600 {
		t.Errorf("default threshold = %v, want %v", p.opts.GPUTimeThres, 4*3600)
	}
}

func TestSpeedupTableCachedAcrossRounds(t *testing.T) {
	v := viewWith(3, 4, 4)
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 8)
	p.Schedule(v)
	first := p.tables[v.Jobs[0].ID]
	if first == nil {
		t.Fatal("no speedup table cached after Schedule")
	}
	// Unchanged model: the table (with its computed cells) is reused.
	p.Schedule(v)
	if p.tables[v.Jobs[0].ID] != first {
		t.Error("speedup table rebuilt despite unchanged model")
	}
	// A model refit (here: the reported noise scale moves) invalidates
	// exactly that job's table.
	keep := p.tables[v.Jobs[1].ID]
	v.Jobs[0].Model.Phi *= 2
	p.Schedule(v)
	if p.tables[v.Jobs[0].ID] == first {
		t.Error("speedup table not invalidated by model change")
	}
	if p.tables[v.Jobs[1].ID] != keep {
		t.Error("unrelated job's table invalidated")
	}
}

func TestSpeedupTablePrunedForDepartedJobs(t *testing.T) {
	v := viewWith(4, 4, 4)
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 9)
	p.Schedule(v)
	if len(p.tables) != 4 {
		t.Fatalf("cached tables = %d, want 4", len(p.tables))
	}
	small := viewWith(2, 4, 4) // jobs 2 and 3 departed
	p.Schedule(small)
	if len(p.tables) != 2 {
		t.Errorf("cached tables after departures = %d, want 2", len(p.tables))
	}
	empty := &ClusterView{Capacity: v.Capacity}
	p.Schedule(empty)
	if len(p.tables) != 0 {
		t.Errorf("cached tables after empty view = %d, want 0", len(p.tables))
	}
}

func TestUtilityPopulationClamp(t *testing.T) {
	cases := []struct{ configured, want int }{
		{1, 1}, {2, 1}, {3, 1}, {4, 2}, {100, 50},
	}
	for _, c := range cases {
		if got := utilityPopulation(c.configured); got != c.want {
			t.Errorf("utilityPopulation(%d) = %d, want %d", c.configured, got, c.want)
		}
	}
}

func TestClusterUtilityTinyPopulation(t *testing.T) {
	// A Population: 1 configuration must stay a 1-member search (the old
	// code passed 1/2 = 0 to ga.New, which re-defaulted to 100) and still
	// produce a sane utility.
	v := viewWith(3, 4, 4)
	p := NewPollux(PolluxOptions{Population: 1, Generations: 3}, 10)
	u := p.ClusterUtility(v, 4, 3)
	if u < 0 || u > 1+1e-9 {
		t.Errorf("utility = %v, want in [0, 1]", u)
	}
}
