package sched

import (
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ga"
)

// PolluxOptions tunes PolluxSched. Zero values take the paper's defaults
// (Sec. 5.1): 100 generations over a population of 100 each interval,
// restart penalty 0.25, GPU-time threshold 4 GPU-hours with λ = 0.5, and
// interference avoidance enabled.
type PolluxOptions struct {
	Population  int
	Generations int
	// RestartPenalty is the per-job fitness penalty for re-allocations
	// (Eqn. 14). The zero value takes the 0.25 default; set
	// DisableRestartPenalty to make restarts genuinely free.
	RestartPenalty float64
	// DisableRestartPenalty forces a zero restart penalty. Without it an
	// explicit RestartPenalty: 0 is indistinguishable from the zero value
	// and was silently rewritten to the default.
	DisableRestartPenalty bool
	// GPUTimeThres is in GPU-seconds; weights decay for jobs beyond it
	// (Eqn. 16). Lambda is the decay exponent; Lambda = 0 disables
	// weighting entirely (all weights 1). The zero value takes the
	// 4-GPU-hour default; a negative value means an explicit zero
	// threshold (every job with nonzero GPU time decays).
	GPUTimeThres float64
	Lambda       float64
	// DisableInterferenceAvoidance turns off the Sec. 4.2.1 constraint
	// (used by the Fig. 9 ablation).
	DisableInterferenceAvoidance bool
	// Workers bounds the goroutines used for concurrent GA fitness
	// evaluation; default GOMAXPROCS. Results are bit-identical across
	// worker counts (see ga.Options.Workers).
	Workers int
}

func (o *PolluxOptions) defaults() {
	if o.Population <= 0 {
		o.Population = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.DisableRestartPenalty {
		o.RestartPenalty = 0
	} else if o.RestartPenalty == 0 {
		o.RestartPenalty = 0.25
	}
	if o.GPUTimeThres < 0 {
		o.GPUTimeThres = 0
	} else if o.GPUTimeThres == 0 {
		o.GPUTimeThres = 4 * 3600 // 4 GPU-hours
	}
}

// Pollux is the co-adaptive scheduler (Sec. 4.2). It keeps its GA
// population between scheduling intervals to bootstrap the next
// optimization, keyed by job ID so rows survive arrivals and departures,
// and likewise carries each job's memoized SPEEDUP table across intervals
// until the job's reported model changes.
type Pollux struct {
	opts PolluxOptions
	rng  *rand.Rand

	prevPop  []ga.Matrix
	prevJobs []int // job IDs aligned with prevPop rows

	// tables caches per-job speedup tables across scheduling intervals,
	// keyed by job ID. An entry is reused only while the job's reported
	// model and the table dimensions are unchanged (see cachedTable).
	tables map[int]*speedupTable
}

// NewPollux creates a PolluxSched instance with its own deterministic RNG.
func NewPollux(opts PolluxOptions, seed int64) *Pollux {
	opts.defaults()
	return &Pollux{
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
		tables: make(map[int]*speedupTable),
	}
}

func (p *Pollux) Name() string          { return "pollux" }
func (p *Pollux) AdaptsBatchSize() bool { return true }

// speedupTable lazily memoizes SPEEDUP_j(K, N) per job. Fitness evaluation
// touches the same few placements thousands of times per interval; the
// underlying golden-section searches are far too slow to repeat. Cells are
// atomic float64 bit patterns so concurrent fitness workers can fill the
// table race-free: the model is a pure function, so two workers computing
// the same cell store bit-identical values and either store may win.
type speedupTable struct {
	model  core.Model
	gpuCap int
	denom  float64 // max_m GOODPUT(1, m)
	cells  []uint64
	nodes  int
	maxK   int
}

// unsetCell marks a cell not yet computed. Speedups are finite and
// non-negative, so the bit pattern of -1 can never be a real value.
var unsetCell = math.Float64bits(-1)

func newSpeedupTable(model core.Model, gpuCap, maxK, nodes int) *speedupTable {
	t := &speedupTable{model: model, gpuCap: gpuCap, nodes: nodes, maxK: maxK}
	t.cells = make([]uint64, (maxK+1)*(nodes+1))
	for i := range t.cells {
		t.cells[i] = unsetCell
	}
	if _, d, ok := model.OptimalBatch(core.SingleGPU); ok {
		t.denom = d
	}
	return t
}

// Speedup returns SPEEDUP for (K GPUs, N nodes), honoring the exploration
// cap: allocations beyond the cap score zero, which makes them strictly
// worse than pausing plus reallocating those GPUs elsewhere. It is safe
// for concurrent use.
func (t *speedupTable) Speedup(k, n int) float64 {
	if k <= 0 || t.denom <= 0 {
		return 0
	}
	if k > t.gpuCap || k > t.maxK || n > t.nodes {
		return 0
	}
	idx := k*(t.nodes+1) + n
	if bits := atomic.LoadUint64(&t.cells[idx]); bits != unsetCell {
		return math.Float64frombits(bits)
	}
	v := 0.0
	if _, num, ok := t.model.OptimalBatch(core.Placement{GPUs: k, Nodes: n}); ok {
		v = num / t.denom
	}
	atomic.StoreUint64(&t.cells[idx], math.Float64bits(v))
	return v
}

// cachedTable returns the cross-round speedup table for a job, reusing the
// previous interval's table (with every cell already computed for the
// placements the GA visited) when the job's reported model, exploration
// cap, and table dimensions are unchanged. Any change — an agent refit, a
// noise-scale update, a new cluster size — produces a model or dimension
// mismatch and rebuilds the table from scratch. Phi is part of the model,
// so a job actively making progress (whose noise scale moves every agent
// round) rebuilds each interval; the cache pays off for paused and queued
// jobs — exactly the rows that pile up when the cluster is backlogged,
// which is when the GA is most expensive.
func (p *Pollux) cachedTable(j JobView, maxK, nodes int) *speedupTable {
	if t, ok := p.tables[j.ID]; ok &&
		t.model == j.Model && t.gpuCap == j.GPUCap && t.maxK == maxK && t.nodes == nodes {
		return t
	}
	t := newSpeedupTable(j.Model, j.GPUCap, maxK, nodes)
	p.tables[j.ID] = t
	return t
}

// pruneTables drops cached speedup tables for jobs no longer in the view.
func (p *Pollux) pruneTables(jobs []JobView) {
	if len(p.tables) <= len(jobs) {
		return
	}
	live := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		live[j.ID] = true
	}
	for id := range p.tables {
		if !live[id] {
			delete(p.tables, id)
		}
	}
}

// Schedule runs the genetic algorithm over allocation matrices and
// returns the fittest (Eqn. 14), carrying the population over to the next
// interval.
func (p *Pollux) Schedule(v *ClusterView) ga.Matrix {
	jobs := v.Jobs
	nJobs := len(jobs)
	if nJobs == 0 {
		p.prevPop, p.prevJobs = nil, nil
		p.pruneTables(nil)
		return ga.NewMatrix(0, len(v.Capacity))
	}
	maxK := v.TotalGPUs()

	p.pruneTables(jobs)
	tables := make([]*speedupTable, nJobs)
	weights := make([]float64, nJobs)
	for i, j := range jobs {
		tables[i] = p.cachedTable(j, maxK, len(v.Capacity))
		weights[i] = p.weight(j.GPUTime)
	}

	// Restart detection against the currently applied allocation.
	curPlacement := make([]core.Placement, nJobs)
	for i := range jobs {
		if v.Current != nil && i < len(v.Current) {
			curPlacement[i] = PlacementOf(v.Current[i])
		}
	}

	sumW := 0.0
	for _, w := range weights {
		sumW += w
	}
	if sumW == 0 {
		sumW = 1
	}

	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for i := range m {
			pl := PlacementOf(m[i])
			s := tables[i].Speedup(pl.GPUs, pl.Nodes)
			if curPlacement[i].GPUs > 0 && !samePlacementRow(m[i], v.Current[i]) {
				s -= p.opts.RestartPenalty
			}
			total += weights[i] * s
		}
		return total / sumW
	}

	prob := ga.Problem{
		Capacity:              v.Capacity,
		Jobs:                  nJobs,
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
	}

	seeds := p.remapSeeds(jobs, len(v.Capacity))
	// Always seed the currently applied allocation: keeping everything
	// in place must be representable so restarts stay justified.
	if v.Current != nil && len(v.Current) == nJobs {
		seeds = append([]ga.Matrix{v.Current}, seeds...)
	}
	g := ga.New(prob, ga.Options{Population: p.opts.Population, Workers: p.opts.Workers}, p.rng, seeds)
	best, _ := g.Run(p.opts.Generations)

	// Save the population for the next interval.
	pop := g.Population()
	p.prevPop = make([]ga.Matrix, len(pop))
	for i, m := range pop {
		p.prevPop[i] = m.Clone()
	}
	p.prevJobs = make([]int, nJobs)
	for i, j := range jobs {
		p.prevJobs[i] = j.ID
	}
	return best.Clone()
}

// ClusterUtility evaluates UTILITY(A) (Eqn. 17) for the cluster reduced
// to its first `nodes` nodes: a short GA finds a good allocation matrix at
// that size, and the utility is the sum of job speedups divided by the
// total GPU count. Used by the Sec. 4.2.2 cloud autoscaling binary search.
func (p *Pollux) ClusterUtility(v *ClusterView, nodes, generations int) float64 {
	if nodes <= 0 || len(v.Jobs) == 0 {
		return 0
	}
	if nodes > len(v.Capacity) {
		nodes = len(v.Capacity)
	}
	capacity := v.Capacity[:nodes]
	totalGPUs := 0
	for _, c := range capacity {
		totalGPUs += c
	}
	if totalGPUs == 0 {
		return 0
	}

	tables := make([]*speedupTable, len(v.Jobs))
	for i, j := range v.Jobs {
		tables[i] = newSpeedupTable(j.Model, j.GPUCap, totalGPUs, nodes)
	}
	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for i := range m {
			pl := PlacementOf(m[i])
			total += tables[i].Speedup(pl.GPUs, pl.Nodes)
		}
		return total
	}
	g := ga.New(ga.Problem{
		Capacity:              capacity,
		Jobs:                  len(v.Jobs),
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
	}, ga.Options{Population: utilityPopulation(p.opts.Population), Workers: p.opts.Workers}, p.rng, nil)
	_, best := g.Run(generations)
	return best / float64(totalGPUs)
}

// utilityPopulation is the GA population for the short ClusterUtility
// searches: half the configured population, clamped to at least 1 so a
// tiny configured search is not silently re-defaulted to 100 inside
// ga.New.
func utilityPopulation(configured int) int {
	return max(1, configured/2)
}

// DesiredClusterNodes implements the Sec. 4.2.2 cloud autoscaling
// decision for a multi-job cluster: binary search (assuming UTILITY
// decreases with size) for the node count whose utility is closest to the
// midpoint of [lowUtil, highUtil]. The view's Capacity must describe the
// cluster at its maximum size.
func (p *Pollux) DesiredClusterNodes(v *ClusterView, minNodes, maxNodes int, lowUtil, highUtil float64) int {
	if maxNodes > len(v.Capacity) {
		maxNodes = len(v.Capacity)
	}
	if minNodes < 1 {
		minNodes = 1
	}
	if len(v.Jobs) == 0 {
		return minNodes
	}
	const searchGens = 10
	target := (lowUtil + highUtil) / 2
	lo, hi := minNodes, maxNodes
	for lo < hi {
		mid := (lo + hi) / 2
		if p.ClusterUtility(v, mid, searchGens) >= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := lo
	if lo > minNodes {
		du := diff(p.ClusterUtility(v, lo, searchGens), target)
		dd := diff(p.ClusterUtility(v, lo-1, searchGens), target)
		if dd < du {
			best = lo - 1
		}
	}
	return best
}

// weight implements Eqn. 16: w_j = min(1, thres/gputime)^λ.
func (p *Pollux) weight(gpuTime float64) float64 {
	if p.opts.Lambda == 0 || gpuTime <= p.opts.GPUTimeThres {
		return 1
	}
	return math.Pow(p.opts.GPUTimeThres/gpuTime, p.opts.Lambda)
}

// remapSeeds rebuilds the previous population for the current job set:
// rows follow their job IDs; new jobs start with zero rows.
func (p *Pollux) remapSeeds(jobs []JobView, nodes int) []ga.Matrix {
	if p.prevPop == nil {
		return nil
	}
	prevIndex := make(map[int]int, len(p.prevJobs))
	for i, id := range p.prevJobs {
		prevIndex[id] = i
	}
	seeds := make([]ga.Matrix, 0, len(p.prevPop))
	for _, prev := range p.prevPop {
		m := ga.NewMatrix(len(jobs), nodes)
		for i, j := range jobs {
			if pi, ok := prevIndex[j.ID]; ok && pi < len(prev) && len(prev[pi]) == nodes {
				copy(m[i], prev[pi])
			}
		}
		seeds = append(seeds, m)
	}
	return seeds
}

func samePlacementRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
