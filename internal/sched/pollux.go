package sched

import (
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/ga"
)

// PolluxOptions tunes PolluxSched. Zero values take the paper's defaults
// (Sec. 5.1): 100 generations over a population of 100 each interval,
// restart penalty 0.25, GPU-time threshold 4 GPU-hours with λ = 0.5, and
// interference avoidance enabled.
type PolluxOptions struct {
	Population  int
	Generations int
	// RestartPenalty is the per-job fitness penalty for re-allocations
	// (Eqn. 14). The zero value takes the 0.25 default; set
	// DisableRestartPenalty to make restarts genuinely free.
	RestartPenalty float64
	// DisableRestartPenalty forces a zero restart penalty. Without it an
	// explicit RestartPenalty: 0 is indistinguishable from the zero value
	// and was silently rewritten to the default.
	DisableRestartPenalty bool
	// GPUTimeThres is in GPU-seconds; weights decay for jobs beyond it
	// (Eqn. 16). Lambda is the decay exponent; Lambda = 0 disables
	// weighting entirely (all weights 1). The zero value takes the
	// 4-GPU-hour default; a negative value means an explicit zero
	// threshold (every job with nonzero GPU time decays).
	GPUTimeThres float64
	Lambda       float64
	// DisableInterferenceAvoidance turns off the Sec. 4.2.1 constraint
	// (used by the Fig. 9 ablation).
	DisableInterferenceAvoidance bool
	// Workers bounds the goroutines used for concurrent GA fitness
	// evaluation; default GOMAXPROCS. Results are bit-identical across
	// worker counts (see ga.Options.Workers).
	Workers int

	// Incremental enables dirty-set scheduling rounds: only jobs whose
	// fitted model, phase, or demand changed since the last committed
	// matrix — plus their placement neighbors — are re-placed; clean rows
	// carry forward verbatim. Off by default: the default full
	// re-optimization keeps every fixed-seed baseline trace bit-stable.
	Incremental bool
	// FullEvery forces a full re-optimization every FullEvery-th
	// incremental round so incremental never drifts from the global
	// optimum. Zero takes the default of 10; negative means never force
	// one (for experiments isolating the incremental path).
	FullEvery int
	// QueuedPerRound caps how many clean zero-allocation (queued) jobs
	// are pulled into each incremental round to compete for freed
	// capacity, in snapshot order. Zero takes the default of 64; negative
	// means unlimited.
	QueuedPerRound int
	// RackSize, when > 0, enables hierarchical decomposition for
	// clusters of at least two racks: a coarse GA assigns jobs to racks
	// of RackSize contiguous nodes (priced by the Sec. 3.2 rack-locality
	// extension), then small per-rack GAs refine node placements,
	// cutting the per-round search space from O(nodes) to
	// O(racks) + O(nodes/rack).
	RackSize int
	// RackPenalty scales the fitted node-tier sync parameters into the
	// derived cross-rack tier (core.DeriveRackParams): cross-rack hops
	// cost RackPenalty× the intra-rack ones. Zero takes the default of
	// 2; a negative value means an explicit factor of zero (rack spans
	// priced like node spans).
	RackPenalty float64
	// RefinePop and RefineGens size the per-rack refinement GAs; they
	// default to 16 and 10. The coarse rack-assignment pass uses the
	// main Population/Generations (its matrices are racks wide, not
	// nodes, so it is cheap regardless).
	RefinePop  int
	RefineGens int
}

func (o *PolluxOptions) defaults() {
	if o.Population <= 0 {
		o.Population = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.DisableRestartPenalty {
		o.RestartPenalty = 0
	} else if o.RestartPenalty == 0 {
		o.RestartPenalty = 0.25
	}
	if o.GPUTimeThres < 0 {
		o.GPUTimeThres = 0
	} else if o.GPUTimeThres == 0 {
		o.GPUTimeThres = 4 * 3600 // 4 GPU-hours
	}
	if o.FullEvery == 0 {
		o.FullEvery = 10
	} else if o.FullEvery < 0 {
		o.FullEvery = -1 // never force a full round
	}
	if o.QueuedPerRound == 0 {
		o.QueuedPerRound = 64
	} else if o.QueuedPerRound < 0 {
		o.QueuedPerRound = -1 // unlimited
	}
	if o.RackPenalty < 0 {
		o.RackPenalty = 0
	} else if o.RackPenalty == 0 {
		o.RackPenalty = 2
	}
	if o.RefinePop <= 0 {
		o.RefinePop = 16
	}
	if o.RefineGens <= 0 {
		o.RefineGens = 10
	}
}

// Pollux is the co-adaptive scheduler (Sec. 4.2). It keeps its GA
// population between scheduling intervals to bootstrap the next
// optimization, keyed by job ID so rows survive arrivals and departures,
// and likewise carries each job's memoized SPEEDUP table across intervals
// until the job's reported model changes.
type Pollux struct {
	opts PolluxOptions
	// src is the counting source behind rng: it draws exactly like the
	// stock math/rand source but exposes a serializable (seed, draws)
	// state, which is what makes Snapshot/Restore possible without
	// perturbing any fixed-seed trace.
	src *detrand.Source
	rng *rand.Rand

	prevPop  []ga.Matrix
	prevJobs []int // job IDs aligned with prevPop rows

	// tables caches per-job speedup tables across scheduling intervals,
	// keyed by job ID. An entry is reused only while the job's reported
	// model and the table dimensions are unchanged (see cachedTable).
	tables map[int]*speedupTable

	// inc is the dirty-set state for Incremental mode (see
	// incremental.go); nil until the first incremental round commits.
	inc *incState
	// sinceFull counts incremental rounds since the last full
	// re-optimization, driving the FullEvery cadence.
	sinceFull int
	// lastStats describes the most recent Schedule call (see RoundStats).
	lastStats RoundStats
}

// RoundStats summarizes the work done by one Schedule call; experiments
// and benchmarks read it through LastRoundStats to report per-round
// fitness work and dirty-set sizes.
type RoundStats struct {
	Jobs int // jobs in the view
	Sub  int // jobs re-placed (== Jobs on a full round)
	// Racks is the number of racks refined (0 when hierarchy is off).
	Racks int
	// Full reports a full re-optimization (the only kind in default
	// mode); Skipped reports an incremental round with an empty dirty
	// set, which returned the current allocation without running any GA.
	Full    bool
	Skipped bool
	// FitnessCalls and FitnessCells total the GA fitness work across
	// every pass of the round (coarse, refinement, and flat); cells are
	// calls weighted by the scored matrix area (see ga.Stats).
	FitnessCalls int64
	FitnessCells int64
}

// LastRoundStats returns the stats of the most recent Schedule call.
func (p *Pollux) LastRoundStats() RoundStats { return p.lastStats }

// NewPollux creates a PolluxSched instance with its own deterministic RNG.
func NewPollux(opts PolluxOptions, seed int64) *Pollux {
	opts.defaults()
	src := detrand.NewSource(seed)
	return &Pollux{
		opts:   opts,
		src:    src,
		rng:    rand.New(src),
		tables: make(map[int]*speedupTable),
	}
}

func (p *Pollux) Name() string          { return "pollux" }
func (p *Pollux) AdaptsBatchSize() bool { return true }

// speedupTable lazily memoizes SPEEDUP_j(K, N) per job. Fitness evaluation
// touches the same few placements thousands of times per interval; the
// underlying golden-section searches are far too slow to repeat. Cells are
// atomic float64 bit patterns so concurrent fitness workers can fill the
// table race-free: the model is a pure function, so two workers computing
// the same cell store bit-identical values and either store may win.
//
// The cell array is triangular, not dense: K only goes up to the job's
// exploration cap (placements beyond it score zero without a lookup), and
// a K-GPU row only needs N ≤ min(K, nodes) columns (more nodes than GPUs
// is not a valid placement). The former dense (totalGPUs+1)×(nodes+1)
// layout cost ~8 MB per job at 512 nodes — ~80 GB across a 10k-job
// backlog — where the triangular one is a few KB.
type speedupTable struct {
	model  core.Model
	gpuCap int
	denom  float64 // max_m GOODPUT(1, m)
	cells  []uint64
	offs   []int // offs[k] = index of cell (k, 0); row width min(k, nodes)+1
	nodes  int
	maxK   int
	kCap   int // min(maxK, gpuCap): the largest K with a row

	// rackCells is the cross-rack layer used by the hierarchical coarse
	// pass, indexed like cells; nil until ensureRack. One layer covers
	// every multi-rack span because the derived three-tier TSync does not
	// depend on how many racks are crossed, only whether more than one is.
	rackCells  []uint64
	rackParams core.RackParams
}

// unsetCell marks a cell not yet computed. Speedups are finite and
// non-negative, so the bit pattern of -1 can never be a real value.
var unsetCell = math.Float64bits(-1)

func newSpeedupTable(model core.Model, gpuCap, maxK, nodes int) *speedupTable {
	t := &speedupTable{model: model, gpuCap: gpuCap, nodes: nodes, maxK: maxK}
	t.kCap = min(maxK, gpuCap)
	if t.kCap < 0 {
		t.kCap = 0
	}
	t.offs = make([]int, t.kCap+1)
	total := 0
	for k := 0; k <= t.kCap; k++ {
		t.offs[k] = total
		total += min(k, nodes) + 1
	}
	t.cells = make([]uint64, total)
	for i := range t.cells {
		t.cells[i] = unsetCell
	}
	if _, d, ok := model.OptimalBatch(core.SingleGPU); ok {
		t.denom = d
	}
	return t
}

// Speedup returns SPEEDUP for (K GPUs, N nodes), honoring the exploration
// cap: allocations beyond the cap score zero, which makes them strictly
// worse than pausing plus reallocating those GPUs elsewhere. Placements
// with more nodes than GPUs are invalid and likewise score zero. It is
// safe for concurrent use.
func (t *speedupTable) Speedup(k, n int) float64 {
	if k <= 0 || t.denom <= 0 {
		return 0
	}
	if k > t.kCap || n > t.nodes || n > k {
		return 0
	}
	idx := t.offs[k] + n
	if bits := atomic.LoadUint64(&t.cells[idx]); bits != unsetCell {
		return math.Float64frombits(bits)
	}
	v := 0.0
	if _, num, ok := t.model.OptimalBatch(core.Placement{GPUs: k, Nodes: n}); ok {
		v = num / t.denom
	}
	atomic.StoreUint64(&t.cells[idx], math.Float64bits(v))
	return v
}

// ensureRack allocates the cross-rack layer and the derived rack-aware
// θsys before the coarse pass fans fitness workers out; it must be called
// serially (the layer itself is then filled with the same atomic
// protocol as cells). The penalty factor is fixed per Pollux instance, so
// an existing layer is always current.
func (t *speedupTable) ensureRack(factor float64) {
	if t.rackCells != nil {
		return
	}
	t.rackParams = core.DeriveRackParams(t.model.Params, factor)
	t.rackCells = make([]uint64, len(t.cells))
	for i := range t.rackCells {
		t.rackCells[i] = unsetCell
	}
}

// SpeedupRack is Speedup for a placement spanning the given number of
// racks, against the same single-GPU denominator. racks <= 1 reduces to
// the two-tier table; ensureRack must have been called before any
// multi-rack lookup.
func (t *speedupTable) SpeedupRack(k, n, racks int) float64 {
	if racks <= 1 {
		return t.Speedup(k, n)
	}
	if k <= 0 || t.denom <= 0 {
		return 0
	}
	if k > t.kCap || n > t.nodes || n > k || racks > n {
		return 0
	}
	idx := t.offs[k] + n
	if bits := atomic.LoadUint64(&t.rackCells[idx]); bits != unsetCell {
		return math.Float64frombits(bits)
	}
	v := 0.0
	// Racks: 2 stands in for any multi-rack span — the derived TSync
	// tier is the same for all of them (see rackCells).
	if _, num, ok := t.model.OptimalBatchRack(t.rackParams, core.RackPlacement{GPUs: k, Nodes: n, Racks: 2}); ok {
		v = num / t.denom
	}
	atomic.StoreUint64(&t.rackCells[idx], math.Float64bits(v))
	return v
}

// cachedTable returns the cross-round speedup table for a job, reusing the
// previous interval's table (with every cell already computed for the
// placements the GA visited) when the job's reported model, exploration
// cap, and table dimensions are unchanged. Any change — an agent refit, a
// noise-scale update, a new cluster size — produces a model or dimension
// mismatch and rebuilds the table from scratch. Phi is part of the model,
// so a job actively making progress (whose noise scale moves every agent
// round) rebuilds each interval; the cache pays off for paused and queued
// jobs — exactly the rows that pile up when the cluster is backlogged,
// which is when the GA is most expensive.
func (p *Pollux) cachedTable(j JobView, maxK, nodes int) *speedupTable {
	if t, ok := p.tables[j.ID]; ok &&
		t.model == j.Model && t.gpuCap == j.GPUCap && t.maxK == maxK && t.nodes == nodes {
		return t
	}
	t := newSpeedupTable(j.Model, j.GPUCap, maxK, nodes)
	p.tables[j.ID] = t
	return t
}

// pruneTables drops cached speedup tables for jobs no longer in the view.
func (p *Pollux) pruneTables(jobs []JobView) {
	if len(p.tables) <= len(jobs) {
		return
	}
	live := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		live[j.ID] = true
	}
	for id := range p.tables {
		if !live[id] {
			delete(p.tables, id)
		}
	}
}

// Schedule computes the round's allocation matrix (Eqn. 14). In the
// default configuration every round is a full re-optimization
// (scheduleFlat, bit-identical to the historical behavior); with
// Incremental or RackSize set, rounds go through the dirty-set and
// rack-hierarchical paths in incremental.go.
func (p *Pollux) Schedule(v *ClusterView) ga.Matrix {
	nJobs := len(v.Jobs)
	p.lastStats = RoundStats{Jobs: nJobs, Sub: nJobs, Full: true}
	if nJobs == 0 {
		p.prevPop, p.prevJobs = nil, nil
		p.inc = nil
		p.pruneTables(nil)
		return ga.NewMatrix(0, len(v.Capacity))
	}
	p.pruneTables(v.Jobs)
	if p.opts.Incremental || p.opts.RackSize > 0 {
		return p.scheduleIncremental(v)
	}
	return p.scheduleFlat(v)
}

// roundTables builds the per-job speedup tables and Eqn. 16 weights for
// one round. The weight sum is accumulated in job order, matching the
// historical two-loop computation bit for bit.
func (p *Pollux) roundTables(v *ClusterView) (tables []*speedupTable, weights []float64, sumW float64) {
	jobs := v.Jobs
	maxK := v.TotalGPUs()
	tables = make([]*speedupTable, len(jobs))
	weights = make([]float64, len(jobs))
	for i, j := range jobs {
		tables[i] = p.cachedTable(j, maxK, len(v.Capacity))
		weights[i] = p.weight(j.GPUTime)
	}
	for _, w := range weights {
		sumW += w
	}
	if sumW == 0 {
		sumW = 1
	}
	return tables, weights, sumW
}

// scheduleFlat is the paper's full re-optimization: one GA over every
// job × every node, carrying the whole population to the next interval.
func (p *Pollux) scheduleFlat(v *ClusterView) ga.Matrix {
	jobs := v.Jobs
	nJobs := len(jobs)
	tables, weights, sumW := p.roundTables(v)

	// Restart detection against the currently applied allocation.
	curPlacement := make([]core.Placement, nJobs)
	for i := range jobs {
		if v.Current != nil && i < len(v.Current) {
			curPlacement[i] = PlacementOf(v.Current[i])
		}
	}

	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for i := range m {
			pl := PlacementOf(m[i])
			s := tables[i].Speedup(pl.GPUs, pl.Nodes)
			if curPlacement[i].GPUs > 0 && !samePlacementRow(m[i], v.Current[i]) {
				s -= p.opts.RestartPenalty
			}
			total += weights[i] * s
		}
		return total / sumW
	}

	prob := ga.Problem{
		Capacity:              v.Capacity,
		Jobs:                  nJobs,
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
	}

	seeds := p.remapSeeds(jobs, len(v.Capacity))
	// Always seed the currently applied allocation: keeping everything
	// in place must be representable so restarts stay justified.
	if v.Current != nil && len(v.Current) == nJobs {
		seeds = append([]ga.Matrix{v.Current}, seeds...)
	}
	g := ga.New(prob, ga.Options{Population: p.opts.Population, Workers: p.opts.Workers}, p.rng, seeds)
	best, _ := g.Run(p.opts.Generations)

	// Save the population for the next interval.
	pop := g.Population()
	p.prevPop = make([]ga.Matrix, len(pop))
	for i, m := range pop {
		p.prevPop[i] = m.Clone()
	}
	p.prevJobs = make([]int, nJobs)
	for i, j := range jobs {
		p.prevJobs[i] = j.ID
	}
	p.addStats(g.Stats())
	return best.Clone()
}

// addStats folds one GA's fitness-work counters into the round stats.
func (p *Pollux) addStats(st ga.Stats) {
	p.lastStats.FitnessCalls += st.FitnessCalls
	p.lastStats.FitnessCells += st.CellsScored
}

// ClusterUtility evaluates UTILITY(A) (Eqn. 17) for the cluster reduced
// to its first `nodes` nodes: a short GA finds a good allocation matrix at
// that size, and the utility is the sum of job speedups divided by the
// total GPU count. Used by the Sec. 4.2.2 cloud autoscaling binary search.
func (p *Pollux) ClusterUtility(v *ClusterView, nodes, generations int) float64 {
	if nodes <= 0 || len(v.Jobs) == 0 {
		return 0
	}
	if nodes > len(v.Capacity) {
		nodes = len(v.Capacity)
	}
	capacity := v.Capacity[:nodes]
	totalGPUs := 0
	for _, c := range capacity {
		totalGPUs += c
	}
	if totalGPUs == 0 {
		return 0
	}

	tables := make([]*speedupTable, len(v.Jobs))
	for i, j := range v.Jobs {
		tables[i] = newSpeedupTable(j.Model, j.GPUCap, totalGPUs, nodes)
	}
	fitness := func(m ga.Matrix) float64 {
		total := 0.0
		for i := range m {
			pl := PlacementOf(m[i])
			total += tables[i].Speedup(pl.GPUs, pl.Nodes)
		}
		return total
	}
	g := ga.New(ga.Problem{
		Capacity:              capacity,
		Jobs:                  len(v.Jobs),
		Fitness:               fitness,
		InterferenceAvoidance: !p.opts.DisableInterferenceAvoidance,
	}, ga.Options{Population: utilityPopulation(p.opts.Population), Workers: p.opts.Workers}, p.rng, nil)
	_, best := g.Run(generations)
	return best / float64(totalGPUs)
}

// utilityPopulation is the GA population for the short ClusterUtility
// searches: half the configured population, clamped to at least 1 so a
// tiny configured search is not silently re-defaulted to 100 inside
// ga.New.
func utilityPopulation(configured int) int {
	return max(1, configured/2)
}

// DesiredClusterNodes implements the Sec. 4.2.2 cloud autoscaling
// decision for a multi-job cluster: binary search (assuming UTILITY
// decreases with size) for the node count whose utility is closest to the
// midpoint of [lowUtil, highUtil]. The view's Capacity must describe the
// cluster at its maximum size.
func (p *Pollux) DesiredClusterNodes(v *ClusterView, minNodes, maxNodes int, lowUtil, highUtil float64) int {
	if maxNodes > len(v.Capacity) {
		maxNodes = len(v.Capacity)
	}
	if minNodes < 1 {
		minNodes = 1
	}
	if len(v.Jobs) == 0 {
		return minNodes
	}
	const searchGens = 10
	target := (lowUtil + highUtil) / 2
	lo, hi := minNodes, maxNodes
	for lo < hi {
		mid := (lo + hi) / 2
		if p.ClusterUtility(v, mid, searchGens) >= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := lo
	if lo > minNodes {
		du := diff(p.ClusterUtility(v, lo, searchGens), target)
		dd := diff(p.ClusterUtility(v, lo-1, searchGens), target)
		if dd < du {
			best = lo - 1
		}
	}
	return best
}

// weight implements Eqn. 16: w_j = min(1, thres/gputime)^λ.
func (p *Pollux) weight(gpuTime float64) float64 {
	if p.opts.Lambda == 0 || gpuTime <= p.opts.GPUTimeThres {
		return 1
	}
	return math.Pow(p.opts.GPUTimeThres/gpuTime, p.opts.Lambda)
}

// remapSeeds rebuilds the previous population for the current job set:
// rows follow their job IDs; new jobs start with zero rows.
func (p *Pollux) remapSeeds(jobs []JobView, nodes int) []ga.Matrix {
	if p.prevPop == nil {
		return nil
	}
	prevIndex := make(map[int]int, len(p.prevJobs))
	for i, id := range p.prevJobs {
		prevIndex[id] = i
	}
	seeds := make([]ga.Matrix, 0, len(p.prevPop))
	for _, prev := range p.prevPop {
		m := ga.NewMatrix(len(jobs), nodes)
		for i, j := range jobs {
			if pi, ok := prevIndex[j.ID]; ok && pi < len(prev) && len(prev[pi]) == nodes {
				copy(m[i], prev[pi])
			}
		}
		seeds = append(seeds, m)
	}
	return seeds
}

func samePlacementRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
