package sched

import (
	"repro/internal/core"
)

// Autoscaler decides cluster size for the cloud scenario of Sec. 4.2.2 and
// Sec. 5.3.3: a single large training job whose node count may change over
// time. DesiredNodes is consulted at each scheduling interval with the
// job's currently reported goodput model.
type Autoscaler interface {
	Name() string
	DesiredNodes(model core.Model, gpusPerNode int) int
}

// GoodputAutoscaler is Pollux's cloud auto-scaling policy: it provisions
// nodes so that cluster UTILITY (Eqn. 17 — the mean speedup per GPU) stays
// within [LowUtil, HighUtil], using binary search under the assumption
// that utility decreases with cluster size. Because speedup depends on
// statistical efficiency, the desired size grows as the gradient noise
// scale grows, provisioning GPUs when large batches become effective.
type GoodputAutoscaler struct {
	MinNodes, MaxNodes int
	LowUtil, HighUtil  float64
}

// NewGoodputAutoscaler uses sensible defaults when bounds are zero.
func NewGoodputAutoscaler(minNodes, maxNodes int, lowUtil, highUtil float64) *GoodputAutoscaler {
	if minNodes <= 0 {
		minNodes = 1
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}
	if lowUtil <= 0 {
		lowUtil = 0.55
	}
	if highUtil <= lowUtil {
		highUtil = 0.75
	}
	return &GoodputAutoscaler{MinNodes: minNodes, MaxNodes: maxNodes, LowUtil: lowUtil, HighUtil: highUtil}
}

func (a *GoodputAutoscaler) Name() string { return "pollux-goodput" }

// utility computes UTILITY for n nodes: SPEEDUP over the n·gpusPerNode
// allocation divided by total GPUs (Eqn. 17, single-job form).
func (a *GoodputAutoscaler) utility(model core.Model, n, gpusPerNode int) float64 {
	gpus := n * gpusPerNode
	if gpus == 0 {
		return 0
	}
	return model.Speedup(core.Placement{GPUs: gpus, Nodes: n}) / float64(gpus)
}

// DesiredNodes binary-searches for the cluster size whose utility is
// closest to the midpoint of [LowUtil, HighUtil].
func (a *GoodputAutoscaler) DesiredNodes(model core.Model, gpusPerNode int) int {
	target := (a.LowUtil + a.HighUtil) / 2
	lo, hi := a.MinNodes, a.MaxNodes
	for lo < hi {
		mid := (lo + hi) / 2
		if a.utility(model, mid, gpusPerNode) >= target {
			// Utility still high: can afford more nodes.
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first size with utility < target (or MaxNodes); compare
	// with its predecessor for the closest fit.
	best := lo
	if lo > a.MinNodes {
		du := diff(a.utility(model, lo, gpusPerNode), target)
		dd := diff(a.utility(model, lo-1, gpusPerNode), target)
		if dd < du {
			best = lo - 1
		}
	}
	return best
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// ThroughputAutoscaler is the Or et al. baseline (Sec. 5.3.3): it also
// adapts the batch size during training, but models job performance with
// system throughput only — equivalent to assuming perfect statistical
// efficiency at any batch size. Since throughput does not change with
// training progress, it scales out early and holds the size constant
// (Fig. 10a). It picks the smallest cluster achieving at least
// Fraction of the maximum attainable throughput.
type ThroughputAutoscaler struct {
	MinNodes, MaxNodes int
	// Fraction of the max-cluster throughput considered "good enough";
	// default 0.9.
	Fraction float64
}

// NewThroughputAutoscaler applies defaults for zero fields.
func NewThroughputAutoscaler(minNodes, maxNodes int, fraction float64) *ThroughputAutoscaler {
	if minNodes <= 0 {
		minNodes = 1
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 0.9
	}
	return &ThroughputAutoscaler{MinNodes: minNodes, MaxNodes: maxNodes, Fraction: fraction}
}

func (a *ThroughputAutoscaler) Name() string { return "or-etal-throughput" }

// bestThroughput is the throughput at n nodes with the
// throughput-maximizing batch size (ignoring efficiency).
func bestThroughput(model core.Model, n, gpusPerNode int) float64 {
	gpus := n * gpusPerNode
	pl := core.Placement{GPUs: gpus, Nodes: n}
	// Throughput is monotone in batch: the max feasible batch wins.
	m := gpus * model.MaxBatchPerGPU
	if model.MaxBatchGlobal > 0 && m > model.MaxBatchGlobal {
		m = model.MaxBatchGlobal
	}
	if m < model.M0 {
		return 0
	}
	return model.Throughput(pl, m)
}

// DesiredNodes returns the smallest size reaching Fraction of the
// max-size throughput.
func (a *ThroughputAutoscaler) DesiredNodes(model core.Model, gpusPerNode int) int {
	max := bestThroughput(model, a.MaxNodes, gpusPerNode)
	if max <= 0 {
		return a.MinNodes
	}
	for n := a.MinNodes; n < a.MaxNodes; n++ {
		if bestThroughput(model, n, gpusPerNode) >= a.Fraction*max {
			return n
		}
	}
	return a.MaxNodes
}

// ThroughputOptimalBatch is the batch the Or et al. baseline trains with:
// the throughput-maximizing (maximum feasible) batch size.
func ThroughputOptimalBatch(model core.Model, pl core.Placement) int {
	m := pl.GPUs * model.MaxBatchPerGPU
	if model.MaxBatchGlobal > 0 && m > model.MaxBatchGlobal {
		m = model.MaxBatchGlobal
	}
	if m < model.M0 {
		return model.M0
	}
	return m
}
