package sched

// Snapshot/Restore for Pollux: the serializable state a long-lived
// scheduler service needs to survive a restart without perturbing a single
// downstream decision — the counting-RNG state, the carried GA population
// keyed by job ID, the memoized speedup tables, the incremental dirty-set
// state, and the round counters.
//
// The snapshot structs deliberately contain no maps: every keyed
// collection is flattened to a slice sorted by its key, so the canonical
// JSON encoding is byte-stable across runs and the detmap invariant holds
// by construction. Floats ride through encoding/json, whose
// shortest-round-trip encoding decodes bit-identically; speedup cells are
// already stored as uint64 bit patterns and serialize exactly.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/ga"
)

// PolluxSnapshot is the full serializable state of a Pollux instance.
// Options are not part of it: a snapshot is restored into a Pollux
// constructed with the same PolluxOptions, which the owning service
// derives from its own configuration.
type PolluxSnapshot struct {
	RNG detrand.State

	// PrevJobs and PrevPop are the cross-round GA seed carryover: the job
	// IDs aligned with every population matrix's rows.
	PrevJobs []int       `json:",omitempty"`
	PrevPop  []ga.Matrix `json:",omitempty"`

	// Tables are the memoized speedup tables, sorted by job ID.
	Tables []TableSnapshot `json:",omitempty"`

	// Inc is the incremental dirty-set state; nil when no incremental
	// round has committed.
	Inc *IncSnapshot `json:",omitempty"`

	SinceFull int
	LastStats RoundStats
}

// TableSnapshot serializes one job's memoized speedup table. Offsets,
// row widths, and the single-GPU denominator are derived deterministically
// from (Model, GPUCap, MaxK, Nodes) at restore, so only the cell contents
// travel.
type TableSnapshot struct {
	JobID  int
	Model  core.Model
	GPUCap int
	MaxK   int
	Nodes  int
	Cells  []uint64
	// RackCells is the cross-rack layer; nil when ensureRack never ran.
	RackCells []uint64 `json:",omitempty"`
}

// IncSnapshot serializes the incremental dirty-set state (incState); the
// ID index is rebuilt from IDs at restore.
type IncSnapshot struct {
	IDs  []int
	Sigs []SigSnapshot
	Rows ga.Matrix
	Cap  []int
}

// SigSnapshot is the serializable form of a job's change signature.
type SigSnapshot struct {
	Model   core.Model
	GPUCap  int
	MinGPUs int
}

// Snapshot captures the scheduler's complete restorable state. The
// receiver must not be scheduling concurrently (callers snapshot between
// rounds, which is the only time the service's round lock is free).
func (p *Pollux) Snapshot() *PolluxSnapshot {
	s := &PolluxSnapshot{
		RNG:       p.src.State(),
		SinceFull: p.sinceFull,
		LastStats: p.lastStats,
	}
	if p.prevJobs != nil {
		s.PrevJobs = append([]int(nil), p.prevJobs...)
	}
	for _, m := range p.prevPop {
		s.PrevPop = append(s.PrevPop, m.Clone())
	}
	ids := make([]int, 0, len(p.tables))
	for id := range p.tables {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := p.tables[id]
		ts := TableSnapshot{
			JobID:  id,
			Model:  t.model,
			GPUCap: t.gpuCap,
			MaxK:   t.maxK,
			Nodes:  t.nodes,
			Cells:  append([]uint64(nil), t.cells...),
		}
		if t.rackCells != nil {
			ts.RackCells = append([]uint64(nil), t.rackCells...)
		}
		s.Tables = append(s.Tables, ts)
	}
	if p.inc != nil {
		inc := &IncSnapshot{
			IDs:  append([]int(nil), p.inc.ids...),
			Rows: p.inc.rows.Clone(),
			Cap:  append([]int(nil), p.inc.cap...),
		}
		for _, sig := range p.inc.sigs {
			inc.Sigs = append(inc.Sigs, SigSnapshot{Model: sig.model, GPUCap: sig.gpuCap, MinGPUs: sig.minGPUs})
		}
		s.Inc = inc
	}
	return s
}

// Restore replaces the scheduler's state with a snapshot taken from a
// Pollux configured with the same PolluxOptions. After Restore, the next
// Schedule call behaves bit-identically to the call the snapshotted
// instance would have made. Shape mismatches (a snapshot from a different
// cluster or a hand-edited file) fail loudly and leave the receiver
// unchanged.
func (p *Pollux) Restore(s *PolluxSnapshot) error {
	if len(s.PrevPop) > 0 {
		for i, m := range s.PrevPop {
			if len(m) != len(s.PrevJobs) {
				return fmt.Errorf("sched: snapshot population matrix %d has %d rows for %d carried jobs", i, len(m), len(s.PrevJobs))
			}
		}
	}
	tables := make(map[int]*speedupTable, len(s.Tables))
	for _, ts := range s.Tables {
		t := newSpeedupTable(ts.Model, ts.GPUCap, ts.MaxK, ts.Nodes)
		if len(ts.Cells) != len(t.cells) {
			return fmt.Errorf("sched: snapshot table for job %d has %d cells, dimensions imply %d", ts.JobID, len(ts.Cells), len(t.cells))
		}
		copy(t.cells, ts.Cells)
		if ts.RackCells != nil {
			t.ensureRack(p.opts.RackPenalty)
			if len(ts.RackCells) != len(t.rackCells) {
				return fmt.Errorf("sched: snapshot rack layer for job %d has %d cells, dimensions imply %d", ts.JobID, len(ts.RackCells), len(t.rackCells))
			}
			copy(t.rackCells, ts.RackCells)
		}
		tables[ts.JobID] = t
	}
	var inc *incState
	if s.Inc != nil {
		if len(s.Inc.Sigs) != len(s.Inc.IDs) || len(s.Inc.Rows) != len(s.Inc.IDs) {
			return fmt.Errorf("sched: snapshot incremental state misaligned: %d ids, %d sigs, %d rows",
				len(s.Inc.IDs), len(s.Inc.Sigs), len(s.Inc.Rows))
		}
		inc = &incState{
			ids:   append([]int(nil), s.Inc.IDs...),
			rows:  s.Inc.Rows.Clone(),
			index: make(map[int]int, len(s.Inc.IDs)),
			cap:   append([]int(nil), s.Inc.Cap...),
		}
		for i, id := range s.Inc.IDs {
			inc.index[id] = i
		}
		for _, sig := range s.Inc.Sigs {
			inc.sigs = append(inc.sigs, jobSig{model: sig.Model, gpuCap: sig.GPUCap, minGPUs: sig.MinGPUs})
		}
	}

	src := detrand.Restore(s.RNG)
	p.src = src
	p.rng = rand.New(src)
	p.prevJobs = nil
	if s.PrevJobs != nil {
		p.prevJobs = append([]int(nil), s.PrevJobs...)
	}
	p.prevPop = nil
	for _, m := range s.PrevPop {
		p.prevPop = append(p.prevPop, m.Clone())
	}
	p.tables = tables
	p.inc = inc
	p.sinceFull = s.SinceFull
	p.lastStats = s.LastStats
	return nil
}
