package sched

import (
	"sort"

	"repro/internal/ga"
)

// Tiresias implements the non-resource-adaptive baseline (Sec. 2.3,
// Sec. 5.2 "Tiresias+TunedJobs"): a discretized two-dimensional
// least-attained-service scheduler. Jobs are grouped into priority queues
// by attained GPU-time service; lower attained service means higher
// priority, preventing head-of-line blocking by large jobs. Within a
// queue, jobs run in submission order. Each job always receives exactly
// the GPU count its user requested, co-located onto as few nodes as
// possible; jobs that do not fit are skipped (backfilling smaller jobs).
type Tiresias struct {
	// QueueThresholds are attained-service boundaries in GPU-seconds;
	// defaults are 1 and 10 GPU-hours, giving three queues.
	QueueThresholds []float64
}

// NewTiresias creates the baseline with the default queue discretization.
func NewTiresias() *Tiresias {
	return &Tiresias{QueueThresholds: []float64{1 * 3600, 10 * 3600}}
}

func (t *Tiresias) Name() string          { return "tiresias" }
func (t *Tiresias) AdaptsBatchSize() bool { return false }

// queueOf returns the priority-queue index for a job (0 is highest).
func (t *Tiresias) queueOf(attained float64) int {
	for q, thr := range t.QueueThresholds {
		if attained < thr {
			return q
		}
	}
	return len(t.QueueThresholds)
}

// Schedule allocates user-requested GPU counts in discretized-LAS order.
func (t *Tiresias) Schedule(v *ClusterView) ga.Matrix {
	order := make([]int, len(v.Jobs))
	for i := range order {
		order[i] = i
	}
	// Within a queue the stable sort keeps the snapshot order, which is
	// submission order in every deployment (traces are submit-sorted and
	// the testbed registers trainers as they arrive) — unless an admit
	// front end reordered the snapshot, in which case its priority (e.g.
	// earliest SLO deadline first) decides within-queue order.
	sort.SliceStable(order, func(a, b int) bool {
		qa := t.queueOf(v.Jobs[order[a]].GPUTime)
		qb := t.queueOf(v.Jobs[order[b]].GPUTime)
		return qa < qb
	})

	free := make([]int, len(v.Capacity))
	copy(free, v.Capacity)
	m := ga.NewMatrix(len(v.Jobs), len(v.Capacity))
	for _, i := range order {
		g := v.Jobs[i].UserGPUs
		row := packJob(free, g)
		if row == nil {
			continue // does not fit; let smaller jobs backfill
		}
		copy(m[i], row)
	}
	return m
}
