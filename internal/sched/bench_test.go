package sched

import (
	"strconv"
	"testing"
)

func BenchmarkPolluxScheduleInterval(b *testing.B) {
	// One full scheduling interval at paper-like GA settings over a
	// moderately loaded cluster: the hot path of the whole system.
	v := viewWith(20, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPollux(PolluxOptions{Population: 50, Generations: 30}, int64(i))
		p.Schedule(v)
	}
}

// BenchmarkPolluxScheduleWorkers sweeps the GA fitness worker count over
// one scheduling interval. On an N-core host the workers/1-to-workers/N
// ns/op ratio is the per-interval speedup; outputs are bit-identical
// across the sweep (TestPolluxWorkersDeterminism).
func BenchmarkPolluxScheduleWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers/"+strconv.Itoa(workers), func(b *testing.B) {
			v := viewWith(20, 16, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewPollux(PolluxOptions{
					Population: 50, Generations: 30, Workers: workers,
				}, int64(i))
				p.Schedule(v)
			}
		})
	}
}

// BenchmarkPolluxScheduleWarmCache measures consecutive intervals with an
// unchanged job set: after the first interval every SPEEDUP cell the GA
// visits is served from the cross-round cache, so later intervals skip
// the golden-section searches entirely.
func BenchmarkPolluxScheduleWarmCache(b *testing.B) {
	v := viewWith(20, 16, 4)
	p := NewPollux(PolluxOptions{Population: 50, Generations: 30}, 1)
	p.Schedule(v) // warm the per-job tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Schedule(v)
	}
}

func BenchmarkTiresiasSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	t := NewTiresias()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Schedule(v)
	}
}

func BenchmarkOptimusSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	o := NewOptimus(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Schedule(v)
	}
}
