package sched

import "testing"

func BenchmarkPolluxScheduleInterval(b *testing.B) {
	// One full scheduling interval at paper-like GA settings over a
	// moderately loaded cluster: the hot path of the whole system.
	v := viewWith(20, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPollux(PolluxOptions{Population: 50, Generations: 30}, int64(i))
		p.Schedule(v)
	}
}

func BenchmarkTiresiasSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	t := NewTiresias()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Schedule(v)
	}
}

func BenchmarkOptimusSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	o := NewOptimus(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Schedule(v)
	}
}
