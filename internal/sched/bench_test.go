package sched

import (
	"strconv"
	"testing"
)

func BenchmarkPolluxScheduleInterval(b *testing.B) {
	// One full scheduling interval at paper-like GA settings over a
	// moderately loaded cluster: the hot path of the whole system.
	v := viewWith(20, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPollux(PolluxOptions{Population: 50, Generations: 30}, int64(i))
		p.Schedule(v)
	}
}

// BenchmarkPolluxScheduleWorkers sweeps the GA fitness worker count over
// one scheduling interval. On an N-core host the workers/1-to-workers/N
// ns/op ratio is the per-interval speedup; outputs are bit-identical
// across the sweep (TestPolluxWorkersDeterminism).
func BenchmarkPolluxScheduleWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers/"+strconv.Itoa(workers), func(b *testing.B) {
			v := viewWith(20, 16, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewPollux(PolluxOptions{
					Population: 50, Generations: 30, Workers: workers,
				}, int64(i))
				p.Schedule(v)
			}
		})
	}
}

// BenchmarkPolluxScheduleWarmCache measures consecutive intervals with an
// unchanged job set: after the first interval every SPEEDUP cell the GA
// visits is served from the cross-round cache, so later intervals skip
// the golden-section searches entirely.
func BenchmarkPolluxScheduleWarmCache(b *testing.B) {
	v := viewWith(20, 16, 4)
	p := NewPollux(PolluxOptions{Population: 50, Generations: 30}, 1)
	p.Schedule(v) // warm the per-job tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Schedule(v)
	}
}

// BenchmarkPolluxScheduleIncremental compares one steady-state scheduling
// round at production-ish scale (128 nodes, 256 jobs) across the three
// optimizer modes: the paper's full re-optimization, dirty-set
// incremental rounds, and incremental + rack-hierarchical decomposition.
// Each round refits one job's model (the typical between-round churn), so
// the incremental modes re-place a small dirty set instead of the whole
// cluster. cells/round is the GA fitness work per round (matrix cells
// scored, deterministic for a fixed seed); the full/incremental ratio is
// the headline reduction the mega exhibit measures at 512-1024 nodes.
func BenchmarkPolluxScheduleIncremental(b *testing.B) {
	modes := []struct {
		name string
		opts PolluxOptions
	}{
		{"full", PolluxOptions{}},
		{"incremental", PolluxOptions{Incremental: true, FullEvery: -1}},
		{"incremental+rack", PolluxOptions{Incremental: true, FullEvery: -1, RackSize: 16}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := mode.opts
			opts.Population, opts.Generations = 30, 20
			p := NewPollux(opts, 1)
			v := viewWith(256, 128, 4)
			v.Current = p.Schedule(v) // commit the first full round
			var cells int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Jobs[i%len(v.Jobs)].Model.Phi *= 1.001 // one agent refit per round
				out := p.Schedule(v)
				v.Current = out
				cells += p.LastRoundStats().FitnessCells
			}
			b.ReportMetric(float64(cells)/float64(b.N), "cells/round")
		})
	}
}

func BenchmarkTiresiasSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	t := NewTiresias()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Schedule(v)
	}
}

func BenchmarkOptimusSchedule(b *testing.B) {
	v := viewWith(20, 16, 4)
	o := NewOptimus(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Schedule(v)
	}
}
