// Package sched implements the cluster-wide scheduling policies evaluated
// in the Pollux paper: PolluxSched itself (Sec. 4.2 — genetic-algorithm
// goodput optimization with job weights, restart penalties, and
// interference avoidance), and the two baselines it is compared against,
// Optimus+Oracle (only-resource-adaptive, marginal-gain greedy on a
// throughput model with oracle remaining work) and Tiresias+TunedJobs
// (non-resource-adaptive, discretized least-attained-service with
// user-fixed GPU counts). The cloud autoscaling policies of Sec. 4.2.2 and
// Sec. 5.3.3 live in autoscale.go.
package sched

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ga"
)

// JobView is the scheduler-visible state of one pending or running job.
// Which fields a policy may consult depends on the policy: Pollux uses the
// reported goodput Model and GPUCap; Optimus uses the Model's throughput
// parameters, MinGPUs, and the RemainingIters oracle; Tiresias uses only
// UserGPUs, GPUTime, and Submit.
type JobView struct {
	ID     int
	Submit float64

	// Tenant is the owning tenant for multi-tenant traces ("" otherwise)
	// and Deadline the absolute SLO deadline in seconds (0 = none). They
	// are carried for the admit front end's priority stage and per-tenant
	// accounting; the scheduling policies themselves do not consult them.
	Tenant   string
	Deadline float64

	// Model is the goodput function reported by the job's PolluxAgent
	// (fitted θsys, current φ, m0, batch limits).
	Model core.Model
	// GPUCap is the exploration cap (at most 2x lifetime max GPUs).
	GPUCap int

	// UserGPUs and UserBatch are the job's fixed submission-time
	// configuration, used by the baseline schedulers.
	UserGPUs  int
	UserBatch int
	// MinGPUs is the fewest GPUs whose combined memory fits UserBatch.
	MinGPUs int
	// RemainingIters is the oracle iterations-to-completion at UserBatch
	// (Sec. 5.2: Optimus+Oracle is given exact remaining work).
	RemainingIters float64

	// GPUTime is the total GPU-seconds consumed so far (attained
	// service for Tiresias; weight decay input for Pollux).
	GPUTime float64
}

// ClusterView is a snapshot handed to a policy at each scheduling
// interval.
type ClusterView struct {
	Now      float64
	Capacity []int // GPUs per node
	Jobs     []JobView
	// Current is the allocation matrix in effect, with rows aligned to
	// Jobs (used for restart penalties and placement stability).
	Current ga.Matrix
}

// TotalGPUs returns the cluster GPU count.
func (v *ClusterView) TotalGPUs() int {
	total := 0
	for _, c := range v.Capacity {
		total += c
	}
	return total
}

// Policy computes a new allocation matrix (rows aligned with view.Jobs) at
// each scheduling interval.
type Policy interface {
	Name() string
	// AdaptsBatchSize reports whether jobs under this policy re-tune
	// their batch size during training (true only for Pollux).
	AdaptsBatchSize() bool
	Schedule(v *ClusterView) ga.Matrix
}

// PlacementOf summarizes an allocation row.
func PlacementOf(row []int) core.Placement {
	k, n := 0, 0
	for _, g := range row {
		k += g
		if g > 0 {
			n++
		}
	}
	return core.Placement{GPUs: k, Nodes: n}
}

// packJob places g GPUs for one job onto the nodes with the most free
// GPUs, minimizing the number of nodes spanned (the co-location preference
// shared by all three schedulers). It mutates free and returns the
// per-node allocation, or nil if fewer than g GPUs are free in total.
func packJob(free []int, g int) []int {
	total := 0
	for _, f := range free {
		total += f
	}
	if g <= 0 || total < g {
		return nil
	}
	row := make([]int, len(free))
	// Repeatedly take from the node with the most free GPUs.
	remaining := g
	for remaining > 0 {
		best := -1
		for n, f := range free {
			if f > 0 && (best < 0 || f > free[best]) {
				best = n
			}
		}
		take := free[best]
		if take > remaining {
			take = remaining
		}
		row[best] += take
		free[best] -= take
		remaining -= take
	}
	return row
}

// packAll builds an allocation matrix by packing per-job GPU counts in
// descending size order (large jobs first reduces fragmentation and node
// spread). demands maps job index to GPU count; jobs with zero demand get
// empty rows.
func packAll(capacity []int, demands []int) ga.Matrix {
	free := make([]int, len(capacity))
	copy(free, capacity)
	m := ga.NewMatrix(len(demands), len(capacity))
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return demands[order[a]] > demands[order[b]] })
	for _, j := range order {
		if demands[j] <= 0 {
			continue
		}
		row := packJob(free, demands[j])
		if row == nil {
			continue
		}
		copy(m[j], row)
	}
	return m
}
