package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/models"
)

func TestPlacementOf(t *testing.T) {
	cases := []struct {
		row  []int
		want core.Placement
	}{
		{[]int{0, 0}, core.Placement{GPUs: 0, Nodes: 0}},
		{[]int{4, 0}, core.Placement{GPUs: 4, Nodes: 1}},
		{[]int{2, 2, 1}, core.Placement{GPUs: 5, Nodes: 3}},
	}
	for _, c := range cases {
		if got := PlacementOf(c.row); got != c.want {
			t.Errorf("PlacementOf(%v) = %v, want %v", c.row, got, c.want)
		}
	}
}

func TestPackJobCoLocates(t *testing.T) {
	free := []int{4, 4, 4}
	row := packJob(free, 4)
	if row == nil {
		t.Fatal("pack failed")
	}
	if PlacementOf(row).Nodes != 1 {
		t.Errorf("4 GPUs should pack onto one node: %v", row)
	}
	if free[0]+free[1]+free[2] != 8 {
		t.Errorf("free not decremented: %v", free)
	}
}

func TestPackJobSpans(t *testing.T) {
	free := []int{2, 3, 1}
	row := packJob(free, 5)
	pl := PlacementOf(row)
	if pl.GPUs != 5 {
		t.Fatalf("packed %d GPUs, want 5", pl.GPUs)
	}
	if pl.Nodes != 2 {
		t.Errorf("5 GPUs over (2,3,1) should span 2 nodes: %v", row)
	}
}

func TestPackJobInsufficient(t *testing.T) {
	free := []int{1, 1}
	if row := packJob(free, 3); row != nil {
		t.Errorf("pack should fail: %v", row)
	}
	if free[0] != 1 || free[1] != 1 {
		t.Errorf("free mutated on failure: %v", free)
	}
}

func TestPackAllRespectsCapacity(t *testing.T) {
	capacity := []int{4, 4}
	m := packAll(capacity, []int{3, 3, 2})
	if !ga.Feasible(m, capacity, false) {
		t.Errorf("packAll produced infeasible matrix: %v", m)
	}
	total := 0
	for j := range m {
		total += m.JobGPUs(j)
	}
	if total != 8 {
		t.Errorf("packed %d GPUs, want 8", total)
	}
}

func TestPackAllSkipsOversized(t *testing.T) {
	m := packAll([]int{2}, []int{5, 1})
	if m.JobGPUs(0) != 0 {
		t.Errorf("oversized job allocated: %v", m[0])
	}
	if m.JobGPUs(1) != 1 {
		t.Errorf("small job not allocated: %v", m[1])
	}
}

// viewWith builds a cluster view with n identical tuned resnet18 jobs,
// reporting their ground-truth goodput models (well-explored agents).
func viewWith(n int, nodes, perNode int) *ClusterView {
	spec := models.ByName("resnet18")
	capacity := make([]int, nodes)
	for i := range capacity {
		capacity[i] = perNode
	}
	v := &ClusterView{Capacity: capacity, Current: ga.NewMatrix(n, nodes)}
	for i := 0; i < n; i++ {
		v.Jobs = append(v.Jobs, JobView{
			ID:             i,
			Model:          spec.GoodputModel(0.5),
			GPUCap:         nodes * perNode,
			UserGPUs:       2,
			UserBatch:      512,
			MinGPUs:        1,
			RemainingIters: 1e4,
		})
	}
	return v
}

func TestPolluxAllocatesAllGPUsWhenScarce(t *testing.T) {
	v := viewWith(8, 4, 4) // 8 jobs, 16 GPUs
	p := NewPollux(PolluxOptions{Population: 30, Generations: 30}, 1)
	m := p.Schedule(v)
	if !ga.Feasible(m, v.Capacity, true) {
		t.Fatalf("infeasible allocation: %v", m)
	}
	total := 0
	allocated := 0
	for j := range m {
		k := m.JobGPUs(j)
		total += k
		if k > 0 {
			allocated++
		}
	}
	if total < 12 {
		t.Errorf("only %d of 16 GPUs allocated", total)
	}
	if allocated < 6 {
		t.Errorf("only %d of 8 jobs running", allocated)
	}
}

func TestPolluxRespectsGPUCap(t *testing.T) {
	v := viewWith(1, 4, 4)
	v.Jobs[0].GPUCap = 2 // fresh job: exploration cap
	p := NewPollux(PolluxOptions{Population: 30, Generations: 30}, 2)
	m := p.Schedule(v)
	if k := m.JobGPUs(0); k > 2 {
		t.Errorf("allocation %d exceeds exploration cap 2", k)
	}
	if k := m.JobGPUs(0); k == 0 {
		t.Error("job left unscheduled despite free GPUs")
	}
}

func TestPolluxWeightDecay(t *testing.T) {
	p := NewPollux(PolluxOptions{Lambda: 0.5}, 3)
	if w := p.weight(3600); w != 1 {
		t.Errorf("weight below threshold = %v, want 1", w)
	}
	w := p.weight(16 * 3600) // 4x the 4 GPU-hour threshold
	if w >= 1 || w <= 0 {
		t.Errorf("decayed weight = %v, want in (0, 1)", w)
	}
	// λ=0 disables decay.
	p0 := NewPollux(PolluxOptions{Lambda: 0}, 3)
	if w := p0.weight(1e9); w != 1 {
		t.Errorf("λ=0 weight = %v, want 1", w)
	}
}

func TestPolluxEmptyCluster(t *testing.T) {
	p := NewPollux(PolluxOptions{Population: 10, Generations: 5}, 4)
	v := &ClusterView{Capacity: []int{4, 4}}
	m := p.Schedule(v)
	if len(m) != 0 {
		t.Errorf("empty view allocation = %v", m)
	}
}

func TestPolluxPopulationCarryOver(t *testing.T) {
	v := viewWith(4, 4, 4)
	p := NewPollux(PolluxOptions{Population: 20, Generations: 10}, 5)
	first := p.Schedule(v)
	if p.prevPop == nil {
		t.Fatal("population not saved")
	}
	// Apply and reschedule: stable state should not thrash.
	v.Current = first
	second := p.Schedule(v)
	if !ga.Feasible(second, v.Capacity, true) {
		t.Fatal("infeasible second allocation")
	}
	// With the restart penalty and an already-good allocation, most jobs
	// keep their placement.
	same := 0
	for j := range second {
		if samePlacementRow(second[j], first[j]) {
			same++
		}
	}
	if same < 2 {
		t.Errorf("only %d of 4 jobs kept placement; restart penalty ineffective", same)
	}
}

func TestPolluxInterferenceAvoidanceToggle(t *testing.T) {
	v := viewWith(6, 4, 2) // small nodes force spanning
	p := NewPollux(PolluxOptions{Population: 30, Generations: 20}, 6)
	m := p.Schedule(v)
	if !ga.Feasible(m, v.Capacity, true) {
		t.Errorf("avoidance enabled but constraint violated: %v", m)
	}
	pOff := NewPollux(PolluxOptions{Population: 30, Generations: 20, DisableInterferenceAvoidance: true}, 6)
	mOff := pOff.Schedule(v)
	if !ga.Feasible(mOff, v.Capacity, false) {
		t.Errorf("capacity violated with avoidance off: %v", mOff)
	}
}

func TestSpeedupTableMemoizes(t *testing.T) {
	spec := models.ByName("resnet18")
	tab := newSpeedupTable(spec.GoodputModel(0.5), 16, 16, 4)
	a := tab.Speedup(8, 2)
	b := tab.Speedup(8, 2)
	//pollux:floateq-ok memoization check: the second lookup must return the identical stored value
	if a != b {
		t.Errorf("memoized speedup differs: %v vs %v", a, b)
	}
	if a <= 1 {
		t.Errorf("8-GPU speedup = %v, want > 1", a)
	}
	if tab.Speedup(17, 2) != 0 {
		t.Error("speedup beyond cap should be 0")
	}
	if tab.Speedup(0, 0) != 0 {
		t.Error("zero allocation speedup should be 0")
	}
}
