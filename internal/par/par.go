// Package par provides the bounded deterministic parallel-for shared by
// the GA's concurrent fitness evaluation and the simulator's multi-seed
// fan-out.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), fanning the calls out over at
// most workers goroutines; workers <= 1 runs them inline on the caller's
// goroutine. Work is handed out by an atomic counter, so callers obtain
// results independent of interleaving by writing to index-owned slots
// and reducing in index order after For returns.
func For(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
