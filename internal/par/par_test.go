package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 57
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(4, 0, func(i int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForSlottedResultsMatchSerial(t *testing.T) {
	const n = 200
	fn := func(i int) float64 { return float64(i*i) / 7 }
	serial := make([]float64, n)
	For(1, n, func(i int) { serial[i] = fn(i) })
	parallel := make([]float64, n)
	For(8, n, func(i int) { parallel[i] = fn(i) })
	for i := range serial {
		//pollux:floateq-ok bit-identical determinism gate: parallel execution must reproduce the serial result
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
