package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/results"
)

// TestOutcomeRecord pins the Outcome → results.Record conversion: metric
// sorting, units, default and per-metric tolerance bands, and metadata.
func TestOutcomeRecord(t *testing.T) {
	o := Outcome{
		ID: "x", Title: "t", Policies: []string{"Pollux"}, Seeds: []int64{1, 2},
		RelTol: 0.05,
		Notes:  []string{"n"},
	}
	o.setUnit("b/metric", "s", 2.0)
	o.set("a/metric", 1.0)
	o.setUnit("c/metric", "frac", 3.0)
	o.setTol("c/metric", 0, 0.25)

	r := o.Record("quick")
	if r.Exhibit != "x" || r.Scale != "quick" || len(r.Seeds) != 2 || r.Policies[0] != "Pollux" {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if len(r.Metrics) != 3 {
		t.Fatalf("metrics = %d, want 3", len(r.Metrics))
	}
	for i, want := range []string{"a/metric", "b/metric", "c/metric"} {
		if r.Metrics[i].Name != want {
			t.Errorf("metric[%d] = %q, want %q (sorted)", i, r.Metrics[i].Name, want)
		}
	}
	//pollux:floateq-ok the defaulted tolerance is assigned from this same 0.05 literal; the check is verbatim propagation
	if m := r.Metrics[0]; m.Unit != "" || m.RelTol != 0.05 || m.AbsTol != 0 {
		t.Errorf("default band not applied: %+v", m)
	}
	//pollux:floateq-ok the defaulted tolerance is assigned from this same 0.05 literal; the check is verbatim propagation
	if m := r.Metrics[1]; m.Unit != "s" || m.RelTol != 0.05 {
		t.Errorf("unit lost: %+v", m)
	}
	if m := r.Metrics[2]; m.RelTol != 0 || m.AbsTol != 0.25 {
		t.Errorf("per-metric override not applied: %+v", m)
	}
	if len(r.Notes) != 1 {
		t.Errorf("notes lost: %+v", r.Notes)
	}
}

// TestHeadlinesCoverEveryExhibit keeps the headline registry in sync with
// the exhibit registry, and its metric names in sync with what the
// exhibits actually emit: the cheap closed-form exhibits are re-run, the
// sim-backed ones are cross-checked against the checked-in quick
// baseline. A dead name would silently vanish from -md tables (the
// fig7 benchmark had exactly this bug with a renamed policy key).
func TestHeadlinesCoverEveryExhibit(t *testing.T) {
	h := Headlines()
	for _, id := range All() {
		if len(h[id]) == 0 {
			t.Errorf("exhibit %s has no headline metrics", id)
		}
	}
	for id := range h {
		found := false
		for _, known := range All() {
			if id == known {
				found = true
			}
		}
		if !found {
			t.Errorf("headline entry %s is not a registered exhibit", id)
		}
	}
	cheap := map[string]bool{}
	for _, id := range []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig6"} {
		cheap[id] = true
		o, err := Run(id, QuickScale())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range h[id] {
			if _, ok := o.Values[name]; !ok {
				t.Errorf("%s: headline metric %q not emitted", id, name)
			}
		}
	}
	base, err := results.ReadFile(filepath.Join("..", "..", "bench", "baselines", "quick.json"))
	if err != nil {
		t.Fatalf("read quick baseline: %v", err)
	}
	for _, id := range All() {
		if cheap[id] {
			continue
		}
		rec, ok := base.Find(id)
		if !ok {
			t.Errorf("%s: not in the quick baseline", id)
			continue
		}
		for _, name := range h[id] {
			if _, ok := rec.Metric(name); !ok {
				t.Errorf("%s: headline metric %q not in the baseline (dead name?)", id, name)
			}
		}
	}
}

func TestScaleByName(t *testing.T) {
	q, err := ScaleByName("quick")
	if err != nil || q.Jobs != QuickScale().Jobs {
		t.Errorf("quick: %+v, %v", q, err)
	}
	f, err := ScaleByName("full")
	if err != nil || f.Jobs != FullScale().Jobs {
		t.Errorf("full: %+v, %v", f, err)
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}
