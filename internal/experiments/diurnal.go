package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Diurnal64 is a scale exhibit beyond the paper's evaluation: a 64-node
// (256-GPU) cluster serving a multi-day trace whose submissions follow an
// inhomogeneous Poisson process with the 24-hour DayCycle diurnal rate —
// the workload shape of a production cluster rather than the paper's
// single 8-hour window. It became tractable once the event engine made
// simulated time cheap and the parallel GA made scheduling rounds cheap;
// the expected load is 4×Scale.Jobs submissions per day over Scale.Days
// days, so quiet nights drain the queue that afternoon peaks build up.
//
// Optimus is omitted: its oracle needs per-job remaining-work bookkeeping
// that adds nothing to the scale story, and the Pollux-vs-Tiresias gap is
// the paper's headline contrast.
func Diurnal64(sc Scale) Outcome {
	days := sc.Days
	if days <= 0 {
		days = 2
	}
	const nodes = 64
	perNode := sc.GPUsPerNode
	if perNode <= 0 {
		perNode = 4
	}
	hours := days * 24
	jobsPerDay := 4 * sc.Jobs
	expJobs := int(float64(jobsPerDay)*days + 0.5)
	seeds := sc.Seeds
	if len(seeds) > 2 {
		seeds = seeds[:2] // multi-day runs are long; two traces suffice
	}

	o := Outcome{
		ID:    "diurnal64",
		Title: fmt.Sprintf("64-node cluster, %.1f-day diurnal Poisson trace (~%d jobs)", days, expJobs),
		Header: []string{
			"policy", "avg JCT", "p99 JCT", "makespan", "goodput (ex/s)", "completed",
		},
		Policies: []string{"Pollux", "Tiresias+TunedJobs"},
		Seeds:    seeds,
		RelTol:   simRelTol,
	}

	genTrace := func(rng *rand.Rand) workload.Trace {
		return workload.Generate(rng, workload.Options{
			Jobs: expJobs, Hours: hours,
			GPUsPerNode: perNode, MaxGPUs: nodes * perNode / 4,
			Poisson: true,
		})
	}
	cfg := sim.Config{
		Nodes: nodes, GPUsPerNode: perNode,
		Tick: sc.Tick, UseTunedConfig: true,
		Parallel: sc.Parallel, RefitWorkers: sc.RefitWorkers,
		// A one-day drain past the submission window bounds the run.
		MaxTime: (days + 1) * 24 * 3600,
	}

	factories := []policyFactory{
		{"Pollux", func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: sc.PolluxPop, Generations: sc.PolluxGens,
			}, seed)
		}},
		{"Tiresias+TunedJobs", func(seed int64) sched.Policy {
			return sched.NewTiresias()
		}},
	}
	for _, f := range factories {
		sum := sim.RunSeeds(seeds, genTrace, f.make, cfg)
		o.Rows = append(o.Rows, []string{
			f.name,
			metrics.Hours(sum.AvgJCT), metrics.Hours(sum.P99JCT), metrics.Hours(sum.Makespan),
			fmt.Sprintf("%.0f", sum.AvgGoodputX),
			fmt.Sprintf("%d/%d", sum.Completed, sum.Total),
		})
		o.setUnit(f.name+"/avgJCT", "s", sum.AvgJCT)
		o.setUnit(f.name+"/p99JCT", "s", sum.P99JCT)
		o.setUnit(f.name+"/makespan", "s", sum.Makespan)
		o.setUnit(f.name+"/goodput", "ex/s", sum.AvgGoodputX)
		o.setUnit(f.name+"/completed", "jobs", float64(sum.Completed))
		o.setUnit(f.name+"/total", "jobs", float64(sum.Total))
	}
	// Configuration echoes: exact by construction, so gate them exactly —
	// a drift here means the exhibit's shape changed, not its results.
	o.setUnit("days", "days", days)
	o.setTol("days", 0, 0)
	o.setUnit("expectedJobs", "jobs", float64(expJobs))
	o.setTol("expectedJobs", 0, 0)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"inhomogeneous Poisson arrivals, 24h cycle peak/trough = 3.0, %d nodes x %d GPUs, %d seed(s)",
		nodes, perNode, len(seeds)))
	return o
}
