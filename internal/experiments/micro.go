package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gns"
	"repro/internal/models"
	"repro/internal/workload"
)

func packed(gpus, perNode int) core.Placement {
	return core.Placement{GPUs: gpus, Nodes: (gpus + perNode - 1) / perNode}
}

// Fig1a reproduces Fig. 1a: throughput vs number of GPUs for ResNet-18 on
// CIFAR-10 at batch sizes 512 and 2048 — job scalability depends on the
// batch size.
func Fig1a() Outcome {
	spec := models.ByName("resnet18")
	o := Outcome{
		ID:     "fig1a",
		Title:  "Throughput vs GPUs by batch size (ResNet-18/CIFAR-10)",
		Header: []string{"gpus", "imgs/s @512", "imgs/s @2048"},
	}
	for _, k := range []int{1, 2, 4, 8, 12, 16} {
		pl := packed(k, 4)
		t512 := spec.Truth.Throughput(pl, 512)
		t2048 := spec.Truth.Throughput(pl, 2048)
		o.Rows = append(o.Rows, []string{
			fmt.Sprint(k), fmt.Sprintf("%.0f", t512), fmt.Sprintf("%.0f", t2048),
		})
		o.setUnit(fmt.Sprintf("tput512/%d", k), "ex/s", t512)
		o.setUnit(fmt.Sprintf("tput2048/%d", k), "ex/s", t2048)
	}
	gain512 := o.Values["tput512/16"] / o.Values["tput512/1"]
	gain2048 := o.Values["tput2048/16"] / o.Values["tput2048/1"]
	o.setUnit("scaling512", "x", gain512)
	o.setUnit("scaling2048", "x", gain2048)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"16-GPU scaling: %.1fx at batch 512 vs %.1fx at batch 2048 (paper: larger batch scales better)",
		gain512, gain2048))
	return o
}

// Fig1b reproduces Fig. 1b: the most efficient (goodput-optimal) batch
// size by GPU count, for the first and second half of training.
func Fig1b() Outcome {
	spec := models.ByName("resnet18")
	o := Outcome{
		ID:     "fig1b",
		Title:  "Best batch size vs GPUs by training stage (ResNet-18/CIFAR-10)",
		Header: []string{"gpus", "best batch (first half)", "best batch (second half)"},
	}
	for _, k := range []int{2, 4, 8, 16} {
		pl := packed(k, 4)
		first := spec.GoodputModel(0.25)
		second := spec.GoodputModel(0.75)
		mf, _, _ := first.OptimalBatch(pl)
		ms, _, _ := second.OptimalBatch(pl)
		o.Rows = append(o.Rows, []string{fmt.Sprint(k), fmt.Sprint(mf), fmt.Sprint(ms)})
		o.setUnit(fmt.Sprintf("first/%d", k), "examples", float64(mf))
		o.setUnit(fmt.Sprintf("second/%d", k), "examples", float64(ms))
	}
	o.Notes = append(o.Notes,
		"paper: the best batch size grows with allocated GPUs and with training progress")
	return o
}

// Fig2a reproduces Fig. 2a: statistical efficiency over training progress
// for small vs large batch sizes (ResNet-50/ImageNet), with the jumps at
// the learning-rate decay epochs.
func Fig2a() Outcome {
	spec := models.ByName("resnet50")
	o := Outcome{
		ID:     "fig2a",
		Title:  "Statistical efficiency vs progress (ResNet-50/ImageNet)",
		Header: []string{"progress", "eff @m=800", "eff @m=8000"},
	}
	for p := 0.0; p <= 1.0001; p += 0.1 {
		phi := spec.Phi(p)
		e800 := core.Efficiency(phi, spec.M0, 800)
		e8000 := core.Efficiency(phi, spec.M0, 8000)
		o.Rows = append(o.Rows, []string{
			fmt.Sprintf("%.1f", p), fmt.Sprintf("%.3f", e800), fmt.Sprintf("%.3f", e8000),
		})
		o.setUnit(fmt.Sprintf("e800/%.1f", p), "frac", e800)
		o.setUnit(fmt.Sprintf("e8000/%.1f", p), "frac", e8000)
	}
	o.Notes = append(o.Notes,
		"efficiency gap between batch sizes narrows late in training; decay milestones jump it upward")
	return o
}

// Fig2b reproduces Fig. 2b: efficiency predicted by Eqn. 7 from a noise
// scale *measured* (via the gns estimators on synthetic per-replica
// gradients) at one batch size, compared with the ground-truth efficiency
// across a range of batch sizes.
func Fig2b() Outcome {
	spec := models.ByName("resnet50")
	const measureProgress = 15.0 / 90.0 // phi measured at epoch 15
	phiTrue := spec.Phi(measureProgress)

	// Measure phi with the replica estimator at batch 4000 (8 replicas
	// of 500), from synthetic gradients with the matching noise scale.
	rng := rand.New(rand.NewSource(42))
	const dim, muSq = 64, 1.0
	exVar := phiTrue * muSq
	mu := make([]float64, dim)
	for i := range mu {
		mu[i] = math.Sqrt(muSq / dim)
	}
	tr := gns.NewTracker(0.995)
	for it := 0; it < 1500; it++ {
		local := make([][]float64, 8)
		for r := range local {
			g := make([]float64, dim)
			sd := math.Sqrt(exVar / dim / 500)
			for i := range g {
				g[i] = mu[i] + rng.NormFloat64()*sd
			}
			local[r] = g
		}
		e, _ := gns.FromReplicas(local, 500)
		tr.Observe(e)
	}
	phiMeasured := tr.NoiseScale()

	o := Outcome{
		ID:     "fig2b",
		Title:  "Actual vs Eqn.7-predicted efficiency across batch sizes (ResNet-50)",
		Header: []string{"batch", "actual", "predicted"},
	}
	maxErr := 0.0
	for m := 512; m <= 16384; m *= 2 {
		actual := core.Efficiency(phiTrue, spec.M0, m)
		pred := core.Efficiency(phiMeasured, spec.M0, m)
		if e := math.Abs(pred - actual); e > maxErr {
			maxErr = e
		}
		o.Rows = append(o.Rows, []string{
			fmt.Sprint(m), fmt.Sprintf("%.3f", actual), fmt.Sprintf("%.3f", pred),
		})
		o.setUnit(fmt.Sprintf("actual/%d", m), "frac", actual)
		o.setUnit(fmt.Sprintf("pred/%d", m), "frac", pred)
	}
	o.set("phiTrue", phiTrue)
	o.set("phiMeasured", phiMeasured)
	o.set("maxAbsErr", maxErr)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"phi measured at batch 4000: %.0f (true %.0f); max |pred-actual| = %.3f (paper: close agreement)",
		phiMeasured, phiTrue, maxErr))
	return o
}

// Fig3 reproduces Fig. 3: the throughput model fit to noisy measured
// values, shown against ground truth vs node count (3a) and vs batch size
// (3b).
func Fig3() Outcome {
	spec := models.ByName("resnet50")
	rng := rand.New(rand.NewSource(7))

	// Observations over a grid of placements and batch sizes, 5% noise.
	var samples []core.Sample
	for _, k := range []int{1, 2, 4, 8, 12, 16, 24, 32} {
		pl := packed(k, 4)
		for m := 128; m <= k*spec.MaxBatchPerGPU && m <= 8192; m *= 2 {
			ti := spec.Truth.TIter(pl, float64(m)) * (1 + 0.05*(rng.Float64()*2-1))
			samples = append(samples, core.Sample{Placement: pl, Batch: m, TIter: ti})
		}
	}
	fit := core.Fit(samples, core.Params{}, core.Exploration{MaxGPUs: 32, MaxNodes: 8})

	o := Outcome{
		ID:     "fig3",
		Title:  "Throughput model fit (ResNet-50): actual vs model",
		Header: []string{"sweep", "x", "actual imgs/s", "model imgs/s"},
		// The fit itself is deterministic, but optimizer tweaks (warm
		// starts, line-search changes) legitimately move the minimum at
		// the percent level, so the gate grants a small band rather than
		// the exact match the other closed-form exhibits get.
		RelTol: 0.02,
	}
	sumRelErr, n := 0.0, 0
	// 3a: throughput vs nodes at batch 2048 (4 GPUs per node).
	for nodes := 1; nodes <= 8; nodes++ {
		pl := core.Placement{GPUs: nodes * 4, Nodes: nodes}
		actual := spec.Truth.Throughput(pl, 2048)
		model := fit.Throughput(pl, 2048)
		sumRelErr += math.Abs(model-actual) / actual
		n++
		o.Rows = append(o.Rows, []string{
			"nodes", fmt.Sprint(nodes), fmt.Sprintf("%.0f", actual), fmt.Sprintf("%.0f", model),
		})
	}
	// 3b: throughput vs batch size on 4 nodes.
	pl := core.Placement{GPUs: 16, Nodes: 4}
	for m := 512; m <= 3072; m += 512 {
		actual := spec.Truth.Throughput(pl, float64(m))
		model := fit.Throughput(pl, float64(m))
		sumRelErr += math.Abs(model-actual) / actual
		n++
		o.Rows = append(o.Rows, []string{
			"batch", fmt.Sprint(m), fmt.Sprintf("%.0f", actual), fmt.Sprintf("%.0f", model),
		})
	}
	meanErr := sumRelErr / float64(n)
	o.setUnit("meanRelErr", "frac", meanErr)
	o.set("rmsle", core.RMSLE(fit, samples))
	o.Notes = append(o.Notes, fmt.Sprintf(
		"mean relative error of fit across both sweeps: %.1f%% (paper: model represents data closely)",
		100*meanErr))
	return o
}

// Fig6 reproduces Fig. 6: job submissions per hour of the synthetic
// workload's diurnal pattern.
func Fig6() Outcome {
	rng := rand.New(rand.NewSource(6))
	tr := workload.Generate(rng, workload.Options{Jobs: 4000})
	counts := tr.HourlyCounts()
	o := Outcome{
		ID:     "fig6",
		Title:  "Job submissions per hour (diurnal pattern)",
		Header: []string{"hour", "submissions", "histogram"},
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	for h, c := range counts {
		bar := histBar(int(math.Round(40 * float64(c) / float64(peak))))
		o.Rows = append(o.Rows, []string{fmt.Sprint(h + 1), fmt.Sprint(c), bar})
		o.setUnit(fmt.Sprintf("hour/%d", h+1), "jobs", float64(c))
	}
	o.setUnit("peakRatio", "x", float64(counts[3])/float64(counts[0]))
	o.Notes = append(o.Notes, fmt.Sprintf(
		"hour-4 peak is %.1fx the hour-1 rate (paper: 3x)", o.Values["peakRatio"]))
	return o
}

func histBar(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
