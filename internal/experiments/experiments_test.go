package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The micro experiments (model-level, no simulation) are cheap and their
// reproduction claims can be asserted directly.

func TestFig1aLargerBatchScalesBetter(t *testing.T) {
	o := Fig1a()
	if len(o.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(o.Rows))
	}
	if o.Values["scaling2048"] <= o.Values["scaling512"] {
		t.Errorf("batch 2048 scaling %.2f not better than 512's %.2f",
			o.Values["scaling2048"], o.Values["scaling512"])
	}
	// Throughput at 2048 with 16 GPUs should be several times the
	// 512-batch 16-GPU throughput (Fig. 1a shows ~10k vs ~3k).
	if o.Values["tput2048/16"] < 2*o.Values["tput512/16"] {
		t.Errorf("16-GPU throughput: %v @2048 vs %v @512, want >= 2x",
			o.Values["tput2048/16"], o.Values["tput512/16"])
	}
}

func TestFig1bBatchGrowsWithGPUsAndStage(t *testing.T) {
	o := Fig1b()
	for _, k := range []int{2, 4, 8, 16} {
		f := o.Values[keyInt("first", k)]
		s := o.Values[keyInt("second", k)]
		if s < f {
			t.Errorf("K=%d: second-half best batch %v < first-half %v", k, s, f)
		}
	}
	if o.Values["second/16"] <= o.Values["second/2"] {
		t.Errorf("best batch should grow with GPUs: %v vs %v",
			o.Values["second/16"], o.Values["second/2"])
	}
}

func keyInt(prefix string, k int) string {
	switch k {
	case 2:
		return prefix + "/2"
	case 4:
		return prefix + "/4"
	case 8:
		return prefix + "/8"
	default:
		return prefix + "/16"
	}
}

func TestFig2aEfficiencyShapes(t *testing.T) {
	o := Fig2a()
	// Small batch is always at least as efficient as the big batch.
	for p := 0.0; p <= 1.0001; p += 0.1 {
		k8 := o.Values[fmt.Sprintf("e8000/%.1f", p)]
		k0 := o.Values[fmt.Sprintf("e800/%.1f", p)]
		if k8 > k0+1e-9 {
			t.Errorf("p=%.1f: eff(8000)=%v > eff(800)=%v", p, k8, k0)
		}
	}
	// The large-batch efficiency improves substantially over training.
	if o.Values["e8000/1.0"] < 2*o.Values["e8000/0.0"] {
		t.Errorf("eff(8000) at end %v not much better than start %v",
			o.Values["e8000/1.0"], o.Values["e8000/0.0"])
	}
}

func TestFig2bPredictionCloseToActual(t *testing.T) {
	o := Fig2b()
	if o.Values["maxAbsErr"] > 0.08 {
		t.Errorf("max |pred-actual| = %v, want <= 0.08 (close agreement)", o.Values["maxAbsErr"])
	}
	rel := o.Values["phiMeasured"] / o.Values["phiTrue"]
	if rel < 0.8 || rel > 1.25 {
		t.Errorf("measured phi off by %vx", rel)
	}
}

func TestFig3FitErrorSmall(t *testing.T) {
	o := Fig3()
	if o.Values["meanRelErr"] > 0.10 {
		t.Errorf("mean relative fit error = %v, want <= 10%%", o.Values["meanRelErr"])
	}
	if o.Values["rmsle"] > 0.10 {
		t.Errorf("RMSLE = %v, want <= 0.10", o.Values["rmsle"])
	}
}

func TestFig6DiurnalPeak(t *testing.T) {
	o := Fig6()
	if len(o.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 hours", len(o.Rows))
	}
	if r := o.Values["peakRatio"]; r < 2.4 || r > 3.6 {
		t.Errorf("peak ratio = %v, want ~3", r)
	}
}

func TestRunDispatch(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig6"} {
		o, err := Run(id, QuickScale())
		if err != nil {
			t.Fatalf("Run(%q): %v", id, err)
		}
		if o.ID != id || len(o.Rows) == 0 {
			t.Errorf("Run(%q) returned empty outcome", id)
		}
		if s := o.String(); !strings.Contains(s, id) {
			t.Errorf("String() missing id: %s", s)
		}
	}
	if _, err := Run("bogus", QuickScale()); err == nil {
		t.Error("Run(bogus) did not error")
	}
}

func TestAllListsEveryExperiment(t *testing.T) {
	ids := All()
	if len(ids) != 17 {
		t.Fatalf("All() = %d experiments, want 17 (12 paper exhibits + diurnal64 + fairness + replayparity + validate + mega)", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
