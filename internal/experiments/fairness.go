package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/admit"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fairness is a multi-tenant serving exhibit beyond the paper's
// evaluation: three tenants share one contended cluster behind the
// internal/admit front end, and the exhibit reports what each tenant
// experiences — JCT, goodput, queue depth, admission and rejection
// counts, SLO attainment — under Pollux vs Tiresias+TunedJobs.
//
// The tenant mix is the classic serving split. "prod" carries a tight
// SLO and an unlimited quota; "batch" submits the same volume but holds
// a quota of half its jobs, so the quota stage visibly rejects the
// overflow; "burst" is a small bursty tenant with a one-hour arrival
// spike, an SLO, and a tiny quota. Admission runs the per-tenant quota
// policy and the priority stage orders each scheduling round's snapshot
// by earliest deadline, so the exhibit shows both stages earning their
// keep: rejection counts are a pure function of the trace (identical
// across policies and gated exactly), while JCT/goodput splits show how
// much of prod's SLO attainment comes from the scheduler vs the front
// end.
func Fairness(sc Scale) Outcome {
	seeds := sc.Seeds
	if len(seeds) > 2 {
		seeds = seeds[:2] // front-end accounting is deterministic; two traces suffice
	}
	// Tenant shares of the trace: 40% prod, 40% batch, 20% burst, at
	// least one job each so short smokes still exercise every tenant.
	prodJobs := max(sc.Jobs*2/5, 1)
	batchJobs := max(sc.Jobs*2/5, 1)
	burstJobs := max(sc.Jobs-prodJobs-batchJobs, 1)
	batchQuota := max(batchJobs/2, 1)
	burstQuota := max(burstJobs/3, 1)
	tenants := []workload.TenantSpec{
		{Name: "prod", Jobs: prodJobs, SLOHours: sc.Hours},
		{Name: "batch", Jobs: batchJobs},
		{Name: "burst", Jobs: burstJobs, SLOHours: sc.Hours / 2,
			// All burst arrivals land in the first hour of the window.
			Cycle: []float64{1, 0},
		},
	}
	feOpts := &admit.Options{
		Admission: admit.AdmitQuota,
		Quotas:    map[string]int{"batch": batchQuota, "burst": burstQuota},
		Priority:  admit.PrioritySLO,
	}

	o := Outcome{
		ID: "fairness",
		Title: fmt.Sprintf("Multi-tenant fairness under admission control (%d prod / %d batch / %d burst jobs)",
			prodJobs, batchJobs, burstJobs),
		Header: []string{
			"policy", "tenant", "avg JCT", "goodput (ex/s)", "queue depth", "admitted", "rejected", "SLO met",
		},
		Policies: []string{"Pollux", "Tiresias+TunedJobs"},
		Seeds:    seeds,
		RelTol:   simRelTol,
	}

	genTrace := func(rng *rand.Rand) workload.Trace {
		return workload.Generate(rng, workload.Options{
			Hours:       sc.Hours,
			GPUsPerNode: sc.GPUsPerNode, MaxGPUs: sc.Nodes * sc.GPUsPerNode,
			Tenants: tenants,
		})
	}
	cfg := sc.simConfig()
	cfg.FrontEnd = feOpts

	factories := []policyFactory{
		{"Pollux", func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: sc.PolluxPop, Generations: sc.PolluxGens,
			}, seed)
		}},
		{"Tiresias+TunedJobs", func(seed int64) sched.Policy {
			return sched.NewTiresias()
		}},
	}
	for _, f := range factories {
		full := sim.RunSeedsFull(seeds, genTrace, f.make, cfg)
		perRun := make([]map[string]metrics.TenantSummary, len(full))
		for i, res := range full {
			perRun[i] = res.PerTenant
		}
		avg := metrics.AverageTenants(perRun)
		names := make([]string, 0, len(avg))
		for name := range avg {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := avg[name]
			o.Rows = append(o.Rows, []string{
				f.name, name,
				metrics.Hours(ts.Summary.AvgJCT),
				fmt.Sprintf("%.0f", ts.AvgGoodput),
				fmt.Sprintf("%.1f", ts.AvgQueueDepth),
				fmt.Sprintf("%d/%d", ts.Admitted, ts.Submitted),
				fmt.Sprintf("%d", ts.Rejected),
				fmt.Sprintf("%d/%d", ts.SLOMet, ts.SLOJobs),
			})
			key := f.name + "/" + name
			o.setUnit(key+"/avgJCT", "s", ts.Summary.AvgJCT)
			o.setUnit(key+"/goodput", "ex/s", ts.AvgGoodput)
			// Queue depths hover near zero on drained traces; an absolute
			// band is the right shape on top of the relative one.
			o.setUnit(key+"/queueDepth", "jobs", ts.AvgQueueDepth)
			o.setTol(key+"/queueDepth", simRelTol, 0.5)
			// Admission is a pure function of the trace — identical across
			// policies and engines (see the cross-deployment parity test) —
			// so any drift in these counts is a front-end behavior change.
			o.setUnit(key+"/submitted", "jobs", float64(ts.Submitted))
			o.setTol(key+"/submitted", 0, 0)
			o.setUnit(key+"/admitted", "jobs", float64(ts.Admitted))
			o.setTol(key+"/admitted", 0, 0)
			o.setUnit(key+"/rejected", "jobs", float64(ts.Rejected))
			o.setTol(key+"/rejected", 0, 0)
			// SLO attainment is a count near the scheduling margin; grant
			// it a one-job absolute band per seed.
			o.setUnit(key+"/sloMet", "jobs", float64(ts.SLOMet))
			o.setTol(key+"/sloMet", 0, float64(len(seeds)))
			o.setUnit(key+"/sloJobs", "jobs", float64(ts.SLOJobs))
			o.setTol(key+"/sloJobs", 0, 0)
		}
	}
	// Configuration echoes: exact by construction.
	o.setUnit("batchQuota", "jobs", float64(batchQuota))
	o.setTol("batchQuota", 0, 0)
	o.setUnit("burstQuota", "jobs", float64(burstQuota))
	o.setTol("burstQuota", 0, 0)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"quota admission (batch<=%d, burst<=%d jobs) + EDF priority; prod SLO %.1fh, burst SLO %.1fh in a 1h spike; %d seed(s)",
		batchQuota, burstQuota, sc.Hours, sc.Hours/2, len(seeds)))
	return o
}
