package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// policyFactory builds fresh policies per seed (policies carry state).
type policyFactory struct {
	name string
	make func(seed int64) sched.Policy
}

func (sc Scale) factories() []policyFactory {
	return []policyFactory{
		{"Pollux", func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: sc.PolluxPop, Generations: sc.PolluxGens,
			}, seed)
		}},
		{"Optimus+Oracle", func(seed int64) sched.Policy {
			return sched.NewOptimus(sc.GPUsPerNode)
		}},
		{"Tiresias+TunedJobs", func(seed int64) sched.Policy {
			return sched.NewTiresias()
		}},
	}
}

// policyNames lists the factories' display names, for Outcome metadata.
func (sc Scale) policyNames() []string {
	fs := sc.factories()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.name
	}
	return names
}

func (sc Scale) genTrace(jobs int) func(rng *rand.Rand) workload.Trace {
	return func(rng *rand.Rand) workload.Trace {
		return workload.Generate(rng, workload.Options{
			Jobs: jobs, Hours: sc.Hours,
			GPUsPerNode: sc.GPUsPerNode, MaxGPUs: sc.Nodes * sc.GPUsPerNode,
		})
	}
}

func (sc Scale) simConfig() sim.Config {
	return sim.Config{
		Nodes: sc.Nodes, GPUsPerNode: sc.GPUsPerNode,
		Tick: sc.Tick, UseTunedConfig: true,
		Parallel: sc.Parallel, RefitWorkers: sc.RefitWorkers,
	}
}

// Table2 reproduces Table 2: average and 99th-percentile JCT plus makespan
// for Pollux vs Optimus+Oracle vs Tiresias+TunedJobs, on ideally-tuned
// jobs, together with the Sec. 5.2.1 statistical-efficiency and relative
// throughput/goodput comparisons.
func Table2(sc Scale) Outcome {
	o := Outcome{
		ID:       "table2",
		Title:    "Scheduler comparison on ideally-tuned jobs",
		Header:   []string{"policy", "avg JCT", "p99 JCT", "makespan", "stat.eff", "tput (ex/s)", "goodput (ex/s)"},
		Policies: sc.policyNames(),
		Seeds:    sc.Seeds,
		RelTol:   simRelTol,
	}
	var polluxJCT float64
	for _, f := range sc.factories() {
		sum := sim.RunSeeds(sc.Seeds, sc.genTrace(sc.Jobs), f.make, sc.simConfig())
		o.Rows = append(o.Rows, []string{
			f.name,
			metrics.Hours(sum.AvgJCT), metrics.Hours(sum.P99JCT), metrics.Hours(sum.Makespan),
			fmt.Sprintf("%.0f%%", 100*sum.AvgEfficiency),
			fmt.Sprintf("%.0f", sum.AvgThroughputX),
			fmt.Sprintf("%.0f", sum.AvgGoodputX),
		})
		o.setUnit(f.name+"/avgJCT", "s", sum.AvgJCT)
		o.setUnit(f.name+"/p99JCT", "s", sum.P99JCT)
		o.setUnit(f.name+"/makespan", "s", sum.Makespan)
		o.setUnit(f.name+"/eff", "frac", sum.AvgEfficiency)
		o.setUnit(f.name+"/tput", "ex/s", sum.AvgThroughputX)
		o.setUnit(f.name+"/goodput", "ex/s", sum.AvgGoodputX)
		if f.name == "Pollux" {
			polluxJCT = sum.AvgJCT
		}
	}
	vsOptimus := 1 - polluxJCT/o.Values["Optimus+Oracle/avgJCT"]
	vsTiresias := 1 - polluxJCT/o.Values["Tiresias+TunedJobs/avgJCT"]
	o.setUnit("reductionVsOptimus", "frac", vsOptimus)
	o.setUnit("reductionVsTiresias", "frac", vsTiresias)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"Pollux avg-JCT reduction: %.0f%% vs Optimus+Oracle, %.0f%% vs Tiresias+TunedJobs (paper sim: 26%% and 40%%)",
		100*vsOptimus, 100*vsTiresias))
	return o
}

// Fig7 reproduces Fig. 7: normalized average JCT as the share of
// realistically (user-)configured jobs grows from 0% to 100%.
func Fig7(sc Scale) Outcome {
	o := Outcome{
		ID:       "fig7",
		Title:    "Normalized avg JCT vs ratio of user-configured jobs",
		Header:   []string{"user-configured", "Pollux", "Optimus+Oracle", "Tiresias"},
		Policies: sc.policyNames(),
		Seeds:    sc.Seeds,
		RelTol:   simRelTol,
	}
	ratios := []float64{0, 1.0 / 3, 2.0 / 3, 1}
	for _, userRatio := range ratios {
		cfg := sc.simConfig()
		switch userRatio {
		case 0:
			cfg.UseTunedConfig = true
		case 1:
			cfg.UseTunedConfig = false
		default:
			cfg.TunedFraction = 1 - userRatio
		}
		row := []string{fmt.Sprintf("%.0f%%", 100*userRatio)}
		var pollux float64
		for _, f := range sc.factories() {
			sum := sim.RunSeeds(sc.Seeds, sc.genTrace(sc.Jobs), f.make, cfg)
			if f.name == "Pollux" {
				pollux = sum.AvgJCT
			}
			norm := sum.AvgJCT / pollux
			row = append(row, fmt.Sprintf("%.2f", norm))
			o.setUnit(fmt.Sprintf("%s/%.0f", f.name, 100*userRatio), "x", norm)
			o.setUnit(fmt.Sprintf("%s/abs/%.0f", f.name, 100*userRatio), "s", sum.AvgJCT)
		}
		o.Rows = append(o.Rows, row)
	}
	o.Notes = append(o.Notes,
		"paper: Pollux is unaffected by user configs; Optimus degrades to 2.1x, Tiresias to 3.3x at 100%")
	return o
}

// Fig8 reproduces Fig. 8: average JCT under increasing job load.
func Fig8(sc Scale) Outcome {
	o := Outcome{
		ID:       "fig8",
		Title:    "Avg JCT vs relative job load",
		Header:   []string{"load", "Pollux", "Optimus+Oracle", "Tiresias+TunedJobs"},
		Policies: sc.policyNames(),
		Seeds:    sc.Seeds,
		RelTol:   simRelTol,
	}
	for _, load := range []float64{0.5, 1.0, 1.5, 2.0} {
		jobs := int(float64(sc.Jobs)*load + 0.5)
		row := []string{fmt.Sprintf("%.1fx", load)}
		for _, f := range sc.factories() {
			sum := sim.RunSeeds(sc.Seeds, sc.genTrace(jobs), f.make, sc.simConfig())
			row = append(row, metrics.Hours(sum.AvgJCT))
			o.setUnit(fmt.Sprintf("%s/%.1f", f.name, load), "s", sum.AvgJCT)
		}
		o.Rows = append(o.Rows, row)
	}
	for _, f := range sc.factories() {
		ratio := o.Values[fmt.Sprintf("%s/2.0", f.name)] / o.Values[fmt.Sprintf("%s/0.5", f.name)]
		o.setUnit(f.name+"/degradation", "x", ratio)
	}
	o.Notes = append(o.Notes,
		"paper: at 2x load Pollux degrades 1.8x vs 2.0x (Optimus) and 2.6x (Tiresias); advantage widens with load")
	return o
}

// Table3 reproduces Table 3: the effect of the job-weight decay λ
// (Eqn. 16) on Pollux JCT percentiles, relative to λ = 0.
func Table3(sc Scale) Outcome {
	o := Outcome{
		ID:       "table3",
		Title:    "Job-weight decay λ (relative to λ=0)",
		Header:   []string{"lambda", "avg JCT", "p50 JCT", "p99 JCT"},
		Policies: []string{"Pollux"},
		Seeds:    sc.Seeds,
		RelTol:   simRelTol,
	}
	type r struct{ avg, p50, p99 float64 }
	var base r
	for _, lambda := range []float64{0, 0.5, 1.0} {
		l := lambda
		sum := sim.RunSeeds(sc.Seeds, sc.genTrace(sc.Jobs), func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: sc.PolluxPop, Generations: sc.PolluxGens,
				Lambda: l,
			}, seed)
		}, sc.simConfig())
		cur := r{sum.AvgJCT, sum.P50JCT, sum.P99JCT}
		if lambda == 0 {
			base = cur
		}
		o.Rows = append(o.Rows, []string{
			fmt.Sprintf("%.1f", lambda),
			fmt.Sprintf("%.2f", cur.avg/base.avg),
			fmt.Sprintf("%.2f", cur.p50/base.p50),
			fmt.Sprintf("%.2f", cur.p99/base.p99),
		})
		o.setUnit(fmt.Sprintf("avg/%.1f", lambda), "x", cur.avg/base.avg)
		o.setUnit(fmt.Sprintf("p50/%.1f", lambda), "x", cur.p50/base.p50)
		o.setUnit(fmt.Sprintf("p99/%.1f", lambda), "x", cur.p99/base.p99)
	}
	o.Notes = append(o.Notes,
		"paper: λ=0.5 improves p50 to 0.77 and avg to 0.95 while p99 degrades slightly (1.05)")
	return o
}

// Fig9 reproduces Fig. 9: average JCT under artificial network
// interference, with PolluxSched's avoidance constraint enabled vs
// disabled.
func Fig9(sc Scale) Outcome {
	o := Outcome{
		ID:       "fig9",
		Title:    "Interference slowdown: avoidance enabled vs disabled",
		Header:   []string{"slowdown", "avoid on (norm)", "avoid off (norm)"},
		Policies: []string{"Pollux"},
		Seeds:    sc.Seeds,
		RelTol:   simRelTol,
	}
	mk := func(disable bool) func(seed int64) sched.Policy {
		return func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{
				Population: sc.PolluxPop, Generations: sc.PolluxGens,
				DisableInterferenceAvoidance: disable,
			}, seed)
		}
	}
	var baseOn float64
	for _, slow := range []float64{0, 0.25, 0.5} {
		cfg := sc.simConfig()
		cfg.InterferenceSlowdown = slow
		on := sim.RunSeeds(sc.Seeds, sc.genTrace(sc.Jobs), mk(false), cfg)
		off := sim.RunSeeds(sc.Seeds, sc.genTrace(sc.Jobs), mk(true), cfg)
		if slow == 0 {
			baseOn = on.AvgJCT
		}
		o.Rows = append(o.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*slow),
			fmt.Sprintf("%.2f", on.AvgJCT/baseOn),
			fmt.Sprintf("%.2f", off.AvgJCT/baseOn),
		})
		o.setUnit(fmt.Sprintf("on/%.2f", slow), "x", on.AvgJCT/baseOn)
		o.setUnit(fmt.Sprintf("off/%.2f", slow), "x", off.AvgJCT/baseOn)
	}
	o.Notes = append(o.Notes,
		"paper: with avoidance JCT is flat across slowdowns; without it JCT grows to 1.4x at 50% slowdown, and at 0% slowdown disabling avoidance helps only ~2%")
	return o
}
