// Package experiments regenerates every table and figure of the Pollux
// paper's evaluation (Sec. 5). Each experiment returns an Outcome with the
// same rows/series the paper reports; cmd/pollux-bench prints them and the
// repository-root benchmarks run them at reduced scale.
//
// Absolute numbers differ from the paper — the substrate here is the
// simulator over the synthetic model zoo, not the authors' 64-GPU
// testbed — but the shapes (who wins, by what factor, where crossovers
// fall) are the reproduction target; see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/metrics"
)

// Outcome is one regenerated table or figure.
type Outcome struct {
	ID     string // e.g. "table2", "fig7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Values holds machine-readable results keyed by experiment-specific
	// names, consumed by tests and EXPERIMENTS.md tooling.
	Values map[string]float64
}

// String renders the outcome as an aligned text table.
func (o Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", o.ID, o.Title)
	b.WriteString(metrics.Table(o.Header, o.Rows))
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (o *Outcome) set(key string, v float64) {
	if o.Values == nil {
		o.Values = make(map[string]float64)
	}
	o.Values[key] = v
}

// Scale controls the cost of the simulation-backed experiments.
type Scale struct {
	Jobs        int
	Hours       float64
	Nodes       int
	GPUsPerNode int
	Seeds       []int64
	Tick        float64
	PolluxPop   int
	PolluxGens  int
	// AutoscaleEpochs shrinks the ImageNet job for Fig. 10.
	AutoscaleEpochs float64
	// Days is the submission window of the Diurnal64 exhibit (64 nodes,
	// multi-day inhomogeneous-Poisson arrivals); Jobs scales with it as
	// the expected submissions per day.
	Days float64
	// Parallel bounds concurrent per-seed simulations (sim.Config.Parallel);
	// 0 or 1 is serial. Per-seed runs are deterministic, so results do
	// not depend on this.
	Parallel int
	// RefitWorkers bounds concurrent agent refits within one report round
	// (sim.Config.RefitWorkers); 0 defaults to GOMAXPROCS, 1 is serial.
	// Refits are deterministic, so results do not depend on this.
	RefitWorkers int
}

// QuickScale finishes in seconds on the event engine; used by
// `go test -bench` and the default test run. AutoscaleEpochs is 4 rather
// than 1 because a single shrunk epoch finishes before the autoscalers'
// ramp dynamics can differentiate (the cost ratio straddles 1.0).
func QuickScale() Scale {
	return Scale{
		Jobs: 30, Hours: 1.5, Nodes: 8, GPUsPerNode: 4,
		Seeds: []int64{1, 2}, Tick: 4,
		PolluxPop: 20, PolluxGens: 10,
		AutoscaleEpochs: 4,
		Days:            1,
		Parallel:        runtime.GOMAXPROCS(0),
	}
}

// FullScale approximates the paper's setup (160 jobs / 8 h / 16 nodes x 4
// GPUs, 8 seeds). GA parameters are reduced from the paper's 100x100 to
// keep full runs in minutes; the GA converges long before that budget on
// these cluster sizes.
func FullScale() Scale {
	return Scale{
		Jobs: 160, Hours: 8, Nodes: 16, GPUsPerNode: 4,
		Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}, Tick: 2,
		PolluxPop: 50, PolluxGens: 30,
		AutoscaleEpochs: 8,
		// 2 days keeps the diurnal64 exhibit in single-digit minutes on a
		// multi-core host (a 3-day run measured ~25 min on one core; see
		// EXPERIMENTS.md).
		Days:     2,
		Parallel: runtime.GOMAXPROCS(0),
	}
}

// All returns every experiment id in paper order.
func All() []string {
	return []string{
		"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig6",
		"table2", "fig7", "fig8", "table3", "fig9", "fig10",
		"diurnal64", "replayparity", "validate",
	}
}

// Run dispatches one experiment by id.
func Run(id string, sc Scale) (Outcome, error) {
	switch id {
	case "fig1a":
		return Fig1a(), nil
	case "fig1b":
		return Fig1b(), nil
	case "fig2a":
		return Fig2a(), nil
	case "fig2b":
		return Fig2b(), nil
	case "fig3":
		return Fig3(), nil
	case "fig6":
		return Fig6(), nil
	case "table2":
		return Table2(sc), nil
	case "fig7":
		return Fig7(sc), nil
	case "fig8":
		return Fig8(sc), nil
	case "table3":
		return Table3(sc), nil
	case "fig9":
		return Fig9(sc), nil
	case "fig10":
		return Fig10(sc), nil
	case "diurnal64":
		return Diurnal64(sc), nil
	case "replayparity":
		return ReplayParity(sc)
	case "validate":
		return Validate(sc), nil
	default:
		return Outcome{}, fmt.Errorf("unknown experiment %q (have %v)", id, All())
	}
}
