// Package experiments regenerates every table and figure of the Pollux
// paper's evaluation (Sec. 5). Each experiment returns an Outcome with the
// same rows/series the paper reports; cmd/pollux-bench prints them and the
// repository-root benchmarks run them at reduced scale.
//
// Absolute numbers differ from the paper — the substrate here is the
// simulator over the synthetic model zoo, not the authors' 64-GPU
// testbed — but the shapes (who wins, by what factor, where crossovers
// fall) are the reproduction target; see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/results"
)

// Outcome is one regenerated table or figure.
type Outcome struct {
	ID     string // e.g. "table2", "fig7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Values holds machine-readable results keyed by experiment-specific
	// names, consumed by tests and EXPERIMENTS.md tooling.
	Values map[string]float64

	// Results-pipeline metadata (see internal/results). Policies and
	// Seeds identify the configuration axes behind the numbers; RelTol
	// is the default per-metric tolerance band granted to this exhibit
	// by the baseline regression gate. Closed-form exhibits leave it 0
	// (exact match — any drift is a behavior change, including rng
	// draw-order perturbations, which are load-bearing here), while
	// sim-backed exhibits carry a small band because intentional model
	// changes legitimately move trajectories at the last digits.
	Policies []string
	Seeds    []int64
	RelTol   float64
	units    map[string]string
	tols     map[string]tolBand
	volatile map[string]bool
}

type tolBand struct{ rel, abs float64 }

// simRelTol is the default baseline-gate band for simulation-backed
// exhibits: wide enough that an intentional last-digit perturbation of
// the fitted models (the warm-refit cadence moved exhibit values there
// in PR 3) does not trip the gate, narrow enough that losing a policy's
// ordering or a percent-level scheduling regression does.
const simRelTol = 0.05

// String renders the outcome as an aligned text table.
func (o Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", o.ID, o.Title)
	b.WriteString(metrics.Table(o.Header, o.Rows))
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (o *Outcome) set(key string, v float64) {
	if o.Values == nil {
		o.Values = make(map[string]float64)
	}
	o.Values[key] = v
}

// setUnit records a metric with a unit ("s", "ex/s", "x", ...).
func (o *Outcome) setUnit(key, unit string, v float64) {
	o.set(key, v)
	if o.units == nil {
		o.units = make(map[string]string)
	}
	o.units[key] = unit
}

// setVolatileUnit records a wall-clock-style measurement that varies run
// to run on an unchanged tree: the baseline gate checks it exists but
// never compares its value, and Canonical zeroes it (see results.Metric).
func (o *Outcome) setVolatileUnit(key, unit string, v float64) {
	o.setUnit(key, unit, v)
	if o.volatile == nil {
		o.volatile = make(map[string]bool)
	}
	o.volatile[key] = true
}

// setTol overrides the exhibit-default tolerance band for one metric:
// |v-base| <= rel*max(|v|,|base|) + abs. Used where a relative band is
// the wrong shape — e.g. parity deltas that hover near zero get an
// absolute band instead.
func (o *Outcome) setTol(key string, rel, abs float64) {
	if o.tols == nil {
		o.tols = make(map[string]tolBand)
	}
	o.tols[key] = tolBand{rel: rel, abs: abs}
}

// Record converts the outcome into the typed form consumed by the
// results pipeline (JSON emission, baseline gate). Metrics are sorted by
// name so emission does not depend on map iteration order.
func (o Outcome) Record(scale string) results.Record {
	r := results.Record{
		Exhibit:  o.ID,
		Title:    o.Title,
		Scale:    scale,
		Policies: append([]string(nil), o.Policies...),
		Seeds:    append([]int64(nil), o.Seeds...),
		Notes:    append([]string(nil), o.Notes...),
	}
	keys := make([]string, 0, len(o.Values))
	for k := range o.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := results.Metric{Name: k, Value: o.Values[k], Unit: o.units[k], RelTol: o.RelTol}
		if t, ok := o.tols[k]; ok {
			m.RelTol, m.AbsTol = t.rel, t.abs
		}
		m.Volatile = o.volatile[k]
		r.Metrics = append(r.Metrics, m)
	}
	return r
}

// Scale controls the cost of the simulation-backed experiments.
type Scale struct {
	Jobs        int
	Hours       float64
	Nodes       int
	GPUsPerNode int
	Seeds       []int64
	Tick        float64
	PolluxPop   int
	PolluxGens  int
	// AutoscaleEpochs shrinks the ImageNet job for Fig. 10.
	AutoscaleEpochs float64
	// Days is the submission window of the Diurnal64 exhibit (64 nodes,
	// multi-day inhomogeneous-Poisson arrivals); Jobs scales with it as
	// the expected submissions per day.
	Days float64
	// MegaNodes are the cluster sizes of the mega exhibit's scheduling-
	// round sweep (one full-vs-incremental round comparison per entry);
	// MegaJobs is the job count of that sweep, and MegaSimJobs the
	// (smaller) job count of its end-to-end JCT simulation, which runs at
	// MegaNodes[0]. A full simulation at MegaJobs would take hours on one
	// core, so the 10k-job claim is carried by the round sweep and the
	// JCT claim by a reduced trace — see mega.go.
	MegaNodes   []int
	MegaJobs    int
	MegaSimJobs int
	// Parallel bounds concurrent per-seed simulations (sim.Config.Parallel);
	// 0 or 1 is serial. Per-seed runs are deterministic, so results do
	// not depend on this.
	Parallel int
	// RefitWorkers bounds concurrent agent refits within one report round
	// (sim.Config.RefitWorkers); 0 defaults to GOMAXPROCS, 1 is serial.
	// Refits are deterministic, so results do not depend on this.
	RefitWorkers int
}

// QuickScale finishes in seconds on the event engine; used by
// `go test -bench` and the default test run. AutoscaleEpochs is 4 rather
// than 1 because a single shrunk epoch finishes before the autoscalers'
// ramp dynamics can differentiate (the cost ratio straddles 1.0).
func QuickScale() Scale {
	return Scale{
		Jobs: 30, Hours: 1.5, Nodes: 8, GPUsPerNode: 4,
		Seeds: []int64{1, 2}, Tick: 4,
		PolluxPop: 20, PolluxGens: 10,
		AutoscaleEpochs: 4,
		Days:            1,
		MegaNodes:       []int{32, 64},
		MegaJobs:        192,
		MegaSimJobs:     40,
		Parallel:        runtime.GOMAXPROCS(0),
	}
}

// FullScale approximates the paper's setup (160 jobs / 8 h / 16 nodes x 4
// GPUs, 8 seeds). GA parameters are reduced from the paper's 100x100 to
// keep full runs in minutes; the GA converges long before that budget on
// these cluster sizes.
func FullScale() Scale {
	return Scale{
		Jobs: 160, Hours: 8, Nodes: 16, GPUsPerNode: 4,
		Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}, Tick: 2,
		PolluxPop: 50, PolluxGens: 30,
		AutoscaleEpochs: 8,
		// 2 days keeps the diurnal64 exhibit in single-digit minutes on a
		// multi-core host (a 3-day run measured ~25 min on one core; see
		// EXPERIMENTS.md).
		Days:        2,
		MegaNodes:   []int{512, 1024},
		MegaJobs:    10240,
		MegaSimJobs: 2000,
		Parallel:    runtime.GOMAXPROCS(0),
	}
}

// MegaScale is the mega preset for standalone runs (pollux-sim -scale
// mega, or pollux-bench -scale mega -exhibits mega): the full-scale mega
// dimensions with a single seed and full-scale GA parameters, without
// dragging the 8-seed full sweep behind it.
func MegaScale() Scale {
	sc := FullScale()
	sc.Seeds = []int64{1}
	sc.Nodes = sc.MegaNodes[0]
	sc.Jobs = sc.MegaSimJobs
	sc.Hours = 24
	return sc
}

// ScaleByName resolves the scale presets exposed by the command-line
// tools (see internal/cliutil).
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "full":
		return FullScale(), nil
	case "mega":
		return MegaScale(), nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (want quick, full, or mega)", name)
}

// headlines selects, per exhibit, the few metrics that summarize its
// reproduction claim — the rows worth a markdown table or a benchmark
// metric, as opposed to the full per-cell series kept in the baselines.
var headlines = map[string][]string{
	"fig1a":  {"scaling512", "scaling2048"},
	"fig1b":  {"first/16", "second/16"},
	"fig2a":  {"e8000/0.0", "e8000/1.0"},
	"fig2b":  {"phiMeasured", "phiTrue", "maxAbsErr"},
	"fig3":   {"meanRelErr", "rmsle"},
	"fig6":   {"peakRatio"},
	"table2": {"Pollux/avgJCT", "Optimus+Oracle/avgJCT", "Tiresias+TunedJobs/avgJCT", "reductionVsOptimus", "reductionVsTiresias", "Pollux/eff", "Tiresias+TunedJobs/eff"},
	"fig7":   {"Pollux/abs/0", "Pollux/abs/100", "Optimus+Oracle/100", "Tiresias+TunedJobs/100"},
	"fig8":   {"Pollux/degradation", "Optimus+Oracle/degradation", "Tiresias+TunedJobs/degradation"},
	"table3": {"avg/0.5", "p50/0.5", "p99/0.5"},
	"fig9":   {"on/0.50", "off/0.50"},
	"fig10":  {"costRatio", "timeRatio", "pollux/avgEff", "oretal/avgEff"},
	"diurnal64": {"Pollux/avgJCT", "Tiresias+TunedJobs/avgJCT", "Pollux/p99JCT", "Tiresias+TunedJobs/p99JCT",
		"Pollux/goodput", "Tiresias+TunedJobs/goodput", "Pollux/completed", "Tiresias+TunedJobs/completed"},
	"fairness": {"Pollux/prod/avgJCT", "Tiresias+TunedJobs/prod/avgJCT", "Pollux/prod/sloMet",
		"Pollux/batch/rejected", "Pollux/burst/rejected", "Pollux/prod/queueDepth"},
	"replayparity": {"Pollux/dJCT", "Pollux/dGoodput", "Optimus+Oracle/dJCT", "Tiresias+TunedJobs/dJCT"},
	"validate":     {"worstOff"},
	"mega":         {"reductionAtLargestN", "sim/p99JCT", "sim/goodput", "sim/completed"},
}

// Headlines returns the exhibit-id → headline-metric registry shared by
// cmd/pollux-bench's markdown rendering and the root benchmarks.
func Headlines() map[string][]string {
	out := make(map[string][]string, len(headlines))
	for id, names := range headlines {
		out[id] = append([]string(nil), names...)
	}
	return out
}

// All returns every experiment id in paper order.
func All() []string {
	return []string{
		"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig6",
		"table2", "fig7", "fig8", "table3", "fig9", "fig10",
		"diurnal64", "fairness", "replayparity", "validate",
		"mega",
	}
}

// Run dispatches one experiment by id.
func Run(id string, sc Scale) (Outcome, error) {
	switch id {
	case "fig1a":
		return Fig1a(), nil
	case "fig1b":
		return Fig1b(), nil
	case "fig2a":
		return Fig2a(), nil
	case "fig2b":
		return Fig2b(), nil
	case "fig3":
		return Fig3(), nil
	case "fig6":
		return Fig6(), nil
	case "table2":
		return Table2(sc), nil
	case "fig7":
		return Fig7(sc), nil
	case "fig8":
		return Fig8(sc), nil
	case "table3":
		return Table3(sc), nil
	case "fig9":
		return Fig9(sc), nil
	case "fig10":
		return Fig10(sc), nil
	case "diurnal64":
		return Diurnal64(sc), nil
	case "fairness":
		return Fairness(sc), nil
	case "replayparity":
		return ReplayParity(sc)
	case "validate":
		return Validate(sc), nil
	case "mega":
		return Mega(sc), nil
	default:
		return Outcome{}, fmt.Errorf("unknown experiment %q (have %v)", id, All())
	}
}
