package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ReplayParity is the unified-runtime exhibit: the same trace is run
// through the trace-driven simulator's event engine and through the
// live-testbed replay engine (the full Sec. 4.3 control path — Service,
// agent reports, runtime.Step rounds — on virtual time), and the JCT and
// goodput deltas are reported per policy. The two engines draw different
// rng sequences, so agreement is statistical; the acceptance bar pinned
// by TestReplayVsSimParity is 5% on the standard 16-node trace.
func ReplayParity(sc Scale) (Outcome, error) {
	o := Outcome{
		ID:    "replayparity",
		Title: fmt.Sprintf("Simulator vs testbed-replay parity (%d nodes x %d GPUs)", sc.Nodes, sc.GPUsPerNode),
		Header: []string{"policy", "sim JCT", "replay JCT", "dJCT",
			"sim goodput", "replay goodput", "dGoodput"},
		Policies: sc.policyNames(),
		Seeds:    []int64{1},
		RelTol:   simRelTol,
	}
	rng := rand.New(rand.NewSource(1))
	tr := workload.Generate(rng, workload.Options{
		Jobs: sc.Jobs, Hours: sc.Hours,
		GPUsPerNode: sc.GPUsPerNode, MaxGPUs: sc.Nodes * sc.GPUsPerNode,
	})
	cfg := sc.simConfig()
	cfg.Seed = 1
	for _, f := range sc.factories() {
		simRes := sim.NewCluster(tr, f.make(1), cfg).Run()
		repRes, err := cluster.Replay(tr, f.make(1), cluster.ReplayConfig{
			Nodes: sc.Nodes, GPUsPerNode: sc.GPUsPerNode,
			UseTunedConfig: true, Seed: 1,
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("replayparity: %s: %w", f.name, err)
		}
		dJCT := relDelta(repRes.Summary.AvgJCT, simRes.Summary.AvgJCT)
		dGood := relDelta(repRes.AvgGoodput, simRes.AvgGoodput)
		o.Rows = append(o.Rows, []string{
			f.name,
			metrics.Hours(simRes.Summary.AvgJCT), metrics.Hours(repRes.Summary.AvgJCT),
			fmt.Sprintf("%+.1f%%", 100*dJCT),
			fmt.Sprintf("%.0f ex/s", simRes.AvgGoodput),
			fmt.Sprintf("%.0f ex/s", repRes.AvgGoodput),
			fmt.Sprintf("%+.1f%%", 100*dGood),
		})
		o.setUnit(f.name+"/simJCT", "s", simRes.Summary.AvgJCT)
		o.setUnit(f.name+"/replayJCT", "s", repRes.Summary.AvgJCT)
		// The parity deltas hover near zero, where a relative band is
		// meaningless; grant them the absolute band of the parity bar
		// (5% on the standard trace, TestReplayVsSimParity).
		o.setUnit(f.name+"/dJCT", "frac", math.Abs(dJCT))
		o.setTol(f.name+"/dJCT", 0, 0.05)
		o.setUnit(f.name+"/dGoodput", "frac", math.Abs(dGood))
		o.setTol(f.name+"/dGoodput", 0, 0.05)
		o.setUnit(f.name+"/completedDelta", "jobs",
			math.Abs(float64(simRes.Summary.Completed-repRes.Summary.Completed)))
		o.setTol(f.name+"/completedDelta", 0, 2)
	}
	o.Notes = append(o.Notes,
		"replay drives the live testbed control path (Service, reports, runtime.Step) on virtual time")
	return o, nil
}

// relDelta is the signed relative difference of a against base.
func relDelta(a, base float64) float64 {
	if base == 0 {
		return a - base
	}
	return a/base - 1
}
