package experiments

import (
	"fmt"
	"testing"
)

// The macro experiments drive full cluster simulations; they run at quick
// scale here and are skipped under -short.

func quick() Scale {
	sc := QuickScale()
	sc.Seeds = []int64{1} // single seed keeps the suite fast
	return sc
}

// shortScale is small enough that the simulation-backed experiments run
// even under -short, as smoke coverage for the full pipeline.
func shortScale() Scale {
	return Scale{
		Jobs: 8, Hours: 0.5, Nodes: 4, GPUsPerNode: 4,
		Seeds: []int64{1}, Tick: 4,
		PolluxPop: 10, PolluxGens: 5,
		AutoscaleEpochs: 2,
		Days:            0.25,
		Parallel:        2,
	}
}

// TestTable2ShortSmoke runs the heaviest macro experiment end to end at
// smoke scale under -short; it checks structure, not the paper's
// orderings, which need the quick scale to hold reliably.
func TestTable2ShortSmoke(t *testing.T) {
	o := Table2(shortScale())
	if len(o.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(o.Rows))
	}
	for _, name := range []string{"Pollux", "Optimus+Oracle", "Tiresias+TunedJobs"} {
		if o.Values[name+"/avgJCT"] <= 0 {
			t.Errorf("%s: no JCT recorded", name)
		}
	}
}

// TestDiurnal64ShortSmoke runs the 64-node diurnal-Poisson exhibit end to
// end at a quarter-day window under -short; the full multi-day version
// runs via `pollux-bench -exp diurnal64`.
func TestDiurnal64ShortSmoke(t *testing.T) {
	o := Diurnal64(shortScale())
	if len(o.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 policies", len(o.Rows))
	}
	for _, name := range []string{"Pollux", "Tiresias+TunedJobs"} {
		if o.Values[name+"/total"] <= 0 {
			t.Errorf("%s: no jobs simulated", name)
		}
		if o.Values[name+"/completed"] <= 0 {
			t.Errorf("%s: no jobs completed", name)
		}
		if o.Values[name+"/avgJCT"] <= 0 {
			t.Errorf("%s: no JCT recorded", name)
		}
	}
}

// TestReplayParityShortSmoke runs the unified-runtime exhibit end to end
// at smoke scale under -short: every policy's trace goes through both
// the sim event engine and the testbed replay engine. The structural
// checks here complement the hard 5% bar of the cluster package's
// TestReplayVsSimParity on the standard 16-node trace.
func TestReplayParityShortSmoke(t *testing.T) {
	o, err := ReplayParity(shortScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(o.Rows))
	}
	for _, name := range []string{"Pollux", "Optimus+Oracle", "Tiresias+TunedJobs"} {
		if o.Values[name+"/simJCT"] <= 0 || o.Values[name+"/replayJCT"] <= 0 {
			t.Errorf("%s: missing JCTs: sim %v replay %v",
				name, o.Values[name+"/simJCT"], o.Values[name+"/replayJCT"])
		}
		if d := o.Values[name+"/completedDelta"]; d != 0 {
			t.Errorf("%s: completed counts differ by %v", name, d)
		}
	}
}

// TestFig10ShortSmoke covers the autoscaling experiment under -short.
func TestFig10ShortSmoke(t *testing.T) {
	o := Fig10(shortScale())
	if len(o.Rows) == 0 {
		t.Fatal("no time series recorded")
	}
	if o.Values["pollux/cost"] <= 0 || o.Values["oretal/cost"] <= 0 {
		t.Errorf("costs not recorded: %v, %v", o.Values["pollux/cost"], o.Values["oretal/cost"])
	}
}

func TestTable2PolluxWins(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Table2(quick())
	if len(o.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(o.Rows))
	}
	p := o.Values["Pollux/avgJCT"]
	if p <= 0 {
		t.Fatal("no Pollux JCT recorded")
	}
	// The headline: Pollux beats both baselines on avg JCT even with
	// ideally-tuned jobs.
	if p >= o.Values["Optimus+Oracle/avgJCT"] {
		t.Errorf("Pollux %v not better than Optimus %v", p, o.Values["Optimus+Oracle/avgJCT"])
	}
	if p >= o.Values["Tiresias+TunedJobs/avgJCT"] {
		t.Errorf("Pollux %v not better than Tiresias %v", p, o.Values["Tiresias+TunedJobs/avgJCT"])
	}
	// Sec. 5.2.1: Pollux sustains higher statistical efficiency.
	if o.Values["Pollux/eff"] <= o.Values["Tiresias+TunedJobs/eff"] {
		t.Errorf("Pollux efficiency %v not above Tiresias %v",
			o.Values["Pollux/eff"], o.Values["Tiresias+TunedJobs/eff"])
	}
}

func TestFig7PolluxUnaffectedByUserConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Fig7(quick())
	// Pollux's absolute JCT at 100% user-configured stays within 40% of
	// its 0% value (paper: unaffected), while Tiresias degrades more.
	p0 := o.Values["Pollux/abs/0"]
	p100 := o.Values["Pollux/abs/100"]
	if p100 > 1.4*p0 {
		t.Errorf("Pollux degraded with user configs: %v -> %v", p0, p100)
	}
	t100 := o.Values["Tiresias+TunedJobs/100"]
	if t100 <= 1.2 {
		t.Errorf("Tiresias at 100%% user-configured = %vx Pollux, want > 1.2x", t100)
	}
}

func TestFig8LoadDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Fig8(quick())
	for _, name := range []string{"Pollux", "Optimus+Oracle", "Tiresias+TunedJobs"} {
		lo := o.Values[name+"/0.5"]
		hi := o.Values[name+"/2.0"]
		if hi < lo {
			t.Errorf("%s: JCT at 2x load (%v) below 0.5x load (%v)", name, hi, lo)
		}
	}
	// Pollux degrades no worse than Tiresias.
	if o.Values["Pollux/degradation"] > o.Values["Tiresias+TunedJobs/degradation"]+0.3 {
		t.Errorf("Pollux degradation %v well above Tiresias %v",
			o.Values["Pollux/degradation"], o.Values["Tiresias+TunedJobs/degradation"])
	}
}

func TestTable3WeightsImproveMedian(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// This runs at the full QuickScale (two seeds), not quick(): most
	// quick-scale jobs never cross the 4-GPU-hour weight threshold, so
	// the λ effect on the median is small and a single seed swings
	// roughly ±12% around 1.0 — historically past the 1.1 bound when
	// nondeterministic refits (since fixed) nudged the trajectory.
	// Averaging two seeds keeps the check meaningful; the paper's 0.77
	// needs full scale to reproduce.
	o := Table3(QuickScale())
	if o.Values["avg/0.0"] != 1 || o.Values["p50/0.0"] != 1 {
		t.Fatal("λ=0 row must be the normalization base")
	}
	// Direction: λ=0.5 should not hurt the median (paper: 0.77).
	if o.Values["p50/0.5"] > 1.1 {
		t.Errorf("p50 at λ=0.5 = %v, want <= 1.1", o.Values["p50/0.5"])
	}
}

func TestFig9AvoidanceShieldsInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Fig9(quick())
	// With avoidance, JCT stays roughly flat across slowdowns.
	if o.Values["on/0.50"] > 1.25 {
		t.Errorf("avoidance-on JCT at 50%% slowdown = %v, want ~flat", o.Values["on/0.50"])
	}
	// Without avoidance, 50% slowdown must be worse than avoidance-on.
	if o.Values["off/0.50"] <= o.Values["on/0.50"] {
		t.Errorf("avoidance off (%v) not worse than on (%v) at 50%% slowdown",
			o.Values["off/0.50"], o.Values["on/0.50"])
	}
}

func TestFig10GoodputCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Fig10(quick())
	if o.Values["costRatio"] >= 1 {
		t.Errorf("Pollux autoscaling cost ratio = %v, want < 1 (cheaper)", o.Values["costRatio"])
	}
	if o.Values["pollux/avgEff"] <= o.Values["oretal/avgEff"] {
		t.Errorf("Pollux avg efficiency %v not above Or et al. %v",
			o.Values["pollux/avgEff"], o.Values["oretal/avgEff"])
	}
}

func TestValidateEqn7OnRealSGD(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence experiment")
	}
	o := Validate(quick())
	if len(o.Rows) < 3 {
		t.Fatalf("rows = %d, want >= 3", len(o.Rows))
	}
	if o.Values["worstOff"] > 2.5 {
		t.Errorf("worst discrepancy = %vx, want <= 2.5x", o.Values["worstOff"])
	}
}

// TestFairnessShortSmoke runs the multi-tenant fairness exhibit end to
// end at smoke scale under -short: three tenants per policy, binding
// quotas, and the admission accounting invariants that must hold at any
// scale (submitted = admitted + rejected, rejections exactly the quota
// overflow, identical across policies).
func TestFairnessShortSmoke(t *testing.T) {
	o := Fairness(shortScale())
	if len(o.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 policies x 3 tenants", len(o.Rows))
	}
	for _, policy := range []string{"Pollux", "Tiresias+TunedJobs"} {
		for _, tenant := range []string{"prod", "batch", "burst"} {
			key := policy + "/" + tenant
			sub := o.Values[key+"/submitted"]
			adm := o.Values[key+"/admitted"]
			rej := o.Values[key+"/rejected"]
			if sub <= 0 {
				t.Errorf("%s: no submissions recorded", key)
			}
			//pollux:floateq-ok integer-valued counters carried in float64 fields; small-int sums are exact
			if adm+rej != sub {
				t.Errorf("%s: admitted %v + rejected %v != submitted %v", key, adm, rej, sub)
			}
			if tenant == "prod" && rej != 0 {
				t.Errorf("prod has no quota but %s rejected %v jobs", policy, rej)
			}
			if tenant != "prod" && rej <= 0 {
				t.Errorf("%s: quota should bind but nothing was rejected", key)
			}
			// Admission is policy-independent: same counts under both.
			//pollux:floateq-ok admission is policy-independent by construction; both counters are exact small ints
			if other := o.Values["Pollux/"+tenant+"/rejected"]; rej != other {
				t.Errorf("%s: rejected %v differs from Pollux's %v", key, rej, other)
			}
		}
	}
	if o.Values["Pollux/prod/avgJCT"] <= 0 {
		t.Error("prod: no JCT recorded")
	}
}

// TestMegaShortSmoke runs the scale exhibit end to end at toy dimensions
// under -short: the round sweep must show incremental+hierarchical
// rounds doing strictly less fitness work than a flat full round, and
// the deterministic (gated) cell counts must reproduce exactly.
func TestMegaShortSmoke(t *testing.T) {
	sc := shortScale()
	sc.MegaNodes = []int{8, 16}
	sc.MegaJobs = 24
	sc.MegaSimJobs = 8
	o := Mega(sc)
	if len(o.Rows) != 3 {
		t.Fatalf("rows = %d, want one per swept size plus the sim row", len(o.Rows))
	}
	for _, n := range []int{8, 16} {
		full := o.Values[fmt.Sprintf("n%d/fullCells", n)]
		inc := o.Values[fmt.Sprintf("n%d/incCellsPerRound", n)]
		if full <= 0 || inc <= 0 {
			t.Fatalf("n=%d: no fitness work recorded (full=%v inc=%v)", n, full, inc)
		}
		if inc >= full {
			t.Errorf("n=%d: incremental rounds did not cut fitness work (%v >= %v)", n, inc, full)
		}
	}
	if r := o.Values["reductionAtLargestN"]; r <= 1 {
		t.Errorf("reductionAtLargestN = %v, want > 1", r)
	}
	if o.Values["sim/completed"] <= 0 {
		t.Error("sim part completed no jobs")
	}

	o2 := Mega(sc)
	for _, key := range []string{
		"n8/fullCells", "n8/incCellsPerRound", "n16/fullCells",
		"n16/incCellsPerRound", "reductionAtLargestN", "sim/avgJCT",
	} {
		if o.Values[key] != o2.Values[key] { //pollux:floateq-ok gated metrics must reproduce bitwise run to run
			t.Errorf("%s not deterministic: %v vs %v", key, o.Values[key], o2.Values[key])
		}
	}
}
