package experiments

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Fig10 reproduces Fig. 10 and the Sec. 5.3.3 headline: goodput-based
// cloud autoscaling (Pollux) vs throughput-based autoscaling (Or et al.)
// for ImageNet training — node count and statistical efficiency over time,
// plus the cost/completion-time comparison.
func Fig10(sc Scale) Outcome {
	spec := *models.ByName("resnet50")
	if sc.AutoscaleEpochs > 0 {
		spec.Epochs = sc.AutoscaleEpochs
	}

	cfg := sim.AutoscaleConfig{
		GPUsPerNode: sc.GPUsPerNode,
		MinNodes:    1, MaxNodes: 16,
		Tick: sc.Tick, Seed: sc.Seeds[0],
	}
	goodCfg := cfg
	goodCfg.AdaptBatchGoodput = true
	goodCfg.RespectExploreCap = true
	good := sim.RunAutoscale(&spec, sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75), goodCfg)

	thrCfg := cfg
	thr := sim.RunAutoscale(&spec, sched.NewThroughputAutoscaler(1, 16, 0.9), thrCfg)

	o := Outcome{
		ID:       "fig10",
		Title:    "Autoscaling ImageNet: goodput-based (Pollux) vs throughput-based (Or et al.)",
		Header:   []string{"time (s)", "nodes (Pollux)", "eff (Pollux)", "nodes (Or et al.)", "eff (Or et al.)"},
		Policies: []string{"GoodputAutoscaler", "ThroughputAutoscaler"},
		Seeds:    []int64{sc.Seeds[0]},
		RelTol:   simRelTol,
	}
	// Align the two time series onto the longer run's sample grid.
	n := len(good.Points)
	if len(thr.Points) > n {
		n = len(thr.Points)
	}
	step := 1
	if n > 24 {
		step = n / 24 // keep the printed table readable
	}
	for i := 0; i < n; i += step {
		row := []string{"", "-", "-", "-", "-"}
		if i < len(good.Points) {
			p := good.Points[i]
			row[0] = fmt.Sprintf("%.0f", p.Time)
			row[1] = fmt.Sprint(p.Nodes)
			row[2] = fmt.Sprintf("%.2f", p.Efficiency)
		}
		if i < len(thr.Points) {
			p := thr.Points[i]
			if row[0] == "" {
				row[0] = fmt.Sprintf("%.0f", p.Time)
			}
			row[3] = fmt.Sprint(p.Nodes)
			row[4] = fmt.Sprintf("%.2f", p.Efficiency)
		}
		o.Rows = append(o.Rows, row)
	}

	costRatio := good.CostNodeSeconds / thr.CostNodeSeconds
	timeRatio := good.CompletionTime / thr.CompletionTime
	o.setUnit("pollux/cost", "node-s", good.CostNodeSeconds)
	o.setUnit("oretal/cost", "node-s", thr.CostNodeSeconds)
	o.setUnit("pollux/time", "s", good.CompletionTime)
	o.setUnit("oretal/time", "s", thr.CompletionTime)
	o.setUnit("costRatio", "x", costRatio)
	o.setUnit("timeRatio", "x", timeRatio)
	o.setUnit("pollux/avgEff", "frac", avgEff(good.Points))
	o.setUnit("oretal/avgEff", "frac", avgEff(thr.Points))
	o.Notes = append(o.Notes, fmt.Sprintf(
		"cost: Pollux %.0f node-s vs Or et al. %.0f node-s (%.0f%% cheaper); completion %.0fs vs %.0fs (%.0f%% longer)",
		good.CostNodeSeconds, thr.CostNodeSeconds, 100*(1-costRatio),
		good.CompletionTime, thr.CompletionTime, 100*(timeRatio-1)))
	o.Notes = append(o.Notes,
		"paper: 25% cheaper with 6% longer completion; Pollux ramps nodes as statistical efficiency grows")
	return o
}

func avgEff(pts []sim.AutoscalePoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.Efficiency
	}
	return s / float64(len(pts))
}
