package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ga"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// megaPop/megaGens are the GA budget of the mega exhibit, fixed across
// scales: the exhibit measures how much fitness work the incremental and
// hierarchical machinery removes at a given budget, so the budget itself
// must not move between quick and full runs (and the flat full round at
// 1024 nodes x 10k jobs is only tractable at a modest budget).
const (
	megaPop  = 20
	megaGens = 10
	// megaSteadyRounds is how many perturbed rounds average into the
	// steady-state incremental cost.
	megaSteadyRounds = 8
	// megaRackSize is the hierarchical decomposition width; 16 nodes per
	// rack keeps both GA tiers small at every swept cluster size.
	megaRackSize = 16
)

// Mega is the scale exhibit behind the incremental/hierarchical
// scheduler work: Pollux scheduling rounds on clusters far beyond the
// paper's 16 nodes (512-1024 nodes, 10k+ jobs at full scale).
//
// Part 1 sweeps cluster sizes and compares, per size, one flat full
// re-optimization round against the steady state of incremental + rack-
// hierarchical rounds (a cold round, then megaSteadyRounds rounds each
// dirtying one job's fitted model). Fitness work is reported in scored
// matrix cells (sched.RoundStats.FitnessCells) — exact and seed-
// deterministic, so the baseline gates it bitwise — alongside Volatile
// wall-clock times, archived for trend inspection but never compared.
//
// Part 2 is an end-to-end JCT simulation at the smallest swept size with
// a reduced trace (a full 10k-job simulation takes hours on one core;
// the 10k-job claim is carried by Part 1), pinning that the incremental
// scheduler still completes jobs and holds goodput at that scale.
func Mega(sc Scale) Outcome {
	nodesList := sc.MegaNodes
	if len(nodesList) == 0 {
		nodesList = []int{32, 64}
	}
	jobs := sc.MegaJobs
	if jobs <= 0 {
		jobs = 192
	}
	perNode := sc.GPUsPerNode
	if perNode <= 0 {
		perNode = 4
	}
	simJobs := sc.MegaSimJobs
	if simJobs <= 0 {
		simJobs = 40
	}

	o := Outcome{
		ID: "mega",
		Title: fmt.Sprintf("incremental + hierarchical rounds at scale (%d jobs, up to %d nodes)",
			jobs, nodesList[len(nodesList)-1]),
		Header:   []string{"nodes", "GPUs", "full cells", "inc cells/round", "reduction", "full ms", "inc ms/round"},
		Policies: []string{"Pollux"},
		Seeds:    []int64{1},
	}

	var lastReduction float64
	for _, n := range nodesList {
		fullOpts := sched.PolluxOptions{Population: megaPop, Generations: megaGens}
		incOpts := fullOpts
		incOpts.Incremental = true
		incOpts.FullEvery = -1 // steady state only; the periodic full round's cost is the full row
		incOpts.RackSize = megaRackSize

		// One flat full round, from the allocation the incremental
		// scheduler would also be perturbing — so both sides price the
		// same steady-state work, not a cold start.
		warm := sched.NewPollux(fullOpts, 1)
		v := megaView(jobs, n, perNode)
		v.Current = warm.Schedule(v)
		megaPerturb(v, 0)
		full := sched.NewPollux(fullOpts, 1)
		t0 := time.Now() //pollux:wallclock-ok round latency is reported as a Volatile metric, never gated
		m := full.Schedule(v)
		fullMs := 1000 * time.Since(t0).Seconds() //pollux:wallclock-ok round latency is reported as a Volatile metric, never gated
		fullCells := full.LastRoundStats().FitnessCells
		_ = m

		inc := sched.NewPollux(incOpts, 1)
		vi := megaView(jobs, n, perNode)
		vi.Current = inc.Schedule(vi) // cold round: a full re-optimization by construction
		var incCells int64
		t1 := time.Now() //pollux:wallclock-ok round latency is reported as a Volatile metric, never gated
		for r := 0; r < megaSteadyRounds; r++ {
			megaPerturb(vi, r)
			vi.Current = inc.Schedule(vi)
			incCells += inc.LastRoundStats().FitnessCells
		}
		incMs := 1000 * time.Since(t1).Seconds() / megaSteadyRounds //pollux:wallclock-ok round latency is reported as a Volatile metric, never gated
		incPerRound := float64(incCells) / megaSteadyRounds
		reduction := 0.0
		if incPerRound > 0 {
			reduction = float64(fullCells) / incPerRound
		}
		lastReduction = reduction

		o.Rows = append(o.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", n*perNode),
			fmt.Sprintf("%d", fullCells), fmt.Sprintf("%.0f", incPerRound),
			fmt.Sprintf("%.1fx", reduction),
			fmt.Sprintf("%.0f", fullMs), fmt.Sprintf("%.0f", incMs),
		})
		prefix := fmt.Sprintf("n%d/", n)
		o.setUnit(prefix+"fullCells", "cells", float64(fullCells))
		o.setUnit(prefix+"incCellsPerRound", "cells", incPerRound)
		o.setUnit(prefix+"reduction", "x", reduction)
		o.setVolatileUnit(prefix+"fullMs", "ms", fullMs)
		o.setVolatileUnit(prefix+"incMsPerRound", "ms", incMs)
	}
	// The acceptance headline: fitness-work reduction at the largest
	// swept cluster. Exact, like all the cell counts (RelTol 0 default).
	o.setUnit("reductionAtLargestN", "x", lastReduction)

	// Part 2: end-to-end JCT under the incremental + hierarchical
	// scheduler at the smallest swept size.
	simNodes := nodesList[0]
	hours := sc.Hours
	if hours <= 0 {
		hours = 8
	}
	seeds := sc.Seeds
	if len(seeds) > 1 {
		seeds = seeds[:1] // one trace: the exhibit's subject is scale, not variance
	}
	genTrace := func(rng *rand.Rand) workload.Trace {
		return workload.Generate(rng, workload.Options{
			Jobs: simJobs, Hours: hours,
			GPUsPerNode: perNode, MaxGPUs: 64,
		})
	}
	cfg := sim.Config{
		Nodes: simNodes, GPUsPerNode: perNode,
		Tick: sc.Tick, UseTunedConfig: true,
		Parallel: sc.Parallel, RefitWorkers: sc.RefitWorkers,
	}
	sum := sim.RunSeeds(seeds, genTrace, func(seed int64) sched.Policy {
		return sched.NewPollux(sched.PolluxOptions{
			Population: megaPop, Generations: megaGens,
			Incremental: true, RackSize: megaRackSize,
		}, seed)
	}, cfg)
	o.Rows = append(o.Rows, []string{
		fmt.Sprintf("sim@%d", simNodes), fmt.Sprintf("%d", simNodes*perNode),
		fmt.Sprintf("%d jobs", simJobs),
		"avg " + metrics.Hours(sum.AvgJCT), "p99 " + metrics.Hours(sum.P99JCT),
		fmt.Sprintf("%.0f ex/s", sum.AvgGoodputX),
		fmt.Sprintf("%d/%d done", sum.Completed, sum.Total),
	})
	for _, m := range []struct {
		key, unit string
		v         float64
	}{
		{"sim/avgJCT", "s", sum.AvgJCT},
		{"sim/p99JCT", "s", sum.P99JCT},
		{"sim/goodput", "ex/s", sum.AvgGoodputX},
		{"sim/completed", "jobs", float64(sum.Completed)},
	} {
		o.setUnit(m.key, m.unit, m.v)
		o.setTol(m.key, simRelTol, 0)
	}
	// Configuration echoes: exact by construction.
	o.setUnit("jobs", "jobs", float64(jobs))
	o.setUnit("sim/total", "jobs", float64(sum.Total))
	o.setUnit("sim/nodes", "nodes", float64(simNodes))

	o.Notes = append(o.Notes,
		fmt.Sprintf("round sweep: %d jobs, GA %dx%d, rack size %d, steady state over %d perturbed rounds",
			jobs, megaPop, megaGens, megaRackSize, megaSteadyRounds),
		fmt.Sprintf("sim: %d jobs over %.1f h at %d nodes, incremental+rack Pollux, %d seed(s)",
			simJobs, hours, simNodes, len(seeds)),
		"cells gate bitwise; ms metrics are volatile (archived, never compared)")
	return o
}

// megaPerturb dirties one job per round, cycling deterministically: a
// refit moved its fitted gradient-noise scale, the signal that marks a
// job dirty in incremental mode.
func megaPerturb(v *sched.ClusterView, round int) {
	v.Jobs[(3*round+1)%len(v.Jobs)].Model.Phi *= 1.25
}

// megaView builds a deterministic cluster view for the round sweep: the
// full model zoo cycled across jobs, staggered training progress and
// attained service, and varied exploration caps — enough heterogeneity
// that the GA has real packing decisions at every swept size, with no
// rng so the view (and hence the gated cell counts) is identical on
// every run.
func megaView(nJobs, nodes, perNode int) *sched.ClusterView {
	zoo := models.Zoo()
	capacity := make([]int, nodes)
	for i := range capacity {
		capacity[i] = perNode
	}
	v := &sched.ClusterView{Capacity: capacity, Current: ga.NewMatrix(nJobs, nodes)}
	maxCap := 32
	if total := nodes * perNode; maxCap > total {
		maxCap = total
	}
	for i := 0; i < nJobs; i++ {
		spec := zoo[i%len(zoo)]
		progress := 0.1 + 0.8*float64(i%7)/7
		gpuCap := 4 << (i % 4) // 4, 8, 16, 32
		if gpuCap > maxCap {
			gpuCap = maxCap
		}
		userGPUs := 1 + i%4
		v.Jobs = append(v.Jobs, sched.JobView{
			ID:             i,
			Model:          spec.GoodputModel(progress),
			GPUCap:         gpuCap,
			UserGPUs:       userGPUs,
			UserBatch:      spec.M0 * userGPUs,
			MinGPUs:        1,
			RemainingIters: 1e4,
			GPUTime:        float64(i%5) * 3600,
		})
	}
	return v
}
