package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/train"
)

// Validate is an extension exhibit beyond the paper's figures: it checks
// the statistical-efficiency model (Eqn. 7) against *real* data-parallel
// SGD from internal/train, rather than against the model zoo's scripted
// noise scales. For a synthetic least-squares problem, the examples
// needed to reach a fixed loss at batch size m, relative to m0, should
// approximate 1/EFFICIENCY(phi, m0, m) with phi measured online by the
// gradient-noise-scale estimators during training.
func Validate(sc Scale) Outcome {
	rng := rand.New(rand.NewSource(sc.Seeds[0]))
	const (
		dim   = 16
		m0    = 16
		noise = 1.0
	)
	ds, _ := train.SynthesizeLinear(rng, 8192, dim, noise)
	target := noise*noise/2*1.2 + 0.03

	runAt := func(batch int) train.Stats {
		_, stats, err := train.Run(train.LeastSquares{}, ds, make([]float64, dim), train.Config{
			Replicas: 4, Batch: batch, M0: m0, Eta0: 0.02, UseAdaScale: true,
			TargetLoss: target, MaxSteps: 40000, EvalEvery: 10, Seed: sc.Seeds[0],
		})
		if err != nil {
			panic(err)
		}
		return stats
	}

	o := Outcome{
		ID:     "validate",
		Title:  "Eqn. 7 vs real data-parallel SGD (least squares, extension)",
		Header: []string{"batch", "examples to target", "actual ratio", "Eqn.7 predicted", "phi measured"},
		Seeds:  []int64{sc.Seeds[0]},
		// Real SGD runs to a loss target: a one-step change in when the
		// target is crossed moves the examples ratio by a whole
		// evaluation interval, so the band is wider than the simulator
		// exhibits'.
		RelTol: 0.10,
	}
	base := runAt(m0)
	o.Rows = append(o.Rows, []string{
		fmt.Sprint(m0), fmt.Sprint(base.ExamplesProcessed), "1.00", "1.00",
		fmt.Sprintf("%.0f", base.Phi),
	})
	worst := 0.0
	for _, m := range []int{32, 64, 128} {
		st := runAt(m)
		if !st.ReachedTarget || !base.ReachedTarget {
			o.Notes = append(o.Notes, fmt.Sprintf("batch %d did not reach target", m))
			continue
		}
		actual := float64(st.ExamplesProcessed) / float64(base.ExamplesProcessed)
		phi := (base.Phi + st.Phi) / 2
		pred := 1 / core.Efficiency(phi, m0, m)
		o.Rows = append(o.Rows, []string{
			fmt.Sprint(m), fmt.Sprint(st.ExamplesProcessed),
			fmt.Sprintf("%.2f", actual), fmt.Sprintf("%.2f", pred),
			fmt.Sprintf("%.0f", st.Phi),
		})
		o.setUnit(fmt.Sprintf("actual/%d", m), "x", actual)
		o.setUnit(fmt.Sprintf("pred/%d", m), "x", pred)
		off := actual / pred
		if off < 1 {
			off = 1 / off
		}
		if off > worst {
			worst = off
		}
	}
	o.setUnit("worstOff", "x", worst)
	o.setTol("worstOff", 0.3, 0)
	o.Notes = append(o.Notes, fmt.Sprintf(
		"worst actual-vs-predicted discrepancy across batch sizes: %.2fx (model validated on real SGD)", worst))
	return o
}
