// Package cliutil deduplicates the flag and configuration plumbing
// shared by the pollux command-line tools (cmd/pollux-bench,
// cmd/pollux-sim): the quick/full scale presets and the concurrency
// knobs, which previously were copied flag declarations that drifted
// whenever a new knob landed in only one tool.
package cliutil

import (
	"flag"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// Sweep holds the shared knobs. Register it on a FlagSet, Parse, then
// apply it to an experiments.Scale (bench sweeps) or a sim.Config
// (single simulations).
type Sweep struct {
	ScaleName    string
	Parallel     int
	RefitWorkers int
}

// Register declares the shared flags. scaleDefault is the -scale default
// ("quick" for pollux-bench; "" for pollux-sim, where an empty scale
// means "use the explicit -jobs/-nodes/... flags"). withParallel also
// declares -parallel, which only makes sense for multi-seed sweeps.
func (s *Sweep) Register(fs *flag.FlagSet, scaleDefault string, withParallel bool) {
	usage := "experiment scale preset: quick or full"
	if scaleDefault == "" {
		usage += " (empty: use the explicit shape flags)"
	}
	fs.StringVar(&s.ScaleName, "scale", scaleDefault, usage)
	if withParallel {
		fs.IntVar(&s.Parallel, "parallel", 0,
			"max per-seed simulations in flight (0 keeps the scale's default, GOMAXPROCS; 1 forces serial)")
	}
	fs.IntVar(&s.RefitWorkers, "refitworkers", 0,
		"max agent refits in flight per report round (0 defaults to GOMAXPROCS; 1 forces serial; results are identical either way)")
}

// Scale resolves the named preset with the concurrency overrides applied.
func (s Sweep) Scale() (experiments.Scale, error) {
	sc, err := experiments.ScaleByName(s.ScaleName)
	if err != nil {
		return Scale{}, err
	}
	if s.Parallel > 0 {
		sc.Parallel = s.Parallel
	}
	if s.RefitWorkers > 0 {
		sc.RefitWorkers = s.RefitWorkers
	}
	return sc, nil
}

// Scale aliases experiments.Scale so callers of Sweep.Scale need not
// import experiments just for the zero value.
type Scale = experiments.Scale

// ApplyConfig copies the concurrency knobs onto a single-simulation
// config.
func (s Sweep) ApplyConfig(cfg *sim.Config) {
	if s.Parallel > 0 {
		cfg.Parallel = s.Parallel
	}
	if s.RefitWorkers > 0 {
		cfg.RefitWorkers = s.RefitWorkers
	}
}
