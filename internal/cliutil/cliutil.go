// Package cliutil deduplicates the flag and configuration plumbing
// shared by the pollux command-line tools (cmd/pollux-bench,
// cmd/pollux-sim): the quick/full scale presets and the concurrency
// knobs, which previously were copied flag declarations that drifted
// whenever a new knob landed in only one tool.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/admit"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sweep holds the shared knobs. Register it on a FlagSet, Parse, then
// apply it to an experiments.Scale (bench sweeps) or a sim.Config
// (single simulations).
type Sweep struct {
	ScaleName    string
	Parallel     int
	RefitWorkers int
}

// Register declares the shared flags. scaleDefault is the -scale default
// ("quick" for pollux-bench; "" for pollux-sim, where an empty scale
// means "use the explicit -jobs/-nodes/... flags"). withParallel also
// declares -parallel, which only makes sense for multi-seed sweeps.
func (s *Sweep) Register(fs *flag.FlagSet, scaleDefault string, withParallel bool) {
	usage := "experiment scale preset: quick, full, or mega"
	if scaleDefault == "" {
		usage += " (empty: use the explicit shape flags)"
	}
	fs.StringVar(&s.ScaleName, "scale", scaleDefault, usage)
	if withParallel {
		fs.IntVar(&s.Parallel, "parallel", 0,
			"max per-seed simulations in flight (0 keeps the scale's default, GOMAXPROCS; 1 forces serial)")
	}
	fs.IntVar(&s.RefitWorkers, "refitworkers", 0,
		"max agent refits in flight per report round (0 defaults to GOMAXPROCS; 1 forces serial; results are identical either way)")
}

// Scale resolves the named preset with the concurrency overrides applied.
func (s Sweep) Scale() (experiments.Scale, error) {
	sc, err := experiments.ScaleByName(s.ScaleName)
	if err != nil {
		return Scale{}, err
	}
	if s.Parallel > 0 {
		sc.Parallel = s.Parallel
	}
	if s.RefitWorkers > 0 {
		sc.RefitWorkers = s.RefitWorkers
	}
	return sc, nil
}

// Scale aliases experiments.Scale so callers of Sweep.Scale need not
// import experiments just for the zero value.
type Scale = experiments.Scale

// ApplyConfig copies the concurrency knobs onto a single-simulation
// config.
func (s Sweep) ApplyConfig(cfg *sim.Config) {
	if s.Parallel > 0 {
		cfg.Parallel = s.Parallel
	}
	if s.RefitWorkers > 0 {
		cfg.RefitWorkers = s.RefitWorkers
	}
}

// Profile holds the shared -cpuprofile/-memprofile flags, so hotpath
// profiling of a sweep or a single simulation no longer needs an ad-hoc
// test harness: any pollux command can emit pprof files directly.
type Profile struct {
	CPU string
	Mem string
}

// Register declares the profiling flags.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a pprof heap profile at exit to this file")
}

// Start begins CPU profiling if requested and returns a stop function to
// defer: it stops the CPU profile and, if requested, writes the heap
// profile (after a GC, so the snapshot shows live retention rather than
// garbage). With neither flag set both Start and stop are no-ops.
func (p Profile) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cliutil: -cpuprofile: %w", err)
			}
		}
		if p.Mem == "" {
			return nil
		}
		f, err := os.Create(p.Mem)
		if err != nil {
			return fmt.Errorf("cliutil: -memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cliutil: -memprofile: %w", err)
		}
		return f.Close()
	}, nil
}

// FrontEnd holds the multi-tenant serving front-end knobs shared by
// pollux-sim and the multi-tenant example: which admission and priority
// policies to run ahead of the scheduler (internal/admit) and,
// optionally, a tenant mix for the generated trace.
type FrontEnd struct {
	Admission      string
	Priority       string
	Quotas         string
	DefaultQuota   int
	BucketCapacity float64
	BucketRefill   float64
	Tenants        string
}

// Register declares the front-end flags.
func (f *FrontEnd) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Admission, "admission", "",
		"admission policy ahead of the scheduler: always, token-bucket, or quota (empty: no front end unless -priority is set)")
	fs.StringVar(&f.Priority, "priority", "",
		"scheduling-snapshot priority: constant (submission order) or slo (earliest deadline first)")
	fs.StringVar(&f.Quotas, "quota", "",
		`per-tenant admission quotas for -admission quota, e.g. "batch=10,burst=2" (an explicit 0 rejects everything)`)
	fs.IntVar(&f.DefaultQuota, "default-quota", 0,
		"quota for tenants not listed in -quota (0 = unlimited, negative = explicit zero)")
	fs.Float64Var(&f.BucketCapacity, "bucket-capacity", 0,
		"token-bucket burst capacity in jobs (0 = default, negative = explicit zero)")
	fs.Float64Var(&f.BucketRefill, "bucket-refill", 0,
		"token-bucket refill rate in admissions per second (0 = default, negative = explicit zero)")
	fs.StringVar(&f.Tenants, "tenants", "",
		`multi-tenant trace spec "name:jobs[:sloHours]", comma-separated, e.g. "prod:12:2,batch:20" (overrides -jobs)`)
}

// Options builds the admit front-end options from the flags, or nil when
// no front-end flag was given (the zero-cost single-tenant path).
func (f FrontEnd) Options() (*admit.Options, error) {
	if f.Admission == "" && f.Priority == "" && f.Quotas == "" &&
		f.DefaultQuota == 0 && f.BucketCapacity == 0 && f.BucketRefill == 0 {
		return nil, nil
	}
	opts := &admit.Options{
		Admission:      f.Admission,
		Priority:       f.Priority,
		BucketCapacity: f.BucketCapacity,
		BucketRefill:   f.BucketRefill,
		DefaultQuota:   f.DefaultQuota,
	}
	if f.Quotas != "" {
		opts.Quotas = make(map[string]int)
		for _, part := range strings.Split(f.Quotas, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || name == "" {
				return nil, fmt.Errorf("cliutil: -quota entry %q is not tenant=N", part)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("cliutil: -quota %s: %v", name, err)
			}
			opts.Quotas[name] = n
		}
	}
	return opts, nil
}

// TenantSpecs parses the -tenants flag into workload tenant specs (nil
// when the flag is empty).
func (f FrontEnd) TenantSpecs() ([]workload.TenantSpec, error) {
	if f.Tenants == "" {
		return nil, nil
	}
	var specs []workload.TenantSpec
	for _, part := range strings.Split(f.Tenants, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 || fields[0] == "" {
			return nil, fmt.Errorf("cliutil: -tenants entry %q is not name:jobs[:sloHours]", part)
		}
		jobs, err := strconv.Atoi(fields[1])
		if err != nil || jobs <= 0 {
			return nil, fmt.Errorf("cliutil: -tenants %s: bad job count %q", fields[0], fields[1])
		}
		spec := workload.TenantSpec{Name: fields[0], Jobs: jobs}
		if len(fields) == 3 {
			slo, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || slo < 0 {
				return nil, fmt.Errorf("cliutil: -tenants %s: bad SLO hours %q", fields[0], fields[2])
			}
			spec.SLOHours = slo
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
