package cliutil

import (
	"flag"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func TestSweepRegisterAndScale(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var s Sweep
	s.Register(fs, "quick", true)
	if err := fs.Parse([]string{"-scale", "full", "-parallel", "3", "-refitworkers", "2"}); err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scale()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Jobs != experiments.FullScale().Jobs {
		t.Errorf("scale not resolved to full: %+v", sc)
	}
	if sc.Parallel != 3 || sc.RefitWorkers != 2 {
		t.Errorf("concurrency overrides not applied: %+v", sc)
	}
}

func TestSweepWithoutParallelFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var s Sweep
	s.Register(fs, "", false)
	if fs.Lookup("parallel") != nil {
		t.Error("-parallel registered despite withParallel=false")
	}
	if fs.Lookup("refitworkers") == nil || fs.Lookup("scale") == nil {
		t.Error("shared flags missing")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.ScaleName != "" {
		t.Errorf("default scale = %q, want empty", s.ScaleName)
	}
	if _, err := s.Scale(); err == nil {
		t.Error("empty scale name resolved without error")
	}
}

func TestApplyConfig(t *testing.T) {
	cfg := sim.Config{Parallel: 7, RefitWorkers: 7}
	Sweep{}.ApplyConfig(&cfg)
	if cfg.Parallel != 7 || cfg.RefitWorkers != 7 {
		t.Errorf("zero sweep overwrote config: %+v", cfg)
	}
	Sweep{Parallel: 2, RefitWorkers: 3}.ApplyConfig(&cfg)
	if cfg.Parallel != 2 || cfg.RefitWorkers != 3 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}
