package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func TestSweepRegisterAndScale(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var s Sweep
	s.Register(fs, "quick", true)
	if err := fs.Parse([]string{"-scale", "full", "-parallel", "3", "-refitworkers", "2"}); err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scale()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Jobs != experiments.FullScale().Jobs {
		t.Errorf("scale not resolved to full: %+v", sc)
	}
	if sc.Parallel != 3 || sc.RefitWorkers != 2 {
		t.Errorf("concurrency overrides not applied: %+v", sc)
	}
}

func TestSweepWithoutParallelFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var s Sweep
	s.Register(fs, "", false)
	if fs.Lookup("parallel") != nil {
		t.Error("-parallel registered despite withParallel=false")
	}
	if fs.Lookup("refitworkers") == nil || fs.Lookup("scale") == nil {
		t.Error("shared flags missing")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.ScaleName != "" {
		t.Errorf("default scale = %q, want empty", s.ScaleName)
	}
	if _, err := s.Scale(); err == nil {
		t.Error("empty scale name resolved without error")
	}
}

func TestApplyConfig(t *testing.T) {
	cfg := sim.Config{Parallel: 7, RefitWorkers: 7}
	Sweep{}.ApplyConfig(&cfg)
	if cfg.Parallel != 7 || cfg.RefitWorkers != 7 {
		t.Errorf("zero sweep overwrote config: %+v", cfg)
	}
	Sweep{Parallel: 2, RefitWorkers: 3}.ApplyConfig(&cfg)
	if cfg.Parallel != 2 || cfg.RefitWorkers != 3 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}

func TestFrontEndFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var fe FrontEnd
	fe.Register(fs)
	err := fs.Parse([]string{
		"-admission", "quota", "-priority", "slo",
		"-quota", "batch=10, burst=2", "-default-quota", "-1",
		"-tenants", "prod:12:2,batch:20",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := fe.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Admission != "quota" || opts.Priority != "slo" || opts.DefaultQuota != -1 {
		t.Errorf("options wrong: %+v", opts)
	}
	if opts.Quotas["batch"] != 10 || opts.Quotas["burst"] != 2 {
		t.Errorf("quotas wrong: %+v", opts.Quotas)
	}
	specs, err := fe.TenantSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "prod" || specs[0].Jobs != 12 ||
		specs[0].SLOHours != 2 || specs[1].Name != "batch" || specs[1].SLOHours != 0 {
		t.Errorf("tenant specs wrong: %+v", specs)
	}
}

func TestFrontEndZero(t *testing.T) {
	opts, err := FrontEnd{}.Options()
	if err != nil || opts != nil {
		t.Errorf("zero front end should build nil options, got %+v, %v", opts, err)
	}
	specs, err := FrontEnd{}.TenantSpecs()
	if err != nil || specs != nil {
		t.Errorf("zero front end should build nil tenant specs, got %+v, %v", specs, err)
	}
}

func TestFrontEndParseErrors(t *testing.T) {
	for _, fe := range []FrontEnd{
		{Quotas: "batch"},
		{Quotas: "batch=x"},
		{Quotas: "=3"},
	} {
		if _, err := fe.Options(); err == nil {
			t.Errorf("Options() accepted %+v", fe)
		}
	}
	for _, fe := range []FrontEnd{
		{Tenants: "prod"},
		{Tenants: "prod:0"},
		{Tenants: ":3"},
		{Tenants: "prod:3:x"},
		{Tenants: "prod:3:2:1"},
	} {
		if _, err := fe.TenantSpecs(); err == nil {
			t.Errorf("TenantSpecs() accepted %+v", fe)
		}
	}
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var p Profile
	p.Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i % 7
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileNoFlagsIsNoOp(t *testing.T) {
	stop, err := Profile{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
