package adascale

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGainIdentityAtM0(t *testing.T) {
	for _, phi := range []float64{0, 1, 100, 1e6} {
		if g := Gain(phi, 128, 128); math.Abs(g-1) > 1e-12 {
			t.Errorf("Gain(phi=%v, m=m0) = %v, want 1", phi, g)
		}
	}
}

func TestGainZeroNoise(t *testing.T) {
	// With no gradient noise, a larger batch adds nothing: r = 1.
	if g := Gain(0, 128, 1024); g != 1 {
		t.Errorf("Gain(phi=0) = %v, want 1", g)
	}
}

func TestGainInfiniteNoise(t *testing.T) {
	// Pure noise: perfect linear scaling, r = m/m0.
	if g := Gain(math.Inf(1), 128, 1024); g != 8 {
		t.Errorf("Gain(phi=inf) = %v, want 8", g)
	}
}

func TestGainKnownValue(t *testing.T) {
	// phi = m0: r = (1+1)/(phi/m+1). With m = 2·m0: (2)/(1.5) = 4/3.
	got := Gain(128, 128, 256)
	want := 4.0 / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Gain = %v, want %v", got, want)
	}
}

func TestGainNegativePhiClamped(t *testing.T) {
	if g := Gain(-5, 128, 256); g != 1 {
		t.Errorf("Gain(phi<0) = %v, want 1 (clamped to 0)", g)
	}
}

func TestGainPanicsOnBadBatch(t *testing.T) {
	for _, c := range []struct{ m0, m int }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gain(m0=%d, m=%d) did not panic", c.m0, c.m)
				}
			}()
			Gain(1, c.m0, c.m)
		}()
	}
}

// Property: for m >= m0, 1 <= r_t <= m/m0 (the paper's bounds), and r_t is
// monotonically non-decreasing in both phi and m.
func TestGainBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m0 := 1 + rng.Intn(512)
		m := m0 + rng.Intn(8192)
		phi := rng.Float64() * 1e5
		r := Gain(phi, m0, m)
		if r < 1-1e-12 || r > float64(m)/float64(m0)+1e-12 {
			return false
		}
		// Monotone in phi.
		if Gain(phi*2+1, m0, m) < r-1e-12 {
			return false
		}
		// Monotone in m.
		if Gain(phi, m0, m+16) < r-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Eqn. 18 (moments form) and Eqn. 19 (noise-scale form) agree
// when phi = m0·sigma²/mu², as derived in the paper's appendix.
func TestGainFormEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m0 := 1 + rng.Intn(256)
		m := m0 + rng.Intn(4096)
		sigmaSq := rng.Float64() * 50
		muSq := 0.01 + rng.Float64()*10
		phi := float64(m0) * sigmaSq / muSq
		a := Gain(phi, m0, m)
		b := GainFromMoments(sigmaSq, muSq, m0, m)
		return math.Abs(a-b) < 1e-9*math.Max(1, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGainFromMomentsZeroSignal(t *testing.T) {
	if g := GainFromMoments(1, 0, 128, 512); g != 4 {
		t.Errorf("GainFromMoments(mu²=0) = %v, want m/m0 = 4", g)
	}
}

func TestLearningRateScaling(t *testing.T) {
	if lr := LearningRate(0.1, 2.5); math.Abs(lr-0.25) > 1e-12 {
		t.Errorf("LearningRate = %v, want 0.25", lr)
	}
}

func TestSimpleScalingRules(t *testing.T) {
	if lr := LinearScale(0.1, 128, 512); math.Abs(lr-0.4) > 1e-12 {
		t.Errorf("LinearScale = %v, want 0.4", lr)
	}
	if lr := SqrtScale(0.1, 128, 512); math.Abs(lr-0.2) > 1e-12 {
		t.Errorf("SqrtScale = %v, want 0.2", lr)
	}
}

// AdaScale's LR never exceeds the linear scaling rule's LR and never drops
// below eta0 — the property that makes it safe across batch sizes.
func TestAdaScaleBetweenConstantAndLinearProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m0 := 1 + rng.Intn(256)
		m := m0 + rng.Intn(4096)
		phi := rng.Float64() * 1e4
		eta0 := 0.001 + rng.Float64()
		lr := LearningRate(eta0, Gain(phi, m0, m))
		return lr >= eta0-1e-12 && lr <= LinearScale(eta0, m0, m)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScheduleAccumulatesProgress(t *testing.T) {
	s := NewSchedule(128, 0.1)
	// 10 steps at m0 with any phi: progress = 10 exactly.
	for i := 0; i < 10; i++ {
		lr := s.Step(500, 128)
		if math.Abs(lr-0.1) > 1e-12 {
			t.Errorf("step at m0: lr = %v, want eta0", lr)
		}
	}
	if p := s.Progress(); math.Abs(p-10) > 1e-12 {
		t.Errorf("progress = %v, want 10", p)
	}
	if s.WallIters() != 10 {
		t.Errorf("wall iters = %d, want 10", s.WallIters())
	}
}

func TestScheduleLargerBatchFasterProgress(t *testing.T) {
	a := NewSchedule(128, 0.1)
	b := NewSchedule(128, 0.1)
	for i := 0; i < 100; i++ {
		a.Step(1000, 128)
		b.Step(1000, 1024)
	}
	if b.Progress() <= a.Progress() {
		t.Errorf("larger batch progress %v <= smaller %v", b.Progress(), a.Progress())
	}
	// But not more than 8x faster (m/m0 bound).
	if b.Progress() > 8*a.Progress()+1e-9 {
		t.Errorf("progress %v exceeds m/m0 bound vs %v", b.Progress(), a.Progress())
	}
}

func TestSchedulePanicsOnBadM0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchedule(0, ...) did not panic")
		}
	}()
	NewSchedule(0, 0.1)
}
