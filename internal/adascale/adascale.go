// Package adascale implements AdaScale SGD learning-rate scaling (Johnson
// et al., cited as [25] by the Pollux paper) together with the simple
// linear and square-root scaling-rule baselines from Sec. 2.2.
//
// AdaScale's central quantity is the gain
//
//	r_t = (phi_t/m0 + 1) / (phi_t/m + 1)            (Eqn. 5 / Eqn. 19)
//
// where phi_t is the gradient noise scale, m0 the initial batch size, and
// m >= m0 the current batch size. One iteration at batch size m makes the
// same training progress as r_t iterations at m0, and the learning rate is
// scaled by r_t. The statistical efficiency used by Pollux's goodput is
// E = r_t·m0/m (Eqn. 7); that lives in internal/core.
package adascale

import (
	"fmt"
	"math"
)

// Gain returns the AdaScale gain r_t for noise scale phi, initial batch
// size m0, and current batch size m. For m >= m0 and phi >= 0 the gain
// satisfies 1 <= r_t <= m/m0. Gain panics if m0 or m is non-positive.
func Gain(phi float64, m0, m int) float64 {
	if m0 <= 0 || m <= 0 {
		panic(fmt.Sprintf("adascale: non-positive batch size m0=%d m=%d", m0, m))
	}
	if math.IsInf(phi, 1) {
		// Pure noise: every example contributes independently, so m
		// examples make m/m0 iterations' worth of progress.
		return float64(m) / float64(m0)
	}
	if phi < 0 {
		phi = 0
	}
	return (phi/float64(m0) + 1) / (phi/float64(m) + 1)
}

// GainFromMoments computes the gain directly from the gradient second
// moments, as in Eqn. 18 of the paper's appendix: r_t =
// (sigma² + mu²) / ((m0/m)·sigma² + mu²), with sigma² the variance of the
// batch-mean gradient at batch size m0 and mu² its squared norm.
func GainFromMoments(sigmaSq, muSq float64, m0, m int) float64 {
	if m0 <= 0 || m <= 0 {
		panic(fmt.Sprintf("adascale: non-positive batch size m0=%d m=%d", m0, m))
	}
	num := sigmaSq + muSq
	den := float64(m0)/float64(m)*sigmaSq + muSq
	if den <= 0 {
		return float64(m) / float64(m0)
	}
	return num / den
}

// LearningRate returns the AdaScale-adjusted learning rate for base rate
// eta0: eta = r_t · eta0.
func LearningRate(eta0, gain float64) float64 {
	return eta0 * gain
}

// LinearScale is the linear scaling rule (Goyal et al.): eta scales with
// m/m0.
func LinearScale(eta0 float64, m0, m int) float64 {
	return eta0 * float64(m) / float64(m0)
}

// SqrtScale is the square-root scaling rule: eta scales with sqrt(m/m0).
func SqrtScale(eta0 float64, m0, m int) float64 {
	return eta0 * math.Sqrt(float64(m)/float64(m0))
}

// Schedule tracks scale-invariant training progress across batch-size
// changes. AdaScale's key property for scheduling is that progress is
// additive in gain: after iterations with gains r_1..r_T, the job has made
// the equivalent of sum(r_i) iterations at batch size m0. Pollux uses this
// to account remaining work consistently while it re-tunes m.
type Schedule struct {
	m0        int
	eta0      float64
	scaleInv  float64 // accumulated scale-invariant iterations
	wallIters int64   // actual iterations taken
}

// NewSchedule creates a progress tracker for a job that began at batch
// size m0 with learning rate eta0.
func NewSchedule(m0 int, eta0 float64) *Schedule {
	if m0 <= 0 {
		panic("adascale: non-positive m0")
	}
	return &Schedule{m0: m0, eta0: eta0}
}

// Step records one iteration at batch size m under noise scale phi and
// returns the learning rate to use for that iteration.
func (s *Schedule) Step(phi float64, m int) float64 {
	r := Gain(phi, s.m0, m)
	s.scaleInv += r
	s.wallIters++
	return LearningRate(s.eta0, r)
}

// Progress returns the accumulated scale-invariant iteration count (the
// number of m0-batch iterations' worth of progress made).
func (s *Schedule) Progress() float64 { return s.scaleInv }

// WallIters returns the number of actual SGD iterations taken.
func (s *Schedule) WallIters() int64 { return s.wallIters }

// M0 returns the initial batch size the schedule is relative to.
func (s *Schedule) M0() int { return s.m0 }
