package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// RngShare flags a *rand.Rand crossing a goroutine boundary.
//
// The repo's bit-identical parallel-vs-serial guarantee rests on the
// PR 2 rule: the rng stays on the caller's goroutine; workers receive
// data, never the rng. *rand.Rand is both unsynchronized (a data race)
// and order-sensitive (even a synchronized share would make draw order
// depend on scheduling). Flagged shapes:
//
//   - a *rand.Rand declared outside a `go func(){...}()` closure but
//     referenced inside it (capture);
//   - a *rand.Rand passed as a direct argument of a go statement's call;
//   - both of the above for func literals handed to goroutine-spawning
//     helpers: anything in an internal par package (par.For worker
//     pools) or a method named Go (errgroup shape).
//
// Per-goroutine rngs derived inside the closure (rand.New(rand.NewSource
// (seed+i))) are the sanctioned pattern and pass clean.
var RngShare = &Analyzer{
	Name:      "rngshare",
	Doc:       "flags a *rand.Rand captured by a go-statement closure or passed into goroutine-spawning helpers (par.For, worker pools); derive per-goroutine rngs from seeds instead",
	Directive: "rngshare-ok",
	Run:       runRngShare,
}

func runRngShare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkSpawnCall(pass, n.Call, "go statement")
			case *ast.CallExpr:
				if spawner, ok := spawnHelper(pass.TypesInfo, n); ok {
					checkSpawnCall(pass, n, spawner)
				}
			}
			return true
		})
	}
	return nil
}

// spawnHelper reports whether call invokes a goroutine-spawning helper
// and names it. Helpers: any function in a package whose final path
// element is "par" (the repo's bounded parallel-for), and any method
// named Go (the errgroup shape).
func spawnHelper(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, name, ok := funcPkg(info, sel); ok && path.Base(pkg) == "par" {
		return "par." + name, true
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Go" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + sig.Recv().Type().String() + ").Go", true
		}
	}
	return "", false
}

// checkSpawnCall flags *rand.Rand values escaping onto the spawned
// goroutine: direct arguments, and captures inside func-literal
// arguments (or the called literal itself).
func checkSpawnCall(pass *Pass, call *ast.CallExpr, spawner string) {
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			checkCapture(pass, fl, spawner)
			continue
		}
		if isRandRand(pass.TypesInfo.TypeOf(arg)) {
			if !pass.exempt(arg.Pos(), "rngshare-ok") {
				pass.Reportf(arg.Pos(), "*rand.Rand passed into %s: the rng must stay on the caller's goroutine — pass a seed and derive a goroutine-local rng (or justify with //pollux:rngshare-ok <reason>)", spawner)
			}
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		checkCapture(pass, fl, spawner)
	}
}

// checkCapture flags references inside fl to *rand.Rand variables
// declared outside it.
func checkCapture(pass *Pass, fl *ast.FuncLit, spawner string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isRandRand(v.Type()) {
			return true
		}
		// Declared inside the literal (parameter or local): owned by the
		// spawned goroutine, fine.
		if fl.Pos() <= v.Pos() && v.Pos() <= fl.End() {
			return true
		}
		if !pass.exempt(id.Pos(), "rngshare-ok") {
			pass.Reportf(id.Pos(), "*rand.Rand %q captured by a closure spawned via %s: draw order becomes schedule-dependent — draw on the caller's goroutine or derive a goroutine-local rng from a seed (or justify with //pollux:rngshare-ok <reason>)", id.Name, spawner)
		}
		return true
	})
}
