// Package lint holds the pollux-vet analyzers: mechanical enforcement of
// the determinism, clock, and option-pattern invariants the reproduction's
// parity guarantees rest on (bit-identical parallel-vs-serial GA scoring,
// bit-reproducible cluster.Replay, exact closed-form exhibit baselines).
//
// The analyzers mirror golang.org/x/tools/go/analysis in miniature — the
// container this repo builds in has no module proxy access, so the
// framework (Analyzer, Pass, the vet driver protocol in
// internal/lint/driver) is reimplemented on the standard library alone.
//
// Analyzers:
//
//   - detmap: range over a map in a determinism-critical package must be
//     conservatively order-insensitive or justified //pollux:order-ok.
//   - wallclock: wall-clock time and global math/rand are forbidden in
//     determinism-critical packages; time flows through eventsim.Clock,
//     randomness through a seeded *rand.Rand.
//   - rngshare: a *rand.Rand must not cross a goroutine boundary — not
//     captured by a `go` closure, not passed into par.For-style helpers.
//   - zerodefault: a `if o.X == 0 { o.X = d }` defaults() rewrite of a
//     numeric option field needs a negative-sentinel or Disable* escape.
//   - floateq: ==/!= on floats, except exact-representable constants and
//     the x != x NaN idiom.
//
// A finding is suppressed by a justification comment on the flagged line
// or the line above:
//
//	//pollux:<directive> <reason>
//
// where <directive> is the analyzer's directive name (order-ok for
// detmap, otherwise <name>-ok) and <reason> is mandatory prose recorded
// for the next reader. A directive with no reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// An Analyzer describes one invariant check. The shape matches
// x/tools/go/analysis.Analyzer so the checks port mechanically if the
// dependency ever becomes available.
type Analyzer struct {
	Name string // command-line name, e.g. "detmap"
	Doc  string // one-paragraph description for -flags / help output
	// Directive is the //pollux:<directive> comment that suppresses this
	// analyzer's findings at a site ("" = no suppression supported).
	Directive string
	Run       func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	directives map[string]map[int]*directive // filename → line → directive
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		DetMap,
		WallClock,
		RngShare,
		ZeroDefault,
		FloatEq,
	}
}

// criticalPkgs are the determinism-critical packages: any range over a
// map, wall-clock read, or unseeded randomness here can silently perturb
// fixed-seed traces and the checked-in exhibit baselines.
var criticalPkgs = map[string]bool{
	"sim":         true,
	"sched":       true,
	"ga":          true,
	"agent":       true,
	"workload":    true,
	"cluster":     true,
	"admit":       true,
	"runtime":     true,
	"eventsim":    true,
	"experiments": true,
}

// critical reports whether pkgPath is determinism-critical. Matching is
// by final path element so test fixtures (package path "sim") and the
// real tree (package path "repro/internal/sim") resolve identically.
func critical(pkgPath string) bool {
	return criticalPkgs[path.Base(pkgPath)]
}

// isTestFile reports whether pos is inside a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// A directive is one //pollux:<name> <reason> justification comment.
type directive struct {
	name   string
	reason string
}

const directivePrefix = "pollux:"

// exempt reports whether the finding at pos is suppressed by a
// //pollux:<name> directive on the same line or the line above. A
// directive that matches but carries no reason does not suppress —
// instead the missing reason is reported, so the tree cannot go clean on
// bare annotations.
func (p *Pass) exempt(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = map[string]map[int]*directive{}
		for _, f := range p.Files {
			fname := p.Fset.File(f.Pos()).Name()
			byLine := map[int]*directive{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
					if !ok {
						continue
					}
					dname, reason, _ := strings.Cut(text, " ")
					byLine[p.Fset.Position(c.Pos()).Line] = &directive{
						name:   dname,
						reason: strings.TrimSpace(reason),
					}
				}
			}
			p.directives[fname] = byLine
		}
	}
	posn := p.Fset.Position(pos)
	byLine := p.directives[posn.Filename]
	for _, line := range []int{posn.Line, posn.Line - 1} {
		d := byLine[line]
		if d == nil || d.name != name {
			continue
		}
		if d.reason == "" {
			p.Reportf(pos, "//%s%s needs a reason: say why this site is safe", directivePrefix, name)
			return true
		}
		return true
	}
	return false
}

// funcPkg resolves a call or value use of a package-level function and
// returns (package path, function name). ok is false for anything else
// (methods, locals, builtins).
func funcPkg(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return "", "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// isRandRand reports whether t is *math/rand.Rand (or math/rand/v2).
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}
