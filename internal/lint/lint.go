// Package lint holds the pollux-vet analyzers: mechanical enforcement of
// the determinism, clock, and option-pattern invariants the reproduction's
// parity guarantees rest on (bit-identical parallel-vs-serial GA scoring,
// bit-reproducible cluster.Replay, exact closed-form exhibit baselines).
//
// The analyzers mirror golang.org/x/tools/go/analysis in miniature — the
// container this repo builds in has no module proxy access, so the
// framework (Analyzer, Pass, the vet driver protocol in
// internal/lint/driver) is reimplemented on the standard library alone.
//
// Analyzers:
//
//   - detmap: range over a map in a determinism-critical package must be
//     conservatively order-insensitive or justified //pollux:order-ok.
//   - wallclock: wall-clock time and global math/rand are forbidden in
//     determinism-critical packages; time flows through eventsim.Clock,
//     randomness through a seeded *rand.Rand.
//   - rngshare: a *rand.Rand must not cross a goroutine boundary — not
//     captured by a `go` closure, not passed into par.For-style helpers.
//   - zerodefault: a `if o.X == 0 { o.X = d }` defaults() rewrite of a
//     numeric option field needs a negative-sentinel or Disable* escape.
//   - floateq: ==/!= on floats, except exact-representable constants and
//     the x != x NaN idiom.
//
// Three analyzers are interprocedural: they exchange serialized facts
// across package boundaries through the .vetx files of the unitchecker
// protocol (see facts.go), so a violation hidden behind a helper in
// another package is still found:
//
//   - clocktaint: a call from a determinism-critical package to any
//     function that transitively reaches time.Now/Sleep/... or a global
//     math/rand draw — in any package, at any depth — is flagged. This
//     closes the gap wallclock (purely local) cannot see.
//   - rngescape: a *rand.Rand passed to a function whose parameter is —
//     transitively — handed to another goroutine is flagged at the call
//     site; parameters that merely retain the rng are recorded as facts.
//   - aliasret: fields of map/slice/pointer type in a mutex-guarded
//     struct are facts; returning (or re-storing a row of) such a field
//     without a copy leaks guarded state past the lock.
//
// A finding is suppressed by a justification comment on the flagged line
// or the line above:
//
//	//pollux:<directive> <reason>
//
// where <directive> is the analyzer's directive name (order-ok for
// detmap, otherwise <name>-ok) and <reason> is mandatory prose recorded
// for the next reader. A directive with no reason is itself a finding,
// and so is a stale directive that no longer suppresses anything (the
// driver checks directive use across the whole analyzer suite).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// An Analyzer describes one invariant check. The shape matches
// x/tools/go/analysis.Analyzer so the checks port mechanically if the
// dependency ever becomes available.
type Analyzer struct {
	Name string // command-line name, e.g. "detmap"
	Doc  string // one-paragraph description for -flags / help output
	// Directive is the //pollux:<directive> comment that suppresses this
	// analyzer's findings at a site ("" = no suppression supported).
	Directive string
	Run       func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Facts is the unit's cross-package fact store (see facts.go). The
	// driver populates it with every dependency's decoded .vetx table;
	// nil means a local-only store is created on first use.
	Facts *Facts
	// Dirs is the unit's //pollux: directive registry, shared across the
	// analyzers run over the unit so StaleDirectives sees every use; nil
	// means the pass scans its own files on first use.
	Dirs *Directives
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		DetMap,
		WallClock,
		RngShare,
		ZeroDefault,
		FloatEq,
		ClockTaint,
		RngEscape,
		AliasRet,
	}
}

// criticalPkgs are the determinism-critical packages: any range over a
// map, wall-clock read, or unseeded randomness here can silently perturb
// fixed-seed traces and the checked-in exhibit baselines.
var criticalPkgs = map[string]bool{
	"sim":         true,
	"sched":       true,
	"ga":          true,
	"agent":       true,
	"workload":    true,
	"cluster":     true,
	"admit":       true,
	"runtime":     true,
	"eventsim":    true,
	"experiments": true,
}

// critical reports whether pkgPath is determinism-critical. Matching is
// by final path element so test fixtures (package path "sim") and the
// real tree (package path "repro/internal/sim") resolve identically.
func critical(pkgPath string) bool {
	return criticalPkgs[path.Base(pkgPath)]
}

// isTestFile reports whether pos is inside a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// funcPkg resolves a call or value use of a package-level function and
// returns (package path, function name). ok is false for anything else
// (methods, locals, builtins).
func funcPkg(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return "", "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// isRandRand reports whether t is *math/rand.Rand (or math/rand/v2).
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}
