package lint

import (
	"go/ast"
	"go/types"
)

// AliasRet enforces the deep-copy discipline on mutex-guarded state: a
// struct that carries a sync.Mutex/RWMutex guards its map, slice, and
// pointer fields, and handing such a field out uncopied leaks guarded
// state past the lock — the caller can then read or mutate it while no
// lock is held.
//
// Guarded fields are object facts (GuardedFieldFact), so an accessor in
// another package that resolves the struct through export data is
// checked too. Two shapes are flagged:
//
//   - returning a guarded field directly (`return s.placed`) — the copy
//     idioms (`append([]T(nil), s.f...)`, make+copy) are calls, not
//     field selectors, and pass untouched;
//   - re-storing an uncopied row while ranging a guarded field
//     (`for job, row := range s.placed { placed[job] = row }`) — the
//     exact shallow-copy bug PR 7 fixed by hand in cluster.Snapshot:
//     the outer container is fresh but every row still aliases guarded
//     memory.
//
// The analyzer is deliberately field-grained and conservative: it does
// not prove which mutex guards which field (a struct with any mutex
// marks all its alias-typed fields), so an intentionally shared handle
// — a field that is itself synchronized, or immutable after
// construction — is justified in place with //pollux:aliasret-ok, and
// the justification documents the sharing contract.
var AliasRet = &Analyzer{
	Name:      "aliasret",
	Doc:       "flags returning (or re-storing a row of) a map/slice/pointer field of a mutex-guarded struct without a copy (cross-package facts; the cluster.Snapshot shallow-row discipline)",
	Directive: "aliasret-ok",
	Run:       runAliasRet,
}

// GuardedFieldFact marks field Field of struct type Struct as guarded by
// the struct's mutex field Guard.
type GuardedFieldFact struct {
	Struct string
	Field  string
	Guard  string
}

// AFact marks GuardedFieldFact as a fact type.
func (*GuardedFieldFact) AFact() {}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// aliasType reports whether t is a type whose value aliases backing
// store: map, slice, or pointer (interfaces, channels, and funcs are
// left out — sharing those is a synchronization contract of its own).
func aliasType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer:
		return true
	}
	return false
}

func runAliasRet(pass *Pass) error {
	info := pass.TypesInfo

	// Phase 1: export guarded-field facts for every mutex-carrying named
	// struct type declared in this package.
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				guard := ""
				for i := 0; i < st.NumFields(); i++ {
					if isSyncMutex(st.Field(i).Type()) {
						guard = st.Field(i).Name()
						break
					}
				}
				if guard == "" {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					fld := st.Field(i)
					if !isSyncMutex(fld.Type()) && aliasType(fld.Type()) {
						pass.ExportFieldFact(obj.Name(), fld.Name(), &GuardedFieldFact{
							Struct: obj.Name(),
							Field:  fld.Name(),
							Guard:  guard,
						})
					}
				}
			}
		}
	}

	// guardedSel resolves a selector to a guarded field's fact.
	guardedSel := func(sel *ast.SelectorExpr) (*GuardedFieldFact, string) {
		fieldVar, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !fieldVar.IsField() {
			return nil, ""
		}
		owner := fieldOwner(info, sel, fieldVar)
		if owner == nil {
			return nil, ""
		}
		var fact GuardedFieldFact
		if pass.FieldFact(owner.Obj().Pkg(), owner.Obj().Name(), fieldVar.Name(), &fact) {
			display := owner.Obj().Name() + "." + fieldVar.Name()
			if owner.Obj().Pkg() != nil && owner.Obj().Pkg() != pass.Pkg {
				display = owner.Obj().Pkg().Name() + "." + display
			}
			return &fact, display
		}
		return nil, ""
	}

	// Phase 2: flag direct returns and aliased row re-stores.
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fact, display := guardedSel(sel)
					if fact == nil || pass.exempt(sel.Pos(), "aliasret-ok") {
						continue
					}
					pass.Reportf(sel.Pos(), "returning mutex-guarded field %s (guarded by %q) without a copy: the caller holds an alias it can use outside the lock — return a copy (or justify with //pollux:aliasret-ok <reason>)", display, fact.Guard)
				}
			case *ast.RangeStmt:
				checkGuardedRange(pass, n, guardedSel)
			}
			return true
		})
	}
	return nil
}

// checkGuardedRange flags `for k, row := range s.guarded { dst[k] = row }`
// — storing an uncopied row of a guarded container into anything not
// rooted at the guarded struct itself.
func checkGuardedRange(pass *Pass, rs *ast.RangeStmt, guardedSel func(*ast.SelectorExpr) (*GuardedFieldFact, string)) {
	info := pass.TypesInfo
	sel, ok := ast.Unparen(rs.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fact, display := guardedSel(sel)
	if fact == nil {
		return
	}
	valID, ok := rs.Value.(*ast.Ident)
	if !ok || valID.Name == "_" {
		return
	}
	valObj := info.ObjectOf(valID)
	if valObj == nil || !aliasType(valObj.Type()) {
		return
	}
	recvRoot := rootIdent(sel)
	var recvObj types.Object
	if recvRoot != nil {
		recvObj = info.ObjectOf(recvRoot)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || info.ObjectOf(id) != valObj {
				continue
			}
			lhsRoot := rootIdent(as.Lhs[i])
			if lhsRoot != nil && recvObj != nil && info.ObjectOf(lhsRoot) == recvObj {
				continue // re-store inside the same guarded struct
			}
			if pass.exempt(rhs.Pos(), "aliasret-ok") {
				continue
			}
			pass.Reportf(rhs.Pos(), "storing %q uncopied while ranging mutex-guarded field %s: every stored row still aliases guarded memory (the cluster.Snapshot shallow-copy bug) — copy the row first, e.g. append([]T(nil), %s...) (or justify with //pollux:aliasret-ok <reason>)", valID.Name, display, valID.Name)
		}
		return true
	})
}

// fieldOwner finds the named struct type that declares fieldVar,
// starting from the selector's receiver type and descending through
// embedded structs (field promotion).
func fieldOwner(info *types.Info, sel *ast.SelectorExpr, fieldVar *types.Var) *types.Named {
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	var search func(t types.Type, depth int) *types.Named
	search = func(t types.Type, depth int) *types.Named {
		if depth > 10 {
			return nil
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			if ptr, ok := t.(*types.Pointer); ok {
				named, _ = ptr.Elem().(*types.Named)
			}
			if named == nil {
				return nil
			}
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fieldVar {
				return named
			}
		}
		for i := 0; i < st.NumFields(); i++ {
			if !st.Field(i).Embedded() {
				continue
			}
			if owner := search(st.Field(i).Type(), depth+1); owner != nil {
				return owner
			}
		}
		return nil
	}
	return search(t, 0)
}
