package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsClean builds cmd/pollux-vet and runs it over the whole module,
// so a determinism-invariant violation anywhere in the tree fails plain
// `go test ./...` locally, not just the dedicated CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet run skipped in -short mode")
	}
	root := moduleRoot(t)

	bin := filepath.Join(t.TempDir(), "pollux-vet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pollux-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pollux-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("pollux-vet found violations: %v\n%s", err, out)
	}
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
