package lint_test

import (
	"os/exec"
	"testing"
)

// TestRepoIsClean runs the shared pollux-vet binary (built once in
// TestMain) over the whole module, so a determinism-invariant violation
// anywhere in the tree fails plain `go test ./...` locally, not just
// the dedicated CI step. It exercises the full fact pipeline — every
// dependency's .vetx is written and re-read through the real go vet
// protocol — and the stale-directive check over every real
// justification in the tree.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet run skipped in -short mode")
	}
	bin := vetBinary(t)
	root := moduleRoot(t)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("pollux-vet found violations: %v\n%s", err, out)
	}
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return root
}
