package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
)

// sampleTable builds a fact table with one non-zero instance of every
// registered fact type, so encoding tests cover the whole wire surface.
func sampleTable() map[string][]Fact {
	return map[string][]Fact{
		"func NowUnix": {
			&ClockTaintFact{Path: []string{"clockutil.NowUnix", "time.Now"}},
		},
		"param func Spawn#0": {
			&RngEscapeFact{Goroutine: true, Stored: true, Path: []string{"a go-statement closure"}},
		},
		"field State.placed": {
			&GuardedFieldFact{Struct: "State", Field: "placed", Guard: "mu"},
		},
		// One key carrying several fact types exercises the within-key
		// sort.
		"method (Timer).Touch": {
			&RngEscapeFact{Stored: true},
			&ClockTaintFact{Path: []string{"time.Now"}},
		},
	}
}

// TestFactGobRoundTrip encodes and decodes every registered fact type
// and requires the payload to survive unchanged. A fact type added to
// AllFactTypes without gob-encodable fields fails here, not in a vet
// run.
func TestFactGobRoundTrip(t *testing.T) {
	table := sampleTable()
	// Every registered type must appear in the sample — this test is the
	// checklist for future fact types.
	seen := map[string]bool{}
	for _, facts := range table {
		for _, f := range facts {
			seen[fmt.Sprintf("%T", f)] = true
		}
	}
	for _, f := range AllFactTypes() {
		if !seen[fmt.Sprintf("%T", f)] {
			t.Errorf("registered fact type %T missing from sampleTable — add a populated instance", f)
		}
	}

	data, err := EncodeFacts(table)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(table) {
		t.Fatalf("round trip kept %d keys, want %d", len(got), len(table))
	}
	for key, want := range table {
		gotFacts := got[key]
		if len(gotFacts) != len(want) {
			t.Fatalf("key %q: %d facts after round trip, want %d", key, len(gotFacts), len(want))
		}
		for _, w := range want {
			found := false
			for _, g := range gotFacts {
				if reflect.DeepEqual(g, w) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("key %q: fact %#v lost in round trip", key, w)
			}
		}
	}
}

// TestEncodeFactsDeterministic requires byte-identical encodings across
// repeated runs: map iteration order is randomized per run, so any
// order dependence in EncodeFacts shows up as flapping bytes — which
// would churn the go command's action cache on every build.
func TestEncodeFactsDeterministic(t *testing.T) {
	first, err := EncodeFacts(sampleTable())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := EncodeFacts(sampleTable())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding %d differs from the first: .vetx bytes must be a pure function of the facts", i)
		}
	}
}

// TestEncodeFactsEmpty pins the empty-table representation to zero
// bytes: the pre-facts driver wrote empty .vetx files, and stdlib units
// still do, so both directions must treat zero bytes as "no facts".
func TestEncodeFactsEmpty(t *testing.T) {
	data, err := EncodeFacts(map[string][]Fact{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("empty table encoded to %d bytes, want 0", len(data))
	}
	table, err := DecodeFacts(nil)
	if err != nil {
		t.Fatalf("decoding empty input: %v", err)
	}
	if len(table) != 0 {
		t.Fatalf("empty input decoded to %d keys, want 0", len(table))
	}
}

// TestDecodeFactsCorrupt requires corruption to surface as an error,
// never as a silently empty table.
func TestDecodeFactsCorrupt(t *testing.T) {
	if _, err := DecodeFacts([]byte("not a gob stream")); err == nil {
		t.Fatal("corrupt input decoded without error")
	}
	// A truncated valid stream must fail too.
	data, err := EncodeFacts(sampleTable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFacts(data[:len(data)/2]); err == nil {
		t.Fatal("truncated input decoded without error")
	}
}

// TestDecodeFactsVersionMismatch pins the loud failure on a wire-format
// bump: a .vetx written by a future pollux-vet must be rejected, not
// misread.
func TestDecodeFactsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vetxPayload{Version: vetxVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFacts(buf.Bytes()); err == nil {
		t.Fatal("version mismatch decoded without error")
	}
}

// TestFactsExportReplaces pins the one-fact-per-type-per-key rule the
// fixpoint analyzers rely on when they refine a fact in place.
func TestFactsExportReplaces(t *testing.T) {
	fs := NewFacts("p")
	fs.Export("func F", &RngEscapeFact{Stored: true})
	fs.Export("func F", &RngEscapeFact{Stored: true, Goroutine: true})
	fs.Export("func F", &ClockTaintFact{Path: []string{"time.Now"}})
	if got := len(fs.Exported()["func F"]); got != 2 {
		t.Fatalf("%d facts on key, want 2 (replace same type, keep other types)", got)
	}
	var rng RngEscapeFact
	if !fs.Lookup("p", "func F", &rng) || !rng.Goroutine {
		t.Fatalf("lookup returned %+v, want the replaced fact with Goroutine=true", rng)
	}
}
