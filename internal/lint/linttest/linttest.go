// Package linttest runs internal/lint analyzers over testdata fixture
// packages and checks reported diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// build cannot depend on — see internal/lint).
//
// Fixtures live in testdata/src/<pkgpath>/ relative to the calling
// test. Each line that should be flagged carries a trailing
//
//	// want "regexp"
//
// comment ("// want `regexp`" also works; several per line allowed).
// Diagnostics and want comments are matched per line: every diagnostic
// must match a want on its line and every want must be matched.
//
// Fixture packages may import the standard library and sibling fixture
// packages (import path = directory name under testdata/src); both are
// typechecked from source, so no build cache or module proxy is needed.
//
// Facts flow like they do under the real driver: before a fixture
// package is checked, the analyzer is first run over its fixture
// dependencies (bottom-up, diagnostics discarded) and their exported
// fact tables are installed in the target pass — so a // want in a
// fixture can assert on a diagnostic that only exists because of a fact
// imported from another fixture package.
//
// After the analyzer runs, stale-directive findings for the analyzer
// under test (plus unknown-directive findings) are matched against
// // want comments too, mirroring the driver's end-of-unit check.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run analyzes each fixture package under testdata/src with a and
// reports mismatches against the // want annotations. Fixture
// dependencies are analyzed first (facts only), and the stale-directive
// check runs for a's directive after the analyzer pass.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(t)

	// tables caches each fixture package's exported facts so shared
	// dependencies are analyzed once per Run.
	tables := map[string]map[string][]lint.Fact{}
	var factsFor func(t *testing.T, pkgPath string) map[string][]lint.Fact
	factsFor = func(t *testing.T, pkgPath string) map[string][]lint.Fact {
		t.Helper()
		if tbl, ok := tables[pkgPath]; ok {
			return tbl
		}
		pkg := ld.load(t, pkgPath)
		facts := lint.NewFacts(pkgPath)
		for _, dep := range pkg.deps {
			facts.AddImported(dep, factsFor(t, dep))
		}
		pass := &lint.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Facts:     facts,
			Report:    func(lint.Diagnostic) {}, // deps carry no wants
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s failed on dependency %s: %v", a.Name, pkgPath, err)
		}
		tables[pkgPath] = facts.Exported()
		return tables[pkgPath]
	}

	for _, pkgPath := range pkgPaths {
		t.Run(a.Name+"/"+pkgPath, func(t *testing.T) {
			t.Helper()
			pkg := ld.load(t, pkgPath)

			facts := lint.NewFacts(pkgPath)
			for _, dep := range pkg.deps {
				facts.AddImported(dep, factsFor(t, dep))
			}
			dirs := lint.ScanDirectives(ld.fset, pkg.files)
			var diags []lint.Diagnostic
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      ld.fset,
				Files:     pkg.files,
				Pkg:       pkg.types,
				TypesInfo: pkg.info,
				Facts:     facts,
				Dirs:      dirs,
				Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s failed: %v", a.Name, err)
			}
			diags = append(diags, lint.StaleDirectives(dirs, []*lint.Analyzer{a}, lint.All())...)
			tables[pkgPath] = facts.Exported()
			check(t, ld.fset, pkg, diags)
		})
	}
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
	deps  []string                   // fixture-local imports, in first-use order
	wants map[string]map[int][]*want // filename → line → wants
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *fixturePkg, diags []lint.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range pkg.wants[posn.Filename][posn.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var missing []string
	for fname, byLine := range pkg.wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", fname, line, w.re))
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}

// loader typechecks fixture packages, resolving fixture-local imports
// from testdata/src and everything else from GOROOT source via the
// "source" importer.
type loader struct {
	fset    *token.FileSet
	root    string // testdata/src
	std     types.Importer
	pkgs    map[string]*fixturePkg
	loading map[string]bool
}

func newLoader(t *testing.T) *loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*fixturePkg{},
		loading: map[string]bool{},
	}
}

func (ld *loader) load(t *testing.T, pkgPath string) *fixturePkg {
	t.Helper()
	if pkg, ok := ld.pkgs[pkgPath]; ok {
		return pkg
	}
	if ld.loading[pkgPath] {
		t.Fatalf("import cycle through fixture %q", pkgPath)
	}
	ld.loading[pkgPath] = true
	defer delete(ld.loading, pkgPath)

	dir := filepath.Join(ld.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %q: %v", pkgPath, err)
	}
	pkg := &fixturePkg{wants: map[string]map[int][]*want{}}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(ld.fset, fname, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", fname, err)
		}
		pkg.files = append(pkg.files, f)
		pkg.wants[fname] = parseWants(t, ld.fset, f)
	}
	if len(pkg.files) == 0 {
		t.Fatalf("fixture package %q has no .go files", pkgPath)
	}

	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
			dep := ld.load(t, path)
			seen := false
			for _, d := range pkg.deps {
				if d == path {
					seen = true
				}
			}
			if !seen {
				pkg.deps = append(pkg.deps, path)
			}
			return dep.types, nil
		}
		return ld.std.Import(path)
	})
	pkg.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: imp}
	pkg.types, err = tc.Check(pkgPath, ld.fset, pkg.files, pkg.info)
	if err != nil {
		t.Fatalf("typecheck fixture %q: %v", pkgPath, err)
	}
	ld.pkgs[pkgPath] = pkg
	return pkg
}

var wantRe = regexp.MustCompile("// want (.*)$")

func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int][]*want {
	t.Helper()
	byLine := map[int][]*want{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, pat := range splitPatterns(t, m[1], fset.Position(c.Pos())) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				byLine[line] = append(byLine[line], &want{re: re})
			}
		}
	}
	return byLine
}

// splitPatterns parses `"re1" "re2"` or backquoted equivalents.
func splitPatterns(t *testing.T, s string, posn token.Position) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted, got %q", posn, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", posn, s)
		}
		pats = append(pats, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	return pats
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
