package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point expressions.
//
// Two computed floats that "should" be equal rarely are — and worse for
// this repo, whether they are can depend on evaluation order, so a float
// equality test can turn an invisible last-bit drift into a behavioral
// fork. Allowed without annotation:
//
//   - comparison against a constant whose value is exactly representable
//     in the operand's float type (x == 0, x == 0.5, x == -1: sentinel
//     and exact-gate checks are deliberate);
//   - the NaN idiom x != x / x == x (self-comparison);
//   - bit-pattern comparison via math.Float64bits lands on uint64 and is
//     never flagged — that is the sanctioned exact-equality idiom.
//
// Anything else needs a tolerance, a bits comparison, or a
// //pollux:floateq-ok justification.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Doc:       "flags ==/!= on float expressions except exact-representable constants and the x != x NaN idiom; compare math.Float64bits or use a tolerance",
	Directive: "floateq-ok",
	Run:       runFloatEq,
}

func runFloatEq(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.EQL && be.Op != token.NEQ {
				return true
			}
			if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
				return true
			}
			// Constant-folded comparisons (two untyped constants) are
			// compile-time facts, not runtime hazards.
			if tv, ok := info.Types[be]; ok && tv.Value != nil {
				return true
			}
			if exactConst(info, be.X) || exactConst(info, be.Y) {
				return true
			}
			if selfCompare(be) {
				return true // x != x: the NaN check
			}
			if pass.exempt(be.Pos(), "floateq-ok") {
				return true
			}
			pass.Reportf(be.Pos(), "float %s comparison: computed floats differ in last bits and fork behavior silently — compare math.Float64bits for exact identity, use a tolerance, or justify with //pollux:floateq-ok <reason>", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactConst reports whether e is a compile-time constant whose source
// literals are all exactly representable in float64 (x == 0, x == 0.5,
// x == -1, x == 4*3600). The typechecker's recorded constant value is
// already rounded, so exactness is judged from the literal text: x ==
// 0.1 is flagged — the author believes a computed x can land exactly on
// a value that does not exist in binary floating point.
func exactConst(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	exact := true
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.FLOAT && lit.Kind != token.INT {
			return true
		}
		v := constant.MakeFromLiteral(lit.Value, lit.Kind, 0)
		if v.Kind() == constant.Unknown {
			exact = false
			return false
		}
		if _, ok := constant.Float64Val(constant.ToFloat(v)); !ok {
			exact = false
		}
		return exact
	})
	return exact
}

// selfCompare matches x == x / x != x where x is the same identifier or
// selector chain on both sides.
func selfCompare(be *ast.BinaryExpr) bool {
	return sameRef(be.X, be.Y)
}

func sameRef(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameRef(a.X, bs.X)
	case *ast.IndexExpr:
		bi, ok := b.(*ast.IndexExpr)
		return ok && sameRef(a.X, bi.X) && sameRef(a.Index, bi.Index)
	}
	return false
}
