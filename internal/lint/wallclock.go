package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// WallClock forbids wall-clock time and global math/rand state in
// determinism-critical packages.
//
// Simulated time flows through eventsim.Clock (internal/eventsim/clock.go
// is the single allowlisted implementation site); randomness flows
// through a seeded *rand.Rand handed down explicitly. A stray time.Now
// in a scheduling round or a global rand.Intn in a workload generator
// breaks bit-reproducible cluster.Replay and fixed-seed traces in ways
// that only surface as flaky baselines much later.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) stay
// allowed — they are how seeded rngs are made.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbids time.Now/Sleep/After/... and global math/rand functions in determinism-critical packages; time flows through eventsim.Clock, randomness through a seeded *rand.Rand",
	Directive: "wallclock-ok",
	Run:       runWallClock,
}

// wallClockFuncs are the package "time" functions that read or pace the
// wall clock. time.Unix/Date etc. (pure constructors) stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(pass *Pass) error {
	if !critical(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		fname := pass.Fset.File(f.Pos()).Name()
		// The one place wall time may be touched: the Wall clock
		// implementation itself.
		if filepath.Base(fname) == "clock.go" && strings.HasSuffix(pass.Pkg.Path(), "eventsim") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := funcPkg(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				if !pass.exempt(sel.Pos(), "wallclock-ok") {
					pass.Reportf(sel.Pos(), "time.%s in determinism-critical package %s: wall-clock time must flow through eventsim.Clock (or justify with //pollux:wallclock-ok <reason>)", name, pass.Pkg.Name())
				}
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(name, "New"):
				if !pass.exempt(sel.Pos(), "wallclock-ok") {
					pass.Reportf(sel.Pos(), "global rand.%s in determinism-critical package %s: draw from a seeded *rand.Rand instead (or justify with //pollux:wallclock-ok <reason>)", name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
