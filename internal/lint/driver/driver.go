// Package driver runs the internal/lint analyzers under `go vet
// -vettool`. It reimplements, on the standard library alone, the slice
// of golang.org/x/tools/go/analysis/unitchecker protocol that the go
// command speaks to an external vet tool:
//
//	pollux-vet -V=full     describe the executable (for build caching)
//	pollux-vet -flags      describe flags as JSON (for go vet flag parsing)
//	pollux-vet foo.cfg     analyze one compilation unit described by the
//	                       JSON config the go command wrote
//
// plus a convenience mode: `pollux-vet ./...` re-execs `go vet
// -vettool=$0 ./...` so the tool is also directly runnable (flags such
// as -json are forwarded).
//
// The interprocedural analyzers exchange facts through the `.vetx`
// files the protocol plumbs: each unit decodes every dependency's fact
// table (cfg.PackageVetx) before analysis and serializes its own
// exported facts to cfg.VetxOutput after (lint.EncodeFacts — a
// deterministic encoding, so the go command's action cache stays
// stable). A missing or corrupt dependency fact file is a fatal driver
// error, never a silent empty table: diagnostics depend on those facts.
// VetxOnly units (dependencies vetted only for their facts) are fully
// analyzed with diagnostics suppressed — except standard-library units,
// which can never export pollux facts (the analyzers recognize their
// roots syntactically) and return an empty table immediately.
//
// After the per-analyzer passes, the driver reports stale directives:
// any //pollux: comment naming an unknown directive, or one whose
// analyzer ran and suppressed nothing through it (group name
// "staledirective"). Test-augmented units (ImportPath like "p [p.test]")
// skip this check — the determinism analyzers deliberately ignore
// _test.go files, so directive use there is not meaningful.
package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// A config mirrors the JSON compilation-unit description the go command
// hands a vet tool (unitchecker.Config).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	ModulePath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the pollux-vet entry point.
func Main(analyzers []*lint.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s enforces the repo's determinism, clock, and option-pattern invariants.

Usage:
	go vet -vettool=$(which %[1]s) ./...   # the supported invocation
	%[1]s ./...                            # shorthand for the above
	%[1]s help                             # list analyzers
	%[1]s unit.cfg                         # internal: invoked by go vet
`, progname)
		os.Exit(1)
	}

	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	_ = flag.Int("c", -1, "display offending line with this many lines of context (ignored)")
	enabled := map[string]*triState{}
	for _, a := range analyzers {
		ts := new(triState)
		enabled[a.Name] = ts
		flag.Var(ts, a.Name, "enable "+a.Name+" analysis")
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	analyzers = selectAnalyzers(analyzers, enabled)

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if args[0] == "help" {
		fmt.Printf("%s enforces determinism, clock, and option-pattern invariants.\n\nRegistered analyzers:\n\n", progname)
		for _, a := range analyzers {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("\nSuppress a finding with //pollux:<directive> <reason> on the flagged line or the line above.\n")
		os.Exit(0)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runConfig(args[0], analyzers, *jsonOut)
		return
	}

	// Package patterns: re-exec through go vet, which knows how to load
	// and typecheck packages and call us back per compilation unit.
	// Tool flags the user set are forwarded (go vet hands them back to us
	// on each per-unit invocation).
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	names := make([]string, 0, len(enabled))
	for name := range enabled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if ts := *enabled[name]; ts != unset {
			vetArgs = append(vetArgs, fmt.Sprintf("-%s=%v", name, ts == setTrue))
		}
	}
	cmd := exec.Command("go", append(vetArgs, args...)...)
	cmd.Stdout = os.Stdout
	if !*jsonOut {
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			log.Fatal(err)
		}
		return
	}

	// In -json mode the go command interleaves the per-unit JSON our .cfg
	// invocations print with "# <package>" progress headers, all on its
	// stderr. Machine readers want a clean JSON stream: keep the headers
	// on stderr and forward everything else to stdout.
	var vetStderr bytes.Buffer
	cmd.Stderr = &vetStderr
	runErr := cmd.Run()
	for _, line := range strings.Split(strings.TrimRight(vetStderr.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fmt.Fprintln(os.Stderr, line)
		} else {
			fmt.Fprintln(os.Stdout, line)
		}
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(runErr)
	}
}

// selectAnalyzers applies vet's flag convention: if any -NAME flag is
// true, run only those; otherwise if any is false, run all but those.
func selectAnalyzers(analyzers []*lint.Analyzer, enabled map[string]*triState) []*lint.Analyzer {
	hasTrue := false
	for _, ts := range enabled {
		if *ts == setTrue {
			hasTrue = true
		}
	}
	var keep []*lint.Analyzer
	for _, a := range analyzers {
		switch *enabled[a.Name] {
		case setTrue:
			keep = append(keep, a)
		case unset:
			if !hasTrue {
				keep = append(keep, a)
			}
		}
	}
	return keep
}

// runConfig analyzes the single compilation unit described by cfgFile
// and exits: 0 clean, 1 findings, fatal on driver errors.
func runConfig(cfgFile string, analyzers []*lint.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	writeVetx := func(data []byte) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
				log.Fatalf("failed to write facts: %v", err)
			}
		}
	}
	// Standard-library units can never carry pollux facts: the analyzers
	// recognize their roots (time.Now, rand.Int, ...) syntactically at the
	// call site, and tainting through stdlib internals would misclassify
	// sanctioned entry points (rand.NewSource reaches the generator's
	// internals by construction). Stdlib units are the ones outside any
	// module (cfg.Standard only marks the unit's dependencies, never the
	// unit itself) and are only ever vetted for facts — skip the
	// parse/typecheck entirely and publish an empty table.
	if cfg.VetxOnly && cfg.ModulePath == "" {
		writeVetx(nil)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	diags, facts, err := analyze(fset, cfg, analyzers)
	if err != nil {
		writeVetx(nil)
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0) // the compiler will report the real error
		}
		log.Fatal(err)
	}
	factData, err := lint.EncodeFacts(facts.Exported())
	if err != nil {
		log.Fatalf("encoding facts for %s: %v", cfg.ImportPath, err)
	}
	writeVetx(factData)
	if cfg.VetxOnly {
		// A dependency vetted only for its facts: diagnostics are the
		// target packages' business.
		os.Exit(0)
	}

	if jsonOut {
		printJSON(fset, cfg.ID, diags)
		os.Exit(0)
	}
	exit := 0
	for _, d := range diags {
		for _, diag := range d.diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(diag.Pos), diag.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

type analyzerDiags struct {
	name  string
	diags []lint.Diagnostic
}

// importDepFacts decodes every dependency's .vetx fact table into a
// fresh store for the unit. Any unreadable or corrupt fact file is an
// error: silently analyzing without a dependency's facts would make
// findings appear and disappear with build-cache state.
func importDepFacts(cfg *config) (*lint.Facts, error) {
	facts := lint.NewFacts(cfg.ImportPath)
	paths := make([]string, 0, len(cfg.PackageVetx))
	for importPath := range cfg.PackageVetx {
		paths = append(paths, importPath)
	}
	sort.Strings(paths)
	for _, importPath := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[importPath])
		if err != nil {
			return nil, fmt.Errorf("reading fact file for dependency %q: %v (stale go vet action cache? try go clean -cache)", importPath, err)
		}
		table, err := lint.DecodeFacts(data)
		if err != nil {
			return nil, fmt.Errorf("fact file for dependency %q: %v", importPath, err)
		}
		// Facts are looked up by the canonical package path objects report
		// (types.Package.Path), which for vendored/mapped imports is the
		// ImportMap target, not the source import path.
		pkgPath := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			pkgPath = mapped
		}
		facts.AddImported(pkgPath, table)
	}
	return facts, nil
}

// analyze parses and typechecks the unit (types of dependencies come
// from the compiler export data the go command lists in cfg) and runs
// the analyzers over it, sharing one fact store and one directive
// registry across them. The returned store holds the unit's exported
// facts for serialization.
func analyze(fset *token.FileSet, cfg *config, analyzers []*lint.Analyzer) ([]analyzerDiags, *lint.Facts, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: version.Lang(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	facts, err := importDepFacts(cfg)
	if err != nil {
		return nil, nil, err
	}
	dirs := lint.ScanDirectives(fset, files)

	var results []analyzerDiags
	for _, a := range analyzers {
		res := analyzerDiags{name: a.Name}
		pass := &lint.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			Dirs:      dirs,
		}
		pass.Report = func(d lint.Diagnostic) { res.diags = append(res.diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		results = append(results, res)
	}

	// Stale-directive findings ride in their own group. Test-augmented
	// units re-analyze the base package's files with a different critical()
	// outcome (the ImportPath gains a " [p.test]" suffix), so every
	// directive would read unused there — skip those units.
	if !strings.Contains(cfg.ImportPath, " [") {
		if stale := lint.StaleDirectives(dirs, analyzers, lint.All()); len(stale) > 0 {
			results = append(results, analyzerDiags{name: "staledirective", diags: stale})
		}
	}
	return results, facts, nil
}

// printJSON emits the diagnostic tree go vet -json expects:
// {"pkgID": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSON(fset *token.FileSet, pkgID string, diags []analyzerDiags) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		for _, diag := range d.diags {
			byAnalyzer[d.name] = append(byAnalyzer[d.name], jsonDiag{
				Posn:    fset.Position(diag.Pos).String(),
				Message: diag.Message,
			})
		}
	}
	tree := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// printFlags answers `pollux-vet -flags`: the go command parses this to
// learn which command-line flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: the go command hashes the
// reported build ID into its action cache key, so the output must change
// whenever the binary does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// triState distinguishes an unset analyzer flag from an explicit
// true/false, mirroring vet's per-analyzer selection semantics.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (ts *triState) IsBoolFlag() bool { return true }
func (ts *triState) String() string   { return "unset" }
func (ts *triState) Set(value string) error {
	switch value {
	case "true":
		*ts = setTrue
	case "false":
		*ts = setFalse
	default:
		return fmt.Errorf("want true or false")
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
