package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over at least one fixture package with flagged
// sites (// want annotations) and one with allowed counterparts; the
// linttest runner fails on both unexpected and missing diagnostics, so
// every fixture checks acceptance and rejection together.

func TestDetMap(t *testing.T) {
	linttest.Run(t, lint.DetMap, "sim", "detmaputil")
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock, "cluster", "eventsim", "detmaputil")
}

func TestRngShare(t *testing.T) {
	linttest.Run(t, lint.RngShare, "rngshare")
}

func TestZeroDefault(t *testing.T) {
	linttest.Run(t, lint.ZeroDefault, "zerodefault")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "floateq")
}

// The interprocedural analyzers: linttest runs the analyzer over each
// fixture package's fixture dependencies first, so the wants below
// assert on diagnostics that only exist because of imported facts.

func TestClockTaint(t *testing.T) {
	linttest.Run(t, lint.ClockTaint, "sched")
}

func TestRngEscape(t *testing.T) {
	linttest.Run(t, lint.RngEscape, "rngescape")
}

func TestAliasRet(t *testing.T) {
	linttest.Run(t, lint.AliasRet, "aliasstate", "aliasret")
}

// TestStaleDirectives covers directive hygiene end to end: stale,
// unknown, and reasonless directives in one critical fixture package
// (linttest appends the stale check for the analyzer under test after
// its pass, like the driver does per unit).
func TestStaleDirectives(t *testing.T) {
	linttest.Run(t, lint.DetMap, "workload")
}
