package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over at least one fixture package with flagged
// sites (// want annotations) and one with allowed counterparts; the
// linttest runner fails on both unexpected and missing diagnostics, so
// every fixture checks acceptance and rejection together.

func TestDetMap(t *testing.T) {
	linttest.Run(t, lint.DetMap, "sim", "detmaputil")
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock, "cluster", "eventsim", "detmaputil")
}

func TestRngShare(t *testing.T) {
	linttest.Run(t, lint.RngShare, "rngshare")
}

func TestZeroDefault(t *testing.T) {
	linttest.Run(t, lint.ZeroDefault, "zerodefault")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "floateq")
}
