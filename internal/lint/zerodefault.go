package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ZeroDefault flags the zero-value-default trap in option structs.
//
// A defaults() method that rewrites a numeric field's zero value,
//
//	if o.X == 0 { o.X = d }
//
// makes an explicit X: 0 indistinguishable from "unset": the caller
// cannot ask for zero. PR 2 hit this twice (RestartPenalty: 0 silently
// became 0.25; GPUTimeThres: 0 silently became 4 GPU-hours). The rewrite
// is allowed only when the function also provides an escape for explicit
// zero, detected as either
//
//   - a negative-sentinel branch on the same field (o.X < 0 or o.X <= 0
//     handled somewhere in the function: "negative means explicit zero"),
//   - a Disable*/Enable* bool field consulted in the same if/else chain
//     or conjoined into the condition (if o.DisableX { ... } else if
//     o.X == 0 { ... }),
//
// or a //pollux:zerodefault-ok justification.
var ZeroDefault = &Analyzer{
	Name:      "zerodefault",
	Doc:       "flags `if o.X == 0 { o.X = d }` numeric-field rewrites in defaults()-style methods that lack a negative-sentinel or Disable* escape for explicit zero",
	Directive: "zerodefault-ok",
	Run:       runZeroDefault,
}

func runZeroDefault(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isDefaultsFunc(fd.Name.Name) {
				continue
			}
			checkDefaultsFunc(pass, fd)
		}
	}
	return nil
}

func isDefaultsFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "default") || strings.HasPrefix(l, "applydefault")
}

func checkDefaultsFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Fields with a negative-sentinel comparison anywhere in the
	// function: `o.X < 0`, `o.X <= 0`, or comparison against a negative
	// constant.
	negSentinel := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var fieldSide, otherSide ast.Expr
		switch be.Op {
		case token.LSS, token.LEQ: // o.X < 0
			fieldSide, otherSide = be.X, be.Y
		case token.GTR, token.GEQ: // 0 > o.X
			fieldSide, otherSide = be.Y, be.X
		default:
			return true
		}
		v := fieldVar(info, fieldSide)
		if v == nil {
			return true
		}
		if c := constValue(info, otherSide); c != nil && nonPositive(c) {
			negSentinel[v] = true
		}
		return true
	})

	// Walk if/else chains. For each chain, note whether any condition in
	// it consults a Disable*/Enable* field, then flag `== 0` rewrites of
	// numeric fields with no escape.
	var walk func(s ast.Stmt, chainHasToggle bool)
	checkChain := func(s *ast.IfStmt) {
		hasToggle := false
		for c := s; ; {
			if condHasToggle(info, c.Cond) {
				hasToggle = true
			}
			next, ok := c.Else.(*ast.IfStmt)
			if !ok {
				break
			}
			c = next
		}
		for c := s; ; {
			checkZeroRewrite(pass, c, hasToggle, negSentinel)
			next, ok := c.Else.(*ast.IfStmt)
			if !ok {
				if blk, ok := c.Else.(*ast.BlockStmt); ok {
					for _, inner := range blk.List {
						walk(inner, false)
					}
				}
				break
			}
			c = next
		}
	}
	walk = func(s ast.Stmt, _ bool) {
		switch s := unlabel(s).(type) {
		case *ast.IfStmt:
			checkChain(s)
			// Bodies of each branch may contain nested chains.
			for c := s; ; {
				for _, inner := range c.Body.List {
					walk(inner, false)
				}
				next, ok := c.Else.(*ast.IfStmt)
				if !ok {
					break
				}
				c = next
			}
		case *ast.BlockStmt:
			for _, inner := range s.List {
				walk(inner, false)
			}
		case *ast.ForStmt:
			walk(s.Body, false)
		case *ast.RangeStmt:
			walk(s.Body, false)
		case *ast.SwitchStmt:
			walk(s.Body, false)
		}
	}
	for _, s := range fd.Body.List {
		walk(s, false)
	}
}

// checkZeroRewrite flags `if o.X == 0 { ... o.X = d ... }` branches of a
// chain when no escape applies.
func checkZeroRewrite(pass *Pass, c *ast.IfStmt, chainHasToggle bool, negSentinel map[*types.Var]bool) {
	info := pass.TypesInfo
	be, ok := c.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	// Unwrap `o.X == 0` possibly conjoined with a toggle: handled by
	// condHasToggle via chainHasToggle, so only bare EQL matters here.
	if be.Op != token.EQL {
		return
	}
	var v *types.Var
	if cv := constValue(info, be.Y); cv != nil && isZero(cv) {
		v = fieldVar(info, be.X)
	} else if cv := constValue(info, be.X); cv != nil && isZero(cv) {
		v = fieldVar(info, be.Y)
	}
	if v == nil || !isNumeric(v.Type()) {
		return
	}
	// The branch must actually rewrite the field to count as a default.
	rewrites := false
	ast.Inspect(c.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if fieldVar(info, lhs) == v {
				rewrites = true
			}
		}
		return true
	})
	if !rewrites || chainHasToggle || negSentinel[v] {
		return
	}
	if pass.exempt(c.Pos(), "zerodefault-ok") {
		return
	}
	pass.Reportf(c.Pos(), "defaults rewrite of %s == 0 leaves no way to ask for an explicit zero: add a negative-sentinel branch (%s < 0 means zero) or a Disable%s toggle (or justify with //pollux:zerodefault-ok <reason>)", v.Name(), v.Name(), v.Name())
}

// condHasToggle reports whether e references a bool field named
// Disable*/Enable*.
func condHasToggle(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Disable") || strings.HasPrefix(name, "Enable") {
			if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
				found = true
			}
		}
		return !found
	})
	return found
}

// fieldVar resolves e as a selector of a struct field and returns the
// field, or nil.
func fieldVar(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func constValue(info *types.Info, e ast.Expr) constant.Value {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return nil
	}
	return tv.Value
}

func isZero(v constant.Value) bool {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		return f == 0
	}
	return false
}

func nonPositive(v constant.Value) bool {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		return f <= 0
	}
	return false
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
