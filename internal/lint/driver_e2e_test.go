package lint_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The end-to-end driver tests build a throwaway module and run the
// shared pollux-vet binary over it through the real `go vet` protocol:
// facts must travel dependency→dependent through the .vetx files the go
// command plumbs, not through any in-process shortcut.

// writeTree writes a file tree under a fresh temp dir and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// e2eModule is a two-package module where the critical package reaches
// time.Now only through a non-critical helper package — invisible to
// any per-package analysis, visible through facts.
func e2eModule(t *testing.T) string {
	t.Helper()
	return writeTree(t, map[string]string{
		"go.mod": "module polluxe2e\n\ngo 1.22\n",
		"helper/helper.go": `// Package helper is not determinism-critical.
package helper

import "time"

// NowUnix reaches the wall clock.
func NowUnix() int64 { return time.Now().Unix() }

// Add is clean.
func Add(a, b int64) int64 { return a + b }
`,
		"sim/sim.go": `// Package sim is determinism-critical (matched by path base).
package sim

import "polluxe2e/helper"

// Tick reaches time.Now only through the helper package.
func Tick() int64 { return helper.NowUnix() }

// Sum stays clean.
func Sum(a, b int64) int64 { return helper.Add(a, b) }
`,
	})
}

func runVet(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + vetBinary(t)}, args...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestFactsAcrossPackagesE2E is the tentpole's acceptance test: vetting
// the whole module flags the critical call site whose wall-clock reach
// lives entirely in another package.
func TestFactsAcrossPackagesE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e vet run skipped in -short mode")
	}
	dir := e2eModule(t)
	out, err := runVet(t, dir, "./...")
	if err == nil {
		t.Fatalf("expected violations, got clean run:\n%s", out)
	}
	if !strings.Contains(out, "helper.NowUnix transitively reaches time.Now in determinism-critical package sim") {
		t.Errorf("missing cross-package clocktaint diagnostic in output:\n%s", out)
	}
	if strings.Contains(out, "Sum") || strings.Contains(out, "helper.Add") {
		t.Errorf("clean helper flagged:\n%s", out)
	}
}

// TestVetxOnlyDependencyE2E vets only the critical package: the helper
// is then a VetxOnly unit, so the diagnostic exists only if VetxOnly
// units are really analyzed for facts (and their own findings stay
// suppressed).
func TestVetxOnlyDependencyE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e vet run skipped in -short mode")
	}
	dir := e2eModule(t)
	out, err := runVet(t, dir, "./sim")
	if err == nil {
		t.Fatalf("expected violations, got clean run:\n%s", out)
	}
	if !strings.Contains(out, "helper.NowUnix transitively reaches time.Now") {
		t.Errorf("missing clocktaint diagnostic when dependency is VetxOnly:\n%s", out)
	}
	if strings.Contains(out, "helper/helper.go") {
		t.Errorf("VetxOnly unit leaked its own diagnostics:\n%s", out)
	}
}

// TestJSONOutputE2E runs the convenience mode with -json: machine
// readers get one {"pkgID": {"analyzer": [{posn, message}]}} object per
// unit on stdout and a zero exit (diagnostics are data, not failure).
func TestJSONOutputE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e vet run skipped in -short mode")
	}
	dir := e2eModule(t)
	cmd := exec.Command(vetBinary(t), "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("pollux-vet -json: %v\n%s", err, out)
	}

	// go vet concatenates per-unit JSON objects; decode them all and
	// flatten to analyzer→diagnostics.
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	found := map[string][]jsonDiag{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var unit map[string]map[string][]jsonDiag
		if err := dec.Decode(&unit); err != nil {
			t.Fatalf("decoding -json output: %v\noutput:\n%s", err, out)
		}
		for _, byAnalyzer := range unit {
			for name, diags := range byAnalyzer {
				found[name] = append(found[name], diags...)
			}
		}
	}
	diags := found["clocktaint"]
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 clocktaint JSON diagnostic, got %d (%v)", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "helper.NowUnix transitively reaches time.Now") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
	if !strings.Contains(diags[0].Posn, filepath.Join("sim", "sim.go")) {
		t.Errorf("diagnostic position %q does not point at sim/sim.go", diags[0].Posn)
	}
}

// TestMissingAndCorruptVetxE2E drives the .cfg entry point directly
// with broken dependency fact files: the driver must die loudly, never
// analyze with silently missing facts.
func TestMissingAndCorruptVetxE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e vet run skipped in -short mode")
	}
	for _, tc := range []struct {
		name    string
		prep    func(t *testing.T, dir string) string // returns vetx path
		wantErr string
	}{
		{
			name:    "missing",
			prep:    func(t *testing.T, dir string) string { return filepath.Join(dir, "nonexistent.vetx") },
			wantErr: "reading fact file for dependency",
		},
		{
			name: "corrupt",
			prep: func(t *testing.T, dir string) string {
				p := filepath.Join(dir, "dep.vetx")
				if err := os.WriteFile(p, []byte("not a gob stream"), 0o666); err != nil {
					t.Fatal(err)
				}
				return p
			},
			wantErr: "fact file for dependency",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			src := filepath.Join(dir, "p.go")
			if err := os.WriteFile(src, []byte("package p\n\nfunc F() int { return 1 }\n"), 0o666); err != nil {
				t.Fatal(err)
			}
			cfg := map[string]interface{}{
				"ID":          "p",
				"Compiler":    "gc",
				"Dir":         dir,
				"ImportPath":  "p",
				"ModulePath":  "m",
				"GoVersion":   "go1.22",
				"GoFiles":     []string{src},
				"ImportMap":   map[string]string{},
				"PackageFile": map[string]string{},
				"PackageVetx": map[string]string{"dep": tc.prep(t, dir)},
				"VetxOutput":  filepath.Join(dir, "out.vetx"),
			}
			data, err := json.Marshal(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfgFile := filepath.Join(dir, "unit.cfg")
			if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
				t.Fatal(err)
			}
			out, err := exec.Command(vetBinary(t), cfgFile).CombinedOutput()
			if err == nil {
				t.Fatalf("driver succeeded with a broken dependency fact file:\n%s", out)
			}
			if !strings.Contains(string(out), tc.wantErr) {
				t.Errorf("error output %q does not mention %q", out, tc.wantErr)
			}
		})
	}
}
