package lint

// Directive scanning and staleness. A //pollux:<name> <reason> comment
// suppresses one analyzer's finding at a site; the registry tracks which
// directives actually suppressed (or contributed to) something so the
// driver can report the ones that no longer do. A suppression that has
// gone dead — the flagged code was refactored away but the annotation
// stayed — silently widens the trust base, so it is itself a finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const directivePrefix = "pollux:"

// A directive is one //pollux:<name> <reason> justification comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	// used records that some analyzer consulted this directive at a site
	// it would otherwise have flagged (or propagated taint through).
	used bool
	// missingReported dedupes the missing-reason finding when several
	// analyzers consult the same bare directive.
	missingReported bool
}

// Directives is one compilation unit's directive registry, shared by
// every analyzer pass over the unit so use is tracked across analyzers.
type Directives struct {
	fset   *token.FileSet
	byFile map[string]map[int]*directive // filename → line → directive
	all    []*directive                  // in file/position order
}

// ScanDirectives collects every //pollux: comment in files.
func ScanDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	ds := &Directives{fset: fset, byFile: map[string]map[int]*directive{}}
	for _, f := range files {
		fname := fset.File(f.Pos()).Name()
		byLine := ds.byFile[fname]
		if byLine == nil {
			byLine = map[int]*directive{}
			ds.byFile[fname] = byLine
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				dname, reason, _ := strings.Cut(text, " ")
				d := &directive{
					name:   dname,
					reason: strings.TrimSpace(reason),
					pos:    c.Pos(),
				}
				byLine[fset.Position(c.Pos()).Line] = d
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// find returns the directive named name on pos's line or the line above.
func (ds *Directives) find(pos token.Pos, name string) *directive {
	posn := ds.fset.Position(pos)
	byLine := ds.byFile[posn.Filename]
	for _, line := range []int{posn.Line, posn.Line - 1} {
		if d := byLine[line]; d != nil && d.name == name {
			return d
		}
	}
	return nil
}

// StaleDirectives reports directives that did nothing: a name no
// registered analyzer owns (typo, or an analyzer that was removed), or a
// directive for an analyzer that ran and suppressed no finding through
// it. Call after every analyzer in ran has completed; registry is the
// full analyzer registry (names outside ran are skipped, not stale — the
// analyzer that would consume them was deselected this run).
func StaleDirectives(ds *Directives, ran, registry []*Analyzer) []Diagnostic {
	known := map[string]string{} // directive → analyzer name
	for _, a := range registry {
		if a.Directive != "" {
			known[a.Directive] = a.Name
		}
	}
	active := map[string]bool{}
	for _, a := range ran {
		if a.Directive != "" {
			active[a.Directive] = true
		}
	}
	var diags []Diagnostic
	for _, d := range ds.all {
		switch {
		case known[d.name] == "":
			names := make([]string, 0, len(known))
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			diags = append(diags, Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("unknown directive //%s%s: known directives are %s", directivePrefix, d.name, strings.Join(names, ", ")),
			})
		case active[d.name] && !d.used:
			diags = append(diags, Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("stale //%s%s: it suppresses no %s finding — remove it (or re-justify the code it was written for)", directivePrefix, d.name, known[d.name]),
			})
		}
	}
	return diags
}

// dirs returns the pass's directive registry, scanning lazily when the
// driver supplied none.
func (p *Pass) dirs() *Directives {
	if p.Dirs == nil {
		p.Dirs = ScanDirectives(p.Fset, p.Files)
	}
	return p.Dirs
}

// exempt reports whether the finding at pos is suppressed by a
// //pollux:<name> directive on the same line or the line above. A
// directive that matches but carries no reason still suppresses —
// instead the missing reason is reported, so the tree cannot go clean on
// bare annotations.
func (p *Pass) exempt(pos token.Pos, name string) bool {
	d := p.dirs().find(pos, name)
	if d == nil {
		return false
	}
	d.used = true
	if d.reason == "" && !d.missingReported {
		d.missingReported = true
		p.Reportf(pos, "//%s%s needs a reason: say why this site is safe", directivePrefix, name)
	}
	return true
}

// exemptQuiet is exempt without the missing-reason finding: analyzers
// use it to honor a sibling analyzer's directive (a justified wall-clock
// read should not cascade into clocktaint findings) without claiming the
// sibling's reporting duty.
func (p *Pass) exemptQuiet(pos token.Pos, name string) bool {
	d := p.dirs().find(pos, name)
	if d == nil {
		return false
	}
	d.used = true
	return true
}
