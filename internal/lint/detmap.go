package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetMap flags `range` over a map in determinism-critical packages.
//
// Go randomizes map iteration order, so anything order-dependent inside
// such a loop — an rng draw, a float accumulation, an append consumed
// unsorted — perturbs fixed-seed traces (the PR 1 flaky-Table3 root
// cause was exactly an unsorted profile drain feeding agent refits).
// A loop survives unflagged only when its body is conservatively
// order-insensitive:
//
//   - keyed writes into another map (or slice) where the index mentions
//     the loop variables, with side-effect-free right-hand sides;
//   - commutative integer accumulation (n++, n += pure);
//   - delete(m, k);
//   - local declarations with side-effect-free initializers;
//   - if statements whose condition is side-effect-free and whose
//     branches are themselves order-insensitive;
//   - appends of loop-derived values into a slice that is sorted by the
//     statement(s) immediately following the loop (the sortedKeys idiom);
//
// or when the site carries //pollux:order-ok <reason>.
var DetMap = &Analyzer{
	Name:      "detmap",
	Doc:       "flags range over a map in determinism-critical packages unless the body is conservatively order-insensitive or justified //pollux:order-ok",
	Directive: "order-ok",
	Run:       runDetMap,
}

func runDetMap(pass *Pass) error {
	if !critical(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, s := range list {
				rs, ok := unlabel(s).(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rs) {
					continue
				}
				d := &detmapLoop{pass: pass, rs: rs}
				// Clean loops pass before the directive is consulted, so an
				// //pollux:order-ok over a loop that no longer needs it reads
				// as unused and the stale-directive check reports it.
				if d.orderInsensitive(rs.Body.List) && d.appendsSorted(list[i+1:]) {
					continue
				}
				if pass.exempt(rs.Pos(), "order-ok") {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map in determinism-critical package %s: iteration order is random; sort a key slice first, restructure the body to be order-insensitive, or justify with //pollux:order-ok <reason>", pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// stmtList returns n's statement list if n is a statement-list owner.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// detmapLoop carries the per-loop state of the order-insensitivity scan.
type detmapLoop struct {
	pass *Pass
	rs   *ast.RangeStmt
	// appendTargets are slice variables the body appends loop-derived
	// values into; the loop is order-insensitive only if each is sorted
	// immediately after the loop.
	appendTargets []*types.Var
}

// orderInsensitive reports whether every statement in list is
// conservatively order-insensitive (see DetMap doc).
func (d *detmapLoop) orderInsensitive(list []ast.Stmt) bool {
	for _, s := range list {
		if !d.stmtOK(unlabel(s)) {
			return false
		}
	}
	return true
}

func (d *detmapLoop) stmtOK(s ast.Stmt) bool {
	info := d.pass.TypesInfo
	switch s := s.(type) {
	case *ast.AssignStmt:
		return d.assignOK(s)
	case *ast.IncDecStmt:
		return d.keyedOrCountTarget(s.X, token.ADD_ASSIGN)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !d.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.ExprStmt:
		// delete(otherMap, k) removes keyed entries: commutative.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !d.stmtOK(s.Init) {
			return false
		}
		if !d.pureExpr(s.Cond) {
			return false
		}
		if !d.orderInsensitive(s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return d.orderInsensitive(e.List)
		case *ast.IfStmt:
			return d.stmtOK(e)
		}
		return false
	case *ast.BlockStmt:
		return d.orderInsensitive(s.List)
	case *ast.RangeStmt:
		// A nested loop over a side-effect-free collection is as
		// order-insensitive as its body (the inner loop gets its own
		// independent detmap check if it ranges a map).
		return d.pureExpr(s.X) && d.orderInsensitive(s.Body.List)
	case *ast.BranchStmt:
		// continue skips an iteration, fine; break/goto make which
		// element terminates the loop order-dependent.
		return s.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	}
	return false
}

func (d *detmapLoop) assignOK(s *ast.AssignStmt) bool {
	// s = append(s, pure...) is handled first: allowed, but only if s is
	// sorted right after the loop (checked by appendsSorted).
	if v, ok := d.appendSelf(s); ok {
		d.appendTargets = append(d.appendTargets, v)
		return true
	}
	for _, rhs := range s.Rhs {
		if !d.pureExpr(rhs) {
			return false
		}
	}
	for _, lhs := range s.Lhs {
		if !d.lhsOK(lhs, s.Tok) {
			return false
		}
	}
	return true
}

// appendSelf matches `x = append(x, args...)` with pure args and x an
// identifier, returning x's object.
func (d *detmapLoop) appendSelf(s *ast.AssignStmt) (*types.Var, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return nil, false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(d.pass.TypesInfo, call.Fun, "append") {
		return nil, false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil, false
	}
	for _, a := range call.Args[1:] {
		if !d.pureExpr(a) {
			return nil, false
		}
	}
	v, _ := d.pass.TypesInfo.ObjectOf(lhs).(*types.Var)
	if v == nil {
		return nil, false
	}
	return v, true
}

func (d *detmapLoop) lhsOK(lhs ast.Expr, tok token.Token) bool {
	info := d.pass.TypesInfo
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		if tok == token.DEFINE {
			return true // fresh local per iteration
		}
		// Accumulating into a shared variable is commutative only for
		// integer +=/-=/bitwise ops; float accumulation and last-writer
		// `=` depend on iteration order.
		return accumTok(tok) && isInteger(info.TypeOf(lhs))
	case *ast.IndexExpr:
		return d.keyedOrCountTarget(lhs, tok)
	case *ast.SelectorExpr:
		// Field write through a chain rooted at a loop variable
		// (ts.Submitted = n where ts is the loop value): each iteration
		// owns its target.
		root := rootIdent(lhs)
		if root == nil || !d.isLoopVar(root) {
			return false
		}
		return tok == token.ASSIGN || accumTok(tok) && isInteger(info.TypeOf(lhs))
	}
	return false
}

// rootIdent returns the identifier at the base of a selector/index
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// keyedOrCountTarget accepts writes through an index expression (into a
// map or slice) whose index mentions the loop variables — each iteration
// then touches its own element, so order cannot matter — and integer
// counter updates. tok distinguishes plain keyed writes from arithmetic
// accumulation: `m[f(k)] += x` with a float element is order-sensitive
// unless the index is loop-keyed (each key visited once).
func (d *detmapLoop) keyedOrCountTarget(x ast.Expr, tok token.Token) bool {
	info := d.pass.TypesInfo
	ix, ok := x.(*ast.IndexExpr)
	if !ok {
		// IncDecStmt on a plain ident: integer counter.
		id, ok := x.(*ast.Ident)
		return ok && isInteger(info.TypeOf(id))
	}
	if !d.pureExpr(ix.X) || !d.pureExpr(ix.Index) {
		return false
	}
	switch t := info.TypeOf(ix.X).Underlying().(type) {
	case *types.Map, *types.Slice:
		_ = t
	case *types.Pointer: // *[N]T
		if _, ok := t.Elem().Underlying().(*types.Array); !ok {
			return false
		}
	case *types.Array:
	default:
		return false
	}
	if tok == token.ASSIGN {
		// Plain keyed write: require the key to mention a loop variable,
		// otherwise every iteration races last-writer-wins on one slot.
		return d.mentionsLoopVar(ix.Index)
	}
	if !accumTok(tok) {
		return false
	}
	// Arithmetic accumulation: integers commute; floats only when each
	// element is touched once (index mentions the loop key).
	return isInteger(info.TypeOf(x)) || d.mentionsLoopVar(ix.Index)
}

func accumTok(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// loopObjs returns the loop's key and value variable objects.
func (d *detmapLoop) loopObjs() map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, v := range []ast.Expr{d.rs.Key, d.rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := d.pass.TypesInfo.ObjectOf(id); obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

// isLoopVar reports whether id is the loop's key or value variable.
func (d *detmapLoop) isLoopVar(id *ast.Ident) bool {
	return d.loopObjs()[d.pass.TypesInfo.ObjectOf(id)]
}

// mentionsLoopVar reports whether e references the loop's key or value
// variable (directly, or through a selector/index off one).
func (d *detmapLoop) mentionsLoopVar(e ast.Expr) bool {
	objs := d.loopObjs()
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[d.pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// pureExpr reports whether e is side-effect free: no calls except
// builtins (len, cap, min, max, abs variants, append with pure args) and
// type conversions. An rng draw, a method with internal state, or a
// channel receive inside a map loop is exactly the order-dependence this
// analyzer exists to catch.
func (d *detmapLoop) pureExpr(e ast.Expr) bool {
	info := d.pass.TypesInfo
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion: args checked by the walk
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					switch id.Name {
					case "len", "cap", "min", "max", "append", "make", "real", "imag", "complex":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				pure = false
				return false
			}
		case *ast.FuncLit:
			// Defining a closure draws nothing; calling it would be a
			// CallExpr and is rejected above. Don't descend.
			return false
		}
		return true
	})
	return pure
}

// appendsSorted reports whether every slice the loop body appended into
// is the argument of a sort.* / slices.* call in the statements
// immediately following the loop.
func (d *detmapLoop) appendsSorted(following []ast.Stmt) bool {
	if len(d.appendTargets) == 0 {
		return true
	}
	sorted := map[*types.Var]bool{}
	for _, s := range following {
		call := sortCall(d.pass.TypesInfo, unlabel(s))
		if call == nil {
			break
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := d.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
						sorted[v] = true
					}
				}
				return true
			})
		}
	}
	for _, v := range d.appendTargets {
		if !sorted[v] {
			return false
		}
	}
	return true
}

// sortCall matches `sort.Xxx(...)` / `slices.SortXxx(...)` expression
// statements (assignment form included, for slices.Sorted etc.).
func sortCall(info *types.Info, s ast.Stmt) *ast.CallExpr {
	var e ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil
		}
		e = s.Rhs[0]
	default:
		return nil
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	pkg, name, ok := funcPkg(info, call.Fun)
	if !ok {
		return nil
	}
	if pkg == "sort" || pkg == "slices" && strings.HasPrefix(name, "Sort") {
		return call
	}
	return nil
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
