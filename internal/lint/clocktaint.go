package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ClockTaint is the interprocedural closure of WallClock: a function
// fact "transitively reaches the wall clock or global math/rand",
// propagated bottom-up through the import DAG via .vetx facts.
//
// WallClock only sees a *direct* time.Now at the call site, so a
// one-line helper in a non-critical package —
//
//	package metrics
//	func Stamp() int64 { return time.Now().Unix() }
//
// — called from internal/sim escapes it entirely. ClockTaint marks
// Stamp tainted when metrics is analyzed, serializes the fact, and flags
// the sim call site when sim (analyzed later: the unitchecker protocol
// visits dependencies first) resolves Stamp through export data. Taint
// composes through any number of helper hops and through methods on
// named types; it does not flow through interface calls (the concrete
// callee is unknowable modularly) or function values — eventsim.Clock
// is exactly such an interface, which is also why the sanctioned Wall
// clock never leaks taint into its callers.
//
// Roots are the WallClock lists: the wall-reading time functions and
// package-level math/rand draws (seeded-rng constructors and methods on
// an owned *rand.Rand stay clean). eventsim's clock.go keeps the same
// allowlist carve-out as WallClock — the Wall clock implementation is
// wall-clock by design and must not taint Drive loops. A site justified
// with //pollux:clocktaint-ok (or an existing //pollux:wallclock-ok)
// neither propagates taint nor reports.
var ClockTaint = &Analyzer{
	Name:      "clocktaint",
	Doc:       "flags calls from determinism-critical packages to functions that transitively reach time.Now/Sleep/... or global math/rand in any package (cross-package facts; subsumes wallclock's local check)",
	Directive: "clocktaint-ok",
	Run:       runClockTaint,
}

// ClockTaintFact marks a function that transitively reaches a wall-clock
// or global-rand root. Path is the call chain from the function's first
// tainted callee down to the root, e.g. ["clockutil.NowUnix", "time.Now"].
type ClockTaintFact struct {
	Path []string
}

// AFact marks ClockTaintFact as a fact type.
func (*ClockTaintFact) AFact() {}

// clockRoot returns the display name of a wall-clock/global-rand root
// function, or "" if fn is not a root.
func clockRoot(fn *types.Func) string {
	// Exported package-level functions only: unexported stdlib internals
	// (rand.newSource and friends) are reachable only from inside their
	// own package and must not read as roots if stdlib source is ever
	// analyzed.
	if fn.Pkg() == nil || !fn.Exported() || fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch pkg := fn.Pkg().Path(); {
	case pkg == "time" && wallClockFuncs[fn.Name()]:
		return "time." + fn.Name()
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(fn.Name(), "New"):
		return "rand." + fn.Name()
	}
	return ""
}

// clockAllowed reports whether f is the eventsim clock.go allowlist file
// (shared carve-out with WallClock).
func clockAllowed(pass *Pass, f *ast.File) bool {
	fname := pass.Fset.File(f.Pos()).Name()
	return filepath.Base(fname) == "clock.go" && strings.HasSuffix(pass.Pkg.Path(), "eventsim")
}

// funcDisplay renders fn for diagnostics: pkg.Func or pkg.(Recv).Method.
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			return fmt.Sprintf("%s(%s).%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

func runClockTaint(pass *Pass) error {
	// Function declarations in source order (files then position), the
	// deterministic spine of the fixpoint: the first tainted use found in
	// that order names the fact's chain.
	type fnDecl struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var fns []fnDecl
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) || clockAllowed(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{fd, obj})
			}
		}
	}

	tainted := map[*types.Func]*ClockTaintFact{}
	// taintOf resolves local fixpoint state first, then exported/imported
	// facts — one lookup path for callees in any package.
	taintOf := func(fn *types.Func) *ClockTaintFact {
		if f, ok := tainted[fn]; ok {
			return f
		}
		var fact ClockTaintFact
		if pass.FuncFact(fn, &fact) {
			return &fact
		}
		return nil
	}
	// firstTaint scans body in position order for the first use of a root
	// or an already-tainted function that is not justified away.
	firstTaint := func(body *ast.BlockStmt) *ClockTaintFact {
		var found *ClockTaintFact
		ast.Inspect(body, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if root := clockRoot(fn); root != "" {
				if pass.exempt(id.Pos(), "clocktaint-ok") || pass.exemptQuiet(id.Pos(), "wallclock-ok") {
					return true
				}
				found = &ClockTaintFact{Path: []string{root}}
				return false
			}
			if t := taintOf(fn); t != nil {
				if pass.exempt(id.Pos(), "clocktaint-ok") || pass.exemptQuiet(id.Pos(), "wallclock-ok") {
					return true
				}
				found = &ClockTaintFact{Path: append([]string{funcDisplay(fn)}, t.Path...)}
				return false
			}
			return true
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			if tainted[fd.obj] != nil {
				continue
			}
			if fact := firstTaint(fd.decl.Body); fact != nil {
				tainted[fd.obj] = fact
				pass.ExportFuncFact(fd.obj, fact)
				changed = true
			}
		}
	}

	// Diagnostics only in determinism-critical packages, and only for
	// uses of tainted *functions* — direct root uses are WallClock's.
	if !critical(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) || clockAllowed(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || clockRoot(fn) != "" {
				return true
			}
			t := taintOf(fn)
			if t == nil {
				return true
			}
			if pass.exempt(id.Pos(), "clocktaint-ok") || pass.exemptQuiet(id.Pos(), "wallclock-ok") {
				return true
			}
			chain := strings.Join(append([]string{funcDisplay(fn)}, t.Path...), " → ")
			pass.Reportf(id.Pos(), "%s transitively reaches %s in determinism-critical package %s (%s): route time through eventsim.Clock and randomness through a seeded *rand.Rand (or justify with //pollux:clocktaint-ok <reason>)", funcDisplay(fn), t.Path[len(t.Path)-1], pass.Pkg.Name(), chain)
			return true
		})
	}
	return nil
}
