package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RngEscape extends RngShare across helper-function boundaries with
// parameter-level facts.
//
// RngShare sees a *rand.Rand crossing a goroutine boundary only at a
// literal `go` statement (or a known spawn helper). A helper that does
// the spawning on the caller's behalf —
//
//	package rngutil
//	func Spawn(rng *rand.Rand, out []float64) { go func() { out[0] = rng.Float64() }() }
//
// — hides the boundary from every caller. RngEscape records a fact on
// each *rand.Rand parameter: whether the callee (transitively) hands it
// to another goroutine, and whether it merely retains it beyond the call
// (stored in a field, a global, a channel, a composite literal, or
// returned). Call sites passing an rng into a goroutine-escaping
// parameter are flagged in every package — the PR 2 rule is "the rng
// stays on the caller's goroutine", and a helper hop does not change
// whose goroutine draws.
//
// Retention alone (Stored without Goroutine) is a fact, not a finding:
// constructors that seed a struct with its owned rng are the repo's
// sanctioned pattern. The fact still composes — a helper that forwards
// its parameter into a storing callee is itself marked as storing.
// Justify an intentional hand-off with //pollux:rngescape-ok (an
// existing //pollux:rngshare-ok at the escape site is honored too).
var RngEscape = &Analyzer{
	Name:      "rngescape",
	Doc:       "flags a *rand.Rand passed to a function whose parameter transitively reaches another goroutine (cross-package facts; extends rngshare across helper boundaries); retention-only escapes are recorded as facts",
	Directive: "rngescape-ok",
	Run:       runRngEscape,
}

// RngEscapeFact describes what a function does with one *rand.Rand
// parameter beyond drawing from it on the caller's goroutine.
type RngEscapeFact struct {
	// Goroutine: the parameter is (transitively) referenced from a
	// goroutine the callee spawns.
	Goroutine bool
	// Stored: the parameter is retained beyond the call.
	Stored bool
	// Path is the escape chain, innermost description last, e.g.
	// ["rngutil.Forward", "rngutil.Spawn", "a go-statement closure"].
	Path []string
}

// AFact marks RngEscapeFact as a fact type.
func (*RngEscapeFact) AFact() {}

// rngParam is one *rand.Rand parameter under analysis.
type rngParam struct {
	fn    *types.Func
	index int
	obj   *types.Var
	body  *ast.BlockStmt
}

func runRngEscape(pass *Pass) error {
	info := pass.TypesInfo

	var params []*rngParam
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				if isRandRand(sig.Params().At(i).Type()) {
					params = append(params, &rngParam{fn: obj, index: i, obj: sig.Params().At(i), body: fd.Body})
				}
			}
		}
	}

	local := map[*types.Var]*RngEscapeFact{}
	// calleeFact resolves the fact on callee's i'th parameter: local
	// fixpoint state first, then exported/imported facts.
	calleeFact := func(callee *types.Func, i int) *RngEscapeFact {
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			return nil
		}
		if i >= sig.Params().Len() { // variadic tail
			i = sig.Params().Len() - 1
		}
		if f, ok := local[sig.Params().At(i)]; ok {
			return f
		}
		var fact RngEscapeFact
		if pass.ParamFact(callee, i, &fact) {
			return &fact
		}
		return nil
	}

	for changed := true; changed; {
		changed = false
		for _, p := range params {
			before := local[p.obj]
			upd := RngEscapeFact{}
			if before != nil {
				upd = *before
			}
			scanRngParam(pass, p, &upd, calleeFact)
			if before == nil && (upd.Goroutine || upd.Stored) ||
				before != nil && (upd.Goroutine != before.Goroutine || upd.Stored != before.Stored) {
				f := upd
				local[p.obj] = &f
				pass.ExportParamFact(p.fn, p.index, &f)
				changed = true
			}
		}
	}

	// Diagnostics: a *rand.Rand argument at a plain call site whose
	// parameter goroutine-escapes. Literal go statements and known spawn
	// helpers stay RngShare's findings.
	skip := map[*ast.CallExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				skip[n.Call] = true
			case *ast.CallExpr:
				if _, ok := spawnHelper(info, n); ok {
					skip[n] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || skip[call] {
				return true
			}
			callee := calledFunc(info, call)
			if callee == nil {
				return true
			}
			for i, arg := range call.Args {
				if !isRandRand(info.TypeOf(arg)) {
					continue
				}
				fact := calleeFact(callee, i)
				if fact == nil || !fact.Goroutine {
					continue
				}
				if pass.exempt(arg.Pos(), "rngescape-ok") || pass.exemptQuiet(arg.Pos(), "rngshare-ok") {
					continue
				}
				chain := strings.Join(append([]string{funcDisplay(callee)}, fact.Path...), " → ")
				pass.Reportf(arg.Pos(), "*rand.Rand passed to %s, which hands it to another goroutine (%s): draw order becomes schedule-dependent — draw on the caller's goroutine or pass a seed (or justify with //pollux:rngescape-ok <reason>)", funcDisplay(callee), chain)
			}
			return true
		})
	}
	return nil
}

// calledFunc resolves the static callee of a call, method or function.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// scanRngParam folds p's escapes in its function body into fact.
func scanRngParam(pass *Pass, p *rngParam, fact *RngEscapeFact, calleeFact func(*types.Func, int) *RngEscapeFact) {
	info := pass.TypesInfo
	isP := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == p.obj
	}
	// justified reports whether the escape at pos was waved through.
	justified := func(pos ast.Node) bool {
		return pass.exempt(pos.Pos(), "rngescape-ok") || pass.exemptQuiet(pos.Pos(), "rngshare-ok")
	}
	mark := func(goroutine bool, leaf string, node ast.Node) {
		if justified(node) {
			return
		}
		if goroutine && !fact.Goroutine {
			fact.Goroutine = true
			fact.Path = []string{leaf}
		}
		if !goroutine && !fact.Stored {
			fact.Stored = true
			if fact.Path == nil {
				fact.Path = []string{leaf}
			}
		}
	}
	captures := func(fl *ast.FuncLit) bool {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == p.obj {
				found = true
			}
			return !found
		})
		return found
	}
	spawnArgs := func(call *ast.CallExpr, spawner string) {
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				if captures(fl) {
					mark(true, "a closure spawned via "+spawner, arg)
				}
				continue
			}
			if isP(arg) {
				mark(true, spawner, arg)
			}
		}
		if fl, ok := call.Fun.(*ast.FuncLit); ok && captures(fl) {
			mark(true, "a closure spawned via "+spawner, call.Fun)
		}
	}

	ast.Inspect(p.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawnArgs(n.Call, "a go statement")
		case *ast.CallExpr:
			if spawner, ok := spawnHelper(info, n); ok {
				spawnArgs(n, spawner)
				return true
			}
			if isBuiltin(info, n.Fun, "append") {
				for _, a := range n.Args[1:] {
					if isP(a) {
						mark(false, "appended to a slice", a)
					}
				}
				return true
			}
			callee := calledFunc(info, n)
			for i, arg := range n.Args {
				if !isP(arg) {
					continue
				}
				if callee == nil {
					continue
				}
				if cf := calleeFact(callee, i); cf != nil && (cf.Goroutine || cf.Stored) {
					if justified(arg) {
						continue
					}
					if cf.Goroutine && !fact.Goroutine {
						fact.Goroutine = true
						fact.Path = append([]string{funcDisplay(callee)}, cf.Path...)
					}
					if cf.Stored && !fact.Stored {
						fact.Stored = true
						if fact.Path == nil {
							fact.Path = append([]string{funcDisplay(callee)}, cf.Path...)
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isP(rhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					// A package-level variable outlives the call; a fresh
					// local alias does not (conservatively untracked).
					if v, ok := info.ObjectOf(lhs).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						mark(false, "assigned to a package variable", rhs)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					mark(false, "stored through "+lhsKind(lhs), rhs)
				}
			}
		case *ast.SendStmt:
			if isP(n.Value) {
				mark(false, "sent on a channel", n.Value)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if isP(elt) {
					mark(false, "stored in a composite literal", elt)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isP(r) {
					mark(false, "returned to the caller", r)
				}
			}
		}
		return true
	})
}

// lhsKind names an assignment target shape for escape chains.
func lhsKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field"
	case *ast.IndexExpr:
		return "an element"
	case *ast.StarExpr:
		return "a pointer"
	}
	return "a store"
}
