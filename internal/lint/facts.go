package lint

// Cross-package facts, in the model of golang.org/x/tools/go/analysis
// facts: an analyzer running on package P may attach serializable facts
// to P's functions, parameters, and struct fields; when a downstream
// package Q (analyzed later — the unitchecker protocol vets the import
// DAG bottom-up) resolves one of those objects through P's export data,
// it can look the facts up again. The driver persists each package's
// exported facts in the `.vetx` file the go command already plumbs
// between compilation units (internal/lint/driver), so modular analysis
// composes across packages exactly like compilation does.
//
// Objects are keyed by strings derived from their export-data identity
// (package path + a kind-tagged object key, see FuncKey/ParamKey/
// FieldKey) rather than by types.Object pointers: the importing package
// materializes fresh objects from export data, so pointer identity
// cannot survive the package boundary but names do.
//
// Encoding is gob, and deliberately deterministic: entries are sorted by
// object key and, within a key, by concrete fact type, so a package's
// `.vetx` bytes are a pure function of its facts. That keeps the go
// command's action cache stable and makes `.vetx` files diffable when
// debugging an analyzer.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a serializable observation about one object, exported by the
// analyzer that computed it and importable wherever the object is
// resolved through export data. Implementations must be pointers to
// gob-encodable structs registered in AllFactTypes.
type Fact interface {
	// AFact is a marker method: it keeps arbitrary types from satisfying
	// the interface by accident.
	AFact()
}

// AllFactTypes returns one zero value of every registered fact type.
// DecodeFacts can only materialize types listed here (they are gob-
// registered in init), and the facts test suite round-trips each one.
func AllFactTypes() []Fact {
	return []Fact{
		&ClockTaintFact{},
		&RngEscapeFact{},
		&GuardedFieldFact{},
	}
}

func init() {
	for _, f := range AllFactTypes() {
		gob.Register(f)
	}
}

// FuncKey returns the fact key for a package-level function or a method
// on a named type. ok is false for objects facts cannot name across
// packages (interface methods resolve per concrete implementation;
// closures have no object at all).
func FuncKey(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	recv := sig.Recv()
	if recv == nil {
		return "func " + fn.Name(), true
	}
	named := namedOf(recv.Type())
	if named == nil {
		return "", false
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return "", false
	}
	return "method (" + named.Obj().Name() + ")." + fn.Name(), true
}

// ParamKey returns the fact key for the i'th parameter of fn.
func ParamKey(fn *types.Func, i int) (string, bool) {
	k, ok := FuncKey(fn)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("param %s#%d", k, i), true
}

// FieldKey returns the fact key for field fieldName of the named struct
// type typeName.
func FieldKey(typeName, fieldName string) string {
	return "field " + typeName + "." + fieldName
}

// namedOf strips pointers and returns the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// Facts is one compilation unit's view of the fact space: the decoded
// fact tables of every dependency, plus the facts the current unit's
// analyzers have exported so far (intra-package lookups go through the
// same store, so an analyzer handles local and imported callees
// uniformly).
type Facts struct {
	self     string // current package path
	imported map[string]map[string][]Fact
	exported map[string][]Fact
}

// NewFacts creates an empty store for the package at selfPath.
func NewFacts(selfPath string) *Facts {
	return &Facts{
		self:     selfPath,
		imported: map[string]map[string][]Fact{},
		exported: map[string][]Fact{},
	}
}

// AddImported installs a dependency package's decoded fact table.
func (fs *Facts) AddImported(pkgPath string, facts map[string][]Fact) {
	fs.imported[pkgPath] = facts
}

// Export records fact under key for the current package, replacing any
// previously exported fact of the same concrete type (one fact per
// concrete type per object — the fixpoint loops in the interprocedural
// analyzers refine in place).
func (fs *Facts) Export(key string, fact Fact) {
	t := reflect.TypeOf(fact)
	for i, f := range fs.exported[key] {
		if reflect.TypeOf(f) == t {
			fs.exported[key][i] = fact
			return
		}
	}
	fs.exported[key] = append(fs.exported[key], fact)
}

// Lookup finds a fact of out's concrete type attached to key in pkgPath
// (the current package's exported facts when pkgPath is the self path)
// and copies it into out.
func (fs *Facts) Lookup(pkgPath, key string, out Fact) bool {
	var table map[string][]Fact
	if pkgPath == fs.self {
		table = fs.exported
	} else {
		table = fs.imported[pkgPath]
	}
	t := reflect.TypeOf(out)
	for _, f := range table[key] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(out).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// Exported returns the current package's fact table for serialization.
func (fs *Facts) Exported() map[string][]Fact {
	return fs.exported
}

// vetxVersion guards the .vetx wire format: a mismatch means the file
// was written by an incompatible pollux-vet and must not be trusted.
const vetxVersion = 1

type vetxEntry struct {
	Key   string
	Facts []Fact
}

type vetxPayload struct {
	Version int
	Entries []vetxEntry
}

// EncodeFacts serializes a fact table deterministically: entries sorted
// by object key, facts within a key sorted by concrete type name. A
// package with no facts encodes to zero bytes — the same empty file the
// pre-facts driver wrote, so old and new `.vetx` files interoperate.
func EncodeFacts(facts map[string][]Fact) ([]byte, error) {
	if len(facts) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	payload := vetxPayload{Version: vetxVersion}
	for _, k := range keys {
		fs := append([]Fact(nil), facts[k]...)
		sort.Slice(fs, func(i, j int) bool {
			return fmt.Sprintf("%T", fs[i]) < fmt.Sprintf("%T", fs[j])
		})
		payload.Entries = append(payload.Entries, vetxEntry{Key: k, Facts: fs})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses a .vetx fact table. Zero-length input is a valid
// empty table (stdlib units and fact-free packages); anything else must
// decode exactly, so a truncated or corrupt dependency file surfaces as
// an error instead of silently dropping facts.
func DecodeFacts(data []byte) (map[string][]Fact, error) {
	if len(data) == 0 {
		return map[string][]Fact{}, nil
	}
	var payload vetxPayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decoding facts: %v", err)
	}
	if payload.Version != vetxVersion {
		return nil, fmt.Errorf("facts version %d, want %d (rebuilt pollux-vet against a stale build cache?)", payload.Version, vetxVersion)
	}
	m := make(map[string][]Fact, len(payload.Entries))
	for _, e := range payload.Entries {
		m[e.Key] = e.Facts
	}
	return m, nil
}

// facts returns the pass's fact store, creating a local-only store on
// first use when the driver supplied none (fixture runs without
// dependencies).
func (p *Pass) facts() *Facts {
	if p.Facts == nil {
		p.Facts = NewFacts(p.Pkg.Path())
	}
	return p.Facts
}

// ExportFuncFact attaches fact to fn, which must belong to the current
// package.
func (p *Pass) ExportFuncFact(fn *types.Func, fact Fact) {
	if k, ok := FuncKey(fn); ok {
		p.facts().Export(k, fact)
	}
}

// FuncFact copies the fact of out's type attached to fn (local or
// imported) into out.
func (p *Pass) FuncFact(fn *types.Func, out Fact) bool {
	k, ok := FuncKey(fn)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return p.facts().Lookup(fn.Pkg().Path(), k, out)
}

// ExportParamFact attaches fact to fn's i'th parameter.
func (p *Pass) ExportParamFact(fn *types.Func, i int, fact Fact) {
	if k, ok := ParamKey(fn, i); ok {
		p.facts().Export(k, fact)
	}
}

// ParamFact copies the fact of out's type attached to fn's i'th
// parameter into out.
func (p *Pass) ParamFact(fn *types.Func, i int, out Fact) bool {
	k, ok := ParamKey(fn, i)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return p.facts().Lookup(fn.Pkg().Path(), k, out)
}

// ExportFieldFact attaches fact to field fieldName of the current
// package's named struct type typeName.
func (p *Pass) ExportFieldFact(typeName, fieldName string, fact Fact) {
	p.facts().Export(FieldKey(typeName, fieldName), fact)
}

// FieldFact copies the fact of out's type attached to field fieldName of
// pkg's named struct type typeName into out.
func (p *Pass) FieldFact(pkg *types.Package, typeName, fieldName string, out Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts().Lookup(pkg.Path(), FieldKey(typeName, fieldName), out)
}
