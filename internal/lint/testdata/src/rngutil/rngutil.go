// Package rngutil is the helper side of the rngescape fixture: each
// function's treatment of its *rand.Rand parameter becomes a parameter
// fact that call sites in the rngescape fixture package are checked
// against.
package rngutil

import "math/rand"

var stash *rand.Rand

// Spawn hands the rng to a goroutine it starts: the Goroutine fact.
func Spawn(rng *rand.Rand, out []float64) {
	go func() {
		out[0] = rng.Float64()
	}()
}

// Forward only forwards to Spawn — the fact must compose transitively.
func Forward(rng *rand.Rand, out []float64) {
	Forward2(rng, out)
}

// Forward2 is the middle hop between Forward and Spawn.
func Forward2(rng *rand.Rand, out []float64) {
	Spawn(rng, out)
}

// Keep retains the rng past the call (Stored fact) but starts no
// goroutine: recorded, not reported.
func Keep(rng *rand.Rand) {
	stash = rng
}

// Draw uses the rng on the caller's goroutine: no fact, clean.
func Draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Holder owns an rng seeded by its constructor — the repo's sanctioned
// pattern: a Stored fact on the parameter, nothing more.
type Holder struct{ rng *rand.Rand }

// NewHolder stores the rng in the returned struct.
func NewHolder(rng *rand.Rand) *Holder {
	return &Holder{rng: rng}
}
