// Package detmaputil is a detmap fixture: it is NOT determinism-
// critical, so even blatantly order-sensitive map loops pass.
package detmaputil

func Drain(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // not flagged: package is not determinism-critical
		total += v
	}
	return total
}
