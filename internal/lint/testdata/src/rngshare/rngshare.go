// Package rngshare is an rngshare fixture: a *rand.Rand must not cross
// a goroutine boundary, in any package.
package rngshare

import (
	"math/rand"

	"par"
)

type group struct{}

func (group) Go(fn func()) { go fn() }

func flagged(rng *rand.Rand, out []float64) {
	go func() {
		out[0] = rng.Float64() // want `\*rand.Rand "rng" captured by a closure spawned via go statement`
	}()
	go consume(rng) // want `\*rand.Rand passed into go statement`
	par.For(len(out), 2, func(i int) {
		out[i] = rng.Float64() // want `\*rand.Rand "rng" captured by a closure spawned via par.For`
	})
	var g group
	g.Go(func() {
		_ = rng.Intn(3) // want `\*rand.Rand "rng" captured by a closure spawned via`
	})
}

func consume(rng *rand.Rand) { _ = rng.Float64() }

func allowed(seed int64, out []float64) {
	// Draw on the caller's goroutine; workers get data, not the rng.
	rng := rand.New(rand.NewSource(seed))
	noise := make([]float64, len(out))
	for i := range noise {
		noise[i] = rng.Float64()
	}
	par.For(len(out), 2, func(i int) {
		out[i] = noise[i] * 2
	})
	// Or derive a goroutine-local rng from a seed inside the closure.
	par.For(len(out), 2, func(i int) {
		local := rand.New(rand.NewSource(seed + int64(i)*7919))
		out[i] = local.Float64()
	})
}

func justified(rng *rand.Rand) {
	done := make(chan struct{})
	go func() {
		_ = rng.Float64() //pollux:rngshare-ok the goroutine is joined before the caller draws again
		close(done)
	}()
	<-done
}
