// Package aliasret checks guarded-field facts across the package
// boundary: aliasstate exported the facts, and accessors written here —
// where the struct's mutex is just another field of an imported type —
// are held to the same copy discipline.
package aliasret

import "aliasstate"

// Flagged: returning or shallow-copying imported guarded state.

func leakRows(t *aliasstate.Table) map[string][]int {
	return t.Rows // want `returning mutex-guarded field aliasstate\.Table\.Rows \(guarded by "Mu"\) without a copy`
}

func leakLimits(t *aliasstate.Table) []int {
	return t.Limits // want `returning mutex-guarded field aliasstate\.Table\.Limits`
}

func shallowClone(t *aliasstate.Table) map[string][]int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	out := make(map[string][]int, len(t.Rows))
	for k, row := range t.Rows {
		out[k] = row // want `storing "row" uncopied while ranging mutex-guarded field aliasstate\.Table\.Rows`
	}
	return out
}

// Allowed: the deep-copy idioms.

func deepClone(t *aliasstate.Table) map[string][]int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	out := make(map[string][]int, len(t.Rows))
	for k, row := range t.Rows {
		out[k] = append([]int(nil), row...)
	}
	return out
}

func copyLimits(t *aliasstate.Table) []int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	return append([]int(nil), t.Limits...)
}

// Allowed: unguarded structs carry no facts.

func unguarded(u *aliasstate.Unguarded) map[string][]int {
	return u.Rows
}

// Justified: an intentionally shared handle documents its contract.

func sharedHandle(t *aliasstate.Table) *int {
	//pollux:aliasret-ok Extra is installed once at construction and read-only afterwards
	return t.Extra
}
