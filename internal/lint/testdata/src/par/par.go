// Package par is a stand-in for the repo's bounded parallel-for: a
// goroutine-spawning helper the rngshare analyzer knows by package name.
package par

// For runs fn(0..n-1) across workers goroutines.
func For(n, workers int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) { fn(i); done <- struct{}{} }(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
