// Package sched is a determinism-critical fixture (critical() matches
// the final path element): clocktaint flags calls that reach the wall
// clock only through helpers in other packages — the gap the local
// wallclock analyzer cannot see.
package sched

import (
	"time"

	"clockutil"
	"clockwrap"
)

// Flagged: cross-package taint at depth 1, depth 2, and via a method.

func scheduleStamp() int64 {
	return clockutil.NowUnix() // want `clockutil\.NowUnix transitively reaches time\.Now in determinism-critical package sched \(clockutil\.NowUnix → time\.Now\)`
}

func scheduleWait() {
	clockutil.SleepBriefly() // want `clockutil\.SleepBriefly transitively reaches time\.Sleep`
}

func wrappedStamp() int64 {
	return clockwrap.Stamp() // want `clockwrap\.Stamp transitively reaches time\.Now in determinism-critical package sched \(clockwrap\.Stamp → clockutil\.NowUnix → time\.Now\)`
}

func methodTouch(t *clockutil.Timer) {
	t.Touch() // want `clockutil\.\(Timer\)\.Touch transitively reaches time\.Now`
}

// Flagged: same-package helper taint — localStamp's direct time.Now is
// wallclock's finding, but a *call* to localStamp is clocktaint's.

func localStamp() int64 {
	return time.Now().UnixNano()
}

func viaLocal() int64 {
	return localStamp() // want `sched\.localStamp transitively reaches time\.Now in determinism-critical package sched \(sched\.localStamp → time\.Now\)`
}

// Allowed: clean helpers never pick up taint.

func span(a, b int64) int64 {
	return clockutil.Elapsed(a, b) + clockwrap.Span(a, b)
}

// Justified: a clocktaint-ok site is suppressed and does not propagate
// taint into its enclosing function, so callers of the justified
// wrapper stay clean too.

func justifiedStamp() int64 {
	//pollux:clocktaint-ok boot-time banner only, never inside the simulated timeline
	return clockutil.NowUnix()
}

func viaJustified() int64 {
	return justifiedStamp()
}

// Justified: an existing wallclock-ok justification is honored quietly
// — one reason covers both the local and the transitive check.

func doubleJustified() int64 {
	//pollux:wallclock-ok log decoration outside the deterministic core
	return clockwrap.Stamp()
}
