// Package clockutil is a non-critical fixture helper: wallclock does
// not run here, but clocktaint records function facts that flag the
// call sites in the critical sched fixture.
package clockutil

import "time"

// NowUnix reaches the wall clock directly: tainted at depth 1.
func NowUnix() int64 {
	return time.Now().Unix()
}

// SleepBriefly reaches the clock through a different root.
func SleepBriefly() {
	time.Sleep(time.Millisecond)
}

// Elapsed is clean: pure arithmetic, no clock.
func Elapsed(start, end int64) int64 {
	return end - start
}

// Timer is a named type whose method is tainted.
type Timer struct{ last int64 }

// Touch reads the wall clock through NowUnix: tainted at depth 2 via a
// method.
func (t *Timer) Touch() {
	t.last = NowUnix()
}
