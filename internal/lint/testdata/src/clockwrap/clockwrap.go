// Package clockwrap adds a second non-critical hop over clockutil:
// taint must compose across two package boundaries (two separate .vetx
// fact imports under the real driver) before sched sees it.
package clockwrap

import "clockutil"

// Stamp is tainted only through clockutil.NowUnix — nothing in this
// package touches time directly.
func Stamp() int64 {
	return clockutil.NowUnix()
}

// Span is clean: it composes only clockutil's clean helper.
func Span(a, b int64) int64 {
	return clockutil.Elapsed(a, b)
}
