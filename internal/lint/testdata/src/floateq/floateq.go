// Package floateq is a floateq fixture: ==/!= on computed floats is
// flagged; exact-representable constants and the NaN idiom pass.
package floateq

import "math"

func flagged(a, b float64, xs []float64) bool {
	if a == b { // want `float == comparison`
		return true
	}
	if a/3 != b*7 { // want `float != comparison`
		return false
	}
	// 0.1 is not exactly representable in binary floating point.
	if a == 0.1 { // want `float == comparison`
		return true
	}
	return xs[0] != b // want `float != comparison`
}

func allowed(a, b float64, f32 float32) bool {
	// Exact-representable constants: sentinel and exact-gate checks.
	if a == 0 || b == 0.5 || a == -1 || f32 == 2 {
		return true
	}
	// The NaN idiom: only NaN differs from itself.
	if a != a {
		return false
	}
	// Bit-pattern identity is the sanctioned exact comparison.
	return math.Float64bits(a) == math.Float64bits(b)
}

func justified(a, b float64) bool {
	//pollux:floateq-ok both sides are copied untouched from the same source; any difference is a real divergence
	return a == b
}
