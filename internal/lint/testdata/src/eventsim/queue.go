package eventsim

import "time"

// Everything in eventsim outside clock.go plays by the same rules as
// the other determinism-critical packages.
func badTick() time.Time {
	return time.Now() // want `time.Now in determinism-critical package eventsim`
}
