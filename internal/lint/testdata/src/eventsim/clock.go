// Package eventsim is a wallclock fixture. clock.go is the one
// allowlisted file: the Wall clock implementation itself.
package eventsim

import "time"

// Wait paces to the wall clock; this file may touch it.
func Wait(d time.Duration) time.Time {
	time.Sleep(d)
	return time.Now()
}
