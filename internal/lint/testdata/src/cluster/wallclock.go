// Package cluster is a wallclock fixture: its name makes it
// determinism-critical, so wall-clock time and global math/rand are
// forbidden here.
package cluster

import (
	"math/rand"
	"time"
)

func flagged() {
	_ = time.Now()                     // want `time.Now in determinism-critical package cluster`
	time.Sleep(time.Millisecond)       // want `time.Sleep in determinism-critical package cluster`
	<-time.After(time.Second)          // want `time.After in determinism-critical package cluster`
	t := time.Now()                    // want `time.Now in determinism-critical package cluster`
	_ = time.Since(t)                  // want `time.Since in determinism-critical package cluster`
	_ = rand.Intn(10)                  // want `global rand.Intn in determinism-critical package cluster`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle in determinism-critical package cluster`
}

func allowed(seed int64) float64 {
	// Seeded rng constructors are the sanctioned source of randomness.
	rng := rand.New(rand.NewSource(seed))
	// Methods on an owned rng are fine; only package-level draws are
	// global state.
	v := rng.Float64()
	// Pure time constructors and arithmetic carry no wall-clock read.
	d := 3 * time.Second
	_ = d.Seconds()
	_ = time.Unix(0, 0)
	return v
}

func justified() time.Time {
	//pollux:wallclock-ok operator-facing log timestamp, never enters a trace
	return time.Now()
}
