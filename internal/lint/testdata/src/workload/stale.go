// Package workload exercises directive hygiene in a determinism-
// critical fixture package: a justification must name a real analyzer,
// carry a reason, and actually suppress something.
package workload

import "sort"

var counts = map[string]int{}

// Stale: the loop was refactored to the sortedKeys idiom, so the
// directive suppresses nothing — detmap passes the loop before ever
// consulting it.
func sortedTotals() []string {
	var keys []string
	//pollux:order-ok totals accumulate commutatively // want `stale //pollux:order-ok: it suppresses no detmap finding`
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Unknown: a typo'd directive name is flagged against the registry.
//
//pollux:oder-ok commutative fold // want `unknown directive //pollux:oder-ok`
func total() int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}

// Missing reason: the directive is load-bearing (the append order below
// is genuinely iteration-dependent) but bare — it suppresses, and the
// missing reason is reported at the suppressed site.
func orderDependent() []string {
	var names []string
	//pollux:order-ok
	for k := range counts { // want `//pollux:order-ok needs a reason`
		names = append(names, k)
	}
	return names
}

// Used: a justified, genuinely order-dependent loop is the baseline —
// no finding anywhere.
func justified() []string {
	var names []string
	//pollux:order-ok downstream consumer sorts before use
	for k := range counts {
		names = append(names, k)
	}
	return names
}
