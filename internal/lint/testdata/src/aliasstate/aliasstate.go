// Package aliasstate declares mutex-guarded state for the aliasret
// fixture: its alias-typed fields become GuardedFieldFact facts, and
// the aliasret fixture package checks accessors against them from
// across the package boundary.
package aliasstate

import "sync"

// Table mirrors cluster.State: a mutex plus alias-typed fields. The
// fields are exported so the aliasret fixture package can reach them.
type Table struct {
	Mu     sync.Mutex
	Rows   map[string][]int
	Limits []int
	Extra  *int

	version int // value-typed: never a guarded-alias fact
}

// Rows1 returns the guarded map directly: flagged in-package.
func (t *Table) Rows1() map[string][]int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	return t.Rows // want `returning mutex-guarded field Table\.Rows \(guarded by "Mu"\) without a copy`
}

// Snapshot deep-copies rows the way cluster.Snapshot does after its
// PR 7 fix: the copy idiom passes untouched.
func (t *Table) Snapshot() map[string][]int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	out := make(map[string][]int, len(t.Rows))
	for k, row := range t.Rows {
		out[k] = append([]int(nil), row...)
	}
	return out
}

// Shallow is the reverted cluster.Snapshot bug: fresh outer map, every
// row still aliasing guarded memory.
func (t *Table) Shallow() map[string][]int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	out := make(map[string][]int, len(t.Rows))
	for k, row := range t.Rows {
		out[k] = row // want `storing "row" uncopied while ranging mutex-guarded field Table\.Rows`
	}
	return out
}

// Rehash re-stores rows inside the same guarded struct: rebucketing
// under the lock is not a leak.
func (t *Table) Rehash() {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	for k, row := range t.Rows {
		t.Rows[k+"!"] = row
	}
}

// Version returns a value-typed field: values copy by assignment.
func (t *Table) Version() int {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	return t.version
}

// Unguarded has alias-typed fields but no mutex: no facts, no findings.
type Unguarded struct {
	Rows map[string][]int
}

// All returns freely — nothing guards it.
func (u *Unguarded) All() map[string][]int {
	return u.Rows
}
