// Package zerodefault is a zerodefault fixture: defaults()-style
// rewrites of numeric option fields need an explicit-zero escape.
package zerodefault

type Options struct {
	Population     int
	RestartPenalty float64
	// DisableRestartPenalty makes an explicit zero penalty expressible.
	DisableRestartPenalty bool
	// GPUTimeThres: negative means an explicit zero threshold.
	GPUTimeThres float64
	Interval     float64
	Burst        int
}

func (o *Options) defaults() {
	if o.Population == 0 { // want `defaults rewrite of Population == 0 leaves no way to ask for an explicit zero`
		o.Population = 100
	}
	// Escape via Disable* toggle in the same chain.
	if o.DisableRestartPenalty {
		o.RestartPenalty = 0
	} else if o.RestartPenalty == 0 {
		o.RestartPenalty = 0.25
	}
	// Escape via negative sentinel in the same chain.
	if o.GPUTimeThres < 0 {
		o.GPUTimeThres = 0
	} else if o.GPUTimeThres == 0 {
		o.GPUTimeThres = 4 * 3600
	}
	if o.Interval == 0 { // want `defaults rewrite of Interval == 0 leaves no way to ask for an explicit zero`
		o.Interval = 30
	}
	//pollux:zerodefault-ok a zero burst is meaningless: the bucket must admit at least one job
	if o.Burst == 0 {
		o.Burst = 10
	}
}

// applyDefaultsSplit shows the negative sentinel handled in a separate
// statement rather than the same chain: still an escape.
func (o *Options) applyDefaultsSplit() {
	if o.Interval < 0 {
		o.Interval = 0
	}
	if o.Interval == 0 {
		o.Interval = 30
	}
}

// clamp is not a defaults function; the same shape passes untouched.
func (o *Options) clamp() {
	if o.Population == 0 {
		o.Population = 1
	}
}
