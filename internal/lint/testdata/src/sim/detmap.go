// Package sim is a detmap fixture: its name makes it determinism-
// critical, so range-over-map sites here must be order-insensitive.
package sim

import (
	"math/rand"
	"sort"
)

func flagged(m map[string]float64, rng *rand.Rand) float64 {
	var total float64
	for _, v := range m { // want `range over map in determinism-critical package sim`
		total += v // float accumulation: order changes last bits
	}
	var out []string
	for k := range m { // want `range over map in determinism-critical package sim`
		out = append(out, k) // never sorted afterwards
	}
	var last string
	for k := range m { // want `range over map in determinism-critical package sim`
		last = k // last-writer-wins on a shared variable
	}
	for range m { // want `range over map in determinism-critical package sim`
		total += rng.Float64() // impure body: draw order follows map order
	}
	for k, v := range m { // want `range over map in determinism-critical package sim`
		if v > 1 {
			_ = k
			break // which element terminates is order-dependent
		}
	}
	_ = last
	_ = out
	return total
}

func allowed(m map[string]float64, jobs map[int]int) []string {
	// Keyed writes into another map: each iteration owns its slot.
	inverted := make(map[float64]string, len(m))
	for k, v := range m {
		inverted[v] = k
	}
	// Commutative integer counters.
	n := 0
	gpus := 0
	for _, g := range jobs {
		n++
		gpus += g
	}
	// delete is keyed and commutative.
	for id := range jobs {
		delete(jobs, id)
	}
	// The sortedKeys idiom: append, then sort immediately after.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Conditional counting with continue.
	big := 0
	for _, v := range m {
		if v < 1 {
			continue
		}
		big++
	}
	// Keyed slice write: index mentions the loop variable.
	counts := make([]int, 16)
	for id, g := range jobs {
		counts[id%16] += g
	}
	// Nested loop over a slice: inner body is commutative int adds.
	usage := make([]int, 16)
	rows := map[string][]int{}
	for _, row := range rows {
		for n, g := range row {
			usage[n] += g
		}
	}
	// Field writes through the loop value: each iteration owns its
	// target struct.
	type stats struct{ Submitted, Admitted int }
	perTenant := map[string]*stats{}
	for name, st := range perTenant {
		st.Submitted = len(name)
		st.Admitted += 1
	}
	// Locals with pure initializers feeding a keyed write.
	scaled := make(map[string]float64, len(m))
	for k, v := range m {
		double := v * 2
		scaled[k] = double
	}
	_ = n
	_ = gpus
	_ = big
	return keys
}

func justified(m map[string]float64) float64 {
	best := 0.0
	//pollux:order-ok ties are impossible: values are distinct powers of two
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	//pollux:order-ok
	for _, v := range m { // want `//pollux:order-ok needs a reason`
		_ = v
		break
	}
	return best
}
