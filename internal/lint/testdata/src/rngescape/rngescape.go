// Package rngescape exercises the parameter-fact analyzer: a
// *rand.Rand handed to a helper whose parameter (transitively) reaches
// another goroutine is flagged at the call site, even though the go
// statement lives packages away.
package rngescape

import (
	"math/rand"

	"par"
	"rngutil"
)

// Flagged: the escape is one, two, and three hops away.

func callSpawn(rng *rand.Rand, out []float64) {
	rngutil.Spawn(rng, out) // want `\*rand\.Rand passed to rngutil\.Spawn, which hands it to another goroutine \(rngutil\.Spawn → a closure spawned via a go statement\)`
}

func callForward(rng *rand.Rand, out []float64) {
	rngutil.Forward(rng, out) // want `\*rand\.Rand passed to rngutil\.Forward, which hands it to another goroutine \(rngutil\.Forward → rngutil\.Forward2 → rngutil\.Spawn → a closure spawned via a go statement\)`
}

// Flagged: a same-package helper hides the boundary just as well.

func spawnLocal(r *rand.Rand) {
	go func() {
		_ = r.Int63()
	}()
}

func callLocal(rng *rand.Rand) {
	spawnLocal(rng) // want `\*rand\.Rand passed to rngescape\.spawnLocal, which hands it to another goroutine \(rngescape\.spawnLocal → a closure spawned via a go statement\)`
}

// Allowed: retention without a goroutine is a fact, not a finding — the
// owned-rng constructor pattern stays clean — and drawing on the
// caller's goroutine is the sanctioned use.

func buildHolder(rng *rand.Rand) *rngutil.Holder {
	rngutil.Keep(rng)
	return rngutil.NewHolder(rng)
}

func drawHere(rng *rand.Rand) float64 {
	return rngutil.Draw(rng)
}

// Allowed (by division of labor): a literal go statement and a known
// spawn helper are rngshare's findings, not rngescape's.

func literalGo(rng *rand.Rand, out []float64) {
	go rngutil.Spawn(rng, out)
}

func viaPar(rng *rand.Rand, out []float64) {
	par.For(len(out), 2, func(i int) {
		out[i] = rng.Float64()
	})
}

// Justified: rngescape-ok suppresses, and an existing rngshare-ok at
// the same site is honored so one reason covers both analyzers.

func justified(rng *rand.Rand, out []float64) {
	//pollux:rngescape-ok worker draws are re-seeded per index downstream
	rngutil.Spawn(rng, out)
}

func shareJustified(rng *rand.Rand, out []float64) {
	//pollux:rngshare-ok single worker, serial draw order preserved
	rngutil.Forward(rng, out)
}
