package lint_test

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// The e2e tests (self_test.go, driver_e2e_test.go) all drive the same
// pollux-vet binary, so TestMain builds it exactly once per `go test`
// invocation instead of once per test. -short runs skip every e2e test,
// so the build is skipped there too.
var vetBin string

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(runMain(m))
}

func runMain(m *testing.M) int {
	if !testing.Short() {
		root, err := findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		dir, err := os.MkdirTemp("", "pollux-vet-bin-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(dir)
		bin := filepath.Join(dir, "pollux-vet")
		build := exec.Command("go", "build", "-o", bin, "./cmd/pollux-vet")
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building pollux-vet: %v\n%s", err, out)
			return 1
		}
		vetBin = bin
	}
	return m.Run()
}

// vetBinary returns the shared pollux-vet binary, skipping tests that
// need it under -short (TestMain does not build it there).
func vetBinary(t *testing.T) string {
	t.Helper()
	if vetBin == "" {
		t.Skip("pollux-vet binary not built in -short mode")
	}
	return vetBin
}

// findModuleRoot walks upward from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above test directory")
		}
		dir = parent
	}
}
