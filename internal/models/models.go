// Package models provides the evaluation model zoo from Table 1 of the
// Pollux paper: per-model ground-truth system-throughput parameters and
// gradient-noise-scale trajectories that substitute for real DL training.
//
// The schedulers never see these ground-truth values directly. The
// simulator replays them — adding measurement noise — as the observable
// (allocation, batch size, iteration time) samples and gradient statistics
// a real PolluxAgent would profile, so the agents must fit their own
// models online exactly as in the paper (Sec. 4.1, Sec. 5.3 "Simulator").
//
// Calibration targets the qualitative shapes the paper reports rather
// than any particular hardware: single-GPU throughput and job GPU-time
// land in the paper's workload categories (Small/Medium/Large/XLarge),
// noise scale grows over training and jumps at learning-rate decays
// (Fig. 2a), and larger batch sizes scale to more GPUs (Fig. 1a).
package models

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Category classifies jobs by total GPU-time, following Sec. 5.1.
type Category int

const (
	Small  Category = iota // 0 to 1 GPU-hours
	Medium                 // 1 to 10 GPU-hours
	Large                  // 10 to 100 GPU-hours
	XLarge                 // 100 to 1000 GPU-hours
)

func (c Category) String() string {
	switch c {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	case XLarge:
		return "XLarge"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// GPUHourBounds returns the category's [lo, hi) GPU-time range in hours.
func (c Category) GPUHourBounds() (lo, hi float64) {
	switch c {
	case Small:
		return 0, 1
	case Medium:
		return 1, 10
	case Large:
		return 10, 100
	case XLarge:
		return 100, 1000
	default:
		return 0, 0
	}
}

// Decay marks a learning-rate decay milestone: when training progress
// passes Progress (fraction of total work), the gradient noise scale jumps
// by Factor. This reproduces the Fig. 2a behaviour where statistical
// efficiency of large batches improves sharply after each decay.
type Decay struct {
	Progress float64
	Factor   float64
}

// Spec is one model/dataset workload with its hidden ground truth.
type Spec struct {
	Name     string
	Dataset  string
	Task     string
	Category Category

	// Truth is the ground-truth θsys the simulator replays. Schedulers
	// must not read it; they fit their own estimates from observations.
	Truth core.Params

	M0   int     // initial (user-submitted) batch size
	Eta0 float64 // initial learning rate

	MaxBatchPerGPU int // GPU memory limit on the per-GPU batch
	MaxBatchGlobal int // quality limit on the total batch size

	DatasetSize int     // examples per epoch
	Epochs      float64 // statistical epochs (at m0) to reach the validation target

	// PhiBase and PhiGrowth define the baseline noise-scale trajectory
	// phi(p) = PhiBase·(1 + PhiGrowth·p) for progress p ∈ [0, 1],
	// multiplied by the Factor of every Decay already passed.
	PhiBase   float64
	PhiGrowth float64
	Decays    []Decay

	// Frac is this workload's share of job submissions (Table 1).
	Frac float64
}

// Phi returns the ground-truth gradient noise scale at training progress
// p ∈ [0, 1]. Progress outside the range is clamped.
func (s *Spec) Phi(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	phi := s.PhiBase * (1 + s.PhiGrowth*p)
	for _, d := range s.Decays {
		if p >= d.Progress {
			phi *= d.Factor
		}
	}
	return phi
}

// TotalWork returns the job's total work in m0-equivalent examples: one
// statistical epoch is DatasetSize examples processed at batch size m0.
func (s *Spec) TotalWork() float64 {
	return float64(s.DatasetSize) * s.Epochs
}

// GPUTimeHours returns the single-GPU time to completion at the initial
// batch size (efficiency 1), in hours — the quantity the paper uses to
// categorize jobs.
func (s *Spec) GPUTimeHours() float64 {
	tput := s.Truth.Throughput(core.SingleGPU, float64(s.M0))
	return s.TotalWork() / tput / 3600
}

// GoodputModel builds the ground-truth goodput model at progress p. The
// simulator uses it to compute true iteration times and efficiencies.
func (s *Spec) GoodputModel(p float64) core.Model {
	return core.Model{
		Params:         s.Truth,
		Phi:            s.Phi(p),
		M0:             s.M0,
		MaxBatchPerGPU: s.MaxBatchPerGPU,
		MaxBatchGlobal: s.MaxBatchGlobal,
	}
}

// Zoo returns the five evaluation workloads of Table 1, ordered from
// largest to smallest category.
func Zoo() []*Spec {
	return []*Spec{
		{
			Name:     "resnet50",
			Dataset:  "imagenet",
			Task:     "Image Classification",
			Category: XLarge,
			Truth: core.Params{
				AlphaGrad: 0.10, BetaGrad: 0.0045,
				AlphaSyncLocal: 0.10, BetaSyncLocal: 0.010,
				AlphaSyncNode: 0.25, BetaSyncNode: 0.015,
				Gamma: 2.5,
			},
			M0: 128, Eta0: 0.1,
			MaxBatchPerGPU: 192, MaxBatchGlobal: 32768,
			DatasetSize: 1281167, Epochs: 90,
			PhiBase: 1500, PhiGrowth: 20,
			Decays: []Decay{{Progress: 1.0 / 3, Factor: 3}, {Progress: 2.0 / 3, Factor: 3}},
			Frac:   0.02,
		},
		{
			Name:     "yolov3",
			Dataset:  "pascal-voc",
			Task:     "Object Detection",
			Category: Large,
			Truth: core.Params{
				AlphaGrad: 0.05, BetaGrad: 0.030,
				AlphaSyncLocal: 0.08, BetaSyncLocal: 0.010,
				AlphaSyncNode: 0.20, BetaSyncNode: 0.020,
				Gamma: 2.0,
			},
			M0: 8, Eta0: 0.001,
			MaxBatchPerGPU: 16, MaxBatchGlobal: 512,
			DatasetSize: 16551, Epochs: 72,
			PhiBase: 80, PhiGrowth: 10,
			Decays: []Decay{{Progress: 0.6, Factor: 2.5}, {Progress: 0.85, Factor: 2.5}},
			Frac:   0.05,
		},
		{
			Name:     "deepspeech2",
			Dataset:  "cmu-arctic",
			Task:     "Speech Recognition",
			Category: Medium,
			Truth: core.Params{
				AlphaGrad: 0.10, BetaGrad: 0.028,
				AlphaSyncLocal: 0.06, BetaSyncLocal: 0.008,
				AlphaSyncNode: 0.18, BetaSyncNode: 0.015,
				Gamma: 2.0,
			},
			M0: 16, Eta0: 0.0003,
			MaxBatchPerGPU: 32, MaxBatchGlobal: 1024,
			DatasetSize: 4500, Epochs: 80,
			PhiBase: 150, PhiGrowth: 8,
			Decays: []Decay{{Progress: 0.7, Factor: 2}},
			Frac:   0.17,
		},
		{
			Name:     "resnet18",
			Dataset:  "cifar10",
			Task:     "Image Classification",
			Category: Small,
			Truth: core.Params{
				AlphaGrad: 0.02, BetaGrad: 0.0005,
				AlphaSyncLocal: 0.03, BetaSyncLocal: 0.004,
				AlphaSyncNode: 0.10, BetaSyncNode: 0.008,
				Gamma: 3.0,
			},
			M0: 128, Eta0: 0.1,
			MaxBatchPerGPU: 1024, MaxBatchGlobal: 8192,
			DatasetSize: 50000, Epochs: 80,
			PhiBase: 400, PhiGrowth: 15,
			Decays: []Decay{{Progress: 0.5, Factor: 4}, {Progress: 0.75, Factor: 4}},
			Frac:   0.38,
		},
		{
			Name:     "neumf",
			Dataset:  "movielens",
			Task:     "Collaborative Filtering",
			Category: Small,
			Truth: core.Params{
				AlphaGrad: 0.005, BetaGrad: 0.00003,
				AlphaSyncLocal: 0.05, BetaSyncLocal: 0.006,
				AlphaSyncNode: 0.15, BetaSyncNode: 0.010,
				Gamma: 1.8,
			},
			M0: 256, Eta0: 0.001,
			MaxBatchPerGPU: 4096, MaxBatchGlobal: 32768,
			DatasetSize: 1000000, Epochs: 20,
			PhiBase: 1000, PhiGrowth: 5,
			Decays: nil,
			Frac:   0.38,
		},
	}
}

// ByName returns the zoo spec with the given name, or nil.
func ByName(name string) *Spec {
	for _, s := range Zoo() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Names returns the zoo model names, sorted.
func Names() []string {
	zoo := Zoo()
	names := make([]string, len(zoo))
	for i, s := range zoo {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
