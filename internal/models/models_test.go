package models

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestZooHasFiveWorkloads(t *testing.T) {
	if got := len(Zoo()); got != 5 {
		t.Fatalf("zoo size = %d, want 5 (Table 1)", got)
	}
}

func TestZooFractionsSumToOne(t *testing.T) {
	sum := 0.0
	for _, s := range Zoo() {
		sum += s.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("workload fractions sum to %v, want 1", sum)
	}
}

func TestZooGPUTimeMatchesCategory(t *testing.T) {
	for _, s := range Zoo() {
		lo, hi := s.Category.GPUHourBounds()
		h := s.GPUTimeHours()
		if h < lo || h >= hi {
			t.Errorf("%s: GPU-time %.2f h outside %s range [%v, %v)", s.Name, h, s.Category, lo, hi)
		}
	}
}

func TestZooCategoriesMatchTable1(t *testing.T) {
	want := map[string]Category{
		"resnet50":    XLarge,
		"yolov3":      Large,
		"deepspeech2": Medium,
		"resnet18":    Small,
		"neumf":       Small,
	}
	for name, cat := range want {
		s := ByName(name)
		if s == nil {
			t.Errorf("missing model %q", name)
			continue
		}
		if s.Category != cat {
			t.Errorf("%s category = %v, want %v", name, s.Category, cat)
		}
	}
}

func TestPhiMonotoneNonDecreasing(t *testing.T) {
	for _, s := range Zoo() {
		prev := 0.0
		for p := 0.0; p <= 1.0; p += 0.01 {
			phi := s.Phi(p)
			if phi < prev {
				t.Errorf("%s: phi decreased at p=%v: %v < %v", s.Name, p, phi, prev)
			}
			if phi <= 0 {
				t.Errorf("%s: phi non-positive at p=%v", s.Name, p)
			}
			prev = phi
		}
	}
}

func TestPhiJumpsAtDecays(t *testing.T) {
	s := ByName("resnet50")
	eps := 1e-9
	for _, d := range s.Decays {
		before := s.Phi(d.Progress - 0.001)
		after := s.Phi(d.Progress + eps)
		if after < before*d.Factor*0.95 {
			t.Errorf("phi at decay %v: before=%v after=%v, want ~%vx jump",
				d.Progress, before, after, d.Factor)
		}
	}
}

func TestPhiClampsProgress(t *testing.T) {
	s := ByName("resnet18")
	//pollux:floateq-ok clamping makes both sides the same evaluation; results must be identical bit-for-bit
	if s.Phi(-1) != s.Phi(0) {
		t.Error("phi(-1) != phi(0)")
	}
	//pollux:floateq-ok clamping makes both sides the same evaluation; results must be identical bit-for-bit
	if s.Phi(2) != s.Phi(1) {
		t.Error("phi(2) != phi(1)")
	}
}

func TestPhiGrowsAtLeastTenfold(t *testing.T) {
	// Sec. 2.2: the noise scale "tends to gradually increase during
	// training, by up to 10x or more". Every zoo model should at least
	// triple, and resnet50 should exceed 10x.
	for _, s := range Zoo() {
		ratio := s.Phi(1) / s.Phi(0)
		if ratio < 3 {
			t.Errorf("%s: phi(1)/phi(0) = %v, want >= 3", s.Name, ratio)
		}
	}
	if r := ByName("resnet50"); r.Phi(1)/r.Phi(0) < 10 {
		t.Errorf("resnet50 phi growth = %v, want >= 10x", r.Phi(1)/r.Phi(0))
	}
}

func TestTotalWork(t *testing.T) {
	s := ByName("resnet18")
	want := 50000.0 * 80
	//pollux:floateq-ok product of exactly representable integers; TotalWork computes the same product
	if s.TotalWork() != want {
		t.Errorf("TotalWork = %v, want %v", s.TotalWork(), want)
	}
}

func TestGoodputModelUsesProgressPhi(t *testing.T) {
	s := ByName("resnet18")
	early := s.GoodputModel(0.1)
	late := s.GoodputModel(0.9)
	if late.Phi <= early.Phi {
		t.Errorf("late phi %v <= early phi %v", late.Phi, early.Phi)
	}
	if early.M0 != s.M0 || early.MaxBatchPerGPU != s.MaxBatchPerGPU {
		t.Error("goodput model does not carry spec limits")
	}
}

func TestByNameUnknown(t *testing.T) {
	if ByName("nope") != nil {
		t.Error("ByName(unknown) != nil")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("Names() len = %d, want 5", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Small.String() != "Small" || XLarge.String() != "XLarge" {
		t.Error("category String() wrong")
	}
	if Category(42).String() != "Category(42)" {
		t.Error("unknown category String() wrong")
	}
}

// Fig. 1a shape: for resnet18, batch size 2048 must scale to 16 GPUs much
// better than batch size 512.
func TestFig1aShapeLargerBatchScalesBetter(t *testing.T) {
	s := ByName("resnet18")
	small := Placement16(s, 512)
	large := Placement16(s, 2048)
	if large <= small*1.5 {
		t.Errorf("2048-batch 16-GPU throughput %v not >1.5x the 512-batch %v", large, small)
	}
}

func Placement16(s *Spec, m int) float64 {
	return s.Truth.Throughput(core.Placement{GPUs: 16, Nodes: 4}, float64(m))
}

// Fig. 1b shape: the goodput-optimal batch size at 16 GPUs grows between
// the first and second half of training.
func TestFig1bShapeOptimalBatchGrows(t *testing.T) {
	s := ByName("resnet18")
	pl := core.Placement{GPUs: 16, Nodes: 4}
	early := s.GoodputModel(0.25)
	late := s.GoodputModel(0.75)
	mEarly, _, ok1 := early.OptimalBatch(pl)
	mLate, _, ok2 := late.OptimalBatch(pl)
	if !ok1 || !ok2 {
		t.Fatal("optimal batch infeasible")
	}
	if mLate <= mEarly {
		t.Errorf("optimal batch did not grow: early=%d late=%d", mEarly, mLate)
	}
}

// Every model must be able to run at its initial configuration: m0 fits on
// one GPU and the global cap is at least m0.
func TestZooInitialConfigFeasible(t *testing.T) {
	for _, s := range Zoo() {
		if s.M0 > s.MaxBatchPerGPU {
			t.Errorf("%s: m0 %d exceeds per-GPU max %d", s.Name, s.M0, s.MaxBatchPerGPU)
		}
		if s.MaxBatchGlobal > 0 && s.MaxBatchGlobal < s.M0 {
			t.Errorf("%s: global cap %d below m0 %d", s.Name, s.MaxBatchGlobal, s.M0)
		}
		m := s.GoodputModel(0)
		if _, _, ok := m.OptimalBatch(core.SingleGPU); !ok {
			t.Errorf("%s: single GPU infeasible at start", s.Name)
		}
	}
}
