package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-12 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 99); math.Abs(got-9.9) > 1e-12 {
		t.Errorf("Percentile(99) = %v, want 9.9", got)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile single = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := make([]float64, n)
		copy(s, xs)
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-12 || v < s[0]-1e-12 || v > s[n-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	recs := []JobRecord{
		{Submit: 0, Finish: 100},
		{Submit: 50, Finish: 250},
		{Submit: 10, Finish: 0}, // unfinished
	}
	s := Summarize(recs)
	if s.Completed != 2 || s.Total != 3 {
		t.Errorf("completed/total = %d/%d, want 2/3", s.Completed, s.Total)
	}
	if math.Abs(s.AvgJCT-150) > 1e-12 { // (100 + 200)/2
		t.Errorf("AvgJCT = %v, want 150", s.AvgJCT)
	}
	if math.Abs(s.Makespan-250) > 1e-12 {
		t.Errorf("Makespan = %v, want 250", s.Makespan)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Completed != 0 || s.AvgJCT != 0 || s.Makespan != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestAverage(t *testing.T) {
	runs := []Summary{
		{Completed: 10, Total: 10, AvgJCT: 100, P50JCT: 80, P99JCT: 300, Makespan: 1000, AvgEfficiency: 0.9,
			AvgThroughputX: 8000, AvgGoodputX: 5000},
		{Completed: 8, Total: 10, AvgJCT: 200, P50JCT: 120, P99JCT: 500, Makespan: 2000, AvgEfficiency: 0.7,
			AvgThroughputX: 6000, AvgGoodputX: 4000},
	}
	a := Average(runs)
	if a.Completed != 18 || a.Total != 20 {
		t.Errorf("counts = %d/%d, want 18/20", a.Completed, a.Total)
	}
	if math.Abs(a.AvgJCT-150) > 1e-9 || math.Abs(a.Makespan-1500) > 1e-9 {
		t.Errorf("averaged = %+v", a)
	}
	if math.Abs(a.AvgEfficiency-0.8) > 1e-9 {
		t.Errorf("AvgEfficiency = %v, want 0.8", a.AvgEfficiency)
	}
	// The relative factors average like every other field (they used to
	// be silently dropped).
	if math.Abs(a.AvgThroughputX-7000) > 1e-9 || math.Abs(a.AvgGoodputX-4500) > 1e-9 {
		t.Errorf("relative factors = %v/%v, want 7000/4500", a.AvgThroughputX, a.AvgGoodputX)
	}
	if z := Average(nil); z != (Summary{}) {
		t.Errorf("Average(nil) = %+v, want zero", z)
	}
}

func TestHours(t *testing.T) {
	if got := Hours(4320); got != "1.2h" {
		t.Errorf("Hours = %q, want 1.2h", got)
	}
}

func TestTableAligned(t *testing.T) {
	out := Table([]string{"policy", "avg"}, [][]string{
		{"pollux", "1.2h"},
		{"tiresias+tuned", "2.4h"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[3], "tiresias+tuned") || !strings.Contains(lines[3], "2.4h") {
		t.Errorf("row wrong: %q", lines[3])
	}
	// Columns aligned: "avg" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "avg")
	if strings.Index(lines[2], "1.2h") != idx {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestSummarizeTenants(t *testing.T) {
	records := []JobRecord{
		{Tenant: "a", Submit: 0, Finish: 100, Deadline: 150},
		{Tenant: "a", Submit: 50, Finish: 300, Deadline: 200}, // missed SLO
		{Tenant: "a", Submit: 60, Rejected: true, Deadline: 100},
		{Tenant: "b", Submit: 10, Finish: 110},
	}
	ts := SummarizeTenants(records)
	if len(ts) != 2 {
		t.Fatalf("got %d tenants, want 2", len(ts))
	}
	a := ts["a"]
	if a.Summary.Total != 3 || a.Summary.Completed != 2 {
		t.Errorf("tenant a summary = %+v", a.Summary)
	}
	if a.SLOJobs != 2 || a.SLOMet != 1 {
		t.Errorf("tenant a SLO = %d/%d, want 1/2 (rejected job excluded)", a.SLOMet, a.SLOJobs)
	}
	b := ts["b"]
	if b.SLOJobs != 0 || b.Summary.AvgJCT != 100 {
		t.Errorf("tenant b = %+v", b)
	}
	if got := SummarizeTenants([]JobRecord{{Submit: 1, Finish: 2}}); got != nil {
		t.Errorf("tenant-less records produced %v, want nil", got)
	}
}

func TestAverageTenants(t *testing.T) {
	runs := []map[string]TenantSummary{
		{
			"a": {Tenant: "a", Summary: Summary{Completed: 2, Total: 2, AvgJCT: 100}, Submitted: 3, Admitted: 2, Rejected: 1, AvgGoodput: 10, AvgQueueDepth: 2},
			"b": {Tenant: "b", Summary: Summary{Completed: 1, Total: 1, AvgJCT: 50}, Submitted: 1, Admitted: 1},
		},
		{
			"a": {Tenant: "a", Summary: Summary{Completed: 2, Total: 2, AvgJCT: 200}, Submitted: 3, Admitted: 3, AvgGoodput: 20, AvgQueueDepth: 4},
		},
	}
	avg := AverageTenants(runs)
	a := avg["a"]
	if a.Submitted != 6 || a.Admitted != 5 || a.Rejected != 1 {
		t.Errorf("tenant a counters = %+v", a)
	}
	if got := a.Summary.AvgJCT; got != 150 {
		t.Errorf("tenant a AvgJCT = %v, want 150", got)
	}
	if a.AvgGoodput != 15 || a.AvgQueueDepth != 3 {
		t.Errorf("tenant a rates = %+v", a)
	}
	// Tenant b was absent from run 2: its averaged JCT divides by both runs.
	b := avg["b"]
	if b.Summary.AvgJCT != 25 {
		t.Errorf("tenant b AvgJCT = %v, want 25", b.Summary.AvgJCT)
	}
	if AverageTenants(nil) != nil {
		t.Error("AverageTenants(nil) != nil")
	}
}
