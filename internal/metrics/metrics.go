// Package metrics provides the job-completion-time statistics used
// throughout the Pollux paper's evaluation: average and percentile JCT,
// makespan, and helpers for averaging results across repeated traces
// (Sec. 5.3 repeats every experiment over 8 generated traces).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary aggregates one scheduling run.
type Summary struct {
	Completed int
	Total     int
	AvgJCT    float64 // seconds
	P50JCT    float64
	P99JCT    float64
	Makespan  float64 // seconds from first submission to last completion

	// AvgEfficiency is the time-and-job-weighted mean statistical
	// efficiency across running jobs (the ~91% vs ~74% comparison in
	// Sec. 5.2.1).
	AvgEfficiency float64
	// AvgThroughputX and AvgGoodputX are optional relative factors
	// filled in by comparison helpers.
	AvgThroughputX float64
	AvgGoodputX    float64
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between order statistics. It panics on empty input or
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summarize computes a Summary from per-job completion times.
type JobRecord struct {
	Submit float64
	Finish float64 // 0 when not completed
	// Tenant is the owning tenant for multi-tenant runs ("" otherwise);
	// Deadline the absolute SLO deadline (0 = none). Rejected marks jobs
	// the admission stage turned away (they count in Total but can never
	// finish).
	Tenant   string
	Deadline float64
	Rejected bool
}

// Summarize builds JCT statistics from job records. Jobs that never
// finished are excluded from the JCT stats but counted in Total.
func Summarize(records []JobRecord) Summary {
	var jcts []float64
	first := math.Inf(1)
	last := 0.0
	completed := 0
	for _, r := range records {
		if r.Submit < first {
			first = r.Submit
		}
		if r.Finish > 0 {
			completed++
			jcts = append(jcts, r.Finish-r.Submit)
			if r.Finish > last {
				last = r.Finish
			}
		}
	}
	s := Summary{Completed: completed, Total: len(records)}
	if completed > 0 {
		s.AvgJCT = Mean(jcts)
		s.P50JCT = Percentile(jcts, 50)
		s.P99JCT = Percentile(jcts, 99)
		s.Makespan = last - first
	}
	return s
}

// Average element-wise averages summaries from repeated traces: counts
// accumulate, every other field is averaged — including the optional
// relative factors, which earlier versions silently dropped (sim.RunSeeds
// re-fills them from per-run results and is unaffected, but any other
// caller would have lost them).
func Average(runs []Summary) Summary {
	if len(runs) == 0 {
		return Summary{}
	}
	var out Summary
	n := float64(len(runs))
	for _, r := range runs {
		out.Completed += r.Completed
		out.Total += r.Total
		out.AvgJCT += r.AvgJCT / n
		out.P50JCT += r.P50JCT / n
		out.P99JCT += r.P99JCT / n
		out.Makespan += r.Makespan / n
		out.AvgEfficiency += r.AvgEfficiency / n
		out.AvgThroughputX += r.AvgThroughputX / n
		out.AvgGoodputX += r.AvgGoodputX / n
	}
	return out
}

// TenantSummary is one tenant's slice of a multi-tenant run: JCT
// statistics over the tenant's jobs plus the serving front end's
// admission counters and time-averaged queue depth.
type TenantSummary struct {
	Tenant  string
	Summary Summary

	Submitted int // arrivals presented to admission
	Admitted  int
	Rejected  int

	// AvgGoodput is the tenant's mean goodput (examples/s) over its
	// jobs' running time.
	AvgGoodput float64
	// AvgQueueDepth is the tenant's mean count of admitted-but-unallocated
	// jobs per scheduling round.
	AvgQueueDepth float64
	// SLOMet counts jobs that finished at or before their deadline, out
	// of SLOJobs jobs that carried one.
	SLOMet  int
	SLOJobs int
}

// SummarizeTenants groups job records by tenant and computes each
// tenant's JCT statistics and SLO attainment (admission counters and
// queue depths are the front end's and are filled in by the caller).
// Returns nil when no record carries a tenant.
func SummarizeTenants(records []JobRecord) map[string]TenantSummary {
	byTenant := make(map[string][]JobRecord)
	for _, r := range records {
		if r.Tenant != "" {
			byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
		}
	}
	if len(byTenant) == 0 {
		return nil
	}
	out := make(map[string]TenantSummary, len(byTenant))
	for tenant, recs := range byTenant {
		ts := TenantSummary{Tenant: tenant, Summary: Summarize(recs)}
		for _, r := range recs {
			if r.Deadline > 0 && !r.Rejected {
				ts.SLOJobs++
				if r.Finish > 0 && r.Finish <= r.Deadline {
					ts.SLOMet++
				}
			}
		}
		out[tenant] = ts
	}
	return out
}

// AverageTenants element-wise averages per-tenant summaries from
// repeated traces, mirroring Average: counts accumulate, rates and JCT
// statistics are averaged. Tenants missing from a run contribute zeros
// for that run (the divisor is always len(runs)).
func AverageTenants(runs []map[string]TenantSummary) map[string]TenantSummary {
	if len(runs) == 0 {
		return nil
	}
	n := float64(len(runs))
	perTenant := make(map[string][]Summary)
	out := make(map[string]TenantSummary)
	for _, run := range runs {
		for tenant, ts := range run {
			o := out[tenant]
			o.Tenant = tenant
			o.Submitted += ts.Submitted
			o.Admitted += ts.Admitted
			o.Rejected += ts.Rejected
			o.AvgGoodput += ts.AvgGoodput / n
			o.AvgQueueDepth += ts.AvgQueueDepth / n
			o.SLOMet += ts.SLOMet
			o.SLOJobs += ts.SLOJobs
			out[tenant] = o
			perTenant[tenant] = append(perTenant[tenant], ts.Summary)
		}
	}
	for tenant, summaries := range perTenant {
		// Pad with zero summaries for runs the tenant was absent from so
		// the per-field divisor matches every other averaged metric.
		for len(summaries) < len(runs) {
			summaries = append(summaries, Summary{})
		}
		o := out[tenant]
		o.Summary = Average(summaries)
		out[tenant] = o
	}
	return out
}

// Hours formats a duration in seconds as fractional hours, e.g. "1.2h".
func Hours(seconds float64) string {
	return fmt.Sprintf("%.1fh", seconds/3600)
}

// Table renders rows of cells with aligned columns for experiment output.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
