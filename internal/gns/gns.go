// Package gns implements gradient noise scale estimation as used by Pollux
// (Sec. 3.1 of the paper) to quantify the statistical efficiency of large
// batch sizes.
//
// Conventions. Let g(t) be the true gradient at iteration t with squared
// norm mu² = |E[ĝ]|², and let S be the trace of the per-example gradient
// covariance. A mini-batch gradient estimate over B examples then has
// variance S/B. The paper measures sigma² = Var[ĝ] at the initial batch
// size m0, so sigma² = S/m0, and defines the gradient noise scale
//
//	phi_t = m0·sigma²/mu² = S/mu².
//
// phi is therefore independent of the batch size it was measured at, which
// is what lets Pollux predict EFFICIENCY_t(m) = (phi+m0)/(phi+m) for batch
// sizes it has never run (Eqn. 7).
//
// Two estimators are provided, matching Sec. 3.1:
//
//   - ReplicaEstimator uses the K per-replica gradient estimates already
//     available during data-parallel training (the McCandlish et al.
//     two-batch-size construction with B_small = m/K and B_big = m).
//   - DiffEstimator is the differenced variance estimator (Wang & Yu)
//     used when only a single replica is running and no per-replica
//     spread exists.
//
// Both feed a Tracker that smooths sigma² and mu² with exponential moving
// averages before forming phi, as raw per-iteration estimates are noisy.
package gns

import (
	"errors"
	"math"
)

// Estimate is one iteration's unbiased estimate of the gradient statistics.
type Estimate struct {
	SqNorm     float64 // estimate of mu² = |E[ĝ]|²
	ExampleVar float64 // estimate of S = total per-example gradient variance
}

// NoiseScale returns phi = S/mu². It returns +Inf when the signal
// vanishes, and 0 for a noiseless gradient.
func (e Estimate) NoiseScale() float64 {
	if e.ExampleVar <= 0 {
		return 0
	}
	if e.SqNorm <= 0 {
		return math.Inf(1)
	}
	return e.ExampleVar / e.SqNorm
}

// errs for estimator misuse.
var (
	ErrNeedTwoReplicas = errors.New("gns: replica estimator needs at least two local gradients")
	ErrDimMismatch     = errors.New("gns: gradient dimension mismatch")
	ErrNeedPrev        = errors.New("gns: differenced estimator needs a previous gradient")
)

// FromReplicas computes an Estimate from the K >= 2 per-replica gradient
// estimates of one data-parallel iteration. Each local gradient must have
// been computed over batchPerReplica examples. It uses the two-scale
// construction: |G|² estimated without noise bias from the pair
// (B_small = batchPerReplica, B_big = K·batchPerReplica).
func FromReplicas(local [][]float64, batchPerReplica int) (Estimate, error) {
	k := len(local)
	if k < 2 {
		return Estimate{}, ErrNeedTwoReplicas
	}
	dim := len(local[0])
	for _, g := range local {
		if len(g) != dim {
			return Estimate{}, ErrDimMismatch
		}
	}
	bSmall := float64(batchPerReplica)
	bBig := float64(k * batchPerReplica)

	// |G_big|² = |mean over replicas|², |G_small|² = mean over replicas
	// of |g_k|².
	mean := make([]float64, dim)
	sqSmall := 0.0
	for _, g := range local {
		for i, v := range g {
			mean[i] += v
			sqSmall += v * v
		}
	}
	sqSmall /= float64(k)
	sqBig := 0.0
	for i := range mean {
		mean[i] /= float64(k)
		sqBig += mean[i] * mean[i]
	}

	// McCandlish et al., Appendix A: unbiased estimators for |G|² and S.
	sqNorm := (bBig*sqBig - bSmall*sqSmall) / (bBig - bSmall)
	exVar := (sqSmall - sqBig) / (1/bSmall - 1/bBig)
	return Estimate{SqNorm: sqNorm, ExampleVar: exVar}, nil
}

// DiffEstimator computes gradient statistics from consecutive whole-batch
// gradients when only one replica exists. Under the assumption that the
// true gradient changes slowly between adjacent iterations,
// |ĝ(t) − ĝ(t−1)|²/2 estimates the batch-mean variance S/m.
type DiffEstimator struct {
	prev  []float64
	batch int
	ready bool
}

// NewDiffEstimator creates a differenced estimator for gradients computed
// at the given whole-batch size.
func NewDiffEstimator(batch int) *DiffEstimator {
	return &DiffEstimator{batch: batch}
}

// Reset clears the stored previous gradient, e.g. after the batch size or
// the model parameters change discontinuously (checkpoint-restart).
func (d *DiffEstimator) Reset(batch int) {
	d.prev = nil
	d.ready = false
	d.batch = batch
}

// Update consumes the gradient of the current iteration and, from the
// second call onward, returns an Estimate.
func (d *DiffEstimator) Update(grad []float64) (Estimate, error) {
	if d.prev != nil && len(grad) != len(d.prev) {
		return Estimate{}, ErrDimMismatch
	}
	if !d.ready {
		d.prev = append(d.prev[:0], grad...)
		d.ready = true
		return Estimate{}, ErrNeedPrev
	}
	diffSq := 0.0
	normSq := 0.0
	for i, v := range grad {
		dd := v - d.prev[i]
		diffSq += dd * dd
		normSq += v * v
	}
	d.prev = append(d.prev[:0], grad...)

	batchVar := diffSq / 2 // Var of the batch-mean gradient
	exVar := batchVar * float64(d.batch)
	// |ĝ|² is biased upward by the batch-mean variance; correct it.
	sqNorm := normSq - batchVar
	return Estimate{SqNorm: sqNorm, ExampleVar: exVar}, nil
}

// Tracker smooths raw per-iteration estimates into a stable noise scale.
// Pollux reports the smoothed phi to the scheduler every 30 s; without
// smoothing the per-iteration estimates are far too noisy to schedule on.
type Tracker struct {
	decay  float64
	sqNorm float64
	exVar  float64
	weight float64
}

// NewTracker creates a Tracker with the given EMA decay in (0, 1); values
// near 1 smooth more. A decay of 0.95 tracks roughly the last 20
// iterations.
func NewTracker(decay float64) *Tracker {
	if decay <= 0 || decay >= 1 {
		panic("gns: decay must be in (0, 1)")
	}
	return &Tracker{decay: decay}
}

// Observe folds one raw estimate into the moving averages. Non-positive
// variance estimates (possible for unbiased estimators on small samples)
// are clamped to zero; non-positive signal estimates are clamped to a tiny
// floor so phi stays finite.
func (t *Tracker) Observe(e Estimate) {
	v := math.Max(e.ExampleVar, 0)
	n := math.Max(e.SqNorm, 0)
	t.sqNorm = t.decay*t.sqNorm + (1-t.decay)*n
	t.exVar = t.decay*t.exVar + (1-t.decay)*v
	t.weight = t.decay*t.weight + (1 - t.decay)
}

// Ready reports whether enough observations have accumulated for the EMA
// to be meaningful (weight covers ~5 effective samples).
func (t *Tracker) Ready() bool {
	return t.weight > 1-math.Pow(t.decay, 5)
}

// NoiseScale returns the smoothed phi estimate. Before any observations it
// returns 0 (i.e. perfect efficiency is assumed, matching Pollux's
// optimistic priors).
func (t *Tracker) NoiseScale() float64 {
	if t.weight == 0 {
		return 0
	}
	n := t.sqNorm / t.weight
	v := t.exVar / t.weight
	if v <= 0 {
		return 0
	}
	if n <= 0 {
		return math.Inf(1)
	}
	return v / n
}

// TrackerState is the serializable state of a Tracker, used by the
// scheduler-service checkpoint machinery.
type TrackerState struct {
	Decay  float64
	SqNorm float64
	ExVar  float64
	Weight float64
}

// State returns the tracker's serializable state.
func (t *Tracker) State() TrackerState {
	return TrackerState{Decay: t.decay, SqNorm: t.sqNorm, ExVar: t.exVar, Weight: t.weight}
}

// RestoreTracker rebuilds a Tracker from a State. It validates the decay
// the same way NewTracker does, so a corrupt snapshot fails loudly.
func RestoreTracker(st TrackerState) (*Tracker, error) {
	if st.Decay <= 0 || st.Decay >= 1 {
		return nil, errors.New("gns: restored decay must be in (0, 1)")
	}
	return &Tracker{decay: st.Decay, sqNorm: st.SqNorm, exVar: st.ExVar, weight: st.Weight}, nil
}

// Stats returns the bias-corrected smoothed (mu², S) pair.
func (t *Tracker) Stats() Estimate {
	if t.weight == 0 {
		return Estimate{}
	}
	return Estimate{SqNorm: t.sqNorm / t.weight, ExampleVar: t.exVar / t.weight}
}
