package gns

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthGrad draws a batch-mean gradient estimate over batch examples from
// a population with true gradient mu (vector) and per-example coordinate
// variance exVar/dim each, so the total per-example variance is exVar.
func synthGrad(rng *rand.Rand, mu []float64, exVar float64, batch int) []float64 {
	dim := len(mu)
	sd := math.Sqrt(exVar / float64(dim) / float64(batch))
	g := make([]float64, dim)
	for i := range g {
		g[i] = mu[i] + rng.NormFloat64()*sd
	}
	return g
}

func makeMu(dim int, sqNorm float64) []float64 {
	mu := make([]float64, dim)
	per := math.Sqrt(sqNorm / float64(dim))
	for i := range mu {
		mu[i] = per
	}
	return mu
}

func TestFromReplicasErrors(t *testing.T) {
	if _, err := FromReplicas([][]float64{{1, 2}}, 8); err != ErrNeedTwoReplicas {
		t.Errorf("one replica: err = %v, want ErrNeedTwoReplicas", err)
	}
	if _, err := FromReplicas([][]float64{{1, 2}, {1}}, 8); err != ErrDimMismatch {
		t.Errorf("dim mismatch: err = %v, want ErrDimMismatch", err)
	}
}

func TestFromReplicasNoiseless(t *testing.T) {
	// Identical replica gradients: zero variance, sqnorm = |g|².
	g := []float64{3, 4}
	e, err := FromReplicas([][]float64{g, g, g, g}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.ExampleVar) > 1e-12 {
		t.Errorf("ExampleVar = %v, want 0", e.ExampleVar)
	}
	if math.Abs(e.SqNorm-25) > 1e-9 {
		t.Errorf("SqNorm = %v, want 25", e.SqNorm)
	}
	if e.NoiseScale() != 0 {
		t.Errorf("NoiseScale = %v, want 0", e.NoiseScale())
	}
}

func TestFromReplicasRecoversKnownScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		dim     = 64
		sqNorm  = 4.0
		exVar   = 512.0 // phi = 128
		perRepl = 32
		k       = 8
		iters   = 3000
	)
	mu := makeMu(dim, sqNorm)
	tr := NewTracker(0.999)
	for it := 0; it < iters; it++ {
		local := make([][]float64, k)
		for r := range local {
			local[r] = synthGrad(rng, mu, exVar, perRepl)
		}
		e, err := FromReplicas(local, perRepl)
		if err != nil {
			t.Fatal(err)
		}
		tr.Observe(e)
	}
	wantPhi := exVar / sqNorm
	got := tr.NoiseScale()
	if math.Abs(got-wantPhi)/wantPhi > 0.15 {
		t.Errorf("smoothed phi = %v, want ~%v (15%%)", got, wantPhi)
	}
	st := tr.Stats()
	if math.Abs(st.SqNorm-sqNorm)/sqNorm > 0.15 {
		t.Errorf("smoothed mu² = %v, want ~%v", st.SqNorm, sqNorm)
	}
	if math.Abs(st.ExampleVar-exVar)/exVar > 0.15 {
		t.Errorf("smoothed S = %v, want ~%v", st.ExampleVar, exVar)
	}
}

// Property: the replica estimator is invariant (in expectation) to the
// batch size it is run at — phi estimated with different (K, batch)
// configurations agrees. This is the property Pollux relies on to predict
// efficiency at unseen batch sizes.
func TestFromReplicasBatchSizeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mu := makeMu(32, 9.0)
	const exVar = 900.0 // phi = 100
	configs := []struct{ k, perRepl int }{{2, 64}, {4, 32}, {8, 128}}
	var phis []float64
	for _, cfg := range configs {
		tr := NewTracker(0.999)
		for it := 0; it < 4000; it++ {
			local := make([][]float64, cfg.k)
			for r := range local {
				local[r] = synthGrad(rng, mu, exVar, cfg.perRepl)
			}
			e, _ := FromReplicas(local, cfg.perRepl)
			tr.Observe(e)
		}
		phis = append(phis, tr.NoiseScale())
	}
	want := exVar / 9.0
	for i, phi := range phis {
		if math.Abs(phi-want)/want > 0.2 {
			t.Errorf("config %d: phi = %v, want ~%v", i, phi, want)
		}
	}
}

func TestDiffEstimatorNeedsPrev(t *testing.T) {
	d := NewDiffEstimator(32)
	if _, err := d.Update([]float64{1, 2}); err != ErrNeedPrev {
		t.Errorf("first update: err = %v, want ErrNeedPrev", err)
	}
	if _, err := d.Update([]float64{1, 2}); err != nil {
		t.Errorf("second update: err = %v, want nil", err)
	}
}

func TestDiffEstimatorDimMismatch(t *testing.T) {
	d := NewDiffEstimator(32)
	d.Update([]float64{1, 2})
	if _, err := d.Update([]float64{1}); err != ErrDimMismatch {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
}

func TestDiffEstimatorReset(t *testing.T) {
	d := NewDiffEstimator(32)
	d.Update([]float64{1, 2})
	d.Reset(64)
	if _, err := d.Update([]float64{1, 2, 3}); err != ErrNeedPrev {
		t.Errorf("after reset: err = %v, want ErrNeedPrev", err)
	}
	if d.batch != 64 {
		t.Errorf("batch after reset = %d, want 64", d.batch)
	}
}

func TestDiffEstimatorRecoversKnownScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		dim    = 64
		sqNorm = 4.0
		exVar  = 256.0 // phi = 64
		batch  = 128
	)
	mu := makeMu(dim, sqNorm)
	d := NewDiffEstimator(batch)
	tr := NewTracker(0.999)
	for it := 0; it < 5000; it++ {
		g := synthGrad(rng, mu, exVar, batch)
		e, err := d.Update(g)
		if err != nil {
			continue
		}
		tr.Observe(e)
	}
	wantPhi := exVar / sqNorm
	got := tr.NoiseScale()
	if math.Abs(got-wantPhi)/wantPhi > 0.2 {
		t.Errorf("smoothed phi = %v, want ~%v (20%%)", got, wantPhi)
	}
}

func TestTrackerPanicsOnBadDecay(t *testing.T) {
	for _, d := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTracker(%v) did not panic", d)
				}
			}()
			NewTracker(d)
		}()
	}
}

func TestTrackerEmptyDefaults(t *testing.T) {
	tr := NewTracker(0.9)
	if tr.NoiseScale() != 0 {
		t.Errorf("empty tracker phi = %v, want 0", tr.NoiseScale())
	}
	if tr.Ready() {
		t.Error("empty tracker reports Ready")
	}
	st := tr.Stats()
	if st.SqNorm != 0 || st.ExampleVar != 0 {
		t.Errorf("empty tracker stats = %+v, want zero", st)
	}
}

func TestTrackerReadyAfterEnoughSamples(t *testing.T) {
	tr := NewTracker(0.9)
	for i := 0; i < 10; i++ {
		tr.Observe(Estimate{SqNorm: 1, ExampleVar: 1})
	}
	if !tr.Ready() {
		t.Error("tracker not Ready after 10 observations")
	}
}

func TestTrackerClampsNegativeEstimates(t *testing.T) {
	tr := NewTracker(0.5)
	tr.Observe(Estimate{SqNorm: -5, ExampleVar: -3})
	if phi := tr.NoiseScale(); phi != 0 {
		t.Errorf("phi after negative-only observations = %v, want 0", phi)
	}
}

func TestEstimateNoiseScaleEdgeCases(t *testing.T) {
	if phi := (Estimate{SqNorm: 0, ExampleVar: 1}).NoiseScale(); !math.IsInf(phi, 1) {
		t.Errorf("zero signal: phi = %v, want +Inf", phi)
	}
	if phi := (Estimate{SqNorm: 1, ExampleVar: 0}).NoiseScale(); phi != 0 {
		t.Errorf("zero noise: phi = %v, want 0", phi)
	}
	if phi := (Estimate{SqNorm: 2, ExampleVar: 6}).NoiseScale(); phi != 3 {
		t.Errorf("phi = %v, want 3", phi)
	}
}

// Property: tracker's smoothed phi always lies within the hull of observed
// raw ratios for constant streams.
func TestTrackerConstantStreamProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sq := 0.1 + rng.Float64()*10
		ev := rng.Float64() * 100
		tr := NewTracker(0.9)
		for i := 0; i < 50; i++ {
			tr.Observe(Estimate{SqNorm: sq, ExampleVar: ev})
		}
		want := ev / sq
		return math.Abs(tr.NoiseScale()-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the replica estimator's expected values are exact for K
// identical-mean Gaussian replicas — checked via a large-sample average at
// randomized parameters.
func TestFromReplicasUnbiasedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sqNorm := 1 + rng.Float64()*9
		exVar := 10 + rng.Float64()*500
		k := 2 + rng.Intn(6)
		perRepl := 8 << rng.Intn(4)
		mu := makeMu(16, sqNorm)
		var sumSq, sumVar float64
		const reps = 600
		for i := 0; i < reps; i++ {
			local := make([][]float64, k)
			for r := range local {
				local[r] = synthGrad(rng, mu, exVar, perRepl)
			}
			e, err := FromReplicas(local, perRepl)
			if err != nil {
				return false
			}
			sumSq += e.SqNorm
			sumVar += e.ExampleVar
		}
		meanSq := sumSq / reps
		meanVar := sumVar / reps
		return math.Abs(meanSq-sqNorm)/sqNorm < 0.35 &&
			math.Abs(meanVar-exVar)/exVar < 0.35
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
