package gns

import (
	"math/rand"
	"testing"
)

func BenchmarkFromReplicas(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	local := make([][]float64, 8)
	for r := range local {
		g := make([]float64, 1024)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		local[r] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromReplicas(local, 64)
	}
}

func BenchmarkDiffEstimator(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := make([]float64, 1024)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	d := NewDiffEstimator(128)
	d.Update(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Update(g)
	}
}
