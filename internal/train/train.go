// Package train is a real data-parallel SGD training substrate: replicas
// are goroutines, gradients are computed from actual per-example losses on
// synthetic datasets, synchronization goes through internal/allreduce, the
// gradient noise scale is measured from the real per-replica gradients
// (internal/gns), and the learning rate is scaled with AdaScale
// (internal/adascale).
//
// The Pollux paper's evaluation replays profiles of real DL training; this
// package provides the closest from-scratch equivalent: optimization
// problems whose statistical behaviour (gradient noise, batch-size
// efficiency, noise-scale growth during training) emerges from actual SGD
// rather than being scripted. It backs the end-to-end validation that
// EFFICIENCY_t(m) = (phi+m0)/(phi+m) predicts examples-to-target across
// batch sizes (the validate experiment and internal/train tests).
package train

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/adascale"
	"repro/internal/allreduce"
	"repro/internal/gns"
)

// Dataset is a supervised dataset with dense features.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// SynthesizeLinear generates a linear-regression dataset y = x·w* + eps
// with standard-normal features and Gaussian label noise, returning the
// dataset and the true weights.
func SynthesizeLinear(rng *rand.Rand, n, dim int, noise float64) (Dataset, []float64) {
	wTrue := make([]float64, dim)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64()
	}
	ds := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * wTrue[j]
		}
		ds.X[i] = x
		ds.Y[i] = dot + rng.NormFloat64()*noise
	}
	return ds, wTrue
}

// SynthesizeLogistic generates a binary classification dataset with
// labels in {-1, +1} from a logistic model with the given margin scale.
func SynthesizeLogistic(rng *rand.Rand, n, dim int, margin float64) (Dataset, []float64) {
	wTrue := make([]float64, dim)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64() * margin
	}
	ds := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * wTrue[j]
		}
		p := 1 / (1 + math.Exp(-dot))
		if rng.Float64() < p {
			ds.Y[i] = 1
		} else {
			ds.Y[i] = -1
		}
		ds.X[i] = x
	}
	return ds, wTrue
}

// Model defines a differentiable per-example loss.
type Model interface {
	// Loss evaluates the loss of weights w on one example.
	Loss(w, x []float64, y float64) float64
	// AddGrad accumulates the per-example gradient at w into dst.
	AddGrad(dst, w, x []float64, y float64)
}

// LeastSquares is 1/2 (x·w - y)^2.
type LeastSquares struct{}

// Loss implements Model.
func (LeastSquares) Loss(w, x []float64, y float64) float64 {
	r := dot(x, w) - y
	return r * r / 2
}

// AddGrad implements Model.
func (LeastSquares) AddGrad(dst, w, x []float64, y float64) {
	r := dot(x, w) - y
	for i := range dst {
		dst[i] += r * x[i]
	}
}

// Logistic is the logistic loss log(1 + exp(-y·x·w)) for y in {-1, +1}.
type Logistic struct{}

// Loss implements Model.
func (Logistic) Loss(w, x []float64, y float64) float64 {
	return math.Log1p(math.Exp(-y * dot(x, w)))
}

// AddGrad implements Model.
func (Logistic) AddGrad(dst, w, x []float64, y float64) {
	s := -y / (1 + math.Exp(y*dot(x, w)))
	for i := range dst {
		dst[i] += s * x[i]
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// FullLoss evaluates the mean loss over the whole dataset.
func FullLoss(m Model, w []float64, ds Dataset) float64 {
	sum := 0.0
	for i := range ds.X {
		sum += m.Loss(w, ds.X[i], ds.Y[i])
	}
	return sum / float64(ds.Len())
}

// Config controls a data-parallel SGD run.
type Config struct {
	// Replicas is the data-parallel width K (default 1).
	Replicas int
	// Batch is the global batch size m, split evenly across replicas;
	// it must be divisible by Replicas.
	Batch int
	// M0 and Eta0 anchor AdaScale scaling (defaults: Batch and 0.1).
	M0   int
	Eta0 float64
	// UseAdaScale scales the learning rate by the measured gain; when
	// false the base rate is used unchanged.
	UseAdaScale bool
	// Sync selects the synchronization collective: "ring" (default) or
	// "server".
	Sync string
	// MaxSteps bounds the run (default 10000). TargetLoss, when > 0,
	// stops as soon as the full-data loss reaches it (checked every
	// EvalEvery steps, default 20).
	MaxSteps   int
	TargetLoss float64
	EvalEvery  int
	// Momentum applies heavy-ball momentum to the averaged gradient
	// (0 disables). WeightDecay adds L2 regularization.
	Momentum    float64
	WeightDecay float64
	// GNSDecay smooths the measured noise scale (default 0.98).
	GNSDecay float64
	Seed     int64
}

func (c *Config) defaults() error {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Batch%c.Replicas != 0 {
		return fmt.Errorf("train: batch %d not divisible by %d replicas", c.Batch, c.Replicas)
	}
	if c.M0 <= 0 {
		c.M0 = c.Batch
	}
	if c.Eta0 <= 0 {
		c.Eta0 = 0.1
	}
	if c.Sync == "" {
		c.Sync = "ring"
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10000
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 20
	}
	if c.GNSDecay <= 0 || c.GNSDecay >= 1 {
		c.GNSDecay = 0.98
	}
	return nil
}

// Stats reports a run's outcome.
type Stats struct {
	Steps             int
	ExamplesProcessed int64
	FinalLoss         float64
	ReachedTarget     bool
	// Phi is the final smoothed gradient noise scale (per-example
	// variance over squared gradient norm).
	Phi float64
	// PhiTrace samples the smoothed phi at every evaluation point.
	PhiTrace []float64
	// LossTrace samples the full-data loss at every evaluation point.
	LossTrace []float64
	// ScaleInvIters is the AdaScale scale-invariant iteration count.
	ScaleInvIters float64
}

// Run trains the model on the dataset with data-parallel SGD and returns
// the final weights and statistics. Training is deterministic for a given
// config.
func Run(model Model, ds Dataset, w0 []float64, cfg Config) ([]float64, Stats, error) {
	if err := cfg.defaults(); err != nil {
		return nil, Stats{}, err
	}
	if ds.Len() == 0 {
		return nil, Stats{}, fmt.Errorf("train: empty dataset")
	}
	dim := len(w0)
	w := append([]float64(nil), w0...)

	k := cfg.Replicas
	perReplica := cfg.Batch / k
	var reducer allreduce.Reducer
	switch cfg.Sync {
	case "ring":
		reducer = allreduce.NewRing(k)
	case "server":
		reducer = allreduce.NewCentralServer(k)
	default:
		return nil, Stats{}, fmt.Errorf("train: unknown sync %q", cfg.Sync)
	}

	rngs := make([]*rand.Rand, k)
	for r := range rngs {
		rngs[r] = rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
	}

	tracker := gns.NewTracker(cfg.GNSDecay)
	diff := gns.NewDiffEstimator(cfg.Batch)
	sched := adascale.NewSchedule(cfg.M0, cfg.Eta0)

	stats := Stats{}
	locals := make([][]float64, k)
	for r := range locals {
		locals[r] = make([]float64, dim)
	}
	velocity := make([]float64, dim)

	for step := 0; step < cfg.MaxSteps; step++ {
		// Each replica computes its local mini-batch gradient.
		var wg sync.WaitGroup
		for r := 0; r < k; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				g := locals[r]
				for i := range g {
					g[i] = 0
				}
				rng := rngs[r]
				for b := 0; b < perReplica; b++ {
					idx := rng.Intn(ds.Len())
					model.AddGrad(g, w, ds.X[idx], ds.Y[idx])
				}
				inv := 1 / float64(perReplica)
				for i := range g {
					g[i] *= inv
				}
			}(r)
		}
		wg.Wait()

		// Measure gradient statistics from the real per-replica spread
		// (Sec. 3.1); fall back to the differenced estimator with one
		// replica.
		if k >= 2 {
			if est, err := gns.FromReplicas(locals, perReplica); err == nil {
				tracker.Observe(est)
			}
		}

		// Synchronize: all replicas all-reduce into the same average.
		avg := locals[0]
		if k >= 2 {
			var swg sync.WaitGroup
			for r := 0; r < k; r++ {
				swg.Add(1)
				go func(r int) {
					defer swg.Done()
					reducer.AllReduce(r, locals[r])
				}(r)
			}
			swg.Wait()
		}
		if k == 1 {
			if est, err := diff.Update(avg); err == nil {
				tracker.Observe(est)
			}
		}

		// AdaScale learning rate and SGD update (heavy-ball momentum and
		// L2 weight decay when configured).
		phi := tracker.NoiseScale()
		lr := cfg.Eta0
		if cfg.UseAdaScale {
			lr = sched.Step(phi, cfg.Batch)
		} else {
			sched.Step(0, cfg.Batch)
		}
		for i := range w {
			g := avg[i] + cfg.WeightDecay*w[i]
			if cfg.Momentum > 0 {
				velocity[i] = cfg.Momentum*velocity[i] + g
				g = velocity[i]
			}
			w[i] -= lr * g
		}
		stats.Steps++
		stats.ExamplesProcessed += int64(cfg.Batch)

		if (step+1)%cfg.EvalEvery == 0 {
			loss := FullLoss(model, w, ds)
			stats.LossTrace = append(stats.LossTrace, loss)
			stats.PhiTrace = append(stats.PhiTrace, phi)
			if cfg.TargetLoss > 0 && loss <= cfg.TargetLoss {
				stats.ReachedTarget = true
				break
			}
		}
	}
	stats.FinalLoss = FullLoss(model, w, ds)
	if cfg.TargetLoss > 0 && stats.FinalLoss <= cfg.TargetLoss {
		stats.ReachedTarget = true
	}
	stats.Phi = tracker.NoiseScale()
	stats.ScaleInvIters = sched.Progress()
	return w, stats, nil
}
