package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestSynthesizeLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, wTrue := SynthesizeLinear(rng, 100, 8, 0.1)
	if ds.Len() != 100 || len(wTrue) != 8 || len(ds.X[0]) != 8 {
		t.Fatalf("shapes wrong: n=%d dim=%d", ds.Len(), len(ds.X[0]))
	}
	// Labels correlate with x·wTrue.
	loss := FullLoss(LeastSquares{}, wTrue, ds)
	zero := FullLoss(LeastSquares{}, make([]float64, 8), ds)
	if loss >= zero {
		t.Errorf("true weights loss %v not below zero-weights loss %v", loss, zero)
	}
}

func TestLeastSquaresGradMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := []float64{0.5, -1.2, 2.0}
	w := []float64{0.1, 0.3, -0.7}
	y := 0.9
	_ = rng
	g := make([]float64, 3)
	LeastSquares{}.AddGrad(g, w, x, y)
	const h = 1e-6
	for i := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[i] += h
		wm[i] -= h
		num := (LeastSquares{}.Loss(wp, x, y) - LeastSquares{}.Loss(wm, x, y)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-5 {
			t.Errorf("grad[%d] = %v, numeric %v", i, g[i], num)
		}
	}
}

func TestLogisticGradMatchesNumeric(t *testing.T) {
	x := []float64{1.5, -0.2}
	w := []float64{-0.4, 0.9}
	y := -1.0
	g := make([]float64, 2)
	Logistic{}.AddGrad(g, w, x, y)
	const h = 1e-6
	for i := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[i] += h
		wm[i] -= h
		num := (Logistic{}.Loss(wp, x, y) - Logistic{}.Loss(wm, x, y)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-5 {
			t.Errorf("grad[%d] = %v, numeric %v", i, g[i], num)
		}
	}
}

func TestRunConvergesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, _ := SynthesizeLinear(rng, 2048, 16, 0.2)
	w0 := make([]float64, 16)
	noiseFloor := 0.2 * 0.2 / 2
	w, stats, err := Run(LeastSquares{}, ds, w0, Config{
		Replicas: 4, Batch: 64, Eta0: 0.05, UseAdaScale: true,
		TargetLoss: noiseFloor * 1.3, MaxSteps: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReachedTarget {
		t.Fatalf("did not reach target: final loss %v", stats.FinalLoss)
	}
	if len(w) != 16 {
		t.Fatalf("weights length %d", len(w))
	}
	if stats.Phi <= 0 {
		t.Errorf("measured phi = %v, want > 0", stats.Phi)
	}
}

func TestRunConvergesLogistic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, _ := SynthesizeLogistic(rng, 2048, 8, 2.0)
	w0 := make([]float64, 8)
	_, stats, err := Run(Logistic{}, ds, w0, Config{
		Replicas: 2, Batch: 32, Eta0: 0.2, UseAdaScale: true,
		MaxSteps: 1500, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := FullLoss(Logistic{}, w0, ds)
	if stats.FinalLoss >= start*0.8 {
		t.Errorf("loss barely moved: %v -> %v", start, stats.FinalLoss)
	}
}

func TestRunSingleReplicaUsesDiffEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, _ := SynthesizeLinear(rng, 1024, 8, 0.5)
	_, stats, err := Run(LeastSquares{}, ds, make([]float64, 8), Config{
		Replicas: 1, Batch: 16, Eta0: 0.05, UseAdaScale: true,
		MaxSteps: 600, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Phi <= 0 {
		t.Errorf("single-replica phi = %v, want > 0 (differenced estimator)", stats.Phi)
	}
}

func TestRunSyncMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds, _ := SynthesizeLinear(rng, 512, 8, 0.3)
	run := func(sync string) float64 {
		_, stats, err := Run(LeastSquares{}, ds, make([]float64, 8), Config{
			Replicas: 4, Batch: 32, Eta0: 0.05,
			MaxSteps: 300, Seed: 7, Sync: sync,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.FinalLoss
	}
	ring, server := run("ring"), run("server")
	// Identical seeds and exact averaging: the two collectives must give
	// the same trajectory up to floating-point association.
	if math.Abs(ring-server) > 1e-6*math.Max(1, math.Abs(ring)) {
		t.Errorf("ring loss %v != server loss %v", ring, server)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ds := Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, _, err := Run(LeastSquares{}, ds, []float64{0}, Config{Replicas: 3, Batch: 32}); err == nil {
		t.Error("indivisible batch accepted")
	}
	if _, _, err := Run(LeastSquares{}, Dataset{}, []float64{0}, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, _, err := Run(LeastSquares{}, ds, []float64{0}, Config{Sync: "smoke"}); err == nil {
		t.Error("unknown sync accepted")
	}
}

func TestPhiGrowsDuringTraining(t *testing.T) {
	// Sec. 2.2: the noise scale tends to grow during training as the
	// signal (the true gradient) shrinks near the optimum while the
	// per-example noise stays. Verify this emerges from real SGD.
	rng := rand.New(rand.NewSource(8))
	ds, _ := SynthesizeLinear(rng, 4096, 16, 0.5)
	_, stats, err := Run(LeastSquares{}, ds, make([]float64, 16), Config{
		Replicas: 8, Batch: 64, Eta0: 0.05, UseAdaScale: false,
		MaxSteps: 2000, EvalEvery: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PhiTrace) < 4 {
		t.Fatalf("phi trace too short: %d", len(stats.PhiTrace))
	}
	early := stats.PhiTrace[1] // skip the cold EMA
	late := stats.PhiTrace[len(stats.PhiTrace)-1]
	if late <= early*2 {
		t.Errorf("phi did not grow during training: early %v late %v", early, late)
	}
}

// The end-to-end validation of Eqn. 7 on real SGD: the ratio of examples
// needed to reach a fixed loss at batch m vs batch m0 should approximate
// 1/EFFICIENCY(phi, m0, m) with phi measured during training.
func TestEfficiencyPredictsExamplesToTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence experiment")
	}
	rng := rand.New(rand.NewSource(9))
	const dim = 16
	ds, _ := SynthesizeLinear(rng, 8192, dim, 1.0)
	target := 1.0*1.0/2*1.2 + 0.03 // 20% above the noise floor plus slack

	runAt := func(batch int) Stats {
		_, stats, err := Run(LeastSquares{}, ds, make([]float64, dim), Config{
			Replicas: 4, Batch: batch, M0: 16, Eta0: 0.02, UseAdaScale: true,
			TargetLoss: target, MaxSteps: 20000, EvalEvery: 10, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ReachedTarget {
			t.Fatalf("batch %d never reached target (loss %v)", batch, stats.FinalLoss)
		}
		return stats
	}

	base := runAt(16)
	big := runAt(128)

	// Predicted examples ratio from Eqn. 7 with the measured phi.
	phi := (base.Phi + big.Phi) / 2
	eff := core.Efficiency(phi, 16, 128)
	predicted := 1 / eff
	actual := float64(big.ExamplesProcessed) / float64(base.ExamplesProcessed)

	if actual < 1 {
		t.Logf("large batch needed fewer examples (%v); phi very large", actual)
	}
	t.Logf("examples: m0=16 -> %d, m=128 -> %d; actual ratio %.2f, Eqn.7 predicted %.2f (phi %.0f)",
		base.ExamplesProcessed, big.ExamplesProcessed, actual, predicted, phi)
	ratio := actual / predicted
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("examples ratio %v vs Eqn.7 prediction %v (phi=%v): off by %vx",
			actual, predicted, phi, ratio)
	}
}

func TestRunWithMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds, _ := SynthesizeLinear(rng, 2048, 16, 0.2)
	noiseFloor := 0.2 * 0.2 / 2
	_, stats, err := Run(LeastSquares{}, ds, make([]float64, 16), Config{
		Replicas: 4, Batch: 64, Eta0: 0.01, UseAdaScale: true,
		Momentum: 0.9, TargetLoss: noiseFloor * 1.3, MaxSteps: 5000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReachedTarget {
		t.Errorf("momentum run did not converge: final loss %v", stats.FinalLoss)
	}
}

func TestRunWithWeightDecayShrinksNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds, _ := SynthesizeLinear(rng, 1024, 8, 0.2)
	norm := func(decay float64) float64 {
		w, _, err := Run(LeastSquares{}, ds, make([]float64, 8), Config{
			Replicas: 2, Batch: 32, Eta0: 0.05,
			WeightDecay: decay, MaxSteps: 800, Seed: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range w {
			s += v * v
		}
		return s
	}
	plain, decayed := norm(0), norm(0.1)
	if decayed >= plain {
		t.Errorf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}
