// Package allreduce implements the gradient-synchronization collectives
// that distributed data-parallel training relies on (Sec. 2.1 of the
// Pollux paper cites all-reduce as PyTorch's synchronization algorithm and
// parameter servers as the alternative). Replicas are goroutines and links
// are channels, so the package provides the real synchronization
// semantics — bulk-synchronous averaging with barrier behaviour — that the
// training substrate (internal/train) builds on.
//
// Two Reducer implementations are provided:
//
//   - Ring: the bandwidth-optimal ring all-reduce (reduce-scatter followed
//     by all-gather, 2(K-1) steps over K chunks);
//   - CentralServer: a parameter-server-style central aggregator.
//
// Both average the K replicas' vectors element-wise and deliver the same
// result to every replica.
package allreduce

import (
	"fmt"
	"sync"
)

// Reducer synchronizes gradient vectors across a fixed group of replicas.
// AllReduce must be called concurrently by every rank in [0, K); each call
// blocks until the group's average is available and then overwrites data
// with it. Vectors must have equal lengths across ranks.
type Reducer interface {
	// Ranks returns the group size K.
	Ranks() int
	// AllReduce averages data across the group in place.
	AllReduce(rank int, data []float64) error
}

// Ring is a channel-based ring all-reduce.
type Ring struct {
	k int
	// links[i] carries chunks from rank i to rank (i+1) mod k.
	links []chan []float64
}

// NewRing creates a ring all-reduce group for k replicas.
func NewRing(k int) *Ring {
	if k < 1 {
		panic("allreduce: group size must be >= 1")
	}
	links := make([]chan []float64, k)
	for i := range links {
		links[i] = make(chan []float64, 1)
	}
	return &Ring{k: k, links: links}
}

// Ranks returns the group size.
func (r *Ring) Ranks() int { return r.k }

// AllReduce performs the ring algorithm: the vector is split into K
// chunks; in the reduce-scatter phase each rank accumulates one chunk's
// full sum, and in the all-gather phase the finished chunks circulate
// around the ring. Finally each rank divides by K to average.
func (r *Ring) AllReduce(rank int, data []float64) error {
	if rank < 0 || rank >= r.k {
		return fmt.Errorf("allreduce: rank %d out of range [0, %d)", rank, r.k)
	}
	if r.k == 1 {
		return nil
	}
	n := len(data)
	bounds := chunkBounds(n, r.k)
	send := r.links[rank]
	recv := r.links[(rank-1+r.k)%r.k]

	// Reduce-scatter: step s sends chunk (rank - s) and receives chunk
	// (rank - s - 1), accumulating into it.
	for s := 0; s < r.k-1; s++ {
		sendIdx := mod(rank-s, r.k)
		recvIdx := mod(rank-s-1, r.k)
		lo, hi := bounds[sendIdx], bounds[sendIdx+1]
		out := make([]float64, hi-lo)
		copy(out, data[lo:hi])
		send <- out
		in := <-recv
		lo, hi = bounds[recvIdx], bounds[recvIdx+1]
		for i := range in {
			data[lo+i] += in[i]
		}
	}
	// All-gather: step s sends the completed chunk (rank + 1 - s) and
	// receives chunk (rank - s), overwriting it.
	for s := 0; s < r.k-1; s++ {
		sendIdx := mod(rank+1-s, r.k)
		recvIdx := mod(rank-s, r.k)
		lo, hi := bounds[sendIdx], bounds[sendIdx+1]
		out := make([]float64, hi-lo)
		copy(out, data[lo:hi])
		send <- out
		in := <-recv
		lo, hi = bounds[recvIdx], bounds[recvIdx+1]
		copy(data[lo:hi], in)
	}
	// Average.
	inv := 1 / float64(r.k)
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// chunkBounds splits n elements into k contiguous chunks (some possibly
// empty when n < k), returning k+1 boundary indices.
func chunkBounds(n, k int) []int {
	b := make([]int, k+1)
	base, rem := n/k, n%k
	for i := 0; i < k; i++ {
		b[i+1] = b[i] + base
		if i < rem {
			b[i+1]++
		}
	}
	return b
}

func mod(a, m int) int {
	return ((a % m) + m) % m
}

// CentralServer is a parameter-server-style aggregator: every rank pushes
// its vector, a barrier fires once all K have arrived, the average is
// computed once, and all ranks pull the result.
type CentralServer struct {
	k int

	mu     sync.Mutex
	cond   *sync.Cond
	sum    []float64
	pushed int
	round  int
	avg    []float64
}

// NewCentralServer creates a server for k replicas.
func NewCentralServer(k int) *CentralServer {
	if k < 1 {
		panic("allreduce: group size must be >= 1")
	}
	s := &CentralServer{k: k}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Ranks returns the group size.
func (s *CentralServer) Ranks() int { return s.k }

// AllReduce pushes the rank's vector and blocks until the round's average
// is ready, then copies it into data.
func (s *CentralServer) AllReduce(rank int, data []float64) error {
	if rank < 0 || rank >= s.k {
		return fmt.Errorf("allreduce: rank %d out of range [0, %d)", rank, s.k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	myRound := s.round
	if s.sum == nil {
		s.sum = make([]float64, len(data))
	}
	if len(s.sum) != len(data) {
		return fmt.Errorf("allreduce: vector length %d != %d", len(data), len(s.sum))
	}
	for i, v := range data {
		s.sum[i] += v
	}
	s.pushed++
	if s.pushed == s.k {
		avg := make([]float64, len(s.sum))
		inv := 1 / float64(s.k)
		for i, v := range s.sum {
			avg[i] = v * inv
		}
		s.avg = avg
		s.sum = nil
		s.pushed = 0
		s.round++
		s.cond.Broadcast()
	} else {
		for s.round == myRound {
			s.cond.Wait()
		}
	}
	copy(data, s.avg)
	return nil
}
