package allreduce

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runGroup executes one all-reduce across k goroutines and returns each
// rank's resulting vector.
func runGroup(t *testing.T, r Reducer, vectors [][]float64) [][]float64 {
	t.Helper()
	k := r.Ranks()
	out := make([][]float64, k)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			data := make([]float64, len(vectors[rank]))
			copy(data, vectors[rank])
			errs[rank] = r.AllReduce(rank, data)
			out[rank] = data
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return out
}

func expectAverage(t *testing.T, vectors, results [][]float64) {
	t.Helper()
	k := len(vectors)
	dim := len(vectors[0])
	want := make([]float64, dim)
	for _, v := range vectors {
		for i := range v {
			want[i] += v[i]
		}
	}
	for i := range want {
		want[i] /= float64(k)
	}
	for rank, res := range results {
		for i := range res {
			if math.Abs(res[i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d elem %d = %v, want %v", rank, i, res[i], want[i])
			}
		}
	}
}

func randVectors(rng *rand.Rand, k, dim int) [][]float64 {
	vs := make([][]float64, k)
	for r := range vs {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		vs[r] = v
	}
	return vs
}

func TestRingAveragesKnownVectors(t *testing.T) {
	vectors := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	results := runGroup(t, NewRing(3), vectors)
	expectAverage(t, vectors, results)
}

func TestRingSingleRankNoOp(t *testing.T) {
	r := NewRing(1)
	data := []float64{1, 2, 3}
	if err := r.AllReduce(0, data); err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 || data[2] != 3 {
		t.Errorf("single-rank all-reduce changed data: %v", data)
	}
}

func TestRingRankOutOfRange(t *testing.T) {
	r := NewRing(2)
	if err := r.AllReduce(2, []float64{1}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestRingVectorShorterThanGroup(t *testing.T) {
	// dim < K exercises empty chunks.
	vectors := randVectors(rand.New(rand.NewSource(3)), 5, 3)
	results := runGroup(t, NewRing(5), vectors)
	expectAverage(t, vectors, results)
}

func TestRingRepeatedRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRing(4)
	for round := 0; round < 10; round++ {
		vectors := randVectors(rng, 4, 17)
		results := runGroup(t, r, vectors)
		expectAverage(t, vectors, results)
	}
}

// Property: ring all-reduce equals the arithmetic average for random
// group sizes and dimensions.
func TestRingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(7)
		dim := 1 + rng.Intn(64)
		vectors := randVectors(rng, k, dim)
		r := NewRing(k)

		out := make([][]float64, k)
		var wg sync.WaitGroup
		for rank := 0; rank < k; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				data := append([]float64(nil), vectors[rank]...)
				if err := r.AllReduce(rank, data); err == nil {
					out[rank] = data
				}
			}(rank)
		}
		wg.Wait()

		want := make([]float64, dim)
		for _, v := range vectors {
			for i := range v {
				want[i] += v[i] / float64(k)
			}
		}
		for _, res := range out {
			if res == nil {
				return false
			}
			for i := range res {
				if math.Abs(res[i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCentralServerAverages(t *testing.T) {
	vectors := randVectors(rand.New(rand.NewSource(5)), 6, 33)
	results := runGroup(t, NewCentralServer(6), vectors)
	expectAverage(t, vectors, results)
}

func TestCentralServerRepeatedRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewCentralServer(3)
	for round := 0; round < 20; round++ {
		vectors := randVectors(rng, 3, 8)
		results := runGroup(t, s, vectors)
		expectAverage(t, vectors, results)
	}
}

func TestCentralServerRankOutOfRange(t *testing.T) {
	s := NewCentralServer(2)
	if err := s.AllReduce(-1, []float64{1}); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestRingMatchesCentralServer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vectors := randVectors(rng, 4, 29)
	ring := runGroup(t, NewRing(4), vectors)
	central := runGroup(t, NewCentralServer(4), vectors)
	for i := range ring[0] {
		if math.Abs(ring[0][i]-central[0][i]) > 1e-9 {
			t.Fatalf("elem %d: ring %v vs central %v", i, ring[0][i], central[0][i])
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRing(0) },
		func() { NewCentralServer(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for k=0")
				}
			}()
			f()
		}()
	}
}

func BenchmarkRingAllReduce8x4096(b *testing.B) {
	const k, dim = 8, 4096
	r := NewRing(k)
	vectors := randVectors(rand.New(rand.NewSource(1)), k, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for rank := 0; rank < k; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				data := append([]float64(nil), vectors[rank]...)
				r.AllReduce(rank, data)
			}(rank)
		}
		wg.Wait()
	}
}

func BenchmarkCentralServerAllReduce8x4096(b *testing.B) {
	const k, dim = 8, 4096
	s := NewCentralServer(k)
	vectors := randVectors(rand.New(rand.NewSource(2)), k, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for rank := 0; rank < k; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				data := append([]float64(nil), vectors[rank]...)
				s.AllReduce(rank, data)
			}(rank)
		}
		wg.Wait()
	}
}
