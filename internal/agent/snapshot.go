package agent

// Snapshot/Restore for Agent: a restarted scheduler service must not lose
// the fitted θsys models or the profiled observations behind them, or
// every job would re-enter the optimistic-prior cold-start phase and the
// resumed trace would diverge from the uninterrupted one.
//
// The profile map is flattened to a slice sorted by configuration key, so
// the canonical JSON encoding is byte-stable and no map order can leak
// into the checkpoint file.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gns"
)

// ProfilePoint is one profiled configuration's accumulated observations.
type ProfilePoint struct {
	GPUs     int
	Nodes    int
	Batch    int
	SumTIter float64
	Count    int
}

// Snapshot is the full serializable state of an Agent.
type Snapshot struct {
	M0             int
	Eta0           float64
	MaxBatchPerGPU int
	MaxBatchGlobal int

	// Profile holds the throughput observations, sorted by
	// (GPUs, Nodes, Batch).
	Profile []ProfilePoint `json:",omitempty"`

	Explored   core.Exploration
	Fitted     core.Params
	HasFit     bool
	FitConfigs int
	TotalObs   int
	FitObs     int

	Phi     gns.TrackerState
	LastPhi float64
	Batch   int
}

// Snapshot captures the agent's complete restorable state.
func (a *Agent) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Snapshot{
		M0:             a.m0,
		Eta0:           a.eta0,
		MaxBatchPerGPU: a.maxBatchPerGPU,
		MaxBatchGlobal: a.maxBatchGlobal,
		Explored:       a.explored,
		Fitted:         a.fitted,
		HasFit:         a.hasFit,
		FitConfigs:     a.fitConfigs,
		TotalObs:       a.totalObs,
		FitObs:         a.fitObs,
		Phi:            a.phi.State(),
		LastPhi:        a.lastPhi,
		Batch:          a.batch,
	}
	//pollux:order-ok profile entries are appended in any order, then fully sorted by (GPUs, Nodes, Batch) below
	for k, e := range a.profile {
		s.Profile = append(s.Profile, ProfilePoint{
			GPUs: k.gpus, Nodes: k.nodes, Batch: k.batch,
			SumTIter: e.sumTIter, Count: e.count,
		})
	}
	sort.Slice(s.Profile, func(i, j int) bool {
		pi, pj := s.Profile[i], s.Profile[j]
		if pi.GPUs != pj.GPUs {
			return pi.GPUs < pj.GPUs
		}
		if pi.Nodes != pj.Nodes {
			return pi.Nodes < pj.Nodes
		}
		return pi.Batch < pj.Batch
	})
	return s
}

// FromSnapshot rebuilds an Agent from a snapshot. The restored agent's
// next Refit, Report, and TuneBatch calls behave exactly as the
// snapshotted one's would have.
func FromSnapshot(s *Snapshot) (*Agent, error) {
	if s.M0 <= 0 {
		return nil, fmt.Errorf("agent: snapshot has non-positive m0 %d", s.M0)
	}
	phi, err := gns.RestoreTracker(s.Phi)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		m0:             s.M0,
		eta0:           s.Eta0,
		maxBatchPerGPU: s.MaxBatchPerGPU,
		maxBatchGlobal: s.MaxBatchGlobal,
		profile:        make(map[profileKey]*profileEntry, len(s.Profile)),
		explored:       s.Explored,
		fitted:         s.Fitted,
		hasFit:         s.HasFit,
		fitConfigs:     s.FitConfigs,
		totalObs:       s.TotalObs,
		fitObs:         s.FitObs,
		phi:            phi,
		lastPhi:        s.LastPhi,
		batch:          s.Batch,
	}
	for _, p := range s.Profile {
		k := profileKey{p.GPUs, p.Nodes, p.Batch}
		if _, dup := a.profile[k]; dup {
			return nil, fmt.Errorf("agent: snapshot profile has duplicate configuration %+v", k)
		}
		a.profile[k] = &profileEntry{sumTIter: p.SumTIter, count: p.Count}
	}
	return a, nil
}
