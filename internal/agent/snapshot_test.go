package agent

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gns"
)

// feedSnap profiles a deterministic batch of observations into an agent.
func feedSnap(a *Agent, base float64) {
	for k := 1; k <= 4; k++ {
		for rep := 0; rep < 3; rep++ {
			nodes := (k + 1) / 2
			a.RecordSample(core.Placement{GPUs: k, Nodes: nodes}, 128*k, base/float64(k)+0.01*float64(rep))
		}
	}
	a.ObserveGradients(gns.Estimate{SqNorm: 2.0 * base, ExampleVar: 40 * base})
	a.ObserveGradients(gns.Estimate{SqNorm: 1.8 * base, ExampleVar: 42 * base})
}

// TestAgentSnapshotRoundTrip: an agent restored from a JSON-serialized
// snapshot must report the same model, refit at the same cadence, and
// tune the same batches as the original.
func TestAgentSnapshotRoundTrip(t *testing.T) {
	a := New(128, 0.1, 256, 0)
	feedSnap(a, 0.5)
	a.Refit()
	a.TuneBatch(core.Placement{GPUs: 2, Nodes: 1})

	raw, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}

	// Same further observations must produce identical fits and tunes.
	feedSnap(a, 0.45)
	feedSnap(b, 0.45)
	a.Refit()
	b.Refit()
	if !reflect.DeepEqual(a.Report(), b.Report()) {
		t.Fatalf("restored agent reports diverged:\n%+v\nvs\n%+v", a.Report(), b.Report())
	}
	ba, lra := a.TuneBatch(core.Placement{GPUs: 4, Nodes: 2})
	bb, lrb := b.TuneBatch(core.Placement{GPUs: 4, Nodes: 2})
	if ba != bb || !reflect.DeepEqual(lra, lrb) {
		t.Fatalf("restored agent tunes diverged: (%d, %v) vs (%d, %v)", ba, lra, bb, lrb)
	}
	if a.GPUCap() != b.GPUCap() || a.SampleCount() != b.SampleCount() {
		t.Fatalf("exploration state diverged: cap %d vs %d, configs %d vs %d",
			a.GPUCap(), b.GPUCap(), a.SampleCount(), b.SampleCount())
	}
}

// TestAgentSnapshotRejectsCorruptState: invalid snapshots fail loudly.
func TestAgentSnapshotRejectsCorruptState(t *testing.T) {
	a := New(64, 0.1, 128, 0)
	feedSnap(a, 0.3)
	s := a.Snapshot()

	bad := *s
	bad.M0 = 0
	if _, err := FromSnapshot(&bad); err == nil {
		t.Fatal("snapshot with m0=0 accepted, want loud error")
	}

	bad2 := *s
	bad2.Phi.Decay = 1.5
	if _, err := FromSnapshot(&bad2); err == nil {
		t.Fatal("snapshot with invalid tracker decay accepted, want loud error")
	}

	bad3 := *s
	bad3.Profile = append(append([]ProfilePoint(nil), s.Profile...), s.Profile[0])
	if _, err := FromSnapshot(&bad3); err == nil {
		t.Fatal("snapshot with duplicate profile configuration accepted, want loud error")
	}
}
