package agent

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gns"
	"repro/internal/models"
)

func newTestAgent() *Agent {
	s := models.ByName("resnet18")
	return New(s.M0, s.Eta0, s.MaxBatchPerGPU, s.MaxBatchGlobal)
}

// feed profiles the agent with ground-truth iteration times (plus optional
// noise) across placements and batch sizes.
func feed(a *Agent, rng *rand.Rand, truth core.Params, noise float64, pls []core.Placement, batches []int) {
	for _, pl := range pls {
		for _, m := range batches {
			ti := truth.TIter(pl, float64(m))
			if noise > 0 {
				ti *= 1 + noise*(rng.Float64()*2-1)
			}
			a.RecordSample(pl, m, ti)
		}
	}
}

func TestNewPanicsOnBadM0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(m0=0) did not panic")
		}
	}()
	New(0, 0.1, 256, 0)
}

func TestRecordSampleIgnoresInvalid(t *testing.T) {
	a := newTestAgent()
	a.RecordSample(core.Placement{GPUs: 0, Nodes: 0}, 128, 0.1)
	a.RecordSample(core.SingleGPU, 0, 0.1)
	a.RecordSample(core.SingleGPU, 128, -1)
	if a.SampleCount() != 0 {
		t.Errorf("invalid samples recorded: %d", a.SampleCount())
	}
}

func TestExplorationGrowsWithSamples(t *testing.T) {
	a := newTestAgent()
	if cap := a.GPUCap(); cap != 2 {
		t.Errorf("initial GPU cap = %d, want 2", cap)
	}
	a.RecordSample(core.Placement{GPUs: 2, Nodes: 1}, 128, 0.1)
	if cap := a.GPUCap(); cap != 4 {
		t.Errorf("GPU cap after 2 GPUs = %d, want 4", cap)
	}
	a.RecordSample(core.Placement{GPUs: 8, Nodes: 2}, 512, 0.1)
	if cap := a.GPUCap(); cap != 16 {
		t.Errorf("GPU cap after 8 GPUs = %d, want 16", cap)
	}
	e := a.Explored()
	if e.MaxGPUs != 8 || e.MaxNodes != 2 {
		t.Errorf("explored = %+v, want {8 2}", e)
	}
}

func TestReportBeforeAnyDataIsOptimistic(t *testing.T) {
	a := newTestAgent()
	a.SetPhi(0)
	m := a.Report()
	// Prior-frozen sync params: perfect scaling assumed.
	if m.Params.AlphaSyncLocal != 0 || m.Params.AlphaSyncNode != 0 {
		t.Errorf("sync params not frozen: %+v", m.Params)
	}
	if m.M0 != 128 {
		t.Errorf("m0 = %d, want 128", m.M0)
	}
}

func TestRefitRecoversTruthFromProfiles(t *testing.T) {
	s := models.ByName("resnet18")
	a := newTestAgent()
	rng := rand.New(rand.NewSource(4))
	pls := []core.Placement{
		{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 1},
		{GPUs: 8, Nodes: 2}, {GPUs: 12, Nodes: 3}, {GPUs: 16, Nodes: 4},
	}
	feed(a, rng, s.Truth, 0.03, pls, []int{128, 256, 512, 1024, 2048})
	a.Refit()
	m := a.Report()
	for _, pl := range []core.Placement{{GPUs: 4, Nodes: 1}, {GPUs: 16, Nodes: 4}} {
		want := s.Truth.TIter(pl, 1024)
		got := m.Params.TIter(pl, 1024)
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("TIter(%v): fitted %v vs truth %v (>20%%)", pl, got, want)
		}
	}
}

func TestRepeatedSamplesAveraged(t *testing.T) {
	a := newTestAgent()
	for i := 0; i < 10; i++ {
		a.RecordSample(core.SingleGPU, 128, 0.08+0.01*float64(i%2)) // alternate 0.08/0.09
	}
	if a.SampleCount() != 1 {
		t.Errorf("distinct configs = %d, want 1", a.SampleCount())
	}
	a.Refit()
	m := a.Report()
	got := m.Params.TIter(core.SingleGPU, 128)
	if math.Abs(got-0.085) > 0.01 {
		t.Errorf("fitted TIter = %v, want ~0.085 (average)", got)
	}
}

func TestTuneBatchGrowsWithPhi(t *testing.T) {
	s := models.ByName("resnet18")
	a := newTestAgent()
	rng := rand.New(rand.NewSource(9))
	pls := []core.Placement{{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 1}, {GPUs: 8, Nodes: 2}, {GPUs: 16, Nodes: 4}}
	feed(a, rng, s.Truth, 0, pls, []int{128, 256, 512, 1024, 2048, 4096})
	a.Refit()

	pl := core.Placement{GPUs: 16, Nodes: 4}
	a.SetPhi(s.Phi(0.1))
	early, _ := a.TuneBatch(pl)
	a.SetPhi(s.Phi(0.9))
	late, lrLate := a.TuneBatch(pl)
	if late <= early {
		t.Errorf("tuned batch did not grow with phi: early=%d late=%d", early, late)
	}
	if a.Batch() != late {
		t.Errorf("Batch() = %d, want last tuned %d", a.Batch(), late)
	}
	// AdaScale LR for a larger batch must be >= eta0 and <= linear rule.
	if lrLate < s.Eta0 || lrLate > s.Eta0*float64(late)/float64(s.M0) {
		t.Errorf("lr = %v outside [eta0, linear] bounds", lrLate)
	}
}

func TestTuneBatchInfeasibleFallsBackToM0(t *testing.T) {
	// m0 = 512 but only one GPU with 256 capacity: infeasible, stay at m0.
	a := New(512, 0.1, 256, 0)
	batch, _ := a.TuneBatch(core.SingleGPU)
	if batch != 512 {
		t.Errorf("batch = %d, want m0 fallback 512", batch)
	}
}

func TestObserveGradientsFeedsPhi(t *testing.T) {
	a := newTestAgent()
	for i := 0; i < 20; i++ {
		a.ObserveGradients(gns.Estimate{SqNorm: 1, ExampleVar: 500})
	}
	m := a.Report()
	if math.Abs(m.Phi-500) > 50 {
		t.Errorf("phi = %v, want ~500", m.Phi)
	}
}

func TestSetPhiOverrides(t *testing.T) {
	a := newTestAgent()
	a.SetPhi(1234)
	if m := a.Report(); m.Phi != 1234 {
		t.Errorf("phi = %v, want 1234", m.Phi)
	}
}

func TestConcurrentUse(t *testing.T) {
	a := newTestAgent()
	s := models.ByName("resnet18")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				pl := core.Placement{GPUs: 1 + rng.Intn(8), Nodes: 1}
				if pl.GPUs >= 4 {
					pl.Nodes = 2
				}
				a.RecordSample(pl, 128+rng.Intn(512), 0.05+rng.Float64()*0.1)
				a.ObserveGradients(gns.Estimate{SqNorm: 1, ExampleVar: s.Phi(0.5)})
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			a.Refit()
			a.Report()
			a.TuneBatch(core.Placement{GPUs: 4, Nodes: 1})
		}
	}()
	wg.Wait()
}

// TestRefitAllWorkersDeterminism: fanning a report round's refits over
// any worker count must leave every agent with the bit-identical fitted
// model — the contract that lets sim.agentTick parallelize refits without
// perturbing traces.
func TestRefitAllWorkersDeterminism(t *testing.T) {
	truth := models.ByName("resnet18").Truth
	pls := []core.Placement{
		{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 2},
	}
	build := func() []*Agent {
		rng := rand.New(rand.NewSource(7))
		ags := make([]*Agent, 16)
		for i := range ags {
			a := newTestAgent()
			feed(a, rng, truth, 0.1, pls, []int{128, 256, 512})
			a.SetPhi(float64(1 + i))
			ags[i] = a
		}
		return ags
	}
	serial := build()
	RefitAll(serial, 1)
	for _, workers := range []int{2, 8} {
		parallel := build()
		RefitAll(parallel, workers)
		for i := range serial {
			if serial[i].Report() != parallel[i].Report() {
				t.Fatalf("agent %d: workers=%d report differs from serial:\n%+v\n%+v",
					i, workers, serial[i].Report(), parallel[i].Report())
			}
		}
	}
}

// TestWarmRefitConvergence: with the configuration set frozen, repeated
// noisy observations must keep pulling the fit toward the ForceRefit
// ground truth through the warm-start path — the regression target is the
// former permanent skip, which froze θsys at the first full fit until a
// new configuration appeared.
func TestWarmRefitConvergence(t *testing.T) {
	truth := models.ByName("resnet18").Truth
	pls := []core.Placement{
		{GPUs: 1, Nodes: 1}, {GPUs: 2, Nodes: 1}, {GPUs: 4, Nodes: 2},
	}
	batches := []int{128, 256}
	warm := newTestAgent()
	force := newTestAgent()
	rng := rand.New(rand.NewSource(3))
	profileRound := func() {
		for _, pl := range pls {
			for _, m := range batches {
				ti := truth.TIter(pl, float64(m)) * (1 + 0.2*(rng.Float64()*2-1))
				warm.RecordSample(pl, m, ti)
				force.RecordSample(pl, m, ti)
			}
		}
	}
	profileRound()
	warm.Refit()
	force.Refit()
	first := warm.Report().Params

	warmRefits := 0
	for round := 0; round < 60; round++ {
		profileRound()
		if warm.NeedsRefit() {
			warmRefits++
		}
		warm.Refit()
		force.ForceRefit()
	}
	if warmRefits == 0 {
		t.Fatal("warm-refit path never triggered on re-averaged known configurations")
	}
	if got := warm.Report().Params; got == first {
		t.Errorf("fit frozen at the first full fit: warm-start path did not absorb %d rounds of re-averaging", 60)
	}

	// Judge both fits against noiseless ground-truth samples: the cheap
	// warm-start cadence must land within a modest factor of the full
	// multi-start refit it replaces.
	var clean []core.Sample
	for _, pl := range pls {
		for _, m := range batches {
			clean = append(clean, core.Sample{
				Placement: pl, Batch: m, TIter: truth.TIter(pl, float64(m)),
			})
		}
	}
	warmErr := core.RMSLE(warm.Report().Params, clean)
	forceErr := core.RMSLE(force.Report().Params, clean)
	t.Logf("warm refits executed: %d; RMSLE vs truth: warm %.4f, force %.4f", warmRefits, warmErr, forceErr)
	if warmErr > forceErr*1.25+0.01 {
		t.Errorf("warm-refit fit RMSLE %.4f too far above ForceRefit ground truth %.4f", warmErr, forceErr)
	}
}
