// Package agent implements the PolluxAgent (Sec. 4.1 of the paper): the
// per-job component that profiles iteration times and gradient statistics
// during training, fits the system-throughput parameters θsys online, and
// tunes the job's batch size (and, through AdaScale, its learning rate)
// for the resources currently allocated to it. At a fixed interval it
// reports its fitted goodput function to PolluxSched.
package agent

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gns"
	"repro/internal/par"
)

// Agent is the per-job profiler/tuner. It is safe for concurrent use: the
// live-cluster runtime calls RecordSample from the training loop goroutine
// while the reporting loop calls Refit/Report.
type Agent struct {
	mu sync.Mutex

	m0             int
	eta0           float64
	maxBatchPerGPU int
	maxBatchGlobal int

	// Profiled throughput observations, keyed by configuration. Multiple
	// observations of the same configuration are averaged, which both
	// bounds memory and de-noises the fit.
	profile map[profileKey]*profileEntry

	explored   core.Exploration
	fitted     core.Params
	hasFit     bool
	fitConfigs int // distinct configs at last fit
	totalObs   int // observations recorded over the agent's lifetime
	fitObs     int // totalObs at the last executed (full or warm) fit

	phi     *gns.Tracker
	lastPhi float64

	batch int // current tuned batch size
}

type profileKey struct {
	gpus, nodes, batch int
}

type profileEntry struct {
	sumTIter float64
	count    int
}

// New creates an agent for a job submitted with initial batch size m0 and
// learning rate eta0, subject to the given batch-size limits.
func New(m0 int, eta0 float64, maxBatchPerGPU, maxBatchGlobal int) *Agent {
	if m0 <= 0 {
		panic("agent: non-positive m0")
	}
	return &Agent{
		m0:             m0,
		eta0:           eta0,
		maxBatchPerGPU: maxBatchPerGPU,
		maxBatchGlobal: maxBatchGlobal,
		profile:        make(map[profileKey]*profileEntry),
		phi:            gns.NewTracker(0.9),
		batch:          m0,
	}
}

// RecordSample profiles one observed iteration time for a configuration.
func (a *Agent) RecordSample(pl core.Placement, batch int, tIter float64) {
	a.RecordSampleN(pl, batch, tIter, 1)
}

// RecordSampleN profiles n repeated observations whose mean iteration
// time is tIter. The event-driven simulator advances whole inter-event
// segments at once and uses this to weight a segment as the equivalent
// per-tick observation count, so profile statistics match the tick
// engine's.
func (a *Agent) RecordSampleN(pl core.Placement, batch int, tIter float64, n int) {
	if !pl.Valid() || batch <= 0 || tIter <= 0 || n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.explored.Observe(pl)
	k := profileKey{pl.GPUs, pl.Nodes, batch}
	e := a.profile[k]
	if e == nil {
		e = &profileEntry{}
		a.profile[k] = e
	}
	e.sumTIter += tIter * float64(n)
	e.count += n
	a.totalObs += n
}

// ObserveGradients folds one iteration's gradient statistics estimate into
// the smoothed noise-scale tracker.
func (a *Agent) ObserveGradients(e gns.Estimate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.phi.Observe(e)
	a.lastPhi = a.phi.NoiseScale()
}

// SetPhi directly sets the smoothed noise scale. The trace-driven
// simulator uses this to replay measured noise-scale trajectories, as the
// paper's simulator does (Sec. 5.3).
func (a *Agent) SetPhi(phi float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastPhi = phi
}

// refitKind classifies what work a Refit call would do right now.
const (
	refitNone = iota // nothing worth refitting
	refitWarm        // known configs re-averaged: single warm-started descent
	refitFull        // new configuration profiled: full multi-start fit
)

// refitKindLocked decides between a full fit, a warm refresh, and a skip.
// A new configuration always forces the full multi-start fit. With the
// configuration set unchanged, repeated observations only tighten the
// per-config averages, so the fit is refreshed by a cheap warm-started
// descent (core.FitWarm) — and only once the observation count has grown
// 50% past the last fit's. Re-anchoring the threshold at each executed
// fit makes the cadence geometric: refreshes come quickly while a young
// job's averages are still noisy and decay to rare as they converge,
// instead of the former permanent skip that froze θsys between new
// configurations.
func (a *Agent) refitKindLocked() int {
	if !a.hasFit || len(a.profile) != a.fitConfigs {
		return refitFull
	}
	if a.fitObs > 0 && a.totalObs-a.fitObs >= (a.fitObs+1)/2 {
		return refitWarm
	}
	return refitNone
}

// Refit re-estimates θsys from all profiled data (Sec. 4.1: periodic
// RMSLE fit with L-BFGS-B under the exploration priors). A newly profiled
// configuration triggers the full multi-start fit; repeated observations
// of known configurations are absorbed by a warm-started single descent
// on a geometrically decaying cadence (see refitKindLocked); otherwise
// the call is a cheap no-op.
func (a *Agent) Refit() {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.refitKindLocked() {
	case refitFull:
		a.refitLocked()
	case refitWarm:
		a.warmRefitLocked()
	}
}

// NeedsRefit reports whether a Refit call would actually run a fit now.
// It is a pure predicate — staleness bookkeeping is anchored to executed
// fits, not to skipped calls — so callers may filter agents with it and
// fan only the dirty ones out to RefitAll without changing any result.
func (a *Agent) NeedsRefit() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.refitKindLocked() != refitNone
}

// ForceRefit re-estimates θsys even without new configurations, absorbing
// the averaging of repeated observations.
func (a *Agent) ForceRefit() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.refitLocked()
}

// samplesLocked snapshots the profile as per-configuration mean samples.
// Map iteration order is randomized; the slice is sorted so the loss is
// summed in a fixed order and repeated runs produce bit-identical fits.
func (a *Agent) samplesLocked() []core.Sample {
	samples := make([]core.Sample, 0, len(a.profile))
	for k, e := range a.profile {
		samples = append(samples, core.Sample{
			Placement: core.Placement{GPUs: k.gpus, Nodes: k.nodes},
			Batch:     k.batch,
			TIter:     e.sumTIter / float64(e.count),
		})
	}
	sort.Slice(samples, func(i, j int) bool {
		si, sj := samples[i], samples[j]
		if si.Placement.GPUs != sj.Placement.GPUs {
			return si.Placement.GPUs < sj.Placement.GPUs
		}
		if si.Placement.Nodes != sj.Placement.Nodes {
			return si.Placement.Nodes < sj.Placement.Nodes
		}
		return si.Batch < sj.Batch
	})
	return samples
}

func (a *Agent) refitLocked() {
	prev := core.Params{}
	if a.hasFit {
		prev = a.fitted
	}
	a.fitted = core.Fit(a.samplesLocked(), prev, a.explored)
	a.hasFit = true
	a.fitConfigs = len(a.profile)
	a.fitObs = a.totalObs
}

// warmRefitLocked refreshes the fit with a single warm-started descent
// from the incumbent (core.FitWarm) and re-anchors the staleness cadence.
func (a *Agent) warmRefitLocked() {
	a.fitted = core.FitWarm(a.samplesLocked(), a.fitted, a.explored)
	a.fitObs = a.totalObs
}

// Report returns the job's current goodput function — the (θsys, φt, m0)
// triple of Sec. 4.1 — for PolluxSched. If the agent has never fit, it
// fits first.
func (a *Agent) Report() core.Model {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hasFit {
		a.refitLocked()
	}
	return core.Model{
		Params:         a.fitted,
		Phi:            a.lastPhi,
		M0:             a.m0,
		MaxBatchPerGPU: a.maxBatchPerGPU,
		MaxBatchGlobal: a.maxBatchGlobal,
	}
}

// TuneBatch re-evaluates the goodput-optimal batch size for the job's
// current placement (Eqn. 13) and returns it together with the AdaScale
// learning rate for that batch. The chosen batch is remembered.
func (a *Agent) TuneBatch(pl core.Placement) (batch int, lr float64) {
	model := a.Report()
	m, _, ok := model.OptimalBatch(pl)
	if !ok {
		m = a.m0
	}
	a.mu.Lock()
	a.batch = m
	a.mu.Unlock()
	return m, model.OptimalLR(a.eta0, m)
}

// Batch returns the most recently tuned batch size (initially m0).
func (a *Agent) Batch() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.batch
}

// GPUCap returns the exploration cap: at most twice the maximum GPUs the
// job has held (Sec. 4.1), so optimistic priors cannot scale a new job
// out arbitrarily.
func (a *Agent) GPUCap() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.explored.GPUCap()
}

// Explored returns a copy of the exploration extent.
func (a *Agent) Explored() core.Exploration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.explored
}

// SampleCount reports how many distinct configurations have been profiled.
func (a *Agent) SampleCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.profile)
}

// RefitAll batches one report round's refits: it filters the agents whose
// Refit would actually run a fit (NeedsRefit) on the caller's goroutine,
// then fans those L-BFGS runs out over at most workers goroutines via the
// shared internal/par pool. Each fit depends only on its own agent's
// profile and draws no randomness, so the fitted models — and therefore
// every downstream trace — are bit-identical at any worker count; callers
// keep their rng draws on their own goroutine around this call. workers
// <= 1 runs the fits inline.
func RefitAll(agents []*Agent, workers int) {
	dirty := make([]*Agent, 0, len(agents))
	for _, a := range agents {
		if a.NeedsRefit() {
			dirty = append(dirty, a)
		}
	}
	par.For(workers, len(dirty), func(i int) { dirty[i].Refit() })
}
