package sim

import (
	"math/rand"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/models"
	"repro/internal/sched"
)

// Event kinds for the single-job autoscaling engine, in intra-instant
// execution order (matching the fixed-step loop's per-tick sequence:
// provisioning completion, agent profiling, scaling decision, sampling,
// then training).
const (
	asProvision = iota // requested nodes join the cluster
	asAgent            // agent profiling/tuning round
	asDecision         // autoscaler decision round
	asSample           // time-series sample for the Fig. 10 plot
	asMilestone        // predicted decay crossing or training completion
)

// runAutoscaleEvent is the discrete-event twin of runAutoscaleTick: one
// training job whose node count the autoscaler adjusts, with progress
// advanced in closed form between events.
func runAutoscaleEvent(spec *models.Spec, scaler sched.Autoscaler, cfg AutoscaleConfig) AutoscaleResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ag := agent.New(spec.M0, spec.Eta0, spec.MaxBatchPerGPU, spec.MaxBatchGlobal)

	var res AutoscaleResult
	nodesReady := cfg.MinNodes
	nodesPaid := cfg.MinNodes
	provisioning := 0
	provisionAt := -1.0 // when pending nodes become ready

	batch := spec.M0
	progress := 0.0
	restartUntil := 0.0
	total := spec.TotalWork()

	placement := func(n int) core.Placement {
		return core.Placement{GPUs: n * cfg.GPUsPerNode, Nodes: n}
	}

	// Frozen training rate, recomputed at every event that can change it.
	var rate struct {
		m     int
		tIter float64
		good  float64
	}
	now := 0.0
	lastT := 0.0    // time training state was last advanced to
	lastCost := 0.0 // time the node-seconds integral was advanced to
	var version uint64
	predTarget := 0.0

	recomputeRate := func() {
		pl := placement(nodesReady)
		m := clampBatch(spec, batch, pl)
		tIter := spec.Truth.TIter(pl, float64(m))
		tput := float64(m) / tIter
		rate.m = m
		rate.tIter = tIter
		rate.good = tput * midpointEfficiency(spec, m, tput, progress, cfg.AgentInterval)
	}

	advanceTo := func(t float64) {
		if t <= lastT {
			return
		}
		start := lastT
		if restartUntil > start {
			start = restartUntil
		}
		if start < t && rate.good > 0 {
			dt := t - start
			progress += rate.good * dt
			n := observationCount(dt, cfg.Tick)
			noisy := rate.tIter * (1 + cfg.NoiseFrac*(rng.Float64()*2-1)/sqrtN(n))
			ag.RecordSampleN(placement(nodesReady), rate.m, noisy, n)
		}
		lastT = t
	}

	var q eventsim.Queue
	schedulePrediction := func() {
		version++
		if rate.good <= 0 {
			return
		}
		target := nextMilestoneTarget(spec, progress)
		start := now
		if restartUntil > start {
			start = restartUntil
		}
		t := start + (target-progress)/rate.good
		if t > now+cfg.AgentInterval {
			return // superseded before firing; the next refresh reschedules
		}
		predTarget = target
		q.Push(eventsim.Event{
			Time:    t,
			Class:   eventsim.ClassJob,
			Kind:    asMilestone,
			Version: version,
		})
	}
	cluster := func(t float64, kind int) eventsim.Event {
		return eventsim.Event{Time: t, Class: eventsim.ClassCluster, Kind: kind}
	}

	q.Push(cluster(0, asAgent))
	q.Push(cluster(0, asDecision))
	q.Push(cluster(0, asSample))

	for {
		e, ok := q.Pop()
		if !ok || e.Time > cfg.MaxTime {
			break
		}
		res.CostNodeSeconds += float64(nodesPaid) * (e.Time - lastCost)
		lastCost = e.Time
		now = e.Time
		advanceTo(now)

		switch e.Kind {
		case asProvision:
			// The readiness guard matters when scale-ups overlap
			// (ProvisionDelay > Interval): a later request pushes
			// provisionAt out, and the earlier event must not promote
			// the combined batch early.
			if provisioning > 0 && now >= provisionAt {
				nodesReady += provisioning
				provisioning = 0
				restartUntil = now + cfg.RestartDelay
				recomputeRate()
				schedulePrediction()
			}

		case asAgent:
			phi := spec.Phi(progress/total) * (1 + cfg.NoiseFrac*(rng.Float64()*2-1))
			ag.SetPhi(phi)
			// Shared batched-refit helper; a single agent runs inline.
			agent.RefitAll([]*agent.Agent{ag}, 1)
			pl := placement(nodesReady)
			if cfg.AdaptBatchGoodput {
				batch, _ = ag.TuneBatch(pl)
			} else {
				batch = sched.ThroughputOptimalBatch(ag.Report(), pl)
			}
			recomputeRate()
			schedulePrediction()
			q.Push(cluster(now+cfg.AgentInterval, asAgent))

		case asDecision:
			model := ag.Report()
			want := scaler.DesiredNodes(model, cfg.GPUsPerNode)
			if cfg.RespectExploreCap {
				if cap := ag.GPUCap() / cfg.GPUsPerNode; want > cap && cap >= cfg.MinNodes {
					want = cap
				}
			}
			if want < cfg.MinNodes {
				want = cfg.MinNodes
			}
			if want > cfg.MaxNodes {
				want = cfg.MaxNodes
			}
			if want > nodesReady+provisioning {
				add := want - nodesReady - provisioning
				provisioning += add
				nodesPaid += add
				provisionAt = now + cfg.ProvisionDelay
				q.Push(cluster(provisionAt, asProvision))
			} else if want < nodesReady {
				nodesReady = want
				nodesPaid = want + provisioning
				restartUntil = now + cfg.RestartDelay
				recomputeRate()
				schedulePrediction()
			}
			q.Push(cluster(now+cfg.Interval, asDecision))

		case asSample:
			pl := placement(nodesReady)
			eff := core.Efficiency(spec.Phi(progress/total), spec.M0, clampBatch(spec, batch, pl))
			res.Points = append(res.Points, AutoscalePoint{
				Time: now, Nodes: nodesPaid, Batch: batch, Efficiency: eff,
			})
			q.Push(cluster(now+cfg.SamplePeriod, asSample))

		case asMilestone:
			if e.Version != version {
				break
			}
			progress = predTarget
			if progress >= total {
				res.CompletionTime = now
				res.Completed = true
			} else {
				recomputeRate() // phi jumps at the decay boundary
				schedulePrediction()
			}
		}
		if res.Completed {
			break
		}
	}
	if !res.Completed {
		res.CompletionTime = cfg.MaxTime
		if lastCost < cfg.MaxTime {
			res.CostNodeSeconds += float64(nodesPaid) * (cfg.MaxTime - lastCost)
		}
	}
	return res
}
