package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sched"
)

// scaledDownImagenet returns a resnet50-like spec with much less total
// work so autoscaling tests complete quickly, keeping the phi trajectory.
func scaledDownImagenet() *models.Spec {
	s := *models.ByName("resnet50")
	s.Epochs = 2 // ~45x less work than the real 90 epochs
	return &s
}

func autoscaleCfg(goodput bool) AutoscaleConfig {
	return AutoscaleConfig{
		GPUsPerNode:       4,
		MinNodes:          1,
		MaxNodes:          16,
		Tick:              2,
		AdaptBatchGoodput: goodput,
		RespectExploreCap: goodput,
		MaxTime:           48 * 3600,
		Seed:              1,
	}
}

func TestAutoscaleGoodputCompletes(t *testing.T) {
	spec := scaledDownImagenet()
	scaler := sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75)
	res := RunAutoscale(spec, scaler, autoscaleCfg(true))
	if !res.Completed {
		t.Fatal("goodput autoscaled training did not complete")
	}
	if res.CostNodeSeconds <= 0 {
		t.Error("no cost accounted")
	}
	if len(res.Points) == 0 {
		t.Fatal("no time series recorded")
	}
}

func TestAutoscaleGoodputRampsUp(t *testing.T) {
	spec := scaledDownImagenet()
	scaler := sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75)
	res := RunAutoscale(spec, scaler, autoscaleCfg(true))
	if !res.Completed {
		t.Fatal("did not complete")
	}
	// Fig. 10a shape: starts small, ends big.
	first := res.Points[0].Nodes
	last := res.Points[len(res.Points)-1].Nodes
	if first > 4 {
		t.Errorf("goodput scaler started with %d nodes, want small start", first)
	}
	if last <= first {
		t.Errorf("goodput scaler did not ramp: first=%d last=%d", first, last)
	}
}

func TestAutoscaleThroughputJumpsEarly(t *testing.T) {
	spec := scaledDownImagenet()
	scaler := sched.NewThroughputAutoscaler(1, 16, 0.9)
	res := RunAutoscale(spec, scaler, autoscaleCfg(false))
	if !res.Completed {
		t.Fatal("did not complete")
	}
	// Fig. 10a: Or et al. reaches a large size almost immediately and
	// holds it.
	if len(res.Points) < 2 {
		t.Fatal("too few samples")
	}
	early := res.Points[1].Nodes // after the first decisions
	if early < 8 {
		t.Errorf("throughput scaler at %d nodes early, want aggressive scale-out", early)
	}
}

func TestAutoscaleGoodputCheaper(t *testing.T) {
	// The headline Sec. 5.3.3 result: goodput-based autoscaling is
	// substantially cheaper, at a modest completion-time cost.
	spec := scaledDownImagenet()
	good := RunAutoscale(spec, sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75), autoscaleCfg(true))
	thr := RunAutoscale(spec, sched.NewThroughputAutoscaler(1, 16, 0.9), autoscaleCfg(false))
	if !good.Completed || !thr.Completed {
		t.Fatal("runs did not complete")
	}
	if good.CostNodeSeconds >= thr.CostNodeSeconds {
		t.Errorf("goodput cost %v not cheaper than throughput cost %v",
			good.CostNodeSeconds, thr.CostNodeSeconds)
	}
	if good.CompletionTime > 2*thr.CompletionTime {
		t.Errorf("goodput completion %v more than 2x throughput %v",
			good.CompletionTime, thr.CompletionTime)
	}
}

func TestAutoscaleEfficiencyHigherForGoodput(t *testing.T) {
	// Fig. 10b: Pollux maintains high statistical efficiency; Or et al.
	// tanks it early with oversized batches.
	spec := scaledDownImagenet()
	good := RunAutoscale(spec, sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75), autoscaleCfg(true))
	thr := RunAutoscale(spec, sched.NewThroughputAutoscaler(1, 16, 0.9), autoscaleCfg(false))
	avgEff := func(pts []AutoscalePoint) float64 {
		s := 0.0
		for _, p := range pts {
			s += p.Efficiency
		}
		return s / float64(len(pts))
	}
	ge, te := avgEff(good.Points), avgEff(thr.Points)
	if ge <= te {
		t.Errorf("goodput avg efficiency %v not above throughput %v", ge, te)
	}
	if ge < 0.5 {
		t.Errorf("goodput efficiency %v unexpectedly low", ge)
	}
}

func TestAutoscaleRespectsNodeBounds(t *testing.T) {
	spec := scaledDownImagenet()
	cfg := autoscaleCfg(true)
	cfg.MinNodes, cfg.MaxNodes = 2, 6
	res := RunAutoscale(spec, sched.NewGoodputAutoscaler(2, 6, 0.55, 0.75), cfg)
	for _, p := range res.Points {
		if p.Nodes < 2 || p.Nodes > 6 {
			t.Errorf("t=%v nodes=%d outside [2, 6]", p.Time, p.Nodes)
		}
	}
}

func TestClampBatch(t *testing.T) {
	spec := models.ByName("resnet50")
	pl := placementFor(2, 4)
	if got := clampBatch(spec, 1<<20, pl); got != 8*spec.MaxBatchPerGPU {
		t.Errorf("clamp to memory: %d, want %d", got, 8*spec.MaxBatchPerGPU)
	}
	if got := clampBatch(spec, 1, pl); got != spec.M0 {
		t.Errorf("clamp up to m0: %d, want %d", got, spec.M0)
	}
}

func placementFor(nodes, perNode int) (pl core.Placement) {
	pl.GPUs = nodes * perNode
	pl.Nodes = nodes
	return pl
}
