package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sched"
)

// TestSimCheckpointRoundTripBitIdentical is the sim-engine half of the
// checkpoint acceptance criterion: serializing the Pollux scheduler state
// to JSON and restoring it mid-run — through the OnRound hook, between
// two scheduling rounds, exactly where the service checkpoints — must
// leave the rest of the simulation bit-identical to an uninterrupted run,
// under incremental + rack-hierarchical rounds at any fitness worker
// count and under both engines.
func TestSimCheckpointRoundTripBitIdentical(t *testing.T) {
	tr := smallOnly(smallTrace(5, 10))
	if len(tr.Jobs) < 4 {
		t.Skip("trace too small after filtering")
	}
	opts := sched.PolluxOptions{
		Population: 20, Generations: 10,
		Incremental: true, FullEvery: 3, RackSize: 2,
	}
	for _, engine := range []string{EngineEvent, EngineTick} {
		for _, workers := range []int{1, 4} {
			o := opts
			o.Workers = workers
			t.Run(engine+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				cfg := fastCfg(2)
				cfg.Engine = engine
				plain := NewCluster(tr, sched.NewPollux(o, 2), cfg).Run()

				p := sched.NewPollux(o, 2)
				rounds := 0
				cfgCk := cfg
				cfgCk.OnRound = func(now float64) {
					rounds++
					if rounds%5 != 0 {
						return
					}
					// Round-trip through real JSON bytes so canonical float
					// and uint64 encoding is part of what is pinned.
					raw, err := json.Marshal(p.Snapshot())
					if err != nil {
						t.Fatalf("marshal at t=%.0f: %v", now, err)
					}
					var snap sched.PolluxSnapshot
					if err := json.Unmarshal(raw, &snap); err != nil {
						t.Fatalf("unmarshal at t=%.0f: %v", now, err)
					}
					if err := p.Restore(&snap); err != nil {
						t.Fatalf("restore at t=%.0f: %v", now, err)
					}
				}
				ck := NewCluster(tr, p, cfgCk).Run()

				if rounds == 0 {
					t.Fatal("OnRound hook never fired")
				}
				if !reflect.DeepEqual(plain, ck) {
					t.Fatalf("save/restore every 5th round changed the %s run at %d workers:\n%+v\nvs\n%+v",
						engine, workers, plain.Summary, ck.Summary)
				}
			})
		}
	}
}
