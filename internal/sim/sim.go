// Package sim is the discrete-time cluster simulator used to evaluate the
// scheduling policies (Sec. 5.3 of the Pollux paper). It replays the model
// zoo's ground-truth throughput and gradient-noise-scale behaviour for
// every job in a trace, while the schedulers observe only what a real
// deployment would expose: noisy per-iteration timings and gradient
// statistics profiled by each job's agent.
//
// The simulator reproduces the system effects the paper's simulator
// models: placement-sensitive iteration times, a 30-second
// checkpoint-restart delay whenever a job's resources are re-allocated,
// and optional artificial network interference between distributed jobs
// sharing a node (Sec. 5.3.2).
package sim

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/admit"
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/par"
	rounds "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Engine selects how the simulation clock advances.
const (
	// EngineEvent is the discrete-event engine (the default): the clock
	// jumps between scheduled events and job progress advances in closed
	// form between them. See internal/eventsim and engine_event.go.
	EngineEvent = "event"
	// EngineTick is the original fixed-step engine, kept as a parity
	// oracle for the event engine and for tick-resolution studies.
	EngineTick = "tick"
)

// Config controls one simulation run.
type Config struct {
	Nodes       int // number of nodes; default 16
	GPUsPerNode int // GPUs per node; default 4
	// Tick is the fixed step of the tick engine and, for the event
	// engine, the profiling resolution: an advanced segment is weighted
	// as dt/Tick throughput observations so agents see the same
	// profile statistics under either engine. Default 1 s.
	Tick float64
	// Engine selects the simulation engine: EngineEvent (default) or
	// EngineTick. Both implement the same cluster semantics; the event
	// engine is an order of magnitude faster because it skips the time
	// between events.
	Engine string
	// SchedInterval is the scheduling period (default 60 s);
	// AgentInterval the agent report/tune period (default 30 s).
	SchedInterval float64
	AgentInterval float64
	// RestartDelay is the checkpoint-restart pause applied when a job's
	// allocation changes. The zero value takes the 30 s default; a
	// negative value means an explicit zero pause (restarts are free).
	RestartDelay float64
	// InterferenceSlowdown in [0, 1) slows distributed jobs that share a
	// node with another distributed job (Sec. 5.3.2); 0 disables.
	InterferenceSlowdown float64
	// NoiseFrac is the relative measurement noise on profiled iteration
	// times and noise-scale observations. The zero value takes the 0.05
	// default; a negative value means explicitly noise-free profiling.
	NoiseFrac float64
	// UseTunedConfig selects each job's tuned (Sec. 5.2) rather than
	// user (Sec. 5.3.1) configuration for the baselines. TunedFraction
	// overrides it when in (0,1]: that fraction of jobs (chosen
	// randomly) is tuned, the rest user-configured (Fig. 7 mixtures).
	UseTunedConfig bool
	TunedFraction  float64
	// MaxTime caps the simulation (default 14 days).
	MaxTime float64
	Seed    int64
	// Parallel bounds how many seeds RunSeeds simulates concurrently
	// (each seed owns a fresh rng, trace, and policy, so seeds are
	// independent); 0 or 1 runs them serially. Results are identical
	// either way: every seed's run is deterministic and summaries are
	// reduced in seed order.
	Parallel int
	// RefitWorkers bounds how many agent refits (core.Fit L-BFGS runs)
	// execute concurrently within one report round; 0 defaults to
	// GOMAXPROCS and 1 runs them serially. The noise-scale rng draws stay
	// on the simulation goroutine and fits draw no randomness, so traces
	// are bit-identical at any worker count.
	RefitWorkers int
	// FrontEnd configures the multi-tenant serving front end (admission +
	// priority, internal/admit) that gates arrivals and orders the
	// scheduler's snapshot; nil disables it, leaving the control loop
	// bit-identical to a front-end-less build. Invalid policy names panic
	// in NewCluster, like an invalid Engine.
	FrontEnd *admit.Options
	// Autoscale enables Sec. 4.2.2 multi-job cluster autoscaling: Nodes
	// then acts as the maximum cluster size and the active size varies.
	Autoscale *ClusterAutoscaleConfig
	// LogEvents records a structured event log (submissions,
	// re-allocations, batch changes, completions) in the Result.
	LogEvents bool
	// OnRound, when set, runs after every scheduling round with the
	// simulation time of the round, under both engines. It exists for
	// observability (the opt-in pollux-sim status endpoint publishes
	// from it) and for checkpoint round-trip tests; implementations
	// observe — they must not mutate the cluster.
	OnRound func(now float64)
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.Tick <= 0 {
		c.Tick = 1
	}
	if c.Engine == "" {
		c.Engine = EngineEvent
	}
	if c.Engine != EngineEvent && c.Engine != EngineTick {
		panic(fmt.Sprintf("sim: unknown engine %q (want %q or %q)", c.Engine, EngineEvent, EngineTick))
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 60
	}
	if c.AgentInterval <= 0 {
		c.AgentInterval = 30
	}
	if c.RestartDelay < 0 {
		c.RestartDelay = 0
	} else if c.RestartDelay == 0 {
		c.RestartDelay = 30
	}
	if c.NoiseFrac < 0 {
		c.NoiseFrac = 0
	} else if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.05
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 14 * 24 * 3600
	}
	if c.RefitWorkers <= 0 {
		c.RefitWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Autoscale != nil {
		if c.Autoscale.MaxNodes > c.Nodes || c.Autoscale.MaxNodes <= 0 {
			c.Autoscale.MaxNodes = c.Nodes
		}
		c.Autoscale.defaults(c.SchedInterval)
	}
}

// jobState is the simulator's private view of one job.
type jobState struct {
	wj       workload.Job
	spec     *models.Spec
	agent    *agent.Agent
	useTuned bool

	batch int
	alloc []int
	pl    core.Placement

	submitted    bool
	rejected     bool // turned away by the admission stage; implies done
	done         bool
	finish       float64
	restartUntil float64
	interfered   bool

	progress float64 // m0-equivalent examples completed
	gpuTime  float64 // GPU-seconds consumed

	// accumulated metrics over running time
	effSum, runTime  float64
	tputSum, goodSum float64
	exampleSum       float64

	// Event-engine state (engine_event.go). lastT is the time training
	// state was last advanced to; rate is the training rate frozen at the
	// last event; version invalidates stale milestone predictions;
	// predTarget is the progress value the pending milestone aims at;
	// restartEv is the restart expiry already scheduled as an event.
	lastT      float64
	rate       jobRate
	version    uint64
	predTarget float64
	restartEv  float64
}

func (j *jobState) progressFrac() float64 {
	return j.progress / j.spec.TotalWork()
}

// fixedBatch returns the baseline batch size for this job (tuned or user).
func (j *jobState) fixedBatch() (gpus, batch int) {
	if j.useTuned {
		return j.wj.TunedGPUs, j.wj.TunedBatch
	}
	return j.wj.UserGPUs, j.wj.UserBatch
}

// Result aggregates one run.
type Result struct {
	Summary metrics.Summary
	// PerJob finishing records aligned with the trace order.
	Records []metrics.JobRecord
	// AvgThroughput and AvgGoodput are example-rate means over all
	// job-running time, for the Sec. 5.2.1 relative comparisons.
	AvgThroughput float64
	AvgGoodput    float64
	// CostNodeSeconds integrates the paid cluster size over the run
	// (meaningful under cluster autoscaling; otherwise nodes x makespan).
	CostNodeSeconds float64
	// PerModel breaks JCT statistics down by zoo model, mirroring the
	// paper's per-category discussion (Small/Medium/Large/XLarge map
	// onto models one-to-one except the two Small workloads).
	PerModel map[string]metrics.Summary
	// PerTenant breaks the run down by tenant for multi-tenant traces:
	// JCT statistics plus the front end's admission counters and queue
	// depths. Nil for single-tenant runs.
	PerTenant map[string]metrics.TenantSummary
	// Admissions is the front end's decision log in arrival order (nil
	// without a front end) — the cross-deployment parity surface.
	Admissions []admit.Decision
	// Events is the structured event log (populated when
	// Config.LogEvents is set).
	Events []Event
}

// Cluster simulates one trace under one policy.
type Cluster struct {
	cfg    Config
	policy sched.Policy
	rng    *rand.Rand
	jobs   []*jobState
	now    float64
	fe     *admit.FrontEnd // nil when cfg.FrontEnd is nil

	// Cluster autoscaling state (Sec. 4.2.2). With autoscaling disabled,
	// activeNodes stays at cfg.Nodes.
	activeNodes  int
	provisioning int
	provisionAt  float64
	nodeSeconds  float64
	lastCost     float64 // event engine: time nodeSeconds was integrated to

	// roundAct is the active-job snapshot of the scheduling round in
	// flight, set by Round and consumed by Commit (see runtime.Step).
	roundAct []*jobState

	events []Event
}

// NewCluster prepares a simulation of the trace under the policy.
func NewCluster(trace workload.Trace, policy sched.Policy, cfg Config) *Cluster {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	fe, err := admit.New(cfg.FrontEnd)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	c := &Cluster{cfg: cfg, policy: policy, rng: rng, fe: fe, activeNodes: cfg.Nodes}
	if cfg.Autoscale != nil {
		c.activeNodes = cfg.Autoscale.MinNodes
	}
	for _, wj := range trace.Jobs {
		spec := models.ByName(wj.Model)
		if spec == nil {
			continue
		}
		useTuned := cfg.UseTunedConfig
		if cfg.TunedFraction > 0 {
			useTuned = rng.Float64() < cfg.TunedFraction
		}
		js := &jobState{
			wj:       wj,
			spec:     spec,
			useTuned: useTuned,
			agent:    agent.New(spec.M0, spec.Eta0, spec.MaxBatchPerGPU, spec.MaxBatchGlobal),
			alloc:    make([]int, cfg.Nodes),
		}
		_, js.batch = js.fixedBatch()
		if policy.AdaptsBatchSize() {
			js.batch = spec.M0 // Pollux starts every job at m0 on 1 GPU
		}
		c.jobs = append(c.jobs, js)
	}
	return c
}

// Run executes the simulation to completion (all jobs done or MaxTime)
// under the configured engine.
func (c *Cluster) Run() Result {
	if c.cfg.Engine == EngineTick {
		return c.runTick()
	}
	return c.runEvent()
}

// runTick is the fixed-step engine: wall-clock advances by cfg.Tick and
// every job's progress is accumulated tick by tick.
func (c *Cluster) runTick() Result {
	cfg := c.cfg
	nextSched := 0.0
	nextAgent := 0.0
	for c.now = 0; c.now < cfg.MaxTime; c.now += cfg.Tick {
		c.submitArrivals()
		if c.now >= nextAgent {
			c.agentTick()
			nextAgent += cfg.AgentInterval
		}
		if c.now >= nextSched {
			if cfg.Autoscale != nil {
				c.autoscaleTick()
			}
			c.scheduleTick()
			nextSched += cfg.SchedInterval
		}
		c.nodeSeconds += float64(c.activeNodes+c.provisioning) * cfg.Tick
		c.advance(cfg.Tick)
		if c.allDone() {
			break
		}
	}
	return c.result()
}

func (c *Cluster) submitArrivals() {
	for _, j := range c.jobs {
		if !j.submitted && j.wj.Submit <= c.now {
			c.submitJob(j)
		}
	}
}

// submitJob runs one arrival through the admission stage. Jobs reach
// admission in trace order (submit-sorted, ties in stable ID order) under
// every engine — the same order cluster.Replay presents them — and the
// request carries the trace's submit time, not the engine's clock, so
// admission decisions are bit-identical across deployments. A rejected
// job is terminal: it never becomes active and never finishes.
func (c *Cluster) submitJob(j *jobState) {
	j.submitted = true
	c.record(Event{Time: c.now, Job: j.wj.ID, Kind: EventSubmit})
	gpus, _ := j.fixedBatch()
	if !c.fe.Arrive(admit.Request{Job: j.wj.ID, Tenant: j.wj.Tenant, Time: j.wj.Submit, GPUs: gpus}) {
		j.rejected = true
		j.done = true
		c.record(Event{Time: c.now, Job: j.wj.ID, Kind: EventReject})
	}
}

func (c *Cluster) allDone() bool {
	for _, j := range c.jobs {
		if !j.done {
			return false
		}
	}
	return true
}

// active returns submitted, unfinished jobs.
func (c *Cluster) active() []*jobState {
	var out []*jobState
	for _, j := range c.jobs {
		if j.submitted && !j.done {
			out = append(out, j)
		}
	}
	return out
}

// agentTick refreshes every running job's fitted model, replayed noise
// scale, and — under Pollux — its tuned batch size. It runs in three
// phases so the per-round refits — the dominant CPU cost of large cluster
// simulations — can fan out across cores without perturbing the trace:
//
//  1. serial: the noise-scale rng draws happen on the simulation
//     goroutine in job order (the draw order is load-bearing for
//     reproducibility) while the running jobs are collected;
//  2. parallel: the L-BFGS refits of the agents that need one fan out
//     over cfg.RefitWorkers goroutines (agent.RefitAll); fits touch no
//     rng and no shared state, so results are bit-identical to serial;
//  3. serial: batch re-tuning and event records, again in job order.
func (c *Cluster) agentTick() {
	var run []*jobState
	for _, j := range c.active() {
		if j.pl.GPUs == 0 {
			continue
		}
		phi := j.spec.Phi(j.progressFrac())
		phi *= 1 + c.cfg.NoiseFrac*(c.rng.Float64()*2-1)
		j.agent.SetPhi(phi)
		run = append(run, j)
	}
	agents := make([]*agent.Agent, len(run))
	for i, j := range run {
		agents[i] = j.agent
	}
	agent.RefitAll(agents, c.cfg.RefitWorkers)
	if !c.policy.AdaptsBatchSize() {
		return
	}
	for _, j := range run {
		prev := j.batch
		j.batch, _ = j.agent.TuneBatch(j.pl)
		if j.batch != prev {
			c.record(Event{Time: c.now, Job: j.wj.ID, Kind: EventBatchChange, Batch: j.batch})
		}
	}
}

// scheduleTick runs one scheduling round through the shared
// runtime.Step core (snapshot, policy, validation, diff, commit). A
// malformed or oversubscribing policy result aborts the round before
// any allocation is touched and the simulation carries on with the
// previous allocations — the same defensive silent skip the engines
// always had for malformed output (in-tree policies never trip it; a
// policy that trips it every round shows up as zero completions), now
// with matrix-wide capacity validation included.
func (c *Cluster) scheduleTick() {
	rounds.Step(c, c.fe, c.policy, c.now) //nolint:errcheck // defensive skip
	if c.cfg.OnRound != nil {
		c.cfg.OnRound(c.now)
	}
}

// Round snapshots the scheduler inputs for runtime.Step: every active
// job's reported goodput model, fixed configuration, attained service,
// and current allocation row, in submission order.
func (c *Cluster) Round(now float64) *sched.ClusterView {
	act := c.active()
	c.roundAct = act
	view := &sched.ClusterView{
		Now:      now,
		Capacity: c.capacity(),
		Current:  ga.NewMatrix(len(act), c.cfg.Nodes),
	}
	for i, j := range act {
		copy(view.Current[i], j.alloc)
		gpus, batch := j.fixedBatch()
		minGPUs := (batch + j.spec.MaxBatchPerGPU - 1) / j.spec.MaxBatchPerGPU
		eff := core.Efficiency(j.spec.Phi(j.progressFrac()), j.spec.M0, batch)
		remIters := (j.spec.TotalWork() - j.progress) / (eff * float64(batch))
		view.Jobs = append(view.Jobs, sched.JobView{
			ID:             j.wj.ID,
			Submit:         j.wj.Submit,
			Tenant:         j.wj.Tenant,
			Deadline:       j.wj.Deadline,
			Model:          j.agent.Report(),
			GPUCap:         j.agent.GPUCap(),
			UserGPUs:       gpus,
			UserBatch:      batch,
			MinGPUs:        minGPUs,
			RemainingIters: remIters,
			GPUTime:        j.gpuTime,
		})
	}
	return view
}

// Commit installs the validated allocation matrix on the last Round's
// jobs. applyAlloc diffs each row itself, so the changed flags are not
// consulted; interference is recomputed once per round, as the tick
// engines always have.
func (c *Cluster) Commit(m ga.Matrix, changed []bool) error {
	for i, j := range c.roundAct {
		c.applyAlloc(j, m[i])
	}
	c.recomputeInterference()
	return nil
}

// applyAlloc installs a new allocation row on a job, charging the
// checkpoint-restart delay when the placement changes.
func (c *Cluster) applyAlloc(j *jobState, row []int) {
	same := true
	for n := range row {
		if row[n] != j.alloc[n] {
			same = false
			break
		}
	}
	if same {
		return
	}
	copy(j.alloc, row)
	j.pl = sched.PlacementOf(row)
	c.record(Event{Time: c.now, Job: j.wj.ID, Kind: EventAllocate, Placement: j.pl})
	if j.pl.GPUs > 0 {
		j.restartUntil = c.now + c.cfg.RestartDelay
		// Re-clamp the batch: the new placement may not fit the old one.
		if c.policy.AdaptsBatchSize() {
			j.batch, _ = j.agent.TuneBatch(j.pl)
		}
	}
}

// recomputeInterference marks distributed jobs sharing a node with another
// distributed job. Only called when allocations change.
func (c *Cluster) recomputeInterference() {
	type nodeInfo struct{ distJobs []*jobState }
	nodes := make([]nodeInfo, c.cfg.Nodes)
	for _, j := range c.active() {
		j.interfered = false
		if j.pl.Nodes <= 1 {
			continue
		}
		for n, g := range j.alloc {
			if g > 0 {
				nodes[n].distJobs = append(nodes[n].distJobs, j)
			}
		}
	}
	for _, ni := range nodes {
		if len(ni.distJobs) > 1 {
			for _, j := range ni.distJobs {
				j.interfered = true
			}
		}
	}
}

func (c *Cluster) capacity() []int {
	capacity := make([]int, c.cfg.Nodes)
	for i := 0; i < c.activeNodes && i < len(capacity); i++ {
		capacity[i] = c.cfg.GPUsPerNode
	}
	return capacity
}

// advance progresses every running job by dt seconds of training.
func (c *Cluster) advance(dt float64) {
	for _, j := range c.active() {
		if j.pl.GPUs == 0 || c.now < j.restartUntil {
			continue
		}
		m := j.batch
		// Defensive clamp: a baseline job whose fixed batch does not
		// fit its allocation trains at the largest feasible batch.
		if maxFit := j.pl.GPUs * j.spec.MaxBatchPerGPU; m > maxFit {
			m = maxFit
		}
		if m < j.spec.M0 {
			continue // cannot run: initial batch does not fit
		}
		tIter := j.spec.Truth.TIter(j.pl, float64(m))
		if j.interfered && c.cfg.InterferenceSlowdown > 0 {
			tIter /= 1 - c.cfg.InterferenceSlowdown
		}
		tput := float64(m) / tIter
		eff := core.Efficiency(j.spec.Phi(j.progressFrac()), j.spec.M0, m)
		good := tput * eff

		j.progress += good * dt
		j.gpuTime += float64(j.pl.GPUs) * dt
		j.effSum += eff * dt
		j.tputSum += tput * dt
		j.goodSum += good * dt
		j.exampleSum += tput * dt
		j.runTime += dt

		// Profile the observation the agent would have measured.
		noisy := tIter * (1 + c.cfg.NoiseFrac*(c.rng.Float64()*2-1))
		j.agent.RecordSample(j.pl, m, noisy)

		if j.progress >= j.spec.TotalWork() {
			j.done = true
			j.finish = c.now + dt
			c.record(Event{Time: j.finish, Job: j.wj.ID, Kind: EventFinish})
			for n := range j.alloc {
				j.alloc[n] = 0
			}
			j.pl = core.Placement{}
		}
	}
}

func (c *Cluster) result() Result {
	var res Result
	var effSum, runSum, tputSum, goodSum float64
	perModel := make(map[string][]metrics.JobRecord)
	type tenantAccum struct{ goodSum, runTime float64 }
	tenantRates := make(map[string]*tenantAccum)
	for _, j := range c.jobs {
		rec := metrics.JobRecord{
			Submit:   j.wj.Submit,
			Finish:   j.finish,
			Tenant:   j.wj.Tenant,
			Deadline: j.wj.Deadline,
			Rejected: j.rejected,
		}
		res.Records = append(res.Records, rec)
		perModel[j.spec.Name] = append(perModel[j.spec.Name], rec)
		effSum += j.effSum
		runSum += j.runTime
		tputSum += j.tputSum
		goodSum += j.goodSum
		if j.wj.Tenant != "" {
			ta := tenantRates[j.wj.Tenant]
			if ta == nil {
				ta = &tenantAccum{}
				tenantRates[j.wj.Tenant] = ta
			}
			ta.goodSum += j.goodSum
			ta.runTime += j.runTime
		}
	}
	res.Summary = metrics.Summarize(res.Records)
	res.PerModel = make(map[string]metrics.Summary, len(perModel))
	//pollux:order-ok keyed write per model name; Summarize is a pure function of recs
	for name, recs := range perModel {
		res.PerModel[name] = metrics.Summarize(recs)
	}
	res.PerTenant = metrics.SummarizeTenants(res.Records)
	feStats := c.fe.Stats()
	//pollux:order-ok each iteration fills only its own tenant's summary; Rounds is a pure accessor
	for tenant, ts := range res.PerTenant {
		if st, ok := feStats[tenant]; ok {
			ts.Submitted = st.Submitted
			ts.Admitted = st.Admitted
			ts.Rejected = st.Rejected
			if rounds := c.fe.Rounds(); rounds > 0 {
				ts.AvgQueueDepth = st.QueueDepthSum / float64(rounds)
			}
		} else {
			// No front end: every generated job was implicitly admitted.
			ts.Submitted = ts.Summary.Total
			ts.Admitted = ts.Summary.Total
		}
		if ta := tenantRates[tenant]; ta != nil && ta.runTime > 0 {
			ts.AvgGoodput = ta.goodSum / ta.runTime
		}
		res.PerTenant[tenant] = ts
	}
	res.Admissions = c.fe.Decisions()
	res.CostNodeSeconds = c.nodeSeconds
	res.Events = c.events
	if runSum > 0 {
		res.Summary.AvgEfficiency = effSum / runSum
		res.AvgThroughput = tputSum / runSum
		res.AvgGoodput = goodSum / runSum
	}
	return res
}

// RunSeeds runs the same trace parameters across several seeds (fresh
// traces and policies per seed, as in Sec. 5.3) and averages summaries.
// newPolicy must return a fresh policy for each seed. When cfg.Parallel
// is above 1, that many seeds are simulated concurrently; every seed's
// run is deterministic and results land in per-seed slots reduced in
// seed order, so the average is identical to a serial run.
func RunSeeds(seeds []int64, genTrace func(rng *rand.Rand) workload.Trace,
	newPolicy func(seed int64) sched.Policy, cfg Config) metrics.Summary {
	full := RunSeedsFull(seeds, genTrace, newPolicy, cfg)
	runs := make([]metrics.Summary, len(full))
	tputs := make([]float64, len(full))
	goods := make([]float64, len(full))
	for i, res := range full {
		runs[i] = res.Summary
		tputs[i] = res.AvgThroughput
		goods[i] = res.AvgGoodput
	}
	avg := metrics.Average(runs)
	avg.AvgThroughputX = metrics.Mean(tputs)
	avg.AvgGoodputX = metrics.Mean(goods)
	return avg
}

// RunSeedsFull is RunSeeds without the reduction: it returns every
// seed's full Result in seed order, for callers that need more than the
// averaged summary (per-tenant breakdowns, admission logs). Parallelism
// follows the same Config.Parallel contract as RunSeeds.
func RunSeedsFull(seeds []int64, genTrace func(rng *rand.Rand) workload.Trace,
	newPolicy func(seed int64) sched.Policy, cfg Config) []Result {
	// Concurrent seeds already saturate the cores; letting each seed's
	// cluster also default RefitWorkers to GOMAXPROCS would run up to
	// seeds x cores L-BFGS fits at once for no added throughput. Split
	// the budget: an unset knob gets the cores left per concurrent seed.
	// An explicit value is respected, and results are identical either
	// way — worker counts never change traces.
	if inFlight := min(cfg.Parallel, len(seeds)); inFlight > 1 && cfg.RefitWorkers == 0 {
		cfg.RefitWorkers = max(1, runtime.GOMAXPROCS(0)/inFlight)
	}
	out := make([]Result, len(seeds))
	par.For(cfg.Parallel, len(seeds), func(i int) {
		seed := seeds[i]
		rng := rand.New(rand.NewSource(seed))
		trace := genTrace(rng)
		c := cfg
		c.Seed = seed
		out[i] = NewCluster(trace, newPolicy(seed), c).Run()
	})
	return out
}
