package sim

import (
	"strings"
	"testing"
)

func TestEventLogDisabledByDefault(t *testing.T) {
	tr := smallOnly(smallTrace(31, 6))
	res := NewCluster(tr, fastPollux(31), fastCfg(31)).Run()
	if len(res.Events) != 0 {
		t.Errorf("events recorded without LogEvents: %d", len(res.Events))
	}
}

func TestEventLogLifecycle(t *testing.T) {
	tr := smallOnly(smallTrace(32, 8))
	if len(tr.Jobs) < 3 {
		t.Skip("trace too small")
	}
	cfg := fastCfg(32)
	cfg.LogEvents = true
	res := NewCluster(tr, fastPollux(32), cfg).Run()
	if res.Summary.Completed != len(tr.Jobs) {
		t.Fatalf("completed %d of %d", res.Summary.Completed, len(tr.Jobs))
	}

	// Every job must have exactly one submit and one finish, in order,
	// with at least one allocation in between.
	type life struct {
		submit, finish float64
		allocs         int
		batches        int
	}
	lives := map[int]*life{}
	for _, e := range res.Events {
		l := lives[e.Job]
		if l == nil {
			l = &life{submit: -1, finish: -1}
			lives[e.Job] = l
		}
		switch e.Kind {
		case EventSubmit:
			if l.submit >= 0 {
				t.Fatalf("job %d submitted twice", e.Job)
			}
			l.submit = e.Time
		case EventFinish:
			if l.finish >= 0 {
				t.Fatalf("job %d finished twice", e.Job)
			}
			l.finish = e.Time
		case EventAllocate:
			l.allocs++
			if !e.Placement.Valid() && e.Placement.GPUs != 0 {
				t.Fatalf("invalid placement event: %+v", e)
			}
		case EventBatchChange:
			l.batches++
			if e.Batch <= 0 {
				t.Fatalf("non-positive batch event: %+v", e)
			}
		}
	}
	for _, j := range tr.Jobs {
		l := lives[j.ID]
		if l == nil {
			t.Fatalf("job %d has no events", j.ID)
		}
		if l.submit < 0 || l.finish < 0 {
			t.Fatalf("job %d missing submit/finish", j.ID)
		}
		if l.finish <= l.submit {
			t.Fatalf("job %d finish %v <= submit %v", j.ID, l.finish, l.submit)
		}
		if l.allocs == 0 {
			t.Fatalf("job %d never allocated", j.ID)
		}
	}
}

func TestEventLogTimesMonotone(t *testing.T) {
	tr := smallOnly(smallTrace(33, 6))
	cfg := fastCfg(33)
	cfg.LogEvents = true
	res := NewCluster(tr, fastPollux(33), cfg).Run()
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time {
			t.Fatalf("event log not time-ordered at %d: %v < %v",
				i, res.Events[i].Time, res.Events[i-1].Time)
		}
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Time: 10, Job: 3, Kind: EventSubmit}, "submit"},
		{Event{Time: 20, Job: 3, Kind: EventFinish}, "finish"},
		{Event{Time: 30, Job: 3, Kind: EventBatchChange, Batch: 512}, "batch=512"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("event string %q missing %q", got, c.want)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown event kind has empty string")
	}
}
