package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/workload"
)

// smallTrace builds a quick trace of small jobs for fast tests.
func smallTrace(seed int64, n int) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	return workload.Generate(rng, workload.Options{Jobs: n, Hours: 0.5})
}

// smallOnly filters a trace to resnet18/neumf jobs so tests finish fast.
func smallOnly(tr workload.Trace) workload.Trace {
	out := workload.Trace{Duration: tr.Duration}
	for _, j := range tr.Jobs {
		if j.Model == "resnet18" || j.Model == "neumf" {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

func fastCfg(seed int64) Config {
	return Config{
		Nodes:          4,
		GPUsPerNode:    4,
		Tick:           2,
		UseTunedConfig: true,
		MaxTime:        12 * 3600,
		Seed:           seed,
	}
}

func fastPollux(seed int64) sched.Policy {
	return sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, seed)
}

func TestClusterCompletesSmallTraceAllPolicies(t *testing.T) {
	tr := smallOnly(smallTrace(1, 12))
	if len(tr.Jobs) < 4 {
		t.Skip("trace too small after filtering")
	}
	policies := []sched.Policy{
		fastPollux(1),
		sched.NewOptimus(4),
		sched.NewTiresias(),
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			res := NewCluster(tr, p, fastCfg(1)).Run()
			if res.Summary.Completed != len(tr.Jobs) {
				t.Errorf("%s: completed %d of %d jobs", p.Name(), res.Summary.Completed, len(tr.Jobs))
			}
			if res.Summary.AvgJCT <= 0 {
				t.Errorf("%s: AvgJCT = %v", p.Name(), res.Summary.AvgJCT)
			}
			if res.Summary.AvgEfficiency <= 0 || res.Summary.AvgEfficiency > 1 {
				t.Errorf("%s: AvgEfficiency = %v, want in (0, 1]", p.Name(), res.Summary.AvgEfficiency)
			}
		})
	}
}

func TestClusterNeverOversubscribesGPUs(t *testing.T) {
	tr := smallOnly(smallTrace(2, 16))
	cfg := fastCfg(2)
	c := NewCluster(tr, fastPollux(2), cfg)
	// Drive the simulation manually, checking the GPU-capacity invariant
	// at every scheduling application.
	nextSched := 0.0
	nextAgent := 0.0
	for c.now = 0; c.now < 3*3600; c.now += cfg.Tick {
		c.submitArrivals()
		if c.now >= nextAgent {
			c.agentTick()
			nextAgent += 30
		}
		if c.now >= nextSched {
			c.scheduleTick()
			nextSched += 60
			usage := make([]int, cfg.Nodes)
			for _, j := range c.active() {
				for n, g := range j.alloc {
					usage[n] += g
				}
			}
			for n, u := range usage {
				if u > cfg.GPUsPerNode {
					t.Fatalf("t=%v node %d oversubscribed: %d > %d", c.now, n, u, cfg.GPUsPerNode)
				}
			}
		}
		c.advance(cfg.Tick)
		if c.allDone() {
			break
		}
	}
}

func TestRestartDelayPausesProgress(t *testing.T) {
	tr := smallOnly(smallTrace(3, 8))
	cfg := fastCfg(3)
	cfg.RestartDelay = 120
	c := NewCluster(tr, fastPollux(3), cfg)
	// After the first schedule, all newly allocated jobs must be paused
	// for the restart delay.
	c.now = tr.Jobs[len(tr.Jobs)-1].Submit + 1
	c.submitArrivals()
	c.agentTick()
	c.scheduleTick()
	for _, j := range c.active() {
		if j.pl.GPUs > 0 && j.restartUntil < c.now+119 {
			t.Errorf("job %d restartUntil = %v, want >= now+120", j.wj.ID, j.restartUntil)
		}
	}
	before := make(map[int]float64)
	for _, j := range c.active() {
		before[j.wj.ID] = j.progress
	}
	c.advance(cfg.Tick)
	for _, j := range c.active() {
		//pollux:floateq-ok progress must be left untouched during the restart pause; any change is a real bug
		if j.progress != before[j.wj.ID] {
			t.Errorf("job %d progressed during restart delay", j.wj.ID)
		}
	}
}

func TestNoRestartDelayWhenAllocationUnchanged(t *testing.T) {
	tr := smallOnly(smallTrace(4, 6))
	cfg := fastCfg(4)
	c := NewCluster(tr, sched.NewTiresias(), cfg)
	c.now = tr.Duration + 1
	c.submitArrivals()
	c.agentTick()
	c.scheduleTick()
	// Let restart delays elapse, then re-schedule: Tiresias is
	// deterministic, so allocations should be identical and no new
	// delay applied.
	c.now += 200
	c.scheduleTick()
	for _, j := range c.active() {
		if j.pl.GPUs > 0 && j.restartUntil > c.now {
			t.Errorf("job %d penalized without reallocation", j.wj.ID)
		}
	}
}

func TestInterferenceSlowdownExtendsJCT(t *testing.T) {
	tr := smallOnly(smallTrace(5, 10))
	if len(tr.Jobs) < 4 {
		t.Skip("trace too small")
	}
	// Avoidance disabled, with and without slowdown.
	mk := func(slow float64, seed int64) float64 {
		cfg := fastCfg(seed)
		cfg.InterferenceSlowdown = slow
		p := sched.NewPollux(sched.PolluxOptions{
			Population: 20, Generations: 10,
			DisableInterferenceAvoidance: true,
		}, seed)
		res := NewCluster(tr, p, cfg).Run()
		return res.Summary.AvgJCT
	}
	base := mk(0, 7)
	slowed := mk(0.5, 7)
	// The GA is stochastic and the slowdown changes its trajectory, so a
	// small apparent improvement is possible on tiny traces; require only
	// that heavy interference does not *meaningfully* speed things up.
	if slowed < 0.9*base {
		t.Errorf("50%% interference sped things up: %v < %v", slowed, base)
	}
}

func TestPolluxBeatsBaselinesOnUserConfiguredJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow comparison test")
	}
	// Sec. 5.3.1 direction: with realistic user configs, Pollux's JCT
	// advantage over Tiresias is large.
	tr := smallOnly(smallTrace(11, 20))
	cfg := fastCfg(11)
	cfg.UseTunedConfig = false

	pollux := NewCluster(tr, fastPollux(11), cfg).Run()
	tiresias := NewCluster(tr, sched.NewTiresias(), cfg).Run()
	if pollux.Summary.Completed < len(tr.Jobs) {
		t.Fatalf("pollux completed %d of %d", pollux.Summary.Completed, len(tr.Jobs))
	}
	if pollux.Summary.AvgJCT >= tiresias.Summary.AvgJCT {
		t.Errorf("pollux AvgJCT %v not better than tiresias %v",
			pollux.Summary.AvgJCT, tiresias.Summary.AvgJCT)
	}
}

func TestRunSeedsAverages(t *testing.T) {
	cfg := fastCfg(0)
	sum := RunSeeds([]int64{1, 2}, func(rng *rand.Rand) workload.Trace {
		return smallOnly(workload.Generate(rng, workload.Options{Jobs: 8, Hours: 0.25}))
	}, func(seed int64) sched.Policy {
		return fastPollux(seed)
	}, cfg)
	if sum.Total == 0 {
		t.Fatal("no jobs simulated")
	}
	if sum.AvgJCT <= 0 {
		t.Errorf("averaged AvgJCT = %v", sum.AvgJCT)
	}
}

// TestRunSeedsParallelMatchesSerial pins the Config.Parallel contract:
// per-seed runs are independent and deterministic, and summaries reduce
// in seed order, so concurrent fan-out reproduces the serial result
// exactly — every float64 included.
func TestRunSeedsParallelMatchesSerial(t *testing.T) {
	gen := func(rng *rand.Rand) workload.Trace {
		return smallOnly(workload.Generate(rng, workload.Options{Jobs: 8, Hours: 0.25}))
	}
	run := func(parallel int) metrics.Summary {
		cfg := fastCfg(0)
		cfg.Parallel = parallel
		return RunSeeds([]int64{1, 2, 3}, gen, fastPollux, cfg)
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Errorf("parallel RunSeeds diverged from serial:\n%+v\n%+v", parallel, serial)
	}
	if serial.AvgJCT <= 0 {
		t.Errorf("AvgJCT = %v, want > 0", serial.AvgJCT)
	}
}

func TestJobStateProgressAccounting(t *testing.T) {
	tr := smallOnly(smallTrace(6, 6))
	cfg := fastCfg(6)
	res := NewCluster(tr, fastPollux(6), cfg).Run()
	for i, r := range res.Records {
		if r.Finish > 0 && r.Finish <= r.Submit {
			t.Errorf("job %d finished (%v) before submission (%v)", i, r.Finish, r.Submit)
		}
	}
}

// specFor resolves a zoo model by name for tests.
func specFor(name string) *models.Spec {
	return models.ByName(name)
}

// TestRefitWorkersDeterminism is the contract the two-phase agentTick
// must keep: fanning the per-round agent refits over any worker count
// produces the bit-identical Result — summaries, per-job records, and the
// full event log — because the noise-scale rng draws stay on the
// simulation goroutine and fits draw no randomness. Checked on both
// engines.
func TestRefitWorkersDeterminism(t *testing.T) {
	tr := smallOnly(smallTrace(3, 14))
	if len(tr.Jobs) < 4 {
		t.Skip("trace too small after filtering")
	}
	for _, engine := range []string{EngineEvent, EngineTick} {
		t.Run(engine, func(t *testing.T) {
			run := func(workers int) Result {
				cfg := fastCfg(5)
				cfg.Engine = engine
				cfg.LogEvents = true
				cfg.RefitWorkers = workers
				return NewCluster(tr, fastPollux(5), cfg).Run()
			}
			base := run(1)
			for _, w := range []int{2, 8} {
				if got := run(w); !reflect.DeepEqual(base, got) {
					t.Fatalf("RefitWorkers=%d Result differs from RefitWorkers=1", w)
				}
			}
		})
	}
}
