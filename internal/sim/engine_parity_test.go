package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The event engine must reproduce the tick engine's results: same
// semantics, different clock. The two draw different random-number
// sequences (the tick engine profiles one observation per tick, the
// event engine one per segment), so metrics agree statistically rather
// than bitwise; the acceptance bar is 5% on the standard 16-node trace.

// standardTrace is the paper-shaped 16-node evaluation workload used by
// the cross-engine parity checks.
func standardTrace() workload.Trace {
	rng := rand.New(rand.NewSource(1))
	return workload.Generate(rng, workload.Options{
		Jobs: 40, Hours: 2, GPUsPerNode: 4, MaxGPUs: 64,
	})
}

func parityConfig(engine string) Config {
	return Config{
		Nodes: 16, GPUsPerNode: 4, Tick: 1,
		UseTunedConfig: true, Seed: 1, Engine: engine,
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a - b)
	}
	return math.Abs(a/b - 1)
}

func TestEngineParityOnStandardTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-engine comparison")
	}
	tr := standardTrace()
	policies := map[string]func(seed int64) sched.Policy{
		"pollux": func(seed int64) sched.Policy {
			return sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, seed)
		},
		"optimus":  func(seed int64) sched.Policy { return sched.NewOptimus(4) },
		"tiresias": func(seed int64) sched.Policy { return sched.NewTiresias() },
	}
	const tol = 0.05
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			tick := NewCluster(tr, mk(1), parityConfig(EngineTick)).Run()
			event := NewCluster(tr, mk(1), parityConfig(EngineEvent)).Run()

			if tick.Summary.Completed != event.Summary.Completed {
				t.Errorf("completed: tick %d vs event %d",
					tick.Summary.Completed, event.Summary.Completed)
			}
			if d := relDiff(event.Summary.AvgJCT, tick.Summary.AvgJCT); d > tol {
				t.Errorf("avg JCT diverges %.1f%%: tick %v vs event %v",
					100*d, tick.Summary.AvgJCT, event.Summary.AvgJCT)
			}
			if d := relDiff(event.AvgGoodput, tick.AvgGoodput); d > tol {
				t.Errorf("avg goodput diverges %.1f%%: tick %v vs event %v",
					100*d, tick.AvgGoodput, event.AvgGoodput)
			}
			if d := relDiff(event.Summary.AvgEfficiency, tick.Summary.AvgEfficiency); d > tol {
				t.Errorf("avg efficiency diverges %.1f%%: tick %v vs event %v",
					100*d, tick.Summary.AvgEfficiency, event.Summary.AvgEfficiency)
			}
			if d := relDiff(event.CostNodeSeconds, tick.CostNodeSeconds); d > tol {
				t.Errorf("node-seconds diverge %.1f%%: tick %v vs event %v",
					100*d, tick.CostNodeSeconds, event.CostNodeSeconds)
			}
		})
	}
}

// TestEngineParitySmallTraceShort is the -short-friendly parity check: a
// small trace, still comparing both engines end to end.
func TestEngineParitySmallTraceShort(t *testing.T) {
	tr := smallOnly(smallTrace(9, 10))
	if len(tr.Jobs) < 3 {
		t.Skip("trace too small after filtering")
	}
	mkCfg := func(engine string) Config {
		cfg := fastCfg(9)
		cfg.Engine = engine
		return cfg
	}
	tick := NewCluster(tr, sched.NewTiresias(), mkCfg(EngineTick)).Run()
	event := NewCluster(tr, sched.NewTiresias(), mkCfg(EngineEvent)).Run()
	if tick.Summary.Completed != event.Summary.Completed {
		t.Fatalf("completed: tick %d vs event %d", tick.Summary.Completed, event.Summary.Completed)
	}
	if d := relDiff(event.Summary.AvgJCT, tick.Summary.AvgJCT); d > 0.05 {
		t.Errorf("avg JCT diverges %.1f%%: tick %v vs event %v",
			100*d, tick.Summary.AvgJCT, event.Summary.AvgJCT)
	}
}

// TestUnknownEngineRejected: a typo'd engine name must fail loudly, not
// silently select the event engine (which would make e.g. a hand-rolled
// parity check compare the event engine against itself).
func TestUnknownEngineRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Config{Engine: \"ticks\"} did not panic")
		}
	}()
	NewCluster(workload.Trace{}, sched.NewTiresias(), Config{Engine: "ticks"})
}

// TestEventEngineAdmitsBoundaryAlignedArrival: a job whose submit time
// coincides exactly with a scheduling instant must be admitted to that
// round (as in the tick engine), not deferred a full SchedInterval by
// the cluster-before-job event ordering.
func TestEventEngineAdmitsBoundaryAlignedArrival(t *testing.T) {
	tr := workload.Trace{Jobs: []workload.Job{{
		ID: 1, Model: "resnet18", Submit: 60, // exactly the 2nd sched round
		TunedGPUs: 4, TunedBatch: 512, UserGPUs: 4, UserBatch: 512,
	}}}
	cfg := Config{
		Nodes: 4, GPUsPerNode: 4, UseTunedConfig: true,
		Seed: 1, Engine: EngineEvent, LogEvents: true,
	}
	res := NewCluster(tr, sched.NewTiresias(), cfg).Run()
	var submitAt, allocAt float64
	allocAt = -1
	for _, e := range res.Events {
		switch e.Kind {
		case EventSubmit:
			submitAt = e.Time
		case EventAllocate:
			if allocAt < 0 {
				allocAt = e.Time
			}
		}
	}
	if submitAt != 60 {
		t.Fatalf("submit recorded at %v, want 60", submitAt)
	}
	if allocAt != 60 {
		t.Errorf("first allocation at %v, want 60 (same round as the boundary-aligned arrival)", allocAt)
	}
}

// TestEngineParityAutoscaleOverlappingProvisions: with ProvisionDelay
// longer than the decision interval, scale-up requests overlap and each
// batch must only join at its own readiness time — the engines' node
// trajectories must still agree.
func TestEngineParityAutoscaleOverlappingProvisions(t *testing.T) {
	spec := parityImagenet()
	run := func(engine string) AutoscaleResult {
		cfg := autoscaleCfg(true)
		cfg.Engine = engine
		cfg.ProvisionDelay = 150 // > Interval (60 s): requests overlap
		cfg.SamplePeriod = 60
		return RunAutoscale(spec, sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75), cfg)
	}
	tick := run(EngineTick)
	event := run(EngineEvent)
	if !tick.Completed || !event.Completed {
		t.Fatalf("completed: tick=%v event=%v", tick.Completed, event.Completed)
	}
	if d := relDiff(event.CompletionTime, tick.CompletionTime); d > 0.10 {
		t.Errorf("completion time diverges %.1f%%: tick %v vs event %v",
			100*d, tick.CompletionTime, event.CompletionTime)
	}
	if d := relDiff(event.CostNodeSeconds, tick.CostNodeSeconds); d > 0.10 {
		t.Errorf("cost diverges %.1f%%: tick %v vs event %v",
			100*d, tick.CostNodeSeconds, event.CostNodeSeconds)
	}
}

// parityImagenet is the workload for the autoscale parity checks: 4
// shrunk epochs rather than scaledDownImagenet's 2, because a lone
// 2-epoch trajectory is short enough that one differing scaling
// decision swings the cost integral by ~20%; from 4 epochs on the
// engines agree within a few percent.
func parityImagenet() *models.Spec {
	s := *models.ByName("resnet50")
	s.Epochs = 4
	return &s
}

// TestEngineParityAutoscale compares the two single-job autoscaling
// loops. A lone trajectory has no averaging across jobs, so the bar is
// looser (10%) but the qualitative Fig. 10 conclusions must agree.
func TestEngineParityAutoscale(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-engine comparison")
	}
	spec := parityImagenet()
	run := func(engine string, goodput bool) AutoscaleResult {
		cfg := autoscaleCfg(goodput)
		cfg.Engine = engine
		var scaler sched.Autoscaler
		if goodput {
			scaler = sched.NewGoodputAutoscaler(1, 16, 0.55, 0.75)
		} else {
			scaler = sched.NewThroughputAutoscaler(1, 16, 0.9)
		}
		return RunAutoscale(spec, scaler, cfg)
	}
	for _, goodput := range []bool{true, false} {
		tick := run(EngineTick, goodput)
		event := run(EngineEvent, goodput)
		if tick.Completed != event.Completed {
			t.Fatalf("goodput=%v: completed tick=%v event=%v", goodput, tick.Completed, event.Completed)
		}
		if d := relDiff(event.CompletionTime, tick.CompletionTime); d > 0.10 {
			t.Errorf("goodput=%v: completion time diverges %.1f%%: tick %v vs event %v",
				goodput, 100*d, tick.CompletionTime, event.CompletionTime)
		}
		if d := relDiff(event.CostNodeSeconds, tick.CostNodeSeconds); d > 0.10 {
			t.Errorf("goodput=%v: cost diverges %.1f%%: tick %v vs event %v",
				goodput, 100*d, tick.CostNodeSeconds, event.CostNodeSeconds)
		}
	}
}
