package sim

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestClusterAutoscaleCompletesAndSavesCost(t *testing.T) {
	tr := smallOnly(smallTrace(21, 14))
	if len(tr.Jobs) < 5 {
		t.Skip("trace too small")
	}

	fixed := fastCfg(21)
	fixed.Nodes = 8
	resFixed := NewCluster(tr, fastPollux(21), fixed).Run()
	if resFixed.Summary.Completed != len(tr.Jobs) {
		t.Fatalf("fixed cluster completed %d of %d", resFixed.Summary.Completed, len(tr.Jobs))
	}

	auto := fastCfg(21)
	auto.Nodes = 8
	auto.Autoscale = &ClusterAutoscaleConfig{MinNodes: 1, MaxNodes: 8}
	resAuto := NewCluster(tr, fastPollux(21), auto).Run()
	if resAuto.Summary.Completed != len(tr.Jobs) {
		t.Fatalf("autoscaled cluster completed %d of %d", resAuto.Summary.Completed, len(tr.Jobs))
	}

	// Autoscaling trades some completion time for cost: node-seconds
	// must drop relative to holding the max-size cluster the whole run.
	if resAuto.CostNodeSeconds >= resFixed.CostNodeSeconds {
		t.Errorf("autoscaled cost %v not below fixed cost %v",
			resAuto.CostNodeSeconds, resFixed.CostNodeSeconds)
	}
	if resAuto.Summary.AvgJCT > 3*resFixed.Summary.AvgJCT {
		t.Errorf("autoscaled JCT %v more than 3x fixed %v",
			resAuto.Summary.AvgJCT, resFixed.Summary.AvgJCT)
	}
}

func TestClusterAutoscaleNeverExceedsBounds(t *testing.T) {
	tr := smallOnly(smallTrace(22, 10))
	cfg := fastCfg(22)
	cfg.Nodes = 8
	cfg.Autoscale = &ClusterAutoscaleConfig{MinNodes: 2, MaxNodes: 6}
	c := NewCluster(tr, fastPollux(22), cfg)
	nextSched := 0.0
	nextAgent := 0.0
	for c.now = 0; c.now < 2*3600; c.now += cfg.Tick {
		c.submitArrivals()
		if c.now >= nextAgent {
			c.agentTick()
			nextAgent += 30
		}
		if c.now >= nextSched {
			c.autoscaleTick()
			c.scheduleTick()
			nextSched += 60
			total := c.activeNodes + c.provisioning
			if total < 2 || total > 6 {
				t.Fatalf("t=%v cluster size %d outside [2, 6]", c.now, total)
			}
			// Allocations must fit the active capacity.
			for _, j := range c.active() {
				for n := c.activeNodes; n < len(j.alloc); n++ {
					if j.alloc[n] > 0 {
						t.Fatalf("t=%v job %d allocated on inactive node %d", c.now, j.wj.ID, n)
					}
				}
			}
		}
		c.advance(cfg.Tick)
		if c.allDone() {
			break
		}
	}
}

func TestClusterAutoscaleIgnoredForBaselines(t *testing.T) {
	tr := smallOnly(smallTrace(23, 6))
	cfg := fastCfg(23)
	cfg.Nodes = 4
	cfg.Autoscale = &ClusterAutoscaleConfig{MinNodes: 1, MaxNodes: 4}
	c := NewCluster(tr, sched.NewTiresias(), cfg)
	c.now = tr.Duration
	c.submitArrivals()
	c.autoscaleTick() // must be a no-op for non-Pollux policies
	if c.activeNodes != 1 {
		t.Errorf("baseline changed cluster size to %d", c.activeNodes)
	}
}

func TestPolluxDesiredClusterNodesGrowsWithLoad(t *testing.T) {
	// More jobs should justify a larger cluster at the same utility band.
	mkView := func(jobs int) *sched.ClusterView {
		rng := rand.New(rand.NewSource(5))
		tr := workload.Generate(rng, workload.Options{Jobs: jobs, Hours: 0.1})
		v := &sched.ClusterView{Capacity: []int{4, 4, 4, 4, 4, 4, 4, 4}}
		for i, j := range tr.Jobs {
			spec := specFor(j.Model)
			v.Jobs = append(v.Jobs, sched.JobView{
				ID:     i,
				Model:  spec.GoodputModel(0.5),
				GPUCap: 32,
			})
		}
		return v
	}
	p := sched.NewPollux(sched.PolluxOptions{Population: 20, Generations: 10}, 9)
	small := p.DesiredClusterNodes(mkView(2), 1, 8, 0.55, 0.75)
	large := p.DesiredClusterNodes(mkView(12), 1, 8, 0.55, 0.75)
	if large < small {
		t.Errorf("desired nodes shrank with more jobs: %d -> %d", small, large)
	}
	if small < 1 || large > 8 {
		t.Errorf("bounds violated: %d, %d", small, large)
	}
}
