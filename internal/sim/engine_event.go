package sim

import (
	"math"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/models"
)

// Event kinds for the cluster event engine, in intra-instant execution
// order within each eventsim class. At one timestamp the agent round runs
// before provisioning completion, which runs before the scheduling round
// (mirroring the tick engine's per-tick sequence); all of those run
// before any per-job event at the same instant.
const (
	// Cluster-class kinds.
	evAgent     = iota // agent report/tune round, every AgentInterval
	evProvision        // cluster-autoscale provisioning completion
	evSched            // autoscale decision + scheduling round, every SchedInterval
	// Job-class kinds.
	evArrival   // job submission
	evRestart   // checkpoint-restart delay expiry
	evMilestone // predicted decay-boundary crossing or job finish
)

// jobRate is a job's training rate frozen at the most recent event. The
// engine advances progress in closed form, progress += good * dt, between
// events; every cluster event recomputes the rate from the job's current
// state, so the rate is piecewise-constant over intervals of at most
// AgentInterval.
type jobRate struct {
	m     int     // effective batch size after placement clamping
	tIter float64 // true seconds per iteration (incl. interference)
	tput  float64 // examples per second
	eff   float64 // statistical efficiency at the freeze point
	good  float64 // goodput = tput * eff, in m0-equivalent examples/s
}

// runEvent is the discrete-event engine: the clock jumps between pending
// events — job arrivals, agent report/tune rounds, scheduling rounds,
// provisioning completions, restart expiries, and the closed-form
// predicted progress milestones (learning-rate decay crossings and job
// finishes) — instead of stepping a fixed tick.
func (c *Cluster) runEvent() Result {
	cfg := c.cfg
	var q eventsim.Queue

	byID := make(map[int]*jobState, len(c.jobs))
	for _, j := range c.jobs {
		byID[j.wj.ID] = j
		q.Push(eventsim.Event{
			Time: j.wj.Submit, Class: eventsim.ClassJob, Job: j.wj.ID, Kind: evArrival,
		})
	}
	q.Push(eventsim.Event{Time: 0, Class: eventsim.ClassCluster, Kind: evAgent})
	q.Push(eventsim.Event{Time: 0, Class: eventsim.ClassCluster, Kind: evSched})

	// The loop is the generic kernel driver on a virtual clock; the
	// live-cluster replay engine drives the identical loop shape with a
	// wall clock (see internal/eventsim.Clock).
	eventsim.Drive(&q, eventsim.Virtual{}, 0, func(e eventsim.Event) bool {
		if e.Time > cfg.MaxTime {
			return false
		}
		c.integrateCost(e.Time)
		c.now = e.Time

		switch e.Kind {
		case evArrival:
			j := byID[e.Job]
			if j.submitted {
				break // picked up by a coincident cluster round below
			}
			// Ties pop in ascending job-ID order (eventsim ordering),
			// matching submitArrivals' trace order, so the admission
			// stage sees arrivals identically under both paths.
			c.submitJob(j)
			j.lastT = c.now

		case evAgent:
			// Cluster events pop before job events at equal timestamps,
			// so a job whose submit time coincides exactly with this
			// round would otherwise miss it and wait a whole interval
			// (the tick engine admits arrivals first); admit due
			// arrivals here, leaving their evArrival a no-op.
			c.submitArrivals()
			c.advanceAll()
			c.agentTick()
			c.refreshPredictions(&q)
			q.Push(eventsim.Event{
				Time: c.now + cfg.AgentInterval, Class: eventsim.ClassCluster, Kind: evAgent,
			})

		case evProvision:
			if c.provisioning > 0 && c.now >= c.provisionAt {
				c.activeNodes += c.provisioning
				c.provisioning = 0
			}

		case evSched:
			c.submitArrivals()
			c.advanceAll()
			if cfg.Autoscale != nil {
				c.autoscaleTick()
				if c.provisioning > 0 {
					q.Push(eventsim.Event{
						Time: c.provisionAt, Class: eventsim.ClassCluster, Kind: evProvision,
					})
				}
			}
			c.scheduleTick()
			c.refreshPredictions(&q)
			q.Push(eventsim.Event{
				Time: c.now + cfg.SchedInterval, Class: eventsim.ClassCluster, Kind: evSched,
			})

		case evRestart:
			// Semantically redundant: advanceJobTo already excludes the
			// pause window from every segment, and the rate is unchanged
			// across it (progress was frozen), so this re-anchor changes
			// nothing. It is kept as an explicit event so restart-delay
			// expiries appear on the timeline like every other state
			// boundary; the cost is one heap entry per re-allocation.
			c.advanceJobTo(byID[e.Job], c.now)

		case evMilestone:
			j := byID[e.Job]
			if e.Version != j.version || j.done {
				break // stale prediction, superseded by a later event
			}
			c.advanceJobTo(j, c.now)
			// The event time was computed so the frozen rate lands exactly
			// on the target; snap away the floating-point residue.
			j.progress = j.predTarget
			if j.predTarget >= j.spec.TotalWork() {
				c.finishJob(j)
			} else {
				// Learning-rate decay boundary: phi jumps here, so the
				// rate and the next milestone must be recomputed.
				c.recomputeRate(j)
				c.schedulePrediction(&q, j)
			}
		}

		return !c.allDone()
	})

	// Unfinished tail: account running time and cluster cost up to the
	// horizon, as the tick engine does.
	if !c.allDone() && c.now < cfg.MaxTime {
		c.integrateCost(cfg.MaxTime)
		c.now = cfg.MaxTime
		c.advanceAll()
	}
	return c.result()
}

// integrateCost accrues the paid cluster size (active plus provisioning
// nodes) over the interval since the last event.
func (c *Cluster) integrateCost(t float64) {
	if t <= c.lastCost {
		return
	}
	c.nodeSeconds += float64(c.activeNodes+c.provisioning) * (t - c.lastCost)
	c.lastCost = t
}

// advanceAll brings every active job's training state up to c.now.
func (c *Cluster) advanceAll() {
	for _, j := range c.jobs {
		if j.submitted && !j.done {
			c.advanceJobTo(j, c.now)
		}
	}
}

// advanceJobTo advances one job's progress and accounting in closed form
// from its frozen rate, excluding any portion of the interval spent in a
// checkpoint-restart pause. The whole segment is profiled as the
// equivalent number of per-tick observations the tick engine would have
// recorded, with the measurement noise of their mean (one uniform draw
// scaled by 1/sqrt(n) has the same variance as the mean of n draws), so
// the agent sees statistically identical profiling either way.
func (c *Cluster) advanceJobTo(j *jobState, t float64) {
	if t <= j.lastT {
		return
	}
	start := j.lastT
	if j.restartUntil > start {
		start = j.restartUntil
		if start >= t {
			j.lastT = t
			return
		}
	}
	dt := t - start
	if j.rate.good > 0 {
		j.progress += j.rate.good * dt
		j.gpuTime += float64(j.pl.GPUs) * dt
		j.effSum += j.rate.eff * dt
		j.tputSum += j.rate.tput * dt
		j.goodSum += j.rate.good * dt
		j.exampleSum += j.rate.tput * dt
		j.runTime += dt
		n := observationCount(dt, c.cfg.Tick)
		noisy := j.rate.tIter * (1 + c.cfg.NoiseFrac*(c.rng.Float64()*2-1)/sqrtN(n))
		j.agent.RecordSampleN(j.pl, j.rate.m, noisy, n)
	}
	j.lastT = t
}

// recomputeRate freezes the job's current training rate, applying the
// same placement clamping and interference slowdown as the tick engine's
// per-tick advance. The statistical efficiency drifts with progress as
// the noise scale grows, so instead of the left-endpoint value the rate
// uses a midpoint estimate: efficiency evaluated at the progress the job
// will have reached half a refresh interval ahead (rates are re-frozen
// at least every AgentInterval), clamped at the next decay boundary so
// the jump there is never smeared backwards.
func (c *Cluster) recomputeRate(j *jobState) {
	j.rate = jobRate{}
	if !j.submitted || j.done || j.pl.GPUs == 0 {
		return
	}
	m := j.batch
	if maxFit := j.pl.GPUs * j.spec.MaxBatchPerGPU; m > maxFit {
		m = maxFit
	}
	if m < j.spec.M0 {
		return // cannot run: initial batch does not fit
	}
	tIter := j.spec.Truth.TIter(j.pl, float64(m))
	if j.interfered && c.cfg.InterferenceSlowdown > 0 {
		tIter /= 1 - c.cfg.InterferenceSlowdown
	}
	tput := float64(m) / tIter
	eff := midpointEfficiency(j.spec, m, tput, j.progress, c.cfg.AgentInterval)
	j.rate = jobRate{m: m, tIter: tIter, tput: tput, eff: eff, good: tput * eff}
}

// midpointEfficiency returns the statistical efficiency to freeze into a
// training rate for batch m at the given progress: evaluated at the
// progress the job will have reached half a refresh interval ahead
// (rates are re-frozen at least every agentInterval), clamped at total
// work and at the next decay boundary so the phi jump there is never
// smeared backwards. Shared by the cluster and single-job event engines
// so the closed-form advance cannot drift between them.
func midpointEfficiency(spec *models.Spec, m int, tput, progress, agentInterval float64) float64 {
	total := spec.TotalWork()
	eff := core.Efficiency(spec.Phi(progress/total), spec.M0, m)
	mid := progress + tput*eff*agentInterval/2
	if mid > total {
		mid = total
	}
	for _, d := range spec.Decays {
		if pd := d.Progress * total; pd > progress && mid > pd {
			mid = pd
		}
	}
	return core.Efficiency(spec.Phi(mid/total), spec.M0, m)
}

// nextMilestoneTarget returns the next progress milestone for the
// closed-form prediction: the nearer of the next learning-rate decay
// boundary and job completion.
func nextMilestoneTarget(spec *models.Spec, progress float64) float64 {
	total := spec.TotalWork()
	target := total
	for _, d := range spec.Decays {
		if pd := d.Progress * total; pd > progress && pd < target {
			target = pd
		}
	}
	return target
}

// refreshPredictions re-freezes rates and reschedules milestone events
// for every active job after a cluster event (which may have changed
// allocations, batch sizes, restart delays, or interference), and turns
// freshly charged restart delays into expiry events.
func (c *Cluster) refreshPredictions(q *eventsim.Queue) {
	for _, j := range c.jobs {
		if !j.submitted || j.done {
			continue
		}
		c.recomputeRate(j)
		c.schedulePrediction(q, j)
		//pollux:floateq-ok identity check against a stored copy of the same value; any difference means a fresh restart event
		if j.restartUntil > c.now && j.restartUntil != j.restartEv {
			j.restartEv = j.restartUntil
			q.Push(eventsim.Event{
				Time: j.restartUntil, Class: eventsim.ClassJob, Job: j.wj.ID, Kind: evRestart,
			})
		}
	}
}

// schedulePrediction computes, in closed form from the frozen rate, the
// job's next progress milestone — the nearer of the next learning-rate
// decay boundary and job completion — and schedules it. Any previously
// scheduled milestone is invalidated by the version bump.
func (c *Cluster) schedulePrediction(q *eventsim.Queue, j *jobState) {
	j.version++
	if j.rate.good <= 0 {
		return // paused or unallocated: nothing will happen on its own
	}
	target := nextMilestoneTarget(j.spec, j.progress)
	start := c.now
	if j.restartUntil > start {
		start = j.restartUntil
	}
	t := start + (target-j.progress)/j.rate.good
	// A milestone beyond the next rate refresh (at most AgentInterval
	// away) is guaranteed to be superseded before it can fire; pushing
	// it would only pile dead events into the heap on long traces. The
	// refresh reschedules it once it is near enough.
	if t > c.now+c.cfg.AgentInterval {
		return
	}
	j.predTarget = target
	q.Push(eventsim.Event{
		Time:    t,
		Class:   eventsim.ClassJob,
		Job:     j.wj.ID,
		Kind:    evMilestone,
		Version: j.version,
	})
}

// observationCount converts an advanced segment into the number of
// per-tick profiling observations the tick engine would have made.
func observationCount(dt, tick float64) int {
	if tick <= 0 {
		tick = 1
	}
	n := int(dt/tick + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func sqrtN(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Sqrt(float64(n))
}

// finishJob completes a job at the current instant and releases its
// resources. Interference flags of co-located jobs are refreshed at the
// next scheduling round, exactly as in the tick engine.
func (c *Cluster) finishJob(j *jobState) {
	j.done = true
	j.finish = c.now
	c.record(Event{Time: j.finish, Job: j.wj.ID, Kind: EventFinish})
	for n := range j.alloc {
		j.alloc[n] = 0
	}
	j.pl = core.Placement{}
	j.rate = jobRate{}
}
