package sim

import (
	"fmt"

	"repro/internal/core"
)

// EventKind labels a scheduling-relevant state change in a job's life.
type EventKind int

const (
	// EventSubmit fires when the job enters the cluster queue.
	EventSubmit EventKind = iota
	// EventAllocate fires when a job's placement changes (including the
	// first start and pauses to zero GPUs).
	EventAllocate
	// EventBatchChange fires when the Pollux agent re-tunes the batch.
	EventBatchChange
	// EventFinish fires when the job completes its work.
	EventFinish
	// EventReject fires when the admission stage turns the job away at
	// submission; a rejected job never runs.
	EventReject
)

func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventAllocate:
		return "allocate"
	case EventBatchChange:
		return "batch"
	case EventFinish:
		return "finish"
	case EventReject:
		return "reject"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry in the simulation's event log.
type Event struct {
	Time      float64
	Job       int // workload job ID
	Kind      EventKind
	Placement core.Placement // for EventAllocate
	Batch     int            // for EventBatchChange
}

func (e Event) String() string {
	switch e.Kind {
	case EventAllocate:
		return fmt.Sprintf("t=%.0fs job=%d allocate %s", e.Time, e.Job, e.Placement)
	case EventBatchChange:
		return fmt.Sprintf("t=%.0fs job=%d batch=%d", e.Time, e.Job, e.Batch)
	default:
		return fmt.Sprintf("t=%.0fs job=%d %s", e.Time, e.Job, e.Kind)
	}
}

// record appends an event when logging is enabled.
func (c *Cluster) record(e Event) {
	if !c.cfg.LogEvents {
		return
	}
	c.events = append(c.events, e)
}
