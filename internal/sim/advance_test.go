package sim

import (
	"math"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sched"
	"repro/internal/workload"
)

// singleJobCluster builds a cluster holding one running resnet18 job on 4
// co-located GPUs, for exercising the progress-advance primitives
// directly.
func singleJobCluster(engine string) (*Cluster, *jobState) {
	tr := workload.Trace{Jobs: []workload.Job{{
		ID: 1, Model: "resnet18", Submit: 0,
		TunedGPUs: 4, TunedBatch: 512, UserGPUs: 4, UserBatch: 512,
	}}}
	cfg := Config{Nodes: 4, GPUsPerNode: 4, Tick: 1, UseTunedConfig: true, Seed: 42, Engine: engine}
	c := NewCluster(tr, sched.NewTiresias(), cfg)
	j := c.jobs[0]
	j.submitted = true
	j.alloc[0] = 4
	j.pl = sched.PlacementOf(j.alloc)
	return c, j
}

// TestClosedFormAdvanceIsAdditive: advancing a job in one closed-form
// jump must equal advancing it through many sub-segments at the same
// frozen rate — the defining property that lets the event engine skip
// the time between events.
func TestClosedFormAdvanceIsAdditive(t *testing.T) {
	one, jOne := singleJobCluster(EngineEvent)
	many, jMany := singleJobCluster(EngineEvent)
	one.recomputeRate(jOne)
	many.recomputeRate(jMany)
	if jOne.rate.good <= 0 {
		t.Fatal("job has no training rate")
	}

	one.advanceJobTo(jOne, 300)
	for step := 1; step <= 100; step++ {
		many.advanceJobTo(jMany, float64(step)*3)
	}

	if d := math.Abs(jOne.progress/jMany.progress - 1); d > 1e-9 {
		t.Errorf("single jump progress %v vs subdivided %v (rel diff %v)",
			jOne.progress, jMany.progress, d)
	}
	//pollux:floateq-ok run time accumulates the same exact tick deltas either way; equality is exact by construction
	if jOne.runTime != jMany.runTime {
		t.Errorf("runTime: single %v vs subdivided %v", jOne.runTime, jMany.runTime)
	}
	if d := math.Abs(jOne.gpuTime/jMany.gpuTime - 1); d > 1e-9 {
		t.Errorf("gpuTime: single %v vs subdivided %v", jOne.gpuTime, jMany.gpuTime)
	}
}

// TestClosedFormAdvanceMatchesTickAccumulation: over one agent interval
// the closed-form jump must agree with the tick engine's per-tick
// accumulation to well under the 5% cross-engine tolerance (the only
// difference is that the tick engine re-reads the slowly drifting
// efficiency every second).
func TestClosedFormAdvanceMatchesTickAccumulation(t *testing.T) {
	ev, jEv := singleJobCluster(EngineEvent)
	tk, jTk := singleJobCluster(EngineTick)

	ev.recomputeRate(jEv)
	ev.advanceJobTo(jEv, 30)

	for tk.now = 0; tk.now < 30; tk.now += tk.cfg.Tick {
		tk.advance(tk.cfg.Tick)
	}

	if jEv.progress <= 0 || jTk.progress <= 0 {
		t.Fatalf("no progress: event %v tick %v", jEv.progress, jTk.progress)
	}
	if d := math.Abs(jEv.progress/jTk.progress - 1); d > 0.005 {
		t.Errorf("closed-form progress %v vs tick accumulation %v (rel diff %v)",
			jEv.progress, jTk.progress, d)
	}
	if d := math.Abs(jEv.runTime - jTk.runTime); d > 1e-9 {
		t.Errorf("runTime: event %v vs tick %v", jEv.runTime, jTk.runTime)
	}
}

// TestClosedFormAdvanceExcludesRestartPause: a checkpoint-restart pause
// inside the advanced interval contributes no progress, run time, or GPU
// time.
func TestClosedFormAdvanceExcludesRestartPause(t *testing.T) {
	c, j := singleJobCluster(EngineEvent)
	c.recomputeRate(j)
	good := j.rate.good

	j.restartUntil = 100
	c.advanceJobTo(j, 300)

	if j.runTime != 200 {
		t.Errorf("runTime = %v, want 200 (300s minus 100s pause)", j.runTime)
	}
	if d := math.Abs(j.progress - good*200); d > 1e-6 {
		t.Errorf("progress = %v, want rate*200 = %v", j.progress, good*200)
	}

	// A pause covering the whole interval freezes the job entirely.
	c2, j2 := singleJobCluster(EngineEvent)
	c2.recomputeRate(j2)
	j2.restartUntil = 1000
	c2.advanceJobTo(j2, 300)
	if j2.progress != 0 || j2.runTime != 0 {
		t.Errorf("paused job advanced: progress=%v runTime=%v", j2.progress, j2.runTime)
	}
	if j2.lastT != 300 {
		t.Errorf("paused job lastT = %v, want re-anchored to 300", j2.lastT)
	}
}

// TestEventEngineSnapsDecayBoundaries: a milestone prediction lands
// exactly on the learning-rate decay boundary, so the post-decay rate is
// computed from the jumped noise scale with no boundary-straddling error.
func TestEventEngineSnapsDecayBoundaries(t *testing.T) {
	c, j := singleJobCluster(EngineEvent)
	c.recomputeRate(j)
	if j.rate.good <= 0 {
		t.Fatal("no rate")
	}
	total := j.spec.TotalWork()
	if len(j.spec.Decays) == 0 {
		t.Fatal("spec has no decay milestones")
	}
	first := j.spec.Decays[0].Progress * total

	// The milestone target is the first decay boundary, not completion.
	//pollux:floateq-ok the target is computed from the same decay-boundary product; any difference is a real bug
	if got := nextMilestoneTarget(j.spec, j.progress); got != first {
		t.Errorf("nextMilestoneTarget = %v, want first decay boundary %v", got, first)
	}

	// Far-future milestones are not pushed: they are guaranteed to be
	// superseded at the next rate refresh, so pushing them would only
	// accumulate dead events on long traces.
	var q eventsim.Queue
	c.schedulePrediction(&q, j)
	if wantT := (first - j.progress) / j.rate.good; wantT > c.cfg.AgentInterval {
		if q.Len() != 0 {
			t.Errorf("milestone %vs away pushed despite refresh horizon %vs", wantT, c.cfg.AgentInterval)
		}
	}

	// Start the job just below the boundary: the milestone is now within
	// the refresh horizon and must land exactly on it.
	j.progress = first - j.rate.good*c.cfg.AgentInterval/2
	c.schedulePrediction(&q, j)
	e, ok := q.Pop()
	if !ok {
		t.Fatal("no milestone scheduled for near boundary")
	}
	//pollux:floateq-ok predTarget is a stored copy of the same decay-boundary product; any difference is a real bug
	if j.predTarget != first {
		t.Errorf("predTarget = %v, want first decay boundary %v", j.predTarget, first)
	}
	wantT := c.now + (first-j.progress)/j.rate.good
	if math.Abs(e.Time-wantT) > 1e-9*math.Max(wantT, 1) {
		t.Errorf("milestone time %v, want %v", e.Time, wantT)
	}
}
