package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sched"
)

// AutoscaleConfig controls the cloud auto-scaling scenario of Sec. 5.3.3:
// one large training job whose node count is adjusted over time.
type AutoscaleConfig struct {
	GPUsPerNode   int     // default 4
	MinNodes      int     // default 1
	MaxNodes      int     // default 16
	Interval      float64 // autoscaler decision period; default 60 s
	AgentInterval float64 // default 30 s
	// ProvisionDelay is how long newly requested nodes take to join;
	// the zero value takes the 60 s default, a negative value means
	// instant provisioning. Releases are immediate.
	ProvisionDelay float64
	// RestartDelay defaults to 30 s; negative means free restarts.
	RestartDelay float64
	// AdaptBatchGoodput selects the goodput-optimal batch each interval
	// (Pollux); when false the throughput-optimal (maximum feasible)
	// batch is used (Or et al.).
	AdaptBatchGoodput bool
	// RespectExploreCap applies Pollux's 2x-lifetime-max exploration cap
	// to the node count (part of PolluxAgent's design, not Or et al.'s).
	RespectExploreCap bool
	// NoiseFrac defaults to 0.05; negative means noise-free profiling.
	NoiseFrac float64
	// Tick is the step of the fixed-step engine and the profiling
	// resolution of the event engine (see sim.Config.Tick).
	Tick    float64
	MaxTime float64
	Seed    int64
	// Engine selects EngineEvent (default) or EngineTick, as in Config.
	Engine string
	// SamplePeriod controls the resolution of the recorded time series;
	// default 300 s.
	SamplePeriod float64
}

func (c *AutoscaleConfig) defaults() {
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.MaxNodes < c.MinNodes {
		c.MaxNodes = 16
	}
	if c.Interval <= 0 {
		c.Interval = 60
	}
	if c.AgentInterval <= 0 {
		c.AgentInterval = 30
	}
	if c.ProvisionDelay < 0 {
		c.ProvisionDelay = 0
	} else if c.ProvisionDelay == 0 {
		c.ProvisionDelay = 60
	}
	if c.RestartDelay < 0 {
		c.RestartDelay = 0
	} else if c.RestartDelay == 0 {
		c.RestartDelay = 30
	}
	if c.NoiseFrac < 0 {
		c.NoiseFrac = 0
	} else if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.05
	}
	if c.Tick <= 0 {
		c.Tick = 1
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 14 * 24 * 3600
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 300
	}
	if c.Engine == "" {
		c.Engine = EngineEvent
	}
	if c.Engine != EngineEvent && c.Engine != EngineTick {
		panic(fmt.Sprintf("sim: unknown engine %q (want %q or %q)", c.Engine, EngineEvent, EngineTick))
	}
}

// AutoscalePoint is one sample of the Fig. 10 time series.
type AutoscalePoint struct {
	Time       float64
	Nodes      int // nodes paid for (provisioned + provisioning)
	Batch      int
	Efficiency float64
}

// AutoscaleResult summarizes one autoscaled training run.
type AutoscaleResult struct {
	Points          []AutoscalePoint
	CompletionTime  float64 // seconds to finish training
	CostNodeSeconds float64 // integral of paid nodes over time
	Completed       bool
}

// RunAutoscale trains one job from the model zoo to completion under the
// given autoscaler, reproducing the Fig. 10 comparison between
// goodput-based (Pollux) and throughput-based (Or et al.) scaling. The
// configured engine selects between the discrete-event loop (default) and
// the original fixed-step loop.
func RunAutoscale(spec *models.Spec, scaler sched.Autoscaler, cfg AutoscaleConfig) AutoscaleResult {
	cfg.defaults()
	if cfg.Engine == EngineTick {
		return runAutoscaleTick(spec, scaler, cfg)
	}
	return runAutoscaleEvent(spec, scaler, cfg)
}

// runAutoscaleTick is the fixed-step single-job autoscaling loop, kept as
// the parity oracle for runAutoscaleEvent.
func runAutoscaleTick(spec *models.Spec, scaler sched.Autoscaler, cfg AutoscaleConfig) AutoscaleResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ag := agent.New(spec.M0, spec.Eta0, spec.MaxBatchPerGPU, spec.MaxBatchGlobal)

	var res AutoscaleResult
	nodesReady := cfg.MinNodes // nodes currently usable
	nodesPaid := cfg.MinNodes  // nodes being paid for (incl. provisioning)
	provisionAt := -1.0        // when provisioning nodes become ready
	provisioning := 0

	batch := spec.M0
	progress := 0.0
	restartUntil := 0.0
	nextDecision := 0.0
	nextAgent := 0.0
	nextSample := 0.0

	placement := func(n int) core.Placement {
		return core.Placement{GPUs: n * cfg.GPUsPerNode, Nodes: n}
	}

	for now := 0.0; now < cfg.MaxTime; now += cfg.Tick {
		frac := progress / spec.TotalWork()

		// Finish provisioning.
		if provisioning > 0 && now >= provisionAt {
			nodesReady += provisioning
			provisioning = 0
			restartUntil = now + cfg.RestartDelay
		}

		// Agent profiling and tuning. The batched-refit helper is shared
		// with the cluster engines: with this scenario's single agent it
		// runs the (possibly warm-started) fit inline when one is due.
		if now >= nextAgent {
			phi := spec.Phi(frac) * (1 + cfg.NoiseFrac*(rng.Float64()*2-1))
			ag.SetPhi(phi)
			agent.RefitAll([]*agent.Agent{ag}, 1)
			pl := placement(nodesReady)
			if cfg.AdaptBatchGoodput {
				batch, _ = ag.TuneBatch(pl)
			} else {
				batch = sched.ThroughputOptimalBatch(ag.Report(), pl)
			}
			nextAgent += cfg.AgentInterval
		}

		// Autoscaling decision.
		if now >= nextDecision {
			model := ag.Report()
			want := scaler.DesiredNodes(model, cfg.GPUsPerNode)
			if cfg.RespectExploreCap {
				if cap := ag.GPUCap() / cfg.GPUsPerNode; want > cap && cap >= cfg.MinNodes {
					want = cap
				}
			}
			if want < cfg.MinNodes {
				want = cfg.MinNodes
			}
			if want > cfg.MaxNodes {
				want = cfg.MaxNodes
			}
			if want > nodesReady+provisioning {
				add := want - nodesReady - provisioning
				provisioning += add
				nodesPaid += add
				provisionAt = now + cfg.ProvisionDelay
			} else if want < nodesReady {
				nodesReady = want
				nodesPaid = want + provisioning
				restartUntil = now + cfg.RestartDelay
			}
			nextDecision += cfg.Interval
		}

		// Record the time series.
		pl := placement(nodesReady)
		eff := core.Efficiency(spec.Phi(frac), spec.M0, clampBatch(spec, batch, pl))
		if now >= nextSample {
			res.Points = append(res.Points, AutoscalePoint{
				Time: now, Nodes: nodesPaid, Batch: batch, Efficiency: eff,
			})
			nextSample += cfg.SamplePeriod
		}

		// Pay for all held nodes.
		res.CostNodeSeconds += float64(nodesPaid) * cfg.Tick

		// Train.
		if now >= restartUntil {
			m := clampBatch(spec, batch, pl)
			tIter := spec.Truth.TIter(pl, float64(m))
			tput := float64(m) / tIter
			progress += tput * eff * cfg.Tick
			noisy := tIter * (1 + cfg.NoiseFrac*(rng.Float64()*2-1))
			ag.RecordSample(pl, m, noisy)
			if progress >= spec.TotalWork() {
				res.CompletionTime = now + cfg.Tick
				res.Completed = true
				break
			}
		}
	}
	if !res.Completed {
		res.CompletionTime = cfg.MaxTime
	}
	return res
}

// clampBatch restricts a batch to the placement's memory and the model's
// limits, never below m0.
func clampBatch(spec *models.Spec, batch int, pl core.Placement) int {
	if max := pl.GPUs * spec.MaxBatchPerGPU; batch > max {
		batch = max
	}
	if spec.MaxBatchGlobal > 0 && batch > spec.MaxBatchGlobal {
		batch = spec.MaxBatchGlobal
	}
	if batch < spec.M0 {
		batch = spec.M0
	}
	return batch
}
