package sim

import (
	"testing"

	"repro/internal/sched"
)

// TestIncrementalPolluxParityOnStandardTrace is the end-to-end half of
// the incremental-scheduling parity criterion: on the standard 16-node
// evaluation trace, Pollux with dirty-set incremental rounds and
// rack-hierarchical decomposition must reproduce the full
// re-optimization's exhibit metrics within tolerance. The two schedulers
// make genuinely different decisions (the incremental one re-places only
// dirty jobs between FullEvery rounds and optimizes racks before nodes),
// so metrics agree statistically rather than bitwise; the bar is 10% —
// the band the scaled-down exhibits use for JCT-level conclusions.
func TestIncrementalPolluxParityOnStandardTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheduler comparison")
	}
	tr := standardTrace()
	run := func(opts sched.PolluxOptions) Result {
		opts.Population, opts.Generations = 20, 10
		return NewCluster(tr, sched.NewPollux(opts, 1), parityConfig(EngineTick)).Run()
	}
	full := run(sched.PolluxOptions{})
	inc := run(sched.PolluxOptions{Incremental: true, RackSize: 4})

	if full.Summary.Completed != inc.Summary.Completed {
		t.Errorf("completed: full %d vs incremental %d",
			full.Summary.Completed, inc.Summary.Completed)
	}
	const tol = 0.10
	if d := relDiff(inc.Summary.AvgJCT, full.Summary.AvgJCT); d > tol {
		t.Errorf("avg JCT diverges %.1f%%: full %v vs incremental %v",
			100*d, full.Summary.AvgJCT, inc.Summary.AvgJCT)
	}
	if d := relDiff(inc.AvgGoodput, full.AvgGoodput); d > tol {
		t.Errorf("avg goodput diverges %.1f%%: full %v vs incremental %v",
			100*d, full.AvgGoodput, inc.AvgGoodput)
	}
	if d := relDiff(inc.Summary.AvgEfficiency, full.Summary.AvgEfficiency); d > tol {
		t.Errorf("avg efficiency diverges %.1f%%: full %v vs incremental %v",
			100*d, full.Summary.AvgEfficiency, inc.Summary.AvgEfficiency)
	}
}
