package sim

import (
	"repro/internal/sched"
)

// ClusterAutoscaleConfig enables the Sec. 4.2.2 multi-job cloud
// autoscaling mode of the simulator: PolluxSched grows or shrinks the
// cluster so that UTILITY (Eqn. 17) stays within [LowUtil, HighUtil].
type ClusterAutoscaleConfig struct {
	MinNodes, MaxNodes int
	LowUtil, HighUtil  float64
	// Interval between autoscaling decisions; defaults to the scheduling
	// interval.
	Interval float64
	// ProvisionDelay is how long newly requested nodes take to join;
	// the zero value takes the 60 s default, a negative value means
	// instant provisioning. Releases are immediate.
	ProvisionDelay float64
}

func (a *ClusterAutoscaleConfig) defaults(schedInterval float64) {
	if a.MinNodes <= 0 {
		a.MinNodes = 1
	}
	if a.MaxNodes < a.MinNodes {
		a.MaxNodes = a.MinNodes
	}
	if a.LowUtil <= 0 {
		a.LowUtil = 0.55
	}
	if a.HighUtil <= a.LowUtil {
		a.HighUtil = 0.75
	}
	if a.Interval <= 0 {
		a.Interval = schedInterval
	}
	if a.ProvisionDelay < 0 {
		a.ProvisionDelay = 0
	} else if a.ProvisionDelay == 0 {
		a.ProvisionDelay = 60
	}
}

// autoscaleTick runs one cluster-size decision. Only Pollux policies can
// drive it (the decision requires the goodput speedup model); other
// policies leave the cluster at its configured size.
func (c *Cluster) autoscaleTick() {
	as := c.cfg.Autoscale
	pollux, ok := c.policy.(*sched.Pollux)
	if !ok {
		return
	}

	// Finish provisioning first.
	if c.provisioning > 0 && c.now >= c.provisionAt {
		c.activeNodes += c.provisioning
		c.provisioning = 0
	}

	act := c.active()
	if len(act) == 0 {
		return
	}
	// The decision view advertises the maximum cluster size; the binary
	// search picks the size worth paying for.
	view := &sched.ClusterView{Now: c.now, Capacity: make([]int, as.MaxNodes)}
	for i := range view.Capacity {
		view.Capacity[i] = c.cfg.GPUsPerNode
	}
	for _, j := range act {
		view.Jobs = append(view.Jobs, sched.JobView{
			ID:      j.wj.ID,
			Model:   j.agent.Report(),
			GPUCap:  j.agent.GPUCap(),
			GPUTime: j.gpuTime,
		})
	}
	want := pollux.DesiredClusterNodes(view, as.MinNodes, as.MaxNodes, as.LowUtil, as.HighUtil)

	switch {
	case want > c.activeNodes+c.provisioning:
		add := want - c.activeNodes - c.provisioning
		c.provisioning += add
		c.provisionAt = c.now + as.ProvisionDelay
	case want < c.activeNodes:
		// Release the highest-numbered nodes immediately; evict any
		// replicas placed there (they will be rescheduled with a
		// restart).
		c.activeNodes = want
		for _, j := range act {
			changed := false
			for n := c.activeNodes; n < len(j.alloc); n++ {
				if j.alloc[n] > 0 {
					j.alloc[n] = 0
					changed = true
				}
			}
			if changed {
				j.pl = sched.PlacementOf(j.alloc)
				if j.pl.GPUs > 0 {
					j.restartUntil = c.now + c.cfg.RestartDelay
				}
			}
		}
		c.recomputeInterference()
	}
}
