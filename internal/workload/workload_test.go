package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
)

func genDefault(seed int64) Trace {
	return Generate(rand.New(rand.NewSource(seed)), Options{})
}

func TestGenerateDefaults(t *testing.T) {
	tr := genDefault(1)
	if len(tr.Jobs) != 160 {
		t.Errorf("jobs = %d, want 160", len(tr.Jobs))
	}
	if tr.Duration != 8*3600 {
		t.Errorf("duration = %v, want 8h", tr.Duration)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestGenerateSortedBySubmit(t *testing.T) {
	tr := genDefault(2)
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := genDefault(7), genDefault(7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestModelMixApproximatesTable1(t *testing.T) {
	// Aggregate over many jobs so sampling noise is small.
	rng := rand.New(rand.NewSource(3))
	tr := Generate(rng, Options{Jobs: 8000})
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		counts[j.Model]++
	}
	for _, s := range models.Zoo() {
		got := float64(counts[s.Name]) / float64(len(tr.Jobs))
		if math.Abs(got-s.Frac) > 0.03 {
			t.Errorf("%s fraction = %v, want ~%v", s.Name, got, s.Frac)
		}
	}
}

func TestDiurnalShapeFig6(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Generate(rng, Options{Jobs: 20000})
	counts := tr.HourlyCounts()
	if len(counts) != 8 {
		t.Fatalf("hours = %d, want 8", len(counts))
	}
	// Peak hour is the fourth (index 3) at ~3x the first hour.
	peak := 0
	for h, c := range counts {
		if c > counts[peak] {
			peak = h
		}
		_ = h
	}
	if peak != 3 {
		t.Errorf("peak hour = %d, want 3 (fourth hour); counts = %v", peak, counts)
	}
	ratio := float64(counts[3]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("peak/first ratio = %v, want ~3", ratio)
	}
}

func TestTunedConfigRespectsSpeedupBand(t *testing.T) {
	for _, spec := range models.Zoo() {
		valid := ValidTunedGPUs(spec, 4, 16)
		if len(valid) == 0 {
			t.Fatalf("%s: no valid tuned GPU counts", spec.Name)
		}
		g := spec.GoodputModel(0.5)
		for _, k := range valid {
			if k == 1 {
				continue // fallback case is exempt
			}
			pl := packedPlacement(k, 4)
			s := g.Speedup(pl)
			if s < 0.5*float64(k)-1e-9 || s > 0.8*float64(k)+1e-9 {
				t.Errorf("%s: K=%d speedup %v outside [%v, %v]",
					spec.Name, k, s, 0.5*float64(k), 0.8*float64(k))
			}
		}
	}
}

func TestTunedConfigBatchFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, spec := range models.Zoo() {
		for i := 0; i < 50; i++ {
			gpus, batch := TunedConfig(rng, spec, 4, 16)
			if gpus < 1 || gpus > 16 {
				t.Fatalf("%s: tuned gpus %d out of range", spec.Name, gpus)
			}
			if batch < spec.M0 {
				t.Fatalf("%s: tuned batch %d below m0", spec.Name, batch)
			}
			if batch > gpus*spec.MaxBatchPerGPU {
				t.Fatalf("%s: tuned batch %d exceeds memory of %d GPUs", spec.Name, batch, gpus)
			}
		}
	}
}

func TestUserConfigMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := models.ByName("resnet18")
	small := 0
	const n = 2000
	for i := 0; i < n; i++ {
		gpus, _ := UserConfig(rng, spec, 4, 16)
		if gpus <= 2 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("fraction of small user requests = %v, want ~0.78", frac)
	}
}

func TestUserConfigBatchWithinFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, spec := range models.Zoo() {
		for i := 0; i < 100; i++ {
			gpus, batch := UserConfig(rng, spec, 4, 16)
			g := spec.GoodputModel(0.5)
			opt, _, ok := g.OptimalBatch(packedPlacement(gpus, 4))
			if !ok {
				continue
			}
			lo := float64(opt) / 2.1
			// Upper bound can be clipped by memory/m0, so only check
			// the unclipped direction.
			if float64(batch) > float64(opt)*2.1 && batch > spec.M0 {
				t.Errorf("%s: user batch %d more than 2x optimal %d", spec.Name, batch, opt)
			}
			if float64(batch) < lo && batch > spec.M0 {
				t.Errorf("%s: user batch %d less than half optimal %d", spec.Name, batch, opt)
			}
		}
	}
}

func TestHourlyCountsTotal(t *testing.T) {
	tr := genDefault(9)
	sum := 0
	for _, c := range tr.HourlyCounts() {
		sum += c
	}
	if sum != len(tr.Jobs) {
		t.Errorf("hourly counts sum = %d, want %d", sum, len(tr.Jobs))
	}
}

func TestValidateCatchesBadTrace(t *testing.T) {
	tr := genDefault(10)
	tr.Jobs[0].Model = "bogus"
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted unknown model")
	}
	tr = genDefault(10)
	tr.Jobs[0].Submit = -5
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted negative submit")
	}
	tr = genDefault(10)
	tr.Jobs[0].TunedBatch = 1
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted batch below m0")
	}
}

func TestGenerateCustomSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := Generate(rng, Options{Jobs: 40, Hours: 4})
	if len(tr.Jobs) != 40 {
		t.Errorf("jobs = %d, want 40", len(tr.Jobs))
	}
	if tr.Duration != 4*3600 {
		t.Errorf("duration = %v, want 4h", tr.Duration)
	}
	for _, j := range tr.Jobs {
		if j.Submit > tr.Duration {
			t.Errorf("submit %v beyond duration", j.Submit)
		}
	}
}

func genPoisson(seed int64, jobs int, hours float64) Trace {
	return Generate(rand.New(rand.NewSource(seed)), Options{
		Jobs: jobs, Hours: hours, Poisson: true,
	})
}

func TestPoissonExpectedCount(t *testing.T) {
	// Jobs is the expected submission count; over a large trace the
	// realized count concentrates around it (sd ~ sqrt(2000) ≈ 45).
	tr := genPoisson(1, 2000, 72)
	got := float64(len(tr.Jobs))
	if got < 2000*0.88 || got > 2000*1.12 {
		t.Errorf("realized jobs = %v, want within 12%% of 2000", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestPoissonFollowsDayCycle(t *testing.T) {
	// Fold hourly counts onto the 24-hour cycle: the afternoon peak
	// (hours 12-14, weight 3.0) must see substantially more submissions
	// than the overnight trough (hours 0-5, weight 1.0).
	tr := genPoisson(2, 6000, 240) // 10 days
	byHour := make([]float64, 24)
	for _, j := range tr.Jobs {
		byHour[int(j.Submit/3600)%24]++
	}
	peak := (byHour[12] + byHour[13] + byHour[14]) / 3
	trough := (byHour[0] + byHour[1] + byHour[2] + byHour[3] + byHour[4] + byHour[5]) / 6
	if ratio := peak / trough; ratio < 2.2 || ratio > 3.8 {
		t.Errorf("peak/trough submission ratio = %v, want ~3", ratio)
	}
}

func TestPoissonSortedAndInWindow(t *testing.T) {
	tr := genPoisson(3, 500, 48)
	for i, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= tr.Duration {
			t.Fatalf("job %d submit %v outside [0, %v)", i, j.Submit, tr.Duration)
		}
		if i > 0 && j.Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := genPoisson(9, 300, 48), genPoisson(9, 300, 48)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestPoissonCustomCycle(t *testing.T) {
	// A two-hour cycle with all mass in the first hour: every submission
	// must land in an even hour.
	tr := Generate(rand.New(rand.NewSource(4)), Options{
		Jobs: 200, Hours: 24, Poisson: true, Cycle: []float64{1, 0},
	})
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	for _, j := range tr.Jobs {
		if int(j.Submit/3600)%2 != 0 {
			t.Errorf("job %d submitted in zero-rate hour: %v", j.ID, j.Submit)
		}
	}
}
