package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/models"
)

func genDefault(seed int64) Trace {
	return Generate(rand.New(rand.NewSource(seed)), Options{})
}

func TestGenerateDefaults(t *testing.T) {
	tr := genDefault(1)
	if len(tr.Jobs) != 160 {
		t.Errorf("jobs = %d, want 160", len(tr.Jobs))
	}
	if tr.Duration != 8*3600 {
		t.Errorf("duration = %v, want 8h", tr.Duration)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestGenerateSortedBySubmit(t *testing.T) {
	tr := genDefault(2)
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := genDefault(7), genDefault(7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestModelMixApproximatesTable1(t *testing.T) {
	// Aggregate over many jobs so sampling noise is small.
	rng := rand.New(rand.NewSource(3))
	tr := Generate(rng, Options{Jobs: 8000})
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		counts[j.Model]++
	}
	for _, s := range models.Zoo() {
		got := float64(counts[s.Name]) / float64(len(tr.Jobs))
		if math.Abs(got-s.Frac) > 0.03 {
			t.Errorf("%s fraction = %v, want ~%v", s.Name, got, s.Frac)
		}
	}
}

func TestDiurnalShapeFig6(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Generate(rng, Options{Jobs: 20000})
	counts := tr.HourlyCounts()
	if len(counts) != 8 {
		t.Fatalf("hours = %d, want 8", len(counts))
	}
	// Peak hour is the fourth (index 3) at ~3x the first hour.
	peak := 0
	for h, c := range counts {
		if c > counts[peak] {
			peak = h
		}
		_ = h
	}
	if peak != 3 {
		t.Errorf("peak hour = %d, want 3 (fourth hour); counts = %v", peak, counts)
	}
	ratio := float64(counts[3]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("peak/first ratio = %v, want ~3", ratio)
	}
}

func TestTunedConfigRespectsSpeedupBand(t *testing.T) {
	for _, spec := range models.Zoo() {
		valid := ValidTunedGPUs(spec, 4, 16)
		if len(valid) == 0 {
			t.Fatalf("%s: no valid tuned GPU counts", spec.Name)
		}
		g := spec.GoodputModel(0.5)
		for _, k := range valid {
			if k == 1 {
				continue // fallback case is exempt
			}
			pl := packedPlacement(k, 4)
			s := g.Speedup(pl)
			if s < 0.5*float64(k)-1e-9 || s > 0.8*float64(k)+1e-9 {
				t.Errorf("%s: K=%d speedup %v outside [%v, %v]",
					spec.Name, k, s, 0.5*float64(k), 0.8*float64(k))
			}
		}
	}
}

func TestTunedConfigBatchFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, spec := range models.Zoo() {
		for i := 0; i < 50; i++ {
			gpus, batch := TunedConfig(rng, spec, 4, 16)
			if gpus < 1 || gpus > 16 {
				t.Fatalf("%s: tuned gpus %d out of range", spec.Name, gpus)
			}
			if batch < spec.M0 {
				t.Fatalf("%s: tuned batch %d below m0", spec.Name, batch)
			}
			if batch > gpus*spec.MaxBatchPerGPU {
				t.Fatalf("%s: tuned batch %d exceeds memory of %d GPUs", spec.Name, batch, gpus)
			}
		}
	}
}

func TestUserConfigMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := models.ByName("resnet18")
	small := 0
	const n = 2000
	for i := 0; i < n; i++ {
		gpus, _ := UserConfig(rng, spec, 4, 16)
		if gpus <= 2 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("fraction of small user requests = %v, want ~0.78", frac)
	}
}

func TestUserConfigBatchWithinFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, spec := range models.Zoo() {
		for i := 0; i < 100; i++ {
			gpus, batch := UserConfig(rng, spec, 4, 16)
			g := spec.GoodputModel(0.5)
			opt, _, ok := g.OptimalBatch(packedPlacement(gpus, 4))
			if !ok {
				continue
			}
			lo := float64(opt) / 2.1
			// Upper bound can be clipped by memory/m0, so only check
			// the unclipped direction.
			if float64(batch) > float64(opt)*2.1 && batch > spec.M0 {
				t.Errorf("%s: user batch %d more than 2x optimal %d", spec.Name, batch, opt)
			}
			if float64(batch) < lo && batch > spec.M0 {
				t.Errorf("%s: user batch %d less than half optimal %d", spec.Name, batch, opt)
			}
		}
	}
}

func TestHourlyCountsTotal(t *testing.T) {
	tr := genDefault(9)
	sum := 0
	for _, c := range tr.HourlyCounts() {
		sum += c
	}
	if sum != len(tr.Jobs) {
		t.Errorf("hourly counts sum = %d, want %d", sum, len(tr.Jobs))
	}
}

func TestValidateCatchesBadTrace(t *testing.T) {
	tr := genDefault(10)
	tr.Jobs[0].Model = "bogus"
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted unknown model")
	}
	tr = genDefault(10)
	tr.Jobs[0].Submit = -5
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted negative submit")
	}
	tr = genDefault(10)
	tr.Jobs[0].TunedBatch = 1
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted batch below m0")
	}
}

func TestGenerateCustomSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := Generate(rng, Options{Jobs: 40, Hours: 4})
	if len(tr.Jobs) != 40 {
		t.Errorf("jobs = %d, want 40", len(tr.Jobs))
	}
	if tr.Duration != 4*3600 {
		t.Errorf("duration = %v, want 4h", tr.Duration)
	}
	for _, j := range tr.Jobs {
		if j.Submit > tr.Duration {
			t.Errorf("submit %v beyond duration", j.Submit)
		}
	}
}

func genPoisson(seed int64, jobs int, hours float64) Trace {
	return Generate(rand.New(rand.NewSource(seed)), Options{
		Jobs: jobs, Hours: hours, Poisson: true,
	})
}

func TestPoissonExpectedCount(t *testing.T) {
	// Jobs is the expected submission count; over a large trace the
	// realized count concentrates around it (sd ~ sqrt(2000) ≈ 45).
	tr := genPoisson(1, 2000, 72)
	got := float64(len(tr.Jobs))
	if got < 2000*0.88 || got > 2000*1.12 {
		t.Errorf("realized jobs = %v, want within 12%% of 2000", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestPoissonFollowsDayCycle(t *testing.T) {
	// Fold hourly counts onto the 24-hour cycle: the afternoon peak
	// (hours 12-14, weight 3.0) must see substantially more submissions
	// than the overnight trough (hours 0-5, weight 1.0).
	tr := genPoisson(2, 6000, 240) // 10 days
	byHour := make([]float64, 24)
	for _, j := range tr.Jobs {
		byHour[int(j.Submit/3600)%24]++
	}
	peak := (byHour[12] + byHour[13] + byHour[14]) / 3
	trough := (byHour[0] + byHour[1] + byHour[2] + byHour[3] + byHour[4] + byHour[5]) / 6
	if ratio := peak / trough; ratio < 2.2 || ratio > 3.8 {
		t.Errorf("peak/trough submission ratio = %v, want ~3", ratio)
	}
}

func TestPoissonSortedAndInWindow(t *testing.T) {
	tr := genPoisson(3, 500, 48)
	for i, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= tr.Duration {
			t.Fatalf("job %d submit %v outside [0, %v)", i, j.Submit, tr.Duration)
		}
		if i > 0 && j.Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := genPoisson(9, 300, 48), genPoisson(9, 300, 48)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestPoissonCustomCycle(t *testing.T) {
	// A two-hour cycle with all mass in the first hour: every submission
	// must land in an even hour.
	tr := Generate(rand.New(rand.NewSource(4)), Options{
		Jobs: 200, Hours: 24, Poisson: true, Cycle: []float64{1, 0},
	})
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	for _, j := range tr.Jobs {
		if int(j.Submit/3600)%2 != 0 {
			t.Errorf("job %d submitted in zero-rate hour: %v", j.ID, j.Submit)
		}
	}
}

// traceChecksum folds every job's submit time and both configurations
// into one float so the golden tests below detect any drift in the rng
// draw order.
func traceChecksum(tr Trace) float64 {
	sum := 0.0
	for _, j := range tr.Jobs {
		sum += j.Submit + float64(j.TunedGPUs*1000+j.TunedBatch) + float64(j.UserGPUs*100000+j.UserBatch)
	}
	return sum
}

func checkJob(t *testing.T, tr Trace, id int, model string, submit string, tg, tb, ug, ub int) {
	t.Helper()
	for _, j := range tr.Jobs {
		if j.ID != id {
			continue
		}
		if j.Model != model || fmt.Sprintf("%.6f", j.Submit) != submit ||
			j.TunedGPUs != tg || j.TunedBatch != tb || j.UserGPUs != ug || j.UserBatch != ub {
			t.Errorf("job %d = %+v, want %s submit=%s tuned=%d/%d user=%d/%d",
				id, j, model, submit, tg, tb, ug, ub)
		}
		return
	}
	t.Errorf("job %d not in trace", id)
}

// TestNonTenantTraceGolden pins single-tenant generation bit-identical to
// the pre-tenant generator: golden checksums and spot-checked jobs were
// captured from the tree before multi-tenant mode existed. The rng draw
// order here is load-bearing — fixed-seed traces back experiment
// baselines.
func TestNonTenantTraceGolden(t *testing.T) {
	tr := Generate(rand.New(rand.NewSource(1)), Options{Jobs: 40, Hours: 2})
	if len(tr.Jobs) != 40 {
		t.Fatalf("exact-count jobs = %d, want 40", len(tr.Jobs))
	}
	if got := fmt.Sprintf("%.6f", traceChecksum(tr)); got != "11169717.776710" {
		t.Errorf("exact-count checksum = %s, want 11169717.776710", got)
	}
	checkJob(t, tr, 21, "neumf", "6.936509", 1, 764, 1, 761)
	checkJob(t, tr, 6, "resnet18", "382.091625", 14, 6916, 2, 2033)
	checkJob(t, tr, 26, "neumf", "409.354396", 1, 764, 8, 29043)
	for _, j := range tr.Jobs {
		if j.Tenant != "" || j.Deadline != 0 {
			t.Fatalf("single-tenant job %d has tenant metadata: %+v", j.ID, j)
		}
	}

	tr = Generate(rand.New(rand.NewSource(1)), Options{
		Jobs: 30, Hours: 1.5, MaxGPUs: 32, Poisson: true,
	})
	if len(tr.Jobs) != 26 {
		t.Fatalf("poisson jobs = %d, want 26", len(tr.Jobs))
	}
	if got := fmt.Sprintf("%.6f", traceChecksum(tr)); got != "6987876.111114" {
		t.Errorf("poisson checksum = %s, want 6987876.111114", got)
	}
	checkJob(t, tr, 0, "deepspeech2", "105.713679", 15, 342, 1, 21)
	checkJob(t, tr, 1, "neumf", "327.303281", 1, 764, 1, 1392)
	checkJob(t, tr, 2, "neumf", "335.316586", 1, 764, 2, 2209)
}

func tenantOpts(poisson bool) Options {
	return Options{
		Hours:   2,
		Poisson: poisson,
		Tenants: []TenantSpec{
			{Name: "prod", Jobs: 12, SLOHours: 1},
			{Name: "batch", Jobs: 20},
			{Name: "burst", Jobs: 6, Cycle: []float64{0, 1}, SLOHours: 4},
		},
	}
}

func TestTenantGenerateDeterministic(t *testing.T) {
	for _, poisson := range []bool{false, true} {
		a := Generate(rand.New(rand.NewSource(21)), tenantOpts(poisson))
		b := Generate(rand.New(rand.NewSource(21)), tenantOpts(poisson))
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("poisson=%v: lengths differ: %d vs %d", poisson, len(a.Jobs), len(b.Jobs))
		}
		for i := range a.Jobs {
			if a.Jobs[i] != b.Jobs[i] {
				t.Fatalf("poisson=%v: job %d differs: %+v vs %+v", poisson, i, a.Jobs[i], b.Jobs[i])
			}
		}
	}
}

func TestTenantTraceProperties(t *testing.T) {
	tr := Generate(rand.New(rand.NewSource(5)), tenantOpts(false))
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Exact-count mode: every tenant contributes exactly its job count.
	counts := map[string]int{}
	ids := map[int]bool{}
	for i, j := range tr.Jobs {
		counts[j.Tenant]++
		if ids[j.ID] {
			t.Errorf("duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
		if i > 0 && j.Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
		switch j.Tenant {
		case "prod":
			if got := j.Deadline - j.Submit; math.Abs(got-1*3600) > 1e-6 {
				t.Errorf("prod job %d SLO window = %v, want 1h", j.ID, got)
			}
		case "batch":
			if j.Deadline != 0 {
				t.Errorf("batch job %d has deadline %v, want none", j.ID, j.Deadline)
			}
		case "burst":
			if got := j.Deadline - j.Submit; math.Abs(got-4*3600) > 1e-6 {
				t.Errorf("burst job %d SLO window = %v, want 4h", j.ID, got)
			}
		default:
			t.Errorf("job %d has unexpected tenant %q", j.ID, j.Tenant)
		}
	}
	want := map[string]int{"prod": 12, "batch": 20, "burst": 6}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("tenant %s jobs = %d, want %d", name, counts[name], n)
		}
	}
	if got := tr.Tenants(); !reflect.DeepEqual(got, []string{"batch", "burst", "prod"}) {
		t.Errorf("Tenants() = %v", got)
	}
	if got := Generate(rand.New(rand.NewSource(5)), Options{Jobs: 10, Hours: 1}).Tenants(); got != nil {
		t.Errorf("single-tenant Tenants() = %v, want nil", got)
	}
}

func TestTenantCycleShapesArrivals(t *testing.T) {
	// One tenant with all Poisson mass in even hours, one in odd hours:
	// each tenant's submissions must respect its own cycle.
	tr := Generate(rand.New(rand.NewSource(6)), Options{
		Hours: 24, Poisson: true,
		Tenants: []TenantSpec{
			{Name: "even", Jobs: 100, Cycle: []float64{1, 0}},
			{Name: "odd", Jobs: 100, Cycle: []float64{0, 1}},
		},
	})
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	for _, j := range tr.Jobs {
		hourParity := int(j.Submit/3600) % 2
		if j.Tenant == "even" && hourParity != 0 {
			t.Errorf("even-tenant job %d in odd hour: %v", j.ID, j.Submit)
		}
		if j.Tenant == "odd" && hourParity != 1 {
			t.Errorf("odd-tenant job %d in even hour: %v", j.ID, j.Submit)
		}
	}
}

func TestTenantTraceRoundTripsJSON(t *testing.T) {
	tr := Generate(rand.New(rand.NewSource(7)), tenantOpts(false))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("tenant trace did not round-trip")
	}
}
