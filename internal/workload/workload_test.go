package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
)

func genDefault(seed int64) Trace {
	return Generate(rand.New(rand.NewSource(seed)), Options{})
}

func TestGenerateDefaults(t *testing.T) {
	tr := genDefault(1)
	if len(tr.Jobs) != 160 {
		t.Errorf("jobs = %d, want 160", len(tr.Jobs))
	}
	if tr.Duration != 8*3600 {
		t.Errorf("duration = %v, want 8h", tr.Duration)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestGenerateSortedBySubmit(t *testing.T) {
	tr := genDefault(2)
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := genDefault(7), genDefault(7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestModelMixApproximatesTable1(t *testing.T) {
	// Aggregate over many jobs so sampling noise is small.
	rng := rand.New(rand.NewSource(3))
	tr := Generate(rng, Options{Jobs: 8000})
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		counts[j.Model]++
	}
	for _, s := range models.Zoo() {
		got := float64(counts[s.Name]) / float64(len(tr.Jobs))
		if math.Abs(got-s.Frac) > 0.03 {
			t.Errorf("%s fraction = %v, want ~%v", s.Name, got, s.Frac)
		}
	}
}

func TestDiurnalShapeFig6(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Generate(rng, Options{Jobs: 20000})
	counts := tr.HourlyCounts()
	if len(counts) != 8 {
		t.Fatalf("hours = %d, want 8", len(counts))
	}
	// Peak hour is the fourth (index 3) at ~3x the first hour.
	peak := 0
	for h, c := range counts {
		if c > counts[peak] {
			peak = h
		}
		_ = h
	}
	if peak != 3 {
		t.Errorf("peak hour = %d, want 3 (fourth hour); counts = %v", peak, counts)
	}
	ratio := float64(counts[3]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("peak/first ratio = %v, want ~3", ratio)
	}
}

func TestTunedConfigRespectsSpeedupBand(t *testing.T) {
	for _, spec := range models.Zoo() {
		valid := ValidTunedGPUs(spec, 4, 16)
		if len(valid) == 0 {
			t.Fatalf("%s: no valid tuned GPU counts", spec.Name)
		}
		g := spec.GoodputModel(0.5)
		for _, k := range valid {
			if k == 1 {
				continue // fallback case is exempt
			}
			pl := packedPlacement(k, 4)
			s := g.Speedup(pl)
			if s < 0.5*float64(k)-1e-9 || s > 0.8*float64(k)+1e-9 {
				t.Errorf("%s: K=%d speedup %v outside [%v, %v]",
					spec.Name, k, s, 0.5*float64(k), 0.8*float64(k))
			}
		}
	}
}

func TestTunedConfigBatchFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, spec := range models.Zoo() {
		for i := 0; i < 50; i++ {
			gpus, batch := TunedConfig(rng, spec, 4, 16)
			if gpus < 1 || gpus > 16 {
				t.Fatalf("%s: tuned gpus %d out of range", spec.Name, gpus)
			}
			if batch < spec.M0 {
				t.Fatalf("%s: tuned batch %d below m0", spec.Name, batch)
			}
			if batch > gpus*spec.MaxBatchPerGPU {
				t.Fatalf("%s: tuned batch %d exceeds memory of %d GPUs", spec.Name, batch, gpus)
			}
		}
	}
}

func TestUserConfigMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := models.ByName("resnet18")
	small := 0
	const n = 2000
	for i := 0; i < n; i++ {
		gpus, _ := UserConfig(rng, spec, 4, 16)
		if gpus <= 2 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("fraction of small user requests = %v, want ~0.78", frac)
	}
}

func TestUserConfigBatchWithinFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, spec := range models.Zoo() {
		for i := 0; i < 100; i++ {
			gpus, batch := UserConfig(rng, spec, 4, 16)
			g := spec.GoodputModel(0.5)
			opt, _, ok := g.OptimalBatch(packedPlacement(gpus, 4))
			if !ok {
				continue
			}
			lo := float64(opt) / 2.1
			// Upper bound can be clipped by memory/m0, so only check
			// the unclipped direction.
			if float64(batch) > float64(opt)*2.1 && batch > spec.M0 {
				t.Errorf("%s: user batch %d more than 2x optimal %d", spec.Name, batch, opt)
			}
			if float64(batch) < lo && batch > spec.M0 {
				t.Errorf("%s: user batch %d less than half optimal %d", spec.Name, batch, opt)
			}
		}
	}
}

func TestHourlyCountsTotal(t *testing.T) {
	tr := genDefault(9)
	sum := 0
	for _, c := range tr.HourlyCounts() {
		sum += c
	}
	if sum != len(tr.Jobs) {
		t.Errorf("hourly counts sum = %d, want %d", sum, len(tr.Jobs))
	}
}

func TestValidateCatchesBadTrace(t *testing.T) {
	tr := genDefault(10)
	tr.Jobs[0].Model = "bogus"
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted unknown model")
	}
	tr = genDefault(10)
	tr.Jobs[0].Submit = -5
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted negative submit")
	}
	tr = genDefault(10)
	tr.Jobs[0].TunedBatch = 1
	if err := tr.Validate(); err == nil {
		t.Error("validate accepted batch below m0")
	}
}

func TestGenerateCustomSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := Generate(rng, Options{Jobs: 40, Hours: 4})
	if len(tr.Jobs) != 40 {
		t.Errorf("jobs = %d, want 40", len(tr.Jobs))
	}
	if tr.Duration != 4*3600 {
		t.Errorf("duration = %v, want 4h", tr.Duration)
	}
	for _, j := range tr.Jobs {
		if j.Submit > tr.Duration {
			t.Errorf("submit %v beyond duration", j.Submit)
		}
	}
}
