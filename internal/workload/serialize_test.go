package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := Generate(rng, Options{Jobs: 25, Hours: 2})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	//pollux:floateq-ok JSON round trip must hand the duration back verbatim (Go prints the shortest exact float)
	if back.Duration != orig.Duration {
		t.Errorf("duration = %v, want %v", back.Duration, orig.Duration)
	}
	if len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(back.Jobs), len(orig.Jobs))
	}
	for i := range back.Jobs {
		if back.Jobs[i] != orig.Jobs[i] {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, back.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadJSONRejectsWrongVersion(t *testing.T) {
	in := `{"version": 99, "duration_seconds": 100, "jobs": []}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// A structurally valid trace with an invalid job (unknown model).
	in := `{"version": 1, "duration_seconds": 100, "jobs": [
		{"ID": 0, "Model": "bogus", "Submit": 1,
		 "TunedGPUs": 1, "TunedBatch": 128, "UserGPUs": 1, "UserBatch": 128}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("invalid trace accepted")
	}
}
