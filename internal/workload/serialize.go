package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceJSON is the on-disk representation of a Trace.
type traceJSON struct {
	Version  int     `json:"version"`
	Duration float64 `json:"duration_seconds"`
	Jobs     []Job   `json:"jobs"`
}

const traceVersion = 1

// WriteJSON serializes the trace so experiments can be replayed across
// runs and shared between the CLI tools.
func (t Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceJSON{Version: traceVersion, Duration: t.Duration, Jobs: t.Jobs})
}

// ReadJSON parses a trace written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (Trace, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return Trace{}, fmt.Errorf("workload: decode trace: %w", err)
	}
	if tj.Version != traceVersion {
		return Trace{}, fmt.Errorf("workload: unsupported trace version %d", tj.Version)
	}
	t := Trace{Duration: tj.Duration, Jobs: tj.Jobs}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
