// Package workload synthesizes job traces following the published
// statistics of the Microsoft cluster trace the Pollux paper samples from
// (Sec. 5.1): the Table 1 model mix by GPU-time category, a diurnal
// submission pattern whose fourth-hour peak is ~3x the first-hour rate
// (Fig. 6), and 160 jobs over an 8-hour window as the primary workload.
//
// Each job carries two configurations:
//
//   - a tuned configuration (Sec. 5.2): GPUs chosen so the job achieves
//     50–80% of ideal speedup at its optimal batch size — the idealized
//     "highly rational user" assumed for Tiresias+TunedJobs and
//     Optimus+Oracle;
//   - a user configuration (Sec. 5.3.1): a small GPU request drawn from a
//     trace-like distribution and a batch size within a factor of two of
//     the most efficient batch for that GPU count — realistic users.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/models"
)

// Job is one synthesized submission.
type Job struct {
	ID     int
	Model  string  // zoo model name
	Submit float64 // seconds from trace start

	// Tuned configuration (Sec. 5.2).
	TunedGPUs  int
	TunedBatch int

	// User configuration (Sec. 5.3.1).
	UserGPUs  int
	UserBatch int

	// Tenant is the submitting tenant for multi-tenant traces; "" for
	// single-tenant traces (the paper's workloads).
	Tenant string `json:",omitempty"`
	// Deadline is the absolute SLO deadline in seconds from trace start
	// (Submit + the tenant's SLO window); 0 means no deadline.
	Deadline float64 `json:",omitempty"`
}

// Trace is a generated workload.
type Trace struct {
	Jobs     []Job
	Duration float64 // submission window in seconds
}

// DiurnalWeights is the relative submission rate per hour of the 8-hour
// primary workload window. The fourth hour peaks at 3x the first hour,
// matching the description of Fig. 6.
var DiurnalWeights = []float64{1.0, 1.5, 2.5, 3.0, 2.5, 2.0, 1.5, 1.0}

// DayCycle is a 24-hour diurnal rate profile (relative submission rate
// per hour of day) for multi-day Poisson traces: quiet overnight, ramping
// through the morning to an early-afternoon peak at ~3x the overnight
// rate, and tapering through the evening — the same peak-to-trough ratio
// as the Fig. 6 window, stretched over a full day.
var DayCycle = []float64{
	1.0, 1.0, 1.0, 1.0, 1.0, 1.1, // 00-06
	1.3, 1.6, 2.0, 2.4, 2.7, 2.9, // 06-12
	3.0, 3.0, 2.9, 2.7, 2.4, 2.1, // 12-18
	1.8, 1.6, 1.4, 1.2, 1.1, 1.0, // 18-24
}

// Options controls trace generation.
type Options struct {
	Jobs  int     // number of submissions; default 160
	Hours float64 // submission window; default 8
	// GPUsPerNode is used to derive placements when computing tuned
	// configurations; default 4 (the paper's testbed nodes).
	GPUsPerNode int
	// MaxGPUs caps tuned/user GPU counts; default 16.
	MaxGPUs int
	// Poisson switches submission times from exact-count inverse-CDF
	// sampling to an inhomogeneous Poisson process whose hourly rate
	// follows Cycle, repeated over the window. Jobs then becomes the
	// EXPECTED number of submissions (the realized count is random),
	// which is the natural model for multi-day diurnal traces with job
	// churn rather than a fixed batch of arrivals.
	Poisson bool
	// Cycle is the relative submission rate per hour, tiled cyclically
	// across the window (only used when Poisson is set). Default
	// DayCycle, the 24-hour diurnal profile.
	Cycle []float64
	// Tenants switches generation to multi-tenant mode: each tenant
	// contributes its own arrival stream (with its own cycle and SLO
	// window) and every job is tagged with its tenant. When empty, the
	// single-tenant paths above run byte-for-byte unchanged — the rng
	// draw order of existing fixed-seed traces is load-bearing.
	Tenants []TenantSpec
}

// TenantSpec describes one tenant's share of a multi-tenant trace.
type TenantSpec struct {
	// Name tags the tenant's jobs and keys per-tenant quotas and metrics.
	Name string
	// Jobs is the tenant's submission count (exact-count mode) or
	// expected count (Poisson mode).
	Jobs int
	// Cycle is the tenant's relative submission rate per hour. In Poisson
	// mode it is tiled cyclically across the window (default: the trace
	// Options.Cycle, then DayCycle); in exact-count mode it is stretched
	// over the window like DiurnalWeights (default: DiurnalWeights).
	Cycle []float64
	// SLOHours is the tenant's SLO window: each job's Deadline is set to
	// Submit + SLOHours*3600. Zero means no deadline.
	SLOHours float64
}

func (o *Options) defaults() {
	if o.Jobs <= 0 {
		o.Jobs = 160
	}
	if o.Hours <= 0 {
		o.Hours = 8
	}
	if o.GPUsPerNode <= 0 {
		o.GPUsPerNode = 4
	}
	if o.MaxGPUs <= 0 {
		o.MaxGPUs = 16
	}
}

// Generate synthesizes a trace. Generation is deterministic for a given
// rng state.
func Generate(rng *rand.Rand, opts Options) Trace {
	opts.defaults()
	zoo := models.Zoo()
	duration := opts.Hours * 3600
	tr := Trace{Duration: duration}
	if len(opts.Tenants) > 0 {
		// Multi-tenant mode: tenants draw from the shared rng in spec
		// order, so a fixed seed fixes every tenant's arrivals. IDs are
		// sequential in generation order across tenants.
		id := 0
		for _, tn := range opts.Tenants {
			jobs := tn.Jobs
			if jobs <= 0 {
				continue
			}
			if opts.Poisson {
				cycle := tn.Cycle
				if len(cycle) == 0 {
					cycle = opts.Cycle
				}
				topts := opts
				topts.Jobs = jobs
				topts.Cycle = cycle
				for _, submit := range poissonSubmits(rng, topts) {
					tr.Jobs = append(tr.Jobs, tenantJob(makeJob(rng, zoo, opts, id, submit), tn))
					id++
				}
			} else {
				cycle := tn.Cycle
				if len(cycle) == 0 {
					cycle = DiurnalWeights
				}
				for i := 0; i < jobs; i++ {
					submit := sampleSubmitCycle(rng, opts.Hours, cycle)
					tr.Jobs = append(tr.Jobs, tenantJob(makeJob(rng, zoo, opts, id, submit), tn))
					id++
				}
			}
		}
	} else if opts.Poisson {
		// Arrival times come from the Poisson process (which fixes the
		// job count) before any per-job draws; the per-job draw order
		// below then matches the exact-count path.
		for i, submit := range poissonSubmits(rng, opts) {
			tr.Jobs = append(tr.Jobs, makeJob(rng, zoo, opts, i, submit))
		}
	} else {
		// Draw order (model, submit, configs per job) is load-bearing:
		// existing fixed-seed traces must stay bit-identical.
		for i := 0; i < opts.Jobs; i++ {
			spec := sampleModel(rng, zoo)
			j := Job{
				ID:     i,
				Model:  spec.Name,
				Submit: sampleSubmit(rng, opts.Hours),
			}
			j.TunedGPUs, j.TunedBatch = TunedConfig(rng, spec, opts.GPUsPerNode, opts.MaxGPUs)
			j.UserGPUs, j.UserBatch = UserConfig(rng, spec, opts.GPUsPerNode, opts.MaxGPUs)
			tr.Jobs = append(tr.Jobs, j)
		}
	}
	// Sort by submission time while keeping IDs stable.
	for i := 1; i < len(tr.Jobs); i++ {
		for k := i; k > 0 && tr.Jobs[k].Submit < tr.Jobs[k-1].Submit; k-- {
			tr.Jobs[k], tr.Jobs[k-1] = tr.Jobs[k-1], tr.Jobs[k]
		}
	}
	return tr
}

// tenantJob stamps a generated job with its tenant's identity and SLO
// deadline.
func tenantJob(j Job, tn TenantSpec) Job {
	j.Tenant = tn.Name
	if tn.SLOHours > 0 {
		j.Deadline = j.Submit + tn.SLOHours*3600
	}
	return j
}

// makeJob draws one job's model and configurations for a known
// submission time.
func makeJob(rng *rand.Rand, zoo []*models.Spec, opts Options, id int, submit float64) Job {
	spec := sampleModel(rng, zoo)
	j := Job{
		ID:     id,
		Model:  spec.Name,
		Submit: submit,
	}
	j.TunedGPUs, j.TunedBatch = TunedConfig(rng, spec, opts.GPUsPerNode, opts.MaxGPUs)
	j.UserGPUs, j.UserBatch = UserConfig(rng, spec, opts.GPUsPerNode, opts.MaxGPUs)
	return j
}

// poissonSubmits draws submission times from an inhomogeneous Poisson
// process over [0, Hours) by thinning: candidate arrivals are generated
// at the cycle's peak rate and accepted with probability λ(t)/λmax. The
// rate is normalized so the expected number of arrivals over the window
// is opts.Jobs.
func poissonSubmits(rng *rand.Rand, opts Options) []float64 {
	cycle := opts.Cycle
	if len(cycle) == 0 {
		cycle = DayCycle
	}
	// Integral of the cycle weights over the window, in weight·hours.
	integral := 0.0
	maxW := 0.0
	for h := 0; h < int(math.Ceil(opts.Hours)); h++ {
		w := cycle[h%len(cycle)]
		span := math.Min(opts.Hours-float64(h), 1)
		integral += w * span
		if w > maxW {
			maxW = w
		}
	}
	if integral <= 0 || maxW <= 0 || opts.Jobs <= 0 {
		return nil
	}
	// λ(t) = Jobs * w(t)/integral submissions per hour; thin from λmax.
	scale := float64(opts.Jobs) / integral
	lambdaMax := scale * maxW
	var submits []float64
	for t := rng.ExpFloat64() / lambdaMax; t < opts.Hours; t += rng.ExpFloat64() / lambdaMax {
		w := cycle[int(t)%len(cycle)]
		if rng.Float64()*maxW < w {
			submits = append(submits, t*3600)
		}
	}
	return submits
}

// sampleModel draws a zoo spec according to the Table 1 fractions.
func sampleModel(rng *rand.Rand, zoo []*models.Spec) *models.Spec {
	u := rng.Float64()
	acc := 0.0
	for _, s := range zoo {
		acc += s.Frac
		if u < acc {
			return s
		}
	}
	return zoo[len(zoo)-1]
}

// sampleSubmit draws a submission time from the diurnal distribution
// stretched over the window.
func sampleSubmit(rng *rand.Rand, hours float64) float64 {
	return sampleSubmitCycle(rng, hours, DiurnalWeights)
}

// sampleSubmitCycle draws a submission time from an arbitrary hourly
// weight profile stretched over the window (the per-tenant generalization
// of sampleSubmit; identical rng draw pattern).
func sampleSubmitCycle(rng *rand.Rand, hours float64, w []float64) float64 {
	total := 0.0
	for _, x := range w {
		total += x
	}
	u := rng.Float64() * total
	for h, x := range w {
		if u < x {
			frac := (float64(h) + u/x) / float64(len(w))
			return frac * hours * 3600
		}
		u -= x
	}
	return hours * 3600 * rng.Float64()
}

// packedPlacement maps a GPU count to the placement obtained by packing
// onto as few nodes as possible with gpusPerNode each.
func packedPlacement(gpus, gpusPerNode int) core.Placement {
	nodes := (gpus + gpusPerNode - 1) / gpusPerNode
	return core.Placement{GPUs: gpus, Nodes: nodes}
}

// refPhi is the noise scale used to judge configurations: the paper tunes
// jobs by fully training them, which averages over the phi trajectory;
// mid-training is the natural reference point.
func refPhi(spec *models.Spec) float64 { return spec.Phi(0.5) }

// tunedCache memoizes ValidTunedGPUs per (model, gpusPerNode, maxGPUs):
// the valid set depends only on the zoo spec, and recomputing it for each
// of thousands of generated jobs dominates generation time otherwise.
var tunedCache sync.Map

// ValidTunedGPUs returns the GPU counts considered valid by the Sec. 5.2
// rule: using the optimal batch size for K GPUs achieves between 50% and
// 80% of the ideal speedup K (relative to one GPU at its optimal batch).
func ValidTunedGPUs(spec *models.Spec, gpusPerNode, maxGPUs int) []int {
	key := fmt.Sprintf("%s/%d/%d", spec.Name, gpusPerNode, maxGPUs)
	if v, ok := tunedCache.Load(key); ok {
		return v.([]int)
	}
	valid := validTunedGPUs(spec, gpusPerNode, maxGPUs)
	tunedCache.Store(key, valid)
	return valid
}

func validTunedGPUs(spec *models.Spec, gpusPerNode, maxGPUs int) []int {
	g := spec.GoodputModel(0.5)
	g.Phi = refPhi(spec)
	var valid []int
	for k := 1; k <= maxGPUs; k++ {
		pl := packedPlacement(k, gpusPerNode)
		s := g.Speedup(pl)
		if s >= 0.5*float64(k) && s <= 0.8*float64(k) {
			valid = append(valid, k)
		}
	}
	if len(valid) == 0 {
		// Degenerate scalability: fall back to a single GPU, which is
		// always a sane tuned configuration.
		valid = []int{1}
	}
	return valid
}

// TunedConfig draws an idealized (GPUs, batch) pair per Sec. 5.2.
func TunedConfig(rng *rand.Rand, spec *models.Spec, gpusPerNode, maxGPUs int) (gpus, batch int) {
	valid := ValidTunedGPUs(spec, gpusPerNode, maxGPUs)
	gpus = valid[rng.Intn(len(valid))]
	g := spec.GoodputModel(0.5)
	g.Phi = refPhi(spec)
	m, _, ok := g.OptimalBatch(packedPlacement(gpus, gpusPerNode))
	if !ok {
		m = spec.M0
	}
	return gpus, m
}

// userGPUDist is the trace-like distribution of user GPU requests: most
// users request few GPUs (Sec. 5.3.1: "many users requested a small
// number of GPUs, when they could still have efficiently utilized more").
var userGPUDist = []struct {
	gpus int
	p    float64
}{
	{1, 0.60}, {2, 0.18}, {4, 0.14}, {8, 0.06}, {16, 0.02},
}

// UserConfig draws a realistic (GPUs, batch) pair per Sec. 5.3.1: the GPU
// count from the trace-like distribution and a batch size within a factor
// of two of the most efficient batch for that GPU count.
func UserConfig(rng *rand.Rand, spec *models.Spec, gpusPerNode, maxGPUs int) (gpus, batch int) {
	u := rng.Float64()
	acc := 0.0
	gpus = 1
	for _, e := range userGPUDist {
		acc += e.p
		if u < acc {
			gpus = e.gpus
			break
		}
	}
	if gpus > maxGPUs {
		gpus = maxGPUs
	}
	g := spec.GoodputModel(0.5)
	g.Phi = refPhi(spec)
	m, _, ok := g.OptimalBatch(packedPlacement(gpus, gpusPerNode))
	if !ok {
		m = spec.M0
	}
	// Perturb by 2^u, u ∈ [-1, 1], clamped to feasibility.
	factor := math.Pow(2, rng.Float64()*2-1)
	batch = int(float64(m) * factor)
	if batch < spec.M0 {
		batch = spec.M0
	}
	if cap := gpus * spec.MaxBatchPerGPU; batch > cap {
		batch = cap
	}
	if spec.MaxBatchGlobal > 0 && batch > spec.MaxBatchGlobal {
		batch = spec.MaxBatchGlobal
	}
	return gpus, batch
}

// Tenants returns the distinct tenant names in the trace, sorted; a
// single-tenant trace returns nil.
func (t Trace) Tenants() []string {
	seen := make(map[string]bool)
	var names []string
	for _, j := range t.Jobs {
		if j.Tenant != "" && !seen[j.Tenant] {
			seen[j.Tenant] = true
			names = append(names, j.Tenant)
		}
	}
	sort.Strings(names)
	return names
}

// HourlyCounts histograms submissions per hour for Fig. 6.
func (t Trace) HourlyCounts() []int {
	hours := int(math.Ceil(t.Duration / 3600))
	counts := make([]int, hours)
	for _, j := range t.Jobs {
		h := int(j.Submit / 3600)
		if h >= 0 && h < hours {
			counts[h]++
		}
	}
	return counts
}

// Validate checks internal consistency of a trace (used by tests and the
// pollux-trace CLI).
func (t Trace) Validate() error {
	for _, j := range t.Jobs {
		spec := models.ByName(j.Model)
		if spec == nil {
			return fmt.Errorf("job %d: unknown model %q", j.ID, j.Model)
		}
		if j.Submit < 0 || j.Submit > t.Duration {
			return fmt.Errorf("job %d: submit %v outside [0, %v]", j.ID, j.Submit, t.Duration)
		}
		if j.TunedGPUs < 1 || j.UserGPUs < 1 {
			return fmt.Errorf("job %d: non-positive GPU count", j.ID)
		}
		if j.TunedBatch < spec.M0 || j.UserBatch < spec.M0 {
			return fmt.Errorf("job %d: batch below m0", j.ID)
		}
		if j.Deadline != 0 && j.Deadline < j.Submit {
			return fmt.Errorf("job %d: deadline %v before submit %v", j.ID, j.Deadline, j.Submit)
		}
	}
	return nil
}
