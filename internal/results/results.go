// Package results is the machine-readable half of the exhibit pipeline:
// it turns experiment outcomes into typed per-exhibit Records, emits and
// parses the JSON reports that CI archives, and compares a run against a
// checked-in baseline with per-metric tolerance bands (see Compare).
//
// The flow is: internal/experiments produces an Outcome per exhibit →
// Outcome.Record converts it to a Record → cmd/pollux-bench collects the
// Records of a sweep into a Report, writes it with -json, and gates it
// against bench/baselines/<scale>.json with -baseline. Baselines are
// stored in canonical form (volatile metadata stripped, metrics sorted)
// so that two runs of an unchanged tree produce bit-identical files.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Metric is one named measurement of an exhibit run, together with the
// tolerance band the regression gate grants it. A zero band means the
// value must match the baseline exactly — the right gate for closed-form
// exhibits and for anything downstream of a fixed-seed rng draw sequence,
// where any drift is a behavior change. Sim-backed exhibits carry small
// relative bands because intentional model/optimizer changes (e.g. the
// warm-refit cadence) legitimately move values at the last digits.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// RelTol and AbsTol define the acceptance band against a baseline
	// value b: |v-b| <= RelTol*max(|v|,|b|) + AbsTol.
	RelTol float64 `json:"relTol,omitempty"`
	AbsTol float64 `json:"absTol,omitempty"`
	// Volatile marks a measurement that varies run to run on an unchanged
	// tree — wall-clock times, allocation counts. The gate still checks
	// the metric exists (so a benchmark cannot silently stop reporting)
	// but never compares its value, and Canonical zeroes it so baselines
	// stay bit-reproducible.
	Volatile bool `json:"volatile,omitempty"`
}

// Record is one exhibit run: identity, the configuration axes that
// determine its numbers, and the measured metrics.
type Record struct {
	Exhibit  string   `json:"exhibit"`
	Title    string   `json:"title,omitempty"`
	Scale    string   `json:"scale"`
	Policies []string `json:"policies,omitempty"`
	Seeds    []int64  `json:"seeds,omitempty"`
	Metrics  []Metric `json:"metrics"`
	Notes    []string `json:"notes,omitempty"`
	// WallClockSec is how long the exhibit took to regenerate. Volatile:
	// stripped from baselines by Canonical.
	WallClockSec float64 `json:"wallClockSec,omitempty"`
}

// Metric returns the named metric, if recorded.
func (r Record) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// SortMetrics orders metrics by name so emission is deterministic
// regardless of the map iteration that produced them.
func (r *Record) SortMetrics() {
	sort.Slice(r.Metrics, func(i, j int) bool { return r.Metrics[i].Name < r.Metrics[j].Name })
}

// Git identifies the tree a report was generated from. Volatile: stripped
// from baselines by Canonical.
type Git struct {
	Commit string `json:"commit,omitempty"`
	Branch string `json:"branch,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
}

// Report is a full sweep emission: environment metadata plus one Record
// per exhibit, in run order.
type Report struct {
	Scale string `json:"scale"`
	// StartedAt is the sweep start in RFC3339 UTC. Volatile.
	StartedAt string `json:"startedAt,omitempty"`
	// GoVersion is runtime.Version() of the generating binary. Volatile.
	GoVersion string   `json:"goVersion,omitempty"`
	Git       Git      `json:"git"`
	Records   []Record `json:"records"`
}

// Find returns the record for an exhibit id, if present.
func (rep Report) Find(exhibit string) (Record, bool) {
	for _, r := range rep.Records {
		if r.Exhibit == exhibit {
			return r, true
		}
	}
	return Record{}, false
}

// Canonical returns a copy suitable for checking in as a baseline: all
// volatile fields (timestamps, git identity, Go version, wall clock, and
// the values of Volatile metrics) are zeroed, notes are dropped, and
// metrics are sorted, so regenerating an unchanged tree reproduces the
// file bit for bit.
func (rep Report) Canonical() Report {
	out := Report{Scale: rep.Scale, Records: make([]Record, len(rep.Records))}
	for i, r := range rep.Records {
		cr := r
		cr.WallClockSec = 0
		cr.Notes = nil
		cr.Metrics = append([]Metric(nil), r.Metrics...)
		for j := range cr.Metrics {
			if cr.Metrics[j].Volatile {
				cr.Metrics[j].Value = 0
			}
		}
		(&cr).SortMetrics()
		out.Records[i] = cr
	}
	return out
}

// Merge returns base with cur's records replacing same-exhibit entries in
// place and unseen exhibits appended in cur's order. It is how
// -update-baseline refreshes a filtered sweep without truncating the
// baseline's other exhibits. Report metadata is taken from cur.
func Merge(base, cur Report) Report {
	out := cur
	out.Records = nil
	replaced := make(map[string]bool, len(cur.Records))
	for _, r := range cur.Records {
		replaced[r.Exhibit] = true
	}
	for _, r := range base.Records {
		if replaced[r.Exhibit] {
			nr, _ := cur.Find(r.Exhibit)
			out.Records = append(out.Records, nr)
			delete(replaced, r.Exhibit)
		} else {
			out.Records = append(out.Records, r)
		}
	}
	for _, r := range cur.Records {
		if replaced[r.Exhibit] {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report written by WriteJSON.
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("results: parse report: %w", err)
	}
	return rep, nil
}

// ReadFile loads a report (e.g. a baseline) from disk.
func ReadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	rep, err := ReadJSON(f)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile writes a report to disk, creating parent directories.
func WriteFile(path string, rep Report) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GitMetadata describes the repository at dir, best effort: a missing git
// binary or a non-repository yields the zero value, never an error (the
// metadata is informational and stripped from baselines anyway).
func GitMetadata(dir string) Git {
	run := func(args ...string) string {
		out, err := exec.Command("git", append([]string{"-C", dir}, args...)...).Output()
		if err != nil {
			return ""
		}
		return strings.TrimSpace(string(out))
	}
	g := Git{
		Commit: run("rev-parse", "HEAD"),
		Branch: run("rev-parse", "--abbrev-ref", "HEAD"),
	}
	if g.Commit != "" {
		g.Dirty = run("status", "--porcelain") != ""
	}
	return g
}
