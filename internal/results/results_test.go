package results

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		Scale:     "quick",
		StartedAt: "2026-07-28T00:00:00Z",
		GoVersion: "go1.24.0",
		Git:       Git{Commit: "abc123", Branch: "main", Dirty: true},
		Records: []Record{
			{
				Exhibit:  "table2",
				Title:    "Scheduler comparison",
				Scale:    "quick",
				Policies: []string{"Pollux", "Tiresias"},
				Seeds:    []int64{1, 2},
				Metrics: []Metric{
					{Name: "Pollux/avgJCT", Value: 2228.5, Unit: "s", RelTol: 0.05},
					{Name: "Tiresias/avgJCT", Value: 3900.25, Unit: "s", RelTol: 0.05},
				},
				Notes:        []string{"a note"},
				WallClockSec: 12.5,
			},
			{
				Exhibit: "fig6",
				Scale:   "quick",
				Metrics: []Metric{{Name: "peakRatio", Value: 3.084, Unit: "x"}},
			},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Scale != "quick" || got.Git.Commit != "abc123" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	m, ok := got.Records[0].Metric("Pollux/avgJCT")
	//pollux:floateq-ok JSON round trip must hand the stored literals back verbatim
	if !ok || m.Value != 2228.5 || m.Unit != "s" || m.RelTol != 0.05 {
		t.Errorf("metric not preserved: %+v (ok=%v)", m, ok)
	}
	if got.Records[0].WallClockSec != 12.5 || got.Records[0].Notes[0] != "a note" {
		t.Errorf("record metadata not preserved: %+v", got.Records[0])
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "report.json")
	rep := sampleReport()
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(got.Records))
	}
}

func TestCanonicalStripsVolatileAndIsStable(t *testing.T) {
	rep := sampleReport()
	// Unsorted metrics must come out sorted.
	rep.Records[0].Metrics[0], rep.Records[0].Metrics[1] = rep.Records[0].Metrics[1], rep.Records[0].Metrics[0]
	c := rep.Canonical()
	if c.StartedAt != "" || c.GoVersion != "" || c.Git != (Git{}) {
		t.Errorf("volatile report metadata survived: %+v", c)
	}
	if c.Records[0].WallClockSec != 0 || c.Records[0].Notes != nil {
		t.Errorf("volatile record metadata survived: %+v", c.Records[0])
	}
	if c.Records[0].Metrics[0].Name != "Pollux/avgJCT" {
		t.Errorf("metrics not sorted: %v", c.Records[0].Metrics)
	}
	// The original must be untouched (Canonical copies).
	if rep.Records[0].WallClockSec != 12.5 || rep.Records[0].Metrics[0].Name != "Tiresias/avgJCT" {
		t.Errorf("Canonical mutated its input: %+v", rep.Records[0])
	}
	// Byte-stability: two emissions of the canonical form are identical.
	var a, b bytes.Buffer
	if err := WriteJSON(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, rep.Canonical()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("canonical emission not byte-stable")
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := sampleReport().Canonical()
	cur := sampleReport()
	// 3% drift on a 5%-band metric passes.
	cur.Records[0].Metrics[0].Value *= 1.03
	cmp := Compare(base, cur, Options{})
	if !cmp.OK() {
		t.Fatalf("expected pass, got: %s", cmp)
	}
	if cmp.Matched != 3 || cmp.Exhibits != 2 {
		t.Errorf("matched=%d exhibits=%d, want 3 and 2", cmp.Matched, cmp.Exhibits)
	}
}

func TestCompareRegressionBeyondTolerance(t *testing.T) {
	base := sampleReport().Canonical()
	cur := sampleReport()
	cur.Records[0].Metrics[0].Value *= 1.08 // 8% > 5% band
	cmp := Compare(base, cur, Options{})
	if cmp.OK() || len(cmp.Failures) != 1 {
		t.Fatalf("expected one failure, got: %s", cmp)
	}
	d := cmp.Failures[0]
	if d.Kind != KindRegression || d.Exhibit != "table2" || d.Metric != "Pollux/avgJCT" {
		t.Errorf("wrong diff: %+v", d)
	}
	if !strings.Contains(cmp.String(), "REGRESSION") || !strings.Contains(cmp.String(), "Pollux/avgJCT") {
		t.Errorf("report missing detail: %s", cmp)
	}
}

func TestCompareExactMetricRejectsAnyDrift(t *testing.T) {
	base := sampleReport().Canonical()
	cur := sampleReport()
	m := &cur.Records[1].Metrics[0] // peakRatio has no tolerance: exact
	m.Value += 1e-9
	if cmp := Compare(base, cur, Options{}); cmp.OK() {
		t.Error("zero-tolerance metric accepted drift")
	}
}

func TestCompareStructuralDiffs(t *testing.T) {
	base := sampleReport().Canonical()

	// Missing exhibit fails a full run but not a subset run.
	cur := sampleReport()
	cur.Records = cur.Records[:1]
	if cmp := Compare(base, cur, Options{}); cmp.OK() || cmp.Failures[0].Kind != KindMissingExhibit {
		t.Errorf("missing exhibit not flagged: %s", cmp)
	}
	if cmp := Compare(base, cur, Options{Subset: true}); !cmp.OK() {
		t.Errorf("subset run flagged missing exhibits: %s", cmp)
	}

	// New exhibit, missing metric, and new metric all fail.
	cur = sampleReport()
	cur.Records = append(cur.Records, Record{Exhibit: "fig99", Scale: "quick"})
	cur.Records[0].Metrics[0].Name = "Pollux/renamed"
	cmp := Compare(base, cur, Options{})
	kinds := map[string]bool{}
	for _, d := range cmp.Failures {
		kinds[d.Kind] = true
	}
	for _, want := range []string{KindNewExhibit, KindMissingMetric, KindNewMetric} {
		if !kinds[want] {
			t.Errorf("missing failure kind %s in: %s", want, cmp)
		}
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	base := sampleReport().Canonical()
	cur := sampleReport()
	cur.Scale = "full"
	cmp := Compare(base, cur, Options{})
	if cmp.OK() || cmp.Failures[0].Kind != KindScaleMismatch {
		t.Errorf("scale mismatch not flagged: %s", cmp)
	}
}

func TestCompareAbsToleranceAndNaN(t *testing.T) {
	mk := func(v float64) Report {
		return Report{Scale: "quick", Records: []Record{{
			Exhibit: "replayparity", Scale: "quick",
			Metrics: []Metric{{Name: "Pollux/dJCT", Value: v, AbsTol: 0.05}},
		}}}
	}
	if cmp := Compare(mk(0.01), mk(0.04), Options{}); !cmp.OK() {
		t.Errorf("within absolute band flagged: %s", cmp)
	}
	if cmp := Compare(mk(0.01), mk(0.09), Options{}); cmp.OK() {
		t.Error("outside absolute band accepted")
	}
	if cmp := Compare(mk(math.NaN()), mk(math.NaN()), Options{}); !cmp.OK() {
		t.Errorf("NaN vs NaN flagged: %s", cmp)
	}
	if cmp := Compare(mk(0.01), mk(math.NaN()), Options{}); cmp.OK() {
		t.Error("NaN vs number accepted")
	}
}

func TestMerge(t *testing.T) {
	base := sampleReport().Canonical()
	update := Report{Scale: "quick", Records: []Record{
		{Exhibit: "fig6", Scale: "quick", Metrics: []Metric{{Name: "peakRatio", Value: 9.9, Unit: "x"}}},
		{Exhibit: "fig99", Scale: "quick"},
	}}
	merged := Merge(base, update)
	if len(merged.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(merged.Records))
	}
	// Order: base order first (table2, fig6 replaced in place), then new.
	if merged.Records[0].Exhibit != "table2" || merged.Records[1].Exhibit != "fig6" || merged.Records[2].Exhibit != "fig99" {
		t.Errorf("merge order wrong: %v", merged.Records)
	}
	//pollux:floateq-ok merge must carry the update's stored literal through verbatim
	if m, _ := merged.Records[1].Metric("peakRatio"); m.Value != 9.9 {
		t.Errorf("replaced record not taken from update: %+v", m)
	}
}

func TestMarkdown(t *testing.T) {
	rep := sampleReport()
	md := Markdown(rep, map[string][]string{"table2": {"Pollux/avgJCT"}})
	if !strings.Contains(md, "| table2 | Pollux/avgJCT | 2228 | s |") {
		t.Errorf("headline row missing:\n%s", md)
	}
	// fig6 has no headline entry: all metrics shown.
	if !strings.Contains(md, "| fig6 | peakRatio | 3.084 | x |") {
		t.Errorf("fallback row missing:\n%s", md)
	}
	// table2's non-headline metric is filtered out.
	if strings.Contains(md, "Tiresias/avgJCT") {
		t.Errorf("non-headline metric leaked:\n%s", md)
	}
}

func TestGitMetadataBestEffort(t *testing.T) {
	// A non-repository directory yields the zero value, not an error.
	if g := GitMetadata(t.TempDir()); g != (Git{}) {
		t.Errorf("expected zero Git outside a repo, got %+v", g)
	}
}
