// go test -bench output as a results Report, so the headline Go
// benchmarks gate through the same baseline pipeline as the exhibit
// sweeps: deterministic custom metrics (fitness cells per round, fixed-
// seed JCTs) compare exactly, while wall-clock measurements (ns/op,
// us/round, allocations) are recorded as Volatile — archived for trend
// inspection, never compared.
//
// The flow mirrors the exhibit gate: CI runs the benchmarks with a fixed
// iteration count (-benchtime Nx, so per-iteration custom metrics are
// deterministic), pipes the output through pollux-bench -gobench, and
// gates against bench/baselines/gobench.json.
package results

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// GoBenchScale is the Report.Scale of parsed benchmark output; it keeps
// the scale-mismatch check meaningful against exhibit baselines.
const GoBenchScale = "gobench"

// volatileGoBenchUnits are the per-iteration measurements that vary run
// to run on an unchanged tree. Everything else a benchmark reports via
// b.ReportMetric is presumed deterministic for a fixed seed and
// iteration count, and gates exactly.
var volatileGoBenchUnits = map[string]bool{
	"ns/op":     true,
	"B/op":      true,
	"allocs/op": true,
	"MB/s":      true,
	"us/round":  true, // BenchmarkReplayRound's wall-clock per-round cost
}

// ParseGoBench reads `go test -bench` output and returns one Record per
// benchmark (sub-benchmarks included, the -GOMAXPROCS suffix stripped),
// in output order. Non-benchmark lines (test chatter, the goos/pkg
// header, PASS) are ignored. An input with no benchmark lines is an
// error — it usually means a bad -bench filter produced an empty gate.
func ParseGoBench(r io.Reader) (Report, error) {
	rep := Report{Scale: GoBenchScale}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName[-P] N value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. a RUN/PASS line mentioning a benchmark name
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		rec := Record{Exhibit: name, Scale: GoBenchScale}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Report{}, fmt.Errorf("results: %s: bad value %q", name, fields[i])
			}
			unit := fields[i+1]
			rec.Metrics = append(rec.Metrics, Metric{
				Name:     unit,
				Value:    v,
				Unit:     unit,
				Volatile: volatileGoBenchUnits[unit],
			})
		}
		rep.Records = append(rep.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return Report{}, fmt.Errorf("results: read go-bench output: %w", err)
	}
	if len(rep.Records) == 0 {
		return Report{}, fmt.Errorf("results: no benchmark result lines in input")
	}
	return rep, nil
}
