package results

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPolluxScheduleIncremental/full-8         	       2	 555514208 ns/op	  40304640 cells/round
BenchmarkPolluxScheduleIncremental/incremental-8  	       2	  55824410 ns/op	   7714560 cells/round
BenchmarkReplayRound/local	       1	1200000 ns/op	 83.5 us/round	 3600 avgJCT-s
PASS
ok  	repro/internal/sched	4.765s
`

func TestParseGoBench(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != GoBenchScale {
		t.Errorf("scale = %q, want %q", rep.Scale, GoBenchScale)
	}
	if len(rep.Records) != 3 {
		t.Fatalf("%d records, want 3: %+v", len(rep.Records), rep.Records)
	}
	full := rep.Records[0]
	if full.Exhibit != "BenchmarkPolluxScheduleIncremental/full" {
		t.Errorf("exhibit = %q (GOMAXPROCS suffix not stripped?)", full.Exhibit)
	}
	cells, ok := full.Metric("cells/round")
	if !ok || cells.Value != 40304640 {
		t.Errorf("cells/round = %+v, want 40304640", cells)
	}
	if cells.Volatile {
		t.Error("cells/round marked volatile; it is deterministic and must gate")
	}
	ns, ok := full.Metric("ns/op")
	if !ok || !ns.Volatile {
		t.Errorf("ns/op = %+v, want volatile", ns)
	}
	replay := rep.Records[2]
	if replay.Exhibit != "BenchmarkReplayRound/local" {
		t.Errorf("exhibit = %q (suffix-less name mangled?)", replay.Exhibit)
	}
	if us, ok := replay.Metric("us/round"); !ok || !us.Volatile {
		t.Errorf("us/round = %+v, want volatile", us)
	}
	if jct, ok := replay.Metric("avgJCT-s"); !ok || jct.Volatile || jct.Value != 3600 {
		t.Errorf("avgJCT-s = %+v, want deterministic 3600", jct)
	}
}

func TestParseGoBenchEmptyInputFails(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok \trepro\t0.1s\n")); err == nil {
		t.Error("no benchmark lines should be an error, not an empty gate")
	}
}

// TestVolatileMetricsSkipValueComparison pins the Volatile contract end
// to end: Canonical zeroes the value, and Compare checks existence but
// never the value — while a missing volatile metric still fails.
func TestVolatileMetricsSkipValueComparison(t *testing.T) {
	cur, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := cur.Canonical()
	if m, _ := base.Records[0].Metric("ns/op"); m.Value != 0 {
		t.Errorf("canonical ns/op = %v, want 0", m.Value)
	}
	if m, _ := base.Records[0].Metric("cells/round"); m.Value != 40304640 {
		t.Errorf("canonical cells/round = %v, want the measured value kept", m.Value)
	}

	// A rerun with different timings but identical deterministic metrics
	// passes the gate.
	rerun := strings.ReplaceAll(sampleBenchOutput, "555514208 ns/op", "999999999 ns/op")
	cur2, err := ParseGoBench(strings.NewReader(rerun))
	if err != nil {
		t.Fatal(err)
	}
	if cmp := Compare(base, cur2, Options{}); !cmp.OK() {
		t.Errorf("volatile-only drift failed the gate:\n%s", cmp)
	}

	// A deterministic metric drifting fails it.
	drift := strings.ReplaceAll(sampleBenchOutput, "40304640 cells/round", "50000000 cells/round")
	cur3, err := ParseGoBench(strings.NewReader(drift))
	if err != nil {
		t.Fatal(err)
	}
	if cmp := Compare(base, cur3, Options{}); cmp.OK() {
		t.Error("cells/round drift passed the gate")
	}

	// A benchmark that stops reporting a volatile metric fails the gate:
	// existence is still checked.
	missing := strings.ReplaceAll(sampleBenchOutput, " 83.5 us/round", "")
	cur4, err := ParseGoBench(strings.NewReader(missing))
	if err != nil {
		t.Fatal(err)
	}
	if cmp := Compare(base, cur4, Options{}); cmp.OK() {
		t.Error("dropped us/round metric passed the gate")
	}
}
