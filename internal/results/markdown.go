package results

import (
	"fmt"
	"strings"
)

// Markdown renders a report as a GitHub-flavored per-exhibit metric
// table, the form EXPERIMENTS.md records sweeps in. headline selects and
// orders the metrics shown per exhibit (see experiments.Headlines); an
// exhibit with no headline entry is rendered with all of its metrics in
// recorded order. Exhibits appear in report order.
func Markdown(rep Report, headline map[string][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| exhibit | metric | value | unit |\n")
	fmt.Fprintf(&b, "| ------- | ------ | ----- | ---- |\n")
	for _, r := range rep.Records {
		names := headline[r.Exhibit]
		if names == nil {
			for _, m := range r.Metrics {
				names = append(names, m.Name)
			}
		}
		for _, name := range names {
			m, ok := r.Metric(name)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				r.Exhibit, m.Name, FormatValue(m.Value), m.Unit)
		}
	}
	return b.String()
}

// FormatValue renders a metric value compactly for tables: up to four
// significant digits, no exponent notation in the common magnitudes.
func FormatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
