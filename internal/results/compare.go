package results

import (
	"fmt"
	"math"
	"strings"
)

// Diff kinds, ordered roughly by severity. Every kind fails the gate: a
// structural mismatch (missing/new exhibits or metrics) means the
// baseline no longer describes what the sweep measures and needs an
// explicit -update-baseline, which is exactly the review hook the gate
// exists to force.
const (
	KindRegression     = "regression"
	KindMissingExhibit = "missing-exhibit"
	KindNewExhibit     = "new-exhibit"
	KindMissingMetric  = "missing-metric"
	KindNewMetric      = "new-metric"
	KindScaleMismatch  = "scale-mismatch"
)

// Diff is one gate failure.
type Diff struct {
	Kind    string
	Exhibit string
	Metric  string
	Unit    string
	Base    float64
	Cur     float64
	RelTol  float64
	AbsTol  float64
}

func (d Diff) String() string {
	name := d.Exhibit
	if d.Metric != "" {
		name += "/" + d.Metric
	}
	unit := d.Unit
	if unit != "" {
		unit = " " + unit
	}
	switch d.Kind {
	case KindRegression:
		band := fmt.Sprintf("±%.3g%% rel", 100*d.RelTol)
		if d.RelTol == 0 && d.AbsTol == 0 {
			band = "exact"
		} else if d.AbsTol != 0 {
			band += fmt.Sprintf(" ±%.3g abs", d.AbsTol)
		}
		delta := "n/a"
		if d.Base != 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(d.Cur/d.Base-1))
		}
		return fmt.Sprintf("REGRESSION  %s: baseline %g%s, got %g%s (%s, tolerance %s)",
			name, d.Base, unit, d.Cur, unit, delta, band)
	case KindMissingExhibit:
		return fmt.Sprintf("MISSING     %s: exhibit in baseline but not produced by this run", name)
	case KindNewExhibit:
		return fmt.Sprintf("NEW         %s: exhibit not in baseline (refresh with -update-baseline)", name)
	case KindMissingMetric:
		return fmt.Sprintf("MISSING     %s: metric in baseline but not emitted (baseline %g%s)", name, d.Base, unit)
	case KindNewMetric:
		return fmt.Sprintf("NEW         %s: metric not in baseline (got %g%s; refresh with -update-baseline)", name, d.Cur, unit)
	case KindScaleMismatch:
		return fmt.Sprintf("SCALE       baseline is scale %q but this run is scale %q", d.Exhibit, d.Metric)
	default:
		return fmt.Sprintf("%s %s", d.Kind, name)
	}
}

// Options tunes Compare.
type Options struct {
	// Subset marks a filtered run (-exhibits ...): baseline exhibits the
	// run did not produce are skipped instead of reported missing.
	Subset bool
}

// Comparison is the outcome of gating a run against a baseline.
type Comparison struct {
	Failures []Diff
	// Matched counts metrics that were compared and fell within their
	// tolerance band; Exhibits counts exhibits present on both sides.
	Matched  int
	Exhibits int
}

// OK reports whether the gate passes.
func (c Comparison) OK() bool { return len(c.Failures) == 0 }

// String renders the human-readable diff report.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline gate: %d metric(s) across %d exhibit(s) compared", c.Matched+regressions(c), c.Exhibits)
	if c.OK() {
		b.WriteString(" — all within tolerance\n")
		return b.String()
	}
	fmt.Fprintf(&b, " — %d failure(s):\n", len(c.Failures))
	for _, d := range c.Failures {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

func regressions(c Comparison) int {
	n := 0
	for _, d := range c.Failures {
		if d.Kind == KindRegression {
			n++
		}
	}
	return n
}

// Compare gates a run (cur) against a baseline (base). Metrics present on
// both sides are checked against the wider of the two recorded tolerance
// bands; structural differences (exhibits or metrics on one side only)
// fail the gate so the baseline cannot silently drift out of sync with
// the sweep — except that with Options.Subset, baseline exhibits absent
// from the run are ignored, since a filtered run never produces them.
func Compare(base, cur Report, opts Options) Comparison {
	var c Comparison
	if base.Scale != "" && cur.Scale != "" && base.Scale != cur.Scale {
		c.Failures = append(c.Failures, Diff{Kind: KindScaleMismatch, Exhibit: base.Scale, Metric: cur.Scale})
		return c
	}
	curIdx := make(map[string]Record, len(cur.Records))
	for _, r := range cur.Records {
		curIdx[r.Exhibit] = r
	}
	baseIdx := make(map[string]Record, len(base.Records))
	for _, r := range base.Records {
		baseIdx[r.Exhibit] = r
	}
	for _, br := range base.Records {
		cr, ok := curIdx[br.Exhibit]
		if !ok {
			if !opts.Subset {
				c.Failures = append(c.Failures, Diff{Kind: KindMissingExhibit, Exhibit: br.Exhibit})
			}
			continue
		}
		c.Exhibits++
		curMetrics := make(map[string]Metric, len(cr.Metrics))
		for _, m := range cr.Metrics {
			curMetrics[m.Name] = m
		}
		baseMetrics := make(map[string]bool, len(br.Metrics))
		for _, bm := range br.Metrics {
			baseMetrics[bm.Name] = true
			cm, ok := curMetrics[bm.Name]
			if !ok {
				c.Failures = append(c.Failures, Diff{
					Kind: KindMissingMetric, Exhibit: br.Exhibit, Metric: bm.Name,
					Unit: bm.Unit, Base: bm.Value,
				})
				continue
			}
			if bm.Volatile || cm.Volatile {
				// Wall-clock-style measurements: existence is gated (we
				// got here, so both sides have the metric), values never.
				c.Matched++
				continue
			}
			rel := math.Max(bm.RelTol, cm.RelTol)
			abs := math.Max(bm.AbsTol, cm.AbsTol)
			if within(bm.Value, cm.Value, rel, abs) {
				c.Matched++
			} else {
				c.Failures = append(c.Failures, Diff{
					Kind: KindRegression, Exhibit: br.Exhibit, Metric: bm.Name,
					Unit: firstNonEmpty(bm.Unit, cm.Unit),
					Base: bm.Value, Cur: cm.Value, RelTol: rel, AbsTol: abs,
				})
			}
		}
		for _, m := range cr.Metrics {
			if !baseMetrics[m.Name] {
				c.Failures = append(c.Failures, Diff{
					Kind: KindNewMetric, Exhibit: br.Exhibit, Metric: m.Name,
					Unit: m.Unit, Cur: m.Value,
				})
			}
		}
	}
	for _, r := range cur.Records {
		if _, ok := baseIdx[r.Exhibit]; !ok {
			c.Failures = append(c.Failures, Diff{Kind: KindNewExhibit, Exhibit: r.Exhibit})
		}
	}
	return c
}

// within implements the acceptance band |cur-base| <= rel*max(|base|,|cur|)+abs.
// With both tolerances zero this degenerates to exact (bitwise for
// non-NaN) equality. Two NaNs compare equal; one NaN never passes.
func within(base, cur, rel, abs float64) bool {
	if math.IsNaN(base) || math.IsNaN(cur) {
		return math.IsNaN(base) && math.IsNaN(cur)
	}
	return math.Abs(cur-base) <= rel*math.Max(math.Abs(base), math.Abs(cur))+abs
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
