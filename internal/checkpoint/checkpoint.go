// Package checkpoint provides the on-disk envelope for scheduler state
// snapshots: a JSON document carrying a magic marker, a kind tag, a format
// version, and a SHA-256 checksum over the canonically encoded body.
//
// Writes are atomic (temp file in the destination directory, fsync,
// rename), so a crash mid-write leaves either the previous checkpoint or
// none — never a torn file. Reads verify every layer of the envelope and
// fail loudly: a truncated file, a flipped byte, a version from a newer
// format, or a snapshot of the wrong kind each produce a distinct error
// instead of silently starting fresh.
//
// Bodies are encoded with encoding/json, which is canonical for the
// snapshot structs used in this repo: struct fields marshal in declaration
// order, and floats use the shortest representation that round-trips
// bit-identically (snapshot structs avoid maps precisely so no
// nondeterministic key ordering can enter the byte stream).
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// magic identifies a Pollux repro checkpoint file.
const magic = "pollux-checkpoint"

// envelope is the top-level JSON document.
type envelope struct {
	Magic   string          `json:"magic"`
	Kind    string          `json:"kind"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Body    json.RawMessage `json:"body"`
}

// Write canonically encodes body, wraps it in an envelope of the given
// kind and version, and atomically writes it to path.
func Write(path, kind string, version int, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s body: %w", kind, err)
	}
	sum := sha256.Sum256(raw)
	env := envelope{
		Magic:   magic,
		Kind:    kind,
		Version: version,
		SHA256:  hex.EncodeToString(sum[:]),
		Body:    raw,
	}
	out, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("checkpoint: encode envelope: %w", err)
	}
	return atomicWrite(path, out)
}

// Read opens a checkpoint file, verifies the envelope (magic, kind,
// checksum, version no newer than maxVersion), and decodes the body into
// out. It returns the version found in the file so callers can migrate
// older formats if they choose to support them.
func Read(path, kind string, maxVersion int, out any) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return 0, fmt.Errorf("checkpoint: %s is not a valid checkpoint (truncated or corrupt): %w", path, err)
	}
	if env.Magic != magic {
		return 0, fmt.Errorf("checkpoint: %s is not a pollux checkpoint (magic %q)", path, env.Magic)
	}
	if env.Kind != kind {
		return 0, fmt.Errorf("checkpoint: %s holds a %q snapshot, want %q", path, env.Kind, kind)
	}
	if env.Version > maxVersion || env.Version < 1 {
		return 0, fmt.Errorf("checkpoint: %s has format version %d, this binary supports 1..%d", path, env.Version, maxVersion)
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return 0, fmt.Errorf("checkpoint: %s failed checksum verification (corrupt body)", path)
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		return 0, fmt.Errorf("checkpoint: decode %s body: %w", kind, err)
	}
	return env.Version, nil
}

// atomicWrite writes data to path via a temp file and rename so readers
// never observe a partial checkpoint.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write temp file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close temp file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	return nil
}
