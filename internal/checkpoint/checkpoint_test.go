package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Round int
	Rate  float64
}

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Write(path, "test-state", 1, payload{Name: "job-0", Round: 17, Rate: 0.1 + 0.2}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeSample(t)
	var got payload
	ver, err := Read(path, "test-state", 1, &got)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if ver != 1 {
		t.Fatalf("version = %d, want 1", ver)
	}
	want := payload{Name: "job-0", Round: 17, Rate: 0.1 + 0.2}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v (floats must be bit-identical)", got, want)
	}
}

func TestTruncatedFileFailsLoudly(t *testing.T) {
	path := writeSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if _, err := Read(path, "test-state", 1, &got); err == nil {
		t.Fatal("Read of truncated file succeeded, want loud error")
	} else if !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("truncated file error = %v, want mention of corruption", err)
	}
}

func TestChecksumMismatchFailsLoudly(t *testing.T) {
	path := writeSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the body ("job-0" -> "jab-0") without breaking the
	// JSON structure, so only the checksum can catch it.
	corrupt := strings.Replace(string(data), "job-0", "jab-0", 1)
	if corrupt == string(data) {
		t.Fatal("test setup: body marker not found")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if _, err := Read(path, "test-state", 1, &got); err == nil {
		t.Fatal("Read of checksum-corrupt file succeeded, want loud error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("checksum error = %v, want mention of checksum", err)
	}
}

func TestVersionSkewFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Write(path, "test-state", 99, payload{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var got payload
	if _, err := Read(path, "test-state", 1, &got); err == nil {
		t.Fatal("Read of future-version file succeeded, want loud error")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew error = %v, want mention of version", err)
	}
}

func TestWrongKindFailsLoudly(t *testing.T) {
	path := writeSample(t)
	var got payload
	if _, err := Read(path, "other-state", 1, &got); err == nil {
		t.Fatal("Read with mismatched kind succeeded, want loud error")
	} else if !strings.Contains(err.Error(), "test-state") {
		t.Fatalf("kind mismatch error = %v, want both kinds named", err)
	}
}

func TestMissingFileFailsLoudly(t *testing.T) {
	var got payload
	if _, err := Read(filepath.Join(t.TempDir(), "absent.ckpt"), "test-state", 1, &got); err == nil {
		t.Fatal("Read of missing file succeeded, want error")
	}
}

func TestAtomicOverwriteKeepsOldOnNewWrite(t *testing.T) {
	path := writeSample(t)
	if err := Write(path, "test-state", 1, payload{Name: "job-1", Round: 18}); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	var got payload
	if _, err := Read(path, "test-state", 1, &got); err != nil {
		t.Fatalf("Read after overwrite: %v", err)
	}
	if got.Name != "job-1" || got.Round != 18 {
		t.Fatalf("after overwrite got %+v", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1 (no temp files)", len(entries))
	}
}
