package admit

// State/RestoreState for FrontEnd: the admission stage is stateful (bucket
// fill, per-tenant quota counters, the decision log), so a restarted
// service must restore it or the post-restart admit/reject sequence would
// diverge from the uninterrupted run.
//
// A state is restored into a FrontEnd built by New from the same Options;
// the admitter state is a tagged union keyed by the policy name, and a
// name mismatch fails loudly. Maps are flattened to slices sorted by
// tenant so the canonical encoding is byte-stable.

import (
	"fmt"
	"sort"
)

// TenantCount is one tenant's counter in a serialized admitter state.
type TenantCount struct {
	Tenant string
	Count  int
}

// AdmitterState is the tagged union of per-policy admission state. Name
// selects the variant; AlwaysAdmit is stateless and uses none of the
// other fields.
type AdmitterState struct {
	Name string

	// Token bucket ("token-bucket"): current fill and last refill time.
	Tokens float64 `json:",omitempty"`
	Last   float64 `json:",omitempty"`

	// Tenant quota ("quota"): running per-tenant counters, sorted by
	// tenant. The quota table itself comes from Options at rebuild time.
	Admitted []TenantCount `json:",omitempty"`
	Rejected []TenantCount `json:",omitempty"`
}

// FrontEndState is the full serializable state of a FrontEnd.
type FrontEndState struct {
	Decisions []Decision    `json:",omitempty"`
	Tenants   []TenantStats `json:",omitempty"` // sorted by tenant name
	Rounds    int
	Admitter  AdmitterState
}

// sortedCounts flattens a tenant→count map into a tenant-sorted slice.
func sortedCounts(m map[string]int) []TenantCount {
	out := make([]TenantCount, 0, len(m))
	for tenant, n := range m {
		out = append(out, TenantCount{Tenant: tenant, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// State captures the front end's complete restorable state. A nil front
// end returns nil.
func (f *FrontEnd) State() *FrontEndState {
	if f == nil {
		return nil
	}
	s := &FrontEndState{
		Decisions: append([]Decision(nil), f.decisions...),
		Rounds:    f.rounds,
		Admitter:  AdmitterState{Name: f.admitter.Name()},
	}
	names := make([]string, 0, len(f.stats))
	for name := range f.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Tenants = append(s.Tenants, *f.stats[name])
	}
	switch a := f.admitter.(type) {
	case *TokenBucket:
		s.Admitter.Tokens = a.tokens
		s.Admitter.Last = a.last
	case *TenantQuota:
		s.Admitter.Admitted = sortedCounts(a.admitted)
		s.Admitter.Rejected = sortedCounts(a.rejected)
	}
	return s
}

// RestoreState applies a saved state to a front end freshly built by New
// from the same Options. A policy mismatch between the snapshot and the
// rebuilt admitter fails loudly. Restoring a nil state into a nil front
// end is a no-op; any other nil combination is a configuration mismatch.
func (f *FrontEnd) RestoreState(s *FrontEndState) error {
	if f == nil || s == nil {
		if f == nil && s == nil {
			return nil
		}
		return fmt.Errorf("admit: front-end configuration does not match snapshot (one of them is absent)")
	}
	if s.Admitter.Name != f.admitter.Name() {
		return fmt.Errorf("admit: snapshot has admission policy %q, configuration builds %q", s.Admitter.Name, f.admitter.Name())
	}
	switch a := f.admitter.(type) {
	case *TokenBucket:
		a.tokens = s.Admitter.Tokens
		a.last = s.Admitter.Last
	case *TenantQuota:
		a.admitted = make(map[string]int, len(s.Admitter.Admitted))
		for _, tc := range s.Admitter.Admitted {
			a.admitted[tc.Tenant] = tc.Count
		}
		a.rejected = make(map[string]int, len(s.Admitter.Rejected))
		for _, tc := range s.Admitter.Rejected {
			a.rejected[tc.Tenant] = tc.Count
		}
	}
	f.decisions = append([]Decision(nil), s.Decisions...)
	f.rounds = s.Rounds
	f.stats = make(map[string]*TenantStats, len(s.Tenants))
	for i := range s.Tenants {
		st := s.Tenants[i]
		f.stats[st.Tenant] = &st
	}
	return nil
}
