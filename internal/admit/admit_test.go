package admit

import (
	"reflect"
	"testing"

	"repro/internal/ga"
	"repro/internal/sched"
)

func mustNew(t *testing.T, opts *Options) *FrontEnd {
	t.Helper()
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New(%+v): %v", opts, err)
	}
	return f
}

func req(job int, tenant string, at float64) Request {
	return Request{Job: job, Tenant: tenant, Time: at, GPUs: 1}
}

func TestNilFrontEndAdmitsEverything(t *testing.T) {
	f := mustNew(t, nil)
	if f != nil {
		t.Fatalf("New(nil) = %v, want nil front end", f)
	}
	if !f.Arrive(req(0, "a", 0)) {
		t.Error("nil front end rejected an arrival")
	}
	if got := f.Order(&sched.ClusterView{}); got != nil {
		t.Errorf("nil front end Order = %v, want nil", got)
	}
	f.ObserveRound(&sched.ClusterView{}, nil)
	if f.Decisions() != nil || f.Stats() != nil || f.Rounds() != 0 {
		t.Error("nil front end accumulated state")
	}
	if f.AdmissionName() != AdmitAlways || f.PriorityName() != PriorityConstant {
		t.Errorf("nil front end names = %q/%q", f.AdmissionName(), f.PriorityName())
	}
}

func TestNewRejectsUnknownPolicies(t *testing.T) {
	if _, err := New(&Options{Admission: "lottery"}); err == nil {
		t.Error("unknown admission policy accepted")
	}
	if _, err := New(&Options{Priority: "fifo"}); err == nil {
		t.Error("unknown priority policy accepted")
	}
}

// TestExplicitZeroNotRewritten pins the PR 2/PR 4 convention on the new
// option struct: defaulting replaces only true zero values, never an
// explicit zero (negative numerics, present-with-zero map entries,
// DisableAdmission).
func TestExplicitZeroNotRewritten(t *testing.T) {
	// Explicit-zero capacity: every arrival rejected, including the first.
	f := mustNew(t, &Options{Admission: AdmitTokenBucket, BucketCapacity: -1, BucketRefill: 0.25})
	if f.Arrive(req(0, "a", 0)) {
		t.Error("explicit-zero capacity admitted an arrival")
	}

	// Explicit-zero refill: the initial burst drains and never refills.
	f = mustNew(t, &Options{Admission: AdmitTokenBucket, BucketCapacity: 2, BucketRefill: -1})
	for i := 0; i < 2; i++ {
		if !f.Arrive(req(i, "a", float64(i))) {
			t.Fatalf("burst arrival %d rejected with 2-token bucket", i)
		}
	}
	if f.Arrive(req(2, "a", 1e9)) {
		t.Error("explicit-zero refill admitted after the burst drained")
	}

	// A quota entry present with value 0 is an explicit zero: that tenant
	// is rejected outright while unlisted tenants stay unlimited
	// (DefaultQuota zero value).
	f = mustNew(t, &Options{Admission: AdmitQuota, Quotas: map[string]int{"blocked": 0}})
	if f.Arrive(req(0, "blocked", 0)) {
		t.Error("explicit zero quota admitted a job")
	}
	if !f.Arrive(req(1, "other", 0)) {
		t.Error("unlisted tenant rejected under zero-value DefaultQuota")
	}

	// Negative DefaultQuota is the explicit zero for unlisted tenants.
	f = mustNew(t, &Options{Admission: AdmitQuota, Quotas: map[string]int{"listed": 1}, DefaultQuota: -1})
	if !f.Arrive(req(0, "listed", 0)) {
		t.Error("listed tenant rejected under its quota")
	}
	if f.Arrive(req(1, "unlisted", 0)) {
		t.Error("explicit-zero DefaultQuota admitted an unlisted tenant")
	}

	// DisableAdmission overrides a configured (and otherwise rejecting)
	// policy without clearing its fields.
	f = mustNew(t, &Options{Admission: AdmitTokenBucket, BucketCapacity: -1, DisableAdmission: true})
	if !f.Arrive(req(0, "a", 0)) {
		t.Error("DisableAdmission did not disable the admission stage")
	}
	if f.AdmissionName() != AdmitAlways {
		t.Errorf("disabled admission reports policy %q, want %q", f.AdmissionName(), AdmitAlways)
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	// Zero values take the defaults: capacity 16, refill 1/min.
	f := mustNew(t, &Options{Admission: AdmitTokenBucket})
	for i := 0; i < 16; i++ {
		if !f.Arrive(req(i, "a", 0)) {
			t.Fatalf("arrival %d rejected inside default capacity", i)
		}
	}
	if f.Arrive(req(16, "a", 0)) {
		t.Error("arrival 16 admitted beyond default capacity")
	}
	if !f.Arrive(req(17, "a", 60)) {
		t.Error("arrival after one minute rejected despite default refill")
	}
}

// TestTokenBucketBurstBoundary exercises the boundary cases: a burst at
// one instant admits exactly capacity jobs, and refill credits admission
// exactly when a full token has accrued (power-of-two refill keeps the
// arithmetic exact).
func TestTokenBucketBurstBoundary(t *testing.T) {
	b := NewTokenBucket(3, 0.25) // one token per 4s
	for i := 0; i < 3; i++ {
		if ok, _ := b.Admit(req(i, "a", 10)); !ok {
			t.Fatalf("burst arrival %d rejected with capacity 3", i)
		}
	}
	if ok, reason := b.Admit(req(3, "a", 10)); ok {
		t.Error("burst arrival 3 admitted beyond capacity")
	} else if reason == "" {
		t.Error("rejection carried no reason")
	}
	// 2s later: half a token — still rejected.
	if ok, _ := b.Admit(req(4, "a", 12)); ok {
		t.Error("admitted with half a token")
	}
	// At t=16 the earlier partial refills have accumulated to >= 1 token
	// ((12-10)*0.25 + (16-12)*0.25 = 1.5): exactly one admission.
	if ok, _ := b.Admit(req(5, "a", 16)); !ok {
		t.Error("rejected with 1.5 tokens accrued")
	}
	if ok, _ := b.Admit(req(6, "a", 16)); ok {
		t.Error("admitted with 0.5 tokens left")
	}
}

func TestQuotaRejectsWithCount(t *testing.T) {
	q := NewTenantQuota(map[string]int{"b": 2}, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := q.Admit(req(i, "b", 0)); !ok {
			t.Fatalf("arrival %d rejected inside quota 2", i)
		}
	}
	if ok, reason := q.Admit(req(2, "b", 0)); ok {
		t.Error("arrival admitted beyond quota")
	} else if reason != `quota: tenant "b" at 2 of 2 admitted (rejection #1)` {
		t.Errorf("rejection reason = %q", reason)
	}
	if ok, reason := q.Admit(req(3, "b", 0)); ok || reason != `quota: tenant "b" at 2 of 2 admitted (rejection #2)` {
		t.Errorf("second rejection = %v %q", ok, reason)
	}
}

func TestFrontEndStatsAndDecisions(t *testing.T) {
	f := mustNew(t, &Options{Admission: AdmitQuota, Quotas: map[string]int{"b": 1}})
	f.Arrive(req(0, "a", 1))
	f.Arrive(req(1, "b", 2))
	f.Arrive(req(2, "b", 3))

	dec := f.Decisions()
	if len(dec) != 3 {
		t.Fatalf("got %d decisions, want 3", len(dec))
	}
	wantAdmitted := []bool{true, true, false}
	for i, d := range dec {
		if d.Admitted != wantAdmitted[i] {
			t.Errorf("decision %d admitted=%v, want %v", i, d.Admitted, wantAdmitted[i])
		}
	}
	stats := f.Stats()
	if st := stats["a"]; st.Submitted != 1 || st.Admitted != 1 || st.Rejected != 0 {
		t.Errorf("tenant a stats = %+v", st)
	}
	if st := stats["b"]; st.Submitted != 2 || st.Admitted != 1 || st.Rejected != 1 {
		t.Errorf("tenant b stats = %+v", st)
	}
}

// TestDecisionsDeterministic pins that two front ends built from the same
// options produce identical decision logs for the same arrival sequence —
// the property the cross-deployment parity test relies on.
func TestDecisionsDeterministic(t *testing.T) {
	opts := &Options{Admission: AdmitTokenBucket, BucketCapacity: 2, BucketRefill: 0.5}
	arrivals := []Request{
		req(0, "a", 0), req(1, "b", 0.5), req(2, "a", 1), req(3, "b", 4), req(4, "a", 4),
	}
	run := func() []Decision {
		f := mustNew(t, opts)
		for _, r := range arrivals {
			f.Arrive(r)
		}
		return f.Decisions()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("decision logs differ:\n%v\n%v", a, b)
	}
}

func view(jobs ...sched.JobView) *sched.ClusterView {
	v := &sched.ClusterView{Capacity: []int{4}, Jobs: jobs, Current: ga.NewMatrix(len(jobs), 1)}
	for i := range v.Current {
		v.Current[i][0] = i // distinct rows so permutation mistakes show
	}
	return v
}

func TestOrderConstantKeepsSnapshot(t *testing.T) {
	f := mustNew(t, &Options{})
	v := view(sched.JobView{ID: 0, Deadline: 100}, sched.JobView{ID: 1, Deadline: 50})
	if perm := f.Order(v); perm != nil {
		t.Errorf("constant priority returned perm %v", perm)
	}
	if v.Jobs[0].ID != 0 || v.Jobs[1].ID != 1 {
		t.Error("constant priority reordered the snapshot")
	}
}

func TestOrderSLO(t *testing.T) {
	f := mustNew(t, &Options{Priority: PrioritySLO})

	// Deadlines first (earliest first), deadline-less last; ties by
	// Submit then ID.
	v := view(
		sched.JobView{ID: 0, Submit: 10},                // no deadline
		sched.JobView{ID: 1, Submit: 20, Deadline: 500}, // later deadline
		sched.JobView{ID: 2, Submit: 30, Deadline: 100}, // earliest deadline
		sched.JobView{ID: 3, Submit: 5, Deadline: 500},  // deadline tie, earlier submit
	)
	perm := f.Order(v)
	wantPerm := []int{2, 3, 1, 0}
	if !reflect.DeepEqual(perm, wantPerm) {
		t.Fatalf("perm = %v, want %v", perm, wantPerm)
	}
	gotIDs := []int{v.Jobs[0].ID, v.Jobs[1].ID, v.Jobs[2].ID, v.Jobs[3].ID}
	if !reflect.DeepEqual(gotIDs, []int{2, 3, 1, 0}) {
		t.Errorf("job order = %v", gotIDs)
	}
	// Current rows must travel with their jobs.
	for i, p := range perm {
		if v.Current[i][0] != p {
			t.Errorf("row %d = %d, want original row %d", i, v.Current[i][0], p)
		}
	}

	// An already-ordered snapshot returns nil (bit-identical fast path).
	v = view(sched.JobView{ID: 0, Deadline: 100}, sched.JobView{ID: 1, Deadline: 200})
	if perm := f.Order(v); perm != nil {
		t.Errorf("in-order snapshot returned perm %v", perm)
	}
}

func TestObserveRoundQueueDepths(t *testing.T) {
	f := mustNew(t, &Options{})
	f.Arrive(req(0, "a", 0))
	f.Arrive(req(1, "b", 0))
	v := view(
		sched.JobView{ID: 0, Tenant: "a"},
		sched.JobView{ID: 1, Tenant: "b"},
		sched.JobView{ID: 2, Tenant: "b"},
	)
	m := ga.NewMatrix(3, 1)
	m[0][0] = 2 // tenant a allocated; both b jobs queued
	f.ObserveRound(v, m)
	m[2][0] = 1 // next round: one b job still queued
	f.ObserveRound(v, m)

	if f.Rounds() != 2 {
		t.Errorf("Rounds = %d, want 2", f.Rounds())
	}
	stats := f.Stats()
	if got := stats["a"].QueueDepthSum; got != 0 {
		t.Errorf("tenant a queue sum = %v, want 0", got)
	}
	if got := stats["b"].QueueDepthSum; got != 3 {
		t.Errorf("tenant b queue sum = %v, want 3", got)
	}
}
