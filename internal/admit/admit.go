// Package admit is the multi-tenant serving front end that runs ahead of
// the scheduler: an admission stage that gates each job arrival (a
// production cluster serving heavy multi-user traffic cannot schedule
// everything it is sent, unlike the paper's traces), and a priority stage
// that orders the job snapshot before runtime.Step hands it to
// policy.Schedule. The pipeline is
//
//	arrivals ──▶ admission ──rejected──▶ (counted per tenant)
//	                │ admitted
//	                ▼
//	            priority ──▶ runtime.Step ──▶ policy.Schedule
//
// modeled on BLIS's admission→routing pipeline (always-admit and
// token-bucket admission; constant and SLO-based priority).
//
// One FrontEnd instance is the single seam shared by every deployment of
// the control loop — the trace-driven simulator's engines and the
// live-cluster/replay testbed. Admission decisions are a pure function of
// the arrival sequence (tenant, submit time, requested GPUs, presented in
// nondecreasing submit order) and never of the clock that processes them,
// so the same trace produces bit-identical per-tenant admit/reject
// sequences in the simulator and in cluster.Replay; the cross-deployment
// parity test pins this.
package admit

import (
	"fmt"
	"sort"

	"repro/internal/ga"
	"repro/internal/sched"
)

// Request is one job arrival presented to the admission stage.
type Request struct {
	Job    int     // workload job ID
	Tenant string  // owning tenant; "" for single-tenant traces
	Time   float64 // submission time in seconds from trace start
	GPUs   int     // GPUs requested at submission
}

// Decision records one admission outcome, in arrival order.
type Decision struct {
	Request
	Admitted bool
	Reason   string // "" when admitted; the rejecting policy's reason otherwise
}

// Admitter decides job admission. Requests are presented in nondecreasing
// Time order, and implementations must derive decisions only from the
// request sequence (never from wall clocks or external state), so that
// every deployment of the control loop reproduces the same decisions.
type Admitter interface {
	Name() string
	Admit(r Request) (ok bool, reason string)
}

// Admission policy names accepted by Options.Admission.
const (
	AdmitAlways      = "always"
	AdmitTokenBucket = "token-bucket"
	AdmitQuota       = "quota"
)

// Priority policy names accepted by Options.Priority.
const (
	PriorityConstant = "constant"
	PrioritySLO      = "slo"
)

// Options configures the serving front end. The zero value means "no
// front end at all" — every deployment treats a nil *Options (and a nil
// *FrontEnd) as admit-everything, keep-snapshot-order.
//
// The explicit-zero-value convention of sched.PolluxOptions and
// cluster.Trainer applies from day one: wherever 0 selects a default, a
// negative value means an explicit zero, and values that can express
// "explicitly zero" on their own (map entries, DisableAdmission) are
// never rewritten by defaulting.
type Options struct {
	// Admission selects the admission policy: "" or "always" admits
	// everything; "token-bucket" rate-limits arrivals; "quota" caps
	// admitted jobs per tenant.
	Admission string
	// DisableAdmission turns the admission stage off even when Admission
	// is set — the explicit off-switch, so a populated Options can be
	// toggled without clearing its policy fields.
	DisableAdmission bool

	// BucketCapacity and BucketRefill shape the token bucket
	// (Admission == "token-bucket"): the bucket starts full at Capacity
	// tokens, refills at Refill tokens per second, and each admitted job
	// costs one token. Zero values take the defaults (capacity 16 jobs,
	// refill 1 job per minute); a negative value is an explicit zero —
	// explicit-zero capacity rejects every arrival, explicit-zero refill
	// admits only the initial Capacity burst and nothing after.
	BucketCapacity float64
	BucketRefill   float64

	// Quotas caps admitted jobs per tenant over the whole run
	// (Admission == "quota"). An entry PRESENT with value 0 is an
	// explicit zero — that tenant is rejected outright — and defaulting
	// never rewrites it (presence in the map is the unset/set
	// distinction). Tenants absent from the map fall back to
	// DefaultQuota: 0 means unlimited (the zero value must not reject
	// traffic), negative is an explicit zero for unlisted tenants.
	Quotas       map[string]int
	DefaultQuota int

	// Priority selects the ordering stage: "" or "constant" keeps the
	// snapshot order (submission order in both deployments); "slo"
	// orders by earliest SLO deadline first, deadline-less jobs last,
	// ties broken by submission time then job ID.
	Priority string
}

// TenantStats aggregates one tenant's front-end counters.
type TenantStats struct {
	Tenant    string
	Submitted int // arrivals presented to admission
	Admitted  int
	Rejected  int
	// QueueDepthSum accumulates, over observed scheduling rounds, the
	// number of this tenant's admitted jobs left without GPUs by the
	// round's committed allocation. Divide by Rounds for the mean.
	QueueDepthSum float64
}

// FrontEnd is the stateful admission + priority pipeline owned by one
// deployment (one simulator run, one scheduler service). A nil *FrontEnd
// is valid everywhere and means "no front end": Arrive admits, Order
// keeps the snapshot order, ObserveRound does nothing.
type FrontEnd struct {
	admitter Admitter
	priority string

	decisions []Decision
	stats     map[string]*TenantStats
	rounds    int
}

// New builds a FrontEnd from options. A nil opts returns a nil FrontEnd
// (no front end), which every method accepts.
func New(opts *Options) (*FrontEnd, error) {
	if opts == nil {
		return nil, nil
	}
	f := &FrontEnd{stats: make(map[string]*TenantStats)}

	switch opts.Priority {
	case "", PriorityConstant:
		f.priority = PriorityConstant
	case PrioritySLO:
		f.priority = PrioritySLO
	default:
		return nil, fmt.Errorf("admit: unknown priority policy %q (want %q or %q)",
			opts.Priority, PriorityConstant, PrioritySLO)
	}

	if opts.DisableAdmission {
		f.admitter = AlwaysAdmit{}
		return f, nil
	}
	switch opts.Admission {
	case "", AdmitAlways:
		f.admitter = AlwaysAdmit{}
	case AdmitTokenBucket:
		capacity, refill := opts.BucketCapacity, opts.BucketRefill
		if capacity == 0 {
			capacity = 16
		} else if capacity < 0 {
			capacity = 0 // explicit zero
		}
		if refill == 0 {
			refill = 1.0 / 60
		} else if refill < 0 {
			refill = 0 // explicit zero
		}
		f.admitter = NewTokenBucket(capacity, refill)
	case AdmitQuota:
		f.admitter = NewTenantQuota(opts.Quotas, opts.DefaultQuota)
	default:
		return nil, fmt.Errorf("admit: unknown admission policy %q (want %q, %q, or %q)",
			opts.Admission, AdmitAlways, AdmitTokenBucket, AdmitQuota)
	}
	return f, nil
}

// AdmissionName returns the active admission policy's name ("always" for
// a nil front end).
func (f *FrontEnd) AdmissionName() string {
	if f == nil {
		return AdmitAlways
	}
	return f.admitter.Name()
}

// PriorityName returns the active priority policy's name ("constant" for
// a nil front end).
func (f *FrontEnd) PriorityName() string {
	if f == nil {
		return PriorityConstant
	}
	return f.priority
}

// Arrive runs the admission stage on one job arrival and records the
// decision. Deployments must present arrivals exactly once per job, in
// nondecreasing Time order. A nil front end admits everything.
func (f *FrontEnd) Arrive(r Request) bool {
	if f == nil {
		return true
	}
	ok, reason := f.admitter.Admit(r)
	f.decisions = append(f.decisions, Decision{Request: r, Admitted: ok, Reason: reason})
	st := f.tenant(r.Tenant)
	st.Submitted++
	if ok {
		st.Admitted++
	} else {
		st.Rejected++
	}
	return ok
}

// Decisions returns the admission log in arrival order. The slice is the
// front end's own; callers must not mutate it.
func (f *FrontEnd) Decisions() []Decision {
	if f == nil {
		return nil
	}
	return f.decisions
}

// Order runs the priority stage on a scheduling-round snapshot: it
// permutes view.Jobs and view.Current (kept row-aligned) into scheduling
// order and returns the permutation, where perm[i] is the original index
// of the job now at position i. It returns nil when the order is
// unchanged (the constant policy, or an SLO sort that is already in
// order), so the common path stays bit-identical to no front end at all.
func (f *FrontEnd) Order(view *sched.ClusterView) []int {
	if f == nil || f.priority == PriorityConstant || len(view.Jobs) < 2 {
		return nil
	}
	perm := make([]int, len(view.Jobs))
	for i := range perm {
		perm[i] = i
	}
	jobs := view.Jobs
	sort.SliceStable(perm, func(a, b int) bool {
		return sloLess(jobs[perm[a]], jobs[perm[b]])
	})
	identity := true
	for i, p := range perm {
		if i != p {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	permuted := make([]sched.JobView, len(jobs))
	current := make(ga.Matrix, len(jobs))
	for i, p := range perm {
		permuted[i] = jobs[p]
		current[i] = view.Current[p]
	}
	view.Jobs = permuted
	view.Current = current
	return perm
}

// sloLess is the earliest-deadline-first ordering: jobs with SLO
// deadlines before jobs without, earlier deadlines first, ties broken by
// submission time and then job ID so the order is deterministic.
func sloLess(a, b sched.JobView) bool {
	ad, bd := a.Deadline > 0, b.Deadline > 0
	if ad != bd {
		return ad
	}
	//pollux:floateq-ok comparator tie-break on values copied verbatim from the trace; equality is a genuine tie
	if ad && a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	//pollux:floateq-ok comparator tie-break on values copied verbatim from the trace; equality is a genuine tie
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// ObserveRound accumulates per-tenant queue depths after a scheduling
// round: every job in the snapshot whose committed row holds no GPUs is
// counted as queued for its tenant. view and m must be row-aligned (any
// consistent order; the counts are order-independent).
func (f *FrontEnd) ObserveRound(view *sched.ClusterView, m ga.Matrix) {
	if f == nil {
		return
	}
	f.rounds++
	for i, j := range view.Jobs {
		allocated := false
		for _, g := range m[i] {
			if g > 0 {
				allocated = true
				break
			}
		}
		if !allocated {
			f.tenant(j.Tenant).QueueDepthSum++
		}
	}
}

// Rounds returns the number of scheduling rounds observed.
func (f *FrontEnd) Rounds() int {
	if f == nil {
		return 0
	}
	return f.rounds
}

// Stats returns a copy of the per-tenant counters, keyed by tenant name.
func (f *FrontEnd) Stats() map[string]TenantStats {
	if f == nil {
		return nil
	}
	out := make(map[string]TenantStats, len(f.stats))
	for name, st := range f.stats {
		out[name] = *st
	}
	return out
}

func (f *FrontEnd) tenant(name string) *TenantStats {
	st, ok := f.stats[name]
	if !ok {
		st = &TenantStats{Tenant: name}
		f.stats[name] = st
	}
	return st
}
