package admit

import "fmt"

// AlwaysAdmit admits every arrival — the no-op admission policy, and the
// behavior of a disabled admission stage.
type AlwaysAdmit struct{}

// Name implements Admitter.
func (AlwaysAdmit) Name() string { return AdmitAlways }

// Admit implements Admitter.
func (AlwaysAdmit) Admit(Request) (bool, string) { return true, "" }

// TokenBucket rate-limits admissions: the bucket starts full at capacity
// tokens, refills continuously at refill tokens per second, and each
// admitted job spends one token. An arrival finding less than one token
// is rejected. Refill is computed from request submission times (which
// arrive in nondecreasing order), never from a processing clock, so the
// decision sequence is a pure function of the trace.
type TokenBucket struct {
	capacity float64
	refill   float64
	tokens   float64
	last     float64
}

// NewTokenBucket builds a bucket that starts full. capacity and refill
// are used as given (zero means zero; Options-level defaulting has
// already happened by the time this is called).
func NewTokenBucket(capacity, refill float64) *TokenBucket {
	return &TokenBucket{capacity: capacity, refill: refill, tokens: capacity}
}

// Name implements Admitter.
func (b *TokenBucket) Name() string { return AdmitTokenBucket }

// Admit implements Admitter.
func (b *TokenBucket) Admit(r Request) (bool, string) {
	if r.Time > b.last {
		b.tokens += (r.Time - b.last) * b.refill
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = r.Time
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, ""
	}
	return false, fmt.Sprintf("token-bucket: %.2f of %.0f tokens at t=%.0fs", b.tokens, b.capacity, r.Time)
}

// TenantQuota caps the number of admitted jobs per tenant over the whole
// run. A tenant listed with quota 0 is an explicit zero and is rejected
// outright; unlisted tenants fall back to the default quota (0 =
// unlimited, negative = explicit zero). Rejections carry the tenant's
// running rejection count in the reason ("reject with count").
type TenantQuota struct {
	quotas   map[string]int
	def      int
	admitted map[string]int
	rejected map[string]int
}

// NewTenantQuota copies the quota table so later mutation of the caller's
// map cannot change decisions mid-run.
func NewTenantQuota(quotas map[string]int, defaultQuota int) *TenantQuota {
	q := &TenantQuota{
		quotas:   make(map[string]int, len(quotas)),
		def:      defaultQuota,
		admitted: make(map[string]int),
		rejected: make(map[string]int),
	}
	for tenant, n := range quotas {
		q.quotas[tenant] = n
	}
	return q
}

// Name implements Admitter.
func (q *TenantQuota) Name() string { return AdmitQuota }

// Admit implements Admitter.
func (q *TenantQuota) Admit(r Request) (bool, string) {
	limit, listed := q.quotas[r.Tenant]
	if !listed {
		if q.def == 0 { // zero value: unlimited for unlisted tenants
			q.admitted[r.Tenant]++
			return true, ""
		}
		limit = q.def
	}
	if limit < 0 { // explicit zero via negative default
		limit = 0
	}
	if q.admitted[r.Tenant] < limit {
		q.admitted[r.Tenant]++
		return true, ""
	}
	q.rejected[r.Tenant]++
	return false, fmt.Sprintf("quota: tenant %q at %d of %d admitted (rejection #%d)",
		r.Tenant, q.admitted[r.Tenant], limit, q.rejected[r.Tenant])
}
