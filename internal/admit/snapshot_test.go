package admit

import (
	"encoding/json"
	"reflect"
	"testing"
)

// drive presents a deterministic arrival mix to a front end.
func drive(f *FrontEnd, t0 float64, n int) {
	tenants := []string{"acme", "beta", "acme", "gamma"}
	for i := 0; i < n; i++ {
		f.Arrive(Request{
			Job:    i,
			Tenant: tenants[i%len(tenants)],
			Time:   t0 + float64(i)*20,
			GPUs:   1 + i%4,
		})
	}
}

// TestFrontEndStateRoundTrip: for every admission policy, a front end
// rebuilt from Options and restored from a JSON-serialized state must
// make the same decisions on the rest of the arrival stream as the
// uninterrupted one.
func TestFrontEndStateRoundTrip(t *testing.T) {
	optSets := map[string]*Options{
		"always":       {Admission: AdmitAlways},
		"token-bucket": {Admission: AdmitTokenBucket, BucketCapacity: 4, BucketRefill: 1.0 / 50},
		"quota":        {Admission: AdmitQuota, Quotas: map[string]int{"acme": 3}, DefaultQuota: 5, Priority: PrioritySLO},
	}
	for name, opts := range optSets {
		t.Run(name, func(t *testing.T) {
			orig, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			drive(orig, 0, 12)

			raw, err := json.Marshal(orig.State())
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var st FrontEndState
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			restored, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreState(&st); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			drive(orig, 240, 12)
			drive(restored, 240, 12)
			if !reflect.DeepEqual(orig.Decisions(), restored.Decisions()) {
				t.Fatalf("decision streams diverged after restore:\n%+v\nvs\n%+v",
					orig.Decisions(), restored.Decisions())
			}
			if !reflect.DeepEqual(orig.Stats(), restored.Stats()) {
				t.Fatalf("tenant stats diverged after restore:\n%+v\nvs\n%+v", orig.Stats(), restored.Stats())
			}
			if orig.Rounds() != restored.Rounds() {
				t.Fatalf("rounds diverged: %d vs %d", orig.Rounds(), restored.Rounds())
			}
		})
	}
}

// TestFrontEndStatePolicyMismatchFailsLoudly: restoring a snapshot into a
// front end built with a different admission policy must error.
func TestFrontEndStatePolicyMismatchFailsLoudly(t *testing.T) {
	bucket, err := New(&Options{Admission: AdmitTokenBucket})
	if err != nil {
		t.Fatal(err)
	}
	drive(bucket, 0, 4)
	st := bucket.State()

	quota, err := New(&Options{Admission: AdmitQuota})
	if err != nil {
		t.Fatal(err)
	}
	if err := quota.RestoreState(st); err == nil {
		t.Fatal("restore into mismatched admission policy succeeded, want loud error")
	}

	var nilFE *FrontEnd
	if err := nilFE.RestoreState(st); err == nil {
		t.Fatal("restore of populated state into nil front end succeeded, want loud error")
	}
	if err := nilFE.RestoreState(nil); err != nil {
		t.Fatalf("nil-into-nil restore should be a no-op, got %v", err)
	}
}
