// Command pollux-agent runs one or more training jobs against a running
// pollux-sched process: each job is a live Trainer whose PolluxAgent
// profiles iteration times, fits its goodput model online, tunes its
// batch size, and reports over the scheduler's RPC endpoint (Sec. 4.1 /
// Sec. 4.3). Training is simulated from the model zoo under a wall-clock
// compression factor.
//
// Usage:
//
//	pollux-agent [-addr 127.0.0.1:7077] [-jobs resnet18,neumf]
//	             [-epochs 20] [-compression 300] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/models"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "pollux-sched RPC address")
	jobList := flag.String("jobs", "resnet18,neumf", "comma-separated zoo model names, one job each")
	epochs := flag.Float64("epochs", 20, "statistical epochs per job (scaled down from the zoo defaults)")
	compression := flag.Float64("compression", 300, "simulated seconds per wall-clock second")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	names := strings.Split(*jobList, ",")
	var wg sync.WaitGroup
	results := make([]string, len(names))
	for i, name := range names {
		name = strings.TrimSpace(name)
		spec := models.ByName(name)
		if spec == nil {
			log.Fatalf("unknown model %q (have %v)", name, models.Names())
		}
		s := *spec
		if *epochs > 0 {
			s.Epochs = *epochs
		}
		tr := &cluster.Trainer{
			Job:         fmt.Sprintf("%s-%d", name, i),
			Spec:        &s,
			Compression: *compression,
			Seed:        *seed + int64(i),
		}
		wg.Add(1)
		go func(i int, tr *cluster.Trainer) {
			defer wg.Done()
			log.Printf("%s: starting (%.0f statistical epochs)", tr.Job, tr.Spec.Epochs)
			simSecs, err := tr.Run("tcp", *addr, 0)
			if err != nil {
				results[i] = fmt.Sprintf("%s: error: %v", tr.Job, err)
				return
			}
			results[i] = fmt.Sprintf("%s: finished in %s simulated (final batch %d)",
				tr.Job, metrics.Hours(simSecs), tr.Batch())
		}(i, tr)
	}
	wg.Wait()
	for _, r := range results {
		log.Print(r)
	}
}
