// Command pollux-sched runs the PolluxSched service as a standalone
// process: it listens for PolluxAgent reports over net/rpc, and
// periodically optimizes cluster-wide allocations with the genetic
// algorithm (Sec. 4.2), applying them to the in-memory cluster state that
// stands in for Kubernetes (Sec. 4.3).
//
// Usage:
//
//	pollux-sched [-listen 127.0.0.1:7077] [-nodes 4] [-gpus 4]
//	             [-interval 1s] [-population 50] [-generations 30]
//
// Pair it with one or more `pollux-agent` processes pointed at the same
// address.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to serve the scheduler RPC on")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	interval := flag.Duration("interval", time.Second, "wall-clock scheduling interval")
	population := flag.Int("population", 50, "GA population size")
	generations := flag.Int("generations", 30, "GA generations per interval")
	seed := flag.Int64("seed", 1, "GA random seed")
	flag.Parse()

	capacity := make([]int, *nodes)
	for i := range capacity {
		capacity[i] = *gpus
	}
	state := cluster.NewState(capacity)
	svc := cluster.NewService(state)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("pollux-sched: serving on %s, cluster %d nodes x %d GPUs", ln.Addr(), *nodes, *gpus)

	go func() {
		if err := cluster.Serve(svc, ln); err != nil {
			log.Printf("rpc server stopped: %v", err)
		}
	}()

	policy := sched.NewPollux(sched.PolluxOptions{
		Population: *population, Generations: *generations,
	}, *seed)
	simNow := 0.0
	for {
		n, err := svc.ScheduleOnce(policy, simNow)
		if err != nil {
			log.Printf("schedule: %v", err)
		} else if n > 0 {
			usage := state.Usage()
			used := 0
			for _, u := range usage {
				used += u
			}
			log.Printf("scheduled %d jobs; GPUs in use %d/%d %v", n, used, *nodes**gpus, usage)
		}
		simNow += 60
		time.Sleep(*interval)
	}
}
