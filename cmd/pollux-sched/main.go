// Command pollux-sched runs the PolluxSched service as a standalone
// process: it listens for PolluxAgent reports over net/rpc, and
// periodically optimizes cluster-wide allocations with the genetic
// algorithm (Sec. 4.2), applying them to the in-memory cluster state that
// stands in for Kubernetes (Sec. 4.3).
//
// Usage:
//
//	pollux-sched [-listen 127.0.0.1:7077] [-nodes 4] [-gpus 4]
//	             [-compression 300] [-population 50] [-generations 30]
//
// Scheduling rounds fire every 60 simulated seconds on the shared
// eventsim kernel, paced by a wall clock under -compression (simulated
// seconds per wall-clock second; 300 means five rounds per wall
// second). Use the same compression for the paired `pollux-agent`
// processes — both default to 300 — so scheduler and trainers advance
// simulated time at the same rate.
package main

import (
	"flag"
	"log"
	"net"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/sched"
)

// schedInterval is the simulated-seconds scheduling period (Sec. 5.1).
const schedInterval = 60

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to serve the scheduler RPC on")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	compression := flag.Float64("compression", 300,
		"simulated seconds per wall-clock second (match the pollux-agent -compression, default 300)")
	population := flag.Int("population", 50, "GA population size")
	generations := flag.Int("generations", 30, "GA generations per interval")
	seed := flag.Int64("seed", 1, "GA random seed")
	flag.Parse()
	if *compression <= 0 {
		log.Fatal("pollux-sched: -compression must be positive")
	}

	capacity := make([]int, *nodes)
	for i := range capacity {
		capacity[i] = *gpus
	}
	state := cluster.NewState(capacity)
	svc := cluster.NewService(state)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("pollux-sched: serving on %s, cluster %d nodes x %d GPUs", ln.Addr(), *nodes, *gpus)

	go func() {
		if err := cluster.Serve(svc, ln); err != nil {
			log.Printf("rpc server stopped: %v", err)
		}
	}()

	policy := sched.NewPollux(sched.PolluxOptions{
		Population: *population, Generations: *generations,
	}, *seed)
	svc.RunRounds(policy, schedInterval, &eventsim.Wall{Compression: *compression}, nil,
		func(now float64, n int, err error) {
			if err != nil {
				log.Printf("schedule: %v", err)
				return
			}
			if n == 0 {
				return
			}
			usage := state.Usage()
			used := 0
			for _, u := range usage {
				used += u
			}
			log.Printf("t=%.0fs scheduled %d jobs; GPUs in use %d/%d %v", now, n, used, *nodes**gpus, usage)
		})
}
