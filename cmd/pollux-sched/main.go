// Command pollux-sched runs the PolluxSched service as a standalone
// process: it listens for PolluxAgent reports over net/rpc, and
// periodically optimizes cluster-wide allocations with the genetic
// algorithm (Sec. 4.2), applying them to the in-memory cluster state that
// stands in for Kubernetes (Sec. 4.3).
//
// Usage:
//
//	pollux-sched [-listen 127.0.0.1:7077] [-nodes 4] [-gpus 4]
//	             [-compression 300] [-population 50] [-generations 30]
//	             [-seed 1] [-status 127.0.0.1:7078]
//	             [-checkpoint sched.ckpt] [-checkpoint-interval 600]
//	             [-restore]
//
// Scheduling rounds fire every 60 simulated seconds on the shared
// eventsim kernel, paced by a wall clock under -compression (simulated
// seconds per wall-clock second; 300 means five rounds per wall
// second). Use the same compression for the paired `pollux-agent`
// processes — both default to 300 — so scheduler and trainers advance
// simulated time at the same rate.
//
// -checkpoint names a state file the daemon atomically rewrites every
// -checkpoint-interval simulated seconds (after the round that crosses
// the mark): the full service state — job registry, latest reports,
// committed allocations, bound placements, admission counters — plus the
// Pollux policy's caches, GA seeds, and RNG position. -restore loads that
// file on startup and resumes the round cadence where the saved daemon
// stopped; agents reconnect and keep reporting as if the restart never
// happened. A checkpoint from a different cluster shape, a corrupt file,
// or a newer format version fails startup loudly.
//
// -status serves read-only observability on a second address: GET
// /status returns a JSON snapshot (rounds, queue depths, per-round
// scheduling latency, the Pollux round-work stats, per-tenant admission
// counters) and GET /metrics the same in Prometheus text format.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/sched"
	"repro/internal/status"
)

// schedInterval is the simulated-seconds scheduling period (Sec. 5.1).
const schedInterval = 60

// checkpointKind tags the daemon's checkpoint files; checkpointVersion is
// the current format.
const (
	checkpointKind    = "sched-service"
	checkpointVersion = 1
)

// daemonCheckpoint is the pollux-sched state file body: the cluster shape
// it was taken under (validated on restore), the time the next scheduling
// round was due, and the service and policy snapshots.
type daemonCheckpoint struct {
	Nodes     int
	GPUs      int
	NextSched float64
	Service   *cluster.ServiceSnapshot
	Policy    *sched.PolluxSnapshot
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to serve the scheduler RPC on")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	compression := flag.Float64("compression", 300,
		"simulated seconds per wall-clock second (match the pollux-agent -compression, default 300)")
	population := flag.Int("population", 50, "GA population size")
	generations := flag.Int("generations", 30, "GA generations per interval")
	seed := flag.Int64("seed", 1, "GA random seed")
	statusAddr := flag.String("status", "", "serve /status (JSON) and /metrics (Prometheus text) on this address")
	ckptPath := flag.String("checkpoint", "", "write scheduler state to this file for crash recovery")
	ckptInterval := flag.Float64("checkpoint-interval", 600,
		"simulated seconds between checkpoint writes (with -checkpoint)")
	restore := flag.Bool("restore", false, "restore state from the -checkpoint file before serving")
	flag.Parse()
	if *compression <= 0 {
		log.Fatal("pollux-sched: -compression must be positive")
	}
	if *restore && *ckptPath == "" {
		log.Fatal("pollux-sched: -restore needs -checkpoint to name the state file")
	}
	if *ckptPath != "" && *ckptInterval <= 0 {
		log.Fatal("pollux-sched: -checkpoint-interval must be positive")
	}

	capacity := make([]int, *nodes)
	for i := range capacity {
		capacity[i] = *gpus
	}
	state := cluster.NewState(capacity)
	svc := cluster.NewService(state)

	pollux := sched.NewPollux(sched.PolluxOptions{
		Population: *population, Generations: *generations,
	}, *seed)

	start := 0.0
	if *restore {
		var dc daemonCheckpoint
		if _, err := checkpoint.Read(*ckptPath, checkpointKind, checkpointVersion, &dc); err != nil {
			log.Fatalf("pollux-sched: restore: %v", err)
		}
		if dc.Nodes != *nodes || dc.GPUs != *gpus {
			log.Fatalf("pollux-sched: checkpoint is for a %dx%d cluster, this daemon runs %dx%d",
				dc.Nodes, dc.GPUs, *nodes, *gpus)
		}
		if err := svc.RestoreSnapshot(dc.Service); err != nil {
			log.Fatalf("pollux-sched: restore: %v", err)
		}
		if err := pollux.Restore(dc.Policy); err != nil {
			log.Fatalf("pollux-sched: restore: %v", err)
		}
		start = dc.NextSched
		log.Printf("pollux-sched: restored from %s, resuming at t=%.0fs", *ckptPath, start)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("pollux-sched: serving on %s, cluster %d nodes x %d GPUs", ln.Addr(), *nodes, *gpus)

	go func() {
		if err := cluster.Serve(svc, ln); err != nil {
			log.Printf("rpc server stopped: %v", err)
		}
	}()

	policy := status.Timed(pollux)
	var reg *status.Registry
	if *statusAddr != "" {
		reg = status.New(policy.Name())
		reg.SetSource(func() status.Cluster { return clusterStatus(svc) })
		sl, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			log.Fatalf("pollux-sched: status listener: %v", err)
		}
		defer sl.Close()
		log.Printf("pollux-sched: status endpoint on http://%s/status", sl.Addr())
		go func() {
			if err := http.Serve(sl, reg.Handler()); err != nil {
				log.Printf("status server stopped: %v", err)
			}
		}()
	}

	nextCkpt := start + *ckptInterval
	svc.RunRounds(policy, schedInterval, &eventsim.Wall{Compression: *compression}, start, nil,
		func(now float64, n int, err error) {
			if reg != nil {
				reg.ObserveRound(now, n, policy.LastLatencySeconds(), pollux.LastRoundStats(), err)
			}
			if err != nil {
				log.Printf("schedule: %v", err)
				return
			}
			if *ckptPath != "" && now >= nextCkpt {
				nextCkpt = now + *ckptInterval
				dc := daemonCheckpoint{
					Nodes: *nodes, GPUs: *gpus,
					NextSched: now + schedInterval,
					Service:   svc.Snapshot(),
					Policy:    pollux.Snapshot(),
				}
				if err := checkpoint.Write(*ckptPath, checkpointKind, checkpointVersion, &dc); err != nil {
					log.Printf("checkpoint: %v", err)
				} else {
					log.Printf("t=%.0fs checkpointed to %s", now, *ckptPath)
				}
			}
			if n == 0 {
				return
			}
			usage := state.Usage()
			used := 0
			for _, u := range usage {
				used += u
			}
			log.Printf("t=%.0fs scheduled %d jobs; GPUs in use %d/%d %v", now, n, used, *nodes**gpus, usage)
		})
}

// clusterStatus adapts the service's status view for the HTTP registry.
func clusterStatus(svc *cluster.Service) status.Cluster {
	s := svc.Status()
	c := status.Cluster{
		Nodes: s.Nodes, GPUsTotal: s.GPUsTotal, GPUsUsed: s.GPUsUsed, Usage: s.Usage,
		Jobs: s.Jobs, Running: s.Running, Pending: s.Pending, Done: s.Done,
		Admission: s.Admission, Priority: s.Priority,
	}
	for _, t := range s.Tenants {
		c.Tenants = append(c.Tenants, status.Tenant{
			Name: t.Name, Submitted: t.Submitted, Admitted: t.Admitted,
			Rejected: t.Rejected, AvgQueueDepth: t.AvgQueueDepth,
		})
	}
	return c
}
