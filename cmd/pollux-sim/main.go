// Command pollux-sim runs a single trace-driven cluster simulation under a
// chosen scheduling policy and prints its job-completion statistics.
//
// Usage:
//
//	pollux-sim [-policy pollux|optimus|tiresias] [-engine event|tick|replay]
//	           [-jobs 160] [-hours 8] [-nodes 16] [-gpus 4] [-seed 1]
//	           [-scale quick|full|mega] [-user] [-interference 0.5]
//	           [-incremental] [-fullevery 10] [-racksize 16]
//	           [-tenants prod:12:2,batch:20] [-admission quota]
//	           [-quota batch=10] [-priority slo]
//	           [-status 127.0.0.1:7078]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -status serves the read-only observability endpoints (GET /status for
// JSON, GET /metrics for Prometheus text) while a long simulation runs:
// rounds completed, simulated time, and the Pollux per-round work stats.
// It observes state the rounds already produced, so it never changes a
// fixed-seed run's results. Not available under -engine replay.
//
// -incremental switches Pollux to incremental scheduling rounds (only
// jobs whose fitted model, phase, or GPU demand changed are re-placed;
// -fullevery forces a periodic full re-optimization) and -racksize
// enables the hierarchical rack-then-node GA decomposition; both keep
// the default flat full rounds when unset, preserving the fixed-seed
// baselines bit for bit.
//
// -scale presets the cluster shape (-jobs/-hours/-nodes/-gpus/-tick) from
// the shared quick/full experiment scales (internal/cliutil), so a single
// simulation matches what pollux-bench sweeps; explicitly-set shape flags
// win over the preset.
//
// -tenants generates a multi-tenant trace (overriding -jobs), and the
// -admission/-priority/-quota/-bucket-* flags install the serving front
// end (internal/admit) ahead of the scheduler. The front end runs
// identically under every engine, including replay — admission decisions
// are a pure function of the trace — and multi-tenant runs print a
// per-tenant breakdown after the summary.
//
// The replay engine feeds the trace through the live-testbed control
// path (internal/cluster: Service, agent reports, scheduling rounds) on
// virtual time instead of the simulator's in-memory jobs; add -rpc to
// drive the agent boundary over a real loopback net/rpc socket. Replay
// trainers step at a fixed 5 s tick and refit inline, so -tick and
// -refitworkers do not apply; -interference and -events are rejected
// (the testbed path has no interference injection or event log).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/status"
	"repro/internal/workload"
)

func main() {
	policy := flag.String("policy", "pollux", "scheduling policy: pollux, optimus, or tiresias")
	jobs := flag.Int("jobs", 160, "number of job submissions")
	hours := flag.Float64("hours", 8, "submission window in hours")
	nodes := flag.Int("nodes", 16, "cluster nodes")
	gpus := flag.Int("gpus", 4, "GPUs per node")
	seed := flag.Int64("seed", 1, "random seed (trace and policy)")
	user := flag.Bool("user", false, "use realistic user configs instead of tuned configs")
	interference := flag.Float64("interference", 0, "artificial slowdown for co-located distributed jobs (0-0.9)")
	noAvoid := flag.Bool("no-avoidance", false, "disable Pollux interference avoidance")
	incremental := flag.Bool("incremental", false,
		"Pollux only: incremental rounds (re-optimize only jobs whose model, phase, or demand changed)")
	fullEvery := flag.Int("fullevery", 0,
		"with -incremental: force a full re-optimization every N rounds (0 = default cadence, negative = never)")
	rackSize := flag.Int("racksize", 0,
		"Pollux only: nodes per rack for hierarchical rack-then-node GA decomposition (0 = flat)")
	engine := flag.String("engine", sim.EngineEvent,
		"simulation engine: event (discrete-event), tick (fixed-step), or replay (testbed control path on virtual time)")
	overRPC := flag.Bool("rpc", false, "with -engine replay: drive the agent boundary over a loopback net/rpc socket")
	tick := flag.Float64("tick", 2, "tick seconds (tick engine step / event engine profiling resolution)")
	traceFile := flag.String("trace", "", "load a JSON trace (see pollux-trace -o) instead of generating")
	events := flag.Int("events", 0, "print the last N scheduling events")
	statusAddr := flag.String("status", "",
		"serve /status (JSON) and /metrics (Prometheus text) on this address while the simulation runs")
	var sweep cliutil.Sweep
	sweep.Register(flag.CommandLine, "", false) // -scale preset + -refitworkers
	var fe cliutil.FrontEnd
	fe.Register(flag.CommandLine)
	var prof cliutil.Profile
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	feOpts, err := fe.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tenants, err := fe.TenantSpecs()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceFile != "" && tenants != nil {
		fmt.Fprintln(os.Stderr, "-tenants shapes a generated trace; it cannot be combined with -trace")
		os.Exit(2)
	}

	if sweep.ScaleName != "" {
		sc, err := sweep.Scale()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// The preset fills the cluster shape; flags the user set
		// explicitly keep their values.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["jobs"] {
			*jobs = sc.Jobs
		}
		if !explicit["hours"] {
			*hours = sc.Hours
		}
		if !explicit["nodes"] {
			*nodes = sc.Nodes
		}
		if !explicit["gpus"] {
			*gpus = sc.GPUsPerNode
		}
		if !explicit["tick"] {
			*tick = sc.Tick
		}
	}

	var trace workload.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		*jobs = len(trace.Jobs)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		trace = workload.Generate(rng, workload.Options{
			Jobs: *jobs, Hours: *hours,
			GPUsPerNode: *gpus, MaxGPUs: *nodes * *gpus,
			Tenants: tenants,
		})
		*jobs = len(trace.Jobs)
		if err := trace.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}

	const engineReplay = "replay"
	if *engine != sim.EngineEvent && *engine != sim.EngineTick && *engine != engineReplay {
		fmt.Fprintf(os.Stderr, "unknown engine %q (want %q, %q, or %q)\n",
			*engine, sim.EngineEvent, sim.EngineTick, engineReplay)
		os.Exit(2)
	}

	if (*incremental || *fullEvery != 0 || *rackSize > 0) && *policy != "pollux" {
		fmt.Fprintln(os.Stderr, "-incremental/-fullevery/-racksize only apply to -policy pollux")
		os.Exit(2)
	}

	var p sched.Policy
	switch *policy {
	case "pollux":
		p = sched.NewPollux(sched.PolluxOptions{
			Population: 50, Generations: 30,
			DisableInterferenceAvoidance: *noAvoid,
			Incremental:                  *incremental,
			FullEvery:                    *fullEvery,
			RackSize:                     *rackSize,
		}, *seed)
	case "optimus":
		p = sched.NewOptimus(*gpus)
	case "tiresias":
		p = sched.NewTiresias()
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	if *engine == engineReplay {
		// The testbed control path has no interference injection or
		// event logging; reject the flags rather than silently produce
		// numbers that look comparable to the sim engines but are not.
		if *interference != 0 {
			fmt.Fprintln(os.Stderr, "-interference is not supported by -engine replay")
			os.Exit(2)
		}
		if *events > 0 {
			fmt.Fprintln(os.Stderr, "-events is not supported by -engine replay")
			os.Exit(2)
		}
		if *statusAddr != "" {
			fmt.Fprintln(os.Stderr, "-status is not supported by -engine replay")
			os.Exit(2)
		}
		rep, err := cluster.Replay(trace, p, cluster.ReplayConfig{
			Nodes: *nodes, GPUsPerNode: *gpus,
			UseTunedConfig: !*user, Seed: *seed, OverRPC: *overRPC,
			FrontEnd: feOpts,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		s := rep.Summary
		fmt.Printf("policy=%s engine=replay jobs=%d cluster=%dx%d GPUs seed=%d configs=%s rpc=%v\n",
			p.Name(), *jobs, *nodes, *gpus, *seed, configName(*user), *overRPC)
		fmt.Print(metrics.Table(
			[]string{"completed", "avg JCT", "p50 JCT", "p99 JCT", "makespan", "avg tput", "avg goodput"},
			[][]string{{
				fmt.Sprintf("%d/%d", s.Completed, s.Total),
				metrics.Hours(s.AvgJCT), metrics.Hours(s.P50JCT), metrics.Hours(s.P99JCT),
				metrics.Hours(s.Makespan),
				fmt.Sprintf("%.0f ex/s", rep.AvgThroughput),
				fmt.Sprintf("%.0f ex/s", rep.AvgGoodput),
			}},
		))
		printTenants(rep.PerTenant)
		return
	}

	cfg := sim.Config{
		Nodes: *nodes, GPUsPerNode: *gpus, Tick: *tick, Engine: *engine,
		UseTunedConfig:       !*user,
		InterferenceSlowdown: *interference,
		Seed:                 *seed,
		LogEvents:            *events > 0,
		FrontEnd:             feOpts,
	}
	sweep.ApplyConfig(&cfg)
	if *statusAddr != "" {
		// Opt-in observability for long simulations: the registry only
		// reads policy state the round already produced, so serving it
		// cannot change a fixed-seed run's results.
		reg := status.New(p.Name())
		sl, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "status listener:", err)
			os.Exit(1)
		}
		defer sl.Close()
		fmt.Printf("status endpoint on http://%s/status\n", sl.Addr())
		go http.Serve(sl, reg.Handler())
		pollux, _ := p.(*sched.Pollux)
		prev := time.Now()
		cfg.OnRound = func(now float64) {
			// The sim has no per-round Schedule timer; the wall time
			// between consecutive rounds (GA plus trainer stepping) is the
			// honest cost of advancing one round here.
			elapsed := time.Since(prev).Seconds()
			prev = time.Now()
			var stats sched.RoundStats
			if pollux != nil {
				stats = pollux.LastRoundStats()
			}
			reg.ObserveRound(now, stats.Sub, elapsed, stats, nil)
		}
	}
	res := sim.NewCluster(trace, p, cfg).Run()
	s := res.Summary

	fmt.Printf("policy=%s engine=%s jobs=%d cluster=%dx%d GPUs seed=%d configs=%s\n",
		p.Name(), *engine, *jobs, *nodes, *gpus, *seed, configName(*user))
	fmt.Print(metrics.Table(
		[]string{"completed", "avg JCT", "p50 JCT", "p99 JCT", "makespan", "stat.eff", "avg tput", "avg goodput"},
		[][]string{{
			fmt.Sprintf("%d/%d", s.Completed, s.Total),
			metrics.Hours(s.AvgJCT), metrics.Hours(s.P50JCT), metrics.Hours(s.P99JCT),
			metrics.Hours(s.Makespan),
			fmt.Sprintf("%.0f%%", 100*s.AvgEfficiency),
			fmt.Sprintf("%.0f ex/s", res.AvgThroughput),
			fmt.Sprintf("%.0f ex/s", res.AvgGoodput),
		}},
	))
	fmt.Println()
	fmt.Print(metrics.Table([]string{"model", "done", "avg JCT", "p99 JCT"}, perModelRows(res)))
	printTenants(res.PerTenant)

	if *events > 0 {
		start := len(res.Events) - *events
		if start < 0 {
			start = 0
		}
		fmt.Printf("\nlast %d events:\n", len(res.Events)-start)
		for _, e := range res.Events[start:] {
			fmt.Println(" ", e)
		}
	}
}

func perModelRows(res sim.Result) [][]string {
	names := make([]string, 0, len(res.PerModel))
	for name := range res.PerModel {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([][]string, 0, len(names))
	for _, name := range names {
		s := res.PerModel[name]
		if s.Total == 0 {
			continue
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d/%d", s.Completed, s.Total),
			metrics.Hours(s.AvgJCT),
			metrics.Hours(s.P99JCT),
		})
	}
	return rows
}

// printTenants renders the per-tenant breakdown of a multi-tenant run
// (a no-op for single-tenant traces).
func printTenants(per map[string]metrics.TenantSummary) {
	if len(per) == 0 {
		return
	}
	names := make([]string, 0, len(per))
	for name := range per {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([][]string, 0, len(names))
	for _, name := range names {
		ts := per[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d/%d", ts.Admitted, ts.Submitted),
			fmt.Sprintf("%d", ts.Rejected),
			fmt.Sprintf("%d/%d", ts.Summary.Completed, ts.Summary.Total),
			metrics.Hours(ts.Summary.AvgJCT),
			fmt.Sprintf("%.0f ex/s", ts.AvgGoodput),
			fmt.Sprintf("%.1f", ts.AvgQueueDepth),
			fmt.Sprintf("%d/%d", ts.SLOMet, ts.SLOJobs),
		})
	}
	fmt.Println()
	fmt.Print(metrics.Table(
		[]string{"tenant", "admitted", "rejected", "done", "avg JCT", "goodput", "queue", "SLO met"},
		rows))
}

func configName(user bool) string {
	if user {
		return "user (Sec. 5.3.1)"
	}
	return "tuned (Sec. 5.2)"
}
